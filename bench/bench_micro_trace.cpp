// Micro-benchmarks of the .symt v2 trace frontend: raw varint decode
// throughput and full decode+replay through the 2-level degenerate
// hierarchy. The trace is L1-resident (stride-64 loop inside an 8 KiB
// window per thread) so the numbers isolate the frontend, not DRAM.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "cachesim/hierarchy.hpp"
#include "workload/replayer.hpp"
#include "workload/symt.hpp"

namespace {

using namespace symbiosis;

/// A purely memory-record trace: @p threads threads, each looping a 64-byte
/// stride over its own 8 KiB window (128 lines — resident in any L1).
std::vector<std::uint8_t> l1_resident_image(std::size_t threads, std::size_t refs_per_thread) {
  workload::SymtWriter writer(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    const cachesim::Addr base = (static_cast<cachesim::Addr>(t) + 1) << 32;
    for (std::size_t i = 0; i < refs_per_thread; ++i) {
      writer.append_mem(t, base + (i % 128) * 64, (i & 7) == 0);
    }
  }
  return writer.finish();
}

void BM_TraceDecode(benchmark::State& state) {
  // Decode-only: stream every record of every thread through the cursor's
  // batched path into a chunk buffer. items_per_second = decoded refs/s,
  // bytes_per_second = wire-format GB/s.
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t refs = 1 << 16;
  const auto image = l1_resident_image(threads, refs);
  const workload::SymtTrace trace = workload::SymtTrace::from_buffer(image);
  std::vector<cachesim::MemRef> buf(4096);
  std::vector<std::uint32_t> gaps(4096);
  for (auto _ : state) {
    std::uint64_t decoded = 0;
    for (std::size_t t = 0; t < threads; ++t) {
      workload::SymtCursor cursor(trace, t);
      while (!cursor.done()) {
        decoded += cursor.decode_mem_run(buf.data(), gaps.data(), buf.size());
      }
    }
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * threads * refs));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * image.size()));
}
BENCHMARK(BM_TraceDecode)->Arg(1)->Arg(4);

void BM_TraceReplay(benchmark::State& state) {
  // The headline decode+replay number: full TraceReplayer rounds (chunked
  // decode, round-robin visits, access_batch application) on the 2-level
  // degenerate hierarchy. The hierarchy stays warm across iterations so
  // steady-state is all L1 hits; replay_trace makes a fresh replayer per
  // call. items_per_second = replayed refs/s.
  const std::size_t threads = static_cast<std::size_t>(state.range(0));
  const std::size_t refs = 1 << 16;
  const auto image = l1_resident_image(threads, refs);
  const workload::SymtTrace trace = workload::SymtTrace::from_buffer(image);
  cachesim::HierarchyConfig cfg;
  cfg.signature.enabled = false;
  cachesim::Hierarchy h(cfg);
  workload::ReplayOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::replay_trace(trace, h, options));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * threads * refs));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * image.size()));
}
BENCHMARK(BM_TraceReplay)->Arg(1)->Arg(4);

}  // namespace
