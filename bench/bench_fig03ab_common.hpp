// Shared driver for Figures 3(a) and 3(b): all pairs of the 12-program
// pool, reporting each benchmark's WORST-CASE user-time degradation
// relative to running standalone.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "util/table.hpp"
#include "workload/benchmark_model.hpp"

namespace symbiosis::bench {

struct PairSweepResult {
  std::map<std::string, double> worst_degradation;  // per benchmark
  std::map<std::string, std::string> worst_partner;
};

/// Run every unordered pair of pool programs on @p cfg.
/// @param same_core  true = both pinned to core 0 (the paper's private-L2
///                   P4 experiment); false = one per core (shared-L2 C2D).
[[nodiscard]] inline PairSweepResult run_pair_sweep(const machine::MachineConfig& cfg,
                                                    bool same_core, double length_scale,
                                                    std::uint64_t seed) {
  workload::ScaleConfig scale;
  scale.l2_bytes = cfg.hierarchy.l2.size_bytes;
  scale.length_scale = length_scale;
  const auto& pool = workload::spec2006_pool();

  // Standalone baselines.
  std::map<std::string, double> solo;
  for (const auto& name : pool) {
    machine::Machine m(cfg);
    const auto id = m.add_task(
        workload::make_spec_workload(name, machine::address_space_base(0), util::Rng{seed}, scale),
        0);
    m.run_to_all_complete(0);
    solo[name] = static_cast<double>(m.task(id).first_completion_user_cycles);
  }

  PairSweepResult result;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      machine::Machine m(cfg);
      const auto a = m.add_task(workload::make_spec_workload(pool[i], machine::address_space_base(0),
                                                             util::Rng{seed + 1}, scale),
                                0);
      const auto b = m.add_task(workload::make_spec_workload(pool[j], machine::address_space_base(1),
                                                             util::Rng{seed + 2}, scale),
                                same_core ? 0 : 1);
      m.run_to_all_complete(0);
      for (const auto& [id, name, other] :
           {std::tuple{a, pool[i], pool[j]}, std::tuple{b, pool[j], pool[i]}}) {
        const double degradation =
            static_cast<double>(m.task(id).first_completion_user_cycles) / solo[name] - 1.0;
        if (degradation > result.worst_degradation[name]) {
          result.worst_degradation[name] = degradation;
          result.worst_partner[name] = other;
        }
      }
    }
  }
  return result;
}

inline void print_pair_sweep(const PairSweepResult& result) {
  util::TextTable table({"benchmark", "worst-case degradation", "worst partner"});
  double peak = 0.0;
  std::string peak_name;
  for (const auto& name : workload::spec2006_pool()) {
    const auto it = result.worst_degradation.find(name);
    const double d = it == result.worst_degradation.end() ? 0.0 : it->second;
    table.add_row({name, util::TextTable::pct(d),
                   result.worst_partner.count(name) ? result.worst_partner.at(name) : "-"});
    if (d > peak) {
      peak = d;
      peak_name = name;
    }
  }
  table.print();
  std::printf("\npeak degradation: %s for %s\n", util::TextTable::pct(peak).c_str(),
              peak_name.c_str());
}

}  // namespace symbiosis::bench
