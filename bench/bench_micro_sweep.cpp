// Sweep-throughput benchmark: run_sweep_grid over a tiny machine, sharded
// across a ThreadPool of 1/2/8 workers. The mixes_per_sec rate counter is
// the headline scaling metric; results are bit-identical for every worker
// count (the determinism suite pins that), so this measures pure
// scheduling/sharding overhead and parallel speedup.
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/threadpool.hpp"

namespace {

using namespace symbiosis;

/// Mirror of the determinism suite's tiny_pipeline(): a full grid cell in
/// tens of milliseconds so the 8-worker leg has enough cells to shard.
core::PipelineConfig tiny_pipeline() {
  core::PipelineConfig c;
  c.machine.hierarchy.num_cores = 2;
  c.machine.hierarchy.l1 = {1024, 2, 64};
  c.machine.hierarchy.l2 = {32 * 1024, 4, 64};
  c.machine.quantum_cycles = 100'000;
  c.sync_scale();
  c.scale.length_scale = 0.05;
  c.allocator_period_cycles = 500'000;
  c.emulation_cycles = 4'000'000;
  c.measure_max_cycles = 400'000'000;
  return c;
}

void BM_SweepThroughput(benchmark::State& state) {
  const core::PipelineConfig config = tiny_pipeline();
  const std::vector<std::string> pool = {"mcf", "libquantum", "povray", "gobmk"};
  const std::vector<std::string> algorithms = {"weighted-graph", "default"};
  const auto workers = static_cast<std::size_t>(state.range(0));
  util::ThreadPool thread_pool(workers);

  std::int64_t cells_run = 0;
  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    const core::SweepGridResult result =
        core::run_sweep_grid(config, pool, 2, 1, algorithms, 2, false, &thread_pool);
    benchmark::DoNotOptimize(result.outcomes.data());
    cells_run += static_cast<std::int64_t>(result.cells.size());
  }
  const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
  // Each grid cell is one full mix experiment — the paper's unit of work.
  // Rate over wall time, computed by hand: Counter::kIsRate divides by the
  // measuring thread's CPU time, which is ~0 while the pool does the work.
  state.counters["mixes_per_sec"] =
      benchmark::Counter(static_cast<double>(cells_run) / elapsed.count());
  state.SetItemsProcessed(cells_run);
}
BENCHMARK(BM_SweepThroughput)->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
