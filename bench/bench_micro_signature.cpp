// Micro-benchmarks of the signature hardware model: hash functions, CBF
// insert/remove, filter-unit event handling, RBV derivation, symbiosis.
// These bound the simulation's per-event cost (and, loosely, argue the
// hardware operations are trivially cheap — §5.4).
#include <benchmark/benchmark.h>

#include "sig/counting_bloom.hpp"
#include "sig/filter_unit.hpp"
#include "util/rng.hpp"

namespace {

using namespace symbiosis;

void BM_HashIndex(benchmark::State& state) {
  const auto kind = static_cast<sig::HashKind>(state.range(0));
  const sig::IndexHash hash(kind, 4096);
  util::Rng rng(1);
  sig::LineAddr line = rng();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash.index(line));
    line += 0x9e37;
  }
}
BENCHMARK(BM_HashIndex)
    ->Arg(static_cast<int>(sig::HashKind::Xor))
    ->Arg(static_cast<int>(sig::HashKind::XorInverseReverse))
    ->Arg(static_cast<int>(sig::HashKind::Modulo))
    ->Arg(static_cast<int>(sig::HashKind::Multiply));

void BM_CountingBloomInsertRemove(benchmark::State& state) {
  sig::CountingBloomFilter cbf(4096, 3, static_cast<unsigned>(state.range(0)));
  util::Rng rng(2);
  sig::LineAddr line = 0;
  for (auto _ : state) {
    cbf.insert(line);
    cbf.remove(line);
    ++line;
  }
}
BENCHMARK(BM_CountingBloomInsertRemove)->Arg(1)->Arg(2)->Arg(4);

void BM_CountingBloomInsertRemovePrehashed(benchmark::State& state) {
  // Replay-path variant: hash the k indices once per line (indices_of) and
  // drive both the insert and the remove from the precomputed set — the
  // pattern the batched trace replay uses for fill/evict pairs.
  sig::CountingBloomFilter cbf(4096, 3, static_cast<unsigned>(state.range(0)));
  sig::LineAddr line = 0;
  for (auto _ : state) {
    const sig::BloomIndices indices = cbf.indices_of(line);
    cbf.insert(indices);
    cbf.remove(indices);
    ++line;
  }
}
BENCHMARK(BM_CountingBloomInsertRemovePrehashed)->Arg(1)->Arg(2)->Arg(4);

void BM_FilterUnitFillEvict(benchmark::State& state) {
  sig::FilterUnitConfig cfg;
  cfg.num_cores = 2;
  cfg.cache_sets = 256;
  cfg.cache_ways = 16;
  cfg.sample_shift = static_cast<unsigned>(state.range(0));
  sig::FilterUnit fu(cfg);
  util::Rng rng(3);
  sig::LineAddr line = 0;
  for (auto _ : state) {
    const std::size_t set = line & 255;
    fu.on_fill(line, line & 1, set, 0);
    fu.on_evict(line, set, 0);
    ++line;
  }
}
BENCHMARK(BM_FilterUnitFillEvict)->Arg(0)->Arg(2);

void BM_RbvDerivation(benchmark::State& state) {
  sig::FilterUnitConfig cfg;
  cfg.num_cores = 2;
  cfg.cache_sets = static_cast<std::size_t>(state.range(0));
  cfg.cache_ways = 16;
  sig::FilterUnit fu(cfg);
  util::Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const sig::LineAddr line = rng();
    fu.on_fill(line, 0, line & (cfg.cache_sets - 1), 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fu.compute_rbv(0));
  }
}
BENCHMARK(BM_RbvDerivation)->Arg(256)->Arg(4096);

void BM_Symbiosis(benchmark::State& state) {
  sig::FilterUnitConfig cfg;
  cfg.num_cores = 2;
  cfg.cache_sets = static_cast<std::size_t>(state.range(0));
  cfg.cache_ways = 16;
  sig::FilterUnit fu(cfg);
  util::Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const sig::LineAddr line = rng();
    fu.on_fill(line, line & 1, line & (cfg.cache_sets - 1), 0);
  }
  const auto rbv = fu.compute_rbv(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fu.symbiosis(rbv, 1));
  }
}
BENCHMARK(BM_Symbiosis)->Arg(256)->Arg(4096);

}  // namespace
