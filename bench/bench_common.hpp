// bench_common.hpp — shared plumbing for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/table.hpp"

namespace symbiosis::bench {

/// The default reproduction pipeline (Core-2-Duo-like machine, weighted
/// interference graph, paper-ratio OS parameters).
[[nodiscard]] inline core::PipelineConfig default_pipeline(std::uint64_t seed = 42) {
  core::PipelineConfig config;
  config.sync_scale();
  config.seed = seed;
  config.measure_max_cycles = 4'000'000'000ull;  // safety net only
  return config;
}

/// Print a Fig 10/11/12-style per-benchmark improvement table.
inline void print_improvements(const std::string& title,
                               const std::vector<core::BenchmarkImprovement>& summary) {
  std::printf("%s\n", title.c_str());
  util::TextTable table({"benchmark", "max improvement", "avg improvement", "mixes",
                         "(oracle max)", "(oracle avg)"});
  double max_of_max = 0.0, sum = 0.0, oracle_sum = 0.0;
  int total = 0;
  for (const auto& row : summary) {
    table.add_row({row.name, util::TextTable::pct(row.max_improvement),
                   util::TextTable::pct(row.avg_improvement()), std::to_string(row.mixes),
                   util::TextTable::pct(row.max_oracle),
                   util::TextTable::pct(row.avg_oracle())});
    max_of_max = std::max(max_of_max, row.max_improvement);
    sum += row.sum_improvement;
    oracle_sum += row.sum_oracle;
    total += row.mixes;
  }
  table.print();
  std::printf("overall: max %s, avg %s (oracle avg %s) across %d benchmark-in-mix samples\n\n",
              util::TextTable::pct(max_of_max).c_str(),
              util::TextTable::pct(total ? sum / total : 0.0).c_str(),
              util::TextTable::pct(total ? oracle_sum / total : 0.0).c_str(), total);
}

}  // namespace symbiosis::bench
