// Figure 3(b) — pairwise interference on the Core 2 Duo (SHARED L2).
//
// The same pairs as Fig 3(a), but one process per core sharing the L2: the
// paper measures degradations up to 67% (mcf paired with libquantum), an
// order of magnitude beyond the private-L2 case, despite the shared cache
// being twice as large.
#include <cstdio>

#include "bench_fig03ab_common.hpp"
#include "machine/config.hpp"

int main() {
  using namespace symbiosis;
  std::printf("=== Figure 3(b): all pairs, Core-2-Duo-like machine, shared L2, split cores ===\n\n");
  const auto result =
      bench::run_pair_sweep(machine::core2duo_config(), /*same_core=*/false,
                            /*length_scale=*/0.3, /*seed=*/11);
  bench::print_pair_sweep(result);
  std::printf(
      "\nExpected shape (paper): far larger degradations than Fig 3(a), with mcf (paired\n"
      "with libquantum) the worst case and povray/hmmer nearly unaffected.\n");
  return 0;
}
