// Micro-benchmarks of the cache/machine substrate: raw cache accesses,
// hierarchy walks with and without the signature unit, and full simulated
// machine steps — the numbers that determine how long the figure benches
// take per simulated reference.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "cachesim/hierarchy.hpp"
#include "machine/machine.hpp"
#include "workload/benchmark_model.hpp"

namespace {

using namespace symbiosis;

void BM_CacheAccess(benchmark::State& state) {
  cachesim::Cache cache({256 * 1024, 16, 64},
                        static_cast<cachesim::ReplacementKind>(state.range(0)));
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(rng.next_below(1 << 16), false, 0));
  }
}
BENCHMARK(BM_CacheAccess)
    ->Arg(static_cast<int>(cachesim::ReplacementKind::Lru))
    ->Arg(static_cast<int>(cachesim::ReplacementKind::TreePlru))
    ->Arg(static_cast<int>(cachesim::ReplacementKind::Random))
    ->Arg(static_cast<int>(cachesim::ReplacementKind::Srrip));

void BM_HierarchyAccess(benchmark::State& state) {
  cachesim::HierarchyConfig cfg;
  cfg.signature.enabled = state.range(0) != 0;
  cachesim::Hierarchy h(cfg);
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.access(0, rng.next_below(1 << 22), false));
  }
}
BENCHMARK(BM_HierarchyAccess)->Arg(0)->Arg(1);

void BM_HierarchyAccessBatch(benchmark::State& state) {
  // The batched trace-replay path. A pregenerated ring of random references
  // keeps RNG cost out of the timed region; one iteration replays one batch,
  // so items_per_second (accesses/s) is the headline throughput number.
  cachesim::HierarchyConfig cfg;
  cfg.signature.enabled = true;
  cachesim::Hierarchy h(cfg);
  util::Rng rng(2);
  constexpr std::size_t kRing = 1 << 16;
  std::vector<cachesim::MemRef> refs(kRing);
  for (auto& ref : refs) ref = {rng.next_below(1 << 22), rng.next_bool(0.3)};
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::size_t pos = 0;
  for (auto _ : state) {
    if (pos + batch > kRing) pos = 0;
    benchmark::DoNotOptimize(h.access_batch(0, refs.data() + pos, batch));
    pos += batch;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_HierarchyAccessBatch)->Arg(64)->Arg(1024);

void BM_ClusteredHierarchyBatch(benchmark::State& state) {
  // The 3-level composable graph on the same batched replay path: the
  // 32-core clustered machine (4x512KB cluster L2s + 2MB SRRIP L3), one
  // core per cluster issuing in rotation so every batch crosses cluster
  // boundaries and touches the shared L3.
  cachesim::HierarchyConfig cfg = machine::clustered32_config().hierarchy;
  cachesim::Hierarchy h(cfg);
  util::Rng rng(2);
  constexpr std::size_t kRing = 1 << 16;
  std::vector<cachesim::MemRef> refs(kRing);
  for (auto& ref : refs) ref = {rng.next_below(1 << 22), rng.next_bool(0.3)};
  const auto batch = static_cast<std::size_t>(state.range(0));
  const std::size_t cores_per_cluster = h.num_cores() / h.num_clusters();
  std::size_t pos = 0;
  std::size_t cluster = 0;
  for (auto _ : state) {
    if (pos + batch > kRing) pos = 0;
    benchmark::DoNotOptimize(h.access_batch(cluster * cores_per_cluster, refs.data() + pos,
                                            batch));
    pos += batch;
    cluster = (cluster + 1) % h.num_clusters();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_ClusteredHierarchyBatch)->Arg(64)->Arg(1024);

void BM_MachineStep(benchmark::State& state) {
  machine::MachineConfig cfg = machine::core2duo_config();
  machine::Machine m(cfg);
  workload::ScaleConfig scale;
  util::Rng rng(3);
  m.add_task(workload::make_spec_workload("mcf", machine::address_space_base(0), rng.split(1),
                                          scale));
  m.add_task(workload::make_spec_workload("libquantum", machine::address_space_base(1),
                                          rng.split(2), scale));
  std::uint64_t simulated = 0;
  for (auto _ : state) {
    m.run_for(100'000);
    simulated += 100'000;
  }
  state.counters["sim_cycles_per_s"] =
      benchmark::Counter(static_cast<double>(simulated), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineStep)->Unit(benchmark::kMillisecond);

void BM_WorkloadNext(benchmark::State& state) {
  workload::ScaleConfig scale;
  auto w = workload::make_spec_workload(state.range(0) == 0 ? "mcf" : "libquantum", 0,
                                        util::Rng{4}, scale);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w->next());
    if (w->complete()) w->restart();
  }
}
BENCHMARK(BM_WorkloadNext)->Arg(0)->Arg(1);

}  // namespace
