// Micro-benchmarks of the runtime-dispatched SIMD kernel layer
// (sig/kernels.hpp): bulk popcount, fused XOR-popcount (the symbiosis
// metric), the batched all-cores evaluation, and the packed 4-bit CBF
// counter kernels. Every backend compiled into this binary is registered
// under its own name (BM_KernelX/<backend>/...), so one run on AVX2
// hardware yields the scalar-vs-avx2 speedup the perf gate tracks.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sig/kernels.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using namespace symbiosis;

std::vector<std::uint64_t> random_words(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  std::vector<std::uint64_t> words(n);
  for (auto& word : words) word = rng();
  return words;
}

std::vector<std::uint8_t> random_nibbles(std::uint64_t seed, std::size_t nibbles) {
  util::Rng rng(seed);
  std::vector<std::uint8_t> packed((nibbles + 1) / 2);
  for (auto& byte : packed) {
    byte = static_cast<std::uint8_t>((rng.next_below(16) << 4) | rng.next_below(16));
  }
  if ((nibbles & 1) != 0) packed.back() &= 0x0f;  // keep the padding nibble zero
  return packed;
}

void bm_popcount(benchmark::State& state, const sig::kernels::KernelOps& ops, std::size_t n) {
  const auto words = random_words(1, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.popcount(words.data(), n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
}

void bm_symbiosis_eval(benchmark::State& state, const sig::kernels::KernelOps& ops,
                       std::size_t n) {
  // One symbiosis evaluation: popcount(RBV XOR CF) over n 64-bit words.
  const auto rbv = random_words(2, n);
  const auto cf = random_words(3, n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.xor_popcount(rbv.data(), cf.data(), n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void bm_symbiosis_batch(benchmark::State& state, const sig::kernels::KernelOps& ops,
                        std::size_t cores, std::size_t n) {
  // The FilterUnit::symbiosis_all shape: one RBV against every core's CF.
  const auto rbv = random_words(4, n);
  std::vector<std::vector<std::uint64_t>> filters;
  std::vector<const std::uint64_t*> ptrs;
  for (std::size_t c = 0; c < cores; ++c) {
    filters.push_back(random_words(10 + c, n));
    ptrs.push_back(filters.back().data());
  }
  std::vector<std::size_t> out(cores);
  for (auto _ : state) {
    ops.xor_popcount_many(rbv.data(), ptrs.data(), cores, n, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * cores));
}

void bm_cbf_decay(benchmark::State& state, const sig::kernels::KernelOps& ops,
                  std::size_t nibbles) {
  auto packed = random_nibbles(5, nibbles);
  for (auto _ : state) {
    ops.nibble_decay(packed.data(), nibbles, 15);
    benchmark::DoNotOptimize(packed.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * nibbles));
}

void bm_cbf_merge(benchmark::State& state, const sig::kernels::KernelOps& ops,
                  std::size_t nibbles) {
  auto dst = random_nibbles(6, nibbles);
  const auto src = random_nibbles(7, nibbles);
  for (auto _ : state) {
    ops.nibble_merge_saturating(dst.data(), src.data(), nibbles, 15);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * nibbles));
}

void bm_cbf_count_eq(benchmark::State& state, const sig::kernels::KernelOps& ops,
                     std::size_t nibbles) {
  const auto packed = random_nibbles(8, nibbles);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.nibble_count_eq(packed.data(), nibbles, 0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * nibbles));
}

void register_backend(util::SimdBackend backend) {
  const sig::kernels::KernelOps& ops = sig::kernels::kernel_ops(backend);
  const std::string tag(util::simd_backend_name(backend));

  benchmark::RegisterBenchmark(("BM_KernelPopcount/" + tag + "/1024").c_str(),
                               [&ops](benchmark::State& s) { bm_popcount(s, ops, 1024); });
  // 64 words = the paper's 4096-bit signature; 1024 words bounds big filters.
  benchmark::RegisterBenchmark(("BM_KernelSymbiosisEval/" + tag + "/64").c_str(),
                               [&ops](benchmark::State& s) { bm_symbiosis_eval(s, ops, 64); });
  benchmark::RegisterBenchmark(("BM_KernelSymbiosisEval/" + tag + "/1024").c_str(),
                               [&ops](benchmark::State& s) { bm_symbiosis_eval(s, ops, 1024); });
  benchmark::RegisterBenchmark(
      ("BM_KernelSymbiosisBatch/" + tag + "/8x64").c_str(),
      [&ops](benchmark::State& s) { bm_symbiosis_batch(s, ops, 8, 64); });
  benchmark::RegisterBenchmark(("BM_KernelCbfDecay/" + tag + "/65536").c_str(),
                               [&ops](benchmark::State& s) { bm_cbf_decay(s, ops, 65536); });
  benchmark::RegisterBenchmark(("BM_KernelCbfMerge/" + tag + "/65536").c_str(),
                               [&ops](benchmark::State& s) { bm_cbf_merge(s, ops, 65536); });
  benchmark::RegisterBenchmark(("BM_KernelCbfCountEq/" + tag + "/65536").c_str(),
                               [&ops](benchmark::State& s) { bm_cbf_count_eq(s, ops, 65536); });
}

struct KernelBenchRegistrar {
  KernelBenchRegistrar() {
    for (const util::SimdBackend backend : util::available_simd_backends()) {
      register_backend(backend);
    }
  }
};
const KernelBenchRegistrar kRegistrar;

}  // namespace
