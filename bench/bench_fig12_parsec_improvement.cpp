// Figure 12 — multi-threaded PARSEC improvements (two-phase allocation).
//
// Mixes of four 4-thread PARSEC-like programs, scheduled with the §3.3.4
// two-phase algorithm (weight-sort threads within a process, weighted
// interference graph across processes with pinned intra-process edges).
// The paper reports modest gains topping out at 10.1% (ferret), smaller
// than SPEC because PARSEC working sets are more compute-bound.
//
// Thread-level mappings cannot be enumerated exhaustively (C(16,8) = 12870
// per mix), so improvements are measured against the worst of {default,
// chosen, N random balanced mappings} — see DESIGN.md.
#include <cstdio>

#include "bench_common.hpp"
#include "util/cli.hpp"
#include "workload/parsec_model.hpp"

int main(int argc, char** argv) {
  using namespace symbiosis;
  util::ArgParser args("bench_fig12", "Figure 12: PARSEC multi-threaded improvements");
  auto& per_benchmark = args.add_u64("per-benchmark", "mixes each benchmark appears in", 2);
  auto& seed = args.add_u64("seed", "RNG seed", 42);
  if (!args.parse(argc, argv)) return 1;

  std::printf("=== Figure 12: max/avg improvement per PARSEC program (4 threads each) ===\n\n");
  core::PipelineConfig config = bench::default_pipeline(seed);
  config.scale.length_scale = 0.6;  // 16 schedulable threads per mix
  const auto summary =
      core::sweep_pool(config, workload::parsec_pool(), 4,
                       static_cast<std::size_t>(per_benchmark), /*multithreaded=*/true);
  bench::print_improvements("two-phase multithreaded allocation, chosen-vs-worst-of-sample:",
                            summary);
  std::printf(
      "Expected shape (paper): modest improvements overall (working sets are smaller\n"
      "and more compute-bound than SPEC), with ferret at the top (~10%%).\n");
  return 0;
}
