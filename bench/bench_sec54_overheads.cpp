// §5.4 — implementation overheads: hardware cost of the signature unit and
// the effect of set-sampling on both cost and decision quality.
//
// The paper's arithmetic: (2N + L) signature bits per tracked line over
// (64 + 18) bits of per-line storage = 8.5% for a dual-core with 3-bit
// counters, "inordinately large"; 25% set-sampling brings it to 2.13%, and
// sampling "does not affect the correctness of the algorithm" — the chosen
// schedules stay the same. We reproduce the cost table and measure decision
// agreement across sampling ratios on representative mixes.
#include <cstdio>

#include "bench_common.hpp"
#include "core/overheads.hpp"

using namespace symbiosis;

int main() {
  std::printf("=== Section 5.4: implementation overheads ===\n\n");

  // --- hardware cost table ---
  util::TextTable hardware({"cores", "sampling", "bits/line", "paper arithmetic",
                            "64B-line arithmetic", "storage for 4MB L2"});
  for (const std::size_t cores : {2, 4, 8}) {
    for (const double ratio : {1.0, 0.5, 0.25, 0.125}) {
      core::OverheadModel model;
      model.num_cores = cores;
      model.sample_ratio = ratio;
      char storage[32];
      std::snprintf(storage, sizeof storage, "%.1f KB", model.storage_bytes(65536) / 1024.0);
      hardware.add_row({std::to_string(cores), util::TextTable::pct(ratio, 1),
                        util::TextTable::fmt(model.bits_per_tracked_line(), 0),
                        util::TextTable::pct(model.relative_overhead_paper(), 2),
                        util::TextTable::pct(model.relative_overhead_64byte_line(), 2), storage});
    }
  }
  hardware.print();
  std::printf(
      "\npaper's quoted numbers: 8.5%% unsampled dual-core, 2.13%% at 25%% sampling.\n");

  std::printf("\nsoftware overheads: %s\n\n",
              core::software_cost_summary(2, 65536, 20'000'000).c_str());

  // --- decision agreement under sampling ---
  std::printf("decision agreement: chosen mapping per sampling ratio\n");
  const std::vector<std::vector<std::string>> mixes = {
      {"mcf", "libquantum", "povray", "gobmk"},
      {"omnetpp", "libquantum", "astar", "perlbench"},
  };
  util::TextTable agreement({"mix", "100%", "50%", "25%", "12.5%", "agree with unsampled?"});
  for (const auto& mix : mixes) {
    std::vector<std::string> row = {mix[0] + "/" + mix[1] + "/.."};
    std::string reference;
    bool all_agree = true;
    for (const unsigned shift : {0u, 1u, 2u, 3u}) {
      core::PipelineConfig config = bench::default_pipeline();
      config.machine.hierarchy.signature.sample_shift = shift;
      core::SymbioticScheduler pipeline(config);
      const std::string key = pipeline.choose_allocation(mix).key();
      if (shift == 0) reference = key;
      all_agree = all_agree && key == reference;
      row.push_back(key);
    }
    row.push_back(all_agree ? "yes" : "NO");
    agreement.add_row(row);
  }
  agreement.print();
  std::printf(
      "\nExpected shape (paper): 25%% sampling leaves the chosen schedules unchanged\n"
      "while cutting the hardware overhead 4x (8.5%% -> 2.13%%).\n");
  return 0;
}
