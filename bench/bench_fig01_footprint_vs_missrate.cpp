// Figure 1 — different cache footprints with the same miss rate.
//
// The paper's motivating example: in an 8-set direct-mapped cache, app A
// (stride 8) and app B (stride 2) both miss on every access, yet A occupies
// 1/8 of the cache and B 1/2. Event counters cannot tell them apart; the
// footprint can. We re-enact it on a real simulated cache and additionally
// show that the counting-Bloom-filter occupancy weight exposes the
// difference while the miss rate does not.
#include <cstdio>

#include "cachesim/cache.hpp"
#include "sig/filter_unit.hpp"
#include "util/table.hpp"
#include "workload/access_pattern.hpp"

int main() {
  using namespace symbiosis;
  std::printf("=== Figure 1: different cache footprints with the same miss rate ===\n\n");

  // 8-set direct-mapped cache, 64B lines — exactly the paper's toy config.
  const cachesim::CacheGeometry geom{8 * 64, 1, 64};

  util::TextTable table({"app", "stride (lines)", "miss rate", "footprint (lines)",
                         "CBF occupancy weight"});

  for (const std::uint64_t stride_lines : {8ull, 2ull, 1ull}) {
    cachesim::Cache cache(geom, cachesim::ReplacementKind::Lru);
    sig::FilterUnitConfig fc;
    fc.num_cores = 1;
    fc.cache_sets = geom.sets();
    fc.cache_ways = geom.ways;
    fc.hash = sig::HashKind::Modulo;
    sig::FilterUnit filter(fc);

    workload::PatternSpec spec;
    spec.kind = workload::PatternKind::Strided;
    // Region of 16 lines so every stride wraps and revisits the same lines
    // forever — the steady-state pattern of the figure.
    spec.region_bytes = 16 * 64;
    spec.stride_bytes = stride_lines * 64;
    util::Rng rng(1);
    auto pattern = workload::make_pattern(spec, 0, rng);

    for (int i = 0; i < 4096; ++i) {
      const auto line = geom.line_of(pattern->next(rng));
      const auto result = cache.access(line, false, 0);
      if (!result.hit) {
        if (result.evicted) filter.on_evict(result.victim_line, result.set, result.way);
        filter.on_fill(line, 0, result.set, result.way);
      }
    }

    table.add_row({stride_lines == 8 ? "A (paper)" : stride_lines == 2 ? "B (paper)" : "unit",
                   std::to_string(stride_lines),
                   util::TextTable::pct(cache.stats().miss_rate()),
                   std::to_string(cache.occupancy()),
                   std::to_string(filter.core_filter_weight(0))});
  }
  table.print();
  std::printf(
      "\nExpected shape (paper): strides 8 and 2 share a ~100%% miss rate but occupy\n"
      "1 vs 4 of the 8 cache lines; the occupancy weight tracks the footprint.\n");
  return 0;
}
