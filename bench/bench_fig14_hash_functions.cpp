// Figure 14 — Bloom-filter hash function comparison.
//
// §5.3 evaluates XOR-fold, XOR-inverse-reverse, modulo, and presence bits
// on representative mixes: the first three perform near-identically (modulo
// occasionally slightly worse); presence bits saturate for cache-heavy
// processes, convey no information, and leave the default schedule in
// place. We reproduce the comparison and add the paper's other saturation
// argument as an ablation: k = 2 hash functions on the same small filter.
#include <cstdio>

#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace symbiosis;

namespace {

double mean_improvement(const core::MixOutcome& outcome) {
  double sum = 0.0;
  for (std::size_t i = 0; i < outcome.mix.size(); ++i) sum += outcome.improvement_vs_worst(i);
  return sum / static_cast<double>(outcome.mix.size());
}

/// Average CF fill ratio observed at the end of a short emulation — the
/// §5.3 saturation diagnostic.
double observe_saturation(const core::PipelineConfig& config,
                          const std::vector<std::string>& mix) {
  machine::Machine m(config.machine);
  (void)core::add_mix_tasks(m, mix, config.scale, config.seed);
  m.run_for(30'000'000);
  const auto* filter = m.hierarchy().filter();
  double fill = 0.0;
  for (std::size_t c = 0; c < config.machine.hierarchy.num_cores; ++c) {
    fill += filter->core_filter_fill(c);
  }
  return fill / static_cast<double>(config.machine.hierarchy.num_cores);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_fig14", "Figure 14: hash function comparison");
  auto& seed = args.add_u64("seed", "RNG seed", 42);
  if (!args.parse(argc, argv)) return 1;

  std::printf("=== Figure 14: comparing Bloom-filter hash functions ===\n\n");

  const std::vector<std::vector<std::string>> mixes = {
      {"perlbench", "gobmk", "libquantum", "omnetpp"},
      {"mcf", "hmmer", "libquantum", "omnetpp"},
      {"gobmk", "hmmer", "libquantum", "povray"},
  };

  struct Variant {
    std::string label;
    sig::HashKind hash;
    unsigned k;
  };
  const std::vector<Variant> variants = {
      {"xor", sig::HashKind::Xor, 1},
      {"xor-inv-rev", sig::HashKind::XorInverseReverse, 1},
      {"modulo", sig::HashKind::Modulo, 1},
      {"presence", sig::HashKind::Presence, 1},
      {"xor, k=2 (ablation)", sig::HashKind::Xor, 2},
  };

  const core::PipelineConfig base = bench::default_pipeline(seed);

  // Measure all mappings of each mix once (hash choice only affects the
  // phase-1 decision, not the measured runtimes).
  std::vector<core::MixOutcome> measured(mixes.size());
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    measured[i].mix = mixes[i];
    for (const auto& alloc : sched::enumerate_balanced_allocations(mixes[i].size(), 2)) {
      measured[i].mappings.push_back(core::measure_mapping(base, mixes[i], alloc));
    }
  }

  util::TextTable table;
  {
    std::vector<std::string> header = {"hash"};
    for (const auto& mix : mixes) header.push_back(mix[0] + "/" + mix[1] + "/..");
    header.push_back("mean");
    header.push_back("CF fill");
    table.set_header(header);
  }

  for (const auto& variant : variants) {
    core::PipelineConfig config = base;
    config.machine.hierarchy.signature.hash = variant.hash;
    config.machine.hierarchy.signature.hash_functions = variant.k;

    std::vector<std::string> row = {variant.label};
    double total = 0.0;
    for (std::size_t i = 0; i < mixes.size(); ++i) {
      core::SymbioticScheduler pipeline(config);
      const sched::Allocation chosen = pipeline.choose_allocation(mixes[i]);
      core::MixOutcome outcome = measured[i];
      outcome.chosen = 0;
      for (std::size_t k = 0; k < outcome.mappings.size(); ++k) {
        if (outcome.mappings[k].allocation == chosen) outcome.chosen = k;
      }
      const double improvement = mean_improvement(outcome);
      total += improvement;
      row.push_back(util::TextTable::pct(improvement));
    }
    row.push_back(util::TextTable::pct(total / static_cast<double>(mixes.size())));
    row.push_back(util::TextTable::pct(observe_saturation(config, mixes[1])));
    table.add_row(row);
  }
  std::printf("mean improvement over the worst mapping, per mix, by hash function:\n");
  table.print();

  std::printf(
      "\nExpected shape (paper): xor ~ xor-inv-rev ~ modulo; presence bits saturate\n"
      "(CF fill near 100%% for cache-heavy mixes) and add little or nothing over the\n"
      "default schedule. The k=2 ablation shows why one hash function is enough: more\n"
      "hashes only saturate the small filter faster.\n");
  return 0;
}
