// Micro-benchmarks of the MIN-CUT solvers and a solution-quality summary —
// the ablation behind DESIGN.md's "solver choice" row (the paper used an
// SDP solver; any fast approximation suffices at tens of nodes, §3.3.2).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "sched/mincut.hpp"
#include "util/rng.hpp"

namespace {

using namespace symbiosis;

sched::SymMatrix random_graph(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  sched::SymMatrix w(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) w.set(i, j, rng.next_double());
  }
  return w;
}

void BM_MinCut(benchmark::State& state) {
  const auto method = static_cast<sched::MinCutMethod>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  if (method == sched::MinCutMethod::Exhaustive && n > 16) {
    state.SkipWithError("exhaustive beyond n=16 is not meaningful");
    return;
  }
  const sched::SymMatrix w = random_graph(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched::balanced_min_cut(w, 2, method, 3));
  }
}
BENCHMARK(BM_MinCut)
    ->ArgsProduct({{static_cast<int>(sched::MinCutMethod::Exhaustive),
                    static_cast<int>(sched::MinCutMethod::Greedy),
                    static_cast<int>(sched::MinCutMethod::KernighanLin),
                    static_cast<int>(sched::MinCutMethod::Spectral)},
                   {8, 12, 16}});

void BM_MinCutHierarchical4Way(benchmark::State& state) {
  const sched::SymMatrix w = random_graph(static_cast<std::size_t>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::balanced_min_cut(w, 4, sched::MinCutMethod::KernighanLin, 5));
  }
}
BENCHMARK(BM_MinCutHierarchical4Way)->Arg(16)->Arg(32);

/// Not a timing benchmark: prints average solution quality (cut weight
/// relative to exhaustive optimum) once at the end of the run.
void BM_MinCutQualityReport(benchmark::State& state) {
  double kl_ratio = 0.0, greedy_ratio = 0.0, spectral_ratio = 0.0;
  const int trials = 30;
  for (auto _ : state) {
    kl_ratio = greedy_ratio = spectral_ratio = 0.0;
    for (int t = 0; t < trials; ++t) {
      const sched::SymMatrix w = random_graph(10, 100 + t);
      const double optimal =
          cut_weight(w, balanced_min_cut(w, 2, sched::MinCutMethod::Exhaustive));
      kl_ratio += cut_weight(w, balanced_min_cut(w, 2, sched::MinCutMethod::KernighanLin)) /
                  optimal;
      greedy_ratio += cut_weight(w, balanced_min_cut(w, 2, sched::MinCutMethod::Greedy)) /
                      optimal;
      spectral_ratio +=
          cut_weight(w, balanced_min_cut(w, 2, sched::MinCutMethod::Spectral, t)) / optimal;
    }
  }
  state.counters["kl_vs_optimal"] = kl_ratio / trials;
  state.counters["greedy_vs_optimal"] = greedy_ratio / trials;
  state.counters["spectral_vs_optimal"] = spectral_ratio / trials;
}
BENCHMARK(BM_MinCutQualityReport)->Iterations(1);

}  // namespace
