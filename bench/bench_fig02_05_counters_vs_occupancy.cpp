// Figures 2 & 5 — event counters do not track the cache working set; the
// counting-Bloom-filter occupancy weight does.
//
// §2.2 runs a benchmark whose working set changes over time and shows that
// L2 miss counts, TLB misses, and page faults fail to follow the footprint,
// while (Fig 5) the number of ones in the CBF bit-vector follows it
// closely. We synthesize a phased workload whose working set steps through
// grow/shrink cycles, sample every counter each window, and report each
// metric's correlation with the ground-truth L2 footprint.
#include <cstdio>
#include <vector>

#include "machine/machine.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/benchmark_model.hpp"

int main() {
  using namespace symbiosis;
  std::printf("=== Figures 2 & 5: perf counters vs CBF occupancy weight ===\n\n");

  machine::MachineConfig cfg = machine::core2duo_config();
  cfg.track_pages = true;
  machine::Machine m(cfg);

  // Phased working set chosen so misses and footprint DIVERGE (the §2.2
  // argument): a tiny hot phase (no misses, tiny footprint), a streaming
  // phase (enormous miss count, only a churn-sized resident footprint), a
  // large reuse phase (large footprint, moderate misses), and a slow medium
  // phase (medium footprint, almost no misses).
  workload::BenchmarkSpec spec;
  spec.name = "phased";
  auto zipf_phase = [](double kb, double gap) {
    workload::PhaseSpec phase;
    phase.pattern.kind = workload::PatternKind::Zipf;
    phase.pattern.region_bytes = static_cast<std::uint64_t>(kb * 1024);
    phase.pattern.zipf_skew = 0.4;
    phase.compute_gap = gap;
    phase.refs = 60'000;
    return phase;
  };
  spec.phases.push_back(zipf_phase(16.0, 8.0));
  {
    // Fig 1's conflict pattern scaled up: stride of one full set period maps
    // every access into a single L2 set — ~100% misses with a footprint of
    // at most `ways` lines. This is the phase miss counters cannot read.
    workload::PhaseSpec conflict;
    conflict.pattern.kind = workload::PatternKind::Strided;
    conflict.pattern.stride_bytes = cfg.hierarchy.l2.sets() * cfg.hierarchy.l2.line_bytes;
    conflict.pattern.region_bytes = 8 * cfg.hierarchy.l2.size_bytes;
    conflict.compute_gap = 8.0;
    conflict.refs = 60'000;
    spec.phases.push_back(conflict);
  }
  spec.phases.push_back(zipf_phase(192.0, 8.0));
  spec.phases.push_back(zipf_phase(64.0, 40.0));
  spec.total_refs = ~std::uint64_t{0} >> 1;
  const auto id = m.add_task(
      std::make_unique<workload::Workload>(spec, machine::address_space_base(0), util::Rng{7}),
      /*affinity=*/0);

  // A streaming co-runner on core 1 supplies steady eviction pressure so
  // the resident footprint follows the CURRENT working set downward as well
  // as upward (an idle L2 never shrinks anyone's footprint).
  workload::BenchmarkSpec stream;
  stream.name = "background-stream";
  {
    workload::PhaseSpec phase;
    phase.pattern.kind = workload::PatternKind::Random;
    phase.pattern.region_bytes = cfg.hierarchy.l2.size_bytes;
    phase.compute_gap = 30.0;  // gentle pressure: evicts idle lines without
    phase.refs = 100'000;      // squashing the subject's live working set
    stream.phases.push_back(phase);
  }
  stream.total_refs = ~std::uint64_t{0} >> 1;
  const auto bg = m.add_task(
      std::make_unique<workload::Workload>(stream, machine::address_space_base(1), util::Rng{8}),
      /*affinity=*/1);
  m.task(bg).background = true;

  struct WindowSample {
    double footprint, occupancy, l2_misses, tlb_misses, page_faults;
  };
  std::vector<WindowSample> samples;
  machine::TaskCounters last{};

  m.set_periodic_hook(1'000'000, [&](machine::Machine& mm) {
    const auto& counters = mm.task(id).counters();
    WindowSample s;
    s.footprint = static_cast<double>(mm.hierarchy().l2_footprint(0));
    s.occupancy = static_cast<double>(mm.hierarchy().filter()->core_filter_weight(0));
    s.l2_misses = static_cast<double>(counters.l2_misses - last.l2_misses);
    s.tlb_misses = static_cast<double>(counters.tlb_misses - last.tlb_misses);
    s.page_faults = static_cast<double>(counters.page_faults - last.page_faults);
    last = counters;
    samples.push_back(s);
  });
  m.run_for(120'000'000);

  util::TextTable series({"window", "true footprint (lines)", "CBF occupancy", "dL2 miss",
                          "dTLB miss", "dPage faults"});
  for (std::size_t i = 0; i < samples.size(); i += 4) {
    const auto& s = samples[i];
    series.add_row({std::to_string(i), util::TextTable::fmt(s.footprint, 0),
                    util::TextTable::fmt(s.occupancy, 0), util::TextTable::fmt(s.l2_misses, 0),
                    util::TextTable::fmt(s.tlb_misses, 0),
                    util::TextTable::fmt(s.page_faults, 0)});
  }
  std::printf("time series (every 4th window):\n");
  series.print();

  std::vector<double> footprint, occupancy, misses, tlb, faults;
  for (const auto& s : samples) {
    footprint.push_back(s.footprint);
    occupancy.push_back(s.occupancy);
    misses.push_back(s.l2_misses);
    tlb.push_back(s.tlb_misses);
    faults.push_back(s.page_faults);
  }
  util::TextTable corr({"metric", "corr. with true footprint (Pearson)", "(Spearman)"});
  corr.add_row({"CBF occupancy weight", util::TextTable::fmt(util::pearson(footprint, occupancy)),
                util::TextTable::fmt(util::spearman(footprint, occupancy))});
  corr.add_row({"L2 miss count", util::TextTable::fmt(util::pearson(footprint, misses)),
                util::TextTable::fmt(util::spearman(footprint, misses))});
  corr.add_row({"TLB miss count", util::TextTable::fmt(util::pearson(footprint, tlb)),
                util::TextTable::fmt(util::spearman(footprint, tlb))});
  corr.add_row({"page-fault count", util::TextTable::fmt(util::pearson(footprint, faults)),
                util::TextTable::fmt(util::spearman(footprint, faults))});
  std::printf("\ncorrelation with the ground-truth footprint over %zu windows:\n",
              samples.size());
  corr.print();
  std::printf(
      "\nExpected shape (paper): the occupancy weight correlates strongly with the\n"
      "footprint; miss/TLB/page-fault counters do not.\n");
  return 0;
}
