// Applies SYMBIOSIS_LOG before any benchmark runs. The micro-benchmarks use
// benchmark_main's main(), which never touches util::ArgParser (the normal
// carrier of init_log_from_env), so a static initializer fills the gap.
#include "util/log.hpp"

namespace {
[[maybe_unused]] const symbiosis::util::LogLevel g_level_from_env =
    symbiosis::util::init_log_from_env();
}  // namespace
