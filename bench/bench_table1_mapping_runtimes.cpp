// Table 1 — user runtimes of the {povray, gobmk, libquantum, hmmer} mix
// under all three process-to-core mappings, plus the mapping the two-phase
// pipeline picks (the paper's emulation chose AD & BC and libquantum gained
// 11% over its worst mapping).
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace symbiosis;
  std::printf("=== Table 1: user time per mapping, povray/gobmk/libquantum/hmmer ===\n\n");

  const core::PipelineConfig config = bench::default_pipeline();
  const std::vector<std::string> mix = {"povray", "gobmk", "libquantum", "hmmer"};
  const core::MixOutcome outcome = core::run_mix_experiment(config, mix);

  util::TextTable table;
  std::vector<std::string> header = {"benchmark"};
  for (const auto& run : outcome.mappings) header.push_back(run.allocation.describe(mix));
  table.set_header(header);
  for (std::size_t i = 0; i < mix.size(); ++i) {
    std::vector<std::string> row = {mix[i]};
    for (const auto& run : outcome.mappings) {
      row.push_back(util::TextTable::fmt(static_cast<double>(run.user_cycles[i]) / 1e6, 1));
    }
    table.add_row(row);
  }
  std::printf("user time (megacycles):\n");
  table.print();

  std::printf("\nphase-1 majority pick: %s\n",
              outcome.mappings[outcome.chosen].allocation.describe(mix).c_str());
  util::TextTable improvements({"benchmark", "chosen vs worst", "oracle vs worst"});
  for (std::size_t i = 0; i < mix.size(); ++i) {
    improvements.add_row({mix[i], util::TextTable::pct(outcome.improvement_vs_worst(i)),
                          util::TextTable::pct(outcome.oracle_improvement(i))});
  }
  improvements.print();
  std::printf(
      "\nExpected shape (paper): gobmk and libquantum benefit from the chosen schedule\n"
      "(libquantum ~11%%); povray and hmmer are indifferent to the mapping.\n");
  return 0;
}
