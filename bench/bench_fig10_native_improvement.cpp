// Figure 10 — maximum and average per-benchmark improvement, native runs.
//
// The paper runs mixes of four over its 12-program pool on the real Core 2
// Duo, schedules each mix with the weighted interference-graph algorithm,
// and reports each benchmark's maximum and average user-time improvement of
// the chosen mapping over the worst mapping: max 54% (mcf), 49% (omnetpp),
// 22% on average; povray and hmmer gain nothing.
//
// We sweep a deterministic sample of mixes (every benchmark appears in at
// least --per-benchmark mixes; C(12,4)=495 full coverage is out of scope
// for a laptop-scale run and the bench prints exactly what was covered).
#include <cstdio>

#include "bench_common.hpp"
#include "core/report.hpp"
#include "obs/stopwatch.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace symbiosis;
  util::ArgParser args("bench_fig10", "Figure 10: native per-benchmark improvements");
  auto& per_benchmark = args.add_u64("per-benchmark", "mixes each benchmark appears in", 2);
  auto& seed = args.add_u64("seed", "RNG seed", 42);
  auto& report_path = args.add_string("report", "JSON run-report output path ('' = none)", "");
  if (!args.parse(argc, argv)) return 1;

  std::printf("=== Figure 10: max/avg improvement per benchmark (native) ===\n\n");
  const core::PipelineConfig config = bench::default_pipeline(seed);
  obs::PhaseTimings timings;
  core::SweepResult sweep;
  {
    obs::PhaseTimings::Scoped phase(timings, "run_sweep");
    sweep = core::run_sweep(config, workload::spec2006_pool(), 4,
                            static_cast<std::size_t>(per_benchmark));
  }
  const auto& summary = sweep.summary;
  bench::print_improvements("weighted interference graph, chosen-vs-worst:", summary);
  if (!report_path.empty()) {
    core::write_report_file(core::build_sweep_report(config, sweep, timings), report_path);
    std::printf("wrote %s\n", report_path.c_str());
  }
  std::printf(
      "Expected shape (paper): mcf and omnetpp lead (54%% / 49%% max), astar and the\n"
      "mid-pool follow, povray (compute-bound) and hmmer (bandwidth-bound) gain ~0;\n"
      "average around 22%%.\n");
  return 0;
}
