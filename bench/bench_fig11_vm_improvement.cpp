// Figure 11 — per-benchmark improvement when each benchmark runs inside a
// Xen VM.
//
// Same sweep as Figure 10, but phase 2 executes every benchmark in its own
// domain on the hypervisor (per-VM signatures, world-switch costs, Dom0
// pollution, nested-TLB penalty). The paper finds the SAME TREND at lower
// magnitude: max 26% (vs 54% native), average 9.5% (vs 22%).
#include <cstdio>

#include "bench_common.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace symbiosis;
  util::ArgParser args("bench_fig11", "Figure 11: VM per-benchmark improvements");
  auto& per_benchmark = args.add_u64("per-benchmark", "mixes each benchmark appears in", 2);
  auto& seed = args.add_u64("seed", "RNG seed", 42);
  if (!args.parse(argc, argv)) return 1;

  std::printf("=== Figure 11: max/avg improvement per benchmark (inside Xen-like VMs) ===\n\n");
  core::PipelineConfig config = bench::default_pipeline(seed);
  config.virtualized = true;
  const auto summary = core::sweep_pool(config, workload::spec2006_pool(), 4,
                                        static_cast<std::size_t>(per_benchmark));
  bench::print_improvements("weighted interference graph, chosen-vs-worst, VM phase 2:", summary);
  std::printf(
      "Expected shape (paper): the same ordering as Figure 10 but diluted by\n"
      "virtualization overhead — max ~half the native figure, average ~9.5%%.\n");
  return 0;
}
