// Figure 13 — the three resource-allocation algorithms compared, plus
// baselines, on representative mixes.
//
// §5.2: the weight-sorting algorithm, despite its simplicity, sometimes
// gives the best results (footprint alone is a strong predictor); the
// weighted interference graph is as good or better overall; the plain
// interference graph can trail both. We add the OS-default and the
// related-work miss-rate heuristic as anchors, and an ablation of the
// allocator invocation period (the paper's 100 ms).
//
// Implementation note: all mappings of a mix are measured ONCE; each
// algorithm then only pays for its phase-1 emulation and is charged the
// measured runtime of whatever mapping it voted for.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "util/cli.hpp"

using namespace symbiosis;

namespace {

/// Mean improvement over the worst mapping, across the mix's benchmarks.
double mean_improvement(const core::MixOutcome& outcome) {
  double sum = 0.0;
  for (std::size_t i = 0; i < outcome.mix.size(); ++i) sum += outcome.improvement_vs_worst(i);
  return sum / static_cast<double>(outcome.mix.size());
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args("bench_fig13", "Figure 13: allocation algorithm comparison");
  auto& seed = args.add_u64("seed", "RNG seed", 42);
  if (!args.parse(argc, argv)) return 1;

  std::printf("=== Figure 13: comparison of the three allocation algorithms ===\n\n");

  const std::vector<std::vector<std::string>> mixes = {
      {"mcf", "libquantum", "povray", "gobmk"},
      {"omnetpp", "libquantum", "astar", "perlbench"},
      {"mcf", "hmmer", "omnetpp", "sjeng"},
      {"gcc", "libquantum", "bzip2", "h264ref"},
  };
  const std::vector<std::string> algorithms = {"weight-sort", "graph", "weighted-graph",
                                               "miss-rate", "default"};

  util::TextTable table;
  {
    std::vector<std::string> header = {"algorithm"};
    for (const auto& mix : mixes) {
      header.push_back(mix[0] + "/" + mix[1] + "/..");
    }
    header.push_back("mean");
    table.set_header(header);
  }

  // Measure all mappings of each mix once.
  std::vector<core::MixOutcome> measured(mixes.size());
  const core::PipelineConfig base = bench::default_pipeline(seed);
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    measured[i].mix = mixes[i];
    for (const auto& alloc : sched::enumerate_balanced_allocations(mixes[i].size(), 2)) {
      measured[i].mappings.push_back(core::measure_mapping(base, mixes[i], alloc));
    }
  }

  for (const auto& algorithm : algorithms) {
    std::vector<std::string> row = {algorithm};
    double total = 0.0;
    for (std::size_t i = 0; i < mixes.size(); ++i) {
      core::PipelineConfig config = base;
      config.allocator = algorithm;
      core::SymbioticScheduler pipeline(config);
      const sched::Allocation chosen = pipeline.choose_allocation(mixes[i]);
      core::MixOutcome outcome = measured[i];
      outcome.chosen = 0;
      for (std::size_t k = 0; k < outcome.mappings.size(); ++k) {
        if (outcome.mappings[k].allocation == chosen) outcome.chosen = k;
      }
      const double improvement = mean_improvement(outcome);
      total += improvement;
      row.push_back(util::TextTable::pct(improvement));
    }
    row.push_back(util::TextTable::pct(total / static_cast<double>(mixes.size())));
    table.add_row(row);
  }

  // Oracle row: best possible mapping per benchmark (headroom).
  {
    std::vector<std::string> row = {"(oracle best mapping)"};
    double total = 0.0;
    for (auto& outcome : measured) {
      double best = 0.0;
      for (std::size_t k = 0; k < outcome.mappings.size(); ++k) {
        outcome.chosen = k;
        best = std::max(best, mean_improvement(outcome));
      }
      total += best;
      row.push_back(util::TextTable::pct(best));
    }
    row.push_back(util::TextTable::pct(total / static_cast<double>(mixes.size())));
    table.add_row(row);
  }

  std::printf("mean improvement over the worst mapping, per mix:\n");
  table.print();

  // Ablation: allocator invocation period (§5.4 argues 100 ms is cheap and
  // §4.1 uses it; shorter windows = fewer samples per vote).
  std::printf("\nablation: allocator period (weighted-graph, first mix):\n");
  util::TextTable ablation({"period (Mcycles)", "improvement"});
  for (const std::uint64_t period : {5'000'000ull, 10'000'000ull, 20'000'000ull, 40'000'000ull}) {
    core::PipelineConfig config = base;
    config.allocator_period_cycles = period;
    core::SymbioticScheduler pipeline(config);
    const sched::Allocation chosen = pipeline.choose_allocation(mixes[0]);
    core::MixOutcome outcome = measured[0];
    outcome.chosen = 0;
    for (std::size_t k = 0; k < outcome.mappings.size(); ++k) {
      if (outcome.mappings[k].allocation == chosen) outcome.chosen = k;
    }
    ablation.add_row({util::TextTable::fmt(static_cast<double>(period) / 1e6, 0),
                      util::TextTable::pct(mean_improvement(outcome))});
  }
  ablation.print();

  std::printf(
      "\nExpected shape (paper): weighted-graph >= the other two paper algorithms;\n"
      "weight-sort close behind (footprint is a strong signal); graph and the\n"
      "miss-rate heuristic trail.\n");
  return 0;
}
