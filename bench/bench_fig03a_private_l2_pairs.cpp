// Figure 3(a) — pairwise interference on the P4 Xeon SMP (PRIVATE L2s).
//
// Both processes of every pair are confined to ONE processor, so the only
// interference is cache warm-up across context switches: the paper finds a
// maximum degradation below ~10%. The Fig 3(b) bench runs the same pairs on
// the shared-L2 machine where degradation reaches 67%.
#include <cstdio>

#include "bench_fig03ab_common.hpp"
#include "machine/config.hpp"

int main() {
  using namespace symbiosis;
  std::printf("=== Figure 3(a): all pairs, P4-SMP-like machine, private L2, same core ===\n\n");
  const auto result =
      bench::run_pair_sweep(machine::p4smp_config(), /*same_core=*/true, /*length_scale=*/0.3,
                            /*seed=*/11);
  bench::print_pair_sweep(result);
  std::printf(
      "\nExpected shape (paper): every bar under ~10%% — context-switch warm-up only.\n");
  return 0;
}
