// mix_runner — a general CLI over the experiment harness: run any mix under
// any machine/allocator configuration, print the full mapping matrix, and
// optionally dump raw results as CSV for external plotting.
//
//   ./mix_runner --mix mcf,omnetpp,libquantum,povray --cores 2
//                --allocator weight-sort --csv /tmp/results.csv
//   ./mix_runner --mix mcf,omnetpp,gcc,bzip2,libquantum,povray,gobmk,hmmer
//                --cores 4 --l2-kb 512
#include <cstdio>
#include <sstream>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "obs/stopwatch.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace symbiosis;

  util::ArgParser args("mix_runner", "run one mix end to end, any configuration");
  auto& mix_arg = args.add_string("mix", "comma-separated pool programs",
                                  "mcf,libquantum,povray,gobmk");
  auto& cores = args.add_u64("cores", "number of cores (shared L2)", 2);
  auto& l2_kb = args.add_u64("l2-kb", "shared L2 capacity in KiB", 256);
  auto& allocator = args.add_string("allocator", "allocation policy", "weighted-graph");
  auto& hash = args.add_string("hash", "signature hash function", "xor");
  auto& sample_shift = args.add_u64("sample-shift", "set-sampling shift", 0);
  auto& scale = args.add_double("scale", "benchmark length multiplier", 1.0);
  auto& seed = args.add_u64("seed", "RNG seed", 42);
  auto& vm = args.add_flag("vm", "measure inside VMs on the hypervisor");
  auto& csv_path = args.add_string("csv", "CSV output path ('' = none)", "");
  auto& report_path = args.add_string("report", "JSON run-report output path ('' = none)", "");
  if (!args.parse(argc, argv)) return 1;

  std::vector<std::string> mix;
  {
    std::stringstream ss(mix_arg);
    std::string name;
    while (std::getline(ss, name, ',')) mix.push_back(name);
  }
  if (mix.size() < cores) {
    std::fprintf(stderr, "mix_runner: need at least as many programs as cores\n");
    return 1;
  }

  core::PipelineConfig config;
  config.machine.hierarchy.num_cores = cores;
  config.machine.hierarchy.l2.size_bytes = l2_kb * 1024;
  config.machine.hierarchy.signature.hash = sig::parse_hash_kind(hash);
  config.machine.hierarchy.signature.sample_shift = static_cast<unsigned>(sample_shift);
  config.sync_scale();
  config.scale.length_scale = scale;
  config.allocator = allocator;
  config.seed = seed;
  config.virtualized = vm;
  config.measure_max_cycles = 8'000'000'000ull;

  obs::PhaseTimings timings;
  core::MixOutcome outcome;
  {
    obs::PhaseTimings::Scoped phase(timings, "run_mix_experiment");
    outcome = core::run_mix_experiment(config, mix);
  }

  util::TextTable table;
  std::vector<std::string> header = {"benchmark"};
  for (const auto& run : outcome.mappings) header.push_back(run.allocation.describe(mix));
  table.set_header(header);
  for (std::size_t i = 0; i < mix.size(); ++i) {
    std::vector<std::string> row = {mix[i]};
    for (const auto& run : outcome.mappings) {
      row.push_back(util::TextTable::fmt(static_cast<double>(run.user_cycles[i]) / 1e6, 1));
    }
    table.add_row(row);
  }
  std::printf("user time per mapping (megacycles), %zu mappings:\n", outcome.mappings.size());
  table.print();
  std::printf("\nchosen: %s\n",
              outcome.mappings[outcome.chosen].allocation.describe(mix).c_str());

  util::TextTable improvements({"benchmark", "chosen vs worst", "oracle vs worst"});
  for (std::size_t i = 0; i < mix.size(); ++i) {
    improvements.add_row({mix[i], util::TextTable::pct(outcome.improvement_vs_worst(i)),
                          util::TextTable::pct(outcome.oracle_improvement(i))});
  }
  improvements.print();

  if (!csv_path.empty()) {
    util::CsvWriter csv(csv_path);
    std::vector<std::string> head = {"benchmark"};
    for (const auto& run : outcome.mappings) head.push_back(run.allocation.key());
    head.push_back("improvement_vs_worst");
    head.push_back("oracle_vs_worst");
    csv.row(head);
    for (std::size_t i = 0; i < mix.size(); ++i) {
      std::vector<std::string> row = {mix[i]};
      for (const auto& run : outcome.mappings) {
        row.push_back(std::to_string(run.user_cycles[i]));
      }
      row.push_back(std::to_string(outcome.improvement_vs_worst(i)));
      row.push_back(std::to_string(outcome.oracle_improvement(i)));
      csv.row(row);
    }
    std::printf("\nwrote %s\n", csv_path.c_str());
  }

  if (!report_path.empty()) {
    core::write_report_file(core::build_mix_report(config, outcome, timings), report_path);
    std::printf("\nwrote %s\n", report_path.c_str());
  }
  return 0;
}
