// clustered_manycore — the composable hierarchy graph beyond two levels.
//
// Builds the 32-core clustered CMP (4 clusters of 8 cores, each cluster
// sharing a 512KB L2 with its own signature unit, all under one 2MB SRRIP
// L3), drops the full SPEC pool onto it under default OS scheduling, runs a
// fixed window, and prints the topology, per-level traffic and hit rates,
// per-cluster L2 occupancy and signature weights, and a cross-cluster
// symbiosis estimate (disjoint clusters -> maximal symbiosis by
// construction).
//
//   ./clustered_manycore [--manycore] [--l3-partition] [--cycles 20000000]
//                        [--seed 42] [--scale 0.2]
//
//   --manycore      64 cores in 8 clusters (4MB/32-way L3) instead of 32/4
//   --l3-partition  give each cluster an equal contiguous slice of L3 ways
#include <cstdio>
#include <vector>

#include "machine/config.hpp"
#include "machine/machine.hpp"
#include "sig/filter_unit.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/benchmark_model.hpp"

int main(int argc, char** argv) {
  using namespace symbiosis;

  util::ArgParser args("clustered_manycore", "clustered L2s + shared L3, end to end");
  auto& manycore = args.add_flag("manycore", "64 cores / 8 clusters instead of 32 / 4");
  auto& partition = args.add_flag("l3-partition", "one contiguous L3 way slice per cluster");
  auto& cycles = args.add_u64("cycles", "simulated cycles to run", 20'000'000);
  auto& seed = args.add_u64("seed", "RNG seed", 42);
  auto& scale = args.add_double("scale", "benchmark length multiplier", 0.2);
  if (!args.parse(argc, argv)) return 1;

  machine::MachineConfig config =
      manycore ? machine::manycore64_config() : machine::clustered32_config();
  config.seed = seed;
  if (partition) {
    const cachesim::HierarchyTopology topo = config.hierarchy.topology();
    config.hierarchy.l3_way_partition.ways_per_group.assign(
        topo.clusters(), config.hierarchy.l3->ways / topo.clusters());
  }

  machine::Machine m(config);
  const cachesim::HierarchyTopology topo = m.hierarchy().topology();
  std::printf("topology: %s\n", topo.describe().c_str());

  // One copy of every pool program, round-robin across the machine; the OS
  // scheduler (with migration) spreads them over the clusters.
  workload::ScaleConfig ws;
  ws.length_scale = scale;
  util::Rng rng(seed);
  const auto& pool = workload::spec2006_pool();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    m.add_task(workload::make_spec_workload(pool[i], machine::address_space_base(i),
                                            rng.split(i + 1), ws));
  }
  std::printf("tasks: %zu (full SPEC pool) on %zu cores, running %llu cycles\n\n", pool.size(),
              m.hierarchy().num_cores(), static_cast<unsigned long long>(cycles));
  m.run_for(cycles);

  // Per-level traffic: the flow-conservation view (L2 accesses == L1
  // misses, L3 accesses == L2 misses).
  cachesim::Hierarchy& h = m.hierarchy();
  util::TextTable levels;
  levels.set_header({"level", "accesses", "hits", "misses", "hit rate"});
  for (const char* level : {"l1", "l2", "l3"}) {
    if (level[1] == '3' && !h.has_l3()) continue;
    const cachesim::LevelStats s = h.level_stats(level);
    levels.add_row({level, std::to_string(s.accesses), std::to_string(s.hits),
                    std::to_string(s.misses),
                    util::TextTable::fmt(
                        s.accesses ? 100.0 * static_cast<double>(s.hits) /
                                         static_cast<double>(s.accesses)
                                   : 0.0,
                        1) +
                        "%"});
  }
  std::printf("per-level traffic:\n%s\n", levels.str().c_str());

  // Per-cluster view: L2 miss rate, occupancy, and the signature unit's
  // aggregate core-filter weight (the hardware's footprint estimate).
  util::TextTable clusters;
  clusters.set_header({"cluster", "l2 miss rate", "l2 occupancy", "sig weight"});
  for (std::size_t cl = 0; cl < topo.clusters(); ++cl) {
    const cachesim::Cache& l2 = h.cluster_l2(cl);
    const sig::FilterUnit* fu = h.filter_for_core(cl * topo.cores_per_cluster());
    std::size_t weight = 0;
    if (fu != nullptr) {
      for (std::size_t c = 0; c < fu->num_cores(); ++c) weight += fu->core_filter_weight(c);
    }
    clusters.add_row({std::to_string(cl),
                      util::TextTable::fmt(100.0 * l2.stats().miss_rate(), 1) + "%",
                      std::to_string(l2.occupancy()), std::to_string(weight)});
  }
  std::printf("per-cluster L2s:\n%s\n", clusters.str().c_str());

  // Cross-cluster symbiosis: a core's RBV scored against a core behind a
  // DIFFERENT filter is popcount(RBV) + weight — disjoint caches cannot
  // contend, so moving heavy co-runners apart maximizes this.
  if (h.filter_for_core(0) != nullptr && topo.clusters() > 1) {
    const sig::FilterUnit& a = *h.filter_for_core(0);
    const sig::FilterUnit& b = *h.filter_for_core(topo.cores_per_cluster());
    const std::size_t score =
        sig::disjoint_symbiosis(a.compute_rbv(0), b.core_filter_weight(0));
    std::printf("cross-cluster symbiosis (core 0 vs first core of cluster 1): %zu\n", score);
  }
  return 0;
}
