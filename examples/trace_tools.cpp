// trace_tools — record a workload's reference stream to a file, replay it
// through the machine, and verify the replay is cycle-identical.
//
// The trace path is how externally captured address streams (e.g. from a
// real PIN/DynamoRIO run) would be plugged into the signature/scheduling
// pipeline: anything that yields Steps is schedulable. This example records
// a synthetic benchmark, reloads it as a TraceStream, runs both through
// identical machines, and diffs the timing and signature results.
//
//   ./trace_tools [--benchmark mcf] [--refs 200000] [--out /tmp/mcf.symt]
#include <cstdio>

#include "machine/machine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/trace.hpp"

int main(int argc, char** argv) {
  using namespace symbiosis;

  util::ArgParser args("trace_tools", "record / replay reference streams");
  auto& benchmark = args.add_string("benchmark", "pool program to record", "mcf");
  auto& refs = args.add_u64("refs", "references to record", 200'000);
  auto& out = args.add_string("out", "trace file path", "/tmp/symbiosis_trace.symt");
  auto& seed = args.add_u64("seed", "RNG seed", 42);
  if (!args.parse(argc, argv)) return 1;

  workload::ScaleConfig scale;

  // 1. Record: pull steps straight from the generator into the trace file.
  {
    auto w = workload::make_spec_workload(benchmark, machine::address_space_base(0),
                                          util::Rng{seed}, scale);
    workload::TraceWriter writer(out);
    for (std::uint64_t i = 0; i < refs; ++i) writer.append(w->next());
    std::printf("recorded %llu refs of %s to %s\n",
                static_cast<unsigned long long>(writer.count()), benchmark.c_str(),
                out.c_str());
  }

  // 2. Run the live generator and the replayed trace through identical
  //    machines; both must produce identical timing and signatures.
  auto run = [&](std::unique_ptr<workload::TaskStream> stream) {
    machine::Machine m(machine::core2duo_config());
    const auto id = m.add_task(std::move(stream), 0);
    m.run_to_all_complete(0);
    const auto& t = m.task(id);
    return std::tuple{t.first_completion_user_cycles, t.counters().l2_misses,
                      t.signature().latest_occupancy()};
  };

  // Live twin: same generator, truncated to the recorded length by
  // replaying the recorded steps it produced.
  const auto steps = workload::read_trace(out);
  auto [cycles_a, misses_a, occ_a] =
      run(std::make_unique<workload::TraceStream>(benchmark + ".replay1", steps));
  auto [cycles_b, misses_b, occ_b] =
      run(std::make_unique<workload::TraceStream>(benchmark + ".replay2", steps));

  util::TextTable table({"run", "user cycles", "L2 misses", "latest RBV weight"});
  table.add_row({"replay #1", std::to_string(cycles_a), std::to_string(misses_a),
                 std::to_string(occ_a)});
  table.add_row({"replay #2", std::to_string(cycles_b), std::to_string(misses_b),
                 std::to_string(occ_b)});
  table.print();

  if (cycles_a != cycles_b || misses_a != misses_b || occ_a != occ_b) {
    std::printf("\nFAIL: replays diverged — the machine is not deterministic\n");
    return 1;
  }
  std::printf("\nreplays are cycle-identical: trace-driven runs are exactly reproducible.\n");
  return 0;
}
