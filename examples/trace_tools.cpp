// trace_tools — trace + run-report tooling.
//
// Subcommands:
//   roundtrip  record a workload's reference stream, replay it twice through
//              identical machines, and verify the replays are cycle-identical
//              (the default when no subcommand is given);
//   inspect    summarize a run report JSON (kind, config, outcome counts) or
//              print the value at a --path like "outcomes.0.chosen";
//   diff       field-by-field comparison of two run reports, ignoring the
//              volatile "timings"/"metrics" sections unless --all;
//   validate   check a report against the symbiosis.run_report schema.
//
//   ./trace_tools roundtrip [--benchmark mcf] [--refs 200000] [--out f.symt]
//   ./trace_tools inspect report.json [--path summary.0.name]
//   ./trace_tools diff a.json b.json [--all]
//   ./trace_tools validate report.json
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/report.hpp"
#include "machine/machine.hpp"
#include "obs/json.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/trace.hpp"

namespace {

using namespace symbiosis;

obs::Json load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return obs::Json::parse(buffer.str());
}

int cmd_roundtrip(int argc, char** argv) {
  util::ArgParser args("trace_tools roundtrip", "record / replay reference streams");
  auto& benchmark = args.add_string("benchmark", "pool program to record", "mcf");
  auto& refs = args.add_u64("refs", "references to record", 200'000);
  auto& out = args.add_string("out", "trace file path", "/tmp/symbiosis_trace.symt");
  auto& seed = args.add_u64("seed", "RNG seed", 42);
  if (!args.parse(argc, argv)) return 1;

  workload::ScaleConfig scale;

  // 1. Record: pull steps straight from the generator into the trace file.
  {
    auto w = workload::make_spec_workload(benchmark, machine::address_space_base(0),
                                          util::Rng{seed}, scale);
    workload::TraceWriter writer(out);
    for (std::uint64_t i = 0; i < refs; ++i) writer.append(w->next());
    std::printf("recorded %llu refs of %s to %s\n",
                static_cast<unsigned long long>(writer.count()), benchmark.c_str(),
                out.c_str());
  }

  // 2. Run the replayed trace twice through identical machines; both must
  //    produce identical timing and signatures.
  auto run = [&](std::unique_ptr<workload::TaskStream> stream) {
    machine::Machine m(machine::core2duo_config());
    const auto id = m.add_task(std::move(stream), 0);
    m.run_to_all_complete(0);
    const auto& t = m.task(id);
    return std::tuple{t.first_completion_user_cycles, t.counters().l2_misses,
                      t.signature().latest_occupancy()};
  };

  const auto steps = workload::read_trace(out);
  auto [cycles_a, misses_a, occ_a] =
      run(std::make_unique<workload::TraceStream>(benchmark + ".replay1", steps));
  auto [cycles_b, misses_b, occ_b] =
      run(std::make_unique<workload::TraceStream>(benchmark + ".replay2", steps));

  util::TextTable table({"run", "user cycles", "L2 misses", "latest RBV weight"});
  table.add_row({"replay #1", std::to_string(cycles_a), std::to_string(misses_a),
                 std::to_string(occ_a)});
  table.add_row({"replay #2", std::to_string(cycles_b), std::to_string(misses_b),
                 std::to_string(occ_b)});
  table.print();

  if (cycles_a != cycles_b || misses_a != misses_b || occ_a != occ_b) {
    std::printf("\nFAIL: replays diverged — the machine is not deterministic\n");
    return 1;
  }
  std::printf("\nreplays are cycle-identical: trace-driven runs are exactly reproducible.\n");
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  util::ArgParser args("trace_tools inspect", "summarize a run report JSON");
  auto& path_arg = args.add_string("path", "dot path to print instead of the summary", "");
  if (!args.parse(argc, argv)) return 1;
  if (args.positional().size() != 1) {
    std::fprintf(stderr, "usage: trace_tools inspect <report.json> [--path a.b.c]\n");
    return 1;
  }

  const obs::Json report = load_json(args.positional().front());
  if (!path_arg.empty()) {
    const obs::Json* node = obs::json_at_path(report, path_arg);
    if (!node) {
      std::fprintf(stderr, "inspect: no value at path \"%s\"\n", path_arg.c_str());
      return 1;
    }
    std::printf("%s\n", node->dump(2).c_str());
    return 0;
  }

  auto str = [&](const char* key) {
    const obs::Json* v = report.find(key);
    return v && v->is_string() ? v->as_string() : std::string("?");
  };
  std::printf("schema:  %s v%llu\n", str("schema").c_str(),
              static_cast<unsigned long long>(
                  report.find("schema_version") ? report.at("schema_version").as_u64() : 0));
  std::printf("kind:    %s\n", str("kind").c_str());
  if (const obs::Json* config = report.find("config")) {
    std::printf("config:  allocator=%s seed=%llu\n", config->at("allocator").as_string().c_str(),
                static_cast<unsigned long long>(config->at("seed").as_u64()));
  }
  if (const obs::Json* outcomes = report.find("outcomes")) {
    std::printf("sweep:   %zu mixes\n", outcomes->size());
  }
  if (const obs::Json* summary = report.find("summary")) {
    util::TextTable table({"benchmark", "mixes", "max impr", "avg impr", "max oracle"});
    for (const auto& entry : summary->as_array()) {
      table.add_row({entry.at("name").as_string(), std::to_string(entry.at("mixes").as_i64()),
                     util::TextTable::pct(entry.at("max_improvement").as_double()),
                     util::TextTable::pct(entry.at("avg_improvement").as_double()),
                     util::TextTable::pct(entry.at("max_oracle").as_double())});
    }
    table.print();
  }
  if (const obs::Json* metrics = report.find("metrics")) {
    std::printf("metrics: %zu registered\n", metrics->size());
  }
  return 0;
}

int cmd_diff(int argc, char** argv) {
  util::ArgParser args("trace_tools diff", "field-by-field run report comparison");
  auto& all = args.add_flag("all", "also compare the volatile timings/metrics sections");
  if (!args.parse(argc, argv)) return 1;
  if (args.positional().size() != 2) {
    std::fprintf(stderr, "usage: trace_tools diff <a.json> <b.json> [--all]\n");
    return 1;
  }

  const obs::Json a = load_json(args.positional()[0]);
  const obs::Json b = load_json(args.positional()[1]);
  const std::vector<std::string> ignore =
      all ? std::vector<std::string>{} : std::vector<std::string>{"timings", "metrics"};
  const auto differences = obs::json_diff(a, b, ignore);
  for (const auto& d : differences) std::printf("%s\n", d.c_str());
  if (differences.empty()) {
    std::printf("reports are identical%s\n", all ? "" : " (timings/metrics ignored)");
    return 0;
  }
  std::printf("%zu difference(s)\n", differences.size());
  return 1;
}

int cmd_validate(int argc, char** argv) {
  util::ArgParser args("trace_tools validate", "check a report against the schema");
  if (!args.parse(argc, argv)) return 1;
  if (args.positional().size() != 1) {
    std::fprintf(stderr, "usage: trace_tools validate <report.json>\n");
    return 1;
  }

  const obs::Json report = load_json(args.positional().front());
  const auto problems = core::validate_report(report);
  for (const auto& p : problems) std::printf("%s\n", p.c_str());
  if (problems.empty()) {
    // Print the document's OWN stamp: degenerate machines emit v1,
    // clustered/L3 machines v2 (both validate).
    std::printf("valid %s v%llu report\n", std::string(core::kReportSchema).c_str(),
                static_cast<unsigned long long>(report.at("schema_version").as_u64()));
    return 0;
  }
  std::printf("%zu problem(s)\n", problems.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string sub = argc > 1 ? argv[1] : "";
  try {
    if (sub == "inspect") return cmd_inspect(argc - 1, argv + 1);
    if (sub == "diff") return cmd_diff(argc - 1, argv + 1);
    if (sub == "validate") return cmd_validate(argc - 1, argv + 1);
    if (sub == "roundtrip") return cmd_roundtrip(argc - 1, argv + 1);
    return cmd_roundtrip(argc, argv);  // legacy invocation, no subcommand
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_tools %s: %s\n", sub.c_str(), e.what());
    return 1;
  }
}
