// trace_tools — trace + run-report tooling.
//
// Subcommands:
//   roundtrip  record a workload's reference stream, replay it twice through
//              identical machines, and verify the replays are cycle-identical
//              (the default when no subcommand is given);
//   convert    produce a .symt v2 trace from synthetic generators (--mix /
//              --benchmark), from the text format (--text), or from a legacy
//              v1 trace (--v1); --verify proves generator conversions replay
//              bit-identically to direct generation;
//   replay     replay a .symt through a fresh hierarchy, print the summary,
//              optionally emit a kind="trace_replay" run report (--report);
//   inspect    summarize a run report JSON (kind, config, outcome counts) or
//              print the value at a --path like "outcomes.0.chosen";
//   diff       field-by-field comparison of two run reports, ignoring the
//              volatile "timings"/"metrics" sections unless --all;
//   validate   check a report against the symbiosis.run_report schema, or —
//              when the file starts with the SYMT magic — structurally
//              validate a .symt trace (--stats prints the summary).
//
//   ./trace_tools roundtrip [--benchmark mcf] [--refs 200000] [--out f.symt]
//   ./trace_tools convert --mix mcf,libquantum --refs 100000 --out mix.symt --verify
//   ./trace_tools convert --text app.trace --out app.symt
//   ./trace_tools replay mix.symt [--cores 2] [--chunk 4096] [--workers 4]
//   ./trace_tools inspect report.json [--path summary.0.name]
//   ./trace_tools diff a.json b.json [--all]
//   ./trace_tools validate report.json | trace.symt [--stats]
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/report.hpp"
#include "machine/machine.hpp"
#include "obs/json.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"
#include "workload/replayer.hpp"
#include "workload/symt.hpp"
#include "workload/trace.hpp"
#include "workload/trace_source.hpp"
#include "workload/trace_text.hpp"

namespace {

using namespace symbiosis;

obs::Json load_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return obs::Json::parse(buffer.str());
}

int cmd_roundtrip(int argc, char** argv) {
  util::ArgParser args("trace_tools roundtrip", "record / replay reference streams");
  auto& benchmark = args.add_string("benchmark", "pool program to record", "mcf");
  auto& refs = args.add_u64("refs", "references to record", 200'000);
  auto& out = args.add_string("out", "trace file path", "/tmp/symbiosis_trace.symt");
  auto& seed = args.add_u64("seed", "RNG seed", 42);
  if (!args.parse(argc, argv)) return 1;

  workload::ScaleConfig scale;

  // 1. Record: pull steps straight from the generator into the trace file.
  {
    auto w = workload::make_spec_workload(benchmark, machine::address_space_base(0),
                                          util::Rng{seed}, scale);
    workload::TraceWriter writer(out);
    for (std::uint64_t i = 0; i < refs; ++i) writer.append(w->next());
    std::printf("recorded %llu refs of %s to %s\n",
                static_cast<unsigned long long>(writer.count()), benchmark.c_str(),
                out.c_str());
  }

  // 2. Run the replayed trace twice through identical machines; both must
  //    produce identical timing and signatures.
  auto run = [&](std::unique_ptr<workload::TaskStream> stream) {
    machine::Machine m(machine::core2duo_config());
    const auto id = m.add_task(std::move(stream), 0);
    m.run_to_all_complete(0);
    const auto& t = m.task(id);
    return std::tuple{t.first_completion_user_cycles, t.counters().l2_misses,
                      t.signature().latest_occupancy()};
  };

  const auto steps = workload::read_trace(out);
  auto [cycles_a, misses_a, occ_a] =
      run(std::make_unique<workload::TraceStream>(benchmark + ".replay1", steps));
  auto [cycles_b, misses_b, occ_b] =
      run(std::make_unique<workload::TraceStream>(benchmark + ".replay2", steps));

  util::TextTable table({"run", "user cycles", "L2 misses", "latest RBV weight"});
  table.add_row({"replay #1", std::to_string(cycles_a), std::to_string(misses_a),
                 std::to_string(occ_a)});
  table.add_row({"replay #2", std::to_string(cycles_b), std::to_string(misses_b),
                 std::to_string(occ_b)});
  table.print();

  if (cycles_a != cycles_b || misses_a != misses_b || occ_a != occ_b) {
    std::printf("\nFAIL: replays diverged — the machine is not deterministic\n");
    return 1;
  }
  std::printf("\nreplays are cycle-identical: trace-driven runs are exactly reproducible.\n");
  return 0;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(csv);
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

void print_symt_stats(const workload::SymtTrace& trace, const workload::SymtStats& stats) {
  util::TextTable table({"field", "value"});
  table.add_row({"threads", std::to_string(stats.threads)});
  table.add_row({"records", std::to_string(stats.records)});
  table.add_row({"mem refs", std::to_string(stats.mem_refs)});
  table.add_row({"writes", std::to_string(stats.writes)});
  char ratio[32];
  std::snprintf(ratio, sizeof ratio, "%.3f", stats.write_ratio());
  table.add_row({"write ratio", ratio});
  table.add_row({"sync events", std::to_string(stats.sync_events)});
  table.add_row({"barriers", std::to_string(stats.barriers)});
  table.add_row({"lock ops", std::to_string(stats.locks)});
  table.add_row({"signals", std::to_string(stats.signals)});
  table.add_row({"waits", std::to_string(stats.waits)});
  table.add_row({"footprint lines", std::to_string(stats.footprint_lines)});
  table.add_row({"footprint KiB", std::to_string(stats.footprint_lines * 64 / 1024)});
  table.add_row({"payload bytes", std::to_string(trace.payload_bytes())});
  if (stats.mem_refs > 0) {
    char bpr[32];
    std::snprintf(bpr, sizeof bpr, "%.2f",
                  static_cast<double>(trace.payload_bytes()) /
                      static_cast<double>(stats.records));
    table.add_row({"bytes/record", bpr});
  }
  table.print();
}

int cmd_convert(int argc, char** argv) {
  util::ArgParser args("trace_tools convert", "produce a .symt v2 trace");
  auto& mix = args.add_string("mix", "comma-separated pool programs, one thread each", "");
  auto& benchmark = args.add_string("benchmark", "single pool program (1-thread trace)", "");
  auto& text = args.add_string("text", "text-format trace file to convert", "");
  auto& v1 = args.add_string("v1", "legacy v1 trace file to convert", "");
  auto& out = args.add_string("out", "output .symt path", "");
  auto& refs = args.add_u64("refs", "references per thread (generator sources)", 100'000);
  auto& seed = args.add_u64("seed", "RNG seed (generator sources)", 42);
  auto& verify = args.add_flag("verify", "prove replay == direct generation (generators only)");
  auto& chunk = args.add_u64("chunk", "replay chunk size for --verify", 4096);
  auto& cores = args.add_u64("cores", "simulated cores for --verify", 2);
  if (!args.parse(argc, argv)) return 1;
  if (out.empty()) {
    std::fprintf(stderr, "convert: --out is required\n");
    return 1;
  }
  const int sources = (!mix.empty() ? 1 : 0) + (!benchmark.empty() ? 1 : 0) +
                      (!text.empty() ? 1 : 0) + (!v1.empty() ? 1 : 0);
  if (sources != 1) {
    std::fprintf(stderr, "convert: exactly one of --mix/--benchmark/--text/--v1 required\n");
    return 1;
  }

  std::vector<std::uint8_t> image;
  std::vector<std::string> names;
  if (!mix.empty() || !benchmark.empty()) {
    names = mix.empty() ? std::vector<std::string>{benchmark} : split_csv(mix);
    image = workload::symt_from_benchmarks(names, refs, seed);
  } else if (!text.empty()) {
    image = workload::symt_from_text(workload::parse_text_trace_file(text));
  } else {
    // Legacy v1 single-stream trace: one thread, gaps preserved.
    workload::SymtWriter writer(1);
    for (const workload::Step& step : workload::read_trace(v1)) {
      writer.append_mem(0, step.addr, step.is_write, step.compute_instr);
    }
    image = writer.finish();
  }

  {
    std::ofstream file(out, std::ios::binary);
    if (!file) throw std::runtime_error("convert: cannot open " + out);
    file.write(reinterpret_cast<const char*>(image.data()),
               static_cast<std::streamsize>(image.size()));
    if (!file) throw std::runtime_error("convert: write failed: " + out);
  }

  const workload::SymtTrace trace = workload::SymtTrace::open(out);
  const workload::SymtStats stats = workload::collect_stats(trace);
  std::printf("wrote %s: %llu threads, %llu records, %zu bytes (%.2f bytes/record)\n",
              out.c_str(), static_cast<unsigned long long>(stats.threads),
              static_cast<unsigned long long>(stats.records), trace.file_bytes(),
              stats.records ? static_cast<double>(trace.payload_bytes()) /
                                  static_cast<double>(stats.records)
                            : 0.0);

  if (verify) {
    if (names.empty()) {
      std::fprintf(stderr, "convert: --verify needs a generator source (--mix/--benchmark)\n");
      return 1;
    }
    cachesim::HierarchyConfig hconfig;
    hconfig.num_cores = cores;
    cachesim::Hierarchy replayed(hconfig);
    cachesim::Hierarchy generated(hconfig);
    workload::ReplayOptions options;
    options.chunk = chunk;
    const workload::ReplayResult result = workload::replay_trace(trace, replayed, options);
    const cachesim::BatchSummary direct =
        workload::replay_generated(names, refs, seed, generated, chunk);
    if (!(result.totals == direct)) {
      std::printf("FAIL: trace replay diverged from direct generation\n");
      return 1;
    }
    std::printf("verify: trace replay is bit-identical to direct generation "
                "(%llu accesses, %llu cycles)\n",
                static_cast<unsigned long long>(result.totals.accesses),
                static_cast<unsigned long long>(result.totals.cycles));
  }
  return 0;
}

int cmd_replay(int argc, char** argv) {
  util::ArgParser args("trace_tools replay", "replay a .symt trace through a hierarchy");
  auto& cores = args.add_u64("cores", "simulated cores", 2);
  auto& chunk = args.add_u64("chunk", "references per thread visit", 4096);
  auto& workers = args.add_u64("workers", "decode worker threads (0 = serial)", 0);
  auto& report_path = args.add_string("report", "write a trace_replay run report here", "");
  if (!args.parse(argc, argv)) return 1;
  if (args.positional().size() != 1) {
    std::fprintf(stderr, "usage: trace_tools replay <trace.symt> [--cores N] [--chunk N]\n");
    return 1;
  }

  const workload::SymtTrace trace = workload::SymtTrace::open(args.positional().front());
  const workload::SymtStats stats = workload::collect_stats(trace);

  cachesim::HierarchyConfig hconfig;
  hconfig.num_cores = cores;
  cachesim::Hierarchy hierarchy(hconfig);
  workload::ReplayOptions options;
  options.chunk = chunk;
  std::unique_ptr<util::ThreadPool> pool;
  if (workers > 0) {
    pool = std::make_unique<util::ThreadPool>(static_cast<std::size_t>(workers));
    options.pool = pool.get();
  }
  const workload::ReplayResult result = workload::replay_trace(trace, hierarchy, options);

  util::TextTable table({"metric", "value"});
  table.add_row({"accesses", std::to_string(result.totals.accesses)});
  table.add_row({"cycles", std::to_string(result.totals.cycles)});
  table.add_row({"L1 hits", std::to_string(result.totals.l1_hits)});
  table.add_row({"L2 hits", std::to_string(result.totals.l2_hits)});
  table.add_row({"TLB hits", std::to_string(result.totals.tlb_hits)});
  table.add_row({"rounds", std::to_string(result.rounds)});
  table.add_row({"sync events", std::to_string(result.sync_events)});
  table.print();

  if (!report_path.empty()) {
    const obs::Json report = core::build_trace_replay_report(
        hconfig, trace.path(), stats, result, chunk, workers);
    core::write_report_file(report, report_path);
    std::printf("report written to %s\n", report_path.c_str());
  }
  return 0;
}

int cmd_inspect(int argc, char** argv) {
  util::ArgParser args("trace_tools inspect", "summarize a run report JSON");
  auto& path_arg = args.add_string("path", "dot path to print instead of the summary", "");
  if (!args.parse(argc, argv)) return 1;
  if (args.positional().size() != 1) {
    std::fprintf(stderr, "usage: trace_tools inspect <report.json> [--path a.b.c]\n");
    return 1;
  }

  const obs::Json report = load_json(args.positional().front());
  if (!path_arg.empty()) {
    const obs::Json* node = obs::json_at_path(report, path_arg);
    if (!node) {
      std::fprintf(stderr, "inspect: no value at path \"%s\"\n", path_arg.c_str());
      return 1;
    }
    std::printf("%s\n", node->dump(2).c_str());
    return 0;
  }

  auto str = [&](const char* key) {
    const obs::Json* v = report.find(key);
    return v && v->is_string() ? v->as_string() : std::string("?");
  };
  std::printf("schema:  %s v%llu\n", str("schema").c_str(),
              static_cast<unsigned long long>(
                  report.find("schema_version") ? report.at("schema_version").as_u64() : 0));
  std::printf("kind:    %s\n", str("kind").c_str());
  if (const obs::Json* config = report.find("config")) {
    std::printf("config:  allocator=%s seed=%llu\n", config->at("allocator").as_string().c_str(),
                static_cast<unsigned long long>(config->at("seed").as_u64()));
  }
  if (const obs::Json* outcomes = report.find("outcomes")) {
    std::printf("sweep:   %zu mixes\n", outcomes->size());
  }
  if (const obs::Json* summary = report.find("summary")) {
    util::TextTable table({"benchmark", "mixes", "max impr", "avg impr", "max oracle"});
    for (const auto& entry : summary->as_array()) {
      table.add_row({entry.at("name").as_string(), std::to_string(entry.at("mixes").as_i64()),
                     util::TextTable::pct(entry.at("max_improvement").as_double()),
                     util::TextTable::pct(entry.at("avg_improvement").as_double()),
                     util::TextTable::pct(entry.at("max_oracle").as_double())});
    }
    table.print();
  }
  if (const obs::Json* metrics = report.find("metrics")) {
    std::printf("metrics: %zu registered\n", metrics->size());
  }
  return 0;
}

int cmd_diff(int argc, char** argv) {
  util::ArgParser args("trace_tools diff", "field-by-field run report comparison");
  auto& all = args.add_flag("all", "also compare the volatile timings/metrics sections");
  if (!args.parse(argc, argv)) return 1;
  if (args.positional().size() != 2) {
    std::fprintf(stderr, "usage: trace_tools diff <a.json> <b.json> [--all]\n");
    return 1;
  }

  const obs::Json a = load_json(args.positional()[0]);
  const obs::Json b = load_json(args.positional()[1]);
  const std::vector<std::string> ignore =
      all ? std::vector<std::string>{} : std::vector<std::string>{"timings", "metrics"};
  const auto differences = obs::json_diff(a, b, ignore);
  for (const auto& d : differences) std::printf("%s\n", d.c_str());
  if (differences.empty()) {
    std::printf("reports are identical%s\n", all ? "" : " (timings/metrics ignored)");
    return 0;
  }
  std::printf("%zu difference(s)\n", differences.size());
  return 1;
}

/// True when @p path starts with the SYMT magic (either trace version).
bool sniff_symt(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[4] = {};
  in.read(magic, 4);
  return in.gcount() == 4 && magic[0] == 'S' && magic[1] == 'Y' && magic[2] == 'M' &&
         magic[3] == 'T';
}

int cmd_validate(int argc, char** argv) {
  util::ArgParser args("trace_tools validate", "check a run report or a .symt trace");
  auto& want_stats = args.add_flag("stats", "print the trace summary (.symt inputs)");
  if (!args.parse(argc, argv)) return 1;
  if (args.positional().size() != 1) {
    std::fprintf(stderr, "usage: trace_tools validate <report.json | trace.symt> [--stats]\n");
    return 1;
  }

  if (sniff_symt(args.positional().front())) {
    // SymtTrace::open validates header/version/thread table; collect_stats
    // fully decodes every payload, so corruption anywhere is caught here.
    const workload::SymtTrace trace = workload::SymtTrace::open(args.positional().front());
    const workload::SymtStats stats = workload::collect_stats(trace);
    std::printf("valid .symt v%llu trace: %llu threads, %llu records\n",
                static_cast<unsigned long long>(workload::kSymtVersion),
                static_cast<unsigned long long>(stats.threads),
                static_cast<unsigned long long>(stats.records));
    if (want_stats) print_symt_stats(trace, stats);
    return 0;
  }

  const obs::Json report = load_json(args.positional().front());
  const auto problems = core::validate_report(report);
  for (const auto& p : problems) std::printf("%s\n", p.c_str());
  if (problems.empty()) {
    // Print the document's OWN stamp: degenerate machines emit v1,
    // clustered/L3 machines v2 (both validate).
    std::printf("valid %s v%llu report\n", std::string(core::kReportSchema).c_str(),
                static_cast<unsigned long long>(report.at("schema_version").as_u64()));
    return 0;
  }
  std::printf("%zu problem(s)\n", problems.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string sub = argc > 1 ? argv[1] : "";
  try {
    if (sub == "convert") return cmd_convert(argc - 1, argv + 1);
    if (sub == "replay") return cmd_replay(argc - 1, argv + 1);
    if (sub == "inspect") return cmd_inspect(argc - 1, argv + 1);
    if (sub == "diff") return cmd_diff(argc - 1, argv + 1);
    if (sub == "validate") return cmd_validate(argc - 1, argv + 1);
    if (sub == "roundtrip") return cmd_roundtrip(argc - 1, argv + 1);
    return cmd_roundtrip(argc, argv);  // legacy invocation, no subcommand
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_tools %s: %s\n", sub.c_str(), e.what());
    return 1;
  }
}
