// multithreaded_parsec — two-phase thread allocation on PARSEC-like apps
// (§3.3.4, Fig 8, Fig 12).
//
// Two 4-thread programs share a dual-core. Phase 1 of the §3.3.4 algorithm
// weight-sorts each process's threads; phase 2 runs the weighted
// interference graph over all eight threads with the intra-process edges
// pinned. The example prints the phase-1 grouping, the final thread→core
// map, and the per-process user time against the default placement.
//
//   ./multithreaded_parsec [--apps ferret,canneal] [--seed 42]
#include <cstdio>
#include <sstream>

#include "core/profile.hpp"
#include "core/symbiotic_scheduler.hpp"
#include "sched/multithread.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/parsec_model.hpp"

int main(int argc, char** argv) {
  using namespace symbiosis;

  util::ArgParser args("multithreaded_parsec", "two-phase allocation for 4-thread apps");
  auto& apps_arg = args.add_string("apps", "two comma-separated PARSEC programs",
                                   "ferret,canneal");
  auto& seed = args.add_u64("seed", "RNG seed", 42);
  if (!args.parse(argc, argv)) return 1;

  std::vector<std::string> apps;
  {
    std::stringstream ss(apps_arg);
    std::string name;
    while (std::getline(ss, name, ',')) apps.push_back(name);
  }
  if (apps.size() != 2) {
    std::fprintf(stderr, "multithreaded_parsec: --apps needs exactly 2 names\n");
    return 1;
  }

  core::PipelineConfig config;
  config.sync_scale();
  config.seed = seed;
  config.measure_max_cycles = 4'000'000'000ull;

  core::SymbioticScheduler pipeline(config);
  const sched::Allocation chosen = pipeline.choose_allocation_mt(apps);

  std::printf("thread -> core map (%s + %s, 4 threads each):\n", apps[0].c_str(),
              apps[1].c_str());
  util::TextTable map({"thread", "core"});
  for (std::size_t i = 0; i < chosen.group_of.size(); ++i) {
    const std::string name = apps[i / 4] + ".t" + std::to_string(i % 4);
    map.add_row({name, std::to_string(chosen.group_of[i])});
  }
  map.print();

  // Measure chosen vs the default round-robin placement.
  sched::DefaultAllocator def;
  std::vector<sched::TaskProfile> dummy(chosen.group_of.size());
  const core::MappingRun base = core::measure_mapping_mt(config, apps, def.allocate(dummy, 2));
  const core::MappingRun ours = core::measure_mapping_mt(config, apps, chosen);

  util::TextTable result({"process", "default (Mcyc)", "two-phase (Mcyc)", "gain"});
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const double d = static_cast<double>(base.user_cycles[i]);
    const double o = static_cast<double>(ours.user_cycles[i]);
    result.add_row({apps[i], util::TextTable::fmt(d / 1e6, 1), util::TextTable::fmt(o / 1e6, 1),
                    util::TextTable::pct(1.0 - o / d)});
  }
  std::printf("\nper-process user time (sum of thread user times at first completion):\n");
  result.print();
  std::printf(
      "\nThe two-phase algorithm must NOT mistake intra-process sharing for\n"
      "interference (§3.3.4) — threads that share data stay schedulable together.\n");
  return 0;
}
