// quickstart — the whole pipeline on the paper's Table 1 mix.
//
// Runs phase 1 (signature gathering + majority-vote allocation) for the
// {povray, gobmk, libquantum, hmmer} mix on the Core-2-Duo-like machine,
// then measures ALL three possible process-to-core mappings to completion
// and prints the Table-1-style user-time matrix, the vote table, and the
// per-benchmark improvement of the chosen mapping over the worst.
//
//   ./quickstart [--allocator weighted-graph] [--seed 42] [--scale 1.0]
#include <cstdio>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace symbiosis;

  util::ArgParser args("quickstart", "two-phase symbiotic scheduling on the Table 1 mix");
  auto& allocator = args.add_string("allocator",
                                    "default|random|miss-rate|weight-sort|graph|weighted-graph",
                                    "weighted-graph");
  auto& seed = args.add_u64("seed", "RNG seed", 42);
  auto& scale = args.add_double("scale", "benchmark length multiplier", 1.0);
  if (!args.parse(argc, argv)) return 1;

  std::vector<std::string> mix = {"povray", "gobmk", "libquantum", "hmmer"};
  if (!args.positional().empty()) {
    if (args.positional().size() != 4) {
      std::fprintf(stderr, "quickstart: give exactly 4 benchmark names (or none)\n");
      return 1;
    }
    mix = args.positional();
  }

  core::PipelineConfig config;
  config.sync_scale();
  config.allocator = allocator;
  config.seed = seed;
  config.scale.length_scale = scale;

  std::printf("mix: %s %s %s %s on 2 cores / shared L2\n", mix[0].c_str(), mix[1].c_str(),
              mix[2].c_str(), mix[3].c_str());
  std::printf("allocator: %s\n\n", config.allocator.c_str());

  const core::MixOutcome outcome = core::run_mix_experiment(config, mix);

  // Table 1 analogue: user time (megacycles) per benchmark per mapping.
  util::TextTable table;
  std::vector<std::string> header = {"benchmark"};
  for (const auto& run : outcome.mappings) header.push_back(run.allocation.describe(mix));
  table.set_header(header);
  for (std::size_t i = 0; i < mix.size(); ++i) {
    std::vector<std::string> row = {mix[i]};
    for (const auto& run : outcome.mappings) {
      row.push_back(util::TextTable::fmt(static_cast<double>(run.user_cycles[i]) / 1e6, 1));
    }
    table.add_row(row);
  }
  std::printf("user time per mapping (megacycles):\n");
  table.print();

  std::printf("\nphase-1 votes:\n");
  for (const auto& [key, count] : outcome.votes) {
    std::printf("  mapping %-12s : %d vote(s)\n", key.c_str(), count);
  }
  std::printf("chosen mapping: %s\n\n",
              outcome.mappings[outcome.chosen].allocation.describe(mix).c_str());

  util::TextTable improvements({"benchmark", "chosen vs worst", "oracle vs worst"});
  for (std::size_t i = 0; i < mix.size(); ++i) {
    improvements.add_row({mix[i], util::TextTable::pct(outcome.improvement_vs_worst(i)),
                          util::TextTable::pct(outcome.oracle_improvement(i))});
  }
  std::printf("improvements:\n");
  improvements.print();
  return 0;
}
