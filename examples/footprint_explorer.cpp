// footprint_explorer — inspect a workload's cache signature up close.
//
// Runs one benchmark model (optionally next to a co-runner on the other
// core), periodically printing the signature hardware's view: Core Filter
// occupancy, RBV weight at each context switch, symbiosis with the other
// core, and the ground-truth L2 footprint — the numbers every scheduling
// decision in the library is built from.
//
//   ./footprint_explorer --benchmark mcf --corunner libquantum
//   ./footprint_explorer --benchmark omnetpp --hash modulo --sample-shift 2
#include <cstdio>

#include "machine/machine.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/benchmark_model.hpp"

int main(int argc, char** argv) {
  using namespace symbiosis;

  util::ArgParser args("footprint_explorer", "inspect Bloom-filter cache signatures");
  auto& benchmark = args.add_string("benchmark", "pool program to observe", "mcf");
  auto& corunner = args.add_string("corunner", "program on the other core ('' = none)",
                                   "libquantum");
  auto& hash = args.add_string("hash", "xor|xor-inv-rev|modulo|presence", "xor");
  auto& sample_shift = args.add_u64("sample-shift", "set-sampling shift (2 = 25%)", 0);
  auto& windows = args.add_u64("windows", "observation windows to print", 12);
  auto& seed = args.add_u64("seed", "RNG seed", 42);
  if (!args.parse(argc, argv)) return 1;

  machine::MachineConfig cfg = machine::core2duo_config();
  cfg.hierarchy.signature.hash = sig::parse_hash_kind(hash);
  cfg.hierarchy.signature.sample_shift = static_cast<unsigned>(sample_shift);
  machine::Machine m(cfg);

  workload::ScaleConfig scale;
  scale.l2_bytes = cfg.hierarchy.l2.size_bytes;
  util::Rng rng(seed);

  const auto id = m.add_task(workload::make_spec_workload(
                                 benchmark, machine::address_space_base(0), rng.split(1), scale),
                             0);
  if (!corunner.empty()) {
    const auto other = m.add_task(workload::make_spec_workload(
                                      corunner, machine::address_space_base(1), rng.split(2),
                                      scale),
                                  1);
    m.task(other).background = true;
  }

  std::printf("observing %s (core 0)%s%s — filter: %s hash, %zu entries\n\n",
              benchmark.c_str(), corunner.empty() ? "" : " vs ",
              corunner.c_str(), hash.c_str(),
              m.hierarchy().filter()->entries());

  util::TextTable table({"window", "L2 footprint (lines)", "CF weight", "CF fill", "mean RBV",
                         "symbiosis(core1)", "switches"});
  std::uint64_t printed = 0;
  m.set_periodic_hook(10'000'000, [&](machine::Machine& mm) {
    if (printed >= windows) return;
    const auto& sig = mm.task(id).signature();
    const auto* filter = mm.hierarchy().filter();
    table.add_row({std::to_string(printed), std::to_string(mm.hierarchy().l2_footprint(0)),
                   std::to_string(filter->core_filter_weight(0)),
                   util::TextTable::pct(filter->core_filter_fill(0)),
                   util::TextTable::fmt(sig.mean_occupancy(), 1),
                   util::TextTable::fmt(sig.mean_symbiosis(1), 1),
                   std::to_string(sig.samples())});
    mm.task(id).signature().clear_window();
    ++printed;
  });
  m.run_for(10'000'000 * (windows + 1));
  table.print();

  std::printf(
      "\nreading guide: 'CF weight' is the per-core Core Filter popcount (Fig 5's\n"
      "occupancy weight); 'mean RBV' is the per-quantum footprint signature the\n"
      "allocators consume; low symbiosis = heavy interference with core 1 (§3.1).\n");
  return 0;
}
