// online_scheduling — the paper's DEPLOYMENT mode: a live user-level
// monitor reads Bloom-filter signatures every period and re-pins processes
// on the running machine (§3.2), no offline emulation phase at all.
//
// Compares OS-default placement against live symbiotic scheduling on one
// mix: per-task user time, slowdown vs solo, Jain fairness over slowdowns,
// and how many times the monitor actually migrated anything (the
// confirmation hysteresis keeps that small).
//
//   ./online_scheduling [--mix mcf,libquantum,povray,gobmk]
//                       [--allocator weighted-graph] [--confirm 2]
#include <cstdio>
#include <sstream>

#include "core/online.hpp"
#include "core/report.hpp"
#include "obs/stopwatch.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace symbiosis;

  util::ArgParser args("online_scheduling", "live signature-driven re-pinning");
  auto& mix_arg = args.add_string("mix", "four comma-separated pool programs",
                                  "mcf,libquantum,povray,gobmk");
  auto& allocator = args.add_string("allocator", "allocation policy", "weighted-graph");
  auto& confirm = args.add_u64("confirm", "windows a mapping must win before applying", 2);
  auto& seed = args.add_u64("seed", "RNG seed", 42);
  auto& report_path = args.add_string("report", "JSON run-report output path ('' = none)", "");
  if (!args.parse(argc, argv)) return 1;

  std::vector<std::string> mix;
  {
    std::stringstream ss(mix_arg);
    std::string name;
    while (std::getline(ss, name, ',')) mix.push_back(name);
  }

  core::OnlineConfig config;
  config.pipeline.sync_scale();
  config.pipeline.allocator = allocator;
  config.pipeline.seed = seed;
  config.pipeline.measure_max_cycles = 4'000'000'000ull;
  config.confirm_windows = static_cast<unsigned>(confirm);

  obs::PhaseTimings timings;
  const auto solo = [&] {
    obs::PhaseTimings::Scoped phase(timings, "solo_user_cycles");
    return core::solo_user_cycles(config.pipeline, mix);
  }();
  const core::OnlineRun base = [&] {
    obs::PhaseTimings::Scoped phase(timings, "run_online_baseline");
    return core::run_online_baseline(config, mix);
  }();
  const core::OnlineRun live = [&] {
    obs::PhaseTimings::Scoped phase(timings, "run_online");
    return core::run_online(config, mix);
  }();

  util::TextTable table({"task", "solo (Mcyc)", "default (Mcyc)", "live (Mcyc)",
                         "default slowdown", "live slowdown"});
  std::vector<double> base_slow, live_slow;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    const double s = static_cast<double>(solo[i]);
    base_slow.push_back(static_cast<double>(base.user_cycles[i]) / s);
    live_slow.push_back(static_cast<double>(live.user_cycles[i]) / s);
    table.add_row({mix[i], util::TextTable::fmt(s / 1e6, 1),
                   util::TextTable::fmt(static_cast<double>(base.user_cycles[i]) / 1e6, 1),
                   util::TextTable::fmt(static_cast<double>(live.user_cycles[i]) / 1e6, 1),
                   util::TextTable::fmt(base_slow.back(), 2) + "x",
                   util::TextTable::fmt(live_slow.back(), 2) + "x"});
  }
  table.print();

  std::printf("\nfairness (Jain over slowdowns): default %.3f -> live %.3f\n",
              core::jain_fairness(base_slow), core::jain_fairness(live_slow));
  std::printf("monitor re-pinned %zu time(s); final mapping %s; wall %.1f -> %.1f Mcyc\n",
              live.repinnings, live.final_mapping_key.c_str(),
              static_cast<double>(base.wall_cycles) / 1e6,
              static_cast<double>(live.wall_cycles) / 1e6);

  if (!report_path.empty()) {
    core::write_report_file(core::build_online_report(config, live, &base, timings),
                            report_path);
    std::printf("wrote %s\n", report_path.c_str());
  }
  return 0;
}
