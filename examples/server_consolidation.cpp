// server_consolidation — the paper's enterprise motivation (§1, §2.1):
// consolidate a rack's worth of heterogeneous jobs onto one multi-core box
// and let symbiotic scheduling decide who shares which core.
//
// Eight jobs land on a quad-core with a shared L2. We compare four
// placement policies end to end — OS default, miss-rate sorting (related
// work), weight sorting, and the weighted interference graph — by running
// the full two-phase pipeline for each and measuring total throughput and
// per-job slowdown versus an unloaded machine.
//
//   ./server_consolidation [--seed 7] [--scale 0.5]
#include <cstdio>
#include <map>

#include "core/profile.hpp"
#include "core/symbiotic_scheduler.hpp"
#include "machine/config.hpp"
#include "sched/policy.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace symbiosis;

  util::ArgParser args("server_consolidation", "8 jobs on a quad-core, 4 policies compared");
  auto& seed = args.add_u64("seed", "RNG seed", 7);
  auto& scale = args.add_double("scale", "benchmark length multiplier", 0.5);
  if (!args.parse(argc, argv)) return 1;

  // The "rack": two cache hogs, two streamers, four service-like jobs.
  const std::vector<std::string> jobs = {"mcf",  "omnetpp", "libquantum", "hmmer",
                                         "gobmk", "perlbench", "sjeng",    "povray"};

  core::PipelineConfig config;
  config.machine = machine::quadcore_config();
  config.sync_scale();
  config.scale.length_scale = scale;
  config.seed = seed;
  config.measure_max_cycles = 4'000'000'000ull;

  // Unloaded baselines: each job alone on the quad-core.
  std::map<std::string, double> solo;
  for (const auto& job : jobs) {
    machine::Machine m(config.machine);
    const auto id = m.add_task(workload::make_spec_workload(
        job, machine::address_space_base(0), util::Rng{seed}.split(1), config.scale));
    m.run_to_all_complete(0);
    solo[job] = static_cast<double>(m.task(id).first_completion_user_cycles);
  }

  util::TextTable table({"policy", "placement", "wall (Mcyc)", "mean slowdown vs solo",
                         "worst slowdown"});
  for (const std::string policy : {"default", "miss-rate", "weight-sort", "weighted-graph"}) {
    core::PipelineConfig pc = config;
    pc.allocator = policy;
    sched::Allocation placement;
    if (policy == "default") {
      sched::DefaultAllocator def;
      std::vector<sched::TaskProfile> dummy(jobs.size());
      placement = def.allocate(dummy, 4);
    } else {
      core::SymbioticScheduler pipeline(pc);
      placement = pipeline.choose_allocation(jobs);
    }
    const core::MappingRun run = core::measure_mapping(pc, jobs, placement);

    double slowdown_sum = 0.0, worst = 0.0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const double slowdown = static_cast<double>(run.user_cycles[i]) / solo[jobs[i]] - 1.0;
      slowdown_sum += slowdown;
      worst = std::max(worst, slowdown);
    }
    table.add_row({policy, placement.describe(jobs),
                   util::TextTable::fmt(static_cast<double>(run.wall_cycles) / 1e6, 0),
                   util::TextTable::pct(slowdown_sum / static_cast<double>(jobs.size())),
                   util::TextTable::pct(worst)});
  }
  table.print();
  std::printf(
      "\nLower slowdown = better consolidation. The signature-driven policies should\n"
      "herd the cache hogs onto shared cores and spread the benign jobs.\n");
  return 0;
}
