// vm_placement — Dom0-driven virtual machine placement (§3.2, §5.1.2).
//
// Four single-benchmark VMs on a dual-core Xen-like hypervisor. Phase 1
// gathers per-VM Bloom-filter signatures (process-encapsulated, exactly as
// the paper's Simics phase); the control-domain policy picks a vcpu→core
// pinning; phase 2 measures every pinning on the hypervisor, so the chosen
// mapping's gain and the virtualization overhead are both visible.
//
//   ./vm_placement [--mix mcf,libquantum,povray,gobmk] [--seed 42]
#include <cstdio>
#include <sstream>

#include "core/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace symbiosis;

  util::ArgParser args("vm_placement", "four VMs placed by Dom0 using cache signatures");
  auto& mix_arg = args.add_string("mix", "four comma-separated pool programs",
                                  "mcf,libquantum,povray,gobmk");
  auto& seed = args.add_u64("seed", "RNG seed", 42);
  if (!args.parse(argc, argv)) return 1;

  std::vector<std::string> mix;
  {
    std::stringstream ss(mix_arg);
    std::string name;
    while (std::getline(ss, name, ',')) mix.push_back(name);
  }
  if (mix.size() != 4) {
    std::fprintf(stderr, "vm_placement: --mix needs exactly 4 names\n");
    return 1;
  }

  core::PipelineConfig config;
  config.sync_scale();
  config.seed = seed;
  config.virtualized = true;
  config.measure_max_cycles = 4'000'000'000ull;

  std::printf("VMs: %s %s %s %s — dual-core hypervisor, per-VM signatures\n\n", mix[0].c_str(),
              mix[1].c_str(), mix[2].c_str(), mix[3].c_str());

  // Also measure natively for the §5.1.2 comparison.
  core::PipelineConfig native = config;
  native.virtualized = false;
  const core::MixOutcome vm_outcome = core::run_mix_experiment(config, mix);
  const core::MixOutcome native_outcome = core::run_mix_experiment(native, mix);

  util::TextTable table({"VM", "chosen pinning gain (VM)", "chosen gain (native)",
                         "virtualization overhead"});
  for (std::size_t i = 0; i < mix.size(); ++i) {
    const double vm_user =
        static_cast<double>(vm_outcome.mappings[vm_outcome.chosen].user_cycles[i]);
    const double native_user =
        static_cast<double>(native_outcome.mappings[native_outcome.chosen].user_cycles[i]);
    table.add_row({mix[i], util::TextTable::pct(vm_outcome.improvement_vs_worst(i)),
                   util::TextTable::pct(native_outcome.improvement_vs_worst(i)),
                   util::TextTable::pct(vm_user / native_user - 1.0)});
  }
  table.print();

  std::printf("\nDom0's chosen pinning: %s\n",
              vm_outcome.mappings[vm_outcome.chosen].allocation.describe(mix).c_str());
  std::printf(
      "\nExpected (§5.1.2): the same winners as the native run, with smaller margins —\n"
      "world switches, Dom0 cache pollution and nested translation dilute the effect.\n");
  return 0;
}
