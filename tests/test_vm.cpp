#include "vm/hypervisor.hpp"

#include <gtest/gtest.h>

#include "machine/config.hpp"
#include "workload/benchmark_model.hpp"

namespace symbiosis::vm {
namespace {

VmConfig tiny_vm_config() {
  VmConfig c;
  c.machine.hierarchy.num_cores = 2;
  c.machine.hierarchy.l1 = {1024, 2, 64};
  c.machine.hierarchy.l2 = {16 * 1024, 4, 64};
  c.machine.quantum_cycles = 50'000;
  c.vm_switch_cycles = 5'000;
  c.switch_pollution_lines = 32;
  c.dom0_region_bytes = 4 * 1024;
  return c;
}

std::unique_ptr<workload::Workload> guest_workload(std::size_t pid,
                                                   std::uint64_t refs = 10'000) {
  workload::BenchmarkSpec spec;
  spec.name = "guest" + std::to_string(pid);
  workload::PhaseSpec phase;
  phase.pattern.kind = workload::PatternKind::Zipf;
  phase.pattern.region_bytes = 8 * 1024;
  phase.compute_gap = 5.0;
  phase.refs = refs;
  spec.phases = {phase};
  spec.total_refs = refs;
  return std::make_unique<workload::Workload>(spec, machine::address_space_base(pid + 10),
                                              util::Rng{pid + 99});
}

TEST(Hypervisor, Dom0IsBackground) {
  Hypervisor hv(tiny_vm_config());
  ASSERT_EQ(hv.domain_count(), 1u);
  EXPECT_EQ(hv.domain_name(0), "Domain-0");
  const auto vcpu = hv.vcpus_of(0).front();
  EXPECT_TRUE(hv.machine().task(vcpu).background);
}

TEST(Hypervisor, Dom0CanBeDisabled) {
  VmConfig cfg = tiny_vm_config();
  cfg.dom0_background = false;
  Hypervisor hv(cfg);
  EXPECT_EQ(hv.domain_count(), 0u);
}

TEST(Hypervisor, GuestsRunToCompletion) {
  Hypervisor hv(tiny_vm_config());
  const DomainId a = hv.create_domain(guest_workload(0));
  const DomainId b = hv.create_domain(guest_workload(1));
  EXPECT_TRUE(hv.run_to_all_complete());
  EXPECT_GT(hv.domain_user_cycles(a), 0u);
  EXPECT_GT(hv.domain_user_cycles(b), 0u);
  EXPECT_EQ(hv.domain_name(a), "guest0");
}

TEST(Hypervisor, DomainAffinityPinsVcpus) {
  Hypervisor hv(tiny_vm_config());
  const DomainId dom = hv.create_domain(guest_workload(0));
  hv.create_domain(guest_workload(1), 1);  // keep core 1 busy
  hv.set_domain_affinity(dom, 1);
  EXPECT_TRUE(hv.run_to_all_complete());
  const auto vcpu = hv.vcpus_of(dom).front();
  EXPECT_EQ(hv.machine().task(vcpu).signature().last_core(), 1u);
}

TEST(Hypervisor, MultiVcpuDomainSharesPid) {
  Hypervisor hv(tiny_vm_config());
  std::vector<std::unique_ptr<workload::TaskStream>> vcpus;
  vcpus.push_back(guest_workload(0));
  vcpus.push_back(guest_workload(1));
  const DomainId dom = hv.create_domain(std::move(vcpus));
  const auto& ids = hv.vcpus_of(dom);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(hv.machine().task(ids[0]).pid(), hv.machine().task(ids[1]).pid());
}

TEST(Hypervisor, VirtualizationCostsWallClock) {
  // §5.1.2: the same workload takes longer under the hypervisor — world
  // switches, nested-TLB penalty, Dom0 pollution.
  machine::MachineConfig native_cfg = tiny_vm_config().machine;
  machine::Machine native(native_cfg);
  native.add_task(guest_workload(0), 0);
  native.add_task(guest_workload(1), 0);
  ASSERT_TRUE(native.run_to_all_complete());

  Hypervisor hv(tiny_vm_config());
  const DomainId a = hv.create_domain(guest_workload(0), 0);
  const DomainId b = hv.create_domain(guest_workload(1), 0);
  ASSERT_TRUE(hv.run_to_all_complete());

  const std::uint64_t native_total = native.task(0).first_completion_user_cycles +
                                     native.task(1).first_completion_user_cycles;
  EXPECT_GT(hv.domain_user_cycles(a) + hv.domain_user_cycles(b), native_total);
}

TEST(Hypervisor, EmptyDomainRejected) {
  Hypervisor hv(tiny_vm_config());
  std::vector<std::unique_ptr<workload::TaskStream>> none;
  EXPECT_THROW(hv.create_domain(std::move(none)), std::invalid_argument);
}

}  // namespace
}  // namespace symbiosis::vm
