#include "sig/bloom.hpp"
#include "sig/counting_bloom.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "util/rng.hpp"

namespace symbiosis::sig {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf(4096, 2);
  util::Rng rng(1);
  std::vector<LineAddr> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng());
  for (const auto key : keys) bf.insert(key);
  for (const auto key : keys) EXPECT_TRUE(bf.maybe_contains(key));
}

TEST(BloomFilter, TrueMissOnEmpty) {
  BloomFilter bf(1024, 1);
  EXPECT_FALSE(bf.maybe_contains(42));
  EXPECT_EQ(bf.ones(), 0u);
}

TEST(BloomFilter, FppNearTheory) {
  BloomFilter bf(4096, 1);
  util::Rng rng(2);
  std::set<LineAddr> inserted;
  while (inserted.size() < 1024) {
    const LineAddr key = rng();
    if (inserted.insert(key).second) bf.insert(key);
  }
  int false_hits = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    LineAddr probe = rng();
    while (inserted.count(probe)) probe = rng();
    false_hits += bf.maybe_contains(probe);
  }
  const double measured = static_cast<double>(false_hits) / probes;
  const double theory = bf.theoretical_fpp(1024);
  EXPECT_NEAR(measured, theory, 0.05);
}

TEST(BloomFilter, MoreHashesPolluteFaster) {
  // §2.4: more hash functions saturate a small filter faster.
  BloomFilter k1(512, 1), k4(512, 4);
  util::Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const LineAddr key = rng();
    k1.insert(key);
    k4.insert(key);
  }
  EXPECT_GT(k4.fill_ratio(), k1.fill_ratio());
}

TEST(BloomFilter, ResetClears) {
  BloomFilter bf(256, 2);
  bf.insert(7);
  bf.reset();
  EXPECT_FALSE(bf.maybe_contains(7));
}

TEST(BloomFilter, RejectsZeroHashes) {
  EXPECT_THROW(BloomFilter(256, 0), std::invalid_argument);
}

TEST(CountingBloom, InsertRemoveRoundTrip) {
  CountingBloomFilter cbf(1024, 4);
  cbf.insert(100);
  EXPECT_TRUE(cbf.maybe_contains(100));
  EXPECT_EQ(cbf.nonzero_count(), 1u);
  cbf.remove(100);
  EXPECT_FALSE(cbf.maybe_contains(100));
  EXPECT_EQ(cbf.nonzero_count(), 0u);
}

TEST(CountingBloom, NoFalseNegativesUnderChurn) {
  CountingBloomFilter cbf(4096, 4);
  util::Rng rng(5);
  std::vector<LineAddr> live;
  for (int step = 0; step < 3000; ++step) {
    if (live.size() < 500 || rng.next_bool(0.55)) {
      const LineAddr key = rng();
      cbf.insert(key);
      live.push_back(key);
    } else {
      const std::size_t victim = rng.next_below(live.size());
      cbf.remove(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }
  for (const auto key : live) EXPECT_TRUE(cbf.maybe_contains(key));
}

TEST(CountingBloom, RemoveOnZeroIsNoop) {
  CountingBloomFilter cbf(256, 3);
  cbf.remove(9);  // must not underflow
  EXPECT_EQ(cbf.nonzero_count(), 0u);
  cbf.insert(9);
  EXPECT_TRUE(cbf.maybe_contains(9));
}

TEST(CountingBloom, SaturatedCounterSticks) {
  // 1-bit counters saturate at 1: a second insert is absorbed, and the
  // stuck-at-max rule means removes never clear it (footnote 1: L must be
  // wide enough — this tests the hardware's safe failure mode).
  CountingBloomFilter cbf(16, 1, 1, HashKind::Modulo);
  cbf.insert(3);
  cbf.insert(3 + 16);  // same counter (modulo 16)
  EXPECT_EQ(cbf.saturated_count(), 1u);
  cbf.remove(3);
  EXPECT_TRUE(cbf.maybe_contains(3));  // stuck at max, still "present"
  EXPECT_EQ(cbf.saturated_count(), 1u);
}

TEST(CountingBloom, WideCounterHandlesCollisions) {
  CountingBloomFilter cbf(16, 4, 1, HashKind::Modulo);
  cbf.insert(3);
  cbf.insert(3 + 16);
  cbf.remove(3);
  EXPECT_TRUE(cbf.maybe_contains(3 + 16));  // one of the two still present
  cbf.remove(3 + 16);
  EXPECT_FALSE(cbf.maybe_contains(3));
}

TEST(CountingBloom, MultiHashIncrementsOncePerIndex) {
  // §2.4: "If more than one hash index addresses to the same location for a
  // given address, the counter is incremented or decremented only once."
  CountingBloomFilter cbf(64, 4, 4);
  cbf.insert(77);
  cbf.remove(77);
  EXPECT_FALSE(cbf.maybe_contains(77));
  EXPECT_EQ(cbf.nonzero_count(), 0u);
}

TEST(CountingBloom, Validation) {
  EXPECT_THROW(CountingBloomFilter(64, 0), std::invalid_argument);
  EXPECT_THROW(CountingBloomFilter(64, 17), std::invalid_argument);
  EXPECT_THROW(CountingBloomFilter(64, 3, 0), std::invalid_argument);
  EXPECT_THROW(CountingBloomFilter(64, 3, 9), std::invalid_argument);
}

TEST(CountingBloom, ResetClears) {
  CountingBloomFilter cbf(128, 3);
  cbf.insert(1);
  cbf.insert(2);
  cbf.reset();
  EXPECT_EQ(cbf.nonzero_count(), 0u);
  EXPECT_FALSE(cbf.maybe_contains(1));
}

}  // namespace
}  // namespace symbiosis::sig
