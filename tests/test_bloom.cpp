#include "sig/bloom.hpp"
#include "sig/counting_bloom.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "util/rng.hpp"

namespace symbiosis::sig {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf(4096, 2);
  util::Rng rng(1);
  std::vector<LineAddr> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng());
  for (const auto key : keys) bf.insert(key);
  for (const auto key : keys) EXPECT_TRUE(bf.maybe_contains(key));
}

TEST(BloomFilter, TrueMissOnEmpty) {
  BloomFilter bf(1024, 1);
  EXPECT_FALSE(bf.maybe_contains(42));
  EXPECT_EQ(bf.ones(), 0u);
}

TEST(BloomFilter, FppNearTheory) {
  BloomFilter bf(4096, 1);
  util::Rng rng(2);
  std::set<LineAddr> inserted;
  while (inserted.size() < 1024) {
    const LineAddr key = rng();
    if (inserted.insert(key).second) bf.insert(key);
  }
  int false_hits = 0;
  const int probes = 20000;
  for (int i = 0; i < probes; ++i) {
    LineAddr probe = rng();
    while (inserted.count(probe)) probe = rng();
    false_hits += bf.maybe_contains(probe);
  }
  const double measured = static_cast<double>(false_hits) / probes;
  const double theory = bf.theoretical_fpp(1024);
  EXPECT_NEAR(measured, theory, 0.05);
}

TEST(BloomFilter, MoreHashesPolluteFaster) {
  // §2.4: more hash functions saturate a small filter faster.
  BloomFilter k1(512, 1), k4(512, 4);
  util::Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const LineAddr key = rng();
    k1.insert(key);
    k4.insert(key);
  }
  EXPECT_GT(k4.fill_ratio(), k1.fill_ratio());
}

TEST(BloomFilter, ResetClears) {
  BloomFilter bf(256, 2);
  bf.insert(7);
  bf.reset();
  EXPECT_FALSE(bf.maybe_contains(7));
}

TEST(BloomFilter, RejectsZeroHashes) {
  EXPECT_THROW(BloomFilter(256, 0), std::invalid_argument);
}

TEST(CountingBloom, InsertRemoveRoundTrip) {
  CountingBloomFilter cbf(1024, 4);
  cbf.insert(100);
  EXPECT_TRUE(cbf.maybe_contains(100));
  EXPECT_EQ(cbf.nonzero_count(), 1u);
  cbf.remove(100);
  EXPECT_FALSE(cbf.maybe_contains(100));
  EXPECT_EQ(cbf.nonzero_count(), 0u);
}

TEST(CountingBloom, NoFalseNegativesUnderChurn) {
  CountingBloomFilter cbf(4096, 4);
  util::Rng rng(5);
  std::vector<LineAddr> live;
  for (int step = 0; step < 3000; ++step) {
    if (live.size() < 500 || rng.next_bool(0.55)) {
      const LineAddr key = rng();
      cbf.insert(key);
      live.push_back(key);
    } else {
      const std::size_t victim = rng.next_below(live.size());
      cbf.remove(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }
  for (const auto key : live) EXPECT_TRUE(cbf.maybe_contains(key));
}

TEST(CountingBloom, RemoveOnZeroIsNoop) {
  CountingBloomFilter cbf(256, 3);
  cbf.remove(9);  // must not underflow
  EXPECT_EQ(cbf.nonzero_count(), 0u);
  cbf.insert(9);
  EXPECT_TRUE(cbf.maybe_contains(9));
}

TEST(CountingBloom, SaturatedCounterSticks) {
  // 1-bit counters saturate at 1: a second insert is absorbed, and the
  // stuck-at-max rule means removes never clear it (footnote 1: L must be
  // wide enough — this tests the hardware's safe failure mode).
  CountingBloomFilter cbf(16, 1, 1, HashKind::Modulo);
  cbf.insert(3);
  cbf.insert(3 + 16);  // same counter (modulo 16)
  EXPECT_EQ(cbf.saturated_count(), 1u);
  cbf.remove(3);
  EXPECT_TRUE(cbf.maybe_contains(3));  // stuck at max, still "present"
  EXPECT_EQ(cbf.saturated_count(), 1u);
}

TEST(CountingBloom, WideCounterHandlesCollisions) {
  CountingBloomFilter cbf(16, 4, 1, HashKind::Modulo);
  cbf.insert(3);
  cbf.insert(3 + 16);
  cbf.remove(3);
  EXPECT_TRUE(cbf.maybe_contains(3 + 16));  // one of the two still present
  cbf.remove(3 + 16);
  EXPECT_FALSE(cbf.maybe_contains(3));
}

TEST(CountingBloom, MultiHashIncrementsOncePerIndex) {
  // §2.4: "If more than one hash index addresses to the same location for a
  // given address, the counter is incremented or decremented only once."
  CountingBloomFilter cbf(64, 4, 4);
  cbf.insert(77);
  cbf.remove(77);
  EXPECT_FALSE(cbf.maybe_contains(77));
  EXPECT_EQ(cbf.nonzero_count(), 0u);
}

TEST(CountingBloom, Validation) {
  EXPECT_THROW(CountingBloomFilter(64, 0), std::invalid_argument);
  EXPECT_THROW(CountingBloomFilter(64, 17), std::invalid_argument);
  EXPECT_THROW(CountingBloomFilter(64, 3, 0), std::invalid_argument);
  EXPECT_THROW(CountingBloomFilter(64, 3, 9), std::invalid_argument);
}

TEST(CountingBloom, ResetClears) {
  CountingBloomFilter cbf(128, 3);
  cbf.insert(1);
  cbf.insert(2);
  cbf.reset();
  EXPECT_EQ(cbf.nonzero_count(), 0u);
  EXPECT_FALSE(cbf.maybe_contains(1));
}

// --- property / fuzz extensions -------------------------------------------

TEST(CountingBloom, ThreeBitCountersSaturateAtSeven) {
  // The paper's L = 3 hardware: the 8th insert into one counter saturates it
  // at 7 and the stuck-at-max rule then makes every remove a no-op.
  CountingBloomFilter cbf(16, 3, 1, HashKind::Modulo);
  for (int i = 0; i < 12; ++i) cbf.insert(5 + 16 * i);  // all map to counter 5
  EXPECT_EQ(cbf.counter_at(5), 7u);
  EXPECT_EQ(cbf.saturated_count(), 1u);
  for (int i = 0; i < 12; ++i) cbf.remove(5 + 16 * i);
  EXPECT_EQ(cbf.counter_at(5), 7u) << "stuck at max: removes must not drain it";
  EXPECT_TRUE(cbf.maybe_contains(5));
  cbf.validate();
}

TEST(CountingBloom, RemoveWithoutInsertAtScaleNeverUnderflows) {
  CountingBloomFilter cbf(512, 3, 2);
  util::Rng rng(29);
  // Phase 1: pure removes on an empty filter — all must be no-ops.
  for (int i = 0; i < 5000; ++i) cbf.remove(rng.next_below(1 << 16));
  EXPECT_EQ(cbf.nonzero_count(), 0u);
  cbf.validate();
  // Phase 2: adversarial interleave, removes outnumbering inserts 3:1.
  for (int i = 0; i < 10000; ++i) {
    const LineAddr key = rng.next_below(1 << 12);
    if (rng.next_bool(0.25)) {
      cbf.insert(key);
    } else {
      cbf.remove(key);
    }
  }
  cbf.validate();  // recount matches cache, no counter above saturation
  for (std::size_t e = 0; e < cbf.entries(); ++e) {
    EXPECT_LE(cbf.counter_at(e), 7u) << "counter " << e;
  }
}

TEST(CountingBloom, ModuloAcceptsAwkwardEntryCounts) {
  // Modulo is the only hash family without the power-of-two constraint; the
  // boundary sizes 1, 63 and 4095 must index safely end to end.
  util::Rng rng(31);
  for (const std::size_t entries : {1ul, 63ul, 4095ul}) {
    CountingBloomFilter cbf(entries, 3, 2, HashKind::Modulo);
    for (int i = 0; i < 2000; ++i) {
      const LineAddr key = rng();
      if (rng.next_bool(0.6)) {
        cbf.insert(key);
      } else {
        cbf.remove(key);
      }
      const BloomIndices indices = cbf.indices_of(key);
      ASSERT_GE(indices.count, 1u);
      ASSERT_LE(indices.count, 2u);
      for (unsigned j = 0; j < indices.count; ++j) {
        ASSERT_LT(indices.idx[j], entries) << "entries " << entries;
      }
    }
    cbf.validate();
    EXPECT_LE(cbf.nonzero_count(), entries);
  }
}

TEST(CountingBloom, PrehashedOpsMatchByLineOps) {
  // indices_of() + the BloomIndices overloads must be interchangeable with
  // the by-line API — the batched replay path depends on it.
  CountingBloomFilter by_line(1024, 3, 4);
  CountingBloomFilter prehashed(1024, 3, 4);
  util::Rng rng(37);
  for (int i = 0; i < 10000; ++i) {
    const LineAddr key = rng.next_below(1 << 14);
    const BloomIndices indices = prehashed.indices_of(key);
    if (rng.next_bool(0.55)) {
      by_line.insert(key);
      prehashed.insert(indices);
    } else {
      by_line.remove(key);
      prehashed.remove(indices);
    }
    ASSERT_EQ(by_line.maybe_contains(key), prehashed.maybe_contains(indices)) << "op " << i;
  }
  ASSERT_EQ(by_line.nonzero_count(), prehashed.nonzero_count());
  for (std::size_t e = 0; e < by_line.entries(); ++e) {
    ASSERT_EQ(by_line.counter_at(e), prehashed.counter_at(e)) << "counter " << e;
  }
}

}  // namespace
}  // namespace symbiosis::sig
