#include "sig/signature.hpp"

#include <gtest/gtest.h>

namespace symbiosis::sig {
namespace {

SignatureSample sample(std::size_t core, std::size_t occupancy,
                       std::vector<std::size_t> symbiosis) {
  SignatureSample s;
  s.core = core;
  s.occupancy_weight = occupancy;
  s.symbiosis = std::move(symbiosis);
  return s;
}

TEST(ProcessSignature, LatestValuesTrackLastSample) {
  ProcessSignature sig(2);
  sig.record(sample(0, 100, {10, 50}));
  sig.record(sample(1, 200, {60, 20}));
  EXPECT_EQ(sig.last_core(), 1u);
  EXPECT_EQ(sig.latest_occupancy(), 200u);
  EXPECT_EQ(sig.latest_symbiosis(0), 60u);
  EXPECT_EQ(sig.latest_symbiosis(1), 20u);
}

TEST(ProcessSignature, WindowMeans) {
  ProcessSignature sig(2);
  sig.record(sample(0, 100, {10, 40}));
  sig.record(sample(0, 300, {30, 80}));
  EXPECT_EQ(sig.samples(), 2u);
  EXPECT_DOUBLE_EQ(sig.mean_occupancy(), 200.0);
  EXPECT_DOUBLE_EQ(sig.mean_symbiosis(0), 20.0);
  EXPECT_DOUBLE_EQ(sig.mean_symbiosis(1), 60.0);
}

TEST(ProcessSignature, CrossSymbiosisExcludesOwnCore) {
  ProcessSignature sig(2);
  sig.record(sample(0, 10, {5, 100}));
  // Ran on core 0 -> cross = symbiosis with core 1 only.
  EXPECT_DOUBLE_EQ(sig.mean_cross_symbiosis(), 100.0);
  sig.record(sample(1, 10, {40, 5}));
  // Now cross samples are {100 (c1), 40 (c0)} -> mean 70.
  EXPECT_DOUBLE_EQ(sig.mean_cross_symbiosis(), 70.0);
}

TEST(ProcessSignature, ClearWindowKeepsLatest) {
  ProcessSignature sig(2);
  sig.record(sample(1, 77, {12, 34}));
  sig.clear_window();
  EXPECT_EQ(sig.samples(), 0u);
  EXPECT_DOUBLE_EQ(sig.mean_occupancy(), 0.0);
  EXPECT_DOUBLE_EQ(sig.mean_symbiosis(0), 0.0);
  EXPECT_EQ(sig.latest_occupancy(), 77u);  // the (2+N) structure survives
  EXPECT_EQ(sig.last_core(), 1u);
}

TEST(ProcessSignature, InterferenceIsReciprocalClamped) {
  ProcessSignature sig(2);
  sig.record(sample(0, 10, {4, 100}));
  EXPECT_DOUBLE_EQ(sig.interference_with(1), 0.01);
  // Symbiosis below 1 clamps to the max interference of 1.
  ProcessSignature zero(2);
  zero.record(sample(0, 10, {0, 0}));
  EXPECT_DOUBLE_EQ(zero.interference_with(1), 1.0);
}

TEST(ProcessSignature, ResizeResetsState) {
  ProcessSignature sig(2);
  sig.record(sample(0, 9, {1, 2}));
  sig.resize(4);
  EXPECT_EQ(sig.num_cores(), 4u);
  EXPECT_EQ(sig.samples(), 0u);
  EXPECT_EQ(sig.latest_occupancy(), 0u);
}

}  // namespace
}  // namespace symbiosis::sig
