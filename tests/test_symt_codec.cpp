// test_symt_codec.cpp — .symt v2 codec conformance (trace-conformance layer).
//
// Property tests over the varint primitives and the writer→reader round
// trip, plus the rejection battery: every class of corruption (truncated
// header, garbled magic, wrong version, lying thread table, mid-record EOF,
// reserved tag bits, varint overflow, byte mutations) must surface as a
// std::runtime_error with a diagnostic — never a crash, hang or silent
// misparse (the asan-ubsan preset re-runs all of this under sanitizers).
#include "workload/symt.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace symbiosis::workload {
namespace {

/// Decode every record of every thread (insists the trace is well-formed).
std::vector<std::vector<SymtRecord>> decode_all(const SymtTrace& trace) {
  std::vector<std::vector<SymtRecord>> out(trace.num_threads());
  for (std::size_t t = 0; t < trace.num_threads(); ++t) {
    SymtCursor cursor(trace, t);
    SymtRecord rec;
    while (cursor.next(rec)) out[t].push_back(rec);
  }
  return out;
}

TEST(SymtVarint, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {0,
                                  1,
                                  0x7f,
                                  0x80,
                                  0x3fff,
                                  0x4000,
                                  0xffffffffull,
                                  0x100000000ull,
                                  ~std::uint64_t{0} >> 1,
                                  ~std::uint64_t{0}};
  for (const std::uint64_t v : values) {
    std::vector<std::uint8_t> bytes;
    symt_put_varint(bytes, v);
    const std::uint8_t* p = bytes.data();
    EXPECT_EQ(symt_get_varint(p, bytes.data() + bytes.size()), v);
    EXPECT_EQ(p, bytes.data() + bytes.size()) << "decoder must consume the whole varint";
  }
}

TEST(SymtVarint, ZigzagIsInvolutive) {
  const std::int64_t values[] = {0, 1, -1, 63, -64, 4095, -4096, INT64_MAX, INT64_MIN};
  for (const std::int64_t v : values) {
    EXPECT_EQ(symt_unzigzag(symt_zigzag(v)), v);
  }
  // Small magnitudes must stay small encoded (the compactness contract).
  EXPECT_LT(symt_zigzag(-1), 4u);
  EXPECT_LT(symt_zigzag(1), 4u);
}

TEST(SymtVarint, TruncatedAndOverflowingRejected) {
  std::vector<std::uint8_t> bytes;
  symt_put_varint(bytes, ~std::uint64_t{0});
  // Chop the terminator: every prefix must throw, not read past the end.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::uint8_t* p = bytes.data();
    EXPECT_THROW((void)symt_get_varint(p, bytes.data() + len), std::runtime_error) << len;
  }
  // 10 continuation bytes = more than 64 significant bits.
  const std::vector<std::uint8_t> overflow(11, 0xff);
  const std::uint8_t* p = overflow.data();
  EXPECT_THROW((void)symt_get_varint(p, overflow.data() + overflow.size()), std::runtime_error);
}

/// Pseudorandom mixed-record trace of @p records_per_thread records on
/// @p threads threads: jumpy addresses (negative and page-crossing deltas),
/// gaps, and some sync records when requested.
std::vector<std::uint8_t> random_image(std::size_t threads, std::size_t records_per_thread,
                                       std::uint64_t seed, bool with_sync,
                                       std::vector<std::vector<SymtRecord>>* expect = nullptr) {
  SymtWriter writer(threads);
  if (expect) expect->assign(threads, {});
  const util::Rng root(seed);
  for (std::size_t t = 0; t < threads; ++t) {
    util::Rng rng = root.split(t);
    cachesim::Addr addr = (static_cast<cachesim::Addr>(t) + 1) << 40;
    for (std::size_t i = 0; i < records_per_thread; ++i) {
      SymtRecord rec;
      const std::uint64_t kind = with_sync ? rng.next_below(10) : 0;
      if (kind < 8) {
        // Deltas from -1 MiB to +1 MiB: negative, zero and page-crossing.
        addr += static_cast<cachesim::Addr>(rng.next_below(2 * 1024 * 1024)) - 1024 * 1024;
        rec.op = rng.next_below(2) ? SymtOp::Write : SymtOp::Read;
        rec.addr = addr;
        rec.gap = rng.next_below(3) ? 0 : static_cast<std::uint32_t>(rng.next_below(1000));
      } else if (kind == 8) {
        rec.op = SymtOp::Signal;
        rec.arg = rng.next_below(4);
      } else {
        rec.op = SymtOp::LockAcquire;
        rec.arg = rng.next_below(4);
      }
      writer.append(t, rec);
      if (expect) (*expect)[t].push_back(rec);
    }
  }
  return writer.finish();
}

class SymtCodecSizes : public testing::TestWithParam<std::size_t> {};

TEST_P(SymtCodecSizes, WriterReaderRoundTrip) {
  const std::size_t n = GetParam();
  std::vector<std::vector<SymtRecord>> expect;
  const auto image = random_image(3, n, 0xc0dec + n, /*with_sync=*/true, &expect);
  const SymtTrace trace = SymtTrace::from_buffer(image);
  ASSERT_EQ(trace.num_threads(), 3u);
  EXPECT_EQ(trace.total_records(), 3 * n);
  const auto decoded = decode_all(trace);
  for (std::size_t t = 0; t < 3; ++t) {
    ASSERT_EQ(decoded[t].size(), expect[t].size());
    for (std::size_t i = 0; i < decoded[t].size(); ++i) {
      EXPECT_EQ(decoded[t][i], expect[t][i]) << "thread " << t << " record " << i;
    }
  }
}

// 0 and 1 are the degenerate stream sizes; 4096 straddles a typical replay
// chunk boundary exactly and 4095/4097 sit on either side of it.
INSTANTIATE_TEST_SUITE_P(Sizes, SymtCodecSizes,
                         testing::Values<std::size_t>(0, 1, 2, 7, 4095, 4096, 4097));

TEST(SymtCodec, NegativeAndPageCrossingDeltasExact) {
  SymtWriter writer(1);
  const cachesim::Addr addrs[] = {1ull << 40,          (1ull << 40) + 4096,
                                  (1ull << 40) - 4096, 0,
                                  ~std::uint64_t{0},   1,
                                  1ull << 63,          (1ull << 63) - 1};
  for (const auto a : addrs) writer.append_mem(0, a, false);
  const SymtTrace trace = SymtTrace::from_buffer(writer.finish());
  SymtCursor cursor(trace, 0);
  SymtRecord rec;
  for (const auto a : addrs) {
    ASSERT_TRUE(cursor.next(rec));
    EXPECT_EQ(rec.addr, a);
  }
  EXPECT_FALSE(cursor.next(rec));
}

TEST(SymtCodec, DecodeMemRunStopsAtSyncWithoutConsuming) {
  SymtWriter writer(1);
  writer.append_mem(0, 64, false);
  writer.append_mem(0, 128, true);
  writer.append_barrier(0, 7);
  writer.append_mem(0, 192, false);
  const SymtTrace trace = SymtTrace::from_buffer(writer.finish());

  SymtCursor cursor(trace, 0);
  cachesim::MemRef refs[8];
  EXPECT_EQ(cursor.decode_mem_run(refs, nullptr, 8), 2u);
  EXPECT_EQ(refs[0].addr, 64u);
  EXPECT_EQ(refs[1].addr, 128u);
  EXPECT_TRUE(refs[1].is_write);
  // The barrier is still there for next().
  SymtRecord rec;
  ASSERT_TRUE(cursor.next(rec));
  EXPECT_EQ(rec.op, SymtOp::Barrier);
  EXPECT_EQ(rec.arg, 7u);
  EXPECT_EQ(cursor.decode_mem_run(refs, nullptr, 8), 1u);
  EXPECT_EQ(refs[0].addr, 192u);
  EXPECT_TRUE(cursor.done());
}

TEST(SymtCodec, DecodeMemRunHonoursMax) {
  SymtWriter writer(1);
  for (int i = 0; i < 10; ++i) writer.append_mem(0, 64u * static_cast<unsigned>(i), false);
  const SymtTrace trace = SymtTrace::from_buffer(writer.finish());
  SymtCursor cursor(trace, 0);
  cachesim::MemRef refs[4];
  EXPECT_EQ(cursor.decode_mem_run(refs, nullptr, 4), 4u);
  EXPECT_EQ(refs[0].addr, 0u);
  EXPECT_EQ(cursor.decode_mem_run(refs, nullptr, 4), 4u);
  EXPECT_EQ(refs[0].addr, 4u * 64u);
  EXPECT_EQ(cursor.decode_mem_run(refs, nullptr, 4), 2u);
  EXPECT_EQ(refs[0].addr, 8u * 64u);
  EXPECT_TRUE(cursor.done());
}

// --- rejection battery -----------------------------------------------------

/// Expect from_buffer (or full decode) to throw with SOME diagnostic.
void expect_rejected(std::vector<std::uint8_t> image, const char* why) {
  try {
    const SymtTrace trace = SymtTrace::from_buffer(std::move(image));
    (void)collect_stats(trace);  // structural checks pass: decode must catch it
    FAIL() << "accepted a corrupt image: " << why;
  } catch (const std::runtime_error& e) {
    EXPECT_FALSE(std::string(e.what()).empty()) << why;
  }
}

TEST(SymtReject, TruncatedHeader) {
  const auto image = random_image(1, 4, 1, false);
  for (const std::size_t len : {std::size_t{0}, std::size_t{3}, std::size_t{12},
                                kSymtHeaderBytes - 1}) {
    expect_rejected({image.begin(), image.begin() + static_cast<std::ptrdiff_t>(len)},
                    "truncated header");
  }
}

TEST(SymtReject, BadMagic) {
  auto image = random_image(1, 4, 2, false);
  image[0] = 'X';
  expect_rejected(std::move(image), "bad magic");
}

TEST(SymtReject, WrongVersion) {
  auto image = random_image(1, 4, 3, false);
  image[4] = 1;  // the legacy version
  try {
    (void)SymtTrace::from_buffer(std::move(image));
    FAIL() << "accepted a v1-stamped image";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }
}

TEST(SymtReject, NonZeroFlags) {
  auto image = random_image(1, 4, 4, false);
  image[12] |= 0x01;
  expect_rejected(std::move(image), "unknown flags");
}

TEST(SymtReject, ZeroAndImplausibleThreadCount) {
  auto zero = random_image(1, 4, 5, false);
  zero[8] = zero[9] = zero[10] = zero[11] = 0;
  expect_rejected(std::move(zero), "zero threads");

  auto huge = random_image(1, 4, 6, false);
  huge[8] = 0xff;
  huge[9] = 0xff;
  huge[10] = 0xff;
  huge[11] = 0x7f;  // ~2 billion threads: table alone would be ~48 GiB
  expect_rejected(std::move(huge), "implausible thread count");
}

TEST(SymtReject, ThreadTableOverrunsFile) {
  auto image = random_image(1, 4, 7, false);
  image.resize(kSymtHeaderBytes + kSymtThreadEntryBytes - 1);
  expect_rejected(std::move(image), "table overruns file");
}

TEST(SymtReject, PayloadOverrunsFile) {
  auto image = random_image(1, 4, 8, false);
  // Inflate thread 0's payload_bytes (table entry at header end, +8).
  image[kSymtHeaderBytes + 8] = 0xff;
  expect_rejected(std::move(image), "payload overruns file");
}

TEST(SymtReject, NonContiguousPayloadOffset) {
  auto image = random_image(1, 4, 9, false);
  image[kSymtHeaderBytes] += 1;  // shift thread 0's payload offset
  expect_rejected(std::move(image), "non-contiguous payload");
}

TEST(SymtReject, RecordCountExceedsPayloadBytes) {
  auto image = random_image(1, 4, 10, false);
  image[kSymtHeaderBytes + 16] = 0xff;  // thread 0 record_count low byte
  expect_rejected(std::move(image), "records > bytes");
}

TEST(SymtReject, HeaderTotalDisagreesWithTable) {
  auto image = random_image(1, 4, 11, false);
  image[16] += 1;  // header total_records
  expect_rejected(std::move(image), "total_records mismatch");
}

TEST(SymtReject, MidRecordEof) {
  // Truncate the payload but keep the table consistent with the truncation:
  // the DECODER must hit "payload ends before declared record count".
  SymtWriter writer(1);
  for (int i = 0; i < 16; ++i) writer.append_mem(0, 1'000'000u * static_cast<unsigned>(i + 1),
                                                 i % 2 == 0, 5);
  auto image = writer.finish();
  const std::size_t payload_begin = kSymtHeaderBytes + kSymtThreadEntryBytes;
  const std::size_t payload_bytes = image.size() - payload_begin;
  for (const std::size_t keep : {payload_bytes - 1, payload_bytes / 2, std::size_t{1}}) {
    auto cut = image;
    cut.resize(payload_begin + keep);
    // Patch payload_bytes so the structural pass accepts the file; record
    // count now lies, which is exactly the mid-record-EOF case.
    for (int b = 0; b < 8; ++b) {
      cut[kSymtHeaderBytes + 8 + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(keep >> (8 * b));
    }
    expect_rejected(std::move(cut), "mid-record EOF");
  }
}

TEST(SymtReject, ReservedTagBitsAndBadOpcodes) {
  SymtWriter writer(1);
  writer.append_mem(0, 64, false);
  const auto image = writer.finish();
  const std::size_t tag_at = kSymtHeaderBytes + kSymtThreadEntryBytes;
  for (const std::uint8_t bad : {std::uint8_t{0x10}, std::uint8_t{0x80}, std::uint8_t{0x07},
                                 std::uint8_t{0x0a}}) {
    auto mutated = image;
    mutated[tag_at] = bad;  // reserved bit / unknown opcode 7 / gap-on-sync
    expect_rejected(std::move(mutated), "bad tag byte");
  }
}

TEST(SymtReject, ExplicitZeroGapNonCanonical) {
  // Hand-craft tag-with-gap-flag followed by gap varint 0.
  SymtWriter writer(1);
  writer.append_mem(0, 64, false, 1);
  auto image = writer.finish();
  // Payload is: tag(0x08) varint(zigzag 64) varint(1); zero the gap byte.
  image.back() = 0;
  expect_rejected(std::move(image), "explicit zero gap");
}

TEST(SymtFuzz, ByteMutationsNeverCrash) {
  // Flip every byte of a real image through several values; each mutant must
  // either decode fully or throw — never crash/overread (asan re-runs this).
  const auto image = random_image(2, 40, 0xf022, /*with_sync=*/true);
  for (std::size_t at = 0; at < image.size(); ++at) {
    for (const std::uint8_t value : {std::uint8_t{0x00}, std::uint8_t{0x7f},
                                     std::uint8_t{0x80}, std::uint8_t{0xff}}) {
      if (image[at] == value) continue;
      auto mutated = image;
      mutated[at] = value;
      try {
        const SymtTrace trace = SymtTrace::from_buffer(std::move(mutated));
        (void)collect_stats(trace);
      } catch (const std::runtime_error&) {
        // Rejection with a diagnostic is a pass.
      }
    }
  }
}

TEST(SymtFuzz, RandomTruncationsNeverCrash) {
  const auto image = random_image(2, 40, 0xcafe, /*with_sync=*/true);
  for (std::size_t len = 0; len < image.size(); len += 3) {
    try {
      const SymtTrace trace =
          SymtTrace::from_buffer({image.begin(), image.begin() + static_cast<std::ptrdiff_t>(len)});
      (void)collect_stats(trace);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(SymtTraceApi, OpenMissingFileThrows) {
  EXPECT_THROW(SymtTrace::open(testing::TempDir() + "/nope-does-not-exist.symt"),
               std::runtime_error);
}

TEST(SymtTraceApi, OpenMatchesFromBuffer) {
  const auto image = random_image(2, 100, 0x0be1, /*with_sync=*/true);
  const std::string path = testing::TempDir() + "/open-vs-buffer.symt";
  SymtWriter probe(1);  // reuse write_file's I/O path via a manual dump
  {
    std::vector<std::uint8_t> copy = image;
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(copy.data(), 1, copy.size(), f), copy.size());
    std::fclose(f);
  }
  const SymtTrace mapped = SymtTrace::open(path);
  const SymtTrace buffered = SymtTrace::from_buffer(image);
  EXPECT_EQ(mapped.num_threads(), buffered.num_threads());
  EXPECT_EQ(mapped.total_records(), buffered.total_records());
  const auto a = decode_all(mapped);
  const auto b = decode_all(buffered);
  EXPECT_EQ(a, b);
}

TEST(SymtWriterApi, RejectsBadConstruction) {
  EXPECT_THROW(SymtWriter(0), std::invalid_argument);
  SymtWriter writer(2);
  EXPECT_THROW(writer.append_wait(0, 1, 5), std::invalid_argument);
  EXPECT_THROW(writer.append_mem(7, 0, false), std::out_of_range);
}

}  // namespace
}  // namespace symbiosis::workload
