// SIMD kernel layer tests (sig/kernels.hpp + util/simd.hpp): backend
// dispatch sanity, and differential tests running EVERY backend compiled
// into this binary against the naive per-bit/per-nibble references on
// awkward widths — 0, 1, word-boundary ±1, and large — plus packed-CBF
// saturation at 15. The `simd-matrix` ctest legs additionally rerun these
// suites with SYMBIOSIS_SIMD forced to each backend so the env-override
// path stays green on every platform.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "reference/reference_kernels.hpp"
#include "sig/counting_bloom.hpp"
#include "sig/kernels.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace symbiosis::sig {
namespace {

using testref::naive_nibble_count_eq;
using testref::naive_nibble_decay;
using testref::naive_nibble_get;
using testref::naive_nibble_merge_saturating;
using testref::naive_nibble_set;
using testref::naive_word_and_not;
using testref::naive_word_and_popcount;
using testref::naive_word_popcount;
using testref::naive_word_xor_popcount;

TEST(KernelDispatch, ScalarIsAlwaysAvailableAndLast) {
  const auto& backends = util::available_simd_backends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends.back(), util::SimdBackend::Scalar);
  EXPECT_EQ(std::count(backends.begin(), backends.end(), util::SimdBackend::Scalar), 1);
}

TEST(KernelDispatch, ActiveBackendIsAvailable) {
  const auto& backends = util::available_simd_backends();
  const util::SimdBackend active = util::active_simd_backend();
  EXPECT_NE(std::find(backends.begin(), backends.end(), active), backends.end());
  EXPECT_EQ(kernels::ops().backend, active);
}

TEST(KernelDispatch, TablesReportTheirBackend) {
  for (const util::SimdBackend backend : util::available_simd_backends()) {
    EXPECT_EQ(kernels::kernel_ops(backend).backend, backend)
        << util::simd_backend_name(backend);
  }
}

TEST(KernelDispatch, BackendNamesRoundTripThroughParse) {
  for (const util::SimdBackend backend :
       {util::SimdBackend::Scalar, util::SimdBackend::Avx2, util::SimdBackend::Neon}) {
    const auto parsed = util::parse_simd_backend(util::simd_backend_name(backend));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, backend);
  }
  EXPECT_FALSE(util::parse_simd_backend("").has_value());
  EXPECT_FALSE(util::parse_simd_backend("avx512").has_value());
  EXPECT_FALSE(util::parse_simd_backend("SCALAR").has_value());
}

/// Word counts covering empty, single, one-under/at/over the 4-word AVX2
/// block and the 2-word NEON block, and a large non-multiple.
const std::vector<std::size_t> kWordCounts = {0, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 1024};

std::vector<std::uint64_t> random_words(util::Rng& rng, std::size_t n, int fill_percent) {
  std::vector<std::uint64_t> words(n, 0);
  for (auto& word : words) {
    for (unsigned bit = 0; bit < 64; ++bit) {
      if (rng.next_below(100) < static_cast<std::uint64_t>(fill_percent)) {
        word |= std::uint64_t{1} << bit;
      }
    }
  }
  return words;
}

TEST(KernelDifferential, WordKernelsMatchNaiveOnEveryBackend) {
  util::Rng rng(20260808);
  for (const util::SimdBackend backend : util::available_simd_backends()) {
    const kernels::KernelOps& ops = kernels::kernel_ops(backend);
    for (const std::size_t n : kWordCounts) {
      for (const int fill : {0, 3, 50, 97, 100}) {
        const auto a = random_words(rng, n, fill);
        const auto b = random_words(rng, n, 100 - fill);
        EXPECT_EQ(ops.popcount(a.data(), n), naive_word_popcount(a.data(), n))
            << util::simd_backend_name(backend) << " n=" << n;
        EXPECT_EQ(ops.xor_popcount(a.data(), b.data(), n),
                  naive_word_xor_popcount(a.data(), b.data(), n))
            << util::simd_backend_name(backend) << " n=" << n;
        EXPECT_EQ(ops.and_popcount(a.data(), b.data(), n),
                  naive_word_and_popcount(a.data(), b.data(), n))
            << util::simd_backend_name(backend) << " n=" << n;
        std::vector<std::uint64_t> dst(n, 0xdeadbeefdeadbeefull);
        std::vector<std::uint64_t> expected(n, 0);
        ops.and_not(dst.data(), a.data(), b.data(), n);
        naive_word_and_not(expected.data(), a.data(), b.data(), n);
        EXPECT_EQ(dst, expected) << util::simd_backend_name(backend) << " n=" << n;
      }
    }
  }
}

TEST(KernelDifferential, XorPopcountManyMatchesPerTargetCalls) {
  util::Rng rng(99);
  for (const util::SimdBackend backend : util::available_simd_backends()) {
    const kernels::KernelOps& ops = kernels::kernel_ops(backend);
    for (const std::size_t n : {std::size_t{0}, std::size_t{5}, std::size_t{64}}) {
      const auto a = random_words(rng, n, 40);
      std::vector<std::vector<std::uint64_t>> targets;
      std::vector<const std::uint64_t*> ptrs;
      for (int t = 0; t < 7; ++t) {
        targets.push_back(random_words(rng, n, 10 + 12 * t));
        ptrs.push_back(targets.back().data());
      }
      std::vector<std::size_t> out(targets.size(), ~std::size_t{0});
      ops.xor_popcount_many(a.data(), ptrs.data(), ptrs.size(), n, out.data());
      for (std::size_t t = 0; t < targets.size(); ++t) {
        EXPECT_EQ(out[t], naive_word_xor_popcount(a.data(), ptrs[t], n))
            << util::simd_backend_name(backend) << " n=" << n << " t=" << t;
      }
    }
  }
}

/// Nibble counts covering empty, one, an odd tail, the 32-byte AVX2 block
/// boundary (64 nibbles) ± 1, and a large non-multiple.
const std::vector<std::size_t> kNibbleCounts = {0, 1, 2, 3, 63, 64, 65, 127, 128, 4095};

std::vector<std::uint8_t> random_nibbles(util::Rng& rng, std::size_t nibbles,
                                         std::uint8_t max_value) {
  std::vector<std::uint8_t> packed((nibbles + 1) / 2, 0);
  for (std::size_t i = 0; i < nibbles; ++i) {
    naive_nibble_set(packed, i, static_cast<std::uint8_t>(rng.next_below(max_value + 1u)));
  }
  return packed;
}

TEST(KernelDifferential, NibbleKernelsMatchNaiveOnEveryBackend) {
  util::Rng rng(4242);
  for (const util::SimdBackend backend : util::available_simd_backends()) {
    const kernels::KernelOps& ops = kernels::kernel_ops(backend);
    for (const std::size_t nibbles : kNibbleCounts) {
      for (const std::uint8_t max_value : {std::uint8_t{15}, std::uint8_t{7}, std::uint8_t{1}}) {
        const auto src = random_nibbles(rng, nibbles, max_value);
        auto dst = random_nibbles(rng, nibbles, max_value);

        for (std::uint8_t value = 0; value <= max_value; ++value) {
          EXPECT_EQ(ops.nibble_count_eq(dst.data(), nibbles, value),
                    naive_nibble_count_eq(dst, nibbles, value))
              << util::simd_backend_name(backend) << " nibbles=" << nibbles
              << " value=" << int{value};
        }

        auto merged = dst;
        auto merged_ref = dst;
        ops.nibble_merge_saturating(merged.data(), src.data(), nibbles, max_value);
        naive_nibble_merge_saturating(merged_ref, src, nibbles, max_value);
        EXPECT_EQ(merged, merged_ref)
            << util::simd_backend_name(backend) << " nibbles=" << nibbles
            << " max=" << int{max_value};

        auto decayed = dst;
        auto decayed_ref = dst;
        ops.nibble_decay(decayed.data(), nibbles, max_value);
        naive_nibble_decay(decayed_ref, nibbles, max_value);
        EXPECT_EQ(decayed, decayed_ref)
            << util::simd_backend_name(backend) << " nibbles=" << nibbles
            << " max=" << int{max_value};

        // Mutating kernels must preserve the zero padding nibble.
        if ((nibbles & 1) != 0) {
          EXPECT_EQ(merged.back() >> 4, 0);
          EXPECT_EQ(decayed.back() >> 4, 0);
        }
      }
    }
  }
}

TEST(KernelDifferential, NibbleDecayRespectsStuckAtMax) {
  for (const util::SimdBackend backend : util::available_simd_backends()) {
    const kernels::KernelOps& ops = kernels::kernel_ops(backend);
    // Counters 0, 1, 15 (saturated), 14, 7, 0 with max 15: decay must give
    // 0, 0, 15, 13, 6, 0 — zero stays, saturated stays, the rest age.
    std::vector<std::uint8_t> packed(3, 0);
    const std::vector<std::uint8_t> values = {0, 1, 15, 14, 7, 0};
    for (std::size_t i = 0; i < values.size(); ++i) naive_nibble_set(packed, i, values[i]);
    ops.nibble_decay(packed.data(), values.size(), 15);
    const std::vector<std::uint8_t> expected = {0, 0, 15, 13, 6, 0};
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(naive_nibble_get(packed, i), expected[i])
          << util::simd_backend_name(backend) << " i=" << i;
    }
  }
}

/// Packed-CBF semantics: a 4-bit filter must saturate at 15 and behave
/// exactly like an unpacked model driven with the same operations.
TEST(KernelDifferential, PackedCbfDecayAndMergeMatchWideModel) {
  const std::size_t entries = 257;  // odd: exercises the padding nibble
  CountingBloomFilter packed(entries, 4, 2, HashKind::Modulo);
  CountingBloomFilter other(entries, 4, 2, HashKind::Modulo);
  ASSERT_TRUE(packed.packed());
  std::vector<unsigned> model(entries, 0);
  std::vector<unsigned> model_other(entries, 0);

  util::Rng rng(7);
  for (int i = 0; i < 4000; ++i) {
    const LineAddr line = rng.next_below(600);
    const BloomIndices idx = packed.indices_of(line);
    packed.insert(idx);
    for (unsigned j = 0; j < idx.count; ++j) {
      if (model[idx.idx[j]] < 15) ++model[idx.idx[j]];
    }
    if (i % 3 == 0) {
      other.insert(idx);
      for (unsigned j = 0; j < idx.count; ++j) {
        if (model_other[idx.idx[j]] < 15) ++model_other[idx.idx[j]];
      }
    }
  }
  // Heavy insertion into 257 entries must have saturated something — this
  // is the counter-saturation-at-15 case the differential layer pins.
  EXPECT_GT(packed.saturated_count(), 0u);

  packed.merge_saturating(other);
  for (std::size_t i = 0; i < entries; ++i) {
    model[i] = std::min(model[i] + model_other[i], 15u);
  }
  packed.decay();
  for (auto& value : model) {
    if (value != 0 && value != 15) --value;
  }

  for (std::size_t i = 0; i < entries; ++i) {
    ASSERT_EQ(packed.counter_at(i), model[i]) << "counter " << i;
  }
  EXPECT_EQ(packed.nonzero_count(),
            static_cast<std::size_t>(std::count_if(model.begin(), model.end(),
                                                   [](unsigned v) { return v != 0; })));
  packed.validate();
}

}  // namespace
}  // namespace symbiosis::sig
