// test_symt_golden.cpp — committed .symt fixtures stay byte-stable.
//
// The fixtures under tests/data/traces/ are the on-disk contract of the v2
// format: decode→re-encode must reproduce them byte for byte (canonical
// encoding), the text converter must produce exactly the committed binary,
// and the generator-built fixture must match a fresh conversion — so any
// codec change that silently alters the wire format fails here first.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "workload/symt.hpp"
#include "workload/trace_source.hpp"
#include "workload/trace_text.hpp"

#ifndef SYMBIOSIS_TEST_DATA_DIR
#error "SYMBIOSIS_TEST_DATA_DIR must point at tests/data"
#endif

namespace symbiosis::workload {
namespace {

std::string fixture(const char* name) {
  return std::string(SYMBIOSIS_TEST_DATA_DIR) + "/traces/" + name;
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Decode every record and re-encode through the writer: canonical byte
/// stability means the result is the input, bit for bit.
std::vector<std::uint8_t> reencode(const SymtTrace& trace) {
  SymtWriter writer(trace.num_threads());
  for (std::size_t t = 0; t < trace.num_threads(); ++t) {
    SymtCursor cursor(trace, t);
    SymtRecord rec;
    while (cursor.next(rec)) writer.append(t, rec);
  }
  return writer.finish();
}

TEST(SymtGolden, HandshakeFixtureDecodes) {
  const SymtTrace trace = SymtTrace::open(fixture("handshake.symt"));
  const SymtStats stats = collect_stats(trace);
  EXPECT_EQ(stats.threads, 2u);
  EXPECT_EQ(stats.mem_refs, 9u);
  EXPECT_EQ(stats.writes, 4u);
  EXPECT_EQ(stats.barriers, 2u);
  EXPECT_EQ(stats.locks, 4u);
  EXPECT_EQ(stats.signals, 1u);
  EXPECT_EQ(stats.waits, 1u);
  EXPECT_EQ(stats.records, stats.mem_refs + stats.sync_events);
}

TEST(SymtGolden, TextConversionMatchesCommittedBytes) {
  const TextTrace text = parse_text_trace_file(fixture("handshake.txt"));
  const std::vector<std::uint8_t> converted = symt_from_text(text);
  const std::vector<std::uint8_t> committed = read_bytes(fixture("handshake.symt"));
  EXPECT_EQ(converted, committed)
      << "text→symt conversion no longer reproduces the committed fixture";
}

TEST(SymtGolden, ReencodeIsByteStable) {
  for (const char* name : {"handshake.symt", "mix_tiny.symt"}) {
    const std::vector<std::uint8_t> committed = read_bytes(fixture(name));
    const SymtTrace trace = SymtTrace::open(fixture(name));
    EXPECT_EQ(reencode(trace), committed) << name;
  }
}

TEST(SymtGolden, MixTinyMatchesGeneratorConversion) {
  // The fixture's provenance, reproduced from scratch: mcf + libquantum,
  // 2000 refs/thread, seed 7. Regeneration must be byte-identical.
  const std::vector<std::uint8_t> regenerated =
      symt_from_benchmarks({"mcf", "libquantum"}, 2000, 7);
  EXPECT_EQ(regenerated, read_bytes(fixture("mix_tiny.symt")));
}

TEST(SymtGolden, CorruptFlagsFixtureRejected) {
  try {
    (void)SymtTrace::open(fixture("corrupt_flags.symt"));
    FAIL() << "accepted the corrupt-flags fixture";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("flags"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace symbiosis::workload
