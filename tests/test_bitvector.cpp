#include "sig/bitvector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace symbiosis::sig {
namespace {

TEST(BitVector, SetClearTest) {
  BitVector v(130);  // crosses word boundaries
  EXPECT_EQ(v.size(), 130u);
  for (const std::size_t i : {0u, 63u, 64u, 127u, 128u, 129u}) {
    EXPECT_FALSE(v.test(i));
    v.set(i);
    EXPECT_TRUE(v.test(i));
  }
  EXPECT_EQ(v.popcount(), 6u);
  v.clear(64);
  EXPECT_FALSE(v.test(64));
  EXPECT_EQ(v.popcount(), 5u);
}

TEST(BitVector, ResetZeroes) {
  BitVector v(100);
  for (std::size_t i = 0; i < 100; i += 3) v.set(i);
  v.reset();
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, RbvIdentity) {
  // RBV = CF ∧ ¬LF must equal ¬(CF → LF) (the paper's implication form).
  BitVector cf(8), lf(8), rbv(8);
  // CF = {0,1,2,5}; LF = {1,5,6}.
  for (const std::size_t i : {0u, 1u, 2u, 5u}) cf.set(i);
  for (const std::size_t i : {1u, 5u, 6u}) lf.set(i);
  rbv.assign_and_not(cf, lf);
  EXPECT_TRUE(rbv.test(0));
  EXPECT_FALSE(rbv.test(1));
  EXPECT_TRUE(rbv.test(2));
  EXPECT_FALSE(rbv.test(5));
  EXPECT_FALSE(rbv.test(6));
  EXPECT_EQ(rbv.popcount(), 2u);
}

TEST(BitVector, XorPopcountMatchesMaterialized) {
  util::Rng rng(3);
  BitVector a(257), b(257);
  for (int i = 0; i < 120; ++i) {
    a.set(rng.next_below(257));
    b.set(rng.next_below(257));
  }
  BitVector x = a;
  x ^= b;
  EXPECT_EQ(a.xor_popcount(b), x.popcount());
  EXPECT_EQ(a.xor_popcount(b), b.xor_popcount(a));  // symmetry
  EXPECT_EQ(a.xor_popcount(a), 0u);
}

TEST(BitVector, AndPopcount) {
  BitVector a(64), b(64);
  a.set(1);
  a.set(2);
  a.set(3);
  b.set(2);
  b.set(3);
  b.set(4);
  EXPECT_EQ(a.and_popcount(b), 2u);
}

TEST(BitVector, AssignSnapshots) {
  BitVector cf(32), lf(32);
  cf.set(7);
  lf.assign(cf);
  EXPECT_TRUE(lf.test(7));
  cf.set(8);  // later CF changes must not leak into the snapshot
  EXPECT_FALSE(lf.test(8));
}

TEST(BitVector, InPlaceOps) {
  BitVector a(16), b(16);
  a.set(0);
  a.set(1);
  b.set(1);
  b.set(2);
  BitVector o = a;
  o |= b;
  EXPECT_EQ(o.popcount(), 3u);
  BitVector n = a;
  n &= b;
  EXPECT_EQ(n.popcount(), 1u);
  EXPECT_TRUE(n.test(1));
  BitVector x = a;
  x ^= b;
  EXPECT_EQ(x.popcount(), 2u);
}

TEST(BitVector, FillRatio) {
  BitVector v(100);
  EXPECT_DOUBLE_EQ(v.fill_ratio(), 0.0);
  for (std::size_t i = 0; i < 25; ++i) v.set(i);
  EXPECT_DOUBLE_EQ(v.fill_ratio(), 0.25);
  EXPECT_DOUBLE_EQ(BitVector{}.fill_ratio(), 0.0);
}

/// Property check against a std::vector<bool> reference model.
TEST(BitVector, RandomOpsMatchReference) {
  util::Rng rng(11);
  const std::size_t n = 300;
  BitVector v(n);
  std::vector<bool> ref(n, false);
  for (int step = 0; step < 5000; ++step) {
    const std::size_t i = rng.next_below(n);
    if (rng.next_bool(0.5)) {
      v.set(i);
      ref[i] = true;
    } else {
      v.clear(i);
      ref[i] = false;
    }
  }
  std::size_t ref_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(v.test(i), ref[i]) << i;
    ref_count += ref[i];
  }
  EXPECT_EQ(v.popcount(), ref_count);
}

TEST(BitVector, Equality) {
  BitVector a(64), b(64);
  EXPECT_EQ(a, b);
  a.set(5);
  EXPECT_NE(a, b);
  b.set(5);
  EXPECT_EQ(a, b);
}

// --- awkward-width property tests -----------------------------------------
// The word-parallel kernels special-case the final partial word; every width
// class around the 64-bit boundary gets a randomized workout against a
// std::vector<bool> model. Width 0 is ops-free (set/clear on an empty vector
// are out of bounds by contract) but must still compare and count cleanly.

TEST(BitVector, ZeroWidthIsWellBehaved) {
  BitVector a(0), b(0);
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.popcount(), 0u);
  EXPECT_EQ(a.xor_popcount(b), 0u);
  EXPECT_EQ(a.and_popcount(b), 0u);
  EXPECT_EQ(a, b);
  a.reset();
  EXPECT_EQ(a.popcount(), 0u);
  BitVector rbv(0);
  rbv.assign_and_not(a, b);
  EXPECT_EQ(rbv.popcount(), 0u);
}

TEST(BitVector, AwkwardWidthsMatchBoolVectorModel) {
  util::Rng rng(17);
  for (const std::size_t n : {1ul, 63ul, 64ul, 65ul, 4095ul}) {
    BitVector v(n), w(n);
    std::vector<bool> ref_v(n, false), ref_w(n, false);
    const int steps = 2000;
    for (int step = 0; step < steps; ++step) {
      const std::size_t i = rng.next_below(n);
      const bool set = rng.next_bool(0.6);
      if (rng.next_bool(0.5)) {
        set ? v.set(i) : v.clear(i);
        ref_v[i] = set;
      } else {
        set ? w.set(i) : w.clear(i);
        ref_w[i] = set;
      }
      if (step % 250 != 0) continue;
      std::size_t pc = 0, xp = 0, ap = 0, an = 0;
      for (std::size_t j = 0; j < n; ++j) {
        pc += ref_v[j];
        xp += ref_v[j] != ref_w[j];
        ap += ref_v[j] && ref_w[j];
        an += ref_v[j] && !ref_w[j];
      }
      ASSERT_EQ(v.popcount(), pc) << "width " << n;
      ASSERT_EQ(v.xor_popcount(w), xp) << "width " << n;
      ASSERT_EQ(v.and_popcount(w), ap) << "width " << n;
      BitVector rbv(n);
      rbv.assign_and_not(v, w);
      ASSERT_EQ(rbv.popcount(), an) << "width " << n;
      for (std::size_t j = 0; j < n; ++j) {
        ASSERT_EQ(v.test(j), static_cast<bool>(ref_v[j])) << "width " << n << " bit " << j;
      }
    }
    // The last partial word must hold no stray bits beyond size(): saturate
    // the vector, then count.
    for (std::size_t j = 0; j < n; ++j) v.set(j);
    EXPECT_EQ(v.popcount(), n);
    EXPECT_DOUBLE_EQ(v.fill_ratio(), 1.0);
    BitVector full(n);
    full.assign(v);
    EXPECT_EQ(full, v);
  }
}

TEST(BitVector, AwkwardWidthInPlaceOpsMatchModel) {
  util::Rng rng(19);
  for (const std::size_t n : {1ul, 63ul, 64ul, 65ul, 4095ul}) {
    BitVector a(n), b(n);
    for (std::size_t j = 0; j < n; ++j) {
      if (rng.next_bool(0.4)) a.set(j);
      if (rng.next_bool(0.4)) b.set(j);
    }
    BitVector o = a, x = a, d = a;
    o |= b;
    x ^= b;
    d &= b;
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_EQ(o.test(j), a.test(j) || b.test(j)) << "width " << n << " bit " << j;
      ASSERT_EQ(x.test(j), a.test(j) != b.test(j)) << "width " << n << " bit " << j;
      ASSERT_EQ(d.test(j), a.test(j) && b.test(j)) << "width " << n << " bit " << j;
    }
    EXPECT_EQ(a.xor_popcount(b), x.popcount()) << "width " << n;
    EXPECT_EQ(a.and_popcount(b), d.popcount()) << "width " << n;
  }
}

}  // namespace
}  // namespace symbiosis::sig
