// Determinism regression suite (DESIGN.md §9): the same seed must produce
// bit-identical sweep results whether the mixes run serially or on a
// ThreadPool with any worker count. Each experiment builds its own Machine
// and writes only its own outcome slot, so worker interleaving must be
// invisible in the result — this suite is what keeps that true.
//
// Also the property tests for summarize_improvements: the production fold
// is checked against an independently written brute-force reference over
// randomly generated outcomes, including the benchmark-absent-from-all-
// mixes edge case.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/experiment.hpp"
#include "machine/machine.hpp"
#include "util/determinism.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"
#include "workload/benchmark_model.hpp"

namespace symbiosis::core {
namespace {

/// Tiny machine + very short benchmarks: a full 2-mix sweep in well under a
/// second, so running it four times (serial + three pools) stays cheap.
PipelineConfig tiny_pipeline() {
  PipelineConfig c;
  c.machine.hierarchy.num_cores = 2;
  c.machine.hierarchy.l1 = {1024, 2, 64};
  c.machine.hierarchy.l2 = {32 * 1024, 4, 64};
  c.machine.quantum_cycles = 100'000;
  c.sync_scale();
  c.scale.length_scale = 0.05;
  c.allocator_period_cycles = 500'000;
  c.emulation_cycles = 4'000'000;
  c.measure_max_cycles = 400'000'000;
  return c;
}

const std::vector<std::string> kTinyPool = {"mcf", "libquantum", "povray", "gobmk"};

TEST(Determinism, SweepIsIdenticalForAnyWorkerCount) {
  const PipelineConfig config = tiny_pipeline();
  const SweepResult serial = run_sweep(config, kTinyPool, 2, 1);
  ASSERT_FALSE(serial.outcomes.empty());

  for (const std::size_t workers : {1u, 2u, 8u}) {
    util::ThreadPool pool(workers);
    const SweepResult threaded = run_sweep(config, kTinyPool, 2, 1, false, &pool);
    ASSERT_EQ(threaded.mixes, serial.mixes) << workers << " workers";
    // Bit-identical MixOutcomes: every mapping's user/wall cycles, the
    // phase-1 vote table, and the chosen index — not just the summary.
    EXPECT_EQ(threaded.outcomes, serial.outcomes) << workers << " workers";
    EXPECT_EQ(threaded.summary, serial.summary) << workers << " workers";
  }
}

/// Scaled-down clustered machine: 8 cores in 4 clusters of 2, each cluster
/// sharing a tiny L2 with its own signature unit, all under one shared
/// SRRIP L3 — the non-degenerate graph, end to end, kept small enough that
/// four sweeps finish in seconds. (Phase 1 requires mixes of num_cores
/// distinct benchmarks, so the 8-wide mix below is the largest shape the
/// 12-entry SPEC pool supports with headroom.)
PipelineConfig tiny_clustered_pipeline() {
  PipelineConfig c;
  c.machine.hierarchy.num_cores = 8;
  c.machine.hierarchy.l1 = {1024, 2, 64};
  c.machine.hierarchy.l2 = {8 * 1024, 4, 64};
  c.machine.hierarchy.l2_clusters = 4;
  c.machine.hierarchy.l3 = cachesim::CacheGeometry{64 * 1024, 16, 64};
  c.machine.quantum_cycles = 100'000;
  c.sync_scale();
  c.scale.length_scale = 0.02;
  c.allocator_period_cycles = 500'000;
  c.emulation_cycles = 2'000'000;
  c.measure_max_cycles = 100'000'000;
  return c;
}

TEST(Determinism, ClusteredSweepIsIdenticalForAnyWorkerCount) {
  // The per-cluster filters, shared L3 and the schema-v2 per-level stats
  // must all be worker-count invariant. MappingRun equality covers
  // run.levels, so the per-level counters are pinned too.
  const std::vector<std::string> pool = {"perlbench", "bzip2", "gcc",   "mcf",
                                         "gobmk",     "hmmer", "sjeng", "libquantum"};
  const PipelineConfig config = tiny_clustered_pipeline();
  const SweepResult serial = run_sweep(config, pool, 8, 1);
  ASSERT_FALSE(serial.outcomes.empty());
  for (const auto& outcome : serial.outcomes) {
    for (const auto& run : outcome.mappings) {
      ASSERT_FALSE(run.levels.empty()) << "non-degenerate runs must carry per-level stats";
      EXPECT_EQ(run.levels.back().level, "l3");
    }
  }

  for (const std::size_t workers : {1u, 2u, 8u}) {
    util::ThreadPool pool_of(workers);
    const SweepResult threaded = run_sweep(config, pool, 8, 1, false, &pool_of);
    ASSERT_EQ(threaded.mixes, serial.mixes) << workers << " workers";
    EXPECT_EQ(threaded.outcomes, serial.outcomes) << workers << " workers";
    EXPECT_EQ(threaded.summary, serial.summary) << workers << " workers";
  }
}

TEST(Determinism, RepeatedSerialRunsAreIdentical) {
  const PipelineConfig config = tiny_pipeline();
  const SweepResult a = run_sweep(config, kTinyPool, 2, 1);
  const SweepResult b = run_sweep(config, kTinyPool, 2, 1);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.summary, b.summary);
}

TEST(Determinism, SeedSelectsTheMixSample) {
  PipelineConfig config = tiny_pipeline();
  const SweepResult a = run_sweep(config, kTinyPool, 2, 1);
  config.seed += 1;
  const SweepResult b = run_sweep(config, kTinyPool, 2, 1);
  // Different seed, same pool: the sample may legitimately coincide for a
  // pool this small, but outcomes must still be self-consistent.
  ASSERT_EQ(a.mixes.size(), b.mixes.size());
  for (const auto& outcome : b.outcomes) {
    EXPECT_EQ(outcome.mix.size(), 2u);
    EXPECT_FALSE(outcome.mappings.empty());
    EXPECT_LT(outcome.chosen, outcome.mappings.size());
  }
}

// --- sweep-grid sharding ---------------------------------------------------

TEST(Determinism, GridSweepIsIdenticalForAnyWorkerCount) {
  // The full (mix x allocator x seed-replicate) grid must be bit-identical
  // for any worker count and any shard cut: cells land at their index and
  // replicate seeds come from per-cell Rng substreams, not shared state.
  const PipelineConfig config = tiny_pipeline();
  const std::vector<std::string> algorithms = {"weighted-graph", "default"};
  const SweepGridResult serial = run_sweep_grid(config, kTinyPool, 2, 1, algorithms, 2);
  ASSERT_FALSE(serial.cells.empty());
  ASSERT_EQ(serial.cells.size(), serial.mixes.size() * algorithms.size() * 2);
  ASSERT_EQ(serial.outcomes.size(), serial.cells.size());

  for (const std::size_t workers : {1u, 2u, 8u}) {
    util::ThreadPool pool(workers);
    const SweepGridResult threaded =
        run_sweep_grid(config, kTinyPool, 2, 1, algorithms, 2, false, &pool);
    ASSERT_EQ(threaded.mixes, serial.mixes) << workers << " workers";
    EXPECT_EQ(threaded.cells, serial.cells) << workers << " workers";
    EXPECT_EQ(threaded.outcomes, serial.outcomes) << workers << " workers";
  }
}

TEST(Determinism, GridReplicateZeroReproducesRunSweep) {
  // A grid over just {config.allocator} with one replicate is run_sweep by
  // another name: replicate 0 keeps config.seed, so the outcomes must be
  // bit-identical to the plain sweep over the same pool.
  const PipelineConfig config = tiny_pipeline();
  const SweepResult plain = run_sweep(config, kTinyPool, 2, 1);
  const SweepGridResult grid = run_sweep_grid(config, kTinyPool, 2, 1, {config.allocator}, 1);
  ASSERT_EQ(grid.mixes, plain.mixes);
  ASSERT_EQ(grid.outcomes.size(), plain.outcomes.size());
  EXPECT_EQ(grid.outcomes, plain.outcomes);
  for (const auto& cell : grid.cells) {
    EXPECT_EQ(cell.replicate, 0u);
    EXPECT_EQ(cell.seed, config.seed) << "replicate 0 keeps the configured seed";
  }
}

TEST(Determinism, GridReplicatesDeriveDistinctSeeds) {
  const PipelineConfig config = tiny_pipeline();
  const SweepGridResult grid = run_sweep_grid(config, kTinyPool, 2, 1, {"weighted-graph"}, 3);
  std::unordered_set<std::uint64_t> derived;
  std::size_t derived_cells = 0;
  for (const auto& cell : grid.cells) {
    if (cell.replicate == 0) {
      EXPECT_EQ(cell.seed, config.seed) << "replicate 0 keeps the configured seed";
    } else {
      EXPECT_NE(cell.seed, config.seed) << "replicate " << cell.replicate;
      derived.insert(cell.seed);
      ++derived_cells;
    }
  }
  // Every derived replicate ran under its own substream seed.
  ASSERT_GT(derived_cells, 0u);
  EXPECT_EQ(derived.size(), derived_cells);
}

TEST(Determinism, GridRejectsDegenerateArguments) {
  const PipelineConfig config = tiny_pipeline();
  EXPECT_THROW(run_sweep_grid(config, kTinyPool, 2, 1, {}), std::invalid_argument);
  EXPECT_THROW(run_sweep_grid(config, kTinyPool, 2, 1, {"default"}, 0), std::invalid_argument);
}

// --- batched machine replay ----------------------------------------------

machine::MachineConfig tiny_machine() {
  machine::MachineConfig m;
  m.hierarchy.num_cores = 2;
  m.hierarchy.l1 = {1024, 2, 64};
  m.hierarchy.l2 = {16 * 1024, 4, 64};
  m.quantum_cycles = 50'000;
  return m;
}

std::unique_ptr<workload::Workload> tiny_task(const std::string& name, std::size_t pid) {
  workload::BenchmarkSpec spec;
  spec.name = name;
  workload::PhaseSpec phase;
  phase.pattern.kind = workload::PatternKind::Zipf;
  phase.pattern.region_bytes = 8 * 1024;
  phase.compute_gap = 5.0;
  phase.refs = 20'000;
  spec.phases = {phase};
  spec.total_refs = 20'000;
  return std::make_unique<workload::Workload>(spec, machine::address_space_base(pid),
                                              util::Rng{pid + 1});
}

void expect_machines_identical(machine::Machine& a, machine::Machine& b) {
  ASSERT_EQ(a.task_count(), b.task_count());
  EXPECT_EQ(a.now(), b.now());
  EXPECT_EQ(a.stats().context_switches, b.stats().context_switches);
  EXPECT_EQ(a.stats().steps, b.stats().steps);
  for (machine::TaskId id = 0; id < a.task_count(); ++id) {
    const machine::Task& ta = a.task(id);
    const machine::Task& tb = b.task(id);
    EXPECT_EQ(ta.counters().instructions, tb.counters().instructions) << "task " << id;
    EXPECT_EQ(ta.counters().memory_refs, tb.counters().memory_refs) << "task " << id;
    EXPECT_EQ(ta.counters().l1_misses, tb.counters().l1_misses) << "task " << id;
    EXPECT_EQ(ta.counters().l2_misses, tb.counters().l2_misses) << "task " << id;
    EXPECT_EQ(ta.counters().tlb_misses, tb.counters().tlb_misses) << "task " << id;
    EXPECT_EQ(ta.counters().context_switches, tb.counters().context_switches) << "task " << id;
    EXPECT_EQ(ta.total_user_cycles, tb.total_user_cycles) << "task " << id;
    EXPECT_EQ(ta.completed_runs, tb.completed_runs) << "task " << id;
  }
  const auto& ha = a.hierarchy().l2().stats();
  const auto& hb = b.hierarchy().l2().stats();
  EXPECT_EQ(ha.accesses, hb.accesses);
  EXPECT_EQ(ha.misses, hb.misses);
  EXPECT_EQ(ha.evictions, hb.evictions);
}

TEST(Determinism, RunBatchMatchesRunFor) {
  // Driving the machine batch-by-batch must be bit-identical to one
  // run_for() over the same simulated span: same clocks, same per-task
  // counters, same shared-L2 history.
  machine::Machine a(tiny_machine());
  machine::Machine b(tiny_machine());
  for (std::size_t pid = 0; pid < 3; ++pid) {
    a.add_task(tiny_task("t" + std::to_string(pid), pid));
    b.add_task(tiny_task("t" + std::to_string(pid), pid));
  }

  const std::uint64_t span = 2'000'000;
  a.run_for(span);

  const std::uint64_t deadline = b.now() + span;
  while (b.now() < deadline) {
    if (b.run_batch(1) == 0) break;
  }
  expect_machines_identical(a, b);
}

TEST(Determinism, RunBatchGranularityIsIrrelevant) {
  // 1-batch steps and 64-batch strides must land on the same state.
  machine::Machine a(tiny_machine());
  machine::Machine b(tiny_machine());
  a.add_task(tiny_task("x", 0));
  a.add_task(tiny_task("y", 1));
  b.add_task(tiny_task("x", 0));
  b.add_task(tiny_task("y", 1));

  std::uint64_t ran_a = 0, ran_b = 0;
  for (int i = 0; i < 640; ++i) ran_a += a.run_batch(1);
  for (int i = 0; i < 10; ++i) ran_b += b.run_batch(64);
  ASSERT_EQ(ran_a, 640u);
  ASSERT_EQ(ran_b, 640u);
  expect_machines_identical(a, b);
}

TEST(Determinism, RunBatchReportsExecutedCount) {
  machine::Machine m(tiny_machine());
  m.add_task(tiny_task("solo", 0));
  EXPECT_EQ(m.run_batch(5), 5u);
  EXPECT_GT(m.now(), 0u);
  // A machine with no work executes zero batches.
  machine::Machine idle(tiny_machine());
  EXPECT_EQ(idle.run_batch(5), 0u);
}

// --- summarize_improvements property tests --------------------------------

/// Independent reference implementation: for one benchmark, walk every
/// (outcome, slot) pair the straightforward way and aggregate.
BenchmarkImprovement reference_summary(const std::string& name,
                                       const std::vector<MixOutcome>& outcomes) {
  BenchmarkImprovement agg;
  agg.name = name;
  for (const auto& outcome : outcomes) {
    for (std::size_t i = 0; i < outcome.mix.size(); ++i) {
      if (outcome.mix[i] != name) continue;
      const double improvement = outcome.improvement_vs_worst(i);
      const double oracle = outcome.oracle_improvement(i);
      agg.max_improvement = std::max(agg.max_improvement, improvement);
      agg.sum_improvement += improvement;
      agg.max_oracle = std::max(agg.max_oracle, oracle);
      agg.sum_oracle += oracle;
      ++agg.mixes;
    }
  }
  return agg;
}

/// Random outcome over @p pool: mix of @p mix_size drawn without
/// replacement, 2-4 mappings with arbitrary user cycles (zeros included to
/// exercise the worst==0 guard).
MixOutcome random_outcome(util::Rng& rng, const std::vector<std::string>& pool,
                          std::size_t mix_size) {
  MixOutcome outcome;
  std::vector<std::string> names = pool;
  for (std::size_t i = 0; i < mix_size; ++i) {
    const std::size_t pick = i + static_cast<std::size_t>(rng.next_below(names.size() - i));
    std::swap(names[i], names[pick]);
    outcome.mix.push_back(names[i]);
  }
  const std::size_t mappings = 2 + static_cast<std::size_t>(rng.next_below(3));
  for (std::size_t m = 0; m < mappings; ++m) {
    MappingRun run;
    run.names = outcome.mix;
    for (std::size_t i = 0; i < mix_size; ++i) {
      // ~10% zeros: a benchmark whose worst time is 0 must contribute 0.
      const bool zero = rng.next_below(10) == 0;
      run.user_cycles.push_back(zero ? 0 : 1 + rng.next_below(1'000'000));
    }
    run.completed = true;
    outcome.mappings.push_back(std::move(run));
  }
  outcome.chosen = static_cast<std::size_t>(rng.next_below(outcome.mappings.size()));
  return outcome;
}

TEST(SummarizeImprovements, MatchesBruteForceReference) {
  const std::vector<std::string> pool = {"a", "b", "c", "d", "e", "f"};
  util::Rng rng(20260806);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<MixOutcome> outcomes;
    const std::size_t count = 1 + static_cast<std::size_t>(rng.next_below(6));
    for (std::size_t i = 0; i < count; ++i) outcomes.push_back(random_outcome(rng, pool, 3));

    const auto summary = summarize_improvements(pool, outcomes);
    ASSERT_EQ(summary.size(), pool.size()) << "one entry per pool benchmark, in pool order";
    for (std::size_t i = 0; i < pool.size(); ++i) {
      EXPECT_EQ(summary[i].name, pool[i]);
      // The reference walks (outcome, slot) pairs in the same order, so the
      // floating-point sums must be EXACTLY equal, not just close.
      EXPECT_EQ(summary[i], reference_summary(pool[i], outcomes)) << "trial " << trial;
    }
  }
}

TEST(SummarizeImprovements, BenchmarkAbsentFromAllMixesIsZeroed) {
  const std::vector<std::string> pool = {"present", "absent"};
  util::Rng rng(7);
  std::vector<MixOutcome> outcomes;
  for (int i = 0; i < 4; ++i) outcomes.push_back(random_outcome(rng, {"present"}, 1));

  const auto summary = summarize_improvements(pool, outcomes);
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary[1].name, "absent");
  EXPECT_EQ(summary[1].mixes, 0);
  EXPECT_EQ(summary[1].max_improvement, 0.0);
  EXPECT_EQ(summary[1].sum_improvement, 0.0);
  EXPECT_EQ(summary[1].avg_improvement(), 0.0) << "no division by zero mixes";
  EXPECT_EQ(summary[1].avg_oracle(), 0.0);
}

TEST(SummarizeImprovements, EmptyOutcomesYieldPoolOfZeroEntries) {
  const std::vector<std::string> pool = {"x", "y"};
  const auto summary = summarize_improvements(pool, {});
  ASSERT_EQ(summary.size(), 2u);
  for (const auto& entry : summary) {
    EXPECT_EQ(entry.mixes, 0);
    EXPECT_EQ(entry.max_improvement, 0.0);
  }
}

// --- SYM_ORDER_INSENSITIVE (util/determinism.hpp) --------------------------
// The annotation symdet accepts on unordered traversals must (a) compile to
// nothing and (b) only ever mark accumulations that really are commutative:
// the unordered-order fold has to equal the sorted-order fold.

TEST(OrderInsensitiveAnnotation, CommutativeFoldMatchesSortedTraversal) {
  std::unordered_set<std::uint64_t> pages;
  util::Rng rng(21);
  for (int i = 0; i < 500; ++i) pages.insert(rng.next_below(1u << 20));

  std::uint64_t sum = 0, xr = 0;
  SYM_ORDER_INSENSITIVE("integer sum and xor are commutative");
  for (const auto page : pages) {
    sum += page;
    xr ^= page;
  }

  std::vector<std::uint64_t> sorted(pages.begin(), pages.end());
  std::sort(sorted.begin(), sorted.end());
  std::uint64_t sorted_sum = 0, sorted_xr = 0;
  for (const auto page : sorted) {
    sorted_sum += page;
    sorted_xr ^= page;
  }
  EXPECT_EQ(sum, sorted_sum);
  EXPECT_EQ(xr, sorted_xr);
}

}  // namespace
}  // namespace symbiosis::core
