// Determinism regression suite (DESIGN.md §9): the same seed must produce
// bit-identical sweep results whether the mixes run serially or on a
// ThreadPool with any worker count. Each experiment builds its own Machine
// and writes only its own outcome slot, so worker interleaving must be
// invisible in the result — this suite is what keeps that true.
//
// Also the property tests for summarize_improvements: the production fold
// is checked against an independently written brute-force reference over
// randomly generated outcomes, including the benchmark-absent-from-all-
// mixes edge case.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace symbiosis::core {
namespace {

/// Tiny machine + very short benchmarks: a full 2-mix sweep in well under a
/// second, so running it four times (serial + three pools) stays cheap.
PipelineConfig tiny_pipeline() {
  PipelineConfig c;
  c.machine.hierarchy.num_cores = 2;
  c.machine.hierarchy.l1 = {1024, 2, 64};
  c.machine.hierarchy.l2 = {32 * 1024, 4, 64};
  c.machine.quantum_cycles = 100'000;
  c.sync_scale();
  c.scale.length_scale = 0.05;
  c.allocator_period_cycles = 500'000;
  c.emulation_cycles = 4'000'000;
  c.measure_max_cycles = 400'000'000;
  return c;
}

const std::vector<std::string> kTinyPool = {"mcf", "libquantum", "povray", "gobmk"};

TEST(Determinism, SweepIsIdenticalForAnyWorkerCount) {
  const PipelineConfig config = tiny_pipeline();
  const SweepResult serial = run_sweep(config, kTinyPool, 2, 1);
  ASSERT_FALSE(serial.outcomes.empty());

  for (const std::size_t workers : {1u, 2u, 8u}) {
    util::ThreadPool pool(workers);
    const SweepResult threaded = run_sweep(config, kTinyPool, 2, 1, false, &pool);
    ASSERT_EQ(threaded.mixes, serial.mixes) << workers << " workers";
    // Bit-identical MixOutcomes: every mapping's user/wall cycles, the
    // phase-1 vote table, and the chosen index — not just the summary.
    EXPECT_EQ(threaded.outcomes, serial.outcomes) << workers << " workers";
    EXPECT_EQ(threaded.summary, serial.summary) << workers << " workers";
  }
}

TEST(Determinism, RepeatedSerialRunsAreIdentical) {
  const PipelineConfig config = tiny_pipeline();
  const SweepResult a = run_sweep(config, kTinyPool, 2, 1);
  const SweepResult b = run_sweep(config, kTinyPool, 2, 1);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.summary, b.summary);
}

TEST(Determinism, SeedSelectsTheMixSample) {
  PipelineConfig config = tiny_pipeline();
  const SweepResult a = run_sweep(config, kTinyPool, 2, 1);
  config.seed += 1;
  const SweepResult b = run_sweep(config, kTinyPool, 2, 1);
  // Different seed, same pool: the sample may legitimately coincide for a
  // pool this small, but outcomes must still be self-consistent.
  ASSERT_EQ(a.mixes.size(), b.mixes.size());
  for (const auto& outcome : b.outcomes) {
    EXPECT_EQ(outcome.mix.size(), 2u);
    EXPECT_FALSE(outcome.mappings.empty());
    EXPECT_LT(outcome.chosen, outcome.mappings.size());
  }
}

// --- summarize_improvements property tests --------------------------------

/// Independent reference implementation: for one benchmark, walk every
/// (outcome, slot) pair the straightforward way and aggregate.
BenchmarkImprovement reference_summary(const std::string& name,
                                       const std::vector<MixOutcome>& outcomes) {
  BenchmarkImprovement agg;
  agg.name = name;
  for (const auto& outcome : outcomes) {
    for (std::size_t i = 0; i < outcome.mix.size(); ++i) {
      if (outcome.mix[i] != name) continue;
      const double improvement = outcome.improvement_vs_worst(i);
      const double oracle = outcome.oracle_improvement(i);
      agg.max_improvement = std::max(agg.max_improvement, improvement);
      agg.sum_improvement += improvement;
      agg.max_oracle = std::max(agg.max_oracle, oracle);
      agg.sum_oracle += oracle;
      ++agg.mixes;
    }
  }
  return agg;
}

/// Random outcome over @p pool: mix of @p mix_size drawn without
/// replacement, 2-4 mappings with arbitrary user cycles (zeros included to
/// exercise the worst==0 guard).
MixOutcome random_outcome(util::Rng& rng, const std::vector<std::string>& pool,
                          std::size_t mix_size) {
  MixOutcome outcome;
  std::vector<std::string> names = pool;
  for (std::size_t i = 0; i < mix_size; ++i) {
    const std::size_t pick = i + static_cast<std::size_t>(rng.next_below(names.size() - i));
    std::swap(names[i], names[pick]);
    outcome.mix.push_back(names[i]);
  }
  const std::size_t mappings = 2 + static_cast<std::size_t>(rng.next_below(3));
  for (std::size_t m = 0; m < mappings; ++m) {
    MappingRun run;
    run.names = outcome.mix;
    for (std::size_t i = 0; i < mix_size; ++i) {
      // ~10% zeros: a benchmark whose worst time is 0 must contribute 0.
      const bool zero = rng.next_below(10) == 0;
      run.user_cycles.push_back(zero ? 0 : 1 + rng.next_below(1'000'000));
    }
    run.completed = true;
    outcome.mappings.push_back(std::move(run));
  }
  outcome.chosen = static_cast<std::size_t>(rng.next_below(outcome.mappings.size()));
  return outcome;
}

TEST(SummarizeImprovements, MatchesBruteForceReference) {
  const std::vector<std::string> pool = {"a", "b", "c", "d", "e", "f"};
  util::Rng rng(20260806);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<MixOutcome> outcomes;
    const std::size_t count = 1 + static_cast<std::size_t>(rng.next_below(6));
    for (std::size_t i = 0; i < count; ++i) outcomes.push_back(random_outcome(rng, pool, 3));

    const auto summary = summarize_improvements(pool, outcomes);
    ASSERT_EQ(summary.size(), pool.size()) << "one entry per pool benchmark, in pool order";
    for (std::size_t i = 0; i < pool.size(); ++i) {
      EXPECT_EQ(summary[i].name, pool[i]);
      // The reference walks (outcome, slot) pairs in the same order, so the
      // floating-point sums must be EXACTLY equal, not just close.
      EXPECT_EQ(summary[i], reference_summary(pool[i], outcomes)) << "trial " << trial;
    }
  }
}

TEST(SummarizeImprovements, BenchmarkAbsentFromAllMixesIsZeroed) {
  const std::vector<std::string> pool = {"present", "absent"};
  util::Rng rng(7);
  std::vector<MixOutcome> outcomes;
  for (int i = 0; i < 4; ++i) outcomes.push_back(random_outcome(rng, {"present"}, 1));

  const auto summary = summarize_improvements(pool, outcomes);
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary[1].name, "absent");
  EXPECT_EQ(summary[1].mixes, 0);
  EXPECT_EQ(summary[1].max_improvement, 0.0);
  EXPECT_EQ(summary[1].sum_improvement, 0.0);
  EXPECT_EQ(summary[1].avg_improvement(), 0.0) << "no division by zero mixes";
  EXPECT_EQ(summary[1].avg_oracle(), 0.0);
}

TEST(SummarizeImprovements, EmptyOutcomesYieldPoolOfZeroEntries) {
  const std::vector<std::string> pool = {"x", "y"};
  const auto summary = summarize_improvements(pool, {});
  ASSERT_EQ(summary.size(), 2u);
  for (const auto& entry : summary) {
    EXPECT_EQ(entry.mixes, 0);
    EXPECT_EQ(entry.max_improvement, 0.0);
  }
}

}  // namespace
}  // namespace symbiosis::core
