#include "cachesim/hierarchy.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace symbiosis::cachesim {
namespace {

HierarchyConfig tiny_config() {
  HierarchyConfig c;
  c.num_cores = 2;
  c.l1 = {1024, 2, 64};       // 8 sets x 2 ways
  c.l2 = {8 * 1024, 4, 64};   // 32 sets x 4 ways
  c.shared_l2 = true;
  return c;
}

TEST(Hierarchy, LatencyAccounting) {
  Hierarchy h(tiny_config());
  const auto& lat = tiny_config().latency;
  // Cold access: TLB miss + L1 + L2 + memory.
  const auto cold = h.access(0, 0x10000, false);
  EXPECT_FALSE(cold.l1_hit);
  EXPECT_FALSE(cold.l2_hit);
  EXPECT_FALSE(cold.tlb_hit);
  EXPECT_EQ(cold.cycles, lat.tlb_miss + lat.l1_hit + lat.l2_hit + lat.memory);
  // Immediate re-access: all hits.
  const auto warm = h.access(0, 0x10000, false);
  EXPECT_TRUE(warm.l1_hit);
  EXPECT_TRUE(warm.tlb_hit);
  EXPECT_EQ(warm.cycles, lat.l1_hit);
}

TEST(Hierarchy, L2HitAfterL1Eviction) {
  Hierarchy h(tiny_config());
  const Addr base = 0;
  h.access(0, base, false);
  // Push base out of its 2-way L1 set (same L1 set every 8 lines = 512B).
  h.access(0, base + 512, false);
  h.access(0, base + 1024, false);
  const auto result = h.access(0, base, false);
  EXPECT_FALSE(result.l1_hit);
  EXPECT_TRUE(result.l2_hit);
}

TEST(Hierarchy, InclusionInvalidatesL1OnL2Eviction) {
  Hierarchy h(tiny_config());
  const Addr victim = 0;
  h.access(0, victim, false);
  // Fill L2 set 0 (4 ways) from the OTHER core: lines every 32 lines = 2KB.
  for (int i = 1; i <= 4; ++i) h.access(1, victim + i * 2048, false);
  // victim was evicted from L2; inclusion demands it left core 0's L1 too.
  const auto result = h.access(0, victim, false);
  EXPECT_FALSE(result.l1_hit);
  EXPECT_FALSE(result.l2_hit);
}

TEST(Hierarchy, StreamDetectionLowersMissCost) {
  Hierarchy h(tiny_config());
  const auto& lat = tiny_config().latency;
  // A long unit-stride scan: after the detector locks (2 strides), L2
  // misses cost stream_miss.
  Addr addr = 1 << 20;
  h.access(0, addr, false);
  h.access(0, addr + 64, false);
  const auto third = h.access(0, addr + 128, false);
  EXPECT_TRUE(third.stream_prefetched);
  EXPECT_EQ(third.cycles, lat.l1_hit + lat.l2_hit + lat.stream_miss);
}

TEST(Hierarchy, RandomAccessPaysFullMemoryLatency) {
  Hierarchy h(tiny_config());
  // Large irregular strides never trigger the detector.
  const auto a = h.access(0, 0, false);
  const auto b = h.access(0, 1 << 18, false);
  const auto c = h.access(0, 1 << 19, false);
  EXPECT_FALSE(a.stream_prefetched);
  EXPECT_FALSE(b.stream_prefetched);
  EXPECT_FALSE(c.stream_prefetched);
}

TEST(Hierarchy, FilterUnitSeesL2Fills) {
  Hierarchy h(tiny_config());
  ASSERT_NE(h.filter(), nullptr);
  h.access(0, 0x40000, false);
  EXPECT_EQ(h.filter()->core_filter_weight(0), 1u);
  EXPECT_EQ(h.filter()->core_filter_weight(1), 0u);
  // L1/L2 hits add no new filter bits.
  h.access(0, 0x40000, false);
  EXPECT_EQ(h.filter()->core_filter_weight(0), 1u);
}

TEST(Hierarchy, PrivateL2HasNoFilterAndIsolates) {
  HierarchyConfig cfg = tiny_config();
  cfg.shared_l2 = false;
  Hierarchy h(cfg);
  EXPECT_EQ(h.filter(), nullptr);
  // Core 1 filling its own L2 cannot evict core 0's lines.
  h.access(0, 0, false);
  for (int i = 1; i <= 8; ++i) h.access(1, i * 2048, false);
  const auto result = h.access(0, 0, false);
  EXPECT_TRUE(result.l1_hit || result.l2_hit);
}

TEST(Hierarchy, SharedL2ContentionAcrossCores) {
  Hierarchy h(tiny_config());
  h.access(0, 0, false);
  for (int i = 1; i <= 4; ++i) h.access(1, i * 2048, false);
  const auto result = h.access(0, 0, false);
  EXPECT_FALSE(result.l2_hit);  // core 1 displaced it
}

TEST(Hierarchy, ContextSwitchFlushesTlbAndSnapshotsLf) {
  Hierarchy h(tiny_config());
  h.access(0, 0x1234, false);
  EXPECT_TRUE(h.access(0, 0x1234, false).tlb_hit);
  h.on_context_switch_in(0);
  EXPECT_FALSE(h.access(0, 0x1234, false).tlb_hit);  // TLB flushed
  // LF snapshot: the pre-switch fill is not "new" for the incoming task.
  EXPECT_EQ(h.filter()->compute_rbv(0).popcount(), 0u);
}

TEST(Hierarchy, FootprintGroundTruth) {
  Hierarchy h(tiny_config());
  for (int i = 0; i < 10; ++i) h.access(0, i * 64, false);
  for (int i = 0; i < 3; ++i) h.access(1, (1 << 20) + i * 64, false);
  EXPECT_EQ(h.l2_footprint(0), 10u);
  EXPECT_EQ(h.l2_footprint(1), 3u);
}

TEST(Hierarchy, ResetRestoresCold) {
  Hierarchy h(tiny_config());
  h.access(0, 0, false);
  h.reset();
  EXPECT_EQ(h.l2_footprint(0), 0u);
  EXPECT_FALSE(h.access(0, 0, false).l1_hit);
}

TEST(Hierarchy, ResetStatsClearsAllCountersButKeepsTags) {
  Hierarchy h(tiny_config());
  for (int i = 0; i < 64; ++i) h.access(i % 2, static_cast<Addr>(i) * 2048, i % 3 == 0);
  ASSERT_GT(h.l2().stats().accesses, 0u);
  ASSERT_GT(h.l2().stats_for(1).accesses, 0u);

  h.reset_stats();

  // Every counter is back to zero: totals, per-requestor, TLB.
  EXPECT_EQ(h.l2().stats().accesses, 0u);
  EXPECT_EQ(h.l2().stats().misses, 0u);
  EXPECT_EQ(h.l2().stats().evictions, 0u);
  for (std::size_t core = 0; core < 2; ++core) {
    EXPECT_EQ(h.l1(core).stats().accesses, 0u);
    EXPECT_EQ(h.l2().stats_for(core).accesses, 0u);
    EXPECT_EQ(h.l2().stats_for(core).misses, 0u);
    EXPECT_EQ(h.l2().stats_for(core).evictions, 0u);
    EXPECT_EQ(h.tlb(core).hits(), 0u);
    EXPECT_EQ(h.tlb(core).misses(), 0u);
  }

  // Tag arrays are untouched: the most recently filled line still hits, and
  // the footprint survives — reset_stats() only discards counters.
  EXPECT_GT(h.l2_footprint(0) + h.l2_footprint(1), 0u);
  const auto warm = h.access(1, 63 * 2048, false);
  EXPECT_TRUE(warm.l1_hit || warm.l2_hit);
}

TEST(Hierarchy, ResetStatsMidRunKeepsPublishedMetricsMonotone) {
  // Regression: resetting the caches' counters without re-baselining the obs
  // delta publisher made the next publish compute (small now - large
  // published) on unsigned values — a huge wraparound jump in the global
  // metric. reset_stats() must move both together.
  Hierarchy h(tiny_config());
  obs::Counter& l2_miss = obs::counter("cachesim.l2.miss");
  obs::Counter& l1_hit = obs::counter("cachesim.l1.hit");

  for (int i = 0; i < 200; ++i) h.access(0, static_cast<Addr>(i) * 4096, false);
  h.publish_metrics();
  const std::uint64_t miss_before = l2_miss.value();
  const std::uint64_t hit_before = l1_hit.value();

  h.reset_stats();  // mid-run: discard the warm-up counters

  for (int i = 0; i < 10; ++i) h.access(0, static_cast<Addr>(i) * 4096, false);
  h.publish_metrics();

  // The published deltas cover exactly the 10 post-reset accesses: monotone,
  // and bounded by the new traffic — not a wrapped-around 2^64-ish jump.
  EXPECT_GE(l2_miss.value(), miss_before);
  EXPECT_LE(l2_miss.value() - miss_before, 10u);
  EXPECT_GE(l1_hit.value(), hit_before);
  EXPECT_LE(l1_hit.value() - hit_before, 10u);

  // Another reset + publish with NO traffic in between publishes zero delta.
  h.reset_stats();
  const std::uint64_t miss_mark = l2_miss.value();
  h.publish_metrics();
  EXPECT_EQ(l2_miss.value(), miss_mark);
}

TEST(Hierarchy, ResetStatsMidRunKeepsL3MetricsMonotone) {
  // The L1/L2 wraparound regression extended to the third level: an L3 left
  // out of reset_stats()'s re-baselining would publish a 2^64-ish delta on
  // the next publish_metrics(). Uses a 2-cluster + L3 topology so the L3
  // counters actually move.
  HierarchyConfig cfg = tiny_config();
  cfg.num_cores = 4;
  cfg.l2_clusters = 2;
  cfg.l3 = CacheGeometry{16 * 1024, 8, 64};
  Hierarchy h(cfg);
  ASSERT_TRUE(h.has_l3());
  obs::Counter& l3_miss = obs::counter("cachesim.l3.miss");
  obs::Counter& l3_hit = obs::counter("cachesim.l3.hit");

  for (int i = 0; i < 200; ++i) h.access(i % 4, static_cast<Addr>(i) * 4096, false);
  h.publish_metrics();
  const std::uint64_t miss_before = l3_miss.value();
  const std::uint64_t hit_before = l3_hit.value();
  ASSERT_GT(h.level_stats("l3").accesses, 0u);

  h.reset_stats();
  EXPECT_EQ(h.level_stats("l3"), LevelStats{});

  for (int i = 0; i < 10; ++i) h.access(0, static_cast<Addr>(i) * 4096, false);
  h.publish_metrics();

  EXPECT_GE(l3_miss.value(), miss_before);
  EXPECT_LE(l3_miss.value() - miss_before, 10u);
  EXPECT_GE(l3_hit.value(), hit_before);
  EXPECT_LE(l3_hit.value() - hit_before, 10u);

  // Reset + publish with no traffic publishes zero L3 delta.
  h.reset_stats();
  const std::uint64_t miss_mark = l3_miss.value();
  h.publish_metrics();
  EXPECT_EQ(l3_miss.value(), miss_mark);
}

TEST(Hierarchy, LevelStatsRejectsUnknownLevel) {
  Hierarchy h(tiny_config());
  const util::ScopedCheckMode guard(util::CheckMode::Throw);
  EXPECT_THROW((void)h.level_stats("l4"), util::CheckError);
}

TEST(Hierarchy, FullResetAlsoRebaselinesPublisher) {
  Hierarchy h(tiny_config());
  obs::Counter& l2_miss = obs::counter("cachesim.l2.miss");
  for (int i = 0; i < 100; ++i) h.access(1, static_cast<Addr>(i) * 4096, false);
  h.publish_metrics();
  const std::uint64_t before = l2_miss.value();
  h.reset();  // cold caches AND counters
  h.publish_metrics();
  EXPECT_EQ(l2_miss.value(), before) << "reset() left a stale publish baseline";
}

TEST(Hierarchy, Validation) {
  HierarchyConfig cfg = tiny_config();
  cfg.num_cores = 0;
  EXPECT_THROW(Hierarchy{cfg}, std::invalid_argument);
  cfg = tiny_config();
  cfg.l1.line_bytes = 32;  // mismatched line sizes
  EXPECT_THROW(Hierarchy{cfg}, std::invalid_argument);
}

TEST(Hierarchy, SignatureSampling25Percent) {
  HierarchyConfig cfg = tiny_config();
  cfg.signature.sample_shift = 2;
  Hierarchy h(cfg);
  ASSERT_NE(h.filter(), nullptr);
  EXPECT_EQ(h.filter()->entries(), cfg.l2.lines() / 4);
}

}  // namespace
}  // namespace symbiosis::cachesim
