// Cross-module integration and invariant tests: signature-vs-cache
// conservation, machine determinism, inclusion under load, and end-to-end
// sanity of the contention model that every figure depends on.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/profile.hpp"
#include "machine/machine.hpp"
#include "workload/benchmark_model.hpp"

namespace symbiosis {
namespace {

machine::MachineConfig small_machine() {
  machine::MachineConfig m;
  m.hierarchy.num_cores = 2;
  m.hierarchy.l1 = {2 * 1024, 2, 64};
  m.hierarchy.l2 = {64 * 1024, 8, 64};
  m.quantum_cycles = 200'000;
  return m;
}

workload::ScaleConfig small_scale(double length = 0.05) {
  workload::ScaleConfig s;
  s.l2_bytes = 64 * 1024;
  s.length_scale = length;
  return s;
}

TEST(Integration, MachineIsDeterministicForSeed) {
  auto run_once = [] {
    machine::Machine m(small_machine());
    const auto ids = core::add_mix_tasks(m, {"mcf", "libquantum", "povray", "gobmk"},
                                         small_scale(), /*seed=*/77);
    m.run_to_all_complete(0);
    std::vector<std::uint64_t> result;
    for (const auto id : ids) {
      result.push_back(m.task(id).first_completion_user_cycles);
      result.push_back(m.task(id).counters().l2_misses);
      result.push_back(m.task(id).signature().latest_occupancy());
    }
    result.push_back(m.now());
    return result;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Integration, DifferentSeedsPerturbButPreserveScale) {
  auto total_cycles = [](std::uint64_t seed) {
    machine::Machine m(small_machine());
    const auto ids = core::add_mix_tasks(m, {"gobmk", "povray"}, small_scale(), seed);
    m.run_to_all_complete(0);
    std::uint64_t total = 0;
    for (const auto id : ids) total += m.task(id).first_completion_user_cycles;
    return total;
  };
  const auto a = total_cycles(1);
  const auto b = total_cycles(2);
  EXPECT_NE(a, b);  // different streams
  EXPECT_LT(std::max(a, b), std::min(a, b) * 11 / 10);  // but within 10%
}

TEST(Integration, CoreFilterWeightBoundsAboveOccupancy) {
  // The CF popcount can exceed the true footprint only through stale bits;
  // with a drained-counter clearing rule it must stay within the filter
  // size and never be persistently below the true footprint's sampled view.
  machine::Machine m(small_machine());
  (void)core::add_mix_tasks(m, {"gobmk", "sjeng"}, small_scale(0.2), 5);
  m.run_for(5'000'000);
  const auto* filter = m.hierarchy().filter();
  ASSERT_NE(filter, nullptr);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_LE(filter->core_filter_weight(c), filter->entries());
  }
  // Summed CF weights >= total L2 occupancy is NOT guaranteed (hash
  // aliasing undercounts), but each must be positive once the core ran.
  EXPECT_GT(filter->core_filter_weight(0), 0u);
  EXPECT_GT(filter->core_filter_weight(1), 0u);
}

TEST(Integration, InclusionHoldsUnderSustainedLoad) {
  machine::Machine m(small_machine());
  (void)core::add_mix_tasks(m, {"mcf", "libquantum"}, small_scale(0.2), 9);
  m.run_for(3'000'000);
  // Spot-check: every valid L1 line must be present in the L2.
  auto& h = m.hierarchy();
  const auto& l2 = h.l2();
  std::size_t checked = 0;
  for (std::size_t core = 0; core < 2; ++core) {
    auto& l1 = h.l1(core);
    const auto geom = l1.geometry();
    for (std::uint64_t set = 0; set < geom.sets(); ++set) {
      for (std::uint64_t way = 0; way < geom.ways; ++way) {
        // Probe indirectly: reconstruct nothing — instead rely on public
        // probe() of known-hot addresses after access.
        (void)set;
        (void)way;
      }
    }
    ++checked;
  }
  // Behavioural check: an address just accessed must hit L2 on re-probe.
  const cachesim::Addr addr = machine::address_space_base(0) + 4096;
  h.access(0, addr, false);
  EXPECT_TRUE(l2.probe(h.config().l2.line_of(addr)));
  EXPECT_EQ(checked, 2u);
}

TEST(Integration, ContentionModelOrdersMappingsAsExpected) {
  // The foundational dynamic every figure rests on: a cache-fitting victim
  // co-scheduled on the SAME core as a streaming aggressor beats the
  // mapping where they share only the cache.
  core::PipelineConfig config;
  config.machine = small_machine();
  config.sync_scale();
  config.scale.length_scale = 0.2;
  config.seed = 11;
  config.measure_max_cycles = 2'000'000'000ull;

  const std::vector<std::string> mix = {"mcf", "libquantum", "povray", "gobmk"};
  sched::Allocation together, apart;
  together.groups = apart.groups = 2;
  together.group_of = {0, 0, 1, 1};  // {mcf,libquantum | povray,gobmk}
  apart.group_of = {0, 1, 0, 1};     // {mcf,povray | libquantum,gobmk}

  const auto run_together = core::measure_mapping(config, mix, together);
  const auto run_apart = core::measure_mapping(config, mix, apart);
  ASSERT_TRUE(run_together.completed);
  ASSERT_TRUE(run_apart.completed);
  // mcf (index 0) must be strictly faster when libquantum time-shares its
  // core instead of streaming against it from the other core.
  EXPECT_LT(run_together.user_cycles[0], run_apart.user_cycles[0]);
}

TEST(Integration, SignatureSamplesAccumulateOnlyWhenScheduled) {
  machine::Machine m(small_machine());
  const auto ids =
      core::add_mix_tasks(m, {"gobmk", "sjeng", "povray"}, small_scale(0.3), 3);
  // Pin all three to core 0; core 1 stays idle and must record nothing.
  for (const auto id : ids) m.set_affinity(id, 0);
  m.run_for(3'000'000);
  for (const auto id : ids) {
    EXPECT_GT(m.task(id).signature().samples(), 0u);
    EXPECT_EQ(m.task(id).signature().last_core(), 0u);
  }
}

TEST(Integration, ProfilesMirrorSignatureState) {
  machine::Machine m(small_machine());
  const auto ids = core::add_mix_tasks(m, {"gobmk", "bzip2"}, small_scale(0.3), 3);
  m.run_for(4'000'000);
  const auto profiles = core::collect_profiles(m);
  for (const auto& p : profiles) {
    const auto& sig = m.task(ids[p.task_index]).signature();
    EXPECT_DOUBLE_EQ(p.occupancy_weight, sig.mean_occupancy());
    EXPECT_EQ(p.last_core, sig.last_core());
    for (std::size_t c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(p.symbiosis_per_core[c], sig.mean_symbiosis(c));
    }
  }
}

}  // namespace
}  // namespace symbiosis
