// Failure-injection and boundary tests across the machine and vm layers.
#include <gtest/gtest.h>

#include "core/profile.hpp"
#include "machine/machine.hpp"
#include "sig/counting_bloom.hpp"
#include "util/check.hpp"
#include "vm/hypervisor.hpp"
#include "workload/benchmark_model.hpp"

namespace symbiosis {
namespace {

machine::MachineConfig micro_machine(std::size_t cores = 2) {
  machine::MachineConfig m;
  m.hierarchy.num_cores = cores;
  m.hierarchy.l1 = {1024, 2, 64};
  m.hierarchy.l2 = {16 * 1024, 4, 64};
  m.quantum_cycles = 50'000;
  return m;
}

std::unique_ptr<workload::Workload> one_phase(const std::string& name, std::size_t pid,
                                              std::uint64_t refs,
                                              workload::PatternKind kind =
                                                  workload::PatternKind::Zipf) {
  workload::BenchmarkSpec spec;
  spec.name = name;
  workload::PhaseSpec phase;
  phase.pattern.kind = kind;
  phase.pattern.region_bytes = 8 * 1024;
  phase.compute_gap = 4.0;
  phase.refs = refs;
  spec.phases = {phase};
  spec.total_refs = refs;
  return std::make_unique<workload::Workload>(spec, machine::address_space_base(pid),
                                              util::Rng{pid + 1});
}

TEST(EdgeCases, EmptyMachineRunsAreNoops) {
  machine::Machine m(micro_machine());
  EXPECT_TRUE(m.run_to_all_complete());  // vacuously complete
  m.run_for(1'000'000);                  // must not hang or crash
  EXPECT_EQ(m.stats().steps, 0u);
}

TEST(EdgeCases, OnlyBackgroundTasksCompleteVacuously) {
  machine::Machine m(micro_machine());
  const auto id = m.add_task(one_phase("bg", 0, ~0ull >> 2), 0);
  m.task(id).background = true;
  EXPECT_TRUE(m.run_to_all_complete(10'000'000));
}

TEST(EdgeCases, SingleRefBenchmarkCompletes) {
  machine::Machine m(micro_machine());
  const auto id = m.add_task(one_phase("one", 0, 1), 0);
  EXPECT_TRUE(m.run_to_all_complete());
  EXPECT_GE(m.task(id).completed_runs, 1u);
  EXPECT_GT(m.task(id).first_completion_user_cycles, 0u);
}

TEST(EdgeCases, MoreTasksThanCoresAllComplete) {
  machine::Machine m(micro_machine(2));
  std::vector<machine::TaskId> ids;
  for (std::size_t i = 0; i < 7; ++i) ids.push_back(m.add_task(one_phase("t", i, 5'000)));
  EXPECT_TRUE(m.run_to_all_complete());
  for (const auto id : ids) EXPECT_GE(m.task(id).completed_runs, 1u);
}

TEST(EdgeCases, AllTasksPinnedToOneCoreLeavesOthersIdle) {
  machine::Machine m(micro_machine(4));
  for (std::size_t i = 0; i < 3; ++i) m.add_task(one_phase("t", i, 10'000), 0);
  EXPECT_TRUE(m.run_to_all_complete());
  // Cores 1..3 never ran anything.
  for (std::size_t core = 1; core < 4; ++core) {
    EXPECT_EQ(m.hierarchy().l2_footprint(core), 0u) << core;
  }
}

TEST(EdgeCases, ZeroJitterIsLegal) {
  machine::MachineConfig cfg = micro_machine();
  cfg.quantum_jitter = 0.0;
  machine::Machine m(cfg);
  m.add_task(one_phase("a", 0, 10'000), 0);
  m.add_task(one_phase("b", 1, 10'000), 0);
  EXPECT_TRUE(m.run_to_all_complete());
}

TEST(EdgeCases, ZeroMigrationKeepsInitialPlacement) {
  machine::MachineConfig cfg = micro_machine();
  cfg.migration_prob = 0.0;
  machine::Machine m(cfg);
  const auto a = m.add_task(one_phase("a", 0, 2'000'000));  // defaults to core 0
  const auto b = m.add_task(one_phase("b", 1, 2'000'000));  // defaults to core 1
  m.run_for(2'000'000);
  EXPECT_EQ(m.task(a).signature().last_core(), 0u);
  EXPECT_EQ(m.task(b).signature().last_core(), 1u);
}

TEST(EdgeCases, SignatureDisabledMachineStillSchedules) {
  machine::MachineConfig cfg = micro_machine();
  cfg.hierarchy.signature.enabled = false;
  machine::Machine m(cfg);
  const auto id = m.add_task(one_phase("nosig", 0, 10'000), 0);
  m.add_task(one_phase("peer", 1, 10'000), 0);
  EXPECT_TRUE(m.run_to_all_complete());
  EXPECT_EQ(m.hierarchy().filter(), nullptr);
  // No filter -> no samples, but accounting still works.
  EXPECT_EQ(m.task(id).signature().samples(), 0u);
  EXPECT_GT(m.task(id).first_completion_user_cycles, 0u);
}

TEST(EdgeCases, ProfilesWithoutSamplesAreZeroNotGarbage) {
  machine::MachineConfig cfg = micro_machine();
  cfg.hierarchy.signature.enabled = false;
  machine::Machine m(cfg);
  m.add_task(one_phase("a", 0, 5'000), 0);
  m.run_for(100'000);
  const auto profiles = core::collect_profiles(m);
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].occupancy_weight, 0.0);
  EXPECT_EQ(profiles[0].interference_with(1), 1.0);  // clamp, not inf/NaN
}

TEST(EdgeCases, HypervisorWithSingleGuestOnly) {
  vm::VmConfig cfg;
  cfg.machine = micro_machine();
  cfg.dom0_background = false;
  cfg.dom0_region_bytes = 4 * 1024;
  vm::Hypervisor hv(cfg);
  const auto dom = hv.create_domain(one_phase("guest", 3, 10'000));
  EXPECT_TRUE(hv.run_to_all_complete());
  EXPECT_GT(hv.domain_user_cycles(dom), 0u);
}

TEST(EdgeCases, FilterInvariantsHoldAfterMixedRun) {
  // Regression for the counter/bit-vector bookkeeping the SYM_CHECK wiring
  // now guards: after sustained eviction + quantum-switch traffic, the
  // signature unit's shared counters and per-core filters must still agree.
  const util::ScopedCheckMode guard(util::CheckMode::Throw);
  machine::Machine m(micro_machine());
  m.add_task(one_phase("a", 0, 40'000), 0);
  m.add_task(one_phase("b", 1, 40'000, workload::PatternKind::Stream), 1);
  m.run_for(2'000'000);
  const auto* filter = m.hierarchy().filter();
  ASSERT_NE(filter, nullptr);
  EXPECT_NO_THROW(filter->validate());
  EXPECT_TRUE(m.run_to_all_complete());
  EXPECT_NO_THROW(filter->validate());
  EXPECT_EQ(util::check_violation_total(), 0u);
}

TEST(EdgeCases, CountingBloomStaysConsistentThroughChurn) {
  // Saturating counters plus remove-on-zero no-ops must never corrupt the
  // nonzero bookkeeping that validate() audits.
  const util::ScopedCheckMode guard(util::CheckMode::Throw);
  sig::CountingBloomFilter cbf(/*entries=*/64, /*counter_bits=*/2, /*k=*/3);
  for (std::uint64_t round = 0; round < 4; ++round) {
    for (std::uint64_t key = 0; key < 200; ++key) cbf.insert(key * 64);
    EXPECT_NO_THROW(cbf.validate());
    for (std::uint64_t key = 0; key < 200; ++key) cbf.remove(key * 64);
    EXPECT_NO_THROW(cbf.validate());
    // Removing keys that were never inserted is a defined no-op.
    for (std::uint64_t key = 500; key < 520; ++key) cbf.remove(key * 64);
    EXPECT_NO_THROW(cbf.validate());
  }
}

TEST(EdgeCases, StreamWorkloadSurvivesQuantumBoundaries) {
  // A pure streamer crossing many quanta must never deadlock the restart
  // logic or the filter's counter maintenance.
  machine::Machine m(micro_machine());
  const auto id =
      m.add_task(one_phase("stream", 0, 30'000, workload::PatternKind::Stream), 0);
  m.add_task(one_phase("peer", 1, 30'000), 0);
  EXPECT_TRUE(m.run_to_all_complete());
  EXPECT_GT(m.task(id).counters().l2_misses, 0u);
}

}  // namespace
}  // namespace symbiosis
