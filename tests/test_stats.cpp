#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace symbiosis::util {
namespace {

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyAndSingle) {
  RunningStat s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  Rng rng(5);
  RunningStat whole, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_normal() * 3 + 1;
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStat, MergeWithEmpty) {
  RunningStat a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-5.0);   // clamps into first bin
  h.add(100.0);  // clamps into last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, Quantile) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
}

TEST(Pearson, ZeroVarianceIsZero) {
  std::vector<double> x = {1, 1, 1, 1};
  std::vector<double> y = {1, 2, 3, 4};
  EXPECT_EQ(pearson(x, y), 0.0);
}

TEST(Pearson, IndependentNearZero) {
  Rng rng(7);
  std::vector<double> x(2000), y(2000);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = rng.next_double();
    y[i] = rng.next_double();
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.08);
}

TEST(Spearman, MonotoneNonlinearIsOne) {
  std::vector<double> x = {1, 2, 3, 4, 5, 6};
  std::vector<double> y = {1, 8, 27, 64, 125, 216};  // x^3: nonlinear, monotone
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Spearman, HandlesTies) {
  std::vector<double> x = {1, 2, 2, 3};
  std::vector<double> y = {1, 2, 2, 3};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Aggregates, MeanGeomeanQuantile) {
  std::vector<double> xs = {1.0, 2.0, 4.0, 8.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 3.75);
  EXPECT_NEAR(geomean_of(xs), std::sqrt(std::sqrt(64.0)), 1e-12);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 1.0), 8.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.5), 3.0);
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_EQ(geomean_of({}), 0.0);
}

TEST(Aggregates, GeomeanNonPositiveIsZero) {
  std::vector<double> xs = {1.0, -2.0};
  EXPECT_EQ(geomean_of(xs), 0.0);
}

}  // namespace
}  // namespace symbiosis::util
