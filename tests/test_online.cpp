#include "core/online.hpp"

#include <gtest/gtest.h>

namespace symbiosis::core {
namespace {

OnlineConfig tiny_online() {
  OnlineConfig c;
  c.pipeline.machine.hierarchy.num_cores = 2;
  c.pipeline.machine.hierarchy.l1 = {1024, 2, 64};
  c.pipeline.machine.hierarchy.l2 = {32 * 1024, 4, 64};
  c.pipeline.machine.quantum_cycles = 100'000;
  c.pipeline.sync_scale();
  c.pipeline.scale.length_scale = 0.05;
  c.pipeline.allocator_period_cycles = 500'000;
  c.pipeline.measure_max_cycles = 400'000'000;
  c.confirm_windows = 1;
  return c;
}

TEST(Online, RunsToCompletionAndRepins) {
  const OnlineConfig config = tiny_online();
  const std::vector<std::string> mix = {"mcf", "libquantum", "povray", "gobmk"};
  const OnlineRun run = run_online(config, mix);
  EXPECT_TRUE(run.completed);
  ASSERT_EQ(run.user_cycles.size(), 4u);
  for (const auto cycles : run.user_cycles) EXPECT_GT(cycles, 0u);
  // With confirm_windows = 1 the monitor applies at least its first vote.
  EXPECT_GE(run.repinnings, 1u);
  EXPECT_FALSE(run.final_mapping_key.empty());
}

TEST(Online, BaselineNeverRepins) {
  const OnlineConfig config = tiny_online();
  const std::vector<std::string> mix = {"povray", "gobmk", "sjeng", "bzip2"};
  const OnlineRun run = run_online_baseline(config, mix);
  EXPECT_TRUE(run.completed);
  EXPECT_EQ(run.repinnings, 0u);
}

TEST(Online, ConfirmationHysteresisLimitsRepinning) {
  OnlineConfig eager = tiny_online();
  eager.confirm_windows = 1;
  OnlineConfig cautious = tiny_online();
  cautious.confirm_windows = 4;
  const std::vector<std::string> mix = {"mcf", "libquantum", "povray", "gobmk"};
  const OnlineRun eager_run = run_online(eager, mix);
  const OnlineRun cautious_run = run_online(cautious, mix);
  EXPECT_LE(cautious_run.repinnings, eager_run.repinnings);
}

TEST(Online, JainFairnessIndex) {
  EXPECT_DOUBLE_EQ(jain_fairness({1.0, 1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({}), 1.0);
  // One task slowed 3x, three untouched: (6)^2 / (4 * 12) = 0.75.
  EXPECT_NEAR(jain_fairness({3.0, 1.0, 1.0, 1.0}), 0.75, 1e-12);
  // Fairness decreases as dispersion grows.
  EXPECT_GT(jain_fairness({1.1, 1.0}), jain_fairness({2.0, 1.0}));
}

TEST(Online, SoloBaselinesArePositiveAndPerBenchmark) {
  const OnlineConfig config = tiny_online();
  const std::vector<std::string> mix = {"povray", "mcf"};
  const auto solo = solo_user_cycles(config.pipeline, mix);
  ASSERT_EQ(solo.size(), 2u);
  EXPECT_GT(solo[0], 0u);
  EXPECT_GT(solo[1], 0u);
  EXPECT_NE(solo[0], solo[1]);
}

}  // namespace
}  // namespace symbiosis::core
