#include "sched/multithread.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace symbiosis::sched {
namespace {

TaskProfile thread_profile(std::size_t index, std::size_t pid, double weight,
                           std::vector<double> symbiosis = {1000, 1000},
                           std::size_t last_core = 0) {
  TaskProfile p;
  p.task_index = index;
  p.pid = pid;
  p.name = "pid" + std::to_string(pid) + ".t" + std::to_string(index);
  p.occupancy_weight = weight;
  p.symbiosis_per_core = std::move(symbiosis);
  p.last_core = last_core;
  return p;
}

TEST(MultiThreadPhase1, WeightSortsWithinEachProcess) {
  // One 4-thread process with weights 40,10,35,5: phase 1 (2 cores) must
  // pair {40,35} and {10,5}.
  std::vector<TaskProfile> profiles = {
      thread_profile(0, 0, 40), thread_profile(1, 0, 10),
      thread_profile(2, 0, 35), thread_profile(3, 0, 5),
  };
  const auto groups = MultiThreadAllocator::phase1_groups(profiles, 2);
  EXPECT_EQ(groups[0], groups[2]);
  EXPECT_EQ(groups[1], groups[3]);
  EXPECT_NE(groups[0], groups[1]);
}

TEST(MultiThreadPhase1, SingleThreadedProcessesUntouched) {
  std::vector<TaskProfile> profiles = {
      thread_profile(0, 0, 40),
      thread_profile(1, 1, 10),
  };
  const auto groups = MultiThreadAllocator::phase1_groups(profiles, 2);
  EXPECT_EQ(groups[0], 0u);
  EXPECT_EQ(groups[1], 0u);
}

TEST(MultiThreadAllocator, PinnedPairsStayTogether) {
  // Two 2-thread processes; thread weights force phase-1 grouping, and the
  // final cut must respect it regardless of symbiosis noise.
  std::vector<TaskProfile> profiles = {
      thread_profile(0, 0, 100, {900, 200}, 0),
      thread_profile(1, 0, 90, {100, 800}, 1),
      thread_profile(2, 1, 80, {300, 700}, 0),
      thread_profile(3, 1, 70, {600, 250}, 1),
  };
  const Allocation result = MultiThreadAllocator().allocate(profiles, 2);
  // With 2 threads per process and 2 cores, phase 1 splits each process's
  // threads apart (weights differ), so no intra-process pair may share.
  EXPECT_NE(result.group_of[0], result.group_of[1]);
  EXPECT_NE(result.group_of[2], result.group_of[3]);
}

TEST(MultiThreadAllocator, FourThreadProcessSplitsTwoAndTwo) {
  // One 4-thread process on a dual-core: phase 1 pairs {heavy,heavy} and
  // {light,light}; the pinned edges must carry that through the MIN-CUT.
  std::vector<TaskProfile> profiles = {
      thread_profile(0, 0, 40), thread_profile(1, 0, 10),
      thread_profile(2, 0, 35), thread_profile(3, 0, 5),
  };
  const Allocation result = MultiThreadAllocator().allocate(profiles, 2);
  EXPECT_EQ(result.group_of[0], result.group_of[2]);
  EXPECT_EQ(result.group_of[1], result.group_of[3]);
  EXPECT_NE(result.group_of[0], result.group_of[1]);
}

TEST(MultiThreadAllocator, MixedProcessesBalanced) {
  // Two 4-thread processes on 2 cores -> 4 threads per core.
  std::vector<TaskProfile> profiles;
  for (std::size_t pid = 0; pid < 2; ++pid) {
    for (std::size_t t = 0; t < 4; ++t) {
      profiles.push_back(
          thread_profile(pid * 4 + t, pid, 10.0 + static_cast<double>(pid * 4 + t)));
    }
  }
  const Allocation result = MultiThreadAllocator().allocate(profiles, 2);
  EXPECT_EQ(result.members(0).size(), 4u);
  EXPECT_EQ(result.members(1).size(), 4u);
}

TEST(MultiThreadAllocator, Validation) {
  std::vector<TaskProfile> profiles = {thread_profile(0, 0, 1)};
  EXPECT_THROW(MultiThreadAllocator().allocate(profiles, 2), std::invalid_argument);
}

TEST(MultiThreadAllocator, PinWeightDwarfsRealEdges) {
  // The pinning constant must exceed any realizable weighted interference
  // (occupancy <= filter entries, interference <= 1).
  EXPECT_GT(MultiThreadAllocator::kPinnedWeight, 1e6);
}

}  // namespace
}  // namespace symbiosis::sched
