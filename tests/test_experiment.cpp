#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/benchmark_model.hpp"

namespace symbiosis::core {
namespace {

MixOutcome synthetic_outcome() {
  MixOutcome o;
  o.mix = {"a", "b"};
  MappingRun r1, r2;
  r1.user_cycles = {100, 200};
  r2.user_cycles = {80, 260};
  o.mappings = {r1, r2};
  o.chosen = 1;
  return o;
}

TEST(MixOutcome, ImprovementArithmetic) {
  const MixOutcome o = synthetic_outcome();
  EXPECT_EQ(o.worst_user_cycles(0), 100u);
  EXPECT_EQ(o.best_user_cycles(0), 80u);
  // chosen = mapping 1: entity 0 got 80 vs worst 100 -> 20%.
  EXPECT_DOUBLE_EQ(o.improvement_vs_worst(0), 0.2);
  // entity 1 got 260 (the worst) -> 0%.
  EXPECT_DOUBLE_EQ(o.improvement_vs_worst(1), 0.0);
  EXPECT_DOUBLE_EQ(o.oracle_improvement(1), 60.0 / 260.0);
}

TEST(SummarizeImprovements, AggregatesAcrossMixes) {
  MixOutcome o1 = synthetic_outcome();
  MixOutcome o2 = synthetic_outcome();
  o2.mix = {"a", "c"};
  o2.mappings[1].user_cycles = {50, 260};  // a improves 50% in this mix
  const auto summary = summarize_improvements({"a", "b", "c"}, {o1, o2});
  ASSERT_EQ(summary.size(), 3u);
  EXPECT_EQ(summary[0].name, "a");
  EXPECT_EQ(summary[0].mixes, 2);
  EXPECT_DOUBLE_EQ(summary[0].max_improvement, 0.5);
  EXPECT_DOUBLE_EQ(summary[0].avg_improvement(), (0.2 + 0.5) / 2);
  EXPECT_EQ(summary[1].mixes, 1);
  EXPECT_EQ(summary[2].mixes, 1);
}

TEST(SampleMixes, CoversEveryBenchmark) {
  const auto& pool = workload::spec2006_pool();
  const auto mixes = sample_mixes(pool, 4, 3, 42);
  std::map<std::string, int> appearances;
  std::set<std::vector<std::string>> unique;
  for (const auto& mix : mixes) {
    EXPECT_EQ(mix.size(), 4u);
    EXPECT_TRUE(unique.insert(mix).second) << "duplicate mix";
    std::set<std::string> distinct(mix.begin(), mix.end());
    EXPECT_EQ(distinct.size(), 4u) << "repeated benchmark within a mix";
    for (const auto& name : mix) ++appearances[name];
  }
  for (const auto& name : pool) {
    EXPECT_GE(appearances[name], 3) << name;
  }
}

TEST(SampleMixes, DeterministicForSeed) {
  const auto& pool = workload::spec2006_pool();
  EXPECT_EQ(sample_mixes(pool, 4, 2, 7), sample_mixes(pool, 4, 2, 7));
}

TEST(SampleMixes, Validation) {
  EXPECT_THROW(sample_mixes({"a", "b"}, 4, 1, 1), std::invalid_argument);
}

TEST(RunMixExperiment, EndToEndTinyMix) {
  PipelineConfig config;
  config.machine.hierarchy.num_cores = 2;
  config.machine.hierarchy.l1 = {1024, 2, 64};
  config.machine.hierarchy.l2 = {32 * 1024, 4, 64};
  config.machine.quantum_cycles = 100'000;
  config.sync_scale();
  config.scale.length_scale = 0.03;
  config.allocator_period_cycles = 500'000;
  config.emulation_cycles = 3'000'000;
  config.measure_max_cycles = 400'000'000;

  const MixOutcome outcome =
      run_mix_experiment(config, {"mcf", "libquantum", "povray", "gobmk"});
  ASSERT_GE(outcome.mappings.size(), 3u);  // the 3 balanced mappings
  EXPECT_LT(outcome.chosen, outcome.mappings.size());
  for (const auto& run : outcome.mappings) {
    EXPECT_TRUE(run.completed);
    EXPECT_EQ(run.user_cycles.size(), 4u);
  }
  // Improvements are well-defined fractions.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(outcome.improvement_vs_worst(i), 0.0);
    EXPECT_LE(outcome.improvement_vs_worst(i), 1.0);
    EXPECT_GE(outcome.oracle_improvement(i), outcome.improvement_vs_worst(i) - 1e-12);
  }
}

TEST(RunMixExperimentMt, UsesSampledReferenceSet) {
  PipelineConfig config;
  config.machine.hierarchy.num_cores = 2;
  config.machine.hierarchy.l1 = {1024, 2, 64};
  config.machine.hierarchy.l2 = {32 * 1024, 4, 64};
  config.machine.quantum_cycles = 100'000;
  config.sync_scale();
  config.scale.length_scale = 0.02;
  config.allocator_period_cycles = 500'000;
  config.emulation_cycles = 2'000'000;
  config.measure_max_cycles = 400'000'000;

  const MixOutcome outcome =
      run_mix_experiment_mt(config, {"blackscholes", "swaptions"}, /*sampled_mappings=*/3);
  EXPECT_GE(outcome.mappings.size(), 2u);  // default + chosen at least
  EXPECT_LT(outcome.chosen, outcome.mappings.size());
  for (const auto& run : outcome.mappings) {
    ASSERT_EQ(run.names.size(), 2u);  // per process
    EXPECT_TRUE(run.completed);
  }
}

}  // namespace
}  // namespace symbiosis::core
