#include "machine/machine.hpp"

#include <gtest/gtest.h>

#include "workload/benchmark_model.hpp"

namespace symbiosis::machine {
namespace {

MachineConfig tiny_machine() {
  MachineConfig m;
  m.hierarchy.num_cores = 2;
  m.hierarchy.l1 = {1024, 2, 64};
  m.hierarchy.l2 = {16 * 1024, 4, 64};
  m.quantum_cycles = 50'000;
  return m;
}

std::unique_ptr<workload::Workload> tiny_workload(const std::string& name, std::size_t pid,
                                                  std::uint64_t refs = 20'000) {
  workload::BenchmarkSpec spec;
  spec.name = name;
  workload::PhaseSpec phase;
  phase.pattern.kind = workload::PatternKind::Zipf;
  phase.pattern.region_bytes = 8 * 1024;
  phase.compute_gap = 5.0;
  phase.refs = refs;
  spec.phases = {phase};
  spec.total_refs = refs;
  return std::make_unique<workload::Workload>(spec, address_space_base(pid), util::Rng{pid + 1});
}

TEST(Machine, RunsSingleTaskToCompletion) {
  Machine m(tiny_machine());
  const TaskId id = m.add_task(tiny_workload("solo", 0));
  EXPECT_TRUE(m.run_to_all_complete());
  const Task& t = m.task(id);
  EXPECT_EQ(t.completed_runs, 1u);
  EXPECT_GT(t.first_completion_user_cycles, 0u);
  EXPECT_GT(t.counters().instructions, 20'000u);
  // The stream restarts upon completion and the batch may run on briefly,
  // so the counter can slightly exceed one run's reference count.
  EXPECT_GE(t.counters().memory_refs, 20'000u);
  EXPECT_LT(t.counters().memory_refs, 21'000u);
}

TEST(Machine, TimeSharingAccountsUserCyclesSeparately) {
  Machine m(tiny_machine());
  const TaskId a = m.add_task(tiny_workload("a", 0), /*affinity=*/0);
  const TaskId b = m.add_task(tiny_workload("b", 1), /*affinity=*/0);
  EXPECT_TRUE(m.run_to_all_complete());
  // Both ran to completion on one core; wall clock covers both but each
  // task's user time only covers its own execution.
  EXPECT_GT(m.now(), m.task(a).first_completion_user_cycles);
  EXPECT_GT(m.task(a).first_completion_user_cycles, 0u);
  EXPECT_GT(m.task(b).first_completion_user_cycles, 0u);
  EXPECT_GT(m.stats().context_switches, 2u);
}

TEST(Machine, PinnedTasksCollectSignaturesOnTheirCore) {
  Machine m(tiny_machine());
  const TaskId a = m.add_task(tiny_workload("a", 0), 1);
  m.add_task(tiny_workload("b", 1), 1);  // share core 1 so switches happen
  EXPECT_TRUE(m.run_to_all_complete());
  const auto& sig = m.task(a).signature();
  EXPECT_GT(sig.samples(), 0u);
  EXPECT_EQ(sig.last_core(), 1u);
}

TEST(Machine, CompletionTriggersRestart) {
  Machine m(tiny_machine());
  const TaskId fast = m.add_task(tiny_workload("fast", 0, 1'000), 0);
  const TaskId slow = m.add_task(tiny_workload("slow", 1, 100'000), 1);
  EXPECT_TRUE(m.run_to_all_complete());
  // The fast task restarted many times while the slow one finished once.
  EXPECT_GT(m.task(fast).completed_runs, 1u);
  EXPECT_GE(m.task(slow).completed_runs, 1u);
}

TEST(Machine, MaxCyclesCapsRun) {
  Machine m(tiny_machine());
  m.add_task(tiny_workload("long", 0, 10'000'000));
  EXPECT_FALSE(m.run_to_all_complete(/*max_cycles=*/100'000));
  EXPECT_LE(m.now(), 300'000u);  // cap plus one batch of slack
}

TEST(Machine, RunForAdvancesClock) {
  Machine m(tiny_machine());
  m.add_task(tiny_workload("t", 0, 10'000'000));
  m.run_for(200'000);
  EXPECT_GE(m.now(), 200'000u);
}

TEST(Machine, PeriodicHookFires) {
  Machine m(tiny_machine());
  m.add_task(tiny_workload("t", 0, 10'000'000));
  int fired = 0;
  m.set_periodic_hook(100'000, [&](Machine&) { ++fired; });
  m.run_for(1'000'000);
  EXPECT_GE(fired, 9);
  EXPECT_LE(fired, 11);
  EXPECT_EQ(m.stats().hook_invocations, static_cast<std::uint64_t>(fired));
}

TEST(Machine, PageTrackingCountsFirstTouches) {
  MachineConfig cfg = tiny_machine();
  cfg.track_pages = true;
  Machine m(cfg);
  const TaskId id = m.add_task(tiny_workload("pages", 0));
  EXPECT_TRUE(m.run_to_all_complete());
  const Task& t = m.task(id);
  // 8KB region = 2 pages (+ nothing else): exactly 2 first-touch faults.
  EXPECT_EQ(t.counters().page_faults, 2u);
}

TEST(Machine, BackgroundTaskDoesNotBlockCompletion) {
  Machine m(tiny_machine());
  m.add_task(tiny_workload("fg", 0, 5'000), 0);
  const TaskId bg = m.add_task(tiny_workload("bg", 1, ~0ull >> 1), 1);
  m.task(bg).background = true;
  EXPECT_TRUE(m.run_to_all_complete());
}

TEST(Machine, AffinityChangeTakesEffect) {
  Machine m(tiny_machine());
  const TaskId id = m.add_task(tiny_workload("mover", 0, 10'000'000), 0);
  m.run_for(200'000);
  m.set_affinity(id, 1);
  m.run_for(500'000);
  EXPECT_EQ(m.task(id).signature().last_core(), 1u);
}

TEST(Machine, SwitchPollutionTouchesCaches) {
  MachineConfig cfg = tiny_machine();
  cfg.switch_pollution_lines = 64;
  Machine noisy(cfg);
  noisy.add_task(tiny_workload("a", 0), 0);
  noisy.add_task(tiny_workload("b", 1), 0);
  EXPECT_TRUE(noisy.run_to_all_complete());

  Machine clean(tiny_machine());
  clean.add_task(tiny_workload("a", 0), 0);
  clean.add_task(tiny_workload("b", 1), 0);
  EXPECT_TRUE(clean.run_to_all_complete());

  // Pollution consumes wall-clock time beyond the clean machine's.
  EXPECT_GT(noisy.now(), clean.now());
}

TEST(Machine, CountersSplitCacheLevels) {
  Machine m(tiny_machine());
  const TaskId id = m.add_task(tiny_workload("c", 0));
  EXPECT_TRUE(m.run_to_all_complete());
  const auto& counters = m.task(id).counters();
  EXPECT_GT(counters.l1_misses, 0u);
  EXPECT_EQ(counters.l2_accesses, counters.l1_misses);
  EXPECT_LE(counters.l2_misses, counters.l2_accesses);
  EXPECT_GT(counters.tlb_misses, 0u);
}

TEST(Machine, AddressSpaceBasesDisjoint) {
  EXPECT_NE(address_space_base(0), address_space_base(1));
  EXPECT_EQ(address_space_base(0) % 64, 0u);
  EXPECT_GT(address_space_base(1) - address_space_base(0), std::uint64_t{1} << 39);
}

TEST(Machine, Validation) {
  MachineConfig cfg = tiny_machine();
  cfg.quantum_cycles = 0;
  EXPECT_THROW(Machine{cfg}, std::invalid_argument);
  cfg = tiny_machine();
  cfg.batch_steps = 0;
  EXPECT_THROW(Machine{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace symbiosis::machine
