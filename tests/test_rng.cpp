#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace symbiosis::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIndependence) {
  Rng parent(7);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (c1() == c2());
  EXPECT_LT(equal, 3);
  // Splitting again with the same id reproduces the same stream.
  Rng c1b = parent.split(1);
  Rng c1a = parent.split(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c1a(), c1b());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(42);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversSmallRange) {
  Rng rng(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 300; ++i) {
    const auto v = rng.next_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BoolProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(ZipfSampler, UniformWhenSkewZero) {
  ZipfSampler z(10, 0.0);
  Rng rng(23);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[z.sample(rng)];
  for (const int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(ZipfSampler, SkewConcentratesOnHead) {
  ZipfSampler z(1000, 1.0);
  Rng rng(29);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) head += (z.sample(rng) < 10);
  // Zipf(1.0, 1000): top-10 mass = H(10)/H(1000) ≈ 0.39.
  EXPECT_GT(head, n * 0.3);
  EXPECT_LT(head, n * 0.5);
}

TEST(ZipfSampler, SamplesInSupport) {
  ZipfSampler z(7, 0.8);
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(z.sample(rng), 7u);
}

}  // namespace
}  // namespace symbiosis::util
