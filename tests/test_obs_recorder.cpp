// Flight-recorder tests: event ordering across ring wrap-around, the
// SYM_RECORD lazy-evaluation contract, and the JSONL dump format.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/recorder.hpp"

namespace symbiosis::obs {
namespace {

// The recorder under test is a process-wide singleton; every test starts
// from a clean, disabled ring and restores the default capacity on exit.
class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::global().set_enabled(false);
    FlightRecorder::global().set_capacity(FlightRecorder::kDefaultCapacity);
    FlightRecorder::global().clear();
  }
  void TearDown() override { SetUp(); }
};

TEST_F(RecorderTest, EventTypeNames) {
  EXPECT_STREQ(event_type_name(ContextSwitchEvent{}), "context_switch");
  EXPECT_STREQ(event_type_name(L2EvictionEvent{}), "l2_eviction");
  EXPECT_STREQ(event_type_name(AllocatorDecisionEvent{}), "allocator_decision");
  EXPECT_STREQ(event_type_name(VmExitEvent{}), "vm_exit");
  EXPECT_STREQ(event_type_name(PhaseEvent{}), "phase");
}

TEST_F(RecorderTest, SnapshotIsOldestFirstBeforeWrap) {
  auto& rec = FlightRecorder::global();
  for (std::uint64_t t = 0; t < 5; ++t) rec.record(PhaseEvent{t, "p" + std::to_string(t)});
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(events[i].seq, i);
    EXPECT_EQ(std::get<PhaseEvent>(events[i].event).time, i);
  }
  EXPECT_EQ(rec.recorded_total(), 5u);
  EXPECT_EQ(rec.dropped_total(), 0u);
}

TEST_F(RecorderTest, RingWrapKeepsNewestAndCountsDrops) {
  auto& rec = FlightRecorder::global();
  rec.set_capacity(4);
  for (std::uint64_t t = 0; t < 10; ++t) rec.record(PhaseEvent{t, "p"});
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Only the last 4 survive, still oldest-first with monotone seq.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].seq, 6 + i);
    EXPECT_EQ(std::get<PhaseEvent>(events[i].event).time, 6 + i);
  }
  EXPECT_EQ(rec.recorded_total(), 10u);
  EXPECT_EQ(rec.dropped_total(), 6u);
}

TEST_F(RecorderTest, ClearDropsEventsButKeepsEnabledFlag) {
  auto& rec = FlightRecorder::global();
  rec.set_enabled(true);
  rec.record(PhaseEvent{1, "p"});
  rec.clear();
  EXPECT_TRUE(rec.enabled());
  EXPECT_TRUE(rec.snapshot().empty());
  EXPECT_EQ(rec.recorded_total(), 0u);
  EXPECT_EQ(rec.dropped_total(), 0u);
}

TEST_F(RecorderTest, SymRecordSkipsArgumentEvaluationWhenDisabled) {
  int evaluations = 0;
  [[maybe_unused]] auto make_event = [&evaluations] {
    ++evaluations;
    return PhaseEvent{0, "expensive"};
  };
  SYM_RECORD(make_event());
  EXPECT_EQ(evaluations, 0) << "disabled recorder must not evaluate the event expression";
  EXPECT_EQ(FlightRecorder::global().recorded_total(), 0u);

  ScopedRecorder on;
  SYM_RECORD(make_event());
#if SYMBIOSIS_RECORDER_COMPILED
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(FlightRecorder::global().recorded_total(), 1u);
#else
  EXPECT_EQ(evaluations, 0);
#endif
}

TEST_F(RecorderTest, ScopedRecorderRestoresPreviousState) {
  auto& rec = FlightRecorder::global();
  EXPECT_FALSE(rec.enabled());
  {
    ScopedRecorder on;
    EXPECT_TRUE(rec.enabled());
    {
      ScopedRecorder off(false);
      EXPECT_FALSE(rec.enabled());
    }
    EXPECT_TRUE(rec.enabled());
  }
  EXPECT_FALSE(rec.enabled());
}

TEST_F(RecorderTest, WriteJsonlEmitsOneParsableObjectPerEvent) {
  auto& rec = FlightRecorder::global();
  rec.record(ContextSwitchEvent{100, 1, 3, 42});
  rec.record(L2EvictionEvent{0xdeadbeef, 7, 2, 1});
  rec.record(AllocatorDecisionEvent{200, "weighted-graph", "0,1|2,3", 4, 1.5, 2.5,
                                    {0.1, 0.2, 0.3, 0.4, 0.5, 0.6}});
  rec.record(VmExitEvent{300, 2, "mcf", "completed", 12345});
  rec.record(PhaseEvent{400, "phase1.vote"});

  std::ostringstream os;
  rec.write_jsonl(os);
  std::istringstream lines(os.str());
  std::string line;
  std::vector<Json> parsed;
  while (std::getline(lines, line)) parsed.push_back(Json::parse(line));
  ASSERT_EQ(parsed.size(), 5u);

  EXPECT_EQ(parsed[0].at("type").as_string(), "context_switch");
  EXPECT_EQ(parsed[0].at("seq").as_u64(), 0u);
  EXPECT_EQ(parsed[0].at("time").as_u64(), 100u);
  EXPECT_EQ(parsed[0].at("pid").as_u64(), 42u);

  EXPECT_EQ(parsed[1].at("type").as_string(), "l2_eviction");
  EXPECT_EQ(parsed[1].at("victim_line").as_u64(), 0xdeadbeefu);
  EXPECT_EQ(parsed[1].at("set").as_u64(), 7u);
  EXPECT_EQ(parsed[1].at("requestor").as_u64(), 1u);

  EXPECT_EQ(parsed[2].at("type").as_string(), "allocator_decision");
  EXPECT_EQ(parsed[2].at("allocator").as_string(), "weighted-graph");
  EXPECT_EQ(parsed[2].at("chosen_key").as_string(), "0,1|2,3");
  EXPECT_EQ(parsed[2].at("edge_weights").size(), 6u);
  EXPECT_DOUBLE_EQ(parsed[2].at("edge_weights").as_array()[2].as_double(), 0.3);

  EXPECT_EQ(parsed[3].at("type").as_string(), "vm_exit");
  EXPECT_EQ(parsed[3].at("reason").as_string(), "completed");
  EXPECT_EQ(parsed[3].at("user_cycles").as_u64(), 12345u);

  EXPECT_EQ(parsed[4].at("type").as_string(), "phase");
  EXPECT_EQ(parsed[4].at("phase").as_string(), "phase1.vote");
  EXPECT_EQ(parsed[4].at("seq").as_u64(), 4u);
}

}  // namespace
}  // namespace symbiosis::obs
