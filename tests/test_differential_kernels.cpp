// Differential suite: the optimised hot-path kernels (cached-geometry cache
// access, precomputed-index Bloom updates, single-index filter events,
// word-parallel bit-vector metrics, batched hierarchy replay) are checked
// against the deliberately naive models in tests/reference/ on tens of
// thousands of randomised accesses. Any divergence — a result field, a
// counter, a stats entry — is a bug in one of the two implementations.
//
// The suite runs under the plain, asan-ubsan and tsan presets (it is part of
// symbiosis_tests), so the optimised kernels also get sanitizer coverage on
// exactly the adversarial inputs that exercise their fast paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "cachesim/cache.hpp"
#include "cachesim/hierarchy.hpp"
#include "reference/reference_kernels.hpp"
#include "sig/bitvector.hpp"
#include "sig/counting_bloom.hpp"
#include "sig/filter_unit.hpp"
#include "util/rng.hpp"

namespace symbiosis {
namespace {

constexpr std::size_t kAccessesPerKernel = 10000;

void expect_stats_eq(const cachesim::CacheStats& got, const cachesim::CacheStats& want,
                     const char* label) {
  EXPECT_EQ(got.accesses, want.accesses) << label;
  EXPECT_EQ(got.hits, want.hits) << label;
  EXPECT_EQ(got.misses, want.misses) << label;
  EXPECT_EQ(got.evictions, want.evictions) << label;
  EXPECT_EQ(got.writebacks, want.writebacks) << label;
}

// ---------------------------------------------------------------------------
// Cache access vs ReferenceCache (LRU and FIFO).
// ---------------------------------------------------------------------------

void run_cache_differential(cachesim::ReplacementKind replacement, std::uint64_t seed) {
  // 16 sets x 4 ways over a 128-line address space: heavy conflict pressure
  // so evictions, dirty writebacks and way-reuse all happen constantly.
  const cachesim::CacheGeometry geom{4096, 4, 64};
  const std::size_t requestors = 3;
  cachesim::Cache opt(geom, replacement, requestors);
  testref::ReferenceCache ref(geom, replacement, requestors);

  util::Rng rng(seed);
  for (std::size_t i = 0; i < kAccessesPerKernel; ++i) {
    const cachesim::LineAddr line = rng.next_below(128);
    const bool is_write = rng.next_bool(0.3);
    const auto requestor = static_cast<std::size_t>(rng.next_below(requestors));

    const cachesim::AccessResult got = opt.access(line, is_write, requestor);
    const cachesim::AccessResult want = ref.access(line, is_write, requestor);
    ASSERT_EQ(got.hit, want.hit) << "access " << i;
    ASSERT_EQ(got.set, want.set) << "access " << i;
    ASSERT_EQ(got.way, want.way) << "access " << i;
    ASSERT_EQ(got.evicted, want.evicted) << "access " << i;
    ASSERT_EQ(got.victim_line, want.victim_line) << "access " << i;
    ASSERT_EQ(got.victim_dirty, want.victim_dirty) << "access " << i;
  }

  expect_stats_eq(opt.stats(), ref.stats(), "total");
  for (std::size_t r = 0; r < requestors; ++r) {
    expect_stats_eq(opt.stats_for(r), ref.stats_for(r), "per-requestor");
    EXPECT_EQ(opt.occupancy(r), ref.occupancy(r));
  }
  EXPECT_EQ(opt.occupancy(), ref.occupancy(cachesim::Cache::kAnyRequestor));
}

TEST(DifferentialCache, LruMatchesReference) {
  run_cache_differential(cachesim::ReplacementKind::Lru, 11);
}

TEST(DifferentialCache, FifoMatchesReference) {
  run_cache_differential(cachesim::ReplacementKind::Fifo, 12);
}

TEST(DifferentialCache, LruWideGeometryMatchesReference) {
  // A second geometry (64 sets x 16 ways) so the cached set_mask_/set_bits_
  // fast path is exercised at a different width than the tiny case.
  const cachesim::CacheGeometry geom{64 * 16 * 64, 16, 64};
  cachesim::Cache opt(geom, cachesim::ReplacementKind::Lru, 2);
  testref::ReferenceCache ref(geom, cachesim::ReplacementKind::Lru, 2);
  util::Rng rng(13);
  for (std::size_t i = 0; i < kAccessesPerKernel; ++i) {
    // Sparse high-bit addresses: tags far wider than the set index.
    const cachesim::LineAddr line = rng() >> rng.next_below(40);
    const bool is_write = rng.next_bool(0.5);
    const auto requestor = static_cast<std::size_t>(rng.next_below(2));
    const cachesim::AccessResult got = opt.access(line, is_write, requestor);
    const cachesim::AccessResult want = ref.access(line, is_write, requestor);
    ASSERT_EQ(got.hit, want.hit) << "access " << i;
    ASSERT_EQ(got.way, want.way) << "access " << i;
    ASSERT_EQ(got.victim_line, want.victim_line) << "access " << i;
  }
  expect_stats_eq(opt.stats(), ref.stats(), "total");
}

// ---------------------------------------------------------------------------
// CountingBloomFilter vs ReferenceCbf.
// ---------------------------------------------------------------------------

void run_cbf_differential(unsigned k, sig::HashKind kind, std::size_t entries,
                          unsigned counter_bits, std::uint64_t seed) {
  sig::CountingBloomFilter opt(entries, counter_bits, k, kind);
  testref::ReferenceCbf ref(entries, counter_bits, k, kind);

  util::Rng rng(seed);
  std::vector<sig::LineAddr> live;
  for (std::size_t i = 0; i < kAccessesPerKernel; ++i) {
    // Narrow key space (2048 lines) so counters collide and saturate.
    const sig::LineAddr fresh = rng.next_below(2048);

    // The precomputed-index path must agree with the naive per-hash set.
    const sig::BloomIndices indices = opt.indices_of(fresh);
    std::set<std::size_t> got_set(indices.idx, indices.idx + indices.count);
    ASSERT_EQ(got_set.size(), indices.count) << "duplicate index survived dedup";
    ASSERT_EQ(got_set, ref.indices_of(fresh)) << "op " << i;

    if (live.size() < 64 || rng.next_bool(0.55)) {
      opt.insert(fresh);
      ref.insert(fresh);
      live.push_back(fresh);
    } else if (rng.next_bool(0.9)) {
      const std::size_t victim = rng.next_below(live.size());
      opt.remove(live[victim]);
      ref.remove(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    } else {
      opt.remove(fresh);  // remove-without-insert: both sides must agree
      ref.remove(fresh);
    }

    const sig::LineAddr probe = rng.next_below(4096);
    ASSERT_EQ(opt.maybe_contains(probe), ref.maybe_contains(probe)) << "op " << i;

    if (i % 1000 == 0) {
      ASSERT_EQ(opt.nonzero_count(), ref.nonzero_count()) << "op " << i;
      ASSERT_EQ(opt.saturated_count(), ref.saturated_count()) << "op " << i;
      opt.validate();
    }
  }
  for (std::size_t e = 0; e < entries; ++e) {
    ASSERT_EQ(opt.counter_at(e), ref.counter_at(e)) << "counter " << e;
  }
}

TEST(DifferentialCbf, SingleHashXor) { run_cbf_differential(1, sig::HashKind::Xor, 512, 3, 21); }

TEST(DifferentialCbf, MultiHashXor) { run_cbf_differential(4, sig::HashKind::Xor, 512, 3, 22); }

TEST(DifferentialCbf, ModuloNonPowerOfTwo) {
  run_cbf_differential(2, sig::HashKind::Modulo, 509, 3, 23);  // prime entry count
}

TEST(DifferentialCbf, MultiplyNarrowCounters) {
  run_cbf_differential(2, sig::HashKind::Multiply, 256, 1, 24);  // 1-bit: saturates instantly
}

TEST(DifferentialCbf, FourBitSaturationSmallFilter) {
  // 4-bit packed counters crammed into 64 entries: many counters pin at 15
  // and the stuck-at-max remove path runs constantly.
  run_cbf_differential(1, sig::HashKind::Xor, 64, 4, 25);
}

TEST(DifferentialCbf, FourBitOddEntryCount) {
  // Odd entry count: the packed nibble array carries a padding nibble that
  // every operation must leave at zero (validate() checks it).
  run_cbf_differential(2, sig::HashKind::Modulo, 257, 4, 26);
}

// ---------------------------------------------------------------------------
// FilterUnit vs ReferenceFilterUnit, driven by matched fill/evict pairs.
// ---------------------------------------------------------------------------

void run_filter_differential(const sig::FilterUnitConfig& config, std::uint64_t seed) {
  sig::FilterUnit opt(config);
  testref::ReferenceFilterUnit ref(config);

  // A shadow tag array generates realistic event streams: filling an
  // occupied (set, way) evicts its previous line first, as the L2 would.
  struct Slot {
    sig::LineAddr line = 0;
    bool valid = false;
  };
  std::vector<Slot> slots(config.cache_sets * config.cache_ways);

  util::Rng rng(seed);
  for (std::size_t i = 0; i < kAccessesPerKernel; ++i) {
    const auto set = static_cast<std::size_t>(rng.next_below(config.cache_sets));
    const auto way = static_cast<std::size_t>(rng.next_below(config.cache_ways));
    const auto core = static_cast<std::size_t>(rng.next_below(config.num_cores));
    Slot& slot = slots[set * config.cache_ways + way];
    if (slot.valid) {
      opt.on_evict(slot.line, set, way);
      ref.on_evict(slot.line, set, way);
    }
    slot.line = rng.next_below(1 << 18);
    slot.valid = true;
    opt.on_fill(slot.line, core, set, way);
    ref.on_fill(slot.line, core, set, way);

    if (rng.next_bool(0.01)) {
      const auto snap = static_cast<std::size_t>(rng.next_below(config.num_cores));
      opt.snapshot(snap);
      ref.snapshot(snap);
    }

    if (i % 1000 == 0) {
      for (std::size_t c = 0; c < config.num_cores; ++c) {
        ASSERT_EQ(opt.core_filter_weight(c), ref.cf(c).size()) << "event " << i;
        const sig::BitVector rbv = opt.compute_rbv(c);
        ASSERT_EQ(rbv.popcount(), ref.rbv(c).size()) << "event " << i;
        for (std::size_t o = 0; o < config.num_cores; ++o) {
          ASSERT_EQ(opt.symbiosis(rbv, o),
                    testref::ReferenceFilterUnit::sym_diff(ref.rbv(c), ref.cf(o)))
              << "event " << i;
        }
        ASSERT_EQ(opt.self_symbiosis(rbv, c),
                  testref::ReferenceFilterUnit::sym_diff(ref.rbv(c), ref.lf(c)))
            << "event " << i;
        // The batched one-pass evaluation must agree with the per-core calls.
        const std::vector<std::size_t> batched = opt.symbiosis_all(rbv, c);
        ASSERT_EQ(batched.size(), config.num_cores);
        for (std::size_t o = 0; o < config.num_cores; ++o) {
          ASSERT_EQ(batched[o],
                    o == c ? opt.self_symbiosis(rbv, c) : opt.symbiosis(rbv, o))
              << "event " << i << " core " << o;
        }
      }
      opt.validate();
    }
  }

  for (std::size_t e = 0; e < opt.entries(); ++e) {
    ASSERT_EQ(opt.counter_at(e), ref.counter_at(e)) << "counter " << e;
  }
  for (std::size_t c = 0; c < config.num_cores; ++c) {
    for (std::size_t e = 0; e < opt.entries(); ++e) {
      ASSERT_EQ(opt.core_filter(c).test(e), ref.cf(c).count(e) != 0)
          << "core " << c << " CF bit " << e;
      ASSERT_EQ(opt.last_filter(c).test(e), ref.lf(c).count(e) != 0)
          << "core " << c << " LF bit " << e;
    }
  }
}

TEST(DifferentialFilterUnit, SingleHash) {
  sig::FilterUnitConfig config;
  config.num_cores = 2;
  config.cache_sets = 64;
  config.cache_ways = 4;
  config.counter_bits = 3;
  config.hash_functions = 1;  // the paper's configuration → single_index_ fast path
  run_filter_differential(config, 31);
}

TEST(DifferentialFilterUnit, MultiHash) {
  sig::FilterUnitConfig config;
  config.num_cores = 4;
  config.cache_sets = 64;
  config.cache_ways = 4;
  config.counter_bits = 3;
  config.hash_functions = 3;  // generic dedup path
  run_filter_differential(config, 32);
}

TEST(DifferentialFilterUnit, SampledSets) {
  sig::FilterUnitConfig config;
  config.num_cores = 2;
  config.cache_sets = 64;
  config.cache_ways = 4;
  config.counter_bits = 3;
  config.hash_functions = 1;
  config.sample_shift = 2;  // the paper's 25% set sampling
  run_filter_differential(config, 33);
}

TEST(DifferentialFilterUnit, PresenceMode) {
  sig::FilterUnitConfig config;
  config.num_cores = 2;
  config.cache_sets = 32;
  config.cache_ways = 4;
  config.counter_bits = 3;
  config.hash = sig::HashKind::Presence;
  run_filter_differential(config, 34);
}

// ---------------------------------------------------------------------------
// Word-parallel BitVector metrics vs per-bit scans.
// ---------------------------------------------------------------------------

TEST(DifferentialBitVector, PopcountsMatchPerBitScan) {
  util::Rng rng(41);
  for (const std::size_t bits : {1ul, 63ul, 64ul, 65ul, 100ul, 1000ul, 4095ul}) {
    sig::BitVector a(bits);
    sig::BitVector b(bits);
    for (int round = 0; round < 20; ++round) {
      for (std::size_t flips = 0; flips < bits / 2 + 1; ++flips) {
        const auto i = static_cast<std::size_t>(rng.next_below(bits));
        if (rng.next_bool(0.7)) {
          a.set(i);
        } else {
          a.clear(i);
        }
        const auto j = static_cast<std::size_t>(rng.next_below(bits));
        if (rng.next_bool(0.5)) {
          b.set(j);
        } else {
          b.clear(j);
        }
      }
      ASSERT_EQ(a.popcount(), testref::naive_popcount(a)) << bits;
      ASSERT_EQ(a.xor_popcount(b), testref::naive_xor_popcount(a, b)) << bits;
      ASSERT_EQ(a.and_popcount(b), testref::naive_and_popcount(a, b)) << bits;

      sig::BitVector rbv(bits);
      rbv.assign_and_not(a, b);
      std::size_t naive_and_not = 0;
      for (std::size_t i = 0; i < bits; ++i) naive_and_not += a.test(i) && !b.test(i);
      ASSERT_EQ(rbv.popcount(), naive_and_not) << bits;
    }
  }
}

TEST(DifferentialBitVector, ZeroWidthVectorsAreWellDefined) {
  sig::BitVector a(0);
  sig::BitVector b(0);
  EXPECT_EQ(a.popcount(), 0u);
  EXPECT_EQ(a.xor_popcount(b), 0u);
  EXPECT_EQ(a.and_popcount(b), 0u);
  sig::BitVector rbv(0);
  rbv.assign_and_not(a, b);
  EXPECT_EQ(rbv.popcount(), 0u);
  EXPECT_EQ(a.fill_ratio(), 0.0);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Hierarchy::access_batch vs serial access(): bit-identical replay.
// ---------------------------------------------------------------------------

cachesim::HierarchyConfig tiny_hierarchy() {
  cachesim::HierarchyConfig config;
  config.num_cores = 2;
  config.l1 = {1024, 2, 64};
  config.l2 = {8 * 1024, 4, 64};
  return config;
}

void run_batch_differential(std::size_t chunk, std::uint64_t seed) {
  const cachesim::HierarchyConfig config = tiny_hierarchy();
  cachesim::Hierarchy serial(config);
  cachesim::Hierarchy batched(config);

  util::Rng rng(seed);
  std::vector<cachesim::MemRef> refs(chunk);
  std::vector<cachesim::MemAccessResult> got(chunk);
  std::size_t total = 0;
  cachesim::Addr cursor = 0;

  while (total < kAccessesPerKernel) {
    const auto core = static_cast<std::size_t>(rng.next_below(config.num_cores));
    for (std::size_t i = 0; i < chunk; ++i) {
      // Mix sequential runs (stream-prefetch detection) with random jumps.
      if (rng.next_bool(0.6)) {
        cursor += 64;
      } else {
        cursor = rng.next_below(1 << 22);
      }
      refs[i] = {cursor, rng.next_bool(0.3)};
    }

    cachesim::BatchSummary want{};
    std::vector<cachesim::MemAccessResult> expected(chunk);
    for (std::size_t i = 0; i < chunk; ++i) {
      expected[i] = serial.access(core, refs[i].addr, refs[i].is_write);
      ++want.accesses;
      want.cycles += expected[i].cycles;
      want.l1_hits += expected[i].l1_hit;
      want.l2_hits += expected[i].l2_hit;
      want.tlb_hits += expected[i].tlb_hit;
      want.stream_prefetched += expected[i].stream_prefetched;
    }

    const cachesim::BatchSummary summary = batched.access_batch(core, refs.data(), chunk,
                                                                got.data());
    ASSERT_EQ(summary, want) << "chunk at access " << total;
    for (std::size_t i = 0; i < chunk; ++i) {
      ASSERT_EQ(got[i], expected[i]) << "access " << total + i;
    }

    // Occasional context switches so TLB flushes and LF snapshots are part
    // of the interleaving on both sides.
    if (rng.next_bool(0.05)) {
      serial.on_context_switch_in(core);
      batched.on_context_switch_in(core);
    }
    total += chunk;
  }

  for (std::size_t c = 0; c < config.num_cores; ++c) {
    expect_stats_eq(batched.l1(c).stats(), serial.l1(c).stats(), "l1");
    EXPECT_EQ(batched.tlb(c).hits(), serial.tlb(c).hits());
    EXPECT_EQ(batched.tlb(c).misses(), serial.tlb(c).misses());
    EXPECT_EQ(batched.l2_footprint(c), serial.l2_footprint(c));
  }
  expect_stats_eq(batched.l2().stats(), serial.l2().stats(), "l2");
  ASSERT_NE(batched.filter(), nullptr);
  for (std::size_t c = 0; c < config.num_cores; ++c) {
    EXPECT_EQ(batched.filter()->core_filter(c), serial.filter()->core_filter(c));
    EXPECT_EQ(batched.filter()->last_filter(c), serial.filter()->last_filter(c));
  }
}

TEST(DifferentialHierarchyBatch, ChunkOf1) { run_batch_differential(1, 51); }
TEST(DifferentialHierarchyBatch, ChunkOf7) { run_batch_differential(7, 52); }
TEST(DifferentialHierarchyBatch, ChunkOf64) { run_batch_differential(64, 53); }
TEST(DifferentialHierarchyBatch, ChunkOf1000) { run_batch_differential(1000, 54); }

TEST(DifferentialHierarchyBatch, NullResultsPointerAndEmptyBatch) {
  const cachesim::HierarchyConfig config = tiny_hierarchy();
  cachesim::Hierarchy h(config);
  const cachesim::BatchSummary empty = h.access_batch(0, nullptr, 0);
  EXPECT_EQ(empty, cachesim::BatchSummary{});

  std::vector<cachesim::MemRef> refs;
  util::Rng rng(55);
  for (int i = 0; i < 256; ++i) {
    refs.push_back({rng.next_below(1 << 20), rng.next_bool(0.5)});
  }
  const cachesim::BatchSummary summary = h.access_batch(1, refs.data(), refs.size());
  EXPECT_EQ(summary.accesses, refs.size());
  EXPECT_GT(summary.cycles, 0u);
}

}  // namespace
}  // namespace symbiosis
