#include "sched/allocation.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace symbiosis::sched {
namespace {

TEST(Allocation, MembersAndDescribe) {
  Allocation a;
  a.groups = 2;
  a.group_of = {0, 1, 0, 1};
  EXPECT_EQ(a.members(0), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(a.members(1), (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(a.describe({"A", "B", "C", "D"}), "{A,C | B,D}");
}

TEST(Allocation, CanonicalRelabelsByFirstAppearance) {
  Allocation a;
  a.groups = 2;
  a.group_of = {1, 0, 1, 0};
  const Allocation canon = a.canonical();
  EXPECT_EQ(canon.group_of, (std::vector<std::size_t>{0, 1, 0, 1}));
  EXPECT_EQ(a.key(), "0,1,0,1");
}

TEST(Allocation, EqualityUpToRelabeling) {
  Allocation a, b, c;
  a.groups = b.groups = c.groups = 2;
  a.group_of = {0, 0, 1, 1};
  b.group_of = {1, 1, 0, 0};  // same schedule, swapped labels
  c.group_of = {0, 1, 0, 1};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(BalancedGroupSizes, SplitsEvenlyWithRemainderFirst) {
  EXPECT_EQ(balanced_group_sizes(4, 2), (std::vector<std::size_t>{2, 2}));
  EXPECT_EQ(balanced_group_sizes(5, 2), (std::vector<std::size_t>{3, 2}));
  EXPECT_EQ(balanced_group_sizes(7, 3), (std::vector<std::size_t>{3, 2, 2}));
  EXPECT_THROW(balanced_group_sizes(1, 2), std::invalid_argument);
  EXPECT_THROW(balanced_group_sizes(4, 0), std::invalid_argument);
}

TEST(Enumerate, FourTasksTwoGroupsIsThreeMappings) {
  // The paper's Table 1: "There are only three possible mappings for 4
  // processes running on a dual-core."
  const auto all = enumerate_balanced_allocations(4, 2);
  EXPECT_EQ(all.size(), 3u);
  std::set<std::string> keys;
  for (const auto& a : all) keys.insert(a.key());
  EXPECT_EQ(keys.size(), 3u);
  EXPECT_TRUE(keys.count("0,0,1,1"));
  EXPECT_TRUE(keys.count("0,1,0,1"));
  EXPECT_TRUE(keys.count("0,1,1,0"));
}

TEST(Enumerate, KnownCounts) {
  // C(6,3)/2 = 10 ways to halve six tasks.
  EXPECT_EQ(enumerate_balanced_allocations(6, 2).size(), 10u);
  // 5 into 3+2: C(5,3) = 10 (unequal halves are distinguishable).
  EXPECT_EQ(enumerate_balanced_allocations(5, 2).size(), 10u);
  // 4 into 4 singleton groups: 1 schedule.
  EXPECT_EQ(enumerate_balanced_allocations(4, 4).size(), 1u);
  // 4 into 2+1+1: C(4,2) = 6 (the two singleton groups are interchangeable).
  EXPECT_EQ(enumerate_balanced_allocations(4, 3).size(), 6u);
  // 8 into 2x4: C(8,4)/2 = 35.
  EXPECT_EQ(enumerate_balanced_allocations(8, 2).size(), 35u);
}

TEST(Enumerate, AllResultsAreBalancedAndDistinct) {
  const auto all = enumerate_balanced_allocations(6, 3);
  std::set<std::string> keys;
  for (const auto& a : all) {
    EXPECT_TRUE(keys.insert(a.key()).second) << "duplicate " << a.key();
    for (std::size_t g = 0; g < 3; ++g) EXPECT_EQ(a.members(g).size(), 2u);
  }
  // 6!/(2!2!2!)/3! = 15.
  EXPECT_EQ(all.size(), 15u);
}

TEST(Enumerate, GuardsAgainstExplosion) {
  EXPECT_THROW(enumerate_balanced_allocations(30, 2), std::invalid_argument);
  EXPECT_THROW(enumerate_balanced_allocations(2, 3), std::invalid_argument);
}

}  // namespace
}  // namespace symbiosis::sched
