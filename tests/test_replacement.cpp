#include "cachesim/replacement.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <stdexcept>

#include "util/rng.hpp"

namespace symbiosis::cachesim {
namespace {

TEST(Replacement, LruMatchesReferenceModel) {
  const std::size_t ways = 8;
  auto policy = make_replacement(ReplacementKind::Lru, 1, ways);
  std::deque<std::size_t> stack;  // front = LRU
  for (std::size_t w = 0; w < ways; ++w) {
    policy->on_fill(0, w);
    stack.push_back(w);
  }
  util::Rng rng(1);
  for (int step = 0; step < 2000; ++step) {
    if (rng.next_bool(0.7)) {
      const std::size_t w = rng.next_below(ways);
      policy->on_touch(0, w);
      std::erase(stack, w);
      stack.push_back(w);
    } else {
      const std::size_t victim = policy->victim(0);
      EXPECT_EQ(victim, stack.front());
      policy->on_fill(0, victim);
      stack.pop_front();
      stack.push_back(victim);
    }
  }
}

TEST(Replacement, FifoIgnoresTouches) {
  auto policy = make_replacement(ReplacementKind::Fifo, 1, 4);
  for (std::size_t w = 0; w < 4; ++w) policy->on_fill(0, w);
  policy->on_touch(0, 0);  // must not refresh
  EXPECT_EQ(policy->victim(0), 0u);
  policy->on_fill(0, 0);
  EXPECT_EQ(policy->victim(0), 1u);
}

TEST(Replacement, TreePlruNeverVictimizesJustTouched) {
  const std::size_t ways = 8;
  auto policy = make_replacement(ReplacementKind::TreePlru, 2, ways);
  util::Rng rng(2);
  for (std::size_t w = 0; w < ways; ++w) policy->on_fill(1, w);
  for (int step = 0; step < 500; ++step) {
    const std::size_t touched = rng.next_below(ways);
    policy->on_touch(1, touched);
    EXPECT_NE(policy->victim(1), touched);
  }
}

TEST(Replacement, TreePlruRequiresPow2Ways) {
  EXPECT_THROW(make_replacement(ReplacementKind::TreePlru, 1, 6), std::invalid_argument);
  EXPECT_NO_THROW(make_replacement(ReplacementKind::TreePlru, 1, 16));
}

TEST(Replacement, SetsAreIndependent) {
  auto policy = make_replacement(ReplacementKind::Lru, 2, 2);
  policy->on_fill(0, 0);
  policy->on_fill(0, 1);
  policy->on_fill(1, 0);
  policy->on_fill(1, 1);
  policy->on_touch(0, 0);  // set 0: victim should now be way 1
  EXPECT_EQ(policy->victim(0), 1u);
  EXPECT_EQ(policy->victim(1), 0u);  // set 1 unaffected
}

TEST(Replacement, RandomIsBoundedAndSeeded) {
  auto a = make_replacement(ReplacementKind::Random, 1, 4, 7);
  auto b = make_replacement(ReplacementKind::Random, 1, 4, 7);
  for (int i = 0; i < 100; ++i) {
    const auto va = a->victim(0);
    EXPECT_LT(va, 4u);
    EXPECT_EQ(va, b->victim(0));  // same seed, same stream
  }
}

TEST(Replacement, ResetRestartsState) {
  auto policy = make_replacement(ReplacementKind::Lru, 1, 4);
  for (std::size_t w = 0; w < 4; ++w) policy->on_fill(0, w);
  policy->on_touch(0, 0);
  policy->reset();
  // After reset everything is equally old; victim is the lowest way.
  EXPECT_EQ(policy->victim(0), 0u);
}

TEST(Replacement, NameRoundTrip) {
  for (const auto kind : {ReplacementKind::Lru, ReplacementKind::Fifo, ReplacementKind::Random,
                          ReplacementKind::TreePlru}) {
    EXPECT_EQ(parse_replacement(to_string(kind)), kind);
  }
  EXPECT_THROW((void)parse_replacement("mru"), std::invalid_argument);
}

}  // namespace
}  // namespace symbiosis::cachesim
