#include "cachesim/replacement.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <stdexcept>

#include "util/rng.hpp"

namespace symbiosis::cachesim {
namespace {

TEST(Replacement, LruMatchesReferenceModel) {
  const std::size_t ways = 8;
  auto policy = make_replacement(ReplacementKind::Lru, 1, ways);
  std::deque<std::size_t> stack;  // front = LRU
  for (std::size_t w = 0; w < ways; ++w) {
    policy->on_fill(0, w);
    stack.push_back(w);
  }
  util::Rng rng(1);
  for (int step = 0; step < 2000; ++step) {
    if (rng.next_bool(0.7)) {
      const std::size_t w = rng.next_below(ways);
      policy->on_touch(0, w);
      std::erase(stack, w);
      stack.push_back(w);
    } else {
      const std::size_t victim = policy->victim(0);
      EXPECT_EQ(victim, stack.front());
      policy->on_fill(0, victim);
      stack.pop_front();
      stack.push_back(victim);
    }
  }
}

TEST(Replacement, FifoIgnoresTouches) {
  auto policy = make_replacement(ReplacementKind::Fifo, 1, 4);
  for (std::size_t w = 0; w < 4; ++w) policy->on_fill(0, w);
  policy->on_touch(0, 0);  // must not refresh
  EXPECT_EQ(policy->victim(0), 0u);
  policy->on_fill(0, 0);
  EXPECT_EQ(policy->victim(0), 1u);
}

TEST(Replacement, TreePlruNeverVictimizesJustTouched) {
  const std::size_t ways = 8;
  auto policy = make_replacement(ReplacementKind::TreePlru, 2, ways);
  util::Rng rng(2);
  for (std::size_t w = 0; w < ways; ++w) policy->on_fill(1, w);
  for (int step = 0; step < 500; ++step) {
    const std::size_t touched = rng.next_below(ways);
    policy->on_touch(1, touched);
    EXPECT_NE(policy->victim(1), touched);
  }
}

TEST(Replacement, TreePlruRequiresPow2Ways) {
  EXPECT_THROW(make_replacement(ReplacementKind::TreePlru, 1, 6), std::invalid_argument);
  EXPECT_NO_THROW(make_replacement(ReplacementKind::TreePlru, 1, 16));
}

TEST(Replacement, SetsAreIndependent) {
  auto policy = make_replacement(ReplacementKind::Lru, 2, 2);
  policy->on_fill(0, 0);
  policy->on_fill(0, 1);
  policy->on_fill(1, 0);
  policy->on_fill(1, 1);
  policy->on_touch(0, 0);  // set 0: victim should now be way 1
  EXPECT_EQ(policy->victim(0), 1u);
  EXPECT_EQ(policy->victim(1), 0u);  // set 1 unaffected
}

TEST(Replacement, RandomIsBoundedAndSeeded) {
  auto a = make_replacement(ReplacementKind::Random, 1, 4, 7);
  auto b = make_replacement(ReplacementKind::Random, 1, 4, 7);
  for (int i = 0; i < 100; ++i) {
    const auto va = a->victim(0);
    EXPECT_LT(va, 4u);
    EXPECT_EQ(va, b->victim(0));  // same seed, same stream
  }
}

TEST(Replacement, ResetRestartsState) {
  auto policy = make_replacement(ReplacementKind::Lru, 1, 4);
  for (std::size_t w = 0; w < 4; ++w) policy->on_fill(0, w);
  policy->on_touch(0, 0);
  policy->reset();
  // After reset everything is equally old; victim is the lowest way.
  EXPECT_EQ(policy->victim(0), 0u);
}

TEST(Replacement, NameRoundTrip) {
  for (const auto kind : {ReplacementKind::Lru, ReplacementKind::Fifo, ReplacementKind::Random,
                          ReplacementKind::TreePlru, ReplacementKind::Srrip}) {
    EXPECT_EQ(parse_replacement(to_string(kind)), kind);
  }
  EXPECT_THROW((void)parse_replacement("mru"), std::invalid_argument);
}

TEST(Replacement, SrripInsertsDistantAndPromotesOnHit) {
  // 4 ways, SRRIP-HP: fills land at RRPV kMax-1, so with no hits the victim
  // rotation is way 0, 1, 2, 3 (aging makes all distant, lowest way wins).
  auto policy = make_replacement(ReplacementKind::Srrip, 1, 4);
  for (std::size_t w = 0; w < 4; ++w) policy->on_fill(0, w);
  EXPECT_EQ(policy->victim(0), 0u);
  policy->on_fill(0, 0);
  EXPECT_EQ(policy->victim(0), 1u);
  policy->on_fill(0, 1);
  // A hit resets way 2 to RRPV 0: it now outlives ways 3 (still aged to max
  // from the earlier scans) and the fresh fills.
  policy->on_touch(0, 2);
  EXPECT_EQ(policy->victim(0), 3u);
  policy->on_fill(0, 3);
  EXPECT_NE(policy->victim(0), 2u) << "the recently hit way must not be the next victim";
}

TEST(Replacement, SrripVictimAgesUntilOneIsDistant) {
  auto policy = make_replacement(ReplacementKind::Srrip, 1, 2);
  policy->on_fill(0, 0);
  policy->on_fill(0, 1);
  policy->on_touch(0, 0);  // way 0 -> RRPV 0, way 1 stays at 2
  // Victim scan must age both until way 1 reaches max first.
  EXPECT_EQ(policy->victim(0), 1u);
  policy->on_fill(0, 1);
  // Way 0 was aged by one during that scan but remains closer than way 1.
  EXPECT_EQ(policy->victim(0), 1u);
}

TEST(Replacement, SrripResetRestartsDistant) {
  auto policy = make_replacement(ReplacementKind::Srrip, 1, 4);
  for (std::size_t w = 0; w < 4; ++w) policy->on_fill(0, w);
  policy->on_touch(0, 2);
  policy->reset();
  // All RRPVs back at max: the victim is the lowest way again.
  EXPECT_EQ(policy->victim(0), 0u);
}

TEST(Replacement, VictimInFullRangeIsBitIdenticalToVictim) {
  // The victim_in(set, 0, ways) contract: bit-identical to victim(set) for
  // EVERY policy, including the RNG draw sequence of Random — this is what
  // lets unpartitioned caches route through the range path with zero drift.
  // Twin instances (same seed) absorb the state mutation victim()/victim_in()
  // may perform (Random advances its RNG, SRRIP ages).
  const std::size_t sets = 4, ways = 8;
  for (const auto kind : {ReplacementKind::Lru, ReplacementKind::Fifo, ReplacementKind::Random,
                          ReplacementKind::TreePlru, ReplacementKind::Srrip}) {
    auto a = make_replacement(kind, sets, ways, 99);
    auto b = make_replacement(kind, sets, ways, 99);
    util::Rng rng(17);
    for (std::size_t set = 0; set < sets; ++set) {
      for (std::size_t w = 0; w < ways; ++w) {
        a->on_fill(set, w);
        b->on_fill(set, w);
      }
    }
    for (int step = 0; step < 3000; ++step) {
      const std::size_t set = rng.next_below(sets);
      if (rng.next_bool(0.5)) {
        const std::size_t w = rng.next_below(ways);
        a->on_touch(set, w);
        b->on_touch(set, w);
      } else {
        const std::size_t va = a->victim(set);
        const std::size_t vb = b->victim_in(set, 0, ways);
        ASSERT_EQ(va, vb) << to_string(kind) << " step " << step;
        a->on_fill(set, va);
        b->on_fill(set, vb);
      }
    }
  }
}

TEST(Replacement, VictimInRespectsSubRanges) {
  // Deterministic policies confined to [begin, end) must never name a
  // victim outside it, for every contiguous sub-range.
  const std::size_t ways = 8;
  for (const auto kind :
       {ReplacementKind::Lru, ReplacementKind::Fifo, ReplacementKind::Random,
        ReplacementKind::Srrip}) {
    auto policy = make_replacement(kind, 1, ways, 5);
    for (std::size_t w = 0; w < ways; ++w) policy->on_fill(0, w);
    util::Rng rng(23);
    for (int step = 0; step < 1000; ++step) {
      const std::size_t begin = rng.next_below(ways);
      const std::size_t end = begin + 1 + rng.next_below(ways - begin);
      const std::size_t v = policy->victim_in(0, begin, end);
      ASSERT_GE(v, begin) << to_string(kind);
      ASSERT_LT(v, end) << to_string(kind);
      policy->on_fill(0, v);
    }
  }
}

}  // namespace
}  // namespace symbiosis::cachesim
