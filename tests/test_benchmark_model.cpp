#include "workload/benchmark_model.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace symbiosis::workload {
namespace {

TEST(Spec2006Pool, HasTwelveDistinctPrograms) {
  const auto& pool = spec2006_pool();
  EXPECT_EQ(pool.size(), 12u);
  const std::set<std::string> unique(pool.begin(), pool.end());
  EXPECT_EQ(unique.size(), 12u);
  // The programs the paper names explicitly must be present.
  for (const char* name : {"mcf", "libquantum", "omnetpp", "povray", "gobmk", "hmmer",
                           "perlbench"}) {
    EXPECT_TRUE(unique.count(name)) << name;
  }
}

class SpecModelTest : public testing::TestWithParam<std::string> {};

TEST_P(SpecModelTest, SpecIsWellFormed) {
  const BenchmarkSpec spec = make_spec_benchmark(GetParam());
  EXPECT_EQ(spec.name, GetParam());
  ASSERT_FALSE(spec.phases.empty());
  EXPECT_GT(spec.total_refs, 0u);
  for (const auto& phase : spec.phases) {
    EXPECT_GE(phase.pattern.region_bytes, phase.pattern.line_bytes);
    EXPECT_GE(phase.compute_gap, 0.0);
    EXPECT_GE(phase.write_ratio, 0.0);
    EXPECT_LE(phase.write_ratio, 1.0);
    EXPECT_GT(phase.refs, 0u);
  }
  EXPECT_EQ(spec.footprint_bytes() % 64, 0u);
}

TEST_P(SpecModelTest, WorkloadStaysInAddressSpace) {
  const Addr base = Addr{3} << 40;
  auto w = make_spec_workload(GetParam(), base, util::Rng{1});
  for (int i = 0; i < 5000; ++i) {
    const Step step = w->next();
    ASSERT_GE(step.addr, base);
    ASSERT_LT(step.addr, base + (Addr{1} << 40));
  }
}

TEST_P(SpecModelTest, CompletesAndRestarts) {
  ScaleConfig scale;
  scale.length_scale = 0.001;  // shrink to a few hundred refs
  auto w = make_spec_workload(GetParam(), 0, util::Rng{2}, scale);
  std::uint64_t steps = 0;
  while (!w->complete()) {
    (void)w->next();
    ASSERT_LT(++steps, 100'000u) << "did not complete";
  }
  EXPECT_EQ(w->refs_issued(), w->total_refs());
  w->restart();
  EXPECT_EQ(w->refs_issued(), 0u);
  EXPECT_FALSE(w->complete());
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, SpecModelTest, testing::ValuesIn(spec2006_pool()),
                         [](const auto& param_info) { return param_info.param; });

TEST(SpecModels, FootprintClassesMatchThePaper) {
  // The relative footprint ordering drives every scheduling result:
  // povray tiny, gobmk small, mcf/omnetpp/libquantum/hmmer large.
  const auto footprint = [](const std::string& name) {
    return make_spec_benchmark(name).footprint_bytes();
  };
  EXPECT_LT(footprint("povray"), footprint("gobmk"));
  EXPECT_LT(footprint("gobmk"), footprint("omnetpp"));
  EXPECT_LT(footprint("omnetpp"), footprint("mcf"));
  EXPECT_LT(footprint("mcf"), footprint("libquantum"));
  EXPECT_LT(footprint("libquantum"), footprint("hmmer"));
}

TEST(SpecModels, ScaleConfigScalesRegions) {
  ScaleConfig small;
  small.l2_bytes = 256 * 1024;
  ScaleConfig big;
  big.l2_bytes = 1024 * 1024;
  EXPECT_EQ(make_spec_benchmark("mcf", big).footprint_bytes(),
            4 * make_spec_benchmark("mcf", small).footprint_bytes());
}

TEST(SpecModels, LengthScaleScalesRefs) {
  ScaleConfig half;
  half.length_scale = 0.5;
  const auto full_refs = make_spec_benchmark("gobmk").total_refs;
  EXPECT_EQ(make_spec_benchmark("gobmk", half).total_refs, full_refs / 2);
}

TEST(SpecModels, UnknownNameThrows) {
  EXPECT_THROW(make_spec_benchmark("quake3"), std::invalid_argument);
}

TEST(Workload, PhasesCycle) {
  BenchmarkSpec spec;
  spec.name = "two-phase";
  PhaseSpec a;
  a.pattern.kind = PatternKind::Sequential;
  a.pattern.region_bytes = 64 * 4;
  a.refs = 10;
  PhaseSpec b = a;
  b.pattern.region_bytes = 64 * 8;
  spec.phases = {a, b};
  spec.total_refs = 100;
  Workload w(spec, 0, util::Rng{3});
  EXPECT_EQ(w.current_phase(), 0u);
  for (int i = 0; i < 10; ++i) (void)w.next();
  EXPECT_EQ(w.current_phase(), 1u);
  for (int i = 0; i < 10; ++i) (void)w.next();
  EXPECT_EQ(w.current_phase(), 0u);  // cycles back
}

TEST(Workload, ComputeGapNearMean) {
  BenchmarkSpec spec;
  spec.name = "gap";
  PhaseSpec phase;
  phase.pattern.kind = PatternKind::Random;
  phase.pattern.region_bytes = 64 * 64;
  phase.compute_gap = 20.0;
  phase.refs = 1u << 20;
  spec.phases = {phase};
  spec.total_refs = 1u << 20;
  Workload w(spec, 0, util::Rng{4});
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += w.next().compute_instr;
  EXPECT_NEAR(total / n, 20.0, 1.5);
}

TEST(Workload, WriteRatioHonored) {
  BenchmarkSpec spec;
  spec.name = "writes";
  PhaseSpec phase;
  phase.pattern.kind = PatternKind::Random;
  phase.pattern.region_bytes = 64 * 64;
  phase.write_ratio = 0.25;
  phase.refs = 1u << 20;
  spec.phases = {phase};
  spec.total_refs = 1u << 20;
  Workload w(spec, 0, util::Rng{5});
  int writes = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) writes += w.next().is_write;
  EXPECT_NEAR(writes / static_cast<double>(n), 0.25, 0.02);
}

TEST(Workload, EmptyPhasesRejected) {
  BenchmarkSpec spec;
  spec.name = "empty";
  EXPECT_THROW(Workload(spec, 0, util::Rng{6}), std::invalid_argument);
}

}  // namespace
}  // namespace symbiosis::workload
