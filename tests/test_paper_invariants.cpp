// Property-style checks of the paper's core invariants, phrased directly
// against the text of §2.4/§3.1/§3.3 and exercised on randomized inputs.
#include <gtest/gtest.h>

#include "sched/interference_graph.hpp"
#include "sched/weight_sort.hpp"
#include "sig/filter_unit.hpp"
#include "util/rng.hpp"

namespace symbiosis {
namespace {

sig::FilterUnitConfig unit_config(std::size_t cores = 2) {
  sig::FilterUnitConfig c;
  c.num_cores = cores;
  c.cache_sets = 64;
  c.cache_ways = 8;  // 512 entries
  c.hash = sig::HashKind::Xor;
  return c;
}

/// §3.1: "the CF is only responsible for tracking memory requests
/// originated from the core to which it was attached."
TEST(PaperInvariants, CoreFilterTracksOnlyItsOwnCore) {
  sig::FilterUnit fu(unit_config(4));
  util::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const sig::LineAddr line = rng();
    fu.on_fill(line, /*core=*/0, rng.next_below(64), rng.next_below(8));
  }
  EXPECT_GT(fu.core_filter_weight(0), 0u);
  for (std::size_t core = 1; core < 4; ++core) {
    EXPECT_EQ(fu.core_filter_weight(core), 0u) << core;
  }
}

/// §3.1: the RBV is monotone in execution — running longer can only add
/// bits (CF bits set since the snapshot), never remove them, as long as no
/// counter drains.
TEST(PaperInvariants, RbvMonotoneWithoutEvictions) {
  sig::FilterUnit fu(unit_config());
  util::Rng rng(2);
  fu.snapshot(0);
  std::size_t previous = 0;
  for (int burst = 0; burst < 20; ++burst) {
    for (int i = 0; i < 30; ++i) {
      const sig::LineAddr line = rng();
      fu.on_fill(line, 0, rng.next_below(64), rng.next_below(8));
    }
    const std::size_t weight = fu.compute_rbv(0).popcount();
    EXPECT_GE(weight, previous);
    previous = weight;
  }
}

/// §3.1: symbiosis is maximal for disjoint footprints and shrinks as the
/// footprints overlap — swept over overlap fractions.
TEST(PaperInvariants, SymbiosisDecreasesWithOverlap) {
  std::size_t last_symbiosis = ~std::size_t{0};
  for (const int shared_lines : {0, 32, 64, 96, 128}) {
    sig::FilterUnit fu(unit_config());
    fu.snapshot(0);
    // Core 0's app touches lines [0, 128); core 1 holds `shared_lines` of
    // those plus enough disjoint lines to keep its footprint constant.
    for (sig::LineAddr line = 0; line < 128; ++line) {
      fu.on_fill(line, 0, line % 64, 0);
    }
    for (int k = 0; k < 128; ++k) {
      const sig::LineAddr line =
          k < shared_lines ? static_cast<sig::LineAddr>(k) : static_cast<sig::LineAddr>(10'000 + k);
      fu.on_fill(line, 1, line % 64, 1);
    }
    const auto rbv = fu.compute_rbv(0);
    const std::size_t symbiosis = fu.symbiosis(rbv, 1);
    EXPECT_LT(symbiosis, last_symbiosis) << shared_lines;
    last_symbiosis = symbiosis;
  }
}

/// §3.3.1: weight sorting is invariant to the input order of the processes
/// (same schedule regardless of how the monitor enumerated them).
TEST(PaperInvariants, WeightSortOrderInvariant) {
  util::Rng rng(3);
  std::vector<sched::TaskProfile> profiles(6);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    profiles[i].task_index = i;
    profiles[i].name = "p" + std::to_string(i);
    profiles[i].occupancy_weight = 100.0 + static_cast<double>(rng.next_below(1000));
    profiles[i].symbiosis_per_core = {100.0, 100.0};
  }
  sched::WeightSortAllocator alloc;
  const sched::Allocation direct = alloc.allocate(profiles, 2);

  // Shuffle, allocate, then un-shuffle the grouping.
  std::vector<std::size_t> order(profiles.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  std::vector<sched::TaskProfile> shuffled;
  for (const auto idx : order) shuffled.push_back(profiles[idx]);
  const sched::Allocation shuffled_alloc = alloc.allocate(shuffled, 2);

  sched::Allocation unshuffled;
  unshuffled.groups = 2;
  unshuffled.group_of.resize(profiles.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    unshuffled.group_of[order[pos]] = shuffled_alloc.group_of[pos];
  }
  EXPECT_EQ(direct, unshuffled);
}

/// §3.3.3: the weighted graph's edges scale linearly with occupancy —
/// doubling every weight doubles every edge (and leaves the cut unchanged).
TEST(PaperInvariants, WeightedGraphHomogeneous) {
  util::Rng rng(4);
  std::vector<sched::TaskProfile> profiles(4);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    profiles[i].task_index = i;
    profiles[i].occupancy_weight = 50.0 + static_cast<double>(rng.next_below(500));
    profiles[i].last_core = i % 2;
    profiles[i].symbiosis_per_core = {10.0 + static_cast<double>(rng.next_below(400)),
                                      10.0 + static_cast<double>(rng.next_below(400))};
  }
  const auto w1 = sched::build_interference_graph(profiles, true);
  for (auto& p : profiles) p.occupancy_weight *= 2.0;
  const auto w2 = sched::build_interference_graph(profiles, true);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i + 1; j < 4; ++j) {
      EXPECT_NEAR(w2.at(i, j), 2.0 * w1.at(i, j), 1e-9);
    }
  }
}

/// §5.4 sampling: an unsampled unit and a 25%-sampled unit agree exactly on
/// the sampled subset of events (sampling drops information, never distorts
/// what it keeps).
TEST(PaperInvariants, SamplingIsASubsetNotADistortion) {
  sig::FilterUnitConfig full_cfg = unit_config();
  sig::FilterUnitConfig sampled_cfg = unit_config();
  sampled_cfg.sample_shift = 2;
  sig::FilterUnit full(full_cfg), sampled(sampled_cfg);

  util::Rng rng(5);
  full.snapshot(0);
  sampled.snapshot(0);
  for (int i = 0; i < 3000; ++i) {
    const sig::LineAddr line = rng();
    const std::size_t set = rng.next_below(64);
    const std::size_t way = rng.next_below(8);
    full.on_fill(line, 0, set, way);
    sampled.on_fill(line, 0, set, way);
  }
  // Every bit the sampled unit set must also be set in the full unit (the
  // index hash is identical; only the sampled-set filter differs... the
  // entries counts differ, so compare via weights instead).
  EXPECT_LE(sampled.core_filter_weight(0), full.core_filter_weight(0));
  EXPECT_GT(sampled.core_filter_weight(0), 0u);
}

}  // namespace
}  // namespace symbiosis
