#include "cachesim/cache.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace symbiosis::cachesim {
namespace {

CacheGeometry tiny_geometry() { return {1024, 4, 64}; }  // 4 sets x 4 ways

TEST(CacheGeometry, Decomposition) {
  CacheGeometry g{4 * 1024 * 1024, 16, 64};  // the paper's Core 2 Duo L2
  EXPECT_EQ(g.lines(), 65536u);
  EXPECT_EQ(g.sets(), 4096u);
  EXPECT_EQ(g.line_bits(), 6u);
  EXPECT_EQ(g.set_bits(), 12u);
  const Addr addr = 0xdeadbeef;
  const LineAddr line = g.line_of(addr);
  EXPECT_EQ(line, addr >> 6);
  EXPECT_EQ(g.set_of(line), line & 0xfff);
  EXPECT_EQ(g.tag_of(line), line >> 12);
}

TEST(CacheGeometry, Validation) {
  EXPECT_NO_THROW(tiny_geometry().validate());
  EXPECT_THROW((CacheGeometry{1000, 4, 60}).validate(), std::invalid_argument);
  EXPECT_THROW((CacheGeometry{1024, 3, 64}).validate(), std::invalid_argument);
}

TEST(Cache, MissThenHit) {
  Cache cache(tiny_geometry(), ReplacementKind::Lru);
  const auto first = cache.access(100, false, 0);
  EXPECT_FALSE(first.hit);
  const auto second = cache.access(100, false, 0);
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(cache.stats().accesses, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, LruEvictsLeastRecent) {
  Cache cache(tiny_geometry(), ReplacementKind::Lru);
  // Fill set 0 with 4 lines (same set: line % 4 == 0).
  for (LineAddr line = 0; line < 16; line += 4) cache.access(line, false, 0);
  cache.access(0, false, 0);  // refresh line 0
  // A 5th line in set 0 must evict line 4 (the oldest untouched).
  const auto result = cache.access(16, false, 0);
  EXPECT_FALSE(result.hit);
  EXPECT_TRUE(result.evicted);
  EXPECT_EQ(result.victim_line, 4u);
  EXPECT_TRUE(cache.access(0, false, 0).hit);    // survived
  EXPECT_FALSE(cache.access(4, false, 0).hit);   // gone
}

TEST(Cache, VictimCarriesDirtyFlag) {
  Cache cache(tiny_geometry(), ReplacementKind::Lru);
  cache.access(0, /*is_write=*/true, 0);
  for (LineAddr line = 4; line < 16; line += 4) cache.access(line, false, 0);
  const auto result = cache.access(16, false, 0);  // evicts dirty line 0
  EXPECT_TRUE(result.evicted);
  EXPECT_EQ(result.victim_line, 0u);
  EXPECT_TRUE(result.victim_dirty);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, WorkingSetWithinWaysAlwaysHitsAfterWarmup) {
  for (const auto kind : {ReplacementKind::Lru, ReplacementKind::Fifo,
                          ReplacementKind::TreePlru}) {
    Cache cache(tiny_geometry(), kind);
    for (int lap = 0; lap < 3; ++lap) {
      for (LineAddr line = 0; line < 16; ++line) cache.access(line, false, 0);
    }
    // 16 lines over 4 sets = exactly 4 per set: fits. Laps 2-3 all hit.
    EXPECT_EQ(cache.stats().misses, 16u) << to_string(kind);
    EXPECT_EQ(cache.stats().hits, 32u) << to_string(kind);
  }
}

TEST(Cache, PerRequestorStats) {
  Cache cache(tiny_geometry(), ReplacementKind::Lru, /*requestors=*/2);
  cache.access(0, false, 0);
  cache.access(0, false, 1);  // hit, but attributed to requestor 1
  EXPECT_EQ(cache.stats_for(0).misses, 1u);
  EXPECT_EQ(cache.stats_for(1).hits, 1u);
  EXPECT_EQ(cache.stats().accesses, 2u);
}

TEST(Cache, EvictionAttributedToVictimOwner) {
  Cache cache(tiny_geometry(), ReplacementKind::Lru, 2);
  cache.access(0, false, 0);  // requestor 0 owns line 0 in set 0
  for (LineAddr line = 4; line < 20; line += 4) cache.access(line, false, 1);
  // Requestor 1 filled the set and displaced requestor 0's line.
  EXPECT_EQ(cache.stats_for(0).evictions, 1u);
}

TEST(Cache, ProbeDoesNotPerturb) {
  Cache cache(tiny_geometry(), ReplacementKind::Lru);
  cache.access(8, false, 0);
  EXPECT_TRUE(cache.probe(8));
  EXPECT_FALSE(cache.probe(12));
  EXPECT_EQ(cache.stats().accesses, 1u);  // probes uncounted
}

TEST(Cache, InvalidateRemovesSilently) {
  Cache cache(tiny_geometry(), ReplacementKind::Lru);
  cache.access(8, false, 0);
  EXPECT_TRUE(cache.invalidate(8));
  EXPECT_FALSE(cache.invalidate(8));
  EXPECT_FALSE(cache.probe(8));
  EXPECT_EQ(cache.stats().evictions, 0u);
}

TEST(Cache, OccupancyByOwner) {
  Cache cache(tiny_geometry(), ReplacementKind::Lru, 2);
  cache.access(0, false, 0);
  cache.access(1, false, 0);
  cache.access(2, false, 1);
  EXPECT_EQ(cache.occupancy(), 3u);
  EXPECT_EQ(cache.occupancy(0), 2u);
  EXPECT_EQ(cache.occupancy(1), 1u);
}

TEST(Cache, ResetRestoresCold) {
  Cache cache(tiny_geometry(), ReplacementKind::Lru);
  cache.access(5, true, 0);
  cache.reset();
  EXPECT_EQ(cache.occupancy(), 0u);
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_FALSE(cache.access(5, false, 0).hit);
}

TEST(Cache, RandomPolicyStaysInBounds) {
  Cache cache(tiny_geometry(), ReplacementKind::Random, 1, /*seed=*/9);
  for (LineAddr line = 0; line < 400; ++line) {
    const auto result = cache.access(line, false, 0);
    EXPECT_LT(result.way, 4u);
    EXPECT_LT(result.set, 4u);
  }
  EXPECT_EQ(cache.occupancy(), 16u);  // full but never over-full
}

}  // namespace
}  // namespace symbiosis::cachesim
