#!/usr/bin/env python3
"""End-to-end tests for scripts/analyze/hotpath.py (CTest: tooling.hotpath).

Each fixture under scripts/analyze/fixtures/hotpath/ is a miniature source
tree with its own roots.toml (and optionally registry.toml). The tests
compile it with the host g++ at -O2 -g -- the same shape as the
relwithdebinfo objects the real gate reads -- and assert on the analyzer's
exit code, findings, and --json payload. Compiling at test time (rather than
committing objects) keeps the fixtures honest against the local toolchain's
actual code generation: cold clones, tail calls, PLT relocations.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
HOTPATH = REPO_ROOT / "scripts" / "analyze" / "hotpath.py"
FIXTURES = REPO_ROOT / "scripts" / "analyze" / "fixtures" / "hotpath"

GXX = shutil.which("g++")
OBJDUMP = shutil.which("objdump")


@unittest.skipUnless(GXX and OBJDUMP, "needs g++ and objdump on PATH")
class FixtureTests(unittest.TestCase):
    maxDiff = None

    def run_fixture(self, name: str, expect_exit: int,
                    expect_substrings: tuple[str, ...] = (),
                    forbid_substrings: tuple[str, ...] = ()) -> dict:
        """Compile fixture `name`, run the analyzer on its objects, and
        return the --json payload."""
        fixture = FIXTURES / name
        self.assertTrue(fixture.is_dir(), fixture)
        with tempfile.TemporaryDirectory() as tmp:
            objects = []
            for source in sorted((fixture / "src").glob("*.cpp")):
                obj = Path(tmp) / (source.stem + ".o")
                compile_cmd = [GXX, "-std=c++20", "-O2", "-g", "-c",
                               str(Path("src") / source.name), "-o", str(obj)]
                proc = subprocess.run(compile_cmd, cwd=fixture,
                                      capture_output=True, text=True)
                self.assertEqual(proc.returncode, 0,
                                 f"compile failed: {proc.stderr}")
                objects.append(str(obj))

            json_out = Path(tmp) / "out.json"
            cmd = [sys.executable, str(HOTPATH),
                   "--root", str(fixture),
                   "--objects", *objects,
                   "--roots", str(fixture / "roots.toml"),
                   "--json", str(json_out)]
            if (fixture / "registry.toml").is_file():
                cmd += ["--registry", str(fixture / "registry.toml")]
            proc = subprocess.run(cmd, cwd=fixture, capture_output=True,
                                  text=True)
            output = proc.stdout + proc.stderr
            self.assertEqual(proc.returncode, expect_exit, output)
            for needle in expect_substrings:
                self.assertIn(needle, output, output)
            for needle in forbid_substrings:
                self.assertNotIn(needle, output, output)
            return json.loads(json_out.read_text(encoding="utf-8"))

    def test_clean_tree_passes_and_sink_quarantines_alloc(self):
        payload = self.run_fixture(
            "clean", 0, ("hotpath.py: OK",),
            forbid_substrings=("purity/alloc",))
        self.assertEqual(payload["counts"], {"error": 0, "waived": 0})
        self.assertEqual(len(payload["roots"]), 1)
        self.assertEqual(len(payload["sinks"]), 1)

    def test_allocation_in_root_flagged(self):
        # `new int[n]` yields purity/alloc, plus (depending on the compiler)
        # a purity/throw for the bad_array_new_length overflow path.
        payload = self.run_fixture(
            "new_in_root", 1, ("purity/alloc", "src/hot.cpp"))
        self.assertGreaterEqual(payload["counts"]["error"], 1)

    def test_allocation_across_objects_flagged_in_helper(self):
        self.run_fixture(
            "new_transitive", 1,
            ("purity/alloc", "src/helper.cpp", "hot_grow", "grow"))

    def test_mutex_lock_flagged(self):
        self.run_fixture("mutex", 1, ("purity/lock",))

    def test_conditional_throw_in_cold_clone_flagged(self):
        self.run_fixture("throw_path", 1, ("purity/throw",))

    def test_unwaived_indirect_call_flagged(self):
        self.run_fixture(
            "indirect", 1, ("indirect/indirect-call", "src/hot.cpp"))

    def test_waived_indirect_call_passes_as_waived(self):
        payload = self.run_fixture(
            "waived", 0, ("hotpath.py: OK", "(waived)"))
        self.assertEqual(payload["counts"], {"error": 0, "waived": 1})
        waived = [f for f in payload["findings"] if f["waived"]]
        self.assertEqual(waived[0]["checker"], "indirect")

    def test_registry_entry_without_inline_waiver_is_stale(self):
        self.run_fixture(
            "stale_waiver", 1, ("waiver/stale-registry",))

    def test_unregistered_and_stale_roots_flagged(self):
        self.run_fixture(
            "unregistered_root", 1,
            ("registry/unregistered-root", "registry/stale-root",
             "hot_triple", "some_retired_root"))

    def test_opaque_extern_tail_call_flagged(self):
        self.run_fixture(
            "opaque", 1, ("purity/opaque-extern", "mystery_syscall"))


@unittest.skipUnless(GXX and OBJDUMP, "needs g++ and objdump on PATH")
class CliErrors(unittest.TestCase):
    def test_missing_roots_registry_is_usage_error(self):
        proc = subprocess.run(
            [sys.executable, str(HOTPATH), "--root", str(FIXTURES / "clean"),
             "--objects", "/nonexistent.o",
             "--roots", str(FIXTURES / "clean" / "no-such.toml")],
            capture_output=True, text=True)
        self.assertEqual(proc.returncode, 2, proc.stderr)

    def test_objects_without_symhot_section_is_usage_error(self):
        # An object with no .text.symhot symbols means the build was made
        # without the annotations (or the wrong --build-dir): exit 2 with a
        # build hint, never a silent pass.
        fixture = FIXTURES / "clean"
        with tempfile.TemporaryDirectory() as tmp:
            source = Path(tmp) / "plain.cpp"
            source.write_text("int f(int x) { return x + 1; }\n",
                              encoding="utf-8")
            obj = Path(tmp) / "plain.o"
            subprocess.run([GXX, "-O2", "-g", "-c", str(source),
                            "-o", str(obj)], check=True)
            proc = subprocess.run(
                [sys.executable, str(HOTPATH), "--root", str(fixture),
                 "--objects", str(obj),
                 "--roots", str(fixture / "roots.toml")],
                capture_output=True, text=True)
            self.assertEqual(proc.returncode, 2, proc.stderr)
            self.assertIn("no .text.symhot symbols", proc.stderr)


class WholeRepo(unittest.TestCase):
    """The real gate runs in CI against the relwithdebinfo build; locally it
    only runs when that build tree exists (the annotations' purity contract
    holds for -O2 -DNDEBUG objects, not for debug builds where SYM_DCHECK
    compiles to a throwing check)."""

    BUILD_DIR = REPO_ROOT / "build-relwithdebinfo"

    @unittest.skipUnless((BUILD_DIR / "src").is_dir() and GXX and OBJDUMP,
                         "needs a build-relwithdebinfo tree")
    def test_repo_hot_paths_are_clean(self):
        proc = subprocess.run(
            [sys.executable, str(HOTPATH), "--build-dir", str(self.BUILD_DIR)],
            cwd=REPO_ROOT, capture_output=True, text=True)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
