#!/usr/bin/env python3
"""Tests for scripts/analyze/determinism.py ("symdet", registered with CTest
as tooling.determinism).

Every checker is exercised in both directions against the committed fixture
trees (scripts/analyze/fixtures/determinism/): the clean tree must pass, each
seeded-violation tree must fail with the right checker/rule name, waiver and
registry hygiene must hold, the compile-database scoping must match
layering.py's semantics, and the real repository must be clean.
"""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SYMDET = REPO_ROOT / "scripts" / "analyze" / "determinism.py"
FIXTURES = REPO_ROOT / "scripts" / "analyze" / "fixtures" / "determinism"


def run_symdet(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SYMDET), *args],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )


def run_fixture(name: str, *extra: str,
                registry: bool = False) -> subprocess.CompletedProcess:
    args = ["--root", str(FIXTURES / name)]
    if registry:
        args += ["--registry", str(FIXTURES / name / "registry.toml")]
    return run_symdet(*args, *extra)


def load_symdet():
    spec = importlib.util.spec_from_file_location("determinism", SYMDET)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module  # dataclasses resolve annotations via sys.modules
    spec.loader.exec_module(module)
    return module


symdet = load_symdet()


class CleanTree(unittest.TestCase):
    def test_clean_tree_passes(self):
        result = run_fixture("clean")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("OK", result.stdout)

    def test_clean_tree_accepts_seeded_rng_split_and_annotations(self):
        # The clean tree deliberately contains every "looks suspicious but is
        # fine" shape: parameter-seeded Rng, per-shard .split() inside a pool
        # lambda, a non-escaping unordered traversal, a SYM_ORDER_INSENSITIVE
        # annotated traversal, a cross-file mem-init Rng member, and an
        # ordered std::map traversal. None may fire.
        result = run_fixture("clean")
        self.assertNotIn("determinism:", result.stdout)


class EntropyChecker(unittest.TestCase):
    def test_every_entropy_source_fires(self):
        result = run_fixture("entropy")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        for rule in ("std-rand", "random-device", "wall-clock", "time-call",
                     "getenv", "foreign-engine", "pointer-hash"):
            self.assertIn(f"entropy/{rule}", result.stdout, rule)

    def test_findings_carry_file_and_line(self):
        result = run_fixture("entropy")
        self.assertIn("src/core/entropy.cpp:8", result.stdout)


class OrderingChecker(unittest.TestCase):
    def test_escaping_range_for_and_iterator_traversal_fire(self):
        result = run_fixture("ordering_escape")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("ordering/unordered-traversal", result.stdout)
        self.assertIn("writes to 'report'", result.stdout)
        self.assertIn("iterator traversal", result.stdout)

    def test_pointer_sorts_fire(self):
        result = run_fixture("pointer_sort")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertEqual(result.stdout.count("ordering/pointer-sort"), 2,
                         result.stdout)
        self.assertIn("raw pointer value", result.stdout)
        self.assertIn("std::less over a pointer type", result.stdout)

    def test_annotation_sanctions_traversal(self):
        # Adding SYM_ORDER_INSENSITIVE above the escaping loop silences it.
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "tree"
            src = root / "src" / "sched"
            src.mkdir(parents=True)
            original = (FIXTURES / "ordering_escape" / "src" / "sched" /
                        "order.cpp").read_text(encoding="utf-8")
            patched = original.replace(
                "  for (const auto& [node, weight] : weights) {",
                "  SYM_ORDER_INSENSITIVE(\"fixture\");\n"
                "  for (const auto& [node, weight] : weights) {",
            ).replace(
                "  for (auto it = weights.begin(); it != weights.end(); ++it) {",
                "  SYM_ORDER_INSENSITIVE(\"fixture\");\n"
                "  for (auto it = weights.begin(); it != weights.end(); ++it) {",
            )
            self.assertNotEqual(original, patched)
            (src / "order.cpp").write_text(patched, encoding="utf-8")
            result = run_symdet("--root", str(root))
            self.assertEqual(result.returncode, 0, result.stdout + result.stderr)


class RngChecker(unittest.TestCase):
    def test_default_constructed_local_and_member_fire(self):
        result = run_fixture("rng_default")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertEqual(result.stdout.count("rng/default-constructed"), 2,
                         result.stdout)

    def test_literal_seed_fires_for_locals_and_temporaries(self):
        result = run_fixture("rng_literal")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertEqual(result.stdout.count("rng/literal-seed"), 2, result.stdout)
        self.assertIn("0xdeadbeef", result.stdout)

    def test_shared_rng_across_pool_tasks_fires(self):
        result = run_fixture("rng_shared")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("rng/shared-across-tasks", result.stdout)
        self.assertIn("split", result.stdout)

    def test_split_derived_auto_rng_in_pool_task_is_clean(self):
        # The run_sweep_grid sharding shape: `auto rng = base.split(i)` inside
        # a parallel_for_sharded lambda. No `Rng` token appears in the
        # declaration, so this regression-tests the assigned-from-split skip
        # (it false-positived as shared-across-tasks before).
        result = run_fixture("rng_split_sweep")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertNotIn("rng/shared-across-tasks", result.stdout)

    def test_member_seeded_in_sibling_cpp_is_clean(self):
        # clean/src/machine/widget.hpp declares `util::Rng rng_;` with no
        # initializer; the mem-init lives in widget.cpp. Cross-file member
        # resolution must find it.
        result = run_fixture("clean")
        self.assertNotIn("rng/default-constructed", result.stdout)


class WaiverHygiene(unittest.TestCase):
    def test_registered_waiver_passes_and_is_reported(self):
        result = run_fixture("waived", registry=True)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("(waived)", result.stdout)
        self.assertIn("1 waived", result.stdout)

    def test_unregistered_inline_waiver_fails(self):
        result = run_fixture("unregistered_waiver", registry=True)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("waiver/unregistered", result.stdout)

    def test_stale_registry_entry_fails(self):
        result = run_fixture("stale_registry", registry=True)
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("waiver/stale-registry", result.stdout)

    def test_malformed_and_unused_waivers_fail(self):
        result = run_fixture("malformed_waiver")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertEqual(result.stdout.count("waiver/syntax"), 2, result.stdout)
        self.assertIn("waiver/unused", result.stdout)

    def test_list_waivers_mode(self):
        result = run_fixture("waived", "--list-waivers", registry=True)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("[live]", result.stdout)
        self.assertIn("sanctioned ambient read", result.stdout)


class CompileDbScoping(unittest.TestCase):
    def test_db_restricts_scan_to_compiled_tus(self):
        # dead.cpp calls std::rand() but is absent from the database: with the
        # DB the tree is clean (same semantics as layering.py's orphan logic),
        # without it the violation surfaces.
        with_db = run_fixture(
            "db_scoped", "--compile-db",
            str(FIXTURES / "db_scoped" / "compile_commands.json"))
        self.assertEqual(with_db.returncode, 0, with_db.stdout + with_db.stderr)
        without_db = run_fixture("db_scoped", "--no-compile-db")
        self.assertEqual(without_db.returncode, 1,
                         without_db.stdout + without_db.stderr)
        self.assertIn("entropy/std-rand", without_db.stdout)
        self.assertIn("dead.cpp", without_db.stdout)

    def test_missing_db_is_usage_error(self):
        result = run_fixture("clean", "--compile-db", "/nonexistent/db.json")
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)


class JsonOutput(unittest.TestCase):
    def test_json_findings_schema(self):
        with tempfile.TemporaryDirectory() as tmp:
            out = Path(tmp) / "findings.json"
            result = run_fixture("entropy", "--json", str(out))
            self.assertEqual(result.returncode, 1)
            doc = json.loads(out.read_text(encoding="utf-8"))
            self.assertEqual(doc["tool"], "symdet")
            self.assertEqual(doc["version"], 1)
            self.assertEqual(doc["counts"]["error"], len(doc["findings"]))
            for finding in doc["findings"]:
                for key in ("checker", "rule", "file", "line", "message", "waived"):
                    self.assertIn(key, finding)
            self.assertTrue(any(f["rule"] == "std-rand" for f in doc["findings"]))

    def test_json_counts_split_waived_from_errors(self):
        with tempfile.TemporaryDirectory() as tmp:
            out = Path(tmp) / "findings.json"
            result = run_fixture("waived", "--json", str(out), registry=True)
            self.assertEqual(result.returncode, 0)
            doc = json.loads(out.read_text(encoding="utf-8"))
            self.assertEqual(doc["counts"], {"error": 0, "waived": 1})


class LexerUnits(unittest.TestCase):
    def test_stripper_hides_banned_tokens_in_comments_and_strings(self):
        code, in_block = symdet.strip_strings_and_comments(
            'f("std::rand()"); // random_device')
        self.assertNotIn("rand", code)
        self.assertFalse(in_block)

    def test_stripper_tracks_block_comment_state(self):
        _, in_block = symdet.strip_strings_and_comments("/* getenv(")
        self.assertTrue(in_block)
        code, in_block = symdet.strip_strings_and_comments(
            "still */ int x;", in_block_comment=True)
        self.assertFalse(in_block)
        self.assertIn("int x;", code)

    def test_int_literal_recognizer(self):
        for literal in ("0xd0d0", "12345", "0x9d15ea5e5ull", "1'000'000", "7u"):
            self.assertTrue(symdet.INT_LITERAL_RE.match(literal), literal)
        for not_literal in ("seed", "config.seed", "seed + 1", "0x", ""):
            self.assertFalse(symdet.INT_LITERAL_RE.match(not_literal), not_literal)

    def test_body_escape_analysis(self):
        self.assertIsNone(symdet.body_escapes(
            "{ int local = 0; local += 1; }", set()))
        self.assertIsNotNone(symdet.body_escapes(
            "{ total += page; }", set()))
        self.assertIsNotNone(symdet.body_escapes(
            "{ report.push_back(v); }", set()))
        self.assertIsNone(symdet.body_escapes(
            "{ loopvar += 1; }", {"loopvar"}))


class RealRepository(unittest.TestCase):
    def test_repo_is_clean(self):
        # The committed tree must hold the determinism contract with zero
        # unwaived findings, whether or not a compile database exists.
        result = run_symdet("--root", str(REPO_ROOT), "--no-compile-db")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_repo_registry_is_consistent(self):
        registry = REPO_ROOT / "scripts" / "analyze" / "determinism_waivers.toml"
        self.assertTrue(registry.is_file())
        result = run_symdet("--root", str(REPO_ROOT), "--no-compile-db",
                            "--registry", str(registry))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)


if __name__ == "__main__":
    unittest.main()
