#!/usr/bin/env python3
"""Tests for scripts/bench_gate.py (registered with CTest as
tooling.bench_gate).

Covers the per-metric tolerance overrides in the baseline format, the exit-2
diagnostics for malformed baselines (no KeyError tracebacks), and the
update-mode preservation of overrides.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_GATE = REPO_ROOT / "scripts" / "bench_gate.py"


def run_file(names_to_ns: dict[str, float]) -> dict:
    return {
        "benchmarks": [
            {"name": name, "run_type": "iteration", "real_time": ns, "time_unit": "ns"}
            for name, ns in names_to_ns.items()
        ]
    }


class BenchGateCase(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write(self, name: str, doc: dict) -> Path:
        path = self.dir / name
        path.write_text(json.dumps(doc), encoding="utf-8")
        return path

    def gate(self, *args: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, str(BENCH_GATE), *args],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )


class CheckMode(BenchGateCase):
    def test_within_tolerance_passes(self):
        baseline = self.write("base.json", {"benchmarks": {"BM_X": {"real_time_ns": 100.0}}})
        run = self.write("run.json", run_file({"BM_X": 110.0}))
        result = self.gate("check", str(baseline), str(run))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_regression_fails(self):
        baseline = self.write("base.json", {"benchmarks": {"BM_X": {"real_time_ns": 100.0}}})
        run = self.write("run.json", run_file({"BM_X": 130.0}))
        result = self.gate("check", str(baseline), str(run))
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("REGRESSION", result.stdout)

    def test_per_metric_tolerance_override_loosens_one_gate(self):
        baseline = self.write("base.json", {"benchmarks": {
            "BM_Tiny": {"real_time_ns": 5.0, "tolerance": 0.5},
            "BM_Big": {"real_time_ns": 100.0},
        }})
        # Tiny is +40% (inside its 50% override), Big is +10% (inside 15%).
        run = self.write("run.json", run_file({"BM_Tiny": 7.0, "BM_Big": 110.0}))
        result = self.gate("check", str(baseline), str(run))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("[tolerance 50%]", result.stdout)

    def test_override_does_not_leak_to_other_benchmarks(self):
        baseline = self.write("base.json", {"benchmarks": {
            "BM_Tiny": {"real_time_ns": 5.0, "tolerance": 0.5},
            "BM_Big": {"real_time_ns": 100.0},
        }})
        run = self.write("run.json", run_file({"BM_Tiny": 7.0, "BM_Big": 130.0}))
        result = self.gate("check", str(baseline), str(run))
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("BM_Big", result.stdout)

    def test_override_still_fails_beyond_its_band(self):
        baseline = self.write("base.json", {"benchmarks": {
            "BM_Tiny": {"real_time_ns": 5.0, "tolerance": 0.5},
        }})
        run = self.write("run.json", run_file({"BM_Tiny": 9.0}))
        result = self.gate("check", str(baseline), str(run))
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)


class MalformedBaseline(BenchGateCase):
    def test_missing_real_time_ns_is_clean_exit_2(self):
        baseline = self.write("base.json", {"benchmarks": {"BM_X": {"tolerance": 0.2}}})
        run = self.write("run.json", run_file({"BM_X": 100.0}))
        result = self.gate("check", str(baseline), str(run))
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
        self.assertIn("real_time_ns", result.stderr)
        self.assertNotIn("Traceback", result.stderr)

    def test_missing_baseline_file_is_exit_2(self):
        run = self.write("run.json", run_file({"BM_X": 100.0}))
        result = self.gate("check", str(self.dir / "absent.json"), str(run))
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
        self.assertIn("does not exist", result.stderr)
        self.assertNotIn("Traceback", result.stderr)

    def test_bad_tolerance_value_is_exit_2(self):
        baseline = self.write("base.json", {"benchmarks": {
            "BM_X": {"real_time_ns": 100.0, "tolerance": "loose"},
        }})
        run = self.write("run.json", run_file({"BM_X": 100.0}))
        result = self.gate("check", str(baseline), str(run))
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
        self.assertIn("tolerance", result.stderr)


class UpdateMode(BenchGateCase):
    def test_update_preserves_tolerance_overrides(self):
        baseline = self.write("base.json", {
            "_comment": ["history"],
            "benchmarks": {"BM_Tiny": {"real_time_ns": 5.0, "tolerance": 0.5}},
        })
        run = self.write("run.json", run_file({"BM_Tiny": 6.0, "BM_New": 42.0}))
        result = self.gate("update", str(baseline), str(run))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        doc = json.loads(baseline.read_text(encoding="utf-8"))
        self.assertEqual(doc["_comment"], ["history"])  # other keys preserved
        self.assertEqual(doc["benchmarks"]["BM_Tiny"],
                         {"real_time_ns": 6.0, "tolerance": 0.5})
        self.assertEqual(doc["benchmarks"]["BM_New"], {"real_time_ns": 42.0})


class FilterFlag(BenchGateCase):
    def baseline_two_suites(self) -> Path:
        return self.write("base.json", {"benchmarks": {
            "BM_KernelPopcount/avx2/1024": {"real_time_ns": 100.0},
            "BM_KernelPopcount/scalar/1024": {"real_time_ns": 800.0},
            "BM_TraceReplay/1": {"real_time_ns": 1000.0},
        }})

    def test_filter_limits_gating_to_matching_benchmarks(self):
        baseline = self.baseline_two_suites()
        # The trace benchmark regressed badly, but it is outside the filter.
        run = self.write("run.json", run_file({
            "BM_KernelPopcount/avx2/1024": 105.0,
            "BM_TraceReplay/1": 5000.0,
        }))
        result = self.gate("check", str(baseline), str(run), "--filter", r"^BM_Kernel")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertNotIn("BM_TraceReplay", result.stdout)

    def test_filter_still_fails_matching_regressions(self):
        baseline = self.baseline_two_suites()
        run = self.write("run.json", run_file({"BM_KernelPopcount/avx2/1024": 200.0}))
        result = self.gate("check", str(baseline), str(run), "--filter", r"^BM_Kernel")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("REGRESSION", result.stdout)

    def test_filter_limits_unmeasured_warnings(self):
        baseline = self.baseline_two_suites()
        # Only one kernel leg measured: the other kernel leg warns, but the
        # out-of-filter trace entry must NOT be reported as unmeasured.
        run = self.write("run.json", run_file({"BM_KernelPopcount/avx2/1024": 100.0}))
        result = self.gate("check", str(baseline), str(run), "--filter", r"^BM_Kernel")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("BM_KernelPopcount/scalar/1024: in baseline but not measured",
                      result.stdout)
        self.assertNotIn("BM_TraceReplay", result.stdout)

    def test_filtered_update_preserves_non_matching_entries(self):
        baseline = self.baseline_two_suites()
        run = self.write("run.json", run_file({
            "BM_KernelPopcount/avx2/1024": 120.0,
            "BM_TraceReplay/1": 9999.0,  # matches the run file but not the filter
        }))
        result = self.gate("update", str(baseline), str(run), "--filter", r"^BM_Kernel")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        doc = json.loads(baseline.read_text(encoding="utf-8"))
        self.assertEqual(doc["benchmarks"]["BM_KernelPopcount/avx2/1024"],
                         {"real_time_ns": 120.0})
        # Matching-but-unmeasured entries are dropped (normal update contract)…
        self.assertNotIn("BM_KernelPopcount/scalar/1024", doc["benchmarks"])
        # …while out-of-filter entries survive byte-for-byte.
        self.assertEqual(doc["benchmarks"]["BM_TraceReplay/1"], {"real_time_ns": 1000.0})

    def test_bad_filter_regex_is_exit_2(self):
        baseline = self.baseline_two_suites()
        run = self.write("run.json", run_file({"BM_KernelPopcount/avx2/1024": 100.0}))
        result = self.gate("check", str(baseline), str(run), "--filter", "BM_[")
        self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
        self.assertIn("--filter", result.stderr)
        self.assertNotIn("Traceback", result.stderr)

    def test_filter_matching_nothing_is_a_clean_failure(self):
        baseline = self.baseline_two_suites()
        run = self.write("run.json", run_file({"BM_KernelPopcount/avx2/1024": 100.0}))
        result = self.gate("check", str(baseline), str(run), "--filter", "BM_Nope")
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("no benchmark entries match", result.stderr)


class CommittedBaseline(BenchGateCase):
    def test_committed_baseline_parses_and_gates_itself(self):
        # The committed baseline must stay well-formed: replaying its own
        # numbers as a run file is a self-check that exercises every entry
        # (including the tolerance overrides) and must pass at ratio 1.0.
        committed = REPO_ROOT / "bench" / "BENCH_kernels.json"
        doc = json.loads(committed.read_text(encoding="utf-8"))
        self.assertTrue(any("tolerance" in e for e in doc["benchmarks"].values()),
                        "expected at least one per-metric override in the baseline")
        run = self.write("run.json", run_file(
            {name: entry["real_time_ns"] for name, entry in doc["benchmarks"].items()}))
        result = self.gate("check", str(committed), str(run))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)


if __name__ == "__main__":
    unittest.main()
