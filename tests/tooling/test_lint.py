#!/usr/bin/env python3
"""Unit tests for scripts/lint.py (registered with CTest as tooling.lint).

Covers the comment/string stripper's multi-line block-comment state (the
historical false-positive source), each ban rule, and the raw-mutex rule's
annotation/waiver handling.
"""

from __future__ import annotations

import importlib.util
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_lint():
    spec = importlib.util.spec_from_file_location("lint", REPO_ROOT / "scripts" / "lint.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


lint = load_lint()


def render(problems) -> list[str]:
    """check_file returns (file, line, rule, message) tuples; the assertions
    below match on the rendered `file:line: message` form lint.py prints."""
    return [f"{file}:{lineno}: {message}" for file, lineno, _rule, message in problems]


class StripStringsAndComments(unittest.TestCase):
    def strip(self, line, in_block=False):
        return lint.strip_strings_and_comments(line, in_block)

    def test_plain_code_unchanged(self):
        self.assertEqual(self.strip("int x = 1;"), ("int x = 1;", False))

    def test_line_comment_stripped(self):
        self.assertEqual(self.strip("int x; // assert(1)"), ("int x; ", False))

    def test_single_line_block_comment_stripped(self):
        code, in_block = self.strip("int x; /* assert(1) */ int y;")
        self.assertFalse(in_block)
        self.assertNotIn("assert", code)
        self.assertIn("int x;", code)
        self.assertIn("int y;", code)

    def test_block_comment_replaced_by_space_no_token_fusion(self):
        code, _ = self.strip("a/*x*/b")
        self.assertEqual(code, "a b")

    def test_block_comment_opens_across_lines(self):
        code, in_block = self.strip("int x; /* banned: assert(1)")
        self.assertTrue(in_block)
        self.assertNotIn("assert", code)

    def test_block_comment_closes_on_later_line(self):
        code, in_block = self.strip("still commented assert(1) */ int y;", in_block=True)
        self.assertFalse(in_block)
        self.assertNotIn("assert", code)
        self.assertIn("int y;", code)

    def test_block_comment_spanning_full_middle_line(self):
        code, in_block = self.strip("assert(rand());", in_block=True)
        self.assertTrue(in_block)
        self.assertEqual(code, "")

    def test_comment_marker_inside_string_is_literal(self):
        code, in_block = self.strip('const char* s = "/*"; assert(1);')
        self.assertFalse(in_block)  # the "/*" is string content, not a comment
        self.assertIn("assert", code)

    def test_quote_inside_block_comment_does_not_open_string(self):
        code, in_block = self.strip("/* don't */ int z;")
        self.assertFalse(in_block)
        self.assertIn("int z;", code)

    def test_line_comment_containing_block_open_is_just_a_comment(self):
        code, in_block = self.strip("int x; // note: /* not a block")
        self.assertFalse(in_block)
        self.assertEqual(code, "int x; ")

    def test_string_contents_removed(self):
        code, _ = self.strip('call("assert(1)");')
        self.assertNotIn("assert", code)


class CheckFileRules(unittest.TestCase):
    def check(self, relpath: str, text: str) -> list[str]:
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text, encoding="utf-8")
            return render(lint.check_file(path))

    def test_raw_assert_flagged(self):
        problems = self.check("src/a.cpp", "void f() { assert(1); }\n")
        self.assertTrue(any("raw assert" in p for p in problems))

    def test_static_assert_ok(self):
        self.assertEqual(self.check("src/a.cpp", "static_assert(sizeof(int) == 4);\n"), [])

    def test_banned_token_inside_multiline_block_comment_ignored(self):
        text = "/* historical notes:\n   assert(x) was used here\n   rand() too */\nint x;\n"
        self.assertEqual(self.check("src/a.cpp", text), [])

    def test_banned_token_after_block_comment_close_flagged(self):
        text = "/* comment\nstill comment */ void f() { assert(1); }\n"
        problems = self.check("src/a.cpp", text)
        self.assertTrue(any("raw assert" in p and ":2:" in p for p in problems))

    def test_rand_flagged_outside_comment_only(self):
        text = "// rand() is banned\nint x = rand();\n"
        problems = self.check("src/a.cpp", text)
        self.assertEqual(len([p for p in problems if "rand" in p]), 1)

    def test_pragma_once_inside_block_comment_does_not_count(self):
        text = "/*\n#pragma once\n*/\nint x;\n"
        problems = self.check("src/a.hpp", text)
        self.assertTrue(any("missing #pragma once" in p for p in problems))

    def test_using_namespace_in_header_flagged(self):
        text = "#pragma once\nusing namespace std;\n"
        problems = self.check("src/a.hpp", text)
        self.assertTrue(any("using namespace" in p for p in problems))


class RawMutexRule(unittest.TestCase):
    def check(self, relpath: str, text: str) -> list[str]:
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text, encoding="utf-8")
            return render(lint.check_file(path))

    HEADER = "#pragma once\n"

    def test_unguarded_std_mutex_flagged(self):
        text = self.HEADER + "class C {\n  std::mutex mutex_;\n  int x_ = 0;\n};\n"
        problems = self.check("src/util/c.hpp", text)
        self.assertTrue(any("guards no SYM_GUARDED_BY" in p for p in problems))

    def test_unguarded_util_mutex_flagged(self):
        text = self.HEADER + "class C {\n  util::Mutex mutex_;\n};\n"
        problems = self.check("src/util/c.hpp", text)
        self.assertTrue(any("mutex 'mutex_'" in p for p in problems))

    def test_guarded_mutex_ok(self):
        text = self.HEADER + (
            "class C {\n  util::Mutex mutex_;\n"
            "  int x_ SYM_GUARDED_BY(mutex_) = 0;\n};\n"
        )
        self.assertEqual(self.check("src/util/c.hpp", text), [])

    def test_mutable_mutex_matches(self):
        text = self.HEADER + "class C {\n  mutable std::mutex m_;\n};\n"
        problems = self.check("src/util/c.hpp", text)
        self.assertTrue(any("mutex 'm_'" in p for p in problems))

    def test_waiver_accepted(self):
        text = self.HEADER + (
            "class C {\n  std::mutex m_;  // symlint: unguarded — capability wrapper\n};\n"
        )
        self.assertEqual(self.check("src/util/c.hpp", text), [])

    def test_rule_scoped_to_src(self):
        text = self.HEADER + "class C {\n  std::mutex m_;\n};\n"
        self.assertEqual(self.check("tests/helper.hpp", text), [])

    def test_mutexlock_and_references_do_not_match(self):
        text = self.HEADER + (
            "class C {\n  util::Mutex& ref_;\n"
            "  void f() { const util::MutexLock lock(ref_); }\n};\n"
        )
        self.assertEqual(self.check("src/util/c.hpp", text), [])


class WaiverEdgeCases(unittest.TestCase):
    """Corner cases of the `// symlint: unguarded` waiver grammar: CRLF
    files, trailing explanation text, and interaction with block-comment
    state (the waiver must be a line comment — block-comment styling does
    not count, and declarations inside block comments are not declarations).
    """

    def check(self, relpath: str, text: str, newline: str = "\n") -> list[str]:
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "w", encoding="utf-8", newline=newline) as fh:
                fh.write(text)
            return render(lint.check_file(path))

    def test_crlf_waiver_accepted(self):
        text = (
            "#pragma once\n"
            "class C {\n  std::mutex m_;  // symlint: unguarded — wrapper\n};\n"
        )
        self.assertEqual(self.check("src/util/c.hpp", text, newline="\r\n"), [])

    def test_crlf_unguarded_mutex_still_flagged(self):
        # CRLF endings must not hide a violation either (the \r is stripped
        # by universal newlines, never glued onto the declaration).
        text = "#pragma once\nclass C {\n  std::mutex m_;\n};\n"
        problems = self.check("src/util/c.hpp", text, newline="\r\n")
        self.assertEqual(len(problems), 1, problems)
        self.assertIn("mutex 'm_'", problems[0])

    def test_waiver_with_trailing_punctuation_and_text(self):
        text = (
            "#pragma once\n"
            "class C {\n"
            "  std::mutex m_;  // symlint: unguarded(see DESIGN.md §7), "
            "guards only its own queue\n};\n"
        )
        self.assertEqual(self.check("src/util/c.hpp", text), [])

    def test_block_comment_style_waiver_is_not_a_waiver(self):
        # The grammar requires a line comment; /* symlint: unguarded */ is
        # documentation, not a waiver.
        text = (
            "#pragma once\n"
            "class C {\n  std::mutex m_;  /* symlint: unguarded */\n};\n"
        )
        problems = self.check("src/util/c.hpp", text)
        self.assertTrue(any("mutex 'm_'" in p for p in problems), problems)

    def test_mutex_decl_inside_block_comment_is_not_a_decl(self):
        text = (
            "#pragma once\n"
            "/* historical sketch:\n"
            "  std::mutex retired_;\n"
            "*/\n"
            "class C { int x_ = 0; };\n"
        )
        self.assertEqual(self.check("src/util/c.hpp", text), [])

    def test_block_comment_state_tracked_across_waived_and_live_decls(self):
        # A waived decl, then a block comment hiding a fake decl, then a live
        # unwaived decl: exactly the live one fires, at the right line.
        text = (
            "#pragma once\n"
            "class C {\n"
            "  std::mutex a_;  // symlint: unguarded — external contract\n"
            "  /* commented out pending redesign:\n"
            "  std::mutex b_;\n"
            "  */\n"
            "  std::mutex c_;\n"
            "};\n"
        )
        problems = self.check("src/util/c.hpp", text)
        self.assertEqual(len(problems), 1, problems)
        self.assertIn("mutex 'c_'", problems[0])
        self.assertIn(":7:", problems[0])


class WholeRepo(unittest.TestCase):
    def test_repo_trees_are_clean(self):
        import subprocess

        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "lint.py"),
             "src", "tests", "bench", "examples"],
            cwd=REPO_ROOT, capture_output=True, text=True,
        )
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)


if __name__ == "__main__":
    unittest.main()
