#!/usr/bin/env python3
"""Unit tests for scripts/analyze/waivers.py (CTest: tooling.waivers), the
inline-waiver <-> TOML-registry machinery shared by symdet and symhot.

Uses a self-contained grammar (tag `demo:`, payload `ok(...)`) so the tests
prove the module is grammar-independent -- the tool-specific suites
(test_determinism.py, test_hotpath.py) cover the real grammars end to end.
"""

from __future__ import annotations

import importlib.util
import re
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_waivers():
    spec = importlib.util.spec_from_file_location(
        "waivers", REPO_ROOT / "scripts" / "analyze" / "waivers.py")
    module = importlib.util.module_from_spec(spec)
    # Dataclass field resolution needs the module visible in sys.modules.
    sys.modules["waivers"] = module
    spec.loader.exec_module(module)
    return module


waivers = load_waivers()

GRAMMAR = waivers.WaiverGrammar(
    tool="demo",
    comment_re=re.compile(r"//\s*demo:\s*(?P<payload>.*)$"),
    payload_re=re.compile(r"^ok\(\s*(?P<reason>[^)]*?)\s*\)\s*$"),
    expected="`// demo: ok(<non-empty reason>)`",
    registry_display="scripts/analyze/demo_waivers.toml",
)


def scan(raw_lines: list[str]):
    """Run scan_waivers over literal lines, computing the stripped-code view
    the same way the analyzers do."""
    code = []
    in_block = False
    for line in raw_lines:
        stripped, in_block = waivers.strip_strings_and_comments(line, in_block)
        code.append(stripped)
    return waivers.scan_waivers(GRAMMAR, "src/demo.cpp", raw_lines, code)


class ScanWaivers(unittest.TestCase):
    def test_waiver_on_code_line_covers_that_line(self):
        found, errors = scan(["int x = f();  // demo: ok(reviewed)"])
        self.assertEqual(errors, [])
        self.assertEqual(len(found), 1)
        self.assertEqual(found[0].reason, "reviewed")
        self.assertEqual(found[0].covers, {1})

    def test_comment_only_waiver_covers_next_code_line(self):
        found, _ = scan(["// demo: ok(reviewed)", "int x = f();"])
        self.assertEqual(found[0].covers, {1, 2})

    def test_comment_only_waiver_skips_blank_and_comment_lines(self):
        found, _ = scan(["// demo: ok(reviewed)", "", "// note", "int x;"])
        self.assertEqual(found[0].covers, {1, 4})

    def test_comment_only_waiver_reach_is_bounded(self):
        found, _ = scan(["// demo: ok(reviewed)", "", "", "", "int x;"])
        self.assertEqual(found[0].covers, {1})  # line 5 is out of reach

    def test_malformed_payload_is_syntax_finding(self):
        found, errors = scan(["int x;  // demo: ok()"])
        self.assertEqual(found, [])
        self.assertEqual(len(errors), 1)
        self.assertEqual((errors[0].checker, errors[0].rule),
                         ("waiver", "syntax"))
        self.assertIn("expected `// demo: ok(<non-empty reason>)`",
                      errors[0].message)

    def test_empty_payload_is_syntax_finding(self):
        _, errors = scan(["int x;  // demo:"])
        self.assertEqual(len(errors), 1)
        self.assertIn("'(empty)'", errors[0].message)

    def test_unrelated_comments_ignored(self):
        found, errors = scan(["int x;  // demonstrate nothing"])
        self.assertEqual((found, errors), ([], []))


class ApplyWaivers(unittest.TestCase):
    def make_finding(self, line: int) -> "waivers.Finding":
        return waivers.Finding("purity", "alloc", "src/demo.cpp", line, "msg")

    def test_covered_finding_is_waived_and_usage_recorded(self):
        found, _ = scan(["// demo: ok(reviewed)", "int* p = new int;"])
        finding = self.make_finding(2)
        waivers.apply_waivers([finding], found)
        self.assertTrue(finding.waived)
        self.assertEqual(found[0].used_by, ["purity"])

    def test_uncovered_finding_stays_live(self):
        found, _ = scan(["// demo: ok(reviewed)", "int x;"])
        finding = self.make_finding(7)
        waivers.apply_waivers([finding], found)
        self.assertFalse(finding.waived)

    def test_unused_waiver_becomes_finding(self):
        found, _ = scan(["int x;  // demo: ok(reviewed)"])
        unused = waivers.unused_waiver_findings(found)
        self.assertEqual(len(unused), 1)
        self.assertEqual((unused[0].checker, unused[0].rule),
                         ("waiver", "unused"))
        self.assertIn("suppresses no finding", unused[0].message)

    def test_render_marks_waived_findings(self):
        finding = self.make_finding(3)
        finding.waived = True
        self.assertTrue(finding.render().endswith("(waived)"))
        self.assertIn("purity/alloc: src/demo.cpp:3:", finding.render())


class Registry(unittest.TestCase):
    def load(self, text: str):
        errors = []

        def fail(message):
            errors.append(message)
            raise RuntimeError(message)

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "reg.toml"
            path.write_text(text, encoding="utf-8")
            try:
                return waivers.load_registry(path, fail), errors
            except RuntimeError:
                return None, errors

    def test_valid_registry_loads(self):
        entries, errors = self.load(
            '[[waiver]]\nfile = "src/demo.cpp"\nchecker = "purity"\n'
            'reason = "why"\n')
        self.assertEqual(errors, [])
        self.assertEqual(entries[0]["checker"], "purity")

    def test_missing_key_fails(self):
        _, errors = self.load('[[waiver]]\nfile = "src/demo.cpp"\n')
        self.assertEqual(len(errors), 1)
        self.assertIn("non-empty string", errors[0])

    def test_bad_toml_fails(self):
        _, errors = self.load("[[waiver]\n")
        self.assertEqual(len(errors), 1)
        self.assertIn("cannot read waiver registry", errors[0])

    def reconcile(self, entries, used):
        return waivers.reconcile_registry(GRAMMAR, entries, used)

    def used_waiver(self, file="src/demo.cpp", checker="purity"):
        waiver = waivers.Waiver(file, 5, "reviewed", {5})
        waiver.used_by.append(checker)
        return waiver

    def test_matched_registry_is_clean(self):
        entries = [{"file": "src/demo.cpp", "checker": "purity",
                    "reason": "why"}]
        self.assertEqual(self.reconcile(entries, [self.used_waiver()]), [])

    def test_unregistered_inline_waiver_flagged(self):
        findings = self.reconcile([], [self.used_waiver()])
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].rule, "unregistered")
        self.assertIn("scripts/analyze/demo_waivers.toml", findings[0].message)

    def test_stale_registry_entry_flagged(self):
        entries = [{"file": "src/other.cpp", "checker": "purity",
                    "reason": "why"}]
        findings = self.reconcile(entries, [self.used_waiver()])
        rules = sorted(f.rule for f in findings)
        self.assertEqual(rules, ["stale-registry", "unregistered"])

    def test_checker_must_match_not_just_file(self):
        entries = [{"file": "src/demo.cpp", "checker": "indirect",
                    "reason": "why"}]
        findings = self.reconcile(entries, [self.used_waiver(checker="purity")])
        self.assertEqual(sorted(f.rule for f in findings),
                         ["stale-registry", "unregistered"])


class Stripper(unittest.TestCase):
    """The copy of lint.py's stripper that waivers.py exposes for symhot must
    keep the same contract (lint.py's own suite covers the original)."""

    def test_waiver_comment_line_strips_to_blank(self):
        code, _ = waivers.strip_strings_and_comments("  // demo: ok(x)")
        self.assertEqual(code.strip(), "")

    def test_block_comment_state_round_trips(self):
        code, in_block = waivers.strip_strings_and_comments("int a; /* open")
        self.assertTrue(in_block)
        code, in_block = waivers.strip_strings_and_comments(
            "still */ int b;", in_block)
        self.assertFalse(in_block)
        self.assertIn("int b;", code)

    def test_comment_marker_in_string_is_literal(self):
        code, in_block = waivers.strip_strings_and_comments(
            'const char* s = "// demo: ok(x)"; int y;')
        self.assertFalse(in_block)
        self.assertIn("int y;", code)


if __name__ == "__main__":
    unittest.main()
