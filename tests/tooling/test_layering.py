#!/usr/bin/env python3
"""Tests for scripts/analyze/layering.py (registered with CTest as
tooling.layering).

Runs the checker against the committed fixture trees
(scripts/analyze/fixtures/): the clean tree must pass, each seeded-violation
tree must fail with the right named diagnostic, and environment errors must
exit 2 rather than masquerade as "clean".
"""

from __future__ import annotations

import shutil
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
LAYERING = REPO_ROOT / "scripts" / "analyze" / "layering.py"
FIXTURES = REPO_ROOT / "scripts" / "analyze" / "fixtures"


def run_layering(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LAYERING), *args],
        capture_output=True, text=True, cwd=REPO_ROOT,
    )


class FixtureTrees(unittest.TestCase):
    def test_clean_tree_passes(self):
        result = run_layering("--root", str(FIXTURES / "clean"))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)
        self.assertIn("OK", result.stdout)

    def test_back_edge_fails_with_named_edge(self):
        result = run_layering("--root", str(FIXTURES / "back_edge"))
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("back-edge", result.stdout)
        self.assertIn("src/util/base.hpp", result.stdout)
        self.assertIn("src/obs/metrics.hpp", result.stdout)
        self.assertIn("'util' may not depend on 'obs'", result.stdout)

    def test_cycle_fails_with_cycle_path(self):
        result = run_layering("--root", str(FIXTURES / "cycle"))
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("cycle:", result.stdout)
        self.assertIn("src/util/x.hpp", result.stdout)
        self.assertIn("src/util/y.hpp", result.stdout)

    def test_cpp_include_fails(self):
        result = run_layering("--root", str(FIXTURES / "include_cpp"))
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("cpp-include", result.stdout)
        self.assertIn("src/util/impl.cpp", result.stdout)

    def test_orphan_header_fails(self):
        result = run_layering("--root", str(FIXTURES / "orphan"))
        self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
        self.assertIn("orphan", result.stdout)
        self.assertIn("src/util/unused.hpp", result.stdout)

    def test_orphan_fixture_passes_when_orphans_skipped(self):
        result = run_layering("--root", str(FIXTURES / "orphan"), "--skip-orphans")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)


class ManifestValidation(unittest.TestCase):
    def test_undeclared_module_is_reported(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "tree"
            shutil.copytree(FIXTURES / "clean", root)
            rogue = root / "src" / "rogue"
            rogue.mkdir()
            (rogue / "r.hpp").write_text("#pragma once\n", encoding="utf-8")
            result = run_layering("--root", str(root), "--skip-orphans")
            self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
            self.assertIn("module 'rogue'", result.stdout)
            self.assertIn("not declared", result.stdout)

    def test_manifest_cycle_is_reported(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "tree"
            shutil.copytree(FIXTURES / "clean", root)
            (root / "layers.toml").write_text(
                '[layers]\nutil = ["obs"]\nobs = ["util"]\n', encoding="utf-8"
            )
            result = run_layering("--root", str(root), "--skip-orphans")
            self.assertEqual(result.returncode, 1, result.stdout + result.stderr)
            self.assertIn("manifest-cycle", result.stdout)

    def test_missing_compile_db_is_usage_error_not_clean(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "tree"
            shutil.copytree(FIXTURES / "clean", root)
            (root / "compile_commands.json").unlink()
            result = run_layering("--root", str(root))
            self.assertEqual(result.returncode, 2, result.stdout + result.stderr)
            self.assertIn("compile_commands.json", result.stderr)


class RealRepository(unittest.TestCase):
    def test_repo_passes_with_skip_orphans(self):
        # The full orphan check needs a generated compile database (CI builds
        # one with `cmake --preset tidy`); the DAG/back-edge/cycle checks are
        # database-free and must always hold for the committed tree.
        result = run_layering("--root", str(REPO_ROOT), "--skip-orphans")
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_repo_passes_fully_when_compile_db_exists(self):
        db_candidates = [REPO_ROOT / "compile_commands.json",
                         REPO_ROOT / "build-tidy" / "compile_commands.json"]
        db_candidates += sorted(REPO_ROOT.glob("build*/compile_commands.json"))
        if not any(c.is_file() for c in db_candidates):
            self.skipTest("no compile_commands.json generated (run `cmake --preset tidy`)")
        result = run_layering("--root", str(REPO_ROOT))
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)


if __name__ == "__main__":
    unittest.main()
