#include "sig/hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

namespace symbiosis::sig {
namespace {

class IndexHashTest : public testing::TestWithParam<HashKind> {};

TEST_P(IndexHashTest, IndexInRange) {
  const IndexHash h(GetParam(), 4096);
  for (LineAddr line = 0; line < 10000; line += 7) {
    EXPECT_LT(h.index(line), 4096u);
  }
  // High address bits (process bases at 1 TiB boundaries) must still land
  // inside the filter.
  EXPECT_LT(h.index((LineAddr{5} << 34) + 1234), 4096u);
}

TEST_P(IndexHashTest, Deterministic) {
  const IndexHash a(GetParam(), 1024);
  const IndexHash b(GetParam(), 1024);
  for (LineAddr line = 0; line < 100; ++line) EXPECT_EQ(a.index(line), b.index(line));
}

TEST_P(IndexHashTest, SpreadsSequentialLines) {
  // Any sane cache-index hash maps 4096 consecutive lines onto ~all of a
  // 4096-entry filter (modulo is exactly bijective; the XOR family nearly).
  const IndexHash h(GetParam(), 4096);
  std::set<std::size_t> hit;
  for (LineAddr line = 0; line < 4096; ++line) hit.insert(h.index(line));
  // Modulo/XOR-fold are bijective on this range; multiplicative mixing is
  // merely low-discrepancy (~89%), so the floor is set at 85%.
  EXPECT_GT(hit.size(), 4096u * 85 / 100);
}

TEST_P(IndexHashTest, DerivedHashesDiffer) {
  const IndexHash h(GetParam(), 4096);
  int same01 = 0, same02 = 0;
  for (LineAddr line = 0; line < 500; ++line) {
    same01 += h.index_k(line, 0) == h.index_k(line, 1);
    same02 += h.index_k(line, 0) == h.index_k(line, 2);
  }
  EXPECT_LT(same01, 50);
  EXPECT_LT(same02, 50);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, IndexHashTest,
                         testing::Values(HashKind::Xor, HashKind::XorInverseReverse,
                                         HashKind::Modulo, HashKind::Multiply),
                         [](const auto& param_info) {
                           std::string name = to_string(param_info.param);
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(IndexHash, ModuloIsExactRemainder) {
  const IndexHash h(HashKind::Modulo, 1000);  // non-power-of-two allowed
  EXPECT_EQ(h.index(1234), 234u);
  EXPECT_EQ(h.index(999), 999u);
}

TEST(IndexHash, XorFoldKnownValue) {
  // entries=16 -> 4-bit chunks. line 0xAB = 1010_1011 -> A^B = 0001.
  const IndexHash h(HashKind::Xor, 16);
  EXPECT_EQ(h.index(0xAB), 0xAu ^ 0xBu);
}

TEST(IndexHash, InverseReverseRelatesToXor) {
  const IndexHash plain(HashKind::Xor, 256);
  const IndexHash invrev(HashKind::XorInverseReverse, 256);
  // For every line the inv-rev index must be the bit-reversed complement of
  // the plain XOR index (an 8-bit permutation of the index space).
  for (LineAddr line = 0; line < 300; ++line) {
    std::size_t x = plain.index(line);
    std::size_t expected = 0;
    x = ~x & 0xff;
    for (int bit = 0; bit < 8; ++bit) {
      expected = (expected << 1) | ((x >> bit) & 1);
    }
    EXPECT_EQ(invrev.index(line), expected) << line;
  }
}

TEST(IndexHash, RejectsNonPow2ForXorFamily) {
  EXPECT_THROW(IndexHash(HashKind::Xor, 1000), std::invalid_argument);
  EXPECT_THROW(IndexHash(HashKind::XorInverseReverse, 48), std::invalid_argument);
  EXPECT_THROW(IndexHash(HashKind::Multiply, 3), std::invalid_argument);
  EXPECT_NO_THROW(IndexHash(HashKind::Modulo, 1000));
}

TEST(IndexHash, RejectsZeroEntries) {
  EXPECT_THROW(IndexHash(HashKind::Xor, 0), std::invalid_argument);
}

TEST(IndexHash, PresenceIsNotAnAddressHash) {
  EXPECT_THROW(IndexHash(HashKind::Presence, 4096), std::invalid_argument);
}

TEST(HashKindNames, RoundTrip) {
  for (const HashKind kind : {HashKind::Xor, HashKind::XorInverseReverse, HashKind::Modulo,
                              HashKind::Presence, HashKind::Multiply}) {
    EXPECT_EQ(parse_hash_kind(to_string(kind)), kind);
  }
  EXPECT_THROW((void)parse_hash_kind("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace symbiosis::sig
