#include "cachesim/tlb.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace symbiosis::cachesim {
namespace {

TEST(Tlb, HitsWithinPage) {
  Tlb tlb(4, 4096);
  EXPECT_FALSE(tlb.access(0x1000));
  EXPECT_TRUE(tlb.access(0x1fff));  // same page
  EXPECT_FALSE(tlb.access(0x2000));  // next page
  EXPECT_EQ(tlb.hits(), 1u);
  EXPECT_EQ(tlb.misses(), 2u);
}

TEST(Tlb, LruEviction) {
  Tlb tlb(2, 4096);
  tlb.access(0x0000);  // page 0
  tlb.access(0x1000);  // page 1
  tlb.access(0x0000);  // refresh page 0
  tlb.access(0x2000);  // page 2 evicts page 1
  EXPECT_TRUE(tlb.access(0x0000));
  EXPECT_FALSE(tlb.access(0x1000));
}

TEST(Tlb, FlushDropsAll) {
  Tlb tlb(8);
  tlb.access(0x5000);
  tlb.flush();
  EXPECT_FALSE(tlb.access(0x5000));
}

TEST(Tlb, StatsSurviveFlush) {
  Tlb tlb(8);
  tlb.access(0x5000);
  tlb.flush();
  EXPECT_EQ(tlb.misses(), 1u);
  tlb.reset_stats();
  EXPECT_EQ(tlb.misses(), 0u);
}

TEST(Tlb, Validation) {
  EXPECT_THROW(Tlb(0), std::invalid_argument);
  EXPECT_THROW(Tlb(4, 1000), std::invalid_argument);
  EXPECT_EQ(Tlb(4, 8192).page_bytes(), 8192u);
}

TEST(Tlb, CapacityWorkingSetAlwaysHits) {
  Tlb tlb(16, 4096);
  for (int lap = 0; lap < 3; ++lap) {
    for (std::uint64_t page = 0; page < 16; ++page) tlb.access(page * 4096);
  }
  EXPECT_EQ(tlb.misses(), 16u);
  EXPECT_EQ(tlb.hits(), 32u);
}

}  // namespace
}  // namespace symbiosis::cachesim
