// Integration tests for the core façade: profiles, allocation application,
// the two-phase pipeline, and the §5.4 overhead model.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/overheads.hpp"
#include "core/profile.hpp"
#include "core/symbiotic_scheduler.hpp"

namespace symbiosis::core {
namespace {

/// A small-but-real pipeline config: tiny machine + very short benchmarks so
/// the end-to-end tests run in tens of milliseconds.
PipelineConfig tiny_pipeline() {
  PipelineConfig c;
  c.machine.hierarchy.num_cores = 2;
  c.machine.hierarchy.l1 = {1024, 2, 64};
  c.machine.hierarchy.l2 = {32 * 1024, 4, 64};
  c.machine.quantum_cycles = 100'000;
  c.sync_scale();
  c.scale.length_scale = 0.05;
  c.allocator_period_cycles = 500'000;
  c.emulation_cycles = 4'000'000;
  c.measure_max_cycles = 400'000'000;
  return c;
}

TEST(Profile, ExtractsSignatureAndCounters) {
  machine::Machine m(tiny_pipeline().machine);
  const auto ids = add_mix_tasks(m, {"povray", "gobmk"}, tiny_pipeline().scale, 1);
  m.set_affinity(ids[0], 0);
  m.set_affinity(ids[1], 0);
  ASSERT_TRUE(m.run_to_all_complete());
  const auto profiles = collect_profiles(m);
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[0].name, "povray");
  EXPECT_EQ(profiles[0].task_index, 0u);
  EXPECT_EQ(profiles[0].symbiosis_per_core.size(), 2u);
  EXPECT_GT(profiles[1].occupancy_weight, 0.0);
  EXPECT_GE(profiles[0].l2_miss_rate, 0.0);
}

TEST(Profile, ApplyAllocationSetsAffinities) {
  machine::Machine m(tiny_pipeline().machine);
  const auto ids = add_mix_tasks(m, {"povray", "gobmk", "sjeng", "bzip2"},
                                 tiny_pipeline().scale, 1);
  sched::Allocation alloc;
  alloc.groups = 2;
  alloc.group_of = {0, 1, 1, 0};
  apply_allocation(m, ids, alloc);
  EXPECT_EQ(m.task(ids[0]).affinity(), 0u);
  EXPECT_EQ(m.task(ids[1]).affinity(), 1u);
  EXPECT_EQ(m.task(ids[2]).affinity(), 1u);
  EXPECT_EQ(m.task(ids[3]).affinity(), 0u);
}

TEST(Profile, ApplyAllocationValidates) {
  machine::Machine m(tiny_pipeline().machine);
  const auto ids = add_mix_tasks(m, {"povray", "gobmk"}, tiny_pipeline().scale, 1);
  sched::Allocation wrong_size;
  wrong_size.groups = 2;
  wrong_size.group_of = {0};
  EXPECT_THROW(apply_allocation(m, ids, wrong_size), std::invalid_argument);
  sched::Allocation too_many_groups;
  too_many_groups.groups = 4;
  too_many_groups.group_of = {0, 3};
  EXPECT_THROW(apply_allocation(m, ids, too_many_groups), std::invalid_argument);
}

TEST(Pipeline, ChooseAllocationReturnsBalancedMapping) {
  SymbioticScheduler pipeline(tiny_pipeline());
  const auto alloc = pipeline.choose_allocation({"mcf", "libquantum", "povray", "gobmk"});
  EXPECT_EQ(alloc.group_of.size(), 4u);
  EXPECT_EQ(alloc.groups, 2u);
  EXPECT_FALSE(pipeline.vote_table().empty());
  // Balanced: two per core.
  EXPECT_EQ(alloc.members(0).size(), 2u);
}

TEST(Pipeline, MeasureMappingProducesUserTimes) {
  const PipelineConfig config = tiny_pipeline();
  sched::Allocation alloc;
  alloc.groups = 2;
  alloc.group_of = {0, 0, 1, 1};
  const MappingRun run = measure_mapping(config, {"povray", "gobmk", "sjeng", "bzip2"}, alloc);
  EXPECT_TRUE(run.completed);
  ASSERT_EQ(run.user_cycles.size(), 4u);
  for (const auto cycles : run.user_cycles) EXPECT_GT(cycles, 0u);
  EXPECT_GT(run.wall_cycles, *std::max_element(run.user_cycles.begin(), run.user_cycles.end()) / 2);
}

TEST(Pipeline, MeasureMappingVmIsSlowerThanNative) {
  PipelineConfig config = tiny_pipeline();
  sched::Allocation alloc;
  alloc.groups = 2;
  alloc.group_of = {0, 0, 1, 1};
  const std::vector<std::string> mix = {"povray", "gobmk", "sjeng", "bzip2"};
  const MappingRun native = measure_mapping(config, mix, alloc);
  config.vm.dom0_region_bytes = 4 * 1024;
  const MappingRun vm = measure_mapping_vm(config, mix, alloc);
  ASSERT_TRUE(native.completed);
  ASSERT_TRUE(vm.completed);
  std::uint64_t native_total = 0, vm_total = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    native_total += native.user_cycles[i];
    vm_total += vm.user_cycles[i];
  }
  EXPECT_GT(vm_total, native_total);
}

TEST(Pipeline, MultiThreadedMeasurementAggregatesPerProcess) {
  PipelineConfig config = tiny_pipeline();
  config.scale.length_scale = 0.02;
  const std::vector<std::string> mix = {"blackscholes", "swaptions"};
  sched::Allocation alloc;
  alloc.groups = 2;
  alloc.group_of = {0, 1, 0, 1, 0, 1, 0, 1};  // 8 threads round-robin
  const MappingRun run = measure_mapping_mt(config, mix, alloc);
  EXPECT_TRUE(run.completed);
  ASSERT_EQ(run.names.size(), 2u);  // per PROCESS, not per thread
  EXPECT_EQ(run.names[0], "blackscholes");
  EXPECT_GT(run.user_cycles[0], 0u);
}

TEST(Pipeline, ChooseAllocationMtCoversAllThreads) {
  PipelineConfig config = tiny_pipeline();
  config.scale.length_scale = 0.02;
  SymbioticScheduler pipeline(config);
  const auto alloc = pipeline.choose_allocation_mt({"blackscholes", "ferret"});
  EXPECT_EQ(alloc.group_of.size(), 8u);  // 2 processes x 4 threads
  EXPECT_EQ(alloc.members(0).size(), 4u);
}

TEST(Overheads, PaperArithmetic) {
  // §5.4: dual-core, 3-bit counters -> (2*2+3)/(64+18) = 8.54%; with 25%
  // sampling -> 2.13%.
  OverheadModel unsampled;
  EXPECT_NEAR(unsampled.relative_overhead_paper(), 0.0854, 0.0005);
  OverheadModel sampled;
  sampled.sample_ratio = 0.25;
  EXPECT_NEAR(sampled.relative_overhead_paper(), 0.0213, 0.0005);
  // First-principles 64-byte-line variant is ~6.5x smaller.
  EXPECT_LT(unsampled.relative_overhead_64byte_line(), 0.015);
}

TEST(Overheads, StorageScalesWithCoresAndSampling) {
  OverheadModel dual;
  OverheadModel quad;
  quad.num_cores = 4;
  EXPECT_GT(quad.storage_bytes(65536), dual.storage_bytes(65536));
  OverheadModel sampled = dual;
  sampled.sample_ratio = 0.25;
  EXPECT_DOUBLE_EQ(sampled.storage_bytes(65536), dual.storage_bytes(65536) / 4.0);
}

TEST(Overheads, SoftwareSummaryMentionsRbvTraffic) {
  const std::string summary = software_cost_summary(2, 65536, 240'000'000);
  EXPECT_NE(summary.find("8.00 KB"), std::string::npos);
  EXPECT_NE(summary.find("240000000"), std::string::npos);
}

}  // namespace
}  // namespace symbiosis::core
