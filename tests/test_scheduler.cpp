#include "machine/scheduler.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace symbiosis::machine {
namespace {

TEST(Scheduler, AdmitRoundRobinsUnpinned) {
  Scheduler s(2);
  s.admit(0, Task::kAnyCore);
  s.admit(1, Task::kAnyCore);
  s.admit(2, Task::kAnyCore);
  EXPECT_EQ(s.core_of(0), 0u);
  EXPECT_EQ(s.core_of(1), 1u);
  EXPECT_EQ(s.core_of(2), 0u);
}

TEST(Scheduler, AdmitHonorsPinnedCore) {
  Scheduler s(2);
  s.admit(5, 1);
  EXPECT_EQ(s.core_of(5), 1u);
  EXPECT_EQ(s.queue_depth(1), 1u);
  EXPECT_EQ(s.queue_depth(0), 0u);
}

TEST(Scheduler, PickNextIsFifoWithinCore) {
  Scheduler s(1);
  s.admit(0, 0);
  s.admit(1, 0);
  TaskId t;
  ASSERT_TRUE(s.pick_next(0, t));
  EXPECT_EQ(t, 0u);
  ASSERT_TRUE(s.pick_next(0, t));
  EXPECT_EQ(t, 1u);
  EXPECT_FALSE(s.pick_next(0, t));
}

TEST(Scheduler, PinnedTaskAlwaysReturnsToItsQueue) {
  Scheduler s(2);
  s.admit(0, 1);
  TaskId t;
  ASSERT_TRUE(s.pick_next(1, t));
  for (int i = 0; i < 20; ++i) {
    s.yield(1, t);
    EXPECT_EQ(s.core_of(t), 1u);
    ASSERT_TRUE(s.pick_next(1, t));
  }
}

TEST(Scheduler, UnpinnedTaskMigratesToLeastLoaded) {
  Scheduler s(2, /*seed=*/3, /*migration_prob=*/1.0);
  s.admit(0, Task::kAnyCore);  // lands on core 0
  s.admit(1, 1);
  s.admit(2, 1);
  TaskId t;
  ASSERT_TRUE(s.pick_next(0, t));
  s.yield(0, t);  // core 0's queue is empty, core 1 has 2: must go to 0
  EXPECT_EQ(s.core_of(0), 0u);
}

TEST(Scheduler, UnpinnedMigrationMixesCoresOverTime) {
  // With symmetric load the random tie-break must spread an unpinned task
  // across both cores (this drives the paper's phase-1 sampling).
  Scheduler s(2, 7, /*migration_prob=*/1.0);
  s.admit(0, Task::kAnyCore);
  std::set<std::size_t> cores_seen;
  TaskId t;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(s.pick_next(s.core_of(0), t));
    s.yield(s.core_of(0), t);
    cores_seen.insert(s.core_of(0));
  }
  EXPECT_EQ(cores_seen.size(), 2u);
}

TEST(Scheduler, SetAffinityMigratesQueuedTask) {
  Scheduler s(2);
  s.admit(0, 0);
  s.set_affinity(0, 1);
  EXPECT_EQ(s.core_of(0), 1u);
  EXPECT_EQ(s.queue_depth(0), 0u);
  EXPECT_EQ(s.queue_depth(1), 1u);
}

TEST(Scheduler, SetAffinityOnRunningTaskAppliesAtYield) {
  Scheduler s(2);
  s.admit(0, 0);
  TaskId t;
  ASSERT_TRUE(s.pick_next(0, t));
  s.set_affinity(0, 1);  // task is "running": not in any queue
  s.yield(0, t);
  EXPECT_EQ(s.core_of(0), 1u);
}

TEST(Scheduler, UnpinningKeepsCurrentQueueUntilYield) {
  Scheduler s(2);
  s.admit(0, 0);
  s.set_affinity(0, Task::kAnyCore);
  EXPECT_EQ(s.core_of(0), 0u);  // no immediate move
}

TEST(Scheduler, RemoveDeletesFromQueue) {
  Scheduler s(1);
  s.admit(0, 0);
  s.admit(1, 0);
  s.remove(0);
  TaskId t;
  ASSERT_TRUE(s.pick_next(0, t));
  EXPECT_EQ(t, 1u);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, Validation) {
  EXPECT_THROW(Scheduler(0), std::invalid_argument);
  Scheduler s(2);
  EXPECT_THROW(s.admit(0, 5), std::out_of_range);
  s.admit(0, 0);
  EXPECT_THROW(s.set_affinity(0, 9), std::out_of_range);
}

}  // namespace
}  // namespace symbiosis::machine
