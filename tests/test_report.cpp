// Run-report exporter tests: build/validate round-trips, validator error
// detection on corrupted documents, and the golden-report regression — a
// fixed-seed 2-mix sweep compared field-by-field against the committed
// tests/data/golden_report.json (volatile "timings"/"metrics" sections
// excluded per the DESIGN.md §9 stability policy).
//
// Regenerating the golden file after an INTENTIONAL schema or simulation
// change:  scripts/regen_golden_report.sh  (sets SYMBIOSIS_REGEN_GOLDEN=1
// and reruns this suite, which then rewrites the file instead of comparing).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/report.hpp"
#include "obs/json.hpp"

#ifndef SYMBIOSIS_TEST_DATA_DIR
#error "tests/CMakeLists.txt must define SYMBIOSIS_TEST_DATA_DIR"
#endif

namespace symbiosis::core {
namespace {

PipelineConfig tiny_pipeline() {
  PipelineConfig c;
  c.machine.hierarchy.num_cores = 2;
  c.machine.hierarchy.l1 = {1024, 2, 64};
  c.machine.hierarchy.l2 = {32 * 1024, 4, 64};
  c.machine.quantum_cycles = 100'000;
  c.sync_scale();
  c.scale.length_scale = 0.05;
  c.allocator_period_cycles = 500'000;
  c.emulation_cycles = 4'000'000;
  c.measure_max_cycles = 400'000'000;
  return c;
}

/// A hand-built outcome with two mappings — enough structure for the
/// exporter without running a simulation.
MixOutcome synthetic_outcome() {
  MixOutcome outcome;
  outcome.mix = {"mcf", "povray"};
  for (int m = 0; m < 2; ++m) {
    MappingRun run;
    run.allocation.groups = 2;
    run.allocation.group_of = {0, 1};
    run.names = outcome.mix;
    run.user_cycles = {100 + static_cast<std::uint64_t>(m) * 20, 200};
    run.wall_cycles = 500;
    run.completed = true;
    outcome.mappings.push_back(std::move(run));
  }
  outcome.chosen = 0;
  outcome.votes = {{"0,1", 3}};
  return outcome;
}

obs::Json load_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return obs::Json::parse(buffer.str());
}

TEST(Report, MixReportValidatesAndRoundTrips) {
  const obs::Json report = build_mix_report(tiny_pipeline(), synthetic_outcome());
  EXPECT_TRUE(validate_report(report).empty());

  // File round trip: write_report_file -> parse -> structurally equal.
  const std::string path = ::testing::TempDir() + "symbiosis_mix_report.json";
  write_report_file(report, path);
  EXPECT_EQ(load_json_file(path), report);
  std::remove(path.c_str());

  // Deterministic sections carry the inputs through exactly.
  EXPECT_EQ(report.at("kind").as_string(), "mix");
  EXPECT_EQ(report.at("config").at("seed").as_u64(), tiny_pipeline().seed);
  const obs::Json& outcome = report.at("outcome");
  EXPECT_EQ(outcome.at("chosen").as_u64(), 0u);
  EXPECT_EQ(outcome.at("mappings").size(), 2u);
  EXPECT_EQ(outcome.at("improvements").as_array()[0].at("name").as_string(), "mcf");
  // mcf: worst 120, chosen 100 -> (120-100)/120.
  EXPECT_DOUBLE_EQ(
      outcome.at("improvements").as_array()[0].at("improvement_vs_worst").as_double(),
      20.0 / 120.0);
}

TEST(Report, ValidatorCatchesCorruptedReports) {
  const PipelineConfig config = tiny_pipeline();
  ASSERT_TRUE(validate_report(build_mix_report(config, synthetic_outcome())).empty());

  {  // Not even an object.
    EXPECT_EQ(validate_report(obs::Json(std::int64_t{7})).size(), 1u);
  }
  {  // Empty object: every required member reported, not just the first.
    const auto problems = validate_report(obs::Json::object());
    EXPECT_GE(problems.size(), 6u);
  }
  {  // Wrong schema stamp and version.
    obs::Json report = build_mix_report(config, synthetic_outcome());
    report.set("schema", obs::Json("not.a.report"));
    report.set("schema_version", obs::Json(std::uint64_t{99}));
    const auto problems = validate_report(report);
    ASSERT_EQ(problems.size(), 2u);
    EXPECT_NE(problems[0].find("schema"), std::string::npos);
    EXPECT_NE(problems[1].find("99"), std::string::npos);
  }
  {  // Unknown kind.
    obs::Json report = build_mix_report(config, synthetic_outcome());
    report.set("kind", obs::Json("telemetry"));
    const auto problems = validate_report(report);
    // "telemetry" has no required sections, so exactly the kind complaint.
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("unknown report kind"), std::string::npos);
  }
  {  // Chosen index out of range.
    obs::Json report = build_mix_report(config, synthetic_outcome());
    obs::Json outcome = report.at("outcome");
    outcome.set("chosen", obs::Json(std::uint64_t{7}));
    report.set("outcome", std::move(outcome));
    const auto problems = validate_report(report);
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("chosen index out of range"), std::string::npos);
  }
  {  // names / user_cycles length mismatch inside a mapping.
    MixOutcome bad = synthetic_outcome();
    bad.mappings[1].names.pop_back();
    const auto problems = validate_report(build_mix_report(config, bad));
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("mappings.1"), std::string::npos);
    EXPECT_NE(problems[0].find("lengths differ"), std::string::npos);
  }
}

TEST(Report, OnlineReportValidates) {
  OnlineConfig config;
  config.pipeline = tiny_pipeline();
  OnlineRun run;
  run.names = {"mcf", "povray"};
  run.user_cycles = {100, 200};
  run.wall_cycles = 300;
  run.final_mapping_key = "0|1";
  run.completed = true;
  const obs::Json with_baseline = build_online_report(config, run, &run);
  EXPECT_TRUE(validate_report(with_baseline).empty());
  EXPECT_TRUE(with_baseline.find("baseline"));
  const obs::Json without = build_online_report(config, run);
  EXPECT_TRUE(validate_report(without).empty());
  EXPECT_FALSE(without.find("baseline"));
}

// --- golden report --------------------------------------------------------

TEST(GoldenReport, FixedSeedSweepMatchesCommittedGolden) {
  // Same tiny configuration the determinism suite uses: 4-program pool,
  // mixes of 2, every program covered once -> a 2-mix sweep.
  const PipelineConfig config = tiny_pipeline();
  const SweepResult sweep =
      run_sweep(config, {"mcf", "libquantum", "povray", "gobmk"}, 2, 1);
  const obs::Json report = build_sweep_report(config, sweep);
  ASSERT_TRUE(validate_report(report).empty());

  const std::string golden_path = std::string(SYMBIOSIS_TEST_DATA_DIR) + "/golden_report.json";
  if (std::getenv("SYMBIOSIS_REGEN_GOLDEN")) {
    write_report_file(report, golden_path);
    GTEST_SKIP() << "regenerated " << golden_path << " — review and commit the diff";
  }

  obs::Json golden;
  try {
    golden = load_json_file(golden_path);
  } catch (const std::exception& e) {
    FAIL() << e.what() << "\nrun scripts/regen_golden_report.sh to create the golden file";
  }
  EXPECT_TRUE(validate_report(golden).empty());

  // Field-by-field compare of the deterministic sections only.
  const auto diffs = obs::json_diff(golden, report, {"timings", "metrics"});
  for (const auto& d : diffs) ADD_FAILURE() << d;
  EXPECT_TRUE(diffs.empty())
      << "golden report drifted; if the change is intentional, rerun "
         "scripts/regen_golden_report.sh and commit the new golden file";
}

}  // namespace
}  // namespace symbiosis::core
