// Run-report exporter tests: build/validate round-trips, validator error
// detection on corrupted documents, and the golden-report regression — a
// fixed-seed 2-mix sweep compared field-by-field against the committed
// tests/data/golden_report.json (volatile "timings"/"metrics" sections
// excluded per the DESIGN.md §9 stability policy).
//
// Regenerating the golden file after an INTENTIONAL schema or simulation
// change:  scripts/regen_golden_report.sh  (sets SYMBIOSIS_REGEN_GOLDEN=1
// and reruns this suite, which then rewrites the file instead of comparing).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/report.hpp"
#include "obs/json.hpp"

#ifndef SYMBIOSIS_TEST_DATA_DIR
#error "tests/CMakeLists.txt must define SYMBIOSIS_TEST_DATA_DIR"
#endif

namespace symbiosis::core {
namespace {

PipelineConfig tiny_pipeline() {
  PipelineConfig c;
  c.machine.hierarchy.num_cores = 2;
  c.machine.hierarchy.l1 = {1024, 2, 64};
  c.machine.hierarchy.l2 = {32 * 1024, 4, 64};
  c.machine.quantum_cycles = 100'000;
  c.sync_scale();
  c.scale.length_scale = 0.05;
  c.allocator_period_cycles = 500'000;
  c.emulation_cycles = 4'000'000;
  c.measure_max_cycles = 400'000'000;
  return c;
}

/// A hand-built outcome with two mappings — enough structure for the
/// exporter without running a simulation.
MixOutcome synthetic_outcome() {
  MixOutcome outcome;
  outcome.mix = {"mcf", "povray"};
  for (int m = 0; m < 2; ++m) {
    MappingRun run;
    run.allocation.groups = 2;
    run.allocation.group_of = {0, 1};
    run.names = outcome.mix;
    run.user_cycles = {100 + static_cast<std::uint64_t>(m) * 20, 200};
    run.wall_cycles = 500;
    run.completed = true;
    outcome.mappings.push_back(std::move(run));
  }
  outcome.chosen = 0;
  outcome.votes = {{"0,1", 3}};
  return outcome;
}

obs::Json load_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return obs::Json::parse(buffer.str());
}

TEST(Report, MixReportValidatesAndRoundTrips) {
  const obs::Json report = build_mix_report(tiny_pipeline(), synthetic_outcome());
  EXPECT_TRUE(validate_report(report).empty());

  // File round trip: write_report_file -> parse -> structurally equal.
  const std::string path = ::testing::TempDir() + "symbiosis_mix_report.json";
  write_report_file(report, path);
  EXPECT_EQ(load_json_file(path), report);
  std::remove(path.c_str());

  // Deterministic sections carry the inputs through exactly.
  EXPECT_EQ(report.at("kind").as_string(), "mix");
  EXPECT_EQ(report.at("config").at("seed").as_u64(), tiny_pipeline().seed);
  const obs::Json& outcome = report.at("outcome");
  EXPECT_EQ(outcome.at("chosen").as_u64(), 0u);
  EXPECT_EQ(outcome.at("mappings").size(), 2u);
  EXPECT_EQ(outcome.at("improvements").as_array()[0].at("name").as_string(), "mcf");
  // mcf: worst 120, chosen 100 -> (120-100)/120.
  EXPECT_DOUBLE_EQ(
      outcome.at("improvements").as_array()[0].at("improvement_vs_worst").as_double(),
      20.0 / 120.0);
}

TEST(Report, ValidatorCatchesCorruptedReports) {
  const PipelineConfig config = tiny_pipeline();
  ASSERT_TRUE(validate_report(build_mix_report(config, synthetic_outcome())).empty());

  {  // Not even an object.
    EXPECT_EQ(validate_report(obs::Json(std::int64_t{7})).size(), 1u);
  }
  {  // Empty object: every required member reported, not just the first.
    const auto problems = validate_report(obs::Json::object());
    EXPECT_GE(problems.size(), 6u);
  }
  {  // Wrong schema stamp and version.
    obs::Json report = build_mix_report(config, synthetic_outcome());
    report.set("schema", obs::Json("not.a.report"));
    report.set("schema_version", obs::Json(std::uint64_t{99}));
    const auto problems = validate_report(report);
    ASSERT_EQ(problems.size(), 2u);
    EXPECT_NE(problems[0].find("schema"), std::string::npos);
    EXPECT_NE(problems[1].find("99"), std::string::npos);
  }
  {  // Unknown kind.
    obs::Json report = build_mix_report(config, synthetic_outcome());
    report.set("kind", obs::Json("telemetry"));
    const auto problems = validate_report(report);
    // "telemetry" has no required sections, so exactly the kind complaint.
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("unknown report kind"), std::string::npos);
  }
  {  // Chosen index out of range.
    obs::Json report = build_mix_report(config, synthetic_outcome());
    obs::Json outcome = report.at("outcome");
    outcome.set("chosen", obs::Json(std::uint64_t{7}));
    report.set("outcome", std::move(outcome));
    const auto problems = validate_report(report);
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("chosen index out of range"), std::string::npos);
  }
  {  // names / user_cycles length mismatch inside a mapping.
    MixOutcome bad = synthetic_outcome();
    bad.mappings[1].names.pop_back();
    const auto problems = validate_report(build_mix_report(config, bad));
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("mappings.1"), std::string::npos);
    EXPECT_NE(problems[0].find("lengths differ"), std::string::npos);
  }
}

TEST(Report, OnlineReportValidates) {
  OnlineConfig config;
  config.pipeline = tiny_pipeline();
  OnlineRun run;
  run.names = {"mcf", "povray"};
  run.user_cycles = {100, 200};
  run.wall_cycles = 300;
  run.final_mapping_key = "0|1";
  run.completed = true;
  const obs::Json with_baseline = build_online_report(config, run, &run);
  EXPECT_TRUE(validate_report(with_baseline).empty());
  EXPECT_TRUE(with_baseline.find("baseline"));
  const obs::Json without = build_online_report(config, run);
  EXPECT_TRUE(validate_report(without).empty());
  EXPECT_FALSE(without.find("baseline"));
}

// --- schema v2 (non-degenerate topologies) ---------------------------------

/// tiny_pipeline() on the clustered graph: 4 cores in 2 clusters + L3.
PipelineConfig clustered_pipeline() {
  PipelineConfig c = tiny_pipeline();
  c.machine.hierarchy.num_cores = 4;
  c.machine.hierarchy.l2_clusters = 2;
  c.machine.hierarchy.l3 = cachesim::CacheGeometry{64 * 1024, 16, 64};
  return c;
}

TEST(Report, DegenerateTopologyStampsLegacyVersionAndNoGraphFields) {
  // The two legacy testbeds keep the v1 document byte-for-byte: version 1,
  // no cluster/L3/partition machine fields, no per-mapping levels.
  const obs::Json report = build_mix_report(tiny_pipeline(), synthetic_outcome());
  EXPECT_TRUE(validate_report(report).empty());
  EXPECT_EQ(report.at("schema_version").as_u64(), kLegacyReportSchemaVersion);
  const obs::Json& machine = report.at("config").at("machine");
  EXPECT_FALSE(machine.find("l2_clusters"));
  EXPECT_FALSE(machine.find("l3_bytes"));
  EXPECT_FALSE(machine.find("topology"));
  EXPECT_FALSE(machine.find("l2_way_partition"));
  const obs::Json& mapping = report.at("outcome").at("mappings").as_array()[0];
  EXPECT_FALSE(mapping.find("levels"));
}

TEST(Report, ClusteredTopologyStampsV2WithGraphFieldsAndLevels) {
  MixOutcome outcome = synthetic_outcome();
  for (auto& run : outcome.mappings) {
    run.levels = {{"l1", {100, 80, 20, 5}}, {"l2", {20, 12, 8, 2}}, {"l3", {8, 6, 2, 0}}};
  }
  const obs::Json report = build_mix_report(clustered_pipeline(), outcome);
  EXPECT_TRUE(validate_report(report).empty());
  EXPECT_EQ(report.at("schema_version").as_u64(), kReportSchemaVersion);

  const obs::Json& machine = report.at("config").at("machine");
  EXPECT_EQ(machine.at("l2_clusters").as_u64(), 2u);
  EXPECT_EQ(machine.at("l3_bytes").as_u64(), 64u * 1024);
  EXPECT_EQ(machine.at("l3_ways").as_u64(), 16u);
  EXPECT_EQ(machine.at("l3_replacement").as_string(), "srrip");
  EXPECT_NE(machine.at("topology").as_string().find("2x"), std::string::npos);

  const obs::Json& mapping = report.at("outcome").at("mappings").as_array()[0];
  const obs::Json& levels = mapping.at("levels");
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels.as_array()[0].at("level").as_string(), "l1");
  EXPECT_EQ(levels.as_array()[0].at("hits").as_u64(), 80u);
  EXPECT_EQ(levels.as_array()[2].at("level").as_string(), "l3");
  EXPECT_EQ(levels.as_array()[2].at("evictions").as_u64(), 0u);
}

TEST(Report, WayPartitionsAppearInMachineConfig) {
  PipelineConfig c = clustered_pipeline();
  c.machine.hierarchy.l2_way_partition.ways_per_group = {2, 2};
  c.machine.hierarchy.l3_way_partition.ways_per_group = {8, 8};
  const obs::Json report = build_mix_report(c, synthetic_outcome());
  EXPECT_TRUE(validate_report(report).empty());
  const obs::Json& machine = report.at("config").at("machine");
  ASSERT_TRUE(machine.find("l2_way_partition"));
  EXPECT_EQ(machine.at("l2_way_partition").size(), 2u);
  EXPECT_EQ(machine.at("l2_way_partition").as_array()[0].as_u64(), 2u);
  EXPECT_EQ(machine.at("l3_way_partition").as_array()[1].as_u64(), 8u);
}

TEST(Report, ValidatorChecksLevelEntries) {
  MixOutcome outcome = synthetic_outcome();
  outcome.mappings[0].levels = {{"l1", {10, 8, 2, 0}}};
  obs::Json report = build_mix_report(clustered_pipeline(), outcome);
  ASSERT_TRUE(validate_report(report).empty());

  // Corrupt one level entry: drop its "misses" member.
  obs::Json out = report.at("outcome");
  obs::Json mappings = out.at("mappings");
  obs::Json mapping = mappings.as_array()[0];
  obs::Json levels = obs::Json::array();
  obs::Json entry = obs::Json::object();
  entry.set("level", obs::Json("l1"));
  entry.set("accesses", obs::Json(std::uint64_t{10}));
  entry.set("hits", obs::Json(std::uint64_t{8}));
  entry.set("evictions", obs::Json(std::uint64_t{0}));
  levels.push_back(std::move(entry));
  mapping.set("levels", std::move(levels));
  obs::Json fixed_mappings = obs::Json::array();
  fixed_mappings.push_back(std::move(mapping));
  for (std::size_t i = 1; i < mappings.size(); ++i) {
    fixed_mappings.push_back(mappings.as_array()[i]);
  }
  out.set("mappings", std::move(fixed_mappings));
  report.set("outcome", std::move(out));

  const auto problems = validate_report(report);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("misses"), std::string::npos);
}

TEST(Report, ValidatorAcceptsBothSchemaVersions) {
  obs::Json report = build_mix_report(tiny_pipeline(), synthetic_outcome());
  report.set("schema_version", obs::Json(kReportSchemaVersion));
  EXPECT_TRUE(validate_report(report).empty());
  report.set("schema_version", obs::Json(kLegacyReportSchemaVersion));
  EXPECT_TRUE(validate_report(report).empty());
  report.set("schema_version", obs::Json(std::uint64_t{3}));
  EXPECT_EQ(validate_report(report).size(), 1u);
}

// --- golden report --------------------------------------------------------

TEST(GoldenReport, FixedSeedSweepMatchesCommittedGolden) {
  // Same tiny configuration the determinism suite uses: 4-program pool,
  // mixes of 2, every program covered once -> a 2-mix sweep.
  const PipelineConfig config = tiny_pipeline();
  const SweepResult sweep =
      run_sweep(config, {"mcf", "libquantum", "povray", "gobmk"}, 2, 1);
  const obs::Json report = build_sweep_report(config, sweep);
  ASSERT_TRUE(validate_report(report).empty());

  const std::string golden_path = std::string(SYMBIOSIS_TEST_DATA_DIR) + "/golden_report.json";
  if (std::getenv("SYMBIOSIS_REGEN_GOLDEN")) {
    write_report_file(report, golden_path);
    GTEST_SKIP() << "regenerated " << golden_path << " — review and commit the diff";
  }

  obs::Json golden;
  try {
    golden = load_json_file(golden_path);
  } catch (const std::exception& e) {
    FAIL() << e.what() << "\nrun scripts/regen_golden_report.sh to create the golden file";
  }
  EXPECT_TRUE(validate_report(golden).empty());

  // Field-by-field compare of the deterministic sections only.
  const auto diffs = obs::json_diff(golden, report, {"timings", "metrics"});
  for (const auto& d : diffs) ADD_FAILURE() << d;
  EXPECT_TRUE(diffs.empty())
      << "golden report drifted; if the change is intentional, rerun "
         "scripts/regen_golden_report.sh and commit the new golden file";
}

}  // namespace
}  // namespace symbiosis::core
