// Differential geometry-equivalence suite for the composable cache graph.
//
// The hierarchy refactor (per-core L1s -> per-cluster L2s -> optional shared
// L3) promises that its DEGENERATE topologies — one shared L2, or all-private
// L2s, no L3, no partitions — are bit-identical to the pre-graph two-level
// implementation. This suite replays tens of thousands of randomized
// accesses (interleaved cores, context switches, write mix) through the
// optimised Hierarchy and through testref::ReferenceTwoLevelHierarchy, the
// deliberately naive model of the legacy semantics, and requires every
// MemAccessResult field, cache counter, TLB counter and signature-filter
// state to agree exactly. It also pins SRRIP against its naive model and
// proves batched replay chunk-size-invariant on a full 3-level topology.
//
// Runs under the plain, asan-ubsan and tsan presets (part of
// symbiosis_tests); the TopologyMatrix cases are additionally registered
// standalone under the "topology-matrix" ctest label.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cachesim/cache.hpp"
#include "cachesim/hierarchy.hpp"
#include "reference/reference_kernels.hpp"
#include "util/rng.hpp"

namespace symbiosis {
namespace {

constexpr std::size_t kAccesses = 12000;

void expect_mem_result_eq(const cachesim::MemAccessResult& got,
                          const cachesim::MemAccessResult& want, std::size_t i) {
  ASSERT_EQ(got.cycles, want.cycles) << "access " << i;
  ASSERT_EQ(got.l1_hit, want.l1_hit) << "access " << i;
  ASSERT_EQ(got.l2_hit, want.l2_hit) << "access " << i;
  ASSERT_EQ(got.l3_hit, want.l3_hit) << "access " << i;
  ASSERT_EQ(got.tlb_hit, want.tlb_hit) << "access " << i;
  ASSERT_EQ(got.stream_prefetched, want.stream_prefetched) << "access " << i;
}

void expect_cache_stats_eq(const cachesim::CacheStats& got, const cachesim::CacheStats& want,
                           const char* label) {
  EXPECT_EQ(got.accesses, want.accesses) << label;
  EXPECT_EQ(got.hits, want.hits) << label;
  EXPECT_EQ(got.misses, want.misses) << label;
  EXPECT_EQ(got.evictions, want.evictions) << label;
  EXPECT_EQ(got.writebacks, want.writebacks) << label;
}

/// Replay one randomized trace through the graph Hierarchy and the naive
/// two-level reference, asserting bit-identity access by access and on every
/// end-of-run counter. @p config must be a degenerate topology.
void run_degenerate_differential(const cachesim::HierarchyConfig& config, std::uint64_t seed) {
  ASSERT_TRUE(config.topology().degenerate());
  cachesim::Hierarchy opt(config);
  testref::ReferenceTwoLevelHierarchy ref(config);

  util::Rng rng(seed);
  for (std::size_t i = 0; i < kAccesses; ++i) {
    const auto core = static_cast<std::size_t>(rng.next_below(config.num_cores));
    // Narrow region + occasional strided runs: L1/L2 conflict pressure,
    // stream-detector locks, TLB churn all happen constantly.
    cachesim::Addr addr;
    if (rng.next_bool(0.3)) {
      addr = (i % 512) * config.l1.line_bytes;  // strided scan segments
    } else {
      addr = rng.next_below(256 * 1024);
    }
    const bool is_write = rng.next_bool(0.3);
    const cachesim::MemAccessResult got = opt.access(core, addr, is_write);
    const cachesim::MemAccessResult want = ref.access(core, addr, is_write);
    expect_mem_result_eq(got, want, i);

    if (rng.next_below(500) == 0) {
      const auto switched = static_cast<std::size_t>(rng.next_below(config.num_cores));
      opt.on_context_switch_in(switched);
      ref.on_context_switch_in(switched);
    }
  }

  for (std::size_t core = 0; core < config.num_cores; ++core) {
    expect_cache_stats_eq(opt.l1(core).stats(), ref.l1(core).stats(), "l1 total");
    expect_cache_stats_eq(opt.l2(core).stats(), ref.l2(core).stats(), "l2 total");
    expect_cache_stats_eq(opt.l2(core).stats_for(core), ref.l2(core).stats_for(core),
                          "l2 per-requestor");
    EXPECT_EQ(opt.tlb(core).hits(), ref.tlb(core).hits()) << "core " << core;
    EXPECT_EQ(opt.tlb(core).misses(), ref.tlb(core).misses()) << "core " << core;
    EXPECT_EQ(opt.l2_footprint(core),
              ref.l2(core).occupancy(config.shared_l2 ? core : cachesim::Cache::kAnyRequestor));
  }

  // Signature state: the optimised word-parallel filter agrees with the
  // std::set reference on every core's CF weight and RBV.
  if (config.signature.enabled && config.shared_l2) {
    ASSERT_NE(opt.filter(), nullptr);
    ASSERT_NE(ref.filter(), nullptr);
    for (std::size_t core = 0; core < config.num_cores; ++core) {
      EXPECT_EQ(opt.filter()->core_filter_weight(core), ref.filter()->cf(core).size());
      EXPECT_EQ(opt.filter()->compute_rbv(core).popcount(), ref.filter()->rbv(core).size());
    }
  }
}

cachesim::HierarchyConfig tiny_shared_config() {
  cachesim::HierarchyConfig c;
  c.num_cores = 2;
  c.l1 = {1024, 2, 64};      // 8 sets x 2 ways
  c.l2 = {8 * 1024, 4, 64};  // 32 sets x 4 ways
  c.shared_l2 = true;
  c.tlb_entries = 8;
  return c;
}

TEST(DifferentialHierarchy, SharedL2DegenerateMatchesLegacyReference) {
  run_degenerate_differential(tiny_shared_config(), 101);
}

TEST(DifferentialHierarchy, SharedL2FourCoresMatchesLegacyReference) {
  cachesim::HierarchyConfig c = tiny_shared_config();
  c.num_cores = 4;
  c.l2 = {16 * 1024, 8, 64};
  run_degenerate_differential(c, 102);
}

TEST(DifferentialHierarchy, PrivateL2DegenerateMatchesLegacyReference) {
  cachesim::HierarchyConfig c = tiny_shared_config();
  c.shared_l2 = false;
  c.signature.enabled = false;  // no shared cache to monitor (P4 SMP testbed)
  run_degenerate_differential(c, 103);
}

TEST(DifferentialHierarchy, FifoL2DegenerateMatchesLegacyReference) {
  cachesim::HierarchyConfig c = tiny_shared_config();
  c.l2_replacement = cachesim::ReplacementKind::Fifo;
  run_degenerate_differential(c, 104);
}

TEST(DifferentialHierarchy, SampledSignatureDegenerateMatchesLegacyReference) {
  cachesim::HierarchyConfig c = tiny_shared_config();
  c.signature.sample_shift = 2;  // the paper's 25% set sampling
  run_degenerate_differential(c, 105);
}

// --- SRRIP vs its naive model ----------------------------------------------

TEST(DifferentialHierarchy, SrripCacheMatchesNaiveModel) {
  // 16 sets x 4 ways over a 128-line space: constant eviction pressure so
  // the aging loop runs often, not just at cold start.
  const cachesim::CacheGeometry geom{4096, 4, 64};
  cachesim::Cache opt(geom, cachesim::ReplacementKind::Srrip, 3);
  testref::ReferenceCache ref(geom, cachesim::ReplacementKind::Srrip, 3);

  util::Rng rng(106);
  for (std::size_t i = 0; i < kAccesses; ++i) {
    const cachesim::LineAddr line = rng.next_below(128);
    const bool is_write = rng.next_bool(0.3);
    const auto requestor = static_cast<std::size_t>(rng.next_below(3));
    const cachesim::AccessResult got = opt.access(line, is_write, requestor);
    const cachesim::AccessResult want = ref.access(line, is_write, requestor);
    ASSERT_EQ(got.hit, want.hit) << "access " << i;
    ASSERT_EQ(got.way, want.way) << "access " << i;
    ASSERT_EQ(got.evicted, want.evicted) << "access " << i;
    ASSERT_EQ(got.victim_line, want.victim_line) << "access " << i;
    ASSERT_EQ(got.victim_dirty, want.victim_dirty) << "access " << i;
  }
  expect_cache_stats_eq(opt.stats(), ref.stats(), "srrip total");
  for (std::size_t r = 0; r < 3; ++r) {
    expect_cache_stats_eq(opt.stats_for(r), ref.stats_for(r), "srrip per-requestor");
  }
}

TEST(DifferentialHierarchy, SrripScansResistLruThrashing) {
  // The behavioural reason SRRIP guards the L3: a streaming scan of
  // never-reused lines pushes a small hot working set out under LRU, but
  // SRRIP-HP inserts scan lines near-distant so they are re-victimized
  // before the hot lines (which sit at RRPV 0 from their hits) are touched.
  const cachesim::CacheGeometry geom{4 * 64, 4, 64};  // 1 set x 4 ways
  cachesim::Cache srrip(geom, cachesim::ReplacementKind::Srrip, 1);
  cachesim::Cache lru(geom, cachesim::ReplacementKind::Lru, 1);
  // Warm two hot lines (the second pass hits, promoting them under SRRIP).
  for (int pass = 0; pass < 2; ++pass) {
    for (cachesim::LineAddr l = 0; l < 2; ++l) {
      srrip.access(l, false, 0);
      lru.access(l, false, 0);
    }
  }
  // Each round: touch the hot pair, then three FRESH single-use scan lines.
  cachesim::LineAddr scan = 100;
  for (int round = 0; round < 200; ++round) {
    for (cachesim::LineAddr l = 0; l < 2; ++l) {
      srrip.access(l, false, 0);
      lru.access(l, false, 0);
    }
    for (int s = 0; s < 3; ++s, ++scan) {
      srrip.access(scan, false, 0);
      lru.access(scan, false, 0);
    }
  }
  EXPECT_GT(srrip.stats().hits, lru.stats().hits)
      << "scan-resistant insertion must retain the hot lines better than LRU";
}

// --- batched replay on a 3-level topology ----------------------------------

cachesim::HierarchyConfig three_level_config() {
  cachesim::HierarchyConfig c;
  c.num_cores = 4;
  c.l2_clusters = 2;
  c.l1 = {1024, 2, 64};
  c.l2 = {4 * 1024, 4, 64};
  c.l3 = cachesim::CacheGeometry{16 * 1024, 8, 64};
  c.tlb_entries = 8;
  return c;
}

std::vector<cachesim::MemRef> random_trace(std::uint64_t seed, std::size_t n) {
  std::vector<cachesim::MemRef> trace;
  trace.reserve(n);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    cachesim::MemRef ref;
    ref.addr = rng.next_bool(0.25) ? (i % 300) * 64 : rng.next_below(128 * 1024);
    ref.is_write = rng.next_bool(0.3);
    trace.push_back(ref);
  }
  return trace;
}

TEST(DifferentialHierarchy, BatchChunkSizesMatchSerialReplayOnThreeLevels) {
  const cachesim::HierarchyConfig config = three_level_config();
  ASSERT_FALSE(config.topology().degenerate());

  // Serial ground truth: access() one reference at a time.
  cachesim::Hierarchy serial(config);
  std::vector<std::vector<cachesim::MemRef>> traces;
  std::vector<std::vector<cachesim::MemAccessResult>> want(config.num_cores);
  for (std::size_t core = 0; core < config.num_cores; ++core) {
    traces.push_back(random_trace(200 + core, 3000));
    for (const auto& ref : traces[core]) {
      want[core].push_back(serial.access(core, ref.addr, ref.is_write));
    }
  }

  for (const std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{64},
                                  std::size_t{1000}}) {
    cachesim::Hierarchy batched(config);
    for (std::size_t core = 0; core < config.num_cores; ++core) {
      const auto& trace = traces[core];
      std::vector<cachesim::MemAccessResult> got(trace.size());
      cachesim::BatchSummary total;
      for (std::size_t off = 0; off < trace.size(); off += chunk) {
        const std::size_t n = std::min(chunk, trace.size() - off);
        const cachesim::BatchSummary s =
            batched.access_batch(core, trace.data() + off, n, got.data() + off);
        total.accesses += s.accesses;
        total.cycles += s.cycles;
        total.l1_hits += s.l1_hits;
        total.l2_hits += s.l2_hits;
        total.l3_hits += s.l3_hits;
        total.tlb_hits += s.tlb_hits;
        total.stream_prefetched += s.stream_prefetched;
      }
      // Per-access results are bit-identical to the serial replay, and the
      // summary is exactly their fold.
      cachesim::BatchSummary expect;
      expect.accesses = trace.size();
      for (std::size_t i = 0; i < trace.size(); ++i) {
        expect_mem_result_eq(got[i], want[core][i], i);
        expect.cycles += want[core][i].cycles;
        expect.l1_hits += want[core][i].l1_hit;
        expect.l2_hits += want[core][i].l2_hit;
        expect.l3_hits += want[core][i].l3_hit;
        expect.tlb_hits += want[core][i].tlb_hit;
        expect.stream_prefetched += want[core][i].stream_prefetched;
      }
      EXPECT_EQ(total, expect) << "chunk " << chunk << " core " << core;
    }
    // End state agrees level by level, not just access by access.
    for (const char* level : {"l1", "l2", "l3"}) {
      EXPECT_EQ(batched.level_stats(level), serial.level_stats(level))
          << "chunk " << chunk << " level " << level;
    }
  }
}

// --- topology matrix --------------------------------------------------------
// One trace, three machine shapes. Registered under the "topology-matrix"
// ctest label (tests/CMakeLists.txt) and run as a dedicated CI step.

/// Flow-conservation invariants every topology must satisfy: each level's
/// accesses equal the level above's misses, hits + misses = accesses.
void expect_level_flow_conservation(cachesim::Hierarchy& h) {
  const cachesim::LevelStats l1 = h.level_stats("l1");
  const cachesim::LevelStats l2 = h.level_stats("l2");
  const cachesim::LevelStats l3 = h.level_stats("l3");
  EXPECT_EQ(l1.hits + l1.misses, l1.accesses);
  EXPECT_EQ(l2.hits + l2.misses, l2.accesses);
  EXPECT_EQ(l2.accesses, l1.misses) << "every L1 miss makes exactly one L2 access";
  if (h.has_l3()) {
    EXPECT_EQ(l3.hits + l3.misses, l3.accesses);
    EXPECT_EQ(l3.accesses, l2.misses) << "every L2 miss makes exactly one L3 access";
  } else {
    EXPECT_EQ(l3, cachesim::LevelStats{}) << "no L3 means empty L3 stats";
  }
}

void run_topology_matrix_case(const cachesim::HierarchyConfig& config, std::uint64_t seed) {
  cachesim::Hierarchy a(config);
  cachesim::Hierarchy b(config);
  const std::vector<cachesim::MemRef> trace = random_trace(seed, 4000);

  // Same seed, same trace: two instances stay bit-identical (the RNG-bearing
  // Random/Srrip policies and all counters included), whether driven
  // serially or batched.
  for (std::size_t core = 0; core < config.num_cores; ++core) {
    cachesim::BatchSummary sa;
    for (const auto& ref : trace) {
      const auto r = a.access(core, ref.addr, ref.is_write);
      sa.accesses += 1;
      sa.cycles += r.cycles;
      sa.l1_hits += r.l1_hit;
      sa.l2_hits += r.l2_hit;
      sa.l3_hits += r.l3_hit;
      sa.tlb_hits += r.tlb_hit;
      sa.stream_prefetched += r.stream_prefetched;
    }
    const cachesim::BatchSummary sb = b.access_batch(core, trace.data(), trace.size());
    EXPECT_EQ(sa, sb) << "core " << core;
  }
  expect_level_flow_conservation(a);
  expect_level_flow_conservation(b);
  for (const char* level : {"l1", "l2", "l3"}) {
    EXPECT_EQ(a.level_stats(level), b.level_stats(level)) << level;
  }
}

TEST(TopologyMatrix, TwoLevelDegenerate) {
  run_topology_matrix_case(tiny_shared_config(), 301);
}

TEST(TopologyMatrix, FourClustersUnderSharedL3) {
  cachesim::HierarchyConfig c;
  c.num_cores = 8;
  c.l2_clusters = 4;
  c.l1 = {1024, 2, 64};
  c.l2 = {4 * 1024, 4, 64};
  c.l3 = cachesim::CacheGeometry{32 * 1024, 16, 64};
  run_topology_matrix_case(c, 302);
  // Per-cluster signature hardware: each cluster L2 carries its own unit
  // with cluster-local core slots.
  cachesim::Hierarchy h(c);
  EXPECT_EQ(h.num_clusters(), 4u);
  ASSERT_NE(h.filter_for_core(7), nullptr);
  EXPECT_NE(h.filter_for_core(0), h.filter_for_core(7));
  EXPECT_EQ(h.filter_for_core(0)->num_cores(), 2u);
}

TEST(TopologyMatrix, Manycore64PartitionedL3) {
  cachesim::HierarchyConfig c;
  c.num_cores = 64;
  c.l2_clusters = 8;
  c.l1 = {1024, 2, 64};
  c.l2 = {4 * 1024, 4, 64};
  c.l3 = cachesim::CacheGeometry{64 * 1024, 16, 64};
  c.l3_way_partition.ways_per_group = {2, 2, 2, 2, 2, 2, 2, 2};
  run_topology_matrix_case(c, 303);
}

TEST(TopologyMatrix, InclusiveL3BackInvalidatesClusterL2sAndL1s) {
  // Direct inclusion probe: saturate one L3 set from cluster 1 and verify a
  // line cluster 0 cached in its L2+L1 dies with its L3 copy.
  cachesim::HierarchyConfig c = three_level_config();
  cachesim::Hierarchy h(c);
  const cachesim::Addr victim = 0;
  h.access(0, victim, false);
  ASSERT_TRUE(h.l1(0).probe(0));
  ASSERT_TRUE(h.cluster_l2(0).probe(0));
  ASSERT_TRUE(h.l3().probe(0));

  // L3: 32 sets x 8 ways. Same-set lines stride 32 lines = 2048 bytes; the
  // aliases miss cluster 1's tiny L2 (16 sets) often enough to reach the L3
  // and displace set 0's ways.
  std::size_t spilled = 0;
  for (std::uint64_t i = 1; spilled < 64 && i < 4096; ++i) {
    h.access(2, victim + i * 2048, false);
    ++spilled;
  }
  EXPECT_FALSE(h.l3().probe(0)) << "victim line should have been displaced from the L3";
  EXPECT_FALSE(h.cluster_l2(0).probe(0)) << "inclusion: L3 eviction must purge the cluster L2";
  EXPECT_FALSE(h.l1(0).probe(0)) << "inclusion: L3 eviction must purge the L1";
}

TEST(TopologyMatrix, DegenerateSeedsAndL2SeedAreUnchanged) {
  // The L2 seed formula (seed + 977 * cluster) must collapse to the legacy
  // seed + 0 on degenerate shapes; a Random-replacement L2 makes any seed
  // drift visible as a different eviction sequence.
  cachesim::HierarchyConfig c = tiny_shared_config();
  c.l2_replacement = cachesim::ReplacementKind::Random;
  c.seed = 77;
  cachesim::Hierarchy h(c);
  cachesim::Cache legacy(c.l2, cachesim::ReplacementKind::Random, c.num_cores, c.seed);
  util::Rng rng(404);
  for (std::size_t i = 0; i < 4000; ++i) {
    const cachesim::LineAddr line = rng.next_below(512);
    const auto core = static_cast<std::size_t>(rng.next_below(2));
    // Drive the L2s directly so the comparison isolates the seed path.
    const auto got = h.l2().access(line, false, core);
    const auto want = legacy.access(line, false, core);
    ASSERT_EQ(got.way, want.way) << "access " << i;
    ASSERT_EQ(got.victim_line, want.victim_line) << "access " << i;
  }
}

}  // namespace
}  // namespace symbiosis
