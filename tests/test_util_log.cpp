// Logger tests: parse_log_level's documented mapping, SYMBIOSIS_LOG
// environment initialization, and level filtering observed through a
// redirected log stream.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/log.hpp"

namespace symbiosis::util {
namespace {

/// Restore the global level, stream, and SYMBIOSIS_LOG around each test.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_ = log_level();
    ::unsetenv("SYMBIOSIS_LOG");
  }
  void TearDown() override {
    set_log_level(previous_);
    set_log_stream(nullptr);
    ::unsetenv("SYMBIOSIS_LOG");
  }

 private:
  LogLevel previous_ = LogLevel::Info;
};

TEST_F(LogTest, ParseLogLevelMapsEveryDocumentedName) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  // Unknown names fall back to Info, as documented.
  EXPECT_EQ(parse_log_level("verbose"), LogLevel::Info);
  EXPECT_EQ(parse_log_level(""), LogLevel::Info);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::Debug) << "case-insensitive";
}

TEST_F(LogTest, InitFromEnvAppliesTheVariable) {
  set_log_level(LogLevel::Warn);
  ::setenv("SYMBIOSIS_LOG", "debug", 1);
  EXPECT_EQ(init_log_from_env(), LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
}

TEST_F(LogTest, InitFromEnvLeavesLevelWhenUnsetOrEmpty) {
  set_log_level(LogLevel::Error);
  EXPECT_EQ(init_log_from_env(), LogLevel::Error) << "unset leaves the level untouched";
  EXPECT_EQ(log_level(), LogLevel::Error);
  ::setenv("SYMBIOSIS_LOG", "", 1);
  EXPECT_EQ(init_log_from_env(), LogLevel::Error) << "empty behaves like unset";
  EXPECT_EQ(log_level(), LogLevel::Error);
}

TEST_F(LogTest, InitFromEnvUnknownValueFallsBackToInfo) {
  set_log_level(LogLevel::Error);
  ::setenv("SYMBIOSIS_LOG", "chatty", 1);
  EXPECT_EQ(init_log_from_env(), LogLevel::Info);
  EXPECT_EQ(log_level(), LogLevel::Info);
}

TEST_F(LogTest, LevelFiltersMessages) {
  std::FILE* capture = std::tmpfile();
  ASSERT_NE(capture, nullptr);
  set_log_stream(capture);
  set_log_level(LogLevel::Warn);

  SYMBIOSIS_LOG_DEBUG("dropped %d", 1);
  SYMBIOSIS_LOG_INFO("dropped %d", 2);
  SYMBIOSIS_LOG_WARN("kept %d", 3);
  SYMBIOSIS_LOG_ERROR("kept %d", 4);

  set_log_level(LogLevel::Off);
  SYMBIOSIS_LOG_ERROR("dropped even at error %d", 5);

  set_log_stream(nullptr);
  std::fflush(capture);
  std::rewind(capture);
  std::string captured;
  char buffer[256];
  while (std::fgets(buffer, sizeof buffer, capture)) captured += buffer;
  std::fclose(capture);

  EXPECT_EQ(captured.find("dropped"), std::string::npos) << captured;
  EXPECT_NE(captured.find("kept 3"), std::string::npos) << captured;
  EXPECT_NE(captured.find("kept 4"), std::string::npos) << captured;
}

}  // namespace
}  // namespace symbiosis::util
