#include "workload/parsec_model.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace symbiosis::workload {
namespace {

TEST(ParsecPool, HasEightDistinctPrograms) {
  const auto& pool = parsec_pool();
  EXPECT_EQ(pool.size(), 8u);
  EXPECT_EQ(std::set<std::string>(pool.begin(), pool.end()).size(), 8u);
  EXPECT_TRUE(std::count(pool.begin(), pool.end(), "ferret"));
}

class ParsecModelTest : public testing::TestWithParam<std::string> {};

TEST_P(ParsecModelTest, SpecIsWellFormed) {
  const MtBenchmarkSpec spec = make_parsec_benchmark(GetParam());
  EXPECT_EQ(spec.name, GetParam());
  EXPECT_EQ(spec.threads, 4u);  // the paper runs 4 threads per app
  EXPECT_GT(spec.refs_per_thread, 0u);
  EXPECT_GE(spec.share_prob, 0.0);
  EXPECT_LE(spec.share_prob, 1.0);
  EXPECT_GT(spec.footprint_bytes(), 0u);
}

TEST_P(ParsecModelTest, ThreadsShareTheSharedRegion) {
  const MtBenchmarkSpec spec = make_parsec_benchmark(GetParam());
  const Addr base = Addr{9} << 40;
  auto threads = make_parsec_threads(spec, base, util::Rng{1});
  ASSERT_EQ(threads.size(), 4u);

  // Collect per-thread address sets over the shared region only.
  const Addr shared_end = base + spec.shared_pattern.region_bytes;
  std::vector<std::set<Addr>> shared_touched(4);
  std::vector<std::set<Addr>> private_touched(4);
  for (std::size_t t = 0; t < 4; ++t) {
    for (int i = 0; i < 8000; ++i) {
      const Step step = threads[t]->next();
      if (step.addr < shared_end) {
        shared_touched[t].insert(step.addr);
      } else {
        private_touched[t].insert(step.addr);
      }
    }
  }
  // Shared regions overlap across threads (if the model shares at all).
  if (spec.share_prob > 0.05) {
    std::set<Addr> intersection;
    for (const Addr a : shared_touched[0]) {
      if (shared_touched[1].count(a)) intersection.insert(a);
    }
    EXPECT_FALSE(intersection.empty()) << "threads never touched common lines";
  }
  // Private regions are pairwise disjoint.
  for (std::size_t t1 = 0; t1 < 4; ++t1) {
    for (std::size_t t2 = t1 + 1; t2 < 4; ++t2) {
      for (const Addr a : private_touched[t1]) {
        ASSERT_EQ(private_touched[t2].count(a), 0u)
            << "thread privates overlap at " << a;
      }
    }
  }
}

TEST_P(ParsecModelTest, ThreadsCompleteIndependently) {
  MtBenchmarkSpec spec = make_parsec_benchmark(GetParam());
  spec.refs_per_thread = 100;
  auto threads = make_parsec_threads(spec, 0, util::Rng{2});
  for (auto& thread : threads) {
    while (!thread->complete()) (void)thread->next();
    EXPECT_EQ(thread->refs_issued(), 100u);
    thread->restart();
    EXPECT_EQ(thread->refs_issued(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, ParsecModelTest, testing::ValuesIn(parsec_pool()),
                         [](const auto& param_info) { return param_info.param; });

TEST(ParsecModel, ThreadNamesCarryTid) {
  const auto spec = make_parsec_benchmark("ferret");
  auto threads = make_parsec_threads(spec, 0, util::Rng{3});
  EXPECT_EQ(threads[0]->name(), "ferret.t0");
  EXPECT_EQ(threads[3]->name(), "ferret.t3");
  EXPECT_EQ(threads[2]->tid(), 2u);
}

TEST(ParsecModel, UnknownNameThrows) {
  EXPECT_THROW(make_parsec_benchmark("doom3"), std::invalid_argument);
}

TEST(ParsecModel, TidOutOfRangeThrows) {
  const auto spec = make_parsec_benchmark("dedup");
  EXPECT_THROW(ParsecThreadStream(spec, 0, 4, util::Rng{4}), std::invalid_argument);
}

TEST(ParsecModel, FerretIsTheCacheSensitiveOne) {
  // Fig 12's top improver needs a shared working set comparable to the L2.
  ScaleConfig scale;
  const auto ferret = make_parsec_benchmark("ferret", scale);
  const auto blackscholes = make_parsec_benchmark("blackscholes", scale);
  EXPECT_GE(ferret.shared_pattern.region_bytes, scale.l2_bytes / 2);
  EXPECT_LT(blackscholes.shared_pattern.region_bytes, scale.l2_bytes / 8);
}

}  // namespace
}  // namespace symbiosis::workload
