#include "sched/policy.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sched/interference_graph.hpp"
#include "sched/weight_sort.hpp"

namespace symbiosis::sched {
namespace {

TaskProfile profile(std::size_t index, double weight, std::vector<double> symbiosis,
                    std::size_t last_core = 0, double mpki = 0.0) {
  TaskProfile p;
  p.task_index = index;
  p.pid = index;
  p.name = "p" + std::to_string(index);
  p.occupancy_weight = weight;
  p.symbiosis_per_core = std::move(symbiosis);
  p.last_core = last_core;
  p.l2_misses_per_kilo_instr = mpki;
  return p;
}

TEST(WeightSort, GroupsHeaviestTogether) {
  // §3.3.1: sorted by weight, chunked. Weights 40,10,35,5 -> {0,2} {1,3}.
  std::vector<TaskProfile> profiles = {
      profile(0, 40, {0, 0}), profile(1, 10, {0, 0}),
      profile(2, 35, {0, 0}), profile(3, 5, {0, 0}),
  };
  WeightSortAllocator alloc;
  const Allocation result = alloc.allocate(profiles, 2);
  EXPECT_EQ(result.group_of[0], result.group_of[2]);
  EXPECT_EQ(result.group_of[1], result.group_of[3]);
  EXPECT_NE(result.group_of[0], result.group_of[1]);
}

TEST(WeightSort, CeilGroupSize) {
  // 5 tasks / 2 cores: group size ⌈5/2⌉ = 3; top-3 weights share a core.
  std::vector<TaskProfile> profiles = {
      profile(0, 50, {0, 0}), profile(1, 40, {0, 0}), profile(2, 30, {0, 0}),
      profile(3, 20, {0, 0}), profile(4, 10, {0, 0}),
  };
  const Allocation result = WeightSortAllocator().allocate(profiles, 2);
  EXPECT_EQ(result.members(0).size(), 3u);
  EXPECT_EQ(result.group_of[0], result.group_of[1]);
  EXPECT_EQ(result.group_of[1], result.group_of[2]);
}

TEST(WeightSort, StableOnTies) {
  std::vector<TaskProfile> profiles = {
      profile(0, 10, {0, 0}), profile(1, 10, {0, 0}),
      profile(2, 10, {0, 0}), profile(3, 10, {0, 0}),
  };
  const Allocation result = WeightSortAllocator().allocate(profiles, 2);
  // Stable sort keeps index order: {0,1} and {2,3}.
  EXPECT_EQ(result.group_of[0], result.group_of[1]);
  EXPECT_EQ(result.group_of[2], result.group_of[3]);
}

TEST(DefaultAllocator, RoundRobins) {
  std::vector<TaskProfile> profiles(5);
  const Allocation result = DefaultAllocator().allocate(profiles, 2);
  EXPECT_EQ(result.group_of, (std::vector<std::size_t>{0, 1, 0, 1, 0}));
}

TEST(RandomAllocator, BalancedAndSeeded) {
  std::vector<TaskProfile> profiles(8);
  RandomAllocator a(5), b(5), c(6);
  const Allocation ra = a.allocate(profiles, 2);
  EXPECT_EQ(ra.members(0).size(), 4u);
  EXPECT_EQ(ra.group_of, b.allocate(profiles, 2).group_of);  // same seed
  // Different seeds should (almost surely) differ on 8 tasks.
  EXPECT_NE(ra.group_of, c.allocate(profiles, 2).group_of);
}

TEST(MissRateAllocator, GroupsByMpki) {
  std::vector<TaskProfile> profiles = {
      profile(0, 0, {0, 0}, 0, 9.0), profile(1, 0, {0, 0}, 0, 0.1),
      profile(2, 0, {0, 0}, 0, 7.0), profile(3, 0, {0, 0}, 0, 0.2),
  };
  const Allocation result = MissRateAllocator().allocate(profiles, 2);
  EXPECT_EQ(result.group_of[0], result.group_of[2]);  // the two missers
  EXPECT_EQ(result.group_of[1], result.group_of[3]);
}

TEST(InterferenceGraph, ConsolidationMatchesHandComputation) {
  // P0 on C0, P1 on C1. Edge(P0,P1) = I_{P0,C1} + I_{P1,C0}
  //   = 1/sym(P0,C1) + 1/sym(P1,C0) = 1/50 + 1/25.
  std::vector<TaskProfile> profiles = {
      profile(0, 10, {100, 50}, 0),
      profile(1, 20, {25, 80}, 1),
  };
  const SymMatrix plain = build_interference_graph(profiles, false);
  EXPECT_NEAR(plain.at(0, 1), 1.0 / 50 + 1.0 / 25, 1e-12);
  // §3.3.3 weighting: W0*I01 + W1*I10.
  const SymMatrix weighted = build_interference_graph(profiles, true);
  EXPECT_NEAR(weighted.at(0, 1), 10.0 / 50 + 20.0 / 25, 1e-12);
}

TEST(InterferenceGraph, LowSymbiosisClampsToMaxInterference) {
  std::vector<TaskProfile> profiles = {
      profile(0, 10, {0.5, 0.0}, 0),
      profile(1, 10, {0.2, 0.3}, 1),
  };
  const SymMatrix w = build_interference_graph(profiles, false);
  EXPECT_NEAR(w.at(0, 1), 2.0, 1e-12);  // both directions clamp at 1.0
}

TEST(GraphAllocators, GroupHostilePairs) {
  // P0/P1 mutually hostile (low symbiosis with each other's cores), P2/P3
  // benign: both graph algorithms must co-locate the hostile pair.
  std::vector<TaskProfile> profiles = {
      profile(0, 1000, {3000, 5}, 0),  // hates core 1 (where P1 lives)
      profile(1, 900, {5, 3000}, 1),   // hates core 0... (symmetrised below)
      profile(2, 50, {3000, 3000}, 0),
      profile(3, 40, {3000, 3000}, 1),
  };
  // Fix: P1's hostility must target core 0 (P0's core).
  profiles[1].symbiosis_per_core = {5, 3000};
  profiles[1].last_core = 1;
  // P0 on core 0 is hostile to core 1: symbiosis {3000, 5}.
  for (const char* name : {"graph", "weighted-graph"}) {
    const Allocation result = make_allocator(name)->allocate(profiles, 2);
    EXPECT_EQ(result.group_of[0], result.group_of[1]) << name;
    EXPECT_EQ(result.group_of[2], result.group_of[3]) << name;
  }
}

TEST(WeightedGraph, WeightSuppressesTinyProcesses) {
  // §3.3.3's motivation: a near-empty process with low symbiosis (because
  // its RBV is tiny) must NOT be treated as a heavy interferer.
  // P1 is alone on core 0, so P2's hostility toward core 0 unambiguously
  // targets P1 (with several processes per core the paper's per-core
  // attribution makes same-core processes interchangeable).
  std::vector<TaskProfile> tiny_noise = {
      profile(0, 2, {3, 3}, 1),          // tiny RBV -> tiny symbiosis everywhere
      profile(1, 1000, {2000, 40}, 0),   // on core 0, hates core 1 (P2's)
      profile(2, 900, {40, 2000}, 1),    // on core 1, hates core 0 (P1's)
      profile(3, 3, {2500, 2500}, 1),
  };
  const Allocation weighted = WeightedGraphAllocator().allocate(tiny_noise, 2);
  // The two heavy mutually-hostile processes pair up despite the noisy tiny
  // process having the numerically highest raw interference.
  EXPECT_EQ(weighted.group_of[1], weighted.group_of[2]);
}

TEST(Registry, KnownNamesAndErrors) {
  for (const char* name : {"default", "random", "miss-rate", "weight-sort", "graph",
                           "weighted-graph", "multithread"}) {
    EXPECT_EQ(make_allocator(name)->name(), name);
  }
  EXPECT_THROW(make_allocator("oracle"), std::invalid_argument);
}

TEST(Policies, Validation) {
  std::vector<TaskProfile> profiles(2);
  EXPECT_THROW(WeightSortAllocator().allocate(profiles, 0), std::invalid_argument);
  EXPECT_THROW(InterferenceGraphAllocator().allocate(profiles, 3), std::invalid_argument);
  EXPECT_THROW(DefaultAllocator().allocate(profiles, 0), std::invalid_argument);
}

}  // namespace
}  // namespace symbiosis::sched
