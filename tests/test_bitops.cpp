#include "util/bitops.hpp"

#include <gtest/gtest.h>

namespace symbiosis::util {
namespace {

TEST(Bitops, Popcount64) {
  EXPECT_EQ(popcount64(0), 0);
  EXPECT_EQ(popcount64(1), 1);
  EXPECT_EQ(popcount64(~0ull), 64);
  EXPECT_EQ(popcount64(0xf0f0f0f0f0f0f0f0ull), 32);
}

TEST(Bitops, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 63));
  EXPECT_FALSE(is_pow2((1ull << 63) + 1));
}

TEST(Bitops, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4096), 12u);
  EXPECT_EQ(floor_log2(~0ull), 63u);
}

TEST(Bitops, RoundUpPow2) {
  EXPECT_EQ(round_up_pow2(0), 1ull);
  EXPECT_EQ(round_up_pow2(1), 1ull);
  EXPECT_EQ(round_up_pow2(3), 4ull);
  EXPECT_EQ(round_up_pow2(4), 4ull);
  EXPECT_EQ(round_up_pow2(4097), 8192ull);
}

TEST(Bitops, ReverseBits) {
  EXPECT_EQ(reverse_bits(0b001, 3), 0b100ull);
  EXPECT_EQ(reverse_bits(0b110, 3), 0b011ull);
  // Double reversal is the identity for any width.
  for (unsigned width = 1; width <= 16; ++width) {
    const std::uint64_t x = 0xdeadbeefcafef00dull & low_mask(width);
    EXPECT_EQ(reverse_bits(reverse_bits(x, width), width), x) << width;
  }
}

TEST(Bitops, BitsExtraction) {
  EXPECT_EQ(bits(0xff00, 8, 8), 0xffull);
  EXPECT_EQ(bits(0xff00, 0, 8), 0x00ull);
  EXPECT_EQ(bits(~0ull, 0, 64), ~0ull);
  EXPECT_EQ(bits(~0ull, 60, 64), 0xfull);
}

TEST(Bitops, LowMask) {
  EXPECT_EQ(low_mask(0), 0ull);
  EXPECT_EQ(low_mask(1), 1ull);
  EXPECT_EQ(low_mask(12), 0xfffull);
  EXPECT_EQ(low_mask(64), ~0ull);
}

}  // namespace
}  // namespace symbiosis::util
