// Json document-model tests: dump/parse round-trips (exact 64-bit integers,
// round-trip doubles, escapes), equality semantics, strict-parser errors,
// and the json_at_path / json_diff helpers behind trace_tools.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "obs/json.hpp"

namespace symbiosis::obs {
namespace {

Json sample_report() {
  Json mappings = Json::array();
  mappings.push_back(Json("0,1|2,3"));
  mappings.push_back(Json("0,2|1,3"));
  Json config = Json::object();
  config.set("seed", std::uint64_t{42}).set("allocator", "weighted-graph");
  Json root = Json::object();
  root.set("schema", "symbiosis.run_report")
      .set("config", std::move(config))
      .set("mappings", std::move(mappings))
      .set("improvement", 0.22);
  return root;
}

TEST(Json, U64RoundTripsExactly) {
  const std::uint64_t big = std::numeric_limits<std::uint64_t>::max();
  const Json j(big);
  EXPECT_EQ(j.dump(), "18446744073709551615");
  EXPECT_EQ(Json::parse(j.dump()).as_u64(), big);
}

TEST(Json, I64RoundTripsExactly) {
  const std::int64_t low = std::numeric_limits<std::int64_t>::min();
  const Json j(low);
  EXPECT_EQ(j.dump(), "-9223372036854775808");
  EXPECT_EQ(Json::parse(j.dump()).as_i64(), low);
}

TEST(Json, DoubleRoundTripsAtFullPrecision) {
  for (const double v : {0.1, 1.0 / 3.0, 1e300, -2.5e-10, 1234.5678}) {
    const Json parsed = Json::parse(Json(v).dump());
    EXPECT_DOUBLE_EQ(parsed.as_double(), v);
  }
}

TEST(Json, StringEscapeRoundTrip) {
  const std::string nasty = "a\"b\\c\nd\te\x01f";
  const Json parsed = Json::parse(Json(nasty).dump());
  EXPECT_EQ(parsed.as_string(), nasty);
}

TEST(Json, NestedDocumentRoundTripPreservesOrderAndValues) {
  const Json root = sample_report();
  const Json compact = Json::parse(root.dump());
  const Json pretty = Json::parse(root.dump(2));
  EXPECT_EQ(root, compact);
  EXPECT_EQ(root, pretty);
  // Insertion order survives the round trip (diff stability depends on it).
  const auto& members = compact.as_object();
  ASSERT_EQ(members.size(), 4u);
  EXPECT_EQ(members[0].first, "schema");
  EXPECT_EQ(members[3].first, "improvement");
}

TEST(Json, EqualityWidensIntegersButNotDoubles) {
  EXPECT_EQ(Json(std::uint64_t{7}), Json(std::int64_t{7}));
  EXPECT_EQ(Json(std::int64_t{-1}), Json(std::int64_t{-1}));
  EXPECT_NE(Json(std::uint64_t{7}), Json(7.0)) << "integer never equals double kind";
  EXPECT_NE(Json(std::int64_t{-1}),
            Json(std::uint64_t{std::numeric_limits<std::uint64_t>::max()}))
      << "no modular wrap-around across signedness";
  EXPECT_NE(Json(true), Json(std::int64_t{1}));
  EXPECT_NE(Json(nullptr), Json(std::int64_t{0}));
}

TEST(Json, AsU64RejectsNegativesAndNonNumbers) {
  EXPECT_THROW((void)Json(std::int64_t{-1}).as_u64(), JsonError);
  EXPECT_THROW((void)Json("7").as_u64(), JsonError);
  EXPECT_EQ(Json(std::int64_t{7}).as_u64(), 7u);
}

TEST(Json, ParseRejectsMalformedDocuments) {
  EXPECT_THROW((void)Json::parse(""), JsonError);
  EXPECT_THROW((void)Json::parse("{\"a\": 1,}"), JsonError);
  EXPECT_THROW((void)Json::parse("{\"a\": 1} trailing"), JsonError);
  EXPECT_THROW((void)Json::parse("{\"a\": 1, \"a\": 2}"), JsonError) << "duplicate keys";
  EXPECT_THROW((void)Json::parse("[1, 2"), JsonError);
  EXPECT_THROW((void)Json::parse("nan"), JsonError);
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  EXPECT_THROW((void)Json::parse(deep), JsonError) << "nesting depth limit";
}

TEST(Json, AtThrowsWithKeyInMessage) {
  const Json root = sample_report();
  EXPECT_NO_THROW((void)root.at("schema"));
  try {
    (void)root.at("missing_key");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("missing_key"), std::string::npos);
  }
}

TEST(JsonPath, WalksObjectsAndArrays) {
  const Json root = sample_report();
  const Json* seed = json_at_path(root, "config.seed");
  ASSERT_NE(seed, nullptr);
  EXPECT_EQ(seed->as_u64(), 42u);
  const Json* second = json_at_path(root, "mappings.1");
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->as_string(), "0,2|1,3");
  EXPECT_EQ(json_at_path(root, "config.nope"), nullptr);
  EXPECT_EQ(json_at_path(root, "mappings.7"), nullptr);
  EXPECT_EQ(json_at_path(root, "schema.deeper"), nullptr);
}

TEST(JsonDiff, ReportsEveryDifferenceByPath) {
  const Json a = sample_report();
  Json b = sample_report();
  b.set("improvement", 0.54);
  Json config = Json::object();
  config.set("seed", std::uint64_t{43}).set("allocator", "weighted-graph");
  b.set("config", std::move(config));

  const auto diffs = json_diff(a, b);
  ASSERT_EQ(diffs.size(), 2u);
  // Each entry names the differing path.
  EXPECT_NE(diffs[0].find("config.seed"), std::string::npos);
  EXPECT_NE(diffs[1].find("improvement"), std::string::npos);

  EXPECT_TRUE(json_diff(a, sample_report()).empty());
}

TEST(JsonDiff, IgnorePrefixesSuppressSubtrees) {
  const Json a = sample_report();
  Json b = sample_report();
  Json config = Json::object();
  config.set("seed", std::uint64_t{999}).set("allocator", "naive");
  b.set("config", std::move(config));

  EXPECT_EQ(json_diff(a, b).size(), 2u);
  EXPECT_TRUE(json_diff(a, b, {"config"}).empty());
  EXPECT_EQ(json_diff(a, b, {"config.seed"}).size(), 1u);
}

TEST(JsonDiff, StructuralMismatchesAreOneEntry) {
  Json a = Json::object();
  a.set("x", Json::array());
  Json b = Json::object();
  b.set("x", std::int64_t{1});
  EXPECT_EQ(json_diff(a, b).size(), 1u);

  Json c = Json::object();
  c.set("x", Json::array());
  c.set("extra", true);
  const auto diffs = json_diff(a, c);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_NE(diffs[0].find("extra"), std::string::npos);
}

}  // namespace
}  // namespace symbiosis::obs
