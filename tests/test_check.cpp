// test_check.cpp — the SYM_CHECK invariant framework (util/check.hpp):
// macro semantics, the per-category violation registry, handler modes
// (throw, log-and-count, abort death test), and a TSan-targeted stress of
// ThreadPool::parallel_for exception propagation under concurrent checks.
#include "util/check.hpp"

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "util/log.hpp"
#include "util/threadpool.hpp"

namespace {

using symbiosis::util::check_mode;
using symbiosis::util::check_violation_count;
using symbiosis::util::check_violation_snapshot;
using symbiosis::util::check_violation_total;
using symbiosis::util::CheckError;
using symbiosis::util::CheckMode;
using symbiosis::util::reset_check_violations;
using symbiosis::util::ScopedCheckMode;
using symbiosis::util::ThreadPool;

class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_check_violations(); }
  void TearDown() override { reset_check_violations(); }
};

TEST_F(CheckTest, PassingChecksAreSilent) {
  const ScopedCheckMode guard(CheckMode::Throw);
  const std::size_t i = 3, n = 10;
  SYM_CHECK(i < n);
  SYM_CHECK(i < n, "test.named") << "never rendered";
  SYM_CHECK_EQ(i, i);
  SYM_CHECK_LT(i, n);
  SYM_CHECK_LE(n, n);
  SYM_CHECK_BOUNDS(i, n);
  EXPECT_EQ(check_violation_total(), 0u);
}

TEST_F(CheckTest, ThrowModeThrowsCheckErrorWithContext) {
  const ScopedCheckMode guard(CheckMode::Throw);
  const int x = 7;
  try {
    SYM_CHECK(x == 8, "test.ctx") << "x was " << x;
    FAIL() << "SYM_CHECK did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("x == 8"), std::string::npos) << what;
    EXPECT_NE(what.find("x was 7"), std::string::npos) << what;
    EXPECT_NE(what.find("[test.ctx]"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check.cpp"), std::string::npos) << what;
  }
}

TEST_F(CheckTest, BinaryFormsRenderBothOperands) {
  const ScopedCheckMode guard(CheckMode::Throw);
  const std::size_t a = 3, b = 5;
  try {
    SYM_CHECK_EQ(a, b, "test.binary");
    FAIL() << "SYM_CHECK_EQ did not throw";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("a == b"), std::string::npos) << what;
    EXPECT_NE(what.find("(3 vs 5)"), std::string::npos) << what;
  }
  EXPECT_THROW(SYM_CHECK_LT(b, a), CheckError);
  EXPECT_THROW(SYM_CHECK_LE(b, a), CheckError);
  EXPECT_THROW(SYM_CHECK_BOUNDS(b, a), CheckError);
}

TEST_F(CheckTest, OperandsAreEvaluatedExactlyOnce) {
  const ScopedCheckMode guard(CheckMode::Throw);
  int evals = 0;
  auto next = [&evals] { return ++evals; };
  SYM_CHECK_LE(next(), 1, "test.single-eval");
  EXPECT_EQ(evals, 1);
  evals = 0;
  EXPECT_THROW(SYM_CHECK_LT(next(), 0, "test.single-eval"), CheckError);
  EXPECT_EQ(evals, 1);
}

TEST_F(CheckTest, RegistryCountsPerCategory) {
  const ScopedCheckMode guard(CheckMode::LogAndCount);
  const auto old_level = symbiosis::util::log_level();
  symbiosis::util::set_log_level(symbiosis::util::LogLevel::Off);

  SYM_CHECK(false, "test.cat-a");
  SYM_CHECK(false, "test.cat-a");
  SYM_CHECK_EQ(1, 2, "test.cat-b");
  SYM_CHECK(false);  // default category

  EXPECT_EQ(check_violation_count("test.cat-a"), 2u);
  EXPECT_EQ(check_violation_count("test.cat-b"), 1u);
  EXPECT_EQ(check_violation_count("check"), 1u);
  EXPECT_EQ(check_violation_count("test.never-fired"), 0u);
  EXPECT_EQ(check_violation_total(), 4u);

  bool saw_a = false;
  for (const auto& [category, count] : check_violation_snapshot()) {
    if (category == "test.cat-a") {
      saw_a = true;
      EXPECT_EQ(count, 2u);
    }
  }
  EXPECT_TRUE(saw_a);

  reset_check_violations();
  EXPECT_EQ(check_violation_total(), 0u);
  EXPECT_EQ(check_violation_count("test.cat-a"), 0u);
  symbiosis::util::set_log_level(old_level);
}

TEST_F(CheckTest, LogAndCountModeContinuesExecution) {
  const ScopedCheckMode guard(CheckMode::LogAndCount);
  const auto old_level = symbiosis::util::log_level();
  symbiosis::util::set_log_level(symbiosis::util::LogLevel::Off);
  bool reached = false;
  SYM_CHECK(false, "test.soak") << "soak-mode violation";
  reached = true;
  EXPECT_TRUE(reached);
  EXPECT_EQ(check_violation_count("test.soak"), 1u);
  symbiosis::util::set_log_level(old_level);
}

TEST_F(CheckTest, ThrowingChecksStillTickTheRegistry) {
  const ScopedCheckMode guard(CheckMode::Throw);
  EXPECT_THROW(SYM_CHECK(false, "test.pre-throw"), CheckError);
  EXPECT_EQ(check_violation_count("test.pre-throw"), 1u);
}

TEST_F(CheckTest, ScopedCheckModeRestoresPreviousMode) {
  const CheckMode before = check_mode();
  {
    const ScopedCheckMode guard(CheckMode::LogAndCount);
    EXPECT_EQ(check_mode(), CheckMode::LogAndCount);
    {
      const ScopedCheckMode inner(CheckMode::Throw);
      EXPECT_EQ(check_mode(), CheckMode::Throw);
    }
    EXPECT_EQ(check_mode(), CheckMode::LogAndCount);
  }
  EXPECT_EQ(check_mode(), before);
}

TEST_F(CheckTest, DanglingElseSafety) {
  const ScopedCheckMode guard(CheckMode::Throw);
  bool else_branch = false;
  if (true)
    SYM_CHECK(true, "test.dangling");
  else
    else_branch = true;
  EXPECT_FALSE(else_branch);
}

#if SYMBIOSIS_DCHECK_ENABLED
TEST_F(CheckTest, DchecksActiveInThisBuild) {
  const ScopedCheckMode guard(CheckMode::Throw);
  EXPECT_THROW(SYM_DCHECK(false, "test.dcheck"), CheckError);
  EXPECT_THROW(SYM_DCHECK_EQ(1, 2, "test.dcheck"), CheckError);
  EXPECT_THROW(SYM_DCHECK_LT(2, 1, "test.dcheck"), CheckError);
  EXPECT_THROW(SYM_DCHECK_LE(2, 1, "test.dcheck"), CheckError);
  EXPECT_THROW(SYM_DCHECK_BOUNDS(5, 5, "test.dcheck"), CheckError);
  EXPECT_EQ(check_violation_count("test.dcheck"), 5u);
}
#else
TEST_F(CheckTest, DchecksCompiledOutInThisBuild) {
  const ScopedCheckMode guard(CheckMode::Throw);
  int evals = 0;
  auto bump = [&evals] { return ++evals; };
  SYM_DCHECK(bump() < 0, "test.dcheck") << "never built";
  SYM_DCHECK_EQ(bump(), -1, "test.dcheck");
  SYM_DCHECK_LT(bump(), -1, "test.dcheck");
  SYM_DCHECK_LE(bump(), -1, "test.dcheck");
  SYM_DCHECK_BOUNDS(bump(), 0, "test.dcheck");
  EXPECT_EQ(evals, 0) << "disabled SYM_DCHECK must not evaluate operands";
  EXPECT_EQ(check_violation_total(), 0u);
}
#endif

// Death tests fork; ThreadSanitizer does not support running after fork in
// threaded binaries. The tests are still REGISTERED under the tsan preset —
// so all three CI presets report the same intentional total — but runtime-
// skip before the fork (a GTEST_SKIP shows up as "skipped", not as a silent
// hole in the count).
#if defined(__SANITIZE_THREAD__)
#define SYMBIOSIS_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SYMBIOSIS_TSAN_BUILD 1
#endif
#endif

constexpr bool tsan_build() noexcept {
#ifdef SYMBIOSIS_TSAN_BUILD
  return true;
#else
  return false;
#endif
}

using CheckDeathTest = CheckTest;

TEST_F(CheckDeathTest, AbortModeAborts) {
  if (tsan_build()) GTEST_SKIP() << "death tests fork; unsupported under TSan";
  const ScopedCheckMode guard(CheckMode::Abort);
  EXPECT_DEATH(SYM_CHECK(false, "test.abort") << "fatal by default",
               "SYM_CHECK failed");
}

TEST_F(CheckDeathTest, AbortMessageNamesExpressionAndCategory) {
  if (tsan_build()) GTEST_SKIP() << "death tests fork; unsupported under TSan";
  const ScopedCheckMode guard(CheckMode::Abort);
  const std::size_t idx = 9, limit = 4;
  EXPECT_DEATH(SYM_CHECK_BOUNDS(idx, limit, "test.abort-bounds"),
               "idx < limit.*\\(9 vs 4\\).*\\[test.abort-bounds\\]");
}

// --- ThreadPool stress (TSan target) --------------------------------------
// Exercises parallel_for's exception collection path under real contention:
// many tasks throwing concurrently while others run to completion. Under the
// tsan preset this validates the queue/cv/stopping_ protocol; everywhere it
// validates first-error propagation and pool reusability.

TEST(ThreadPoolStressTest, ParallelForPropagatesFirstExceptionUnderContention) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> completed{0};
    std::atomic<int> thrown{0};
    try {
      pool.parallel_for(0, 64, [&](std::size_t i) {
        if (i % 7 == 3) {
          thrown.fetch_add(1, std::memory_order_relaxed);
          throw std::runtime_error("task " + std::to_string(i) + " failed");
        }
        completed.fetch_add(1, std::memory_order_relaxed);
      });
      FAIL() << "parallel_for swallowed the task exceptions";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("failed"), std::string::npos);
    }
    // Every task ran exactly once: throwers plus completers cover the range.
    EXPECT_EQ(completed.load() + thrown.load(), 64);
    EXPECT_GT(thrown.load(), 0);
  }
}

TEST(ThreadPoolStressTest, PoolStaysUsableAfterExceptionRounds) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(0, 8, [](std::size_t) { throw std::logic_error("boom"); }),
      std::logic_error);
  std::vector<int> out(100, 0);
  pool.parallel_for(0, out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(ThreadPoolStressTest, ConcurrentViolationsCountedExactlyOnce) {
  const ScopedCheckMode guard(CheckMode::LogAndCount);
  const auto old_level = symbiosis::util::log_level();
  symbiosis::util::set_log_level(symbiosis::util::LogLevel::Off);
  reset_check_violations();

  ThreadPool pool(4);
  constexpr std::size_t kTasks = 256;
  pool.parallel_for(0, kTasks, [](std::size_t) {
    SYM_CHECK(false, "test.concurrent") << "registry contention";
  });
  EXPECT_EQ(check_violation_count("test.concurrent"), kTasks);
  EXPECT_EQ(check_violation_total(), kTasks);

  reset_check_violations();
  symbiosis::util::set_log_level(old_level);
}

}  // namespace
