// Tests for the split-CBF signature unit (§3.1), including a worked
// re-enactment of the paper's Figure 6(b) protocol.
#include "sig/filter_unit.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace symbiosis::sig {
namespace {

FilterUnitConfig small_config() {
  FilterUnitConfig c;
  c.num_cores = 2;
  c.cache_sets = 16;
  c.cache_ways = 4;  // 64 entries
  c.counter_bits = 3;
  c.hash = HashKind::Modulo;  // index == line % 64: transparent for tests
  return c;
}

TEST(FilterUnit, FillSetsCfAndCounter) {
  FilterUnit fu(small_config());
  fu.on_fill(/*line=*/5, /*core=*/0, /*set=*/5, /*way=*/0);
  EXPECT_TRUE(fu.core_filter(0).test(5));
  EXPECT_FALSE(fu.core_filter(1).test(5));
  EXPECT_EQ(fu.counter_at(5), 1);
  EXPECT_EQ(fu.core_filter_weight(0), 1u);
}

TEST(FilterUnit, EvictClearsAllCfsWhenCounterDrains) {
  FilterUnit fu(small_config());
  // Two lines aliasing to index 5 (5 and 69), filled by different cores.
  fu.on_fill(5, 0, 5, 0);
  fu.on_fill(69, 1, 5, 1);
  EXPECT_EQ(fu.counter_at(5), 2);
  fu.on_evict(5, 5, 0);
  // Counter still 1: CF bits survive (this is §3.1's documented
  // inaccuracy — core 0's line is gone but its bit lingers).
  EXPECT_TRUE(fu.core_filter(0).test(5));
  EXPECT_TRUE(fu.core_filter(1).test(5));
  fu.on_evict(69, 5, 1);
  EXPECT_EQ(fu.counter_at(5), 0);
  EXPECT_FALSE(fu.core_filter(0).test(5));
  EXPECT_FALSE(fu.core_filter(1).test(5));
}

TEST(FilterUnit, RbvIsNewBitsSinceSnapshot) {
  FilterUnit fu(small_config());
  // Pre-existing state on core 0.
  fu.on_fill(1, 0, 1, 0);
  fu.on_fill(2, 0, 2, 0);
  fu.snapshot(0);  // context switch: App2 in
  fu.on_fill(3, 0, 3, 0);
  fu.on_fill(2, 0, 2, 1);  // re-touches an already-set bit: not "new"
  const BitVector rbv = fu.compute_rbv(0);
  EXPECT_FALSE(rbv.test(1));
  EXPECT_FALSE(rbv.test(2));
  EXPECT_TRUE(rbv.test(3));
  EXPECT_EQ(rbv.popcount(), 1u);
}

TEST(FilterUnit, SymbiosisMatchesManualXor) {
  FilterUnit fu(small_config());
  // Core 0 runs app A: lines {1,2,3}. Core 1 holds lines {3,4}.
  fu.snapshot(0);
  fu.on_fill(1, 0, 1, 0);
  fu.on_fill(2, 0, 2, 0);
  fu.on_fill(3, 0, 3, 0);
  fu.on_fill(3, 1, 3, 1);
  fu.on_fill(4, 1, 4, 0);
  const BitVector rbv = fu.compute_rbv(0);  // {1,2,3}
  // XOR with CF1 {3,4}: {1,2,4} -> symbiosis 3.
  EXPECT_EQ(fu.symbiosis(rbv, 1), 3u);
  // XOR with CF0 {1,2,3}: empty -> 0 (the self-degeneracy; see
  // self_symbiosis below).
  EXPECT_EQ(fu.symbiosis(rbv, 0), 0u);
}

TEST(FilterUnit, SelfSymbiosisComparesAgainstLastFilter) {
  FilterUnit fu(small_config());
  // Co-resident left lines {7,8} on core 0; then our app runs {8,9}.
  fu.on_fill(7, 0, 7, 0);
  fu.on_fill(8, 0, 8, 0);
  fu.snapshot(0);  // LF0 = {7,8}
  fu.on_fill(9, 0, 9, 0);
  fu.on_fill(8, 0, 8, 1);
  const BitVector rbv = fu.compute_rbv(0);  // {9}
  // XOR(RBV {9}, LF {7,8}) = {7,8,9} -> 3.
  EXPECT_EQ(fu.self_symbiosis(rbv, 0), 3u);
}

TEST(FilterUnit, Figure6bProtocol) {
  // End-to-end context-switch protocol: App1 runs on core 0 while core 1
  // holds a disjoint and an overlapping working set; App1's symbiosis with
  // core 1 must rank the disjoint configuration higher.
  FilterUnitConfig cfg = small_config();
  FilterUnit fu(cfg);

  // Scenario A: core 1 holds lines disjoint from App1's.
  fu.snapshot(0);
  for (const LineAddr line : {1, 2, 3}) fu.on_fill(line, 0, line % 16, 0);
  for (const LineAddr line : {20, 21, 22}) fu.on_fill(line, 1, line % 16, 0);
  const auto rbv_a = fu.compute_rbv(0);
  const std::size_t sym_disjoint = fu.symbiosis(rbv_a, 1);

  fu.reset();

  // Scenario B: core 1 holds exactly App1's lines.
  fu.snapshot(0);
  for (const LineAddr line : {1, 2, 3}) {
    fu.on_fill(line, 0, line % 16, 0);
    fu.on_fill(line, 1, line % 16, 1);
  }
  const auto rbv_b = fu.compute_rbv(0);
  const std::size_t sym_overlap = fu.symbiosis(rbv_b, 1);

  EXPECT_GT(sym_disjoint, sym_overlap);  // high symbiosis = low interference
  EXPECT_EQ(sym_disjoint, 6u);           // {1,2,3} XOR {20,21,22} mod 64
  EXPECT_EQ(sym_overlap, 0u);
}

TEST(FilterUnit, SamplingTracksOnlySampledSets) {
  FilterUnitConfig cfg = small_config();
  cfg.sample_shift = 2;  // 25% sampling: sets 0,4,8,12
  FilterUnit fu(cfg);
  EXPECT_EQ(fu.entries(), 16u);  // (16 >> 2) * 4 ways
  fu.on_fill(100, 0, /*set=*/4, 0);
  EXPECT_EQ(fu.core_filter_weight(0), 1u);
  fu.on_fill(101, 0, /*set=*/5, 0);  // unsampled set: ignored
  EXPECT_EQ(fu.core_filter_weight(0), 1u);
}

TEST(FilterUnit, PresenceModeIsPositional) {
  FilterUnitConfig cfg = small_config();
  cfg.hash = HashKind::Presence;
  FilterUnit fu(cfg);
  // Line address is irrelevant; (set, way) decides the bit.
  fu.on_fill(0xdeadbeef, 0, /*set=*/3, /*way=*/2);
  EXPECT_TRUE(fu.core_filter(0).test(3 * 4 + 2));
  // Eviction of that slot clears it exactly (presence bits are exact).
  fu.on_evict(0xdeadbeef, 3, 2);
  EXPECT_FALSE(fu.core_filter(0).test(3 * 4 + 2));
}

TEST(FilterUnit, CounterSaturationSticks) {
  FilterUnitConfig cfg = small_config();
  cfg.counter_bits = 1;  // saturates at 1
  FilterUnit fu(cfg);
  fu.on_fill(5, 0, 5, 0);
  fu.on_fill(69, 0, 5, 1);  // same index, saturated
  EXPECT_EQ(fu.saturated_counters(), 1u);
  fu.on_evict(5, 5, 0);  // stuck at max: no decrement
  EXPECT_TRUE(fu.core_filter(0).test(5));
}

TEST(FilterUnit, ResetClearsEverything) {
  FilterUnit fu(small_config());
  fu.on_fill(1, 0, 1, 0);
  fu.snapshot(0);
  fu.reset();
  EXPECT_EQ(fu.core_filter_weight(0), 0u);
  EXPECT_EQ(fu.compute_rbv(0).popcount(), 0u);
  EXPECT_EQ(fu.counter_at(1), 0);
}

TEST(FilterUnit, Validation) {
  FilterUnitConfig cfg = small_config();
  cfg.num_cores = 0;
  EXPECT_THROW(FilterUnit{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.cache_sets = 15;
  EXPECT_THROW(FilterUnit{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.counter_bits = 0;
  EXPECT_THROW(FilterUnit{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.sample_shift = 10;
  EXPECT_THROW(FilterUnit{cfg}, std::invalid_argument);
}

TEST(FilterUnit, FillRatioDiagnostics) {
  FilterUnit fu(small_config());
  for (LineAddr line = 0; line < 32; ++line) fu.on_fill(line, 0, line % 16, 0);
  EXPECT_DOUBLE_EQ(fu.core_filter_fill(0), 0.5);
  EXPECT_DOUBLE_EQ(fu.core_filter_fill(1), 0.0);
}

}  // namespace
}  // namespace symbiosis::sig
