#include "sched/mincut.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"

namespace symbiosis::sched {
namespace {

/// Two hostile pairs: (0,1) and (2,3) interfere heavily; everything else is
/// light. The optimal balanced MIN-CUT keeps each hostile pair together.
SymMatrix two_cliques() {
  SymMatrix w(4);
  w.set(0, 1, 10.0);
  w.set(2, 3, 10.0);
  w.set(0, 2, 1.0);
  w.set(0, 3, 1.5);
  w.set(1, 2, 0.5);
  w.set(1, 3, 1.0);
  return w;
}

/// A planted partition over 2k nodes: intra-block weight high + noise.
SymMatrix planted(std::size_t n, util::Rng& rng) {
  SymMatrix w(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool same_block = (i < n / 2) == (j < n / 2);
      w.set(i, j, (same_block ? 5.0 : 0.5) + rng.next_double() * 0.2);
    }
  }
  return w;
}

TEST(MinCut, CutAndIntraPartitionTotal) {
  const SymMatrix w = two_cliques();
  Allocation a;
  a.groups = 2;
  a.group_of = {0, 0, 1, 1};
  const double total = 10 + 10 + 1 + 1.5 + 0.5 + 1;
  EXPECT_DOUBLE_EQ(cut_weight(w, a) + intra_weight(w, a), total);
  EXPECT_DOUBLE_EQ(intra_weight(w, a), 20.0);
  EXPECT_DOUBLE_EQ(cut_weight(w, a), 4.0);
}

class MinCutMethodTest : public testing::TestWithParam<MinCutMethod> {};

TEST_P(MinCutMethodTest, SolvesTwoCliques) {
  const SymMatrix w = two_cliques();
  const Allocation result = balanced_min_cut(w, 2, GetParam(), 7);
  EXPECT_EQ(result.group_of[0], result.group_of[1]);
  EXPECT_EQ(result.group_of[2], result.group_of[3]);
  EXPECT_NE(result.group_of[0], result.group_of[2]);
}

TEST_P(MinCutMethodTest, ProducesBalancedGroups) {
  util::Rng rng(11);
  const SymMatrix w = planted(10, rng);
  const Allocation result = balanced_min_cut(w, 2, GetParam(), 3);
  EXPECT_EQ(result.members(0).size(), 5u);
  EXPECT_EQ(result.members(1).size(), 5u);
}

TEST_P(MinCutMethodTest, RecoversPlantedPartition) {
  util::Rng rng(13);
  const SymMatrix w = planted(12, rng);
  const Allocation result = balanced_min_cut(w, 2, GetParam(), 5);
  // All of block {0..5} together, {6..11} together.
  for (std::size_t i = 1; i < 6; ++i) EXPECT_EQ(result.group_of[i], result.group_of[0]);
  for (std::size_t i = 7; i < 12; ++i) EXPECT_EQ(result.group_of[i], result.group_of[6]);
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MinCutMethodTest,
                         testing::Values(MinCutMethod::Exhaustive, MinCutMethod::Greedy,
                                         MinCutMethod::KernighanLin, MinCutMethod::Spectral,
                                         MinCutMethod::Auto),
                         [](const auto& param_info) {
                           std::string name = to_string(param_info.param);
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(MinCut, HeuristicsNearOptimalOnRandomGraphs) {
  util::Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    SymMatrix w(8);
    for (std::size_t i = 0; i < 8; ++i) {
      for (std::size_t j = i + 1; j < 8; ++j) w.set(i, j, rng.next_double());
    }
    const double optimal = cut_weight(w, balanced_min_cut(w, 2, MinCutMethod::Exhaustive));
    const double kl = cut_weight(w, balanced_min_cut(w, 2, MinCutMethod::KernighanLin));
    const double spectral = cut_weight(w, balanced_min_cut(w, 2, MinCutMethod::Spectral, trial));
    EXPECT_LE(optimal, kl + 1e-9);
    EXPECT_LE(kl, optimal * 1.35 + 1e-9) << "KL strayed far from optimal";
    EXPECT_LE(spectral, optimal * 1.35 + 1e-9) << "spectral strayed far from optimal";
  }
}

TEST(MinCut, HierarchicalFourWay) {
  // Four hostile pairs over 8 nodes; 4 groups must keep each pair together
  // (this is §3.3.2's quad-core recursion).
  SymMatrix w(8);
  for (std::size_t p = 0; p < 4; ++p) w.set(2 * p, 2 * p + 1, 10.0 + static_cast<double>(p));
  util::Rng rng(19);
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i + 1; j < 8; ++j) {
      if (w.at(i, j) == 0.0) w.set(i, j, rng.next_double() * 0.1);
    }
  }
  for (const auto method : {MinCutMethod::Auto, MinCutMethod::KernighanLin}) {
    const Allocation result = balanced_min_cut(w, 4, method, 23);
    for (std::size_t p = 0; p < 4; ++p) {
      EXPECT_EQ(result.group_of[2 * p], result.group_of[2 * p + 1]) << to_string(method);
      EXPECT_EQ(result.members(p).size(), 2u);
    }
  }
}

TEST(MinCut, SingleGroupIsTrivial) {
  const SymMatrix w = two_cliques();
  const Allocation result = balanced_min_cut(w, 1);
  EXPECT_EQ(result.groups, 1u);
  for (const auto g : result.group_of) EXPECT_EQ(g, 0u);
}

TEST(MinCut, Validation) {
  const SymMatrix w = two_cliques();
  EXPECT_THROW(balanced_min_cut(w, 0), std::invalid_argument);
  EXPECT_THROW(balanced_min_cut(w, 5), std::invalid_argument);
}

TEST(MinCut, DegenerateUniformGraphStillBalances) {
  SymMatrix w(6);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) w.set(i, j, 1.0);
  }
  for (const auto method : {MinCutMethod::Greedy, MinCutMethod::KernighanLin,
                            MinCutMethod::Spectral}) {
    const Allocation result = balanced_min_cut(w, 2, method, 29);
    EXPECT_EQ(result.members(0).size(), 3u) << to_string(method);
  }
}

TEST(MinCut, MethodNameRoundTrip) {
  for (const auto method : {MinCutMethod::Exhaustive, MinCutMethod::Greedy,
                            MinCutMethod::KernighanLin, MinCutMethod::Spectral,
                            MinCutMethod::Auto}) {
    EXPECT_EQ(parse_mincut_method(to_string(method)), method);
  }
  EXPECT_THROW((void)parse_mincut_method("magic"), std::invalid_argument);
}

}  // namespace
}  // namespace symbiosis::sched
