// test_trace_replay.cpp — trace-replay conformance (trace-conformance layer).
//
// Pins the fast chunked replayer (workload/replayer.hpp) to:
//   * the naive reference replayer, at chunk sizes 1/7/64/1000;
//   * itself under parallel decoding (serial ≡ 1/2/8-worker ThreadPool);
//   * direct synthetic generation (generator → .symt → replay bit-identical
//     to replay_generated, for every pool benchmark);
//   * deterministic re-replay (identical ReplayResult and identical
//     trace_replay run reports modulo the volatile sections);
// and locks the synchronization semantics: happens-before via signal/wait
// and barriers, one-signal-one-wait consumption, and diagnostics (never
// hangs) for deadlocked or malformed traces.
#include "workload/replayer.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "machine/machine.hpp"
#include "obs/json.hpp"
#include "reference/reference_replayer.hpp"
#include "util/threadpool.hpp"
#include "workload/trace_source.hpp"

namespace symbiosis::workload {
namespace {

cachesim::Hierarchy fresh_hierarchy(std::size_t cores = 2) {
  cachesim::HierarchyConfig config;
  config.num_cores = cores;
  return cachesim::Hierarchy(config);
}

/// A 3-thread trace exercising every sync op: interleaved compute phases,
/// barriers between them, a lock-protected region, and a signal/wait
/// handshake from thread 0 to threads 1 and 2.
SymtTrace make_sync_trace(std::size_t refs_per_phase = 300) {
  SymtWriter writer(3);
  const util::Rng root(0x7e57);
  for (std::size_t t = 0; t < 3; ++t) {
    util::Rng rng = root.split(t);
    cachesim::Addr addr = (static_cast<cachesim::Addr>(t) + 1) << 40;
    auto burst = [&](std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) {
        addr += 64 * (rng.next_below(32) + 1);
        writer.append_mem(t, addr, rng.next_below(3) == 0);
      }
    };
    burst(refs_per_phase);
    writer.append_barrier(t, 1);
    burst(refs_per_phase / 2);
    writer.append_lock(t, 9);
    burst(10);
    writer.append_unlock(t, 9);
    if (t == 0) {
      burst(refs_per_phase);
      writer.append_signal(t, 5);
      writer.append_signal(t, 5);
    } else {
      writer.append_wait(t, 5, 0);
      burst(refs_per_phase / 4);
    }
    writer.append_barrier(t, 2);
    burst(7);
  }
  return SymtTrace::from_buffer(writer.finish());
}

class ReplayChunks : public testing::TestWithParam<std::size_t> {};

TEST_P(ReplayChunks, FastMatchesReferenceBitIdentical) {
  const std::size_t chunk = GetParam();
  const SymtTrace trace = make_sync_trace();

  cachesim::Hierarchy fast_h = fresh_hierarchy();
  cachesim::Hierarchy ref_h = fresh_hierarchy();
  ReplayOptions options;
  options.chunk = chunk;
  const ReplayResult fast = replay_trace(trace, fast_h, options);
  const ReplayResult ref = testing_support::reference_replay(trace, ref_h, chunk);

  EXPECT_EQ(fast.totals, ref.totals);
  EXPECT_EQ(fast.rounds, ref.rounds);
  EXPECT_EQ(fast.sync_events, ref.sync_events);
  ASSERT_EQ(fast.threads.size(), ref.threads.size());
  for (std::size_t t = 0; t < fast.threads.size(); ++t) {
    EXPECT_EQ(fast.threads[t], ref.threads[t]) << "thread " << t;
  }
  // The hierarchies must have ended in the same state, not just the same
  // totals: ground-truth footprints are a cheap full-state probe.
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(fast_h.l2_footprint(c), ref_h.l2_footprint(c)) << "core " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(Chunks, ReplayChunks, testing::Values<std::size_t>(1, 7, 64, 1000));

TEST(Replay, SerialAndParallelDecodingBitIdentical) {
  const SymtTrace trace = make_sync_trace(500);
  ReplayOptions serial_options;
  serial_options.chunk = 128;
  cachesim::Hierarchy serial_h = fresh_hierarchy();
  const ReplayResult serial = replay_trace(trace, serial_h, serial_options);

  for (const std::size_t workers : {1u, 2u, 8u}) {
    util::ThreadPool pool(workers);
    ReplayOptions options;
    options.chunk = 128;
    options.pool = &pool;
    cachesim::Hierarchy h = fresh_hierarchy();
    const ReplayResult parallel = replay_trace(trace, h, options);
    EXPECT_EQ(parallel, serial) << workers << " workers";
    EXPECT_EQ(h.l2_footprint(0), serial_h.l2_footprint(0)) << workers << " workers";
  }
}

TEST(Replay, GeneratorRoundTripBitIdenticalForEveryPoolBenchmark) {
  // generator → .symt → replay must equal direct generation, per benchmark.
  for (const std::string& name : spec2006_pool()) {
    const std::vector<std::string> names{name};
    const auto image = symt_from_benchmarks(names, 4000, 11);
    const SymtTrace trace = SymtTrace::from_buffer(image);

    cachesim::Hierarchy replayed = fresh_hierarchy();
    ReplayOptions options;
    options.chunk = 256;
    const ReplayResult result = replay_trace(trace, replayed, options);

    cachesim::Hierarchy generated = fresh_hierarchy();
    const cachesim::BatchSummary direct = replay_generated(names, 4000, 11, generated, 256);
    EXPECT_EQ(result.totals, direct) << name;
    EXPECT_EQ(result.totals.accesses, 4000u) << name;
  }
}

TEST(Replay, MultiThreadedMixRoundTripBitIdentical) {
  const std::vector<std::string> names{"mcf", "libquantum", "hmmer"};
  const auto image = symt_from_benchmarks(names, 6000, 23);
  const SymtTrace trace = SymtTrace::from_buffer(image);

  for (const std::size_t chunk : {64u, 4096u}) {
    cachesim::Hierarchy replayed = fresh_hierarchy(2);
    ReplayOptions options;
    options.chunk = chunk;
    const ReplayResult result = replay_trace(trace, replayed, options);
    cachesim::Hierarchy generated = fresh_hierarchy(2);
    const cachesim::BatchSummary direct = replay_generated(names, 6000, 23, generated, chunk);
    EXPECT_EQ(result.totals, direct) << "chunk " << chunk;
  }
}

TEST(Replay, ReplayTwiceIsDeterministic) {
  // Satellite regression: same trace, fresh hierarchies → identical results
  // and identical run reports outside the volatile sections.
  const SymtTrace trace = make_sync_trace();
  const SymtStats stats = collect_stats(trace);
  cachesim::HierarchyConfig config;
  config.num_cores = 2;

  auto one_run = [&] {
    cachesim::Hierarchy h{config};
    ReplayOptions options;
    options.chunk = 512;
    return replay_trace(trace, h, options);
  };
  const ReplayResult a = one_run();
  const ReplayResult b = one_run();
  EXPECT_EQ(a, b);

  const obs::Json report_a = core::build_trace_replay_report(config, "x.symt", stats, a, 512, 0);
  const obs::Json report_b = core::build_trace_replay_report(config, "x.symt", stats, b, 512, 0);
  EXPECT_TRUE(core::validate_report(report_a).empty());
  const auto diff = obs::json_diff(report_a, report_b, {"timings", "metrics"});
  EXPECT_TRUE(diff.empty()) << (diff.empty() ? "" : diff.front());
}

// --- synchronization semantics ---------------------------------------------

TEST(ReplaySync, WaitEnforcesHappensBeforeAcrossVisitOrder) {
  // The CONSUMER is thread 0 (visited first each round); the producer is
  // thread 1. Without the wait the consumer would run first — with it, the
  // consumer must block at least once and only proceed after the signal.
  SymtWriter writer(2);
  writer.append_wait(0, 3, 1);
  writer.append_mem(0, 1 << 20, false);
  for (int i = 0; i < 50; ++i) writer.append_mem(1, 64u * static_cast<unsigned>(i + 1), false);
  writer.append_signal(1, 3);
  const SymtTrace trace = SymtTrace::from_buffer(writer.finish());

  cachesim::Hierarchy h = fresh_hierarchy();
  ReplayOptions options;
  options.chunk = 8;  // producer needs several rounds to reach its signal
  const ReplayResult result = replay_trace(trace, h, options);
  EXPECT_EQ(result.threads[0].waits, 1u);
  EXPECT_GE(result.threads[0].blocked_visits, 1u);
  EXPECT_EQ(result.threads[1].signals, 1u);
  EXPECT_EQ(result.totals.accesses, 51u);
}

TEST(ReplaySync, SignalAlreadyPostedNeverBlocks) {
  SymtWriter writer(2);
  writer.append_signal(0, 3);
  writer.append_mem(0, 4096, false);
  writer.append_wait(1, 3, 0);
  writer.append_mem(1, 8192, false);
  const SymtTrace trace = SymtTrace::from_buffer(writer.finish());
  cachesim::Hierarchy h = fresh_hierarchy();
  const ReplayResult result = replay_trace(trace, h, {});
  EXPECT_EQ(result.threads[1].blocked_visits, 0u);
  EXPECT_EQ(result.threads[1].waits, 1u);
}

TEST(ReplaySync, OneWaitConsumesOneSignal) {
  // Two waits against a single signal must deadlock with a diagnostic.
  SymtWriter writer(2);
  writer.append_signal(0, 1);
  writer.append_wait(1, 1, 0);
  writer.append_wait(1, 1, 0);
  const SymtTrace trace = SymtTrace::from_buffer(writer.finish());
  cachesim::Hierarchy h = fresh_hierarchy();
  try {
    replay_trace(trace, h, {});
    FAIL() << "expected a deadlock diagnostic";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
    EXPECT_NE(what.find("thread 1"), std::string::npos) << what;
  }
}

TEST(ReplaySync, BarrierHoldsEarlyArrivals) {
  // Thread 1 reaches the barrier immediately and must idle (blocked visits)
  // until thread 0 works through its pre-barrier burst.
  SymtWriter writer(2);
  for (int i = 0; i < 100; ++i) writer.append_mem(0, 64u * static_cast<unsigned>(i), false);
  writer.append_barrier(0, 4);
  writer.append_barrier(1, 4);
  writer.append_mem(1, 1 << 20, false);
  const SymtTrace trace = SymtTrace::from_buffer(writer.finish());
  cachesim::Hierarchy h = fresh_hierarchy();
  ReplayOptions options;
  options.chunk = 10;
  const ReplayResult result = replay_trace(trace, h, options);
  EXPECT_EQ(result.threads[0].barriers, 1u);
  EXPECT_EQ(result.threads[1].barriers, 1u);
  EXPECT_GE(result.threads[1].blocked_visits, 9u);  // ~100/10 rounds of waiting
  EXPECT_EQ(result.totals.accesses, 101u);
}

TEST(ReplaySync, LockSerializesButNeverDeadlocks) {
  SymtWriter writer(2);
  for (std::size_t t = 0; t < 2; ++t) {
    writer.append_lock(t, 1);
    for (int i = 0; i < 20; ++i) {
      writer.append_mem(t, (1u << 16) * (static_cast<unsigned>(t) + 1) +
                               64u * static_cast<unsigned>(i),
                        true);
    }
    writer.append_unlock(t, 1);
  }
  const SymtTrace trace = SymtTrace::from_buffer(writer.finish());
  cachesim::Hierarchy h = fresh_hierarchy();
  ReplayOptions options;
  options.chunk = 4;  // critical sections span multiple visits
  const ReplayResult result = replay_trace(trace, h, options);
  EXPECT_EQ(result.threads[0].lock_acquires, 1u);
  EXPECT_EQ(result.threads[1].lock_acquires, 1u);
  EXPECT_EQ(result.threads[0].lock_releases, 1u);
  EXPECT_EQ(result.threads[1].lock_releases, 1u);
  // Thread 1 must have been locked out while thread 0 held the mutex.
  EXPECT_GE(result.threads[1].blocked_visits, 1u);
  EXPECT_EQ(result.totals.accesses, 40u);
}

// --- malformed traces ------------------------------------------------------

TEST(ReplayErrors, UnlockWithoutHoldDiagnosed) {
  SymtWriter writer(1);
  writer.append_unlock(0, 2);
  const SymtTrace trace = SymtTrace::from_buffer(writer.finish());
  cachesim::Hierarchy h = fresh_hierarchy();
  try {
    replay_trace(trace, h, {});
    FAIL() << "expected a trace error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("does not hold"), std::string::npos) << e.what();
  }
}

TEST(ReplayErrors, RecursiveLockDiagnosed) {
  SymtWriter writer(1);
  writer.append_lock(0, 2);
  writer.append_lock(0, 2);
  const SymtTrace trace = SymtTrace::from_buffer(writer.finish());
  cachesim::Hierarchy h = fresh_hierarchy();
  EXPECT_THROW(replay_trace(trace, h, {}), std::runtime_error);
}

TEST(ReplayErrors, BarrierIdMismatchDiagnosed) {
  SymtWriter writer(2);
  writer.append_barrier(0, 1);
  writer.append_barrier(1, 2);
  const SymtTrace trace = SymtTrace::from_buffer(writer.finish());
  cachesim::Hierarchy h = fresh_hierarchy();
  try {
    replay_trace(trace, h, {});
    FAIL() << "expected a barrier mismatch diagnostic";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("barrier"), std::string::npos) << e.what();
  }
}

TEST(ReplayErrors, WaitOnNonexistentThreadDiagnosed) {
  // append_wait validates partners at write time, so forge the on-disk
  // partner by patching the final varint byte of a valid wait record.
  SymtWriter w2(2);
  w2.append_wait(0, 1, 1);
  auto bytes = w2.finish();
  bytes.back() = 7;  // partner varint (single byte) → thread 7
  const SymtTrace trace = SymtTrace::from_buffer(std::move(bytes));
  cachesim::Hierarchy h = fresh_hierarchy();
  try {
    replay_trace(trace, h, {});
    FAIL() << "expected a nonexistent-thread diagnostic";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("nonexistent"), std::string::npos) << e.what();
  }
}

TEST(ReplayErrors, SoloBarrierRetiresImmediately) {
  // A single-thread trace's barrier is trivially satisfied — not a deadlock.
  SymtWriter writer(1);
  writer.append_mem(0, 64, false);
  writer.append_barrier(0, 1);
  writer.append_mem(0, 128, false);
  const SymtTrace trace = SymtTrace::from_buffer(writer.finish());
  cachesim::Hierarchy h = fresh_hierarchy();
  const ReplayResult result = replay_trace(trace, h, {});
  EXPECT_EQ(result.threads[0].barriers, 1u);
  EXPECT_EQ(result.totals.accesses, 2u);
}

TEST(ReplayApi, RunTwiceRejected) {
  SymtWriter writer(1);
  writer.append_mem(0, 64, false);
  const SymtTrace trace = SymtTrace::from_buffer(writer.finish());
  cachesim::Hierarchy h = fresh_hierarchy();
  TraceReplayer replayer(trace, h);
  (void)replayer.run();
  EXPECT_THROW(replayer.run(), std::logic_error);
}

// --- Machine integration (TraceSource) -------------------------------------

TEST(TraceSourceApi, SymtSourceFeedsMachineDeterministically) {
  const auto image = symt_from_benchmarks({"mcf", "gobmk"}, 3000, 31);
  auto trace = std::make_shared<SymtTrace>(SymtTrace::from_buffer(image));

  auto run_once = [&] {
    machine::Machine m(machine::core2duo_config());
    const SymtSource source(trace, "mix");
    const auto ids = m.add_process(source);
    EXPECT_EQ(ids.size(), 2u);
    // Threads of one process share a pid; distinct from a later process.
    EXPECT_EQ(m.task(ids[0]).pid(), m.task(ids[1]).pid());
    m.run_to_all_complete(0);
    std::vector<std::uint64_t> cycles;
    for (const auto id : ids) cycles.push_back(m.task(id).first_completion_user_cycles);
    return cycles;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a[0], 0u);
}

TEST(TraceSourceApi, SyntheticSourceMatchesDirectWorkload) {
  const SyntheticSource source(make_spec_benchmark("mcf"), 1 << 20, 77);
  auto stream = source.make_stream(0);
  auto direct = make_spec_workload("mcf", 1 << 20, util::Rng{77});
  for (int i = 0; i < 1000; ++i) {
    const Step a = stream->next();
    const Step b = direct->next();
    ASSERT_EQ(a.addr, b.addr);
    ASSERT_EQ(a.is_write, b.is_write);
    ASSERT_EQ(a.compute_instr, b.compute_instr);
  }
}

TEST(TraceSourceApi, SymtStreamSkipsSyncRecordsAndRestarts) {
  SymtWriter writer(1);
  writer.append_mem(0, 64, false);
  writer.append_barrier(0, 1);
  writer.append_mem(0, 128, true);
  auto trace = std::make_shared<SymtTrace>(SymtTrace::from_buffer(writer.finish()));
  SymtTaskStream stream(trace, 0, "t0");
  EXPECT_EQ(stream.total_refs(), 2u);
  EXPECT_EQ(stream.next().addr, 64u);
  EXPECT_EQ(stream.next().addr, 128u);
  EXPECT_TRUE(stream.complete());
  EXPECT_EQ(stream.skipped_syncs(), 1u);
  stream.restart();
  EXPECT_EQ(stream.refs_issued(), 0u);
  EXPECT_EQ(stream.next().addr, 64u);
}

}  // namespace
}  // namespace symbiosis::workload
