#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace symbiosis::workload {
namespace {

std::string temp_path(const char* name) { return testing::TempDir() + "/" + name; }

TEST(Trace, RoundTrip) {
  const std::string path = temp_path("roundtrip.symt");
  std::vector<Step> original;
  {
    TraceWriter writer(path);
    auto w = make_spec_workload("gobmk", 0, util::Rng{1});
    for (int i = 0; i < 500; ++i) {
      const Step step = w->next();
      original.push_back(step);
      writer.append(step);
    }
    EXPECT_EQ(writer.count(), 500u);
  }
  const auto loaded = read_trace(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].addr, original[i].addr);
    EXPECT_EQ(loaded[i].compute_instr, original[i].compute_instr);
    EXPECT_EQ(loaded[i].is_write, original[i].is_write);
  }
}

TEST(Trace, MissingFileThrows) {
  EXPECT_THROW(read_trace(temp_path("does-not-exist.symt")), std::runtime_error);
}

TEST(Trace, BadMagicThrows) {
  const std::string path = temp_path("bad-magic.symt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE garbage";
  }
  EXPECT_THROW(read_trace(path), std::runtime_error);
}

TEST(Trace, TruncatedBodyThrows) {
  const std::string path = temp_path("truncated.symt");
  {
    TraceWriter writer(path);
    writer.append(Step{1, 64, false});
    writer.append(Step{2, 128, true});
  }
  // Chop the last few bytes off.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() - 4);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  EXPECT_THROW(read_trace(path), std::runtime_error);
}

TEST(TraceStream, ReplaysAndRestarts) {
  std::vector<Step> steps = {{5, 0, false}, {6, 64, true}, {7, 128, false}};
  TraceStream stream("replay", steps);
  EXPECT_EQ(stream.total_refs(), 3u);
  EXPECT_EQ(stream.next().addr, 0u);
  EXPECT_EQ(stream.next().addr, 64u);
  EXPECT_FALSE(stream.complete());
  EXPECT_EQ(stream.next().addr, 128u);
  EXPECT_TRUE(stream.complete());
  stream.restart();
  EXPECT_EQ(stream.refs_issued(), 0u);
  EXPECT_EQ(stream.next().compute_instr, 5u);
}

TEST(TraceStream, EmptyRejected) {
  EXPECT_THROW(TraceStream("empty", {}), std::invalid_argument);
}

TEST(TraceWriter, AppendAfterCloseThrows) {
  const std::string path = temp_path("closed.symt");
  TraceWriter writer(path);
  writer.append(Step{1, 0, false});
  writer.close();
  EXPECT_THROW(writer.append(Step{1, 0, false}), std::runtime_error);
}

}  // namespace
}  // namespace symbiosis::workload
