#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include "workload/symt.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace symbiosis::workload {
namespace {

std::string temp_path(const char* name) { return testing::TempDir() + "/" + name; }

TEST(Trace, RoundTrip) {
  const std::string path = temp_path("roundtrip.symt");
  std::vector<Step> original;
  {
    TraceWriter writer(path);
    auto w = make_spec_workload("gobmk", 0, util::Rng{1});
    for (int i = 0; i < 500; ++i) {
      const Step step = w->next();
      original.push_back(step);
      writer.append(step);
    }
    EXPECT_EQ(writer.count(), 500u);
  }
  const auto loaded = read_trace(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded[i].addr, original[i].addr);
    EXPECT_EQ(loaded[i].compute_instr, original[i].compute_instr);
    EXPECT_EQ(loaded[i].is_write, original[i].is_write);
  }
}

TEST(Trace, MissingFileThrows) {
  EXPECT_THROW(read_trace(temp_path("does-not-exist.symt")), std::runtime_error);
}

TEST(Trace, BadMagicThrows) {
  const std::string path = temp_path("bad-magic.symt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE garbage";
  }
  EXPECT_THROW(read_trace(path), std::runtime_error);
}

TEST(Trace, TruncatedBodyThrows) {
  const std::string path = temp_path("truncated.symt");
  {
    TraceWriter writer(path);
    writer.append(Step{1, 64, false});
    writer.append(Step{2, 128, true});
  }
  // Chop the last few bytes off.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  bytes.resize(bytes.size() - 4);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  EXPECT_THROW(read_trace(path), std::runtime_error);
}

TEST(TraceStream, ReplaysAndRestarts) {
  std::vector<Step> steps = {{5, 0, false}, {6, 64, true}, {7, 128, false}};
  TraceStream stream("replay", steps);
  EXPECT_EQ(stream.total_refs(), 3u);
  EXPECT_EQ(stream.next().addr, 0u);
  EXPECT_EQ(stream.next().addr, 64u);
  EXPECT_FALSE(stream.complete());
  EXPECT_EQ(stream.next().addr, 128u);
  EXPECT_TRUE(stream.complete());
  stream.restart();
  EXPECT_EQ(stream.refs_issued(), 0u);
  EXPECT_EQ(stream.next().compute_instr, 5u);
}

TEST(TraceStream, EmptyRejected) {
  EXPECT_THROW(TraceStream("empty", {}), std::invalid_argument);
}

TEST(Trace, EmptyTraceRoundTrips) {
  const std::string path = temp_path("empty.symt");
  { TraceWriter writer(path); }
  const auto loaded = read_trace(path);
  EXPECT_TRUE(loaded.empty());
}

TEST(Trace, SingleAccessRoundTrips) {
  const std::string path = temp_path("single.symt");
  {
    TraceWriter writer(path);
    writer.append(Step{9, 0xdeadbee0, true});
  }
  const auto loaded = read_trace(path);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].addr, 0xdeadbee0u);
  EXPECT_EQ(loaded[0].compute_instr, 9u);
  EXPECT_TRUE(loaded[0].is_write);
}

TEST(Trace, DuplicateConsecutiveStepsPreserved) {
  // Same address, same timestamp-equivalent gap, back to back: nothing in
  // the format may dedupe or reorder them.
  const std::string path = temp_path("dup.symt");
  const Step step{0, 4096, false};
  {
    TraceWriter writer(path);
    writer.append(step);
    writer.append(step);
    writer.append(step);
  }
  const auto loaded = read_trace(path);
  ASSERT_EQ(loaded.size(), 3u);
  for (const Step& s : loaded) {
    EXPECT_EQ(s.addr, step.addr);
    EXPECT_EQ(s.compute_instr, step.compute_instr);
    EXPECT_EQ(s.is_write, step.is_write);
  }
}

TEST(Trace, V2FileRejectedByV1Reader) {
  // A .symt v2 image shares the magic but not the version; the legacy
  // reader must refuse it with a diagnostic, not misparse records.
  const std::string path = temp_path("v2-for-v1.symt");
  SymtWriter writer(1);
  writer.append_mem(0, 64, false);
  writer.write_file(path);
  try {
    (void)read_trace(path);
    FAIL() << "v1 reader accepted a v2 file";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }
}

TEST(TraceWriter, AppendAfterCloseThrows) {
  const std::string path = temp_path("closed.symt");
  TraceWriter writer(path);
  writer.append(Step{1, 0, false});
  writer.close();
  EXPECT_THROW(writer.append(Step{1, 0, false}), std::runtime_error);
}

}  // namespace
}  // namespace symbiosis::workload
