// HierarchyTopology structure tests: degenerate-shape classification, the
// cluster arithmetic the signature hardware and scheduler rely on, and the
// validate() rejections (non-dividing cluster counts, oversubscribed or
// zero-way partitions) observed as CheckError via ScopedCheckMode(Throw).
// Also the Cache-level way-partition semantics: fills confined to a group's
// ways, lookups unconfined, TreePlru refusing partitioning outright.
#include "cachesim/topology.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <vector>

#include "cachesim/cache.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace symbiosis::cachesim {
namespace {

using util::CheckError;
using util::CheckMode;
using util::ScopedCheckMode;

HierarchyTopology clustered_topology() {
  HierarchyTopology t;
  t.num_cores = 32;
  t.l2_shared = true;
  t.l2_clusters = 4;
  t.l1 = {8 * 1024, 8, 64};
  t.l2 = {512 * 1024, 16, 64};
  t.l3 = CacheGeometry{2 * 1024 * 1024, 16, 64};
  return t;
}

TEST(Topology, DegenerateShapesAreExactlyTheLegacyTestbeds) {
  HierarchyTopology shared;  // defaults: 2 cores, 1 shared L2, no L3
  EXPECT_TRUE(shared.degenerate());

  HierarchyTopology priv;
  priv.l2_shared = false;
  EXPECT_TRUE(priv.degenerate()) << "private L2s (P4 SMP) are the other legacy testbed";

  // Each graph extension on its own leaves the legacy world.
  HierarchyTopology clustered;
  clustered.num_cores = 4;
  clustered.l2_clusters = 2;
  EXPECT_FALSE(clustered.degenerate());

  HierarchyTopology with_l3;
  with_l3.l3 = CacheGeometry{1024 * 1024, 16, 64};
  EXPECT_FALSE(with_l3.degenerate());

  HierarchyTopology partitioned;
  partitioned.l2_partition.ways_per_group = {8, 8};
  EXPECT_FALSE(partitioned.degenerate());
}

TEST(Topology, ClusterArithmetic) {
  const HierarchyTopology t = clustered_topology();
  EXPECT_EQ(t.clusters(), 4u);
  EXPECT_EQ(t.cores_per_cluster(), 8u);
  for (std::size_t core = 0; core < t.num_cores; ++core) {
    // Decomposition is exact and clusters are contiguous core ranges.
    EXPECT_EQ(t.cluster_of(core) * t.cores_per_cluster() + t.local_core(core), core);
    EXPECT_LT(t.cluster_of(core), t.clusters());
    EXPECT_LT(t.local_core(core), t.cores_per_cluster());
  }
  EXPECT_EQ(t.cluster_of(7), 0u);
  EXPECT_EQ(t.cluster_of(8), 1u);
}

TEST(Topology, PrivateL2NormalizesToOneCoreClusters) {
  HierarchyTopology t;
  t.num_cores = 4;
  t.l2_shared = false;
  EXPECT_EQ(t.clusters(), 4u);
  EXPECT_EQ(t.cores_per_cluster(), 1u);
  EXPECT_NO_THROW(t.validate());
}

TEST(Topology, SingleCoreClustersAreValid) {
  const ScopedCheckMode guard(CheckMode::Throw);
  HierarchyTopology t = clustered_topology();
  t.l2_clusters = 32;  // every core its own shared-L2 "cluster"
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.cores_per_cluster(), 1u);
  EXPECT_FALSE(t.degenerate()) << "32 single-core clusters under an L3 is not a legacy shape";
}

TEST(Topology, RejectsNonDividingClusterCount) {
  const ScopedCheckMode guard(CheckMode::Throw);
  HierarchyTopology t = clustered_topology();
  t.l2_clusters = 5;  // 32 % 5 != 0
  EXPECT_THROW(t.validate(), CheckError);
  t.l2_clusters = 3;
  EXPECT_THROW(t.validate(), CheckError);
  t.l2_clusters = 8;
  EXPECT_NO_THROW(t.validate());
}

TEST(Topology, RejectsDegenerateCounts) {
  const ScopedCheckMode guard(CheckMode::Throw);
  HierarchyTopology t;
  t.num_cores = 0;
  EXPECT_THROW(t.validate(), CheckError);

  t = HierarchyTopology{};
  t.l2_clusters = 0;
  EXPECT_THROW(t.validate(), CheckError);

  t = HierarchyTopology{};
  t.num_cores = 2;
  t.l2_clusters = 4;  // more L2s than cores
  EXPECT_THROW(t.validate(), CheckError);

  t = HierarchyTopology{};
  t.l2_shared = false;
  t.l2_clusters = 2;  // private L2s fix clusters = cores
  EXPECT_THROW(t.validate(), CheckError);
}

TEST(Topology, RejectsMismatchedL3LineSize) {
  const ScopedCheckMode guard(CheckMode::Throw);
  HierarchyTopology t = clustered_topology();
  t.l3 = CacheGeometry{2 * 1024 * 1024, 16, 128};
  EXPECT_THROW(t.validate(), CheckError);
}

TEST(Topology, RejectsL3PartitionWithoutL3) {
  const ScopedCheckMode guard(CheckMode::Throw);
  HierarchyTopology t;
  t.l3_partition.ways_per_group = {8, 8};
  EXPECT_THROW(t.validate(), CheckError);
}

TEST(Topology, PartitionMustMatchSharerGroupCount) {
  const ScopedCheckMode guard(CheckMode::Throw);
  HierarchyTopology t = clustered_topology();
  t.l2_partition.ways_per_group = {8, 8};  // 8 cluster-local cores, 2 groups
  EXPECT_THROW(t.validate(), CheckError);
  t.l2_partition.ways_per_group = {2, 2, 2, 2, 2, 2, 2, 2};
  EXPECT_NO_THROW(t.validate());

  t = clustered_topology();
  t.l3_partition.ways_per_group = {4, 4, 4};  // 4 clusters, 3 groups
  EXPECT_THROW(t.validate(), CheckError);
  t.l3_partition.ways_per_group = {4, 4, 4, 4};
  EXPECT_NO_THROW(t.validate());
}

TEST(Topology, RejectsPartitionSumPastAssociativity) {
  const ScopedCheckMode guard(CheckMode::Throw);
  HierarchyTopology t = clustered_topology();
  t.l2_partition.ways_per_group = {4, 4, 4, 4, 4, 4, 4, 4};  // 32 ways of 16
  EXPECT_THROW(t.validate(), CheckError);

  t = clustered_topology();
  t.l3_partition.ways_per_group = {8, 8, 8, 8};  // 32 ways of 16
  EXPECT_THROW(t.validate(), CheckError);
}

TEST(Topology, RejectsZeroWayPartitionGroup) {
  const ScopedCheckMode guard(CheckMode::Throw);
  HierarchyTopology t = clustered_topology();
  t.l2_partition.ways_per_group = {16, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_THROW(t.validate(), CheckError);
}

TEST(Topology, SingleWayPartitionsValidate) {
  const ScopedCheckMode guard(CheckMode::Throw);
  HierarchyTopology t = clustered_topology();
  t.l2_partition.ways_per_group = {1, 1, 1, 1, 1, 1, 1, 1};
  t.l3_partition.ways_per_group = {1, 1, 1, 1};
  EXPECT_NO_THROW(t.validate());
  // A partition may also leave ways unclaimed (sum < associativity): those
  // ways simply never fill.
  EXPECT_EQ(t.l2_partition.total_ways(), 8u);
  EXPECT_EQ(t.l3_partition.total_ways(), 4u);
}

TEST(Topology, RandomValidShapesAlwaysValidate) {
  // Property fuzz: any (cores, dividing cluster count) pair forms a valid
  // topology whose cluster arithmetic is self-consistent.
  const ScopedCheckMode guard(CheckMode::Throw);
  util::Rng rng(20260808);
  const std::size_t core_options[] = {1, 2, 4, 8, 12, 16, 24, 32, 48, 64};
  for (int trial = 0; trial < 200; ++trial) {
    HierarchyTopology t;
    t.num_cores = core_options[rng.next_below(std::size(core_options))];
    std::vector<std::size_t> divisors;
    for (std::size_t d = 1; d <= t.num_cores; ++d) {
      if (t.num_cores % d == 0) divisors.push_back(d);
    }
    t.l2_clusters = divisors[rng.next_below(divisors.size())];
    if (rng.next_bool(0.5)) t.l3 = CacheGeometry{1024 * 1024, 16, 64};
    ASSERT_NO_THROW(t.validate()) << t.describe();
    ASSERT_EQ(t.clusters() * t.cores_per_cluster(), t.num_cores);
    for (std::size_t core = 0; core < t.num_cores; ++core) {
      ASSERT_EQ(t.cluster_of(core) * t.cores_per_cluster() + t.local_core(core), core);
    }
  }
}

TEST(Topology, DescribeNamesTheShape) {
  EXPECT_EQ(clustered_topology().describe(), "32 cores / 4x512KiB cluster L2 / 2MiB shared L3");
  HierarchyTopology priv;
  priv.l2_shared = false;
  priv.l2 = {128 * 1024, 8, 64};
  EXPECT_EQ(priv.describe(), "2 cores / private 128KiB L2s");
  HierarchyTopology legacy;
  EXPECT_EQ(legacy.describe(), "2 cores / 1x256KiB shared L2");
}

// --- Cache way-partition semantics -----------------------------------------

TEST(CachePartitioning, FillsConfinedToOwnWaysLookupsAreNot) {
  // 1 set x 4 ways, two requestors with 2 ways each.
  Cache cache(CacheGeometry{4 * 64, 4, 64}, ReplacementKind::Lru, 2);
  cache.set_partition(CachePartition{{2, 2}}, {0, 1});
  EXPECT_TRUE(cache.partitioned());

  // Requestor 1 installs two lines, then requestor 0 floods the set: the
  // flood may only recycle requestor 0's own two ways, so requestor 1's
  // lines survive any amount of cross-requestor pressure.
  cache.access(100, false, 1);
  cache.access(200, false, 1);
  for (std::uint64_t i = 0; i < 64; ++i) cache.access(i, false, 0);
  EXPECT_TRUE(cache.access(100, false, 1).hit);
  EXPECT_TRUE(cache.access(200, false, 1).hit);
  EXPECT_EQ(cache.occupancy(1), 2u);
  EXPECT_EQ(cache.occupancy(0), 2u);

  // Lookups search ALL ways: requestor 0 hits a line requestor 1 owns.
  EXPECT_TRUE(cache.access(100, false, 0).hit);
}

TEST(CachePartitioning, SingleWayGroupsDegradeToDirectMapped) {
  Cache cache(CacheGeometry{4 * 64, 4, 64}, ReplacementKind::Lru, 4);
  cache.set_partition(CachePartition{{1, 1, 1, 1}}, {0, 1, 2, 3});
  // Each requestor owns exactly one way of the set; two lines from the same
  // requestor always conflict, lines from different requestors never do.
  cache.access(10, false, 2);
  cache.access(20, false, 2);  // evicts line 10 from requestor 2's only way
  cache.access(30, false, 3);
  EXPECT_TRUE(cache.access(20, false, 2).hit) << "requestor 3 cannot evict requestor 2";
  // Probing line 10 misses AND refills requestor 2's way, evicting line 20
  // again — the direct-mapped conflict in both directions.
  EXPECT_FALSE(cache.access(10, false, 2).hit);
  EXPECT_FALSE(cache.access(20, false, 2).hit);
}

TEST(CachePartitioning, RejectsOversubscriptionAndBadGroups) {
  const ScopedCheckMode guard(CheckMode::Throw);
  Cache cache(CacheGeometry{4 * 64, 4, 64}, ReplacementKind::Lru, 2);
  EXPECT_THROW(cache.set_partition(CachePartition{{3, 2}}, {0, 1}), CheckError);
  EXPECT_THROW(cache.set_partition(CachePartition{{2, 0}}, {0, 1}), CheckError);
  EXPECT_THROW(cache.set_partition(CachePartition{}, {0, 1}), CheckError);
  EXPECT_THROW(cache.set_partition(CachePartition{{2, 2}}, {0, 2}), CheckError)
      << "requestor mapped to an undefined group";
  EXPECT_THROW(cache.set_partition(CachePartition{{2, 2}}, {0}), CheckError)
      << "one group id per requestor";
}

TEST(CachePartitioning, TreePlruRefusesPartitioning) {
  const ScopedCheckMode guard(CheckMode::Throw);
  Cache cache(CacheGeometry{4 * 64, 4, 64}, ReplacementKind::TreePlru, 2);
  EXPECT_THROW(cache.set_partition(CachePartition{{2, 2}}, {0, 1}), CheckError)
      << "tree bits cannot confine victims to a way range";
  // The other policies all support it.
  for (const auto kind : {ReplacementKind::Lru, ReplacementKind::Fifo, ReplacementKind::Random,
                          ReplacementKind::Srrip}) {
    Cache ok(CacheGeometry{4 * 64, 4, 64}, kind, 2);
    EXPECT_NO_THROW(ok.set_partition(CachePartition{{2, 2}}, {0, 1})) << to_string(kind);
  }
}

}  // namespace
}  // namespace symbiosis::cachesim
