// reference_replayer.hpp — naive, obviously-correct .symt replay oracle.
//
// Replays a trace one record at a time through Hierarchy::access() with the
// SAME visit policy as workload::TraceReplayer (rounds of round-robin
// visits; a visit applies up to `chunk` consecutive memory records or
// retires one sync event) but none of its machinery: records are fully
// decoded up front into plain vectors, application is single-reference, and
// the sync state is a handful of maps. The differential suite pins
// TraceReplayer (chunked decode, batched application, optional parallel
// decoding) to be bit-identical to this at every chunk size.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "cachesim/hierarchy.hpp"
#include "workload/replayer.hpp"
#include "workload/symt.hpp"

namespace symbiosis::testing_support {

inline workload::ReplayResult reference_replay(const workload::SymtTrace& trace,
                                               cachesim::Hierarchy& hierarchy,
                                               std::size_t chunk) {
  if (chunk == 0) throw std::invalid_argument("reference_replay: zero chunk");
  const std::size_t n = trace.num_threads();

  // Fully decode every thread up front — the naive part.
  std::vector<std::vector<workload::SymtRecord>> records(n);
  for (std::size_t t = 0; t < n; ++t) {
    workload::SymtCursor cursor(trace, t);
    workload::SymtRecord rec;
    while (cursor.next(rec)) records[t].push_back(rec);
  }

  workload::ReplayResult result;
  result.threads.resize(n);
  std::vector<std::size_t> idx(n, 0);
  std::vector<bool> arrived(n, false);
  std::map<std::uint64_t, std::size_t> lock_owner;
  std::map<std::pair<std::uint64_t, std::size_t>, std::uint64_t> signal_count;
  std::map<std::tuple<std::uint64_t, std::size_t, std::size_t>, std::uint64_t> wait_consumed;
  std::size_t barrier_arrivals = 0;
  std::uint64_t barrier_id = 0;

  auto exhausted = [&](std::size_t t) { return idx[t] >= records[t].size() && !arrived[t]; };

  auto visit = [&](std::size_t t) -> bool {
    auto& stats = result.threads[t];
    if (!arrived[t] && idx[t] < records[t].size() && records[t][idx[t]].is_mem()) {
      // Apply up to `chunk` consecutive memory records, one access at a time.
      const std::size_t core = t % hierarchy.num_cores();
      std::size_t applied = 0;
      while (applied < chunk && idx[t] < records[t].size() && records[t][idx[t]].is_mem()) {
        const workload::SymtRecord& rec = records[t][idx[t]];
        const cachesim::MemAccessResult r =
            hierarchy.access(core, rec.addr, rec.op == workload::SymtOp::Write);
        ++result.totals.accesses;
        result.totals.cycles += r.cycles;
        result.totals.l1_hits += r.l1_hit ? 1 : 0;
        result.totals.l2_hits += r.l2_hit ? 1 : 0;
        result.totals.l3_hits += r.l3_hit ? 1 : 0;
        result.totals.tlb_hits += r.tlb_hit ? 1 : 0;
        result.totals.stream_prefetched += r.stream_prefetched ? 1 : 0;
        ++stats.mem_refs;
        ++idx[t];
        ++applied;
      }
      return true;
    }
    if (idx[t] >= records[t].size() && !arrived[t]) return false;  // exhausted

    const workload::SymtRecord& sync = records[t][idx[t]];
    auto trace_error = [&](const std::string& what) {
      throw std::runtime_error("replay: thread " + std::to_string(t) + ": " + what);
    };
    switch (sync.op) {
      case workload::SymtOp::Barrier: {
        if (!arrived[t]) {
          if (barrier_arrivals == 0) {
            barrier_id = sync.arg;
          } else if (sync.arg != barrier_id) {
            trace_error("barrier id mismatch");
          }
          arrived[t] = true;
          ++barrier_arrivals;
          ++stats.barriers;
          ++result.sync_events;
        }
        if (barrier_arrivals < n) {
          ++stats.blocked_visits;
          return false;
        }
        for (std::size_t u = 0; u < n; ++u) {
          if (arrived[u]) {
            arrived[u] = false;
            ++idx[u];
          }
        }
        barrier_arrivals = 0;
        return true;
      }
      case workload::SymtOp::LockAcquire: {
        const auto it = lock_owner.find(sync.arg);
        if (it != lock_owner.end()) {
          if (it->second == t) trace_error("recursive acquire");
          ++stats.blocked_visits;
          return false;
        }
        lock_owner.emplace(sync.arg, t);
        ++stats.lock_acquires;
        ++result.sync_events;
        ++idx[t];
        return true;
      }
      case workload::SymtOp::LockRelease: {
        const auto it = lock_owner.find(sync.arg);
        if (it == lock_owner.end() || it->second != t) trace_error("release without hold");
        lock_owner.erase(it);
        ++stats.lock_releases;
        ++result.sync_events;
        ++idx[t];
        return true;
      }
      case workload::SymtOp::Signal: {
        ++signal_count[{sync.arg, t}];
        ++stats.signals;
        ++result.sync_events;
        ++idx[t];
        return true;
      }
      case workload::SymtOp::Wait: {
        const std::size_t partner = sync.partner;
        if (partner >= n) trace_error("wait on nonexistent thread");
        const auto sig = signal_count.find({sync.arg, partner});
        const std::uint64_t available = sig == signal_count.end() ? 0 : sig->second;
        std::uint64_t& consumed = wait_consumed[{sync.arg, partner, t}];
        if (available <= consumed) {
          ++stats.blocked_visits;
          return false;
        }
        ++consumed;
        ++stats.waits;
        ++result.sync_events;
        ++idx[t];
        return true;
      }
      default: trace_error("memory record on the sync path");
    }
    return false;
  };

  for (;;) {
    bool all_done = true;
    for (std::size_t t = 0; t < n; ++t) all_done &= exhausted(t);
    if (all_done) break;
    ++result.rounds;
    bool progress = false;
    for (std::size_t t = 0; t < n; ++t) progress |= visit(t);
    if (!progress) throw std::runtime_error("replay: deadlock — no thread can make progress");
  }
  return result;
}

}  // namespace symbiosis::testing_support
