// reference_kernels.hpp — deliberately naive reference implementations of
// the simulation hot-path kernels (cache access, counting-Bloom update,
// split-filter signature unit, bit-vector metrics).
//
// These models optimise for OBVIOUSNESS, not speed: straight-line loops,
// per-bit scans, std::set-based dedup, recounted aggregates. The optimised
// kernels in src/ (word-parallel popcounts, cached geometry masks, k = 1
// fast paths, batched replay) are checked against them on randomised and
// adversarial inputs by tests/test_differential_kernels.cpp. If you change
// kernel SEMANTICS, change the reference here in the same PR — the suite
// exists to catch accidental drift from performance work, not to freeze
// behaviour forever.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "cachesim/cache.hpp"
#include "sig/bitvector.hpp"
#include "sig/counting_bloom.hpp"
#include "sig/filter_unit.hpp"
#include "sig/hash.hpp"

namespace symbiosis::testref {

/// Naive set-associative cache with explicit per-line timestamps. Supports
/// the two deterministic replacement policies (LRU and FIFO); Random and
/// TreePlru keep extra policy state the naive model intentionally omits.
class ReferenceCache {
 public:
  ReferenceCache(cachesim::CacheGeometry geometry, cachesim::ReplacementKind replacement,
                 std::size_t requestors)
      : geom_(geometry),
        fifo_(replacement == cachesim::ReplacementKind::Fifo),
        lines_(geometry.lines()),
        per_requestor_(requestors) {}

  cachesim::AccessResult access(cachesim::LineAddr line, bool is_write, std::size_t requestor) {
    cachesim::AccessResult result;
    const std::size_t set = geom_.set_of(line);
    const std::uint64_t tag = geom_.tag_of(line);
    result.set = set;
    ++total_.accesses;
    ++per_requestor_[requestor].accesses;

    for (std::size_t w = 0; w < geom_.ways; ++w) {
      Line& entry = lines_[set * geom_.ways + w];
      if (entry.valid && entry.tag == tag) {
        result.hit = true;
        result.way = w;
        entry.dirty = entry.dirty || is_write;
        if (!fifo_) entry.stamp = ++clock_;  // LRU refreshes on touch, FIFO does not
        ++total_.hits;
        ++per_requestor_[requestor].hits;
        return result;
      }
    }

    ++total_.misses;
    ++per_requestor_[requestor].misses;

    std::size_t way = geom_.ways;
    for (std::size_t w = 0; w < geom_.ways; ++w) {
      if (!lines_[set * geom_.ways + w].valid) {
        way = w;
        break;
      }
    }
    if (way == geom_.ways) {
      // Victim: smallest stamp, lowest way on ties (matches the policies'
      // strict < scan).
      way = 0;
      for (std::size_t w = 1; w < geom_.ways; ++w) {
        if (lines_[set * geom_.ways + w].stamp < lines_[set * geom_.ways + way].stamp) way = w;
      }
      Line& victim = lines_[set * geom_.ways + way];
      result.evicted = true;
      result.victim_line = (victim.tag << geom_.set_bits()) | set;
      result.victim_dirty = victim.dirty;
      ++total_.evictions;
      ++per_requestor_[victim.owner].evictions;
      if (victim.dirty) {
        ++total_.writebacks;
        ++per_requestor_[victim.owner].writebacks;
      }
    }

    Line& entry = lines_[set * geom_.ways + way];
    entry.tag = tag;
    entry.valid = true;
    entry.dirty = is_write;
    entry.owner = requestor;
    entry.stamp = ++clock_;  // both LRU and FIFO stamp on fill
    result.way = way;
    return result;
  }

  [[nodiscard]] std::size_t occupancy(std::size_t requestor) const {
    std::size_t count = 0;
    for (const Line& entry : lines_) {
      if (entry.valid &&
          (requestor == cachesim::Cache::kAnyRequestor || entry.owner == requestor)) {
        ++count;
      }
    }
    return count;
  }

  [[nodiscard]] const cachesim::CacheStats& stats() const { return total_; }
  [[nodiscard]] const cachesim::CacheStats& stats_for(std::size_t requestor) const {
    return per_requestor_.at(requestor);
  }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t stamp = 0;
    bool valid = false;
    bool dirty = false;
    std::size_t owner = 0;
  };

  cachesim::CacheGeometry geom_;
  bool fifo_;
  std::vector<Line> lines_;
  std::uint64_t clock_ = 0;
  cachesim::CacheStats total_;
  std::vector<cachesim::CacheStats> per_requestor_;
};

/// Naive counting Bloom filter: std::set dedup, recounted aggregates.
class ReferenceCbf {
 public:
  ReferenceCbf(std::size_t entries, unsigned counter_bits, unsigned k, sig::HashKind kind)
      : hash_(kind, entries), k_(k), max_value_((1u << counter_bits) - 1), counters_(entries, 0) {}

  [[nodiscard]] std::set<std::size_t> indices_of(sig::LineAddr line) const {
    std::set<std::size_t> out;
    for (unsigned i = 0; i < k_; ++i) out.insert(hash_.index_k(line, i));
    return out;
  }

  void insert(sig::LineAddr line) {
    for (const std::size_t idx : indices_of(line)) {
      if (counters_[idx] < max_value_) ++counters_[idx];
    }
  }

  void remove(sig::LineAddr line) {
    for (const std::size_t idx : indices_of(line)) {
      if (counters_[idx] == 0 || counters_[idx] == max_value_) continue;
      --counters_[idx];
    }
  }

  [[nodiscard]] bool maybe_contains(sig::LineAddr line) const {
    for (const std::size_t idx : indices_of(line)) {
      if (counters_[idx] == 0) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t nonzero_count() const {
    std::size_t n = 0;
    for (const unsigned c : counters_) n += c != 0;
    return n;
  }

  [[nodiscard]] std::size_t saturated_count() const {
    std::size_t n = 0;
    for (const unsigned c : counters_) n += c == max_value_;
    return n;
  }

  [[nodiscard]] unsigned counter_at(std::size_t i) const { return counters_.at(i); }

 private:
  sig::IndexHash hash_;
  unsigned k_;
  unsigned max_value_;
  std::vector<unsigned> counters_;
};

/// Naive split-CBF signature unit: shared counters + per-core index SETS.
class ReferenceFilterUnit {
 public:
  explicit ReferenceFilterUnit(const sig::FilterUnitConfig& config)
      : config_(config),
        max_value_((1u << config.counter_bits) - 1),
        counters_(config.entries(), 0),
        cf_(config.num_cores),
        lf_(config.num_cores) {}

  [[nodiscard]] std::set<std::size_t> indices_of(sig::LineAddr line, std::size_t set,
                                                 std::size_t way) const {
    std::set<std::size_t> out;
    if (!config_.sampled(set)) return out;
    if (config_.hash == sig::HashKind::Presence) {
      out.insert((set >> config_.sample_shift) * config_.cache_ways + way);
      return out;
    }
    const sig::IndexHash hash(config_.hash, config_.entries());
    for (unsigned k = 0; k < config_.hash_functions; ++k) out.insert(hash.index_k(line, k));
    return out;
  }

  void on_fill(sig::LineAddr line, std::size_t core, std::size_t set, std::size_t way) {
    for (const std::size_t idx : indices_of(line, set, way)) {
      if (counters_[idx] < max_value_) ++counters_[idx];
      cf_[core].insert(idx);
    }
  }

  void on_evict(sig::LineAddr line, std::size_t set, std::size_t way) {
    for (const std::size_t idx : indices_of(line, set, way)) {
      if (counters_[idx] == 0 || counters_[idx] == max_value_) continue;
      if (--counters_[idx] == 0) {
        for (auto& cf : cf_) cf.erase(idx);
      }
    }
  }

  void snapshot(std::size_t core) { lf_[core] = cf_[core]; }

  /// RBV = CF \ LF as an index set.
  [[nodiscard]] std::set<std::size_t> rbv(std::size_t core) const {
    std::set<std::size_t> out;
    for (const std::size_t idx : cf_[core]) {
      if (!lf_[core].count(idx)) out.insert(idx);
    }
    return out;
  }

  /// popcount(a XOR b) over index sets = |symmetric difference|.
  [[nodiscard]] static std::size_t sym_diff(const std::set<std::size_t>& a,
                                            const std::set<std::size_t>& b) {
    std::size_t n = 0;
    for (const std::size_t idx : a) n += !b.count(idx);
    for (const std::size_t idx : b) n += !a.count(idx);
    return n;
  }

  [[nodiscard]] unsigned counter_at(std::size_t i) const { return counters_.at(i); }
  [[nodiscard]] const std::set<std::size_t>& cf(std::size_t core) const { return cf_.at(core); }
  [[nodiscard]] const std::set<std::size_t>& lf(std::size_t core) const { return lf_.at(core); }

 private:
  sig::FilterUnitConfig config_;
  unsigned max_value_;
  std::vector<unsigned> counters_;
  std::vector<std::set<std::size_t>> cf_;
  std::vector<std::set<std::size_t>> lf_;
};

/// Per-bit reference popcounts over BitVector (no word tricks).
[[nodiscard]] inline std::size_t naive_popcount(const sig::BitVector& v) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < v.size(); ++i) n += v.test(i);
  return n;
}

[[nodiscard]] inline std::size_t naive_xor_popcount(const sig::BitVector& a,
                                                    const sig::BitVector& b) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.size(); ++i) n += a.test(i) != b.test(i);
  return n;
}

[[nodiscard]] inline std::size_t naive_and_popcount(const sig::BitVector& a,
                                                    const sig::BitVector& b) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.size(); ++i) n += a.test(i) && b.test(i);
  return n;
}

}  // namespace symbiosis::testref
