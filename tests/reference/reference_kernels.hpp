// reference_kernels.hpp — deliberately naive reference implementations of
// the simulation hot-path kernels (cache access, counting-Bloom update,
// split-filter signature unit, bit-vector metrics).
//
// These models optimise for OBVIOUSNESS, not speed: straight-line loops,
// per-bit scans, std::set-based dedup, recounted aggregates. The optimised
// kernels in src/ (word-parallel popcounts, cached geometry masks, k = 1
// fast paths, batched replay) are checked against them on randomised and
// adversarial inputs by tests/test_differential_kernels.cpp. If you change
// kernel SEMANTICS, change the reference here in the same PR — the suite
// exists to catch accidental drift from performance work, not to freeze
// behaviour forever.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "cachesim/cache.hpp"
#include "cachesim/hierarchy.hpp"
#include "sig/bitvector.hpp"
#include "sig/counting_bloom.hpp"
#include "sig/filter_unit.hpp"
#include "sig/hash.hpp"

namespace symbiosis::testref {

/// Naive set-associative cache with explicit per-line timestamps. Supports
/// the three deterministic replacement policies — LRU, FIFO and SRRIP (the
/// textbook aging loop, no early-outs); Random and TreePlru keep extra
/// policy state the naive model intentionally omits.
class ReferenceCache {
 public:
  ReferenceCache(cachesim::CacheGeometry geometry, cachesim::ReplacementKind replacement,
                 std::size_t requestors)
      : geom_(geometry),
        fifo_(replacement == cachesim::ReplacementKind::Fifo),
        srrip_(replacement == cachesim::ReplacementKind::Srrip),
        lines_(geometry.lines()),
        per_requestor_(requestors) {}

  cachesim::AccessResult access(cachesim::LineAddr line, bool is_write, std::size_t requestor) {
    cachesim::AccessResult result;
    const std::size_t set = geom_.set_of(line);
    const std::uint64_t tag = geom_.tag_of(line);
    result.set = set;
    ++total_.accesses;
    ++per_requestor_[requestor].accesses;

    for (std::size_t w = 0; w < geom_.ways; ++w) {
      Line& entry = lines_[set * geom_.ways + w];
      if (entry.valid && entry.tag == tag) {
        result.hit = true;
        result.way = w;
        entry.dirty = entry.dirty || is_write;
        if (srrip_) {
          entry.rrpv = 0;  // SRRIP-HP: a hit promotes to near-immediate re-reference
        } else if (!fifo_) {
          entry.stamp = ++clock_;  // LRU refreshes on touch, FIFO does not
        }
        ++total_.hits;
        ++per_requestor_[requestor].hits;
        return result;
      }
    }

    ++total_.misses;
    ++per_requestor_[requestor].misses;

    std::size_t way = geom_.ways;
    for (std::size_t w = 0; w < geom_.ways; ++w) {
      if (!lines_[set * geom_.ways + w].valid) {
        way = w;
        break;
      }
    }
    if (way == geom_.ways) {
      if (srrip_) {
        // SRRIP victim: lowest way whose RRPV is distant (kMax); when none
        // qualifies, age the whole set by one and rescan until one does.
        while (way == geom_.ways) {
          for (std::size_t w = 0; w < geom_.ways; ++w) {
            if (lines_[set * geom_.ways + w].rrpv == kRrpvMax) {
              way = w;
              break;
            }
          }
          if (way == geom_.ways) {
            for (std::size_t w = 0; w < geom_.ways; ++w) ++lines_[set * geom_.ways + w].rrpv;
          }
        }
      } else {
        // Victim: smallest stamp, lowest way on ties (matches the policies'
        // strict < scan).
        way = 0;
        for (std::size_t w = 1; w < geom_.ways; ++w) {
          if (lines_[set * geom_.ways + w].stamp < lines_[set * geom_.ways + way].stamp) way = w;
        }
      }
      Line& victim = lines_[set * geom_.ways + way];
      result.evicted = true;
      result.victim_line = (victim.tag << geom_.set_bits()) | set;
      result.victim_dirty = victim.dirty;
      ++total_.evictions;
      ++per_requestor_[victim.owner].evictions;
      if (victim.dirty) {
        ++total_.writebacks;
        ++per_requestor_[victim.owner].writebacks;
      }
    }

    Line& entry = lines_[set * geom_.ways + way];
    entry.tag = tag;
    entry.valid = true;
    entry.dirty = is_write;
    entry.owner = requestor;
    entry.stamp = ++clock_;           // both LRU and FIFO stamp on fill
    entry.rrpv = kRrpvMax - 1;        // SRRIP-HP inserts at "long re-reference"
    result.way = way;
    return result;
  }

  /// Inclusion back-invalidation: drop @p line if present, reporting where
  /// it sat (the filter's on_evict needs the location).
  bool invalidate(cachesim::LineAddr line, std::size_t& set_out, std::size_t& way_out) {
    const std::size_t set = geom_.set_of(line);
    const std::uint64_t tag = geom_.tag_of(line);
    for (std::size_t w = 0; w < geom_.ways; ++w) {
      Line& entry = lines_[set * geom_.ways + w];
      if (entry.valid && entry.tag == tag) {
        entry.valid = false;
        entry.dirty = false;
        set_out = set;
        way_out = w;
        return true;
      }
    }
    return false;
  }

  bool invalidate(cachesim::LineAddr line) {
    std::size_t set = 0;
    std::size_t way = 0;
    return invalidate(line, set, way);
  }

  [[nodiscard]] std::size_t occupancy(std::size_t requestor) const {
    std::size_t count = 0;
    for (const Line& entry : lines_) {
      if (entry.valid &&
          (requestor == cachesim::Cache::kAnyRequestor || entry.owner == requestor)) {
        ++count;
      }
    }
    return count;
  }

  [[nodiscard]] const cachesim::CacheStats& stats() const { return total_; }
  [[nodiscard]] const cachesim::CacheStats& stats_for(std::size_t requestor) const {
    return per_requestor_.at(requestor);
  }

 private:
  static constexpr unsigned kRrpvMax = 3;  // 2-bit RRPV, matches SrripPolicy

  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t stamp = 0;
    unsigned rrpv = kRrpvMax;
    bool valid = false;
    bool dirty = false;
    std::size_t owner = 0;
  };

  cachesim::CacheGeometry geom_;
  bool fifo_;
  bool srrip_;
  std::vector<Line> lines_;
  std::uint64_t clock_ = 0;
  cachesim::CacheStats total_;
  std::vector<cachesim::CacheStats> per_requestor_;
};

/// Naive counting Bloom filter: std::set dedup, recounted aggregates.
class ReferenceCbf {
 public:
  ReferenceCbf(std::size_t entries, unsigned counter_bits, unsigned k, sig::HashKind kind)
      : hash_(kind, entries), k_(k), max_value_((1u << counter_bits) - 1), counters_(entries, 0) {}

  [[nodiscard]] std::set<std::size_t> indices_of(sig::LineAddr line) const {
    std::set<std::size_t> out;
    for (unsigned i = 0; i < k_; ++i) out.insert(hash_.index_k(line, i));
    return out;
  }

  void insert(sig::LineAddr line) {
    for (const std::size_t idx : indices_of(line)) {
      if (counters_[idx] < max_value_) ++counters_[idx];
    }
  }

  void remove(sig::LineAddr line) {
    for (const std::size_t idx : indices_of(line)) {
      if (counters_[idx] == 0 || counters_[idx] == max_value_) continue;
      --counters_[idx];
    }
  }

  [[nodiscard]] bool maybe_contains(sig::LineAddr line) const {
    for (const std::size_t idx : indices_of(line)) {
      if (counters_[idx] == 0) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t nonzero_count() const {
    std::size_t n = 0;
    for (const unsigned c : counters_) n += c != 0;
    return n;
  }

  [[nodiscard]] std::size_t saturated_count() const {
    std::size_t n = 0;
    for (const unsigned c : counters_) n += c == max_value_;
    return n;
  }

  [[nodiscard]] unsigned counter_at(std::size_t i) const { return counters_.at(i); }

 private:
  sig::IndexHash hash_;
  unsigned k_;
  unsigned max_value_;
  std::vector<unsigned> counters_;
};

/// Naive split-CBF signature unit: shared counters + per-core index SETS.
class ReferenceFilterUnit {
 public:
  explicit ReferenceFilterUnit(const sig::FilterUnitConfig& config)
      : config_(config),
        max_value_((1u << config.counter_bits) - 1),
        counters_(config.entries(), 0),
        cf_(config.num_cores),
        lf_(config.num_cores) {}

  [[nodiscard]] std::set<std::size_t> indices_of(sig::LineAddr line, std::size_t set,
                                                 std::size_t way) const {
    std::set<std::size_t> out;
    if (!config_.sampled(set)) return out;
    if (config_.hash == sig::HashKind::Presence) {
      out.insert((set >> config_.sample_shift) * config_.cache_ways + way);
      return out;
    }
    const sig::IndexHash hash(config_.hash, config_.entries());
    for (unsigned k = 0; k < config_.hash_functions; ++k) out.insert(hash.index_k(line, k));
    return out;
  }

  void on_fill(sig::LineAddr line, std::size_t core, std::size_t set, std::size_t way) {
    for (const std::size_t idx : indices_of(line, set, way)) {
      if (counters_[idx] < max_value_) ++counters_[idx];
      cf_[core].insert(idx);
    }
  }

  void on_evict(sig::LineAddr line, std::size_t set, std::size_t way) {
    for (const std::size_t idx : indices_of(line, set, way)) {
      if (counters_[idx] == 0 || counters_[idx] == max_value_) continue;
      if (--counters_[idx] == 0) {
        for (auto& cf : cf_) cf.erase(idx);
      }
    }
  }

  void snapshot(std::size_t core) { lf_[core] = cf_[core]; }

  /// RBV = CF \ LF as an index set.
  [[nodiscard]] std::set<std::size_t> rbv(std::size_t core) const {
    std::set<std::size_t> out;
    for (const std::size_t idx : cf_[core]) {
      if (!lf_[core].count(idx)) out.insert(idx);
    }
    return out;
  }

  /// popcount(a XOR b) over index sets = |symmetric difference|.
  [[nodiscard]] static std::size_t sym_diff(const std::set<std::size_t>& a,
                                            const std::set<std::size_t>& b) {
    std::size_t n = 0;
    for (const std::size_t idx : a) n += !b.count(idx);
    for (const std::size_t idx : b) n += !a.count(idx);
    return n;
  }

  [[nodiscard]] unsigned counter_at(std::size_t i) const { return counters_.at(i); }
  [[nodiscard]] const std::set<std::size_t>& cf(std::size_t core) const { return cf_.at(core); }
  [[nodiscard]] const std::set<std::size_t>& lf(std::size_t core) const { return lf_.at(core); }

 private:
  sig::FilterUnitConfig config_;
  unsigned max_value_;
  std::vector<unsigned> counters_;
  std::vector<std::set<std::size_t>> cf_;
  std::vector<std::set<std::size_t>> lf_;
};

/// Naive fully-associative LRU TLB: explicit stamps, full scans. Fills take
/// the HIGHEST-index invalid slot (the optimised prefix allocator's order);
/// full-TLB victims take the first minimum-stamp slot (unique — every touch
/// assigns a fresh stamp).
class ReferenceTlb {
 public:
  explicit ReferenceTlb(std::size_t entries = 64, std::size_t page_bytes = 4096)
      : page_bytes_(page_bytes), slots_(entries) {}

  bool access(std::uint64_t addr) {
    const std::uint64_t page = addr / page_bytes_;
    for (Slot& slot : slots_) {
      if (slot.valid && slot.page == page) {
        ++hits_;
        slot.stamp = ++clock_;
        return true;
      }
    }
    ++misses_;
    std::size_t victim = slots_.size();
    for (std::size_t i = slots_.size(); i-- > 0;) {
      if (!slots_[i].valid) {
        victim = i;
        break;
      }
    }
    if (victim == slots_.size()) {
      victim = 0;
      for (std::size_t i = 1; i < slots_.size(); ++i) {
        if (slots_[i].stamp < slots_[victim].stamp) victim = i;
      }
    }
    slots_[victim] = Slot{page, ++clock_, true};
    return false;
  }

  void flush() {
    for (Slot& slot : slots_) slot.valid = false;
  }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

 private:
  struct Slot {
    std::uint64_t page = 0;
    std::uint64_t stamp = 0;
    bool valid = false;
  };

  std::size_t page_bytes_;
  std::vector<Slot> slots_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Naive model of the PRE-GRAPH two-level hierarchy: per-core L1s over one
/// shared L2 (or per-core private L2s), TLBs, the stride-stream detector,
/// inclusion back-invalidation and the signature filter — exactly the
/// semantics Hierarchy's degenerate topologies promise to preserve. The
/// differential hierarchy suite replays identical traces through this and
/// the composable graph and requires bit-identical results.
class ReferenceTwoLevelHierarchy {
 public:
  explicit ReferenceTwoLevelHierarchy(const cachesim::HierarchyConfig& config) : config_(config) {
    for (std::size_t c = 0; c < config.num_cores; ++c) {
      l1_.emplace_back(config.l1, config.l1_replacement, 1);
      tlb_.emplace_back(config.tlb_entries);
    }
    const std::size_t l2_count = config.shared_l2 ? 1 : config.num_cores;
    for (std::size_t i = 0; i < l2_count; ++i) {
      l2_.emplace_back(config.l2, config.l2_replacement, config.num_cores);
    }
    if (config.signature.enabled && config.shared_l2) {
      sig::FilterUnitConfig fc;
      fc.num_cores = config.num_cores;
      fc.cache_sets = config.l2.sets();
      fc.cache_ways = config.l2.ways;
      fc.counter_bits = config.signature.counter_bits;
      fc.hash_functions = config.signature.hash_functions;
      fc.hash = config.signature.hash;
      fc.sample_shift = config.signature.sample_shift;
      filter_.emplace(fc);
    }
    stream_.resize(config.num_cores);
  }

  cachesim::MemAccessResult access(std::size_t core, cachesim::Addr addr, bool is_write) {
    cachesim::MemAccessResult result;
    const cachesim::LineAddr line = config_.l1.line_of(addr);

    result.tlb_hit = tlb_[core].access(addr);
    if (!result.tlb_hit) result.cycles += config_.latency.tlb_miss;

    Stream& ss = stream_[core];
    const auto stride =
        static_cast<std::int64_t>(line) - static_cast<std::int64_t>(ss.last_line);
    const bool streaming =
        ss.valid && stride == ss.last_stride && stride != 0 && stride >= -8 && stride <= 8;
    ss.last_stride = stride;
    ss.last_line = line;
    ss.valid = true;

    const cachesim::AccessResult l1r = l1_[core].access(line, is_write, 0);
    result.cycles += config_.latency.l1_hit;
    if (l1r.hit) {
      result.l1_hit = true;
      return result;
    }

    ReferenceCache& l2 = l2_[config_.shared_l2 ? 0 : core];
    const cachesim::AccessResult l2r = l2.access(line, is_write, core);
    result.cycles += config_.latency.l2_hit;
    if (l2r.hit) {
      result.l2_hit = true;
      return result;
    }

    if (l2r.evicted) {
      // Inclusion: a shared L2 shadows every L1, a private one only its own.
      if (config_.shared_l2) {
        for (ReferenceCache& l1 : l1_) l1.invalidate(l2r.victim_line);
      } else {
        l1_[core].invalidate(l2r.victim_line);
      }
      if (filter_) filter_->on_evict(l2r.victim_line, l2r.set, l2r.way);
    }
    if (filter_) filter_->on_fill(line, core, l2r.set, l2r.way);

    if (streaming) {
      result.stream_prefetched = true;
      result.cycles += config_.latency.stream_miss;
    } else {
      result.cycles += config_.latency.memory;
    }
    return result;
  }

  void on_context_switch_in(std::size_t core) {
    tlb_[core].flush();
    if (filter_) filter_->snapshot(core);
  }

  [[nodiscard]] ReferenceCache& l1(std::size_t core) { return l1_[core]; }
  [[nodiscard]] ReferenceCache& l2(std::size_t core = 0) {
    return l2_[config_.shared_l2 ? 0 : core];
  }
  [[nodiscard]] ReferenceTlb& tlb(std::size_t core) { return tlb_[core]; }
  [[nodiscard]] ReferenceFilterUnit* filter() { return filter_ ? &*filter_ : nullptr; }

 private:
  struct Stream {
    cachesim::LineAddr last_line = 0;
    std::int64_t last_stride = 0;
    bool valid = false;
  };

  cachesim::HierarchyConfig config_;
  std::vector<ReferenceCache> l1_;
  std::vector<ReferenceCache> l2_;
  std::vector<ReferenceTlb> tlb_;
  std::optional<ReferenceFilterUnit> filter_;
  std::vector<Stream> stream_;
};

/// Per-bit reference popcounts over BitVector (no word tricks).
[[nodiscard]] inline std::size_t naive_popcount(const sig::BitVector& v) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < v.size(); ++i) n += v.test(i);
  return n;
}

[[nodiscard]] inline std::size_t naive_xor_popcount(const sig::BitVector& a,
                                                    const sig::BitVector& b) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.size(); ++i) n += a.test(i) != b.test(i);
  return n;
}

[[nodiscard]] inline std::size_t naive_and_popcount(const sig::BitVector& a,
                                                    const sig::BitVector& b) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.size(); ++i) n += a.test(i) && b.test(i);
  return n;
}

// --- raw-word and packed-nibble references for the SIMD kernel layer
// (sig/kernels.hpp): per-bit / per-nibble scans, no word tricks. Every
// compiled backend is differentially tested against these on awkward
// widths by tests/test_kernels.cpp.

[[nodiscard]] inline std::size_t naive_word_popcount(const std::uint64_t* words, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (unsigned b = 0; b < 64; ++b) total += (words[i] >> b) & 1u;
  }
  return total;
}

[[nodiscard]] inline std::size_t naive_word_xor_popcount(const std::uint64_t* a,
                                                         const std::uint64_t* b, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (unsigned bit = 0; bit < 64; ++bit) total += ((a[i] ^ b[i]) >> bit) & 1u;
  }
  return total;
}

[[nodiscard]] inline std::size_t naive_word_and_popcount(const std::uint64_t* a,
                                                         const std::uint64_t* b, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (unsigned bit = 0; bit < 64; ++bit) total += ((a[i] & b[i]) >> bit) & 1u;
  }
  return total;
}

inline void naive_word_and_not(std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
                               std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t word = 0;
    for (unsigned bit = 0; bit < 64; ++bit) {
      const bool set = (((a[i] >> bit) & 1u) != 0) && (((b[i] >> bit) & 1u) == 0);
      if (set) word |= std::uint64_t{1} << bit;
    }
    dst[i] = word;
  }
}

/// Counter @p i of a packed nibble array (two per byte, low nibble first).
[[nodiscard]] inline std::uint8_t naive_nibble_get(const std::vector<std::uint8_t>& packed,
                                                   std::size_t i) {
  return (packed.at(i / 2) >> ((i % 2) * 4)) & 0x0fu;
}

inline void naive_nibble_set(std::vector<std::uint8_t>& packed, std::size_t i,
                             std::uint8_t value) {
  const unsigned shift = (i % 2) * 4;
  packed.at(i / 2) = static_cast<std::uint8_t>(
      (packed.at(i / 2) & ~(0x0fu << shift)) | ((value & 0x0fu) << shift));
}

[[nodiscard]] inline std::size_t naive_nibble_count_eq(const std::vector<std::uint8_t>& packed,
                                                       std::size_t nibbles, std::uint8_t value) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < nibbles; ++i) total += naive_nibble_get(packed, i) == value;
  return total;
}

inline void naive_nibble_merge_saturating(std::vector<std::uint8_t>& dst,
                                          const std::vector<std::uint8_t>& src,
                                          std::size_t nibbles, std::uint8_t max_value) {
  for (std::size_t i = 0; i < nibbles; ++i) {
    const unsigned sum = naive_nibble_get(dst, i) + naive_nibble_get(src, i);
    naive_nibble_set(dst, i, static_cast<std::uint8_t>(sum > max_value ? max_value : sum));
  }
}

inline void naive_nibble_decay(std::vector<std::uint8_t>& packed, std::size_t nibbles,
                               std::uint8_t max_value) {
  for (std::size_t i = 0; i < nibbles; ++i) {
    const std::uint8_t value = naive_nibble_get(packed, i);
    if (value != 0 && value != max_value) {
      naive_nibble_set(packed, i, static_cast<std::uint8_t>(value - 1));
    }
  }
}

}  // namespace symbiosis::testref
