#include "workload/access_pattern.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <stdexcept>

namespace symbiosis::workload {
namespace {

class PatternBoundsTest : public testing::TestWithParam<PatternKind> {};

TEST_P(PatternBoundsTest, StaysInsideRegion) {
  PatternSpec spec;
  spec.kind = GetParam();
  spec.region_bytes = 64 * 1024;
  spec.line_bytes = 64;
  util::Rng rng(1);
  const Addr base = Addr{7} << 40;
  auto pattern = make_pattern(spec, base, rng);
  for (int i = 0; i < 20000; ++i) {
    const Addr addr = pattern->next(rng);
    ASSERT_GE(addr, base);
    ASSERT_LT(addr, base + spec.region_bytes);
    ASSERT_EQ(addr % 64, 0u) << "addresses must be line-aligned";
  }
}

TEST_P(PatternBoundsTest, ResetIsDeterministicForDeterministicKinds) {
  PatternSpec spec;
  spec.kind = GetParam();
  spec.region_bytes = 8 * 1024;
  util::Rng rng(2);
  auto pattern = make_pattern(spec, 0, rng);
  if (spec.kind == PatternKind::Sequential || spec.kind == PatternKind::Strided ||
      spec.kind == PatternKind::Stream || spec.kind == PatternKind::PointerChase) {
    std::vector<Addr> first;
    util::Rng walk(3);
    for (int i = 0; i < 50; ++i) first.push_back(pattern->next(walk));
    pattern->reset();
    util::Rng walk2(3);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(pattern->next(walk2), first[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, PatternBoundsTest,
                         testing::Values(PatternKind::Sequential, PatternKind::Strided,
                                         PatternKind::Random, PatternKind::Zipf,
                                         PatternKind::PointerChase, PatternKind::Stream,
                                         PatternKind::StackDistance),
                         [](const auto& param_info) {
                           std::string name = to_string(param_info.param);
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(StridedPattern, Figure1Footprints) {
  // The paper's Fig 1: in an 8-set direct-mapped cache, a stride-8 app
  // touches 1/8 of the sets while a stride-2 app touches 1/2 — with the
  // same 100% miss rate. Here: distinct lines touched per region.
  auto footprint_lines = [](std::uint64_t stride_bytes) {
    PatternSpec spec;
    spec.kind = PatternKind::Strided;
    spec.region_bytes = 8 * 64;  // 8 lines
    spec.stride_bytes = stride_bytes;
    util::Rng rng(4);
    auto pattern = make_pattern(spec, 0, rng);
    std::set<Addr> lines;
    for (int i = 0; i < 64; ++i) lines.insert(pattern->next(rng) / 64);
    return lines.size();
  };
  EXPECT_EQ(footprint_lines(8 * 64), 1u);  // stride 8 lines: 1 of 8
  EXPECT_EQ(footprint_lines(2 * 64), 4u);  // stride 2 lines: 4 of 8
  EXPECT_EQ(footprint_lines(1 * 64), 8u);  // unit stride: all 8
}

TEST(PointerChase, VisitsEveryLineOncePerLap) {
  PatternSpec spec;
  spec.kind = PatternKind::PointerChase;
  spec.region_bytes = 128 * 64;  // 128 lines
  util::Rng rng(5);
  auto pattern = make_pattern(spec, 0, rng);
  std::set<Addr> lap1;
  for (int i = 0; i < 128; ++i) lap1.insert(pattern->next(rng));
  EXPECT_EQ(lap1.size(), 128u);  // Hamiltonian cycle: all distinct
  // Second lap revisits in the same order (single cycle).
  std::set<Addr> lap2;
  for (int i = 0; i < 128; ++i) lap2.insert(pattern->next(rng));
  EXPECT_EQ(lap1, lap2);
}

TEST(PointerChase, OrderIsScattered) {
  PatternSpec spec;
  spec.kind = PatternKind::PointerChase;
  spec.region_bytes = 256 * 64;
  util::Rng rng(6);
  auto pattern = make_pattern(spec, 0, rng);
  // Count unit-stride steps: a random cycle should have almost none, which
  // is what defeats the stream-prefetch model (mcf-like behaviour).
  Addr prev = pattern->next(rng);
  int sequential_steps = 0;
  for (int i = 0; i < 255; ++i) {
    const Addr cur = pattern->next(rng);
    sequential_steps += (cur == prev + 64);
    prev = cur;
  }
  EXPECT_LT(sequential_steps, 16);
}

TEST(ZipfPattern, SkewConcentrates) {
  PatternSpec spec;
  spec.kind = PatternKind::Zipf;
  spec.region_bytes = 1024 * 64;
  spec.zipf_skew = 1.1;
  util::Rng rng(7);
  auto pattern = make_pattern(spec, 0, rng);
  std::map<Addr, int> counts;
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[pattern->next(rng)];
  // The hottest line should dwarf the uniform share (n/1024 ≈ 29).
  int hottest = 0;
  for (const auto& [addr, count] : counts) hottest = std::max(hottest, count);
  EXPECT_GT(hottest, 50 * n / 1024 / 10);
  // And far fewer than all lines should carry half the mass.
  EXPECT_LT(counts.size(), 1025u);
}

TEST(StackDistance, LocalityKnobControlsFootprintGrowth) {
  auto distinct_lines = [](double locality) {
    PatternSpec spec;
    spec.kind = PatternKind::StackDistance;
    spec.region_bytes = 4096 * 64;
    spec.locality = locality;
    util::Rng rng(8);
    auto pattern = make_pattern(spec, 0, rng);
    std::set<Addr> lines;
    for (int i = 0; i < 5000; ++i) lines.insert(pattern->next(rng));
    return lines.size();
  };
  EXPECT_GT(distinct_lines(0.1), 2 * distinct_lines(0.9));
}

TEST(Patterns, SequentialWrapsRegion) {
  PatternSpec spec;
  spec.kind = PatternKind::Sequential;
  spec.region_bytes = 4 * 64;
  util::Rng rng(9);
  auto pattern = make_pattern(spec, 0, rng);
  EXPECT_EQ(pattern->next(rng), 0u);
  EXPECT_EQ(pattern->next(rng), 64u);
  EXPECT_EQ(pattern->next(rng), 128u);
  EXPECT_EQ(pattern->next(rng), 192u);
  EXPECT_EQ(pattern->next(rng), 0u);  // wrap
}

TEST(Patterns, Validation) {
  PatternSpec spec;
  spec.region_bytes = 32;  // smaller than one line
  util::Rng rng(10);
  EXPECT_THROW(make_pattern(spec, 0, rng), std::invalid_argument);
  spec.region_bytes = 4096;
  spec.line_bytes = 48;  // not a power of two
  EXPECT_THROW(make_pattern(spec, 0, rng), std::invalid_argument);
}

TEST(Patterns, NameRoundTrip) {
  for (const auto kind : {PatternKind::Sequential, PatternKind::Strided, PatternKind::Random,
                          PatternKind::Zipf, PatternKind::PointerChase, PatternKind::Stream,
                          PatternKind::StackDistance}) {
    EXPECT_EQ(parse_pattern(to_string(kind)), kind);
  }
  EXPECT_THROW((void)parse_pattern("bogus"), std::invalid_argument);
}

}  // namespace
}  // namespace symbiosis::workload
