// Unit + concurrency tests for the obs metrics registry. The concurrency
// cases are the TSan targets: relaxed-atomic updates and mutex-guarded
// registration racing from many threads must stay data-race-free.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace symbiosis::obs {
namespace {

TEST(MetricName, Validation) {
  EXPECT_TRUE(valid_metric_name("cachesim.l2.miss"));
  EXPECT_TRUE(valid_metric_name("a"));
  EXPECT_TRUE(valid_metric_name("a_b.c_0"));
  EXPECT_FALSE(valid_metric_name(""));
  EXPECT_FALSE(valid_metric_name("."));
  EXPECT_FALSE(valid_metric_name("a."));
  EXPECT_FALSE(valid_metric_name(".a"));
  EXPECT_FALSE(valid_metric_name("a..b"));
  EXPECT_FALSE(valid_metric_name("A.b"));
  EXPECT_FALSE(valid_metric_name("a-b"));
  EXPECT_FALSE(valid_metric_name("a b"));
}

TEST(Counter, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetValueReset) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketsAndAggregates) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);  // empty -> 0 by contract
  h.observe(0);            // bucket 0: exactly zero
  h.observe(1);            // bucket 1: [1, 2)
  h.observe(2);            // bucket 2: [2, 4)
  h.observe(3);            // bucket 2
  h.observe(1024);         // bucket 11: [1024, 2048)
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 1024);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_DOUBLE_EQ(h.mean(), 1030.0 / 5.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(11), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST(Registry, FindOrCreateReturnsStableReference) {
  Counter& a = counter("test.registry.stable");
  a.add(7);
  Counter& b = counter("test.registry.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 7u);
}

TEST(Registry, KindCollisionIsAnInvariantViolation) {
  util::ScopedCheckMode mode(util::CheckMode::Throw);
  (void)counter("test.registry.collision");
  EXPECT_THROW((void)gauge("test.registry.collision"), util::CheckError);
  EXPECT_THROW((void)histogram("test.registry.collision"), util::CheckError);
}

TEST(Registry, MalformedNameIsAnInvariantViolation) {
  util::ScopedCheckMode mode(util::CheckMode::Throw);
  EXPECT_THROW((void)counter("Bad.Name"), util::CheckError);
  EXPECT_THROW((void)counter(""), util::CheckError);
}

TEST(Registry, SnapshotIsNameSortedAndTyped) {
  counter("test.snapshot.zz").add(3);
  gauge("test.snapshot.aa").set(1.5);
  histogram("test.snapshot.mm").observe(9);

  const auto samples = MetricRegistry::global().snapshot();
  ASSERT_GE(samples.size(), 3u);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].name, samples[i].name) << "snapshot not sorted";
  }

  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const auto& s : samples) {
    if (s.name == "test.snapshot.zz") {
      saw_counter = true;
      EXPECT_EQ(s.kind, MetricKind::Counter);
      EXPECT_EQ(s.count, 3u);
    } else if (s.name == "test.snapshot.aa") {
      saw_gauge = true;
      EXPECT_EQ(s.kind, MetricKind::Gauge);
      EXPECT_DOUBLE_EQ(s.value, 1.5);
    } else if (s.name == "test.snapshot.mm") {
      saw_hist = true;
      EXPECT_EQ(s.kind, MetricKind::Histogram);
      EXPECT_EQ(s.count, 1u);
      EXPECT_EQ(s.sum, 9u);
      EXPECT_EQ(s.min, 9u);
      EXPECT_EQ(s.max, 9u);
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_hist);
}

TEST(Registry, ResetValuesKeepsRegistrations) {
  Counter& c = counter("test.reset.counter");
  c.add(5);
  const std::size_t before = MetricRegistry::global().size();
  MetricRegistry::global().reset_values();
  EXPECT_EQ(MetricRegistry::global().size(), before);
  EXPECT_EQ(c.value(), 0u);  // handed-out reference survives and is zeroed
}

// --- TSan targets ---------------------------------------------------------

TEST(RegistryConcurrency, ParallelAddsSumExactly) {
  Counter& c = counter("test.concurrency.adds");
  c.reset();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(RegistryConcurrency, ParallelRegistrationAndSnapshot) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 50; ++i) {
        // Same names from every thread: the registry must serialize
        // find-or-create and hand out one object per name.
        counter("test.concurrency.shared_" + std::to_string(i)).add(1);
        histogram("test.concurrency.hist").observe(static_cast<std::uint64_t>(t * 50 + i));
        if (i % 10 == 0) (void)MetricRegistry::global().snapshot();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(counter("test.concurrency.shared_" + std::to_string(i)).value(),
              static_cast<std::uint64_t>(kThreads));
  }
  EXPECT_EQ(histogram("test.concurrency.hist").count(),
            static_cast<std::uint64_t>(kThreads * 50));
}

}  // namespace
}  // namespace symbiosis::obs
