// Tests for TextTable, CsvWriter, ArgParser, logger, ThreadPool.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

namespace symbiosis::util {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.str();
  EXPECT_NE(out.find("name    value"), std::string::npos);
  EXPECT_NE(out.find("longer  22"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(0.123, 1), "12.3%");
  EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}

TEST(TextTable, RaggedRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"1"});
  t.add_row({"1", "2", "3", "4"});
  EXPECT_FALSE(t.str().empty());
  EXPECT_EQ(t.rows(), 2u);
}

TEST(CsvWriter, QuotesSpecialCells) {
  const std::string path = testing::TempDir() + "/symbiosis_test.csv";
  {
    CsvWriter csv(path);
    csv.row({"plain", "with,comma", "with\"quote", "multi\nline"});
    csv.row_numeric({1.5, 2.0});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "plain,\"with,comma\",\"with\"\"quote\",\"multi");
  std::getline(in, line);
  EXPECT_EQ(line, "line\"");
  std::getline(in, line);
  EXPECT_EQ(line, "1.5,2");
}

TEST(CsvWriter, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), std::runtime_error);
}

TEST(ArgParser, ParsesAllKinds) {
  ArgParser args("prog", "test");
  auto& s = args.add_string("name", "a string", "default");
  auto& i = args.add_i64("count", "an int", -1);
  auto& u = args.add_u64("seed", "a u64", 7);
  auto& d = args.add_double("ratio", "a double", 0.5);
  auto& f = args.add_flag("verbose", "a flag");
  const char* argv[] = {"prog", "--name=x",  "--count", "-42", "--seed=123",
                        "--ratio", "2.25", "--verbose", "positional"};
  ASSERT_TRUE(args.parse(9, argv));
  EXPECT_EQ(s, "x");
  EXPECT_EQ(i, -42);
  EXPECT_EQ(u, 123u);
  EXPECT_DOUBLE_EQ(d, 2.25);
  EXPECT_TRUE(f);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

TEST(ArgParser, DefaultsSurviveEmptyArgv) {
  ArgParser args("prog", "test");
  auto& u = args.add_u64("seed", "seed", 42);
  const char* argv[] = {"prog"};
  ASSERT_TRUE(args.parse(1, argv));
  EXPECT_EQ(u, 42u);
}

TEST(ArgParser, RejectsUnknownOption) {
  ArgParser args("prog", "test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_FALSE(args.parse(2, argv));
}

TEST(ArgParser, RejectsBadNumber) {
  ArgParser args("prog", "test");
  args.add_i64("n", "int", 0);
  const char* argv[] = {"prog", "--n=abc"};
  EXPECT_FALSE(args.parse(2, argv));
}

TEST(ArgParser, HelpReturnsFalse) {
  ArgParser args("prog", "test");
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(args.parse(2, argv));
}

TEST(Log, ParseLevels) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::Trace);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("nonsense"), LogLevel::Info);
}

TEST(Log, LevelFiltering) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  SYMBIOSIS_LOG_DEBUG("should be dropped %d", 1);
  set_log_level(before);
}

TEST(ThreadPool, ParallelForCoversAll) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 4,
                        [](std::size_t i) {
                          if (i == 2) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(1);
  pool.parallel_for(5, 5, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ShardedCoversAllForAnyGrain) {
  ThreadPool pool(4);
  // Grains that divide the range, leave a remainder shard, exceed it, and
  // degenerate to parallel_for must all visit every index exactly once.
  for (const std::size_t grain : {1ul, 3ul, 7ul, 50ul, 1000ul}) {
    std::vector<std::atomic<int>> hits(101);
    pool.parallel_for_sharded(0, 101, [&](std::size_t i) { hits[i].fetch_add(1); }, grain);
    for (const auto& h : hits) ASSERT_EQ(h.load(), 1) << "grain " << grain;
  }
}

TEST(ThreadPool, ShardedRunsShardIndicesInAscendingOrder) {
  ThreadPool pool(2);
  // Record each index's observation order within its shard; a shard task
  // runs its slice serially in ascending order by contract.
  constexpr std::size_t kGrain = 16;
  std::vector<int> order(64, -1);
  std::array<std::atomic<int>, 4> shard_seq{};
  pool.parallel_for_sharded(
      0, 64,
      [&](std::size_t i) { order[i] = shard_seq[i / kGrain].fetch_add(1); },
      kGrain);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(order[i], static_cast<int>(i % kGrain)) << "index " << i;
  }
}

TEST(ThreadPool, ShardedPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_sharded(
                   0, 20,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   },
                   4),
               std::runtime_error);
}

TEST(ThreadPool, ShardedEmptyRangeIsNoop) {
  ThreadPool pool(1);
  pool.parallel_for_sharded(9, 9, [](std::size_t) { FAIL(); }, 4);
}

}  // namespace
}  // namespace symbiosis::util
