file(REMOVE_RECURSE
  "CMakeFiles/symbiosis_cachesim.dir/cache.cpp.o"
  "CMakeFiles/symbiosis_cachesim.dir/cache.cpp.o.d"
  "CMakeFiles/symbiosis_cachesim.dir/hierarchy.cpp.o"
  "CMakeFiles/symbiosis_cachesim.dir/hierarchy.cpp.o.d"
  "CMakeFiles/symbiosis_cachesim.dir/replacement.cpp.o"
  "CMakeFiles/symbiosis_cachesim.dir/replacement.cpp.o.d"
  "CMakeFiles/symbiosis_cachesim.dir/tlb.cpp.o"
  "CMakeFiles/symbiosis_cachesim.dir/tlb.cpp.o.d"
  "libsymbiosis_cachesim.a"
  "libsymbiosis_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbiosis_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
