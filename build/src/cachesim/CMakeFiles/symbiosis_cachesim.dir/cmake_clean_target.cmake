file(REMOVE_RECURSE
  "libsymbiosis_cachesim.a"
)
