# Empty dependencies file for symbiosis_cachesim.
# This may be replaced when dependencies are built.
