
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/allocation.cpp" "src/sched/CMakeFiles/symbiosis_sched.dir/allocation.cpp.o" "gcc" "src/sched/CMakeFiles/symbiosis_sched.dir/allocation.cpp.o.d"
  "/root/repo/src/sched/interference_graph.cpp" "src/sched/CMakeFiles/symbiosis_sched.dir/interference_graph.cpp.o" "gcc" "src/sched/CMakeFiles/symbiosis_sched.dir/interference_graph.cpp.o.d"
  "/root/repo/src/sched/mincut.cpp" "src/sched/CMakeFiles/symbiosis_sched.dir/mincut.cpp.o" "gcc" "src/sched/CMakeFiles/symbiosis_sched.dir/mincut.cpp.o.d"
  "/root/repo/src/sched/multithread.cpp" "src/sched/CMakeFiles/symbiosis_sched.dir/multithread.cpp.o" "gcc" "src/sched/CMakeFiles/symbiosis_sched.dir/multithread.cpp.o.d"
  "/root/repo/src/sched/policy.cpp" "src/sched/CMakeFiles/symbiosis_sched.dir/policy.cpp.o" "gcc" "src/sched/CMakeFiles/symbiosis_sched.dir/policy.cpp.o.d"
  "/root/repo/src/sched/weight_sort.cpp" "src/sched/CMakeFiles/symbiosis_sched.dir/weight_sort.cpp.o" "gcc" "src/sched/CMakeFiles/symbiosis_sched.dir/weight_sort.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/symbiosis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
