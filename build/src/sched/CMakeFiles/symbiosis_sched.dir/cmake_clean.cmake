file(REMOVE_RECURSE
  "CMakeFiles/symbiosis_sched.dir/allocation.cpp.o"
  "CMakeFiles/symbiosis_sched.dir/allocation.cpp.o.d"
  "CMakeFiles/symbiosis_sched.dir/interference_graph.cpp.o"
  "CMakeFiles/symbiosis_sched.dir/interference_graph.cpp.o.d"
  "CMakeFiles/symbiosis_sched.dir/mincut.cpp.o"
  "CMakeFiles/symbiosis_sched.dir/mincut.cpp.o.d"
  "CMakeFiles/symbiosis_sched.dir/multithread.cpp.o"
  "CMakeFiles/symbiosis_sched.dir/multithread.cpp.o.d"
  "CMakeFiles/symbiosis_sched.dir/policy.cpp.o"
  "CMakeFiles/symbiosis_sched.dir/policy.cpp.o.d"
  "CMakeFiles/symbiosis_sched.dir/weight_sort.cpp.o"
  "CMakeFiles/symbiosis_sched.dir/weight_sort.cpp.o.d"
  "libsymbiosis_sched.a"
  "libsymbiosis_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbiosis_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
