file(REMOVE_RECURSE
  "libsymbiosis_sched.a"
)
