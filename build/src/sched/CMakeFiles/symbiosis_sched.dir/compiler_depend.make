# Empty compiler generated dependencies file for symbiosis_sched.
# This may be replaced when dependencies are built.
