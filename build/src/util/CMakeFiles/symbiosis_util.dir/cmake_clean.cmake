file(REMOVE_RECURSE
  "CMakeFiles/symbiosis_util.dir/cli.cpp.o"
  "CMakeFiles/symbiosis_util.dir/cli.cpp.o.d"
  "CMakeFiles/symbiosis_util.dir/csv.cpp.o"
  "CMakeFiles/symbiosis_util.dir/csv.cpp.o.d"
  "CMakeFiles/symbiosis_util.dir/log.cpp.o"
  "CMakeFiles/symbiosis_util.dir/log.cpp.o.d"
  "CMakeFiles/symbiosis_util.dir/rng.cpp.o"
  "CMakeFiles/symbiosis_util.dir/rng.cpp.o.d"
  "CMakeFiles/symbiosis_util.dir/stats.cpp.o"
  "CMakeFiles/symbiosis_util.dir/stats.cpp.o.d"
  "CMakeFiles/symbiosis_util.dir/table.cpp.o"
  "CMakeFiles/symbiosis_util.dir/table.cpp.o.d"
  "CMakeFiles/symbiosis_util.dir/threadpool.cpp.o"
  "CMakeFiles/symbiosis_util.dir/threadpool.cpp.o.d"
  "libsymbiosis_util.a"
  "libsymbiosis_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbiosis_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
