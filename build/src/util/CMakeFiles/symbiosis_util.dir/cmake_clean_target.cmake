file(REMOVE_RECURSE
  "libsymbiosis_util.a"
)
