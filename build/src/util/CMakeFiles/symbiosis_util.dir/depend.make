# Empty dependencies file for symbiosis_util.
# This may be replaced when dependencies are built.
