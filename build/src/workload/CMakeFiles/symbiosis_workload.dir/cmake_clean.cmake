file(REMOVE_RECURSE
  "CMakeFiles/symbiosis_workload.dir/access_pattern.cpp.o"
  "CMakeFiles/symbiosis_workload.dir/access_pattern.cpp.o.d"
  "CMakeFiles/symbiosis_workload.dir/benchmark_model.cpp.o"
  "CMakeFiles/symbiosis_workload.dir/benchmark_model.cpp.o.d"
  "CMakeFiles/symbiosis_workload.dir/parsec_model.cpp.o"
  "CMakeFiles/symbiosis_workload.dir/parsec_model.cpp.o.d"
  "CMakeFiles/symbiosis_workload.dir/trace.cpp.o"
  "CMakeFiles/symbiosis_workload.dir/trace.cpp.o.d"
  "libsymbiosis_workload.a"
  "libsymbiosis_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbiosis_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
