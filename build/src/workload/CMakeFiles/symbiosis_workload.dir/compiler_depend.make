# Empty compiler generated dependencies file for symbiosis_workload.
# This may be replaced when dependencies are built.
