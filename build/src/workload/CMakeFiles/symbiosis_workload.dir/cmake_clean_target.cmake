file(REMOVE_RECURSE
  "libsymbiosis_workload.a"
)
