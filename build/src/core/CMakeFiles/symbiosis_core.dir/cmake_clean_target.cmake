file(REMOVE_RECURSE
  "libsymbiosis_core.a"
)
