file(REMOVE_RECURSE
  "CMakeFiles/symbiosis_core.dir/experiment.cpp.o"
  "CMakeFiles/symbiosis_core.dir/experiment.cpp.o.d"
  "CMakeFiles/symbiosis_core.dir/online.cpp.o"
  "CMakeFiles/symbiosis_core.dir/online.cpp.o.d"
  "CMakeFiles/symbiosis_core.dir/overheads.cpp.o"
  "CMakeFiles/symbiosis_core.dir/overheads.cpp.o.d"
  "CMakeFiles/symbiosis_core.dir/profile.cpp.o"
  "CMakeFiles/symbiosis_core.dir/profile.cpp.o.d"
  "CMakeFiles/symbiosis_core.dir/symbiotic_scheduler.cpp.o"
  "CMakeFiles/symbiosis_core.dir/symbiotic_scheduler.cpp.o.d"
  "libsymbiosis_core.a"
  "libsymbiosis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbiosis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
