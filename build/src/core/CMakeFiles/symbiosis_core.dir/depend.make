# Empty dependencies file for symbiosis_core.
# This may be replaced when dependencies are built.
