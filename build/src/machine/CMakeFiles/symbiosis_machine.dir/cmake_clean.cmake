file(REMOVE_RECURSE
  "CMakeFiles/symbiosis_machine.dir/machine.cpp.o"
  "CMakeFiles/symbiosis_machine.dir/machine.cpp.o.d"
  "CMakeFiles/symbiosis_machine.dir/scheduler.cpp.o"
  "CMakeFiles/symbiosis_machine.dir/scheduler.cpp.o.d"
  "libsymbiosis_machine.a"
  "libsymbiosis_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbiosis_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
