file(REMOVE_RECURSE
  "libsymbiosis_machine.a"
)
