# Empty dependencies file for symbiosis_machine.
# This may be replaced when dependencies are built.
