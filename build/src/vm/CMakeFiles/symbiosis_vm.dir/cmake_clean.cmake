file(REMOVE_RECURSE
  "CMakeFiles/symbiosis_vm.dir/hypervisor.cpp.o"
  "CMakeFiles/symbiosis_vm.dir/hypervisor.cpp.o.d"
  "libsymbiosis_vm.a"
  "libsymbiosis_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbiosis_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
