# Empty compiler generated dependencies file for symbiosis_vm.
# This may be replaced when dependencies are built.
