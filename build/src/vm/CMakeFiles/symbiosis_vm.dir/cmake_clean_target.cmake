file(REMOVE_RECURSE
  "libsymbiosis_vm.a"
)
