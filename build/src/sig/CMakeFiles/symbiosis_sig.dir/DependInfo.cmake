
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sig/bitvector.cpp" "src/sig/CMakeFiles/symbiosis_sig.dir/bitvector.cpp.o" "gcc" "src/sig/CMakeFiles/symbiosis_sig.dir/bitvector.cpp.o.d"
  "/root/repo/src/sig/bloom.cpp" "src/sig/CMakeFiles/symbiosis_sig.dir/bloom.cpp.o" "gcc" "src/sig/CMakeFiles/symbiosis_sig.dir/bloom.cpp.o.d"
  "/root/repo/src/sig/counting_bloom.cpp" "src/sig/CMakeFiles/symbiosis_sig.dir/counting_bloom.cpp.o" "gcc" "src/sig/CMakeFiles/symbiosis_sig.dir/counting_bloom.cpp.o.d"
  "/root/repo/src/sig/filter_unit.cpp" "src/sig/CMakeFiles/symbiosis_sig.dir/filter_unit.cpp.o" "gcc" "src/sig/CMakeFiles/symbiosis_sig.dir/filter_unit.cpp.o.d"
  "/root/repo/src/sig/hash.cpp" "src/sig/CMakeFiles/symbiosis_sig.dir/hash.cpp.o" "gcc" "src/sig/CMakeFiles/symbiosis_sig.dir/hash.cpp.o.d"
  "/root/repo/src/sig/signature.cpp" "src/sig/CMakeFiles/symbiosis_sig.dir/signature.cpp.o" "gcc" "src/sig/CMakeFiles/symbiosis_sig.dir/signature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/symbiosis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
