file(REMOVE_RECURSE
  "libsymbiosis_sig.a"
)
