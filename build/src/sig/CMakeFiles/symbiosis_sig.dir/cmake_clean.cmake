file(REMOVE_RECURSE
  "CMakeFiles/symbiosis_sig.dir/bitvector.cpp.o"
  "CMakeFiles/symbiosis_sig.dir/bitvector.cpp.o.d"
  "CMakeFiles/symbiosis_sig.dir/bloom.cpp.o"
  "CMakeFiles/symbiosis_sig.dir/bloom.cpp.o.d"
  "CMakeFiles/symbiosis_sig.dir/counting_bloom.cpp.o"
  "CMakeFiles/symbiosis_sig.dir/counting_bloom.cpp.o.d"
  "CMakeFiles/symbiosis_sig.dir/filter_unit.cpp.o"
  "CMakeFiles/symbiosis_sig.dir/filter_unit.cpp.o.d"
  "CMakeFiles/symbiosis_sig.dir/hash.cpp.o"
  "CMakeFiles/symbiosis_sig.dir/hash.cpp.o.d"
  "CMakeFiles/symbiosis_sig.dir/signature.cpp.o"
  "CMakeFiles/symbiosis_sig.dir/signature.cpp.o.d"
  "libsymbiosis_sig.a"
  "libsymbiosis_sig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symbiosis_sig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
