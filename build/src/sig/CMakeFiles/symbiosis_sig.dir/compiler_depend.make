# Empty compiler generated dependencies file for symbiosis_sig.
# This may be replaced when dependencies are built.
