
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_access_pattern.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_access_pattern.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_access_pattern.cpp.o.d"
  "/root/repo/tests/test_allocation.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_allocation.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_allocation.cpp.o.d"
  "/root/repo/tests/test_benchmark_model.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_benchmark_model.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_benchmark_model.cpp.o.d"
  "/root/repo/tests/test_bitops.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_bitops.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_bitops.cpp.o.d"
  "/root/repo/tests/test_bitvector.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_bitvector.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_bitvector.cpp.o.d"
  "/root/repo/tests/test_bloom.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_bloom.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_bloom.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_core_pipeline.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_core_pipeline.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_core_pipeline.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_experiment.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_experiment.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_experiment.cpp.o.d"
  "/root/repo/tests/test_filter_unit.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_filter_unit.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_filter_unit.cpp.o.d"
  "/root/repo/tests/test_hash.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_hash.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_hash.cpp.o.d"
  "/root/repo/tests/test_hierarchy.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_hierarchy.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_machine.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_machine.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_machine.cpp.o.d"
  "/root/repo/tests/test_mincut.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_mincut.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_mincut.cpp.o.d"
  "/root/repo/tests/test_multithread.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_multithread.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_multithread.cpp.o.d"
  "/root/repo/tests/test_online.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_online.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_online.cpp.o.d"
  "/root/repo/tests/test_paper_invariants.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_paper_invariants.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_paper_invariants.cpp.o.d"
  "/root/repo/tests/test_parsec.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_parsec.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_parsec.cpp.o.d"
  "/root/repo/tests/test_policies.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_policies.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_policies.cpp.o.d"
  "/root/repo/tests/test_replacement.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_replacement.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_replacement.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_scheduler.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_scheduler.cpp.o.d"
  "/root/repo/tests/test_signature.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_signature.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_signature.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_tlb.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_tlb.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_tlb.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_util_misc.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_util_misc.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_util_misc.cpp.o.d"
  "/root/repo/tests/test_vm.cpp" "tests/CMakeFiles/symbiosis_tests.dir/test_vm.cpp.o" "gcc" "tests/CMakeFiles/symbiosis_tests.dir/test_vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/symbiosis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/symbiosis_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/symbiosis_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/symbiosis_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/symbiosis_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/symbiosis_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/sig/CMakeFiles/symbiosis_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/symbiosis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
