# Empty dependencies file for symbiosis_tests.
# This may be replaced when dependencies are built.
