# Empty dependencies file for bench_fig11_vm_improvement.
# This may be replaced when dependencies are built.
