# Empty dependencies file for bench_fig14_hash_functions.
# This may be replaced when dependencies are built.
