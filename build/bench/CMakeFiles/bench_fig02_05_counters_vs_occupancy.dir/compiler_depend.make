# Empty compiler generated dependencies file for bench_fig02_05_counters_vs_occupancy.
# This may be replaced when dependencies are built.
