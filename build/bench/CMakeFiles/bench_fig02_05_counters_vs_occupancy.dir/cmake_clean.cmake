file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_05_counters_vs_occupancy.dir/bench_fig02_05_counters_vs_occupancy.cpp.o"
  "CMakeFiles/bench_fig02_05_counters_vs_occupancy.dir/bench_fig02_05_counters_vs_occupancy.cpp.o.d"
  "bench_fig02_05_counters_vs_occupancy"
  "bench_fig02_05_counters_vs_occupancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_05_counters_vs_occupancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
