file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_cachesim.dir/bench_micro_cachesim.cpp.o"
  "CMakeFiles/bench_micro_cachesim.dir/bench_micro_cachesim.cpp.o.d"
  "bench_micro_cachesim"
  "bench_micro_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
