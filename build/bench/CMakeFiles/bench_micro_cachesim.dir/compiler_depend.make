# Empty compiler generated dependencies file for bench_micro_cachesim.
# This may be replaced when dependencies are built.
