
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_cachesim.cpp" "bench/CMakeFiles/bench_micro_cachesim.dir/bench_micro_cachesim.cpp.o" "gcc" "bench/CMakeFiles/bench_micro_cachesim.dir/bench_micro_cachesim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/symbiosis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/symbiosis_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/symbiosis_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/symbiosis_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/symbiosis_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cachesim/CMakeFiles/symbiosis_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/sig/CMakeFiles/symbiosis_sig.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/symbiosis_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
