file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03b_shared_l2_pairs.dir/bench_fig03b_shared_l2_pairs.cpp.o"
  "CMakeFiles/bench_fig03b_shared_l2_pairs.dir/bench_fig03b_shared_l2_pairs.cpp.o.d"
  "bench_fig03b_shared_l2_pairs"
  "bench_fig03b_shared_l2_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03b_shared_l2_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
