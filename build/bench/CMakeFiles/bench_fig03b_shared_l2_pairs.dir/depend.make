# Empty dependencies file for bench_fig03b_shared_l2_pairs.
# This may be replaced when dependencies are built.
