file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_footprint_vs_missrate.dir/bench_fig01_footprint_vs_missrate.cpp.o"
  "CMakeFiles/bench_fig01_footprint_vs_missrate.dir/bench_fig01_footprint_vs_missrate.cpp.o.d"
  "bench_fig01_footprint_vs_missrate"
  "bench_fig01_footprint_vs_missrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_footprint_vs_missrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
