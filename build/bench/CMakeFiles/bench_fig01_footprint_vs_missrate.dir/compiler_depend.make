# Empty compiler generated dependencies file for bench_fig01_footprint_vs_missrate.
# This may be replaced when dependencies are built.
