file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_native_improvement.dir/bench_fig10_native_improvement.cpp.o"
  "CMakeFiles/bench_fig10_native_improvement.dir/bench_fig10_native_improvement.cpp.o.d"
  "bench_fig10_native_improvement"
  "bench_fig10_native_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_native_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
