# Empty compiler generated dependencies file for bench_fig10_native_improvement.
# This may be replaced when dependencies are built.
