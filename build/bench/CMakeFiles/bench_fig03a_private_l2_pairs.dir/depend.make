# Empty dependencies file for bench_fig03a_private_l2_pairs.
# This may be replaced when dependencies are built.
