file(REMOVE_RECURSE
  "CMakeFiles/bench_sec54_overheads.dir/bench_sec54_overheads.cpp.o"
  "CMakeFiles/bench_sec54_overheads.dir/bench_sec54_overheads.cpp.o.d"
  "bench_sec54_overheads"
  "bench_sec54_overheads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec54_overheads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
