file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_signature.dir/bench_micro_signature.cpp.o"
  "CMakeFiles/bench_micro_signature.dir/bench_micro_signature.cpp.o.d"
  "bench_micro_signature"
  "bench_micro_signature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_signature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
