# Empty compiler generated dependencies file for bench_micro_signature.
# This may be replaced when dependencies are built.
