# Empty dependencies file for bench_table1_mapping_runtimes.
# This may be replaced when dependencies are built.
