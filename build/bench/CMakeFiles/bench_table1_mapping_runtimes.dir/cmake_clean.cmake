file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_mapping_runtimes.dir/bench_table1_mapping_runtimes.cpp.o"
  "CMakeFiles/bench_table1_mapping_runtimes.dir/bench_table1_mapping_runtimes.cpp.o.d"
  "bench_table1_mapping_runtimes"
  "bench_table1_mapping_runtimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mapping_runtimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
