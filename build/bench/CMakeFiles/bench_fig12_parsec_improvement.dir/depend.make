# Empty dependencies file for bench_fig12_parsec_improvement.
# This may be replaced when dependencies are built.
