# Empty dependencies file for mix_runner.
# This may be replaced when dependencies are built.
