file(REMOVE_RECURSE
  "CMakeFiles/mix_runner.dir/mix_runner.cpp.o"
  "CMakeFiles/mix_runner.dir/mix_runner.cpp.o.d"
  "mix_runner"
  "mix_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
