# Empty dependencies file for online_scheduling.
# This may be replaced when dependencies are built.
