file(REMOVE_RECURSE
  "CMakeFiles/multithreaded_parsec.dir/multithreaded_parsec.cpp.o"
  "CMakeFiles/multithreaded_parsec.dir/multithreaded_parsec.cpp.o.d"
  "multithreaded_parsec"
  "multithreaded_parsec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multithreaded_parsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
