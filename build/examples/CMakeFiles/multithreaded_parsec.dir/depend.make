# Empty dependencies file for multithreaded_parsec.
# This may be replaced when dependencies are built.
