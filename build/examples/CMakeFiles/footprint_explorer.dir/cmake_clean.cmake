file(REMOVE_RECURSE
  "CMakeFiles/footprint_explorer.dir/footprint_explorer.cpp.o"
  "CMakeFiles/footprint_explorer.dir/footprint_explorer.cpp.o.d"
  "footprint_explorer"
  "footprint_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/footprint_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
