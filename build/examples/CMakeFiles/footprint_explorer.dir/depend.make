# Empty dependencies file for footprint_explorer.
# This may be replaced when dependencies are built.
