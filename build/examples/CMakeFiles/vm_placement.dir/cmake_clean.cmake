file(REMOVE_RECURSE
  "CMakeFiles/vm_placement.dir/vm_placement.cpp.o"
  "CMakeFiles/vm_placement.dir/vm_placement.cpp.o.d"
  "vm_placement"
  "vm_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
