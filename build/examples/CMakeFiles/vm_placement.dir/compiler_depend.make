# Empty compiler generated dependencies file for vm_placement.
# This may be replaced when dependencies are built.
