#include "vm/hypervisor.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"

namespace symbiosis::vm {

namespace {

/// Build the Dom0 housekeeping workload: an endless light loop over a small
/// hot region (control-plane code and data).
std::unique_ptr<workload::Workload> make_dom0_workload(const VmConfig& config) {
  workload::BenchmarkSpec spec;
  spec.name = "dom0";
  workload::PhaseSpec phase;
  phase.pattern.kind = workload::PatternKind::Zipf;
  phase.pattern.region_bytes = config.dom0_region_bytes;
  phase.pattern.zipf_skew = 1.0;
  phase.pattern.line_bytes = config.machine.hierarchy.l1.line_bytes;
  phase.compute_gap = config.dom0_compute_gap;
  phase.write_ratio = 0.3;
  phase.refs = 10'000;
  spec.phases.push_back(phase);
  spec.total_refs = ~std::uint64_t{0} >> 1;  // effectively endless
  // Dom0 lives in its own reserved address space (pid-space 2^20).
  return std::make_unique<workload::Workload>(spec, machine::address_space_base(1u << 20),
                                              util::Rng{config.dom0_seed});
}

}  // namespace

Hypervisor::Hypervisor(const VmConfig& config) : config_(config) {
  machine::MachineConfig mc = config.machine;
  mc.context_switch_cycles = config.vm_switch_cycles;
  mc.switch_pollution_lines = config.switch_pollution_lines;
  mc.hierarchy.latency.tlb_miss += config.nested_tlb_penalty;
  machine_ = std::make_unique<machine::Machine>(mc);

  if (config.dom0_background) {
    Domain dom0;
    dom0.name = "Domain-0";
    const machine::TaskId id = machine_->add_task(make_dom0_workload(config), /*affinity=*/0);
    machine_->task(id).background = true;
    dom0.vcpus.push_back(id);
    domains_.push_back(std::move(dom0));
  }
}

DomainId Hypervisor::create_domain(std::unique_ptr<workload::TaskStream> stream,
                                   std::size_t affinity) {
  std::vector<std::unique_ptr<workload::TaskStream>> vcpus;
  vcpus.push_back(std::move(stream));
  return create_domain(std::move(vcpus), affinity);
}

DomainId Hypervisor::create_domain(std::vector<std::unique_ptr<workload::TaskStream>> vcpus,
                                   std::size_t affinity) {
  if (vcpus.empty()) throw std::invalid_argument("create_domain: no vcpus");
  Domain dom;
  dom.name = vcpus.front()->name();
  // All vcpus of a VM share one pid so signatures aggregate per-VM (§3.1:
  // "the RBV will be computed on a per-VM basis").
  const std::size_t pid = domains_.size() + 1'000;
  for (auto& stream : vcpus) {
    dom.vcpus.push_back(machine_->add_thread(std::move(stream), pid, affinity));
  }
  domains_.push_back(std::move(dom));
  obs::counter("vm.domains_created").add(1);
  return domains_.size() - 1;
}

void Hypervisor::set_domain_affinity(DomainId dom, std::size_t core) {
  for (const auto vcpu : vcpus_of(dom)) machine_->set_affinity(vcpu, core);
}

bool Hypervisor::run_to_all_complete(std::uint64_t max_cycles) {
  const bool completed = machine_->run_to_all_complete(max_cycles);
  // One VM-exit marker per measured domain (Dom0 is background and never
  // "exits"): the §4.2 event the virtualized pipeline measures.
  for (DomainId d = 0; d < domains_.size(); ++d) {
    if (domains_[d].vcpus.size() == 1 &&
        machine_->task(domains_[d].vcpus.front()).background) {
      continue;
    }
    SYM_RECORD((obs::VmExitEvent{machine_->now(), static_cast<std::uint64_t>(d),
                                 domains_[d].name, completed ? "completed" : "cycle-cap",
                                 domain_user_cycles(d)}));
  }
  return completed;
}

std::uint64_t Hypervisor::domain_user_cycles(DomainId dom) const {
  const auto& vcpus = vcpus_of(dom);
  std::uint64_t total = 0;
  for (const auto vcpu : vcpus) total += machine_->task(vcpu).first_completion_user_cycles;
  return total;
}

}  // namespace symbiosis::vm
