// hypervisor.hpp — the Xen-like virtualization layer (§3.2, §4.2, §5.1.2).
//
// The paper encapsulates each benchmark in its own VM on a Xen hypervisor;
// the signature hardware is unchanged but accounting moves to per-VM
// granularity and the allocation policy runs in Dom0. The observable
// difference from native execution — the reason Fig 11's improvements are
// smaller than Fig 10's — is virtualization OVERHEAD: world switches cost
// much more than process switches, the hypervisor/Dom0 pollute the shared
// L2 around every switch, nested translation makes TLB misses dearer, and
// a background Dom0 housekeeping loop steals cycles.
//
// Hypervisor wraps a machine::Machine; each domain (VM) carries one or
// more vcpu task streams tagged with the domain's pid so signatures and
// the two-phase allocation treat the VM as one entity.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "machine/machine.hpp"

namespace symbiosis::vm {

/// Virtualization-layer configuration on top of a machine preset.
struct VmConfig {
  machine::MachineConfig machine = machine::core2duo_config();
  /// World-switch cost (replaces the native context_switch_cycles).
  std::uint64_t vm_switch_cycles = 12'000;
  /// Cache lines the hypervisor+Dom0 touch around each world switch.
  std::uint32_t switch_pollution_lines = 192;
  /// Extra TLB-miss penalty from nested/shadow translation.
  std::uint32_t nested_tlb_penalty = 60;
  /// Run a background Dom0 housekeeping loop (pinned to core 0).
  bool dom0_background = true;
  /// Mean compute gap of the Dom0 loop: bigger = lighter Dom0 load.
  double dom0_compute_gap = 400.0;
  std::uint64_t dom0_region_bytes = 96 * 1024;
  /// Seed for the Dom0 housekeeping address stream. Part of the config so a
  /// run is reproducible from its config alone (symdet rng discipline); the
  /// default matches the historical stream, keeping golden reports stable.
  std::uint64_t dom0_seed = 0xd0d0;
};

/// Identifier of a virtual machine (domain). Domain 0 is the control domain
/// when dom0_background is enabled.
using DomainId = std::size_t;

class Hypervisor {
 public:
  explicit Hypervisor(const VmConfig& config);

  /// Create a guest domain running @p stream on a single vcpu.
  DomainId create_domain(std::unique_ptr<workload::TaskStream> stream,
                         std::size_t affinity = machine::Task::kAnyCore);

  /// Create a guest domain with multiple vcpus (one stream per vcpu).
  DomainId create_domain(std::vector<std::unique_ptr<workload::TaskStream>> vcpus,
                         std::size_t affinity = machine::Task::kAnyCore);

  [[nodiscard]] std::size_t domain_count() const noexcept { return domains_.size(); }
  [[nodiscard]] const std::string& domain_name(DomainId dom) const {
    return domains_.at(dom).name;
  }

  /// Tasks (vcpus) of a domain.
  [[nodiscard]] const std::vector<machine::TaskId>& vcpus_of(DomainId dom) const {
    return domains_.at(dom).vcpus;
  }

  /// Pin every vcpu of @p dom to @p core (Dom0's vcpu-affinity hypercall).
  void set_domain_affinity(DomainId dom, std::size_t core);

  /// Run until every guest's benchmark completed at least once.
  bool run_to_all_complete(std::uint64_t max_cycles = 0);

  /// The wrapped machine (hook installation, inspection).
  [[nodiscard]] machine::Machine& machine() noexcept { return *machine_; }
  [[nodiscard]] const machine::Machine& machine() const noexcept { return *machine_; }

  /// First-completion user cycles of a single-vcpu domain's benchmark.
  [[nodiscard]] std::uint64_t domain_user_cycles(DomainId dom) const;

 private:
  struct Domain {
    std::string name;
    std::vector<machine::TaskId> vcpus;
  };

  VmConfig config_;
  std::unique_ptr<machine::Machine> machine_;
  std::vector<Domain> domains_;
};

}  // namespace symbiosis::vm
