#include "core/online.hpp"

#include <cmath>

#include "core/profile.hpp"
#include "obs/metrics.hpp"
#include "sched/policy.hpp"

namespace symbiosis::core {

namespace {

OnlineRun finish(machine::Machine& m, const std::vector<machine::TaskId>& ids, bool completed) {
  OnlineRun run;
  run.completed = completed;
  run.wall_cycles = m.now();
  for (const auto id : ids) {
    run.names.push_back(m.task(id).name());
    run.user_cycles.push_back(m.task(id).first_completion_user_cycles);
  }
  return run;
}

}  // namespace

OnlineRun run_online(const OnlineConfig& config, const std::vector<std::string>& mix) {
  const PipelineConfig& pc = config.pipeline;
  machine::Machine m(pc.machine);
  const auto ids = add_mix_tasks(m, mix, pc.scale, pc.seed);
  auto allocator = sched::make_allocator(pc.allocator, pc.seed);
  const std::size_t cores = pc.machine.hierarchy.num_cores;

  std::string pending_key;
  unsigned pending_streak = 0;
  std::string applied_key;
  std::size_t repinnings = 0;

  m.set_periodic_hook(pc.allocator_period_cycles, [&](machine::Machine& mm) {
    auto profiles = collect_profiles(mm);
    bool ready = true;
    for (const auto& p : profiles) {
      ready = ready && mm.task(ids[p.task_index]).signature().samples() > 0;
    }
    if (!ready) return;
    const sched::Allocation alloc = allocator->allocate(profiles, cores);
    const std::string key = alloc.key();
    // Confirmation hysteresis: one noisy window must not migrate the world.
    pending_streak = (key == pending_key) ? pending_streak + 1 : 1;
    pending_key = key;
    if (pending_streak >= config.confirm_windows && key != applied_key) {
      apply_allocation(mm, ids, alloc);
      applied_key = key;
      ++repinnings;
      obs::counter("core.online.repinnings").add(1);
    }
    clear_signature_windows(mm);
  });

  const bool completed = m.run_to_all_complete(pc.measure_max_cycles);
  OnlineRun run = finish(m, ids, completed);
  run.repinnings = repinnings;
  run.final_mapping_key = applied_key;
  return run;
}

OnlineRun run_online_baseline(const OnlineConfig& config, const std::vector<std::string>& mix) {
  const PipelineConfig& pc = config.pipeline;
  machine::Machine m(pc.machine);
  const auto ids = add_mix_tasks(m, mix, pc.scale, pc.seed);
  const bool completed = m.run_to_all_complete(pc.measure_max_cycles);
  return finish(m, ids, completed);
}

double jain_fairness(const std::vector<double>& slowdowns) {
  if (slowdowns.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (const double x : slowdowns) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(slowdowns.size()) * sum_sq);
}

std::vector<std::uint64_t> solo_user_cycles(const PipelineConfig& config,
                                            const std::vector<std::string>& mix) {
  std::vector<std::uint64_t> solo;
  solo.reserve(mix.size());
  for (std::size_t i = 0; i < mix.size(); ++i) {
    machine::Machine m(config.machine);
    util::Rng rng(config.seed);
    // Reproduce add_mix_tasks' per-position stream so the solo run uses the
    // same generator state as the loaded run.
    auto workload = workload::make_spec_workload(mix[i], machine::address_space_base(i),
                                                 rng.split(i + 1), config.scale);
    const auto id = m.add_task(std::move(workload));
    m.run_to_all_complete(config.measure_max_cycles);
    solo.push_back(m.task(id).first_completion_user_cycles);
  }
  return solo;
}

}  // namespace symbiosis::core
