// online.hpp — live (deployment-mode) symbiotic scheduling.
//
// The paper evaluates with a two-phase methodology (emulate → vote → pin →
// measure) because its phase 1 ran in Simics; the DEPLOYED system it
// describes (§3.2) is a user-level monitor that periodically reads
// signatures and re-pins processes on the live machine. This header
// implements that mode: every allocator period the policy computes a
// mapping and applies it immediately — with a confirmation hysteresis so a
// single noisy window cannot migrate everything (re-pinning is only
// applied after the same mapping wins `confirm_windows` consecutive
// windows; 1 = apply instantly).
//
// run_online_experiment compares live scheduling against the OS default on
// the same mix and also reports a fairness index, connecting to the
// paper's fairness keyword: Jain's index over per-task slowdowns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/symbiotic_scheduler.hpp"

namespace symbiosis::core {

struct OnlineConfig {
  PipelineConfig pipeline{};
  /// Consecutive windows the same mapping must win before it is applied.
  unsigned confirm_windows = 2;
};

/// Outcome of one live-scheduled run.
struct OnlineRun {
  std::vector<std::string> names;
  std::vector<std::uint64_t> user_cycles;   ///< first-completion user time
  std::uint64_t wall_cycles = 0;
  std::size_t repinnings = 0;               ///< times the mapping changed
  std::string final_mapping_key;
  bool completed = false;
};

/// Run @p mix with the allocator live (per OnlineConfig); returns per-task
/// user times and re-pinning statistics.
[[nodiscard]] OnlineRun run_online(const OnlineConfig& config,
                                   const std::vector<std::string>& mix);

/// Run @p mix with NO allocator (OS default placement), for comparison.
[[nodiscard]] OnlineRun run_online_baseline(const OnlineConfig& config,
                                            const std::vector<std::string>& mix);

/// Jain's fairness index over per-task slowdowns relative to @p solo times:
/// (Σx)² / (n·Σx²), 1.0 = perfectly even slowdowns.
[[nodiscard]] double jain_fairness(const std::vector<double>& slowdowns);

/// Convenience: solo user time of each benchmark on an otherwise-idle
/// machine (the slowdown denominator).
[[nodiscard]] std::vector<std::uint64_t> solo_user_cycles(const PipelineConfig& config,
                                                          const std::vector<std::string>& mix);

}  // namespace symbiosis::core
