// report.hpp — machine-readable run reports (DESIGN.md §9).
//
// Every pipeline driver (mix experiment, pool sweep, online run) can emit
// one JSON document capturing what was run and what came out: the pipeline
// config and seed, per-mapping user times, per-benchmark improvements, a
// snapshot of the global metric registry, and wall-clock phase timings.
// The report is the contract between the library and examples/trace_tools
// (inspect / diff / validate) and the CI smoke job.
//
// Stability policy: everything under "config", "outcomes" and "summary" is
// DETERMINISTIC for a fixed seed and is compared field-by-field by the
// golden-report test. "timings" (host wall-clock) and "metrics" (process-
// global, accumulate across tests) are VOLATILE and excluded from golden
// comparison and from trace_tools diff by default.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.hpp"
#include "core/online.hpp"
#include "obs/json.hpp"
#include "obs/stopwatch.hpp"
#include "workload/replayer.hpp"
#include "workload/symt.hpp"

namespace symbiosis::core {

/// Schema identifier + version stamped into (and checked out of) reports.
/// Version policy: reports from DEGENERATE topologies (one shared L2 or
/// all-private L2s, no L3, no way partitions — topology.hpp) are stamped
/// v1 and stay byte-identical to the pre-graph implementation (the golden
/// fixture pins this). Non-degenerate topologies stamp v2, which adds the
/// cluster/L3/partition machine fields and per-mapping "levels" stats.
/// validate_report accepts both.
inline constexpr std::string_view kReportSchema = "symbiosis.run_report";
inline constexpr std::uint64_t kReportSchemaVersion = 2;
inline constexpr std::uint64_t kLegacyReportSchemaVersion = 1;

/// The pipeline knobs that determine a run's outcome, as a JSON object.
[[nodiscard]] obs::Json pipeline_config_to_json(const PipelineConfig& config);

/// One measured mapping: canonical key, group vector, per-entity user times.
[[nodiscard]] obs::Json mapping_run_to_json(const MappingRun& run);

/// One mix's full outcome: mappings, the phase-1 choice and vote table, and
/// per-benchmark improvement/oracle numbers.
[[nodiscard]] obs::Json mix_outcome_to_json(const MixOutcome& outcome);

/// Snapshot of the global obs::MetricRegistry as an array of samples.
[[nodiscard]] obs::Json metrics_to_json();

/// Phase timings as an array of {phase, ms} objects (volatile by policy).
[[nodiscard]] obs::Json timings_to_json(const obs::PhaseTimings& timings);

/// Report for a single mix experiment (kind = "mix").
[[nodiscard]] obs::Json build_mix_report(const PipelineConfig& config, const MixOutcome& outcome,
                                         const obs::PhaseTimings& timings = {});

/// Report for a pool sweep (kind = "sweep"): all mixes, all outcomes, the
/// per-benchmark summary.
[[nodiscard]] obs::Json build_sweep_report(const PipelineConfig& config, const SweepResult& sweep,
                                           const obs::PhaseTimings& timings = {});

/// Report for a live run vs the OS-default baseline (kind = "online").
/// @p baseline may be nullptr when only the scheduled run was measured.
[[nodiscard]] obs::Json build_online_report(const OnlineConfig& config, const OnlineRun& online,
                                            const OnlineRun* baseline = nullptr,
                                            const obs::PhaseTimings& timings = {});

/// Report for a .symt trace replay (kind = "trace_replay"): a "trace"
/// stanza describing the input (path, threads, records, footprint, r/w
/// ratio) and a "replay" stanza with the hierarchy totals and per-thread
/// replay stats. Deterministic for a fixed trace + machine + chunk, so the
/// replay-determinism regression compares two of these with the volatile
/// sections ("metrics", "timings") excluded — same policy as golden reports.
[[nodiscard]] obs::Json build_trace_replay_report(
    const cachesim::HierarchyConfig& machine, const std::string& trace_path,
    const workload::SymtStats& stats, const workload::ReplayResult& result, std::size_t chunk,
    std::size_t workers, const obs::PhaseTimings& timings = {});

/// Structural validation: schema/version stamp, required sections, member
/// types, cross-field consistency (chosen index in range, user_cycles
/// parallel to names). Returns one message per problem; empty = valid.
/// Used by `trace_tools validate` and the CI smoke job.
[[nodiscard]] std::vector<std::string> validate_report(const obs::Json& report);

/// Pretty-print @p report to @p path (throws std::runtime_error on I/O
/// failure). A trailing newline is appended so the file is POSIX-clean.
void write_report_file(const obs::Json& report, const std::string& path);

}  // namespace symbiosis::core
