// profile.hpp — bridge from machine state to allocator-facing profiles.
//
// Models the §3.2 syscall/hypercall interface: the user-level monitor (or
// Dom0) periodically reads each task's signature structure and event
// counters; this is the *only* machine state the allocation policies see.
#pragma once

#include <vector>

#include "machine/machine.hpp"
#include "sched/policy.hpp"

namespace symbiosis::core {

/// Snapshot one task.
[[nodiscard]] sched::TaskProfile profile_of(const machine::Task& task);

/// Snapshot all non-background tasks, in task-id order. The profile's
/// task_index refers to this vector's positions.
[[nodiscard]] std::vector<sched::TaskProfile> collect_profiles(const machine::Machine& m);

/// Map profile positions back to machine task ids (parallel to
/// collect_profiles output).
[[nodiscard]] std::vector<machine::TaskId> profiled_task_ids(const machine::Machine& m);

/// Apply an allocation (group == core) to the machine via affinity bits,
/// exactly like the paper's monitor calling sched_setaffinity. @p ids must
/// parallel the profile vector the allocation was computed from.
void apply_allocation(machine::Machine& m, const std::vector<machine::TaskId>& ids,
                      const sched::Allocation& allocation);

/// Clear every profiled task's signature window (start of a new decision
/// window).
void clear_signature_windows(machine::Machine& m);

}  // namespace symbiosis::core
