#include "core/experiment.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "sched/policy.hpp"
#include "util/log.hpp"

namespace symbiosis::core {

std::uint64_t MixOutcome::worst_user_cycles(std::size_t i) const {
  std::uint64_t worst = 0;
  for (const auto& run : mappings) worst = std::max(worst, run.user_cycles.at(i));
  return worst;
}

std::uint64_t MixOutcome::best_user_cycles(std::size_t i) const {
  std::uint64_t best = ~std::uint64_t{0};
  for (const auto& run : mappings) best = std::min(best, run.user_cycles.at(i));
  return best;
}

double MixOutcome::improvement_vs_worst(std::size_t i) const {
  const auto worst = worst_user_cycles(i);
  if (worst == 0) return 0.0;
  const auto chosen_cycles = mappings.at(chosen).user_cycles.at(i);
  return static_cast<double>(worst - chosen_cycles) / static_cast<double>(worst);
}

double MixOutcome::oracle_improvement(std::size_t i) const {
  const auto worst = worst_user_cycles(i);
  if (worst == 0) return 0.0;
  return static_cast<double>(worst - best_user_cycles(i)) / static_cast<double>(worst);
}

namespace {

/// Find @p allocation among @p mappings (canonical comparison); push a
/// fresh measurement if phase 1 produced an unbalanced mapping that the
/// enumeration does not contain.
std::size_t locate_or_add(std::vector<MappingRun>& mappings, const sched::Allocation& allocation,
                          const std::function<MappingRun(const sched::Allocation&)>& measure) {
  for (std::size_t i = 0; i < mappings.size(); ++i) {
    if (mappings[i].allocation == allocation) return i;
  }
  mappings.push_back(measure(allocation));
  return mappings.size() - 1;
}

}  // namespace

MixOutcome run_mix_experiment(const PipelineConfig& config, const std::vector<std::string>& mix) {
  obs::counter("core.mixes.run").add(1);
  MixOutcome outcome;
  outcome.mix = mix;

  const std::size_t cores = config.machine.hierarchy.num_cores;
  SymbioticScheduler pipeline(config);
  const sched::Allocation chosen = pipeline.choose_allocation(mix);
  outcome.votes = pipeline.vote_table();

  auto measure = [&](const sched::Allocation& alloc) {
    return config.virtualized ? measure_mapping_vm(config, mix, alloc)
                              : measure_mapping(config, mix, alloc);
  };
  for (const auto& alloc : sched::enumerate_balanced_allocations(mix.size(), cores)) {
    outcome.mappings.push_back(measure(alloc));
  }
  outcome.chosen = locate_or_add(outcome.mappings, chosen, measure);
  return outcome;
}

MixOutcome run_mix_experiment_mt(const PipelineConfig& config, const std::vector<std::string>& mix,
                                 std::size_t sampled_mappings) {
  obs::counter("core.mixes.run").add(1);
  MixOutcome outcome;
  outcome.mix = mix;

  const std::size_t cores = config.machine.hierarchy.num_cores;
  SymbioticScheduler pipeline(config);
  const sched::Allocation chosen = pipeline.choose_allocation_mt(mix);
  outcome.votes = pipeline.vote_table();

  const std::size_t threads = chosen.group_of.size();
  auto measure = [&](const sched::Allocation& alloc) {
    return measure_mapping_mt(config, mix, alloc);
  };

  // Reference set: default round-robin + random balanced samples.
  std::vector<sched::TaskProfile> dummy(threads);
  sched::DefaultAllocator default_alloc;
  outcome.mappings.push_back(measure(default_alloc.allocate(dummy, cores)));

  std::set<std::string> seen{outcome.mappings.front().allocation.key()};
  for (std::size_t s = 0; s < sampled_mappings; ++s) {
    sched::RandomAllocator random_alloc(config.seed + 7919 * (s + 1));
    const sched::Allocation alloc = random_alloc.allocate(dummy, cores);
    if (!seen.insert(alloc.key()).second) continue;
    outcome.mappings.push_back(measure(alloc));
  }
  outcome.chosen = locate_or_add(outcome.mappings, chosen, measure);
  return outcome;
}

std::vector<std::vector<std::string>> sample_mixes(const std::vector<std::string>& pool,
                                                   std::size_t mix_size,
                                                   std::size_t per_benchmark,
                                                   std::uint64_t seed) {
  if (pool.size() < mix_size) throw std::invalid_argument("sample_mixes: pool too small");
  const std::size_t n = pool.size();
  std::vector<std::vector<std::string>> mixes;
  std::set<std::vector<std::size_t>> seen;
  util::Rng rng(seed);
  std::vector<std::size_t> appearances(n, 0);

  // Rotation pass: deterministic coverage with varied partners, then top up
  // any under-covered benchmark with random draws.
  for (std::size_t round = 0; round < per_benchmark + 4; ++round) {
    const bool all_covered = std::all_of(appearances.begin(), appearances.end(),
                                         [&](std::size_t a) { return a >= per_benchmark; });
    if (all_covered) break;
    for (std::size_t i = 0; i < n; ++i) {
      if (appearances[i] >= per_benchmark) continue;
      std::vector<std::size_t> mix{i};
      // Partners: a rotation pattern for early rounds, random later.
      for (std::size_t k = 1; k < mix_size; ++k) {
        std::size_t candidate;
        if (round < 2) {
          candidate = (i + round * 3 + k * (round + 2)) % n;
        } else {
          candidate = rng.next_below(n);
        }
        while (std::find(mix.begin(), mix.end(), candidate) != mix.end()) {
          candidate = (candidate + 1) % n;
        }
        mix.push_back(candidate);
      }
      std::vector<std::size_t> key = mix;
      std::sort(key.begin(), key.end());
      if (!seen.insert(key).second) continue;
      for (const auto idx : mix) ++appearances[idx];
      std::vector<std::string> named;
      named.reserve(mix_size);
      for (const auto idx : key) named.push_back(pool[idx]);
      mixes.push_back(std::move(named));
    }
  }
  return mixes;
}

std::vector<BenchmarkImprovement> summarize_improvements(
    const std::vector<std::string>& pool, const std::vector<MixOutcome>& outcomes) {
  std::vector<BenchmarkImprovement> summary;
  summary.reserve(pool.size());
  for (const auto& name : pool) {
    BenchmarkImprovement agg;
    agg.name = name;
    for (const auto& outcome : outcomes) {
      for (std::size_t i = 0; i < outcome.mix.size(); ++i) {
        if (outcome.mix[i] != name) continue;
        const double improvement = outcome.improvement_vs_worst(i);
        agg.max_improvement = std::max(agg.max_improvement, improvement);
        agg.sum_improvement += improvement;
        const double oracle = outcome.oracle_improvement(i);
        agg.max_oracle = std::max(agg.max_oracle, oracle);
        agg.sum_oracle += oracle;
        ++agg.mixes;
      }
    }
    summary.push_back(std::move(agg));
  }
  return summary;
}

SweepResult run_sweep(const PipelineConfig& config, const std::vector<std::string>& pool,
                      std::size_t mix_size, std::size_t per_benchmark, bool multithreaded,
                      util::ThreadPool* pool_threads) {
  SweepResult result;
  result.mixes = sample_mixes(pool, mix_size, per_benchmark, config.seed);
  SYMBIOSIS_LOG_INFO("run_sweep: %zu mixes of %zu from a pool of %zu", result.mixes.size(),
                     mix_size, pool.size());
  result.outcomes.resize(result.mixes.size());

  // Each experiment builds its own Machine (and therefore its own RNG
  // streams, derived from config.seed) and writes only outcomes[i], so the
  // result is independent of worker interleaving AND of the shard cut — the
  // determinism suite pins this down for 1/2/8-thread pools vs serial.
  auto run_one = [&](std::size_t i) {
    result.outcomes[i] = multithreaded ? run_mix_experiment_mt(config, result.mixes[i])
                                       : run_mix_experiment(config, result.mixes[i]);
  };
  if (pool_threads) {
    // Shard the mix list so each pool task amortises queue overhead across
    // several experiments while every worker still gets ~4 shards to steal.
    const std::size_t grain = std::max<std::size_t>(
        1, result.mixes.size() / (pool_threads->size() * 4));
    pool_threads->parallel_for_sharded(0, result.mixes.size(), run_one, grain);
  } else {
    for (std::size_t i = 0; i < result.mixes.size(); ++i) run_one(i);
  }
  result.summary = summarize_improvements(pool, result.outcomes);
  return result;
}

SweepGridResult run_sweep_grid(const PipelineConfig& config, const std::vector<std::string>& pool,
                               std::size_t mix_size, std::size_t per_benchmark,
                               const std::vector<std::string>& algorithms,
                               std::size_t seed_replicates, bool multithreaded,
                               util::ThreadPool* pool_threads) {
  if (algorithms.empty()) throw std::invalid_argument("run_sweep_grid: no algorithms");
  if (seed_replicates == 0) throw std::invalid_argument("run_sweep_grid: zero replicates");
  SweepGridResult result;
  result.mixes = sample_mixes(pool, mix_size, per_benchmark, config.seed);
  result.cells.reserve(result.mixes.size() * algorithms.size() * seed_replicates);
  for (std::size_t m = 0; m < result.mixes.size(); ++m) {
    for (const auto& algorithm : algorithms) {
      for (std::size_t r = 0; r < seed_replicates; ++r) {
        result.cells.push_back(SweepCell{m, algorithm, r, config.seed});
      }
    }
  }
  SYMBIOSIS_LOG_INFO("run_sweep_grid: %zu cells (%zu mixes x %zu algorithms x %zu replicates)",
                     result.cells.size(), result.mixes.size(), algorithms.size(),
                     seed_replicates);
  result.outcomes.resize(result.cells.size());

  // Cells are independent experiments; each writes only cells[i]/outcomes[i]
  // so the grid is identical for any worker count and any shard cut. `base`
  // is shared by reference but only .split() (const) is ever called on it —
  // replicate seeds come from per-cell substreams.
  const util::Rng base(config.seed);
  auto run_one = [&](std::size_t i) {
    SweepCell& cell = result.cells[i];
    PipelineConfig cell_config = config;
    cell_config.allocator = cell.allocator;
    if (cell.replicate != 0) {
      util::Rng cell_rng = base.split(static_cast<std::uint64_t>(i));
      cell_config.seed = cell_rng();
      cell.seed = cell_config.seed;
    }
    result.outcomes[i] = multithreaded
                             ? run_mix_experiment_mt(cell_config, result.mixes[cell.mix_index])
                             : run_mix_experiment(cell_config, result.mixes[cell.mix_index]);
  };
  if (pool_threads) {
    const std::size_t grain = std::max<std::size_t>(
        1, result.cells.size() / (pool_threads->size() * 4));
    pool_threads->parallel_for_sharded(0, result.cells.size(), run_one, grain);
  } else {
    for (std::size_t i = 0; i < result.cells.size(); ++i) run_one(i);
  }
  return result;
}

std::vector<BenchmarkImprovement> sweep_pool(const PipelineConfig& config,
                                             const std::vector<std::string>& pool,
                                             std::size_t mix_size, std::size_t per_benchmark,
                                             bool multithreaded,
                                             util::ThreadPool* pool_threads) {
  return run_sweep(config, pool, mix_size, per_benchmark, multithreaded, pool_threads).summary;
}

}  // namespace symbiosis::core
