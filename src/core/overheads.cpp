#include "core/overheads.hpp"

#include <cstdio>

namespace symbiosis::core {

std::string software_cost_summary(std::size_t num_cores, std::size_t filter_entries,
                                  std::uint64_t allocator_period_cycles) {
  char buf[512];
  const double rbv_kb = static_cast<double>(filter_entries) / 8.0 / 1024.0;
  std::snprintf(
      buf, sizeof buf,
      "per-process OS context: (2+%zu) x 32-bit words; RBV transfer per context switch: "
      "%.2f KB x %zu cores; allocator invoked every %llu cycles (graph build + solve is "
      "O(P^2) over tens of processes, i.e. hundreds of instructions)",
      num_cores, rbv_kb, num_cores,
      static_cast<unsigned long long>(allocator_period_cycles));
  return std::string(buf);
}

}  // namespace symbiosis::core
