#include "core/report.hpp"

#include <fstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace symbiosis::core {

namespace {

obs::Json u64_array(const std::vector<std::uint64_t>& values) {
  obs::Json arr = obs::Json::array();
  for (const auto v : values) arr.push_back(obs::Json(v));
  return arr;
}

obs::Json string_array(const std::vector<std::string>& values) {
  obs::Json arr = obs::Json::array();
  for (const auto& v : values) arr.push_back(obs::Json(v));
  return arr;
}

/// Common envelope: schema stamp, kind, config, then kind-specific payload
/// is set by the caller; metrics and timings close the document so the
/// volatile sections sit together at the end.
obs::Json report_envelope(std::string kind, const PipelineConfig& config) {
  obs::Json report = obs::Json::object();
  report.set("schema", obs::Json(kReportSchema));
  // Degenerate two-level machines keep the v1 stamp (and the v1 document,
  // byte for byte); only cluster/L3/partition topologies move to v2.
  const bool degenerate = config.machine.hierarchy.topology().degenerate();
  report.set("schema_version",
             obs::Json(degenerate ? kLegacyReportSchemaVersion : kReportSchemaVersion));
  report.set("kind", obs::Json(std::move(kind)));
  report.set("config", pipeline_config_to_json(config));
  return report;
}

void close_envelope(obs::Json& report, const obs::PhaseTimings& timings) {
  report.set("metrics", metrics_to_json());
  report.set("timings", timings_to_json(timings));
}

}  // namespace

obs::Json pipeline_config_to_json(const PipelineConfig& config) {
  const auto& h = config.machine.hierarchy;
  obs::Json machine = obs::Json::object();
  machine.set("cores", obs::Json(static_cast<std::uint64_t>(h.num_cores)));
  machine.set("l1_bytes", obs::Json(static_cast<std::uint64_t>(h.l1.size_bytes)));
  machine.set("l1_ways", obs::Json(static_cast<std::uint64_t>(h.l1.ways)));
  machine.set("l2_bytes", obs::Json(static_cast<std::uint64_t>(h.l2.size_bytes)));
  machine.set("l2_ways", obs::Json(static_cast<std::uint64_t>(h.l2.ways)));
  machine.set("line_bytes", obs::Json(static_cast<std::uint64_t>(h.l1.line_bytes)));
  machine.set("shared_l2", obs::Json(h.shared_l2));
  // Graph-shape fields exist only on non-degenerate topologies so the v1
  // (degenerate) machine object — and the golden fixture — never changes.
  const cachesim::HierarchyTopology topo = h.topology();
  if (!topo.degenerate()) {
    machine.set("l2_clusters", obs::Json(static_cast<std::uint64_t>(topo.clusters())));
    machine.set("topology", obs::Json(topo.describe()));
    if (topo.l3) {
      machine.set("l3_bytes", obs::Json(static_cast<std::uint64_t>(topo.l3->size_bytes)));
      machine.set("l3_ways", obs::Json(static_cast<std::uint64_t>(topo.l3->ways)));
      machine.set("l3_replacement", obs::Json(cachesim::to_string(h.l3_replacement)));
    }
    if (topo.l2_partition.enabled()) {
      machine.set("l2_way_partition", u64_array({topo.l2_partition.ways_per_group.begin(),
                                                 topo.l2_partition.ways_per_group.end()}));
    }
    if (topo.l3_partition.enabled()) {
      machine.set("l3_way_partition", u64_array({topo.l3_partition.ways_per_group.begin(),
                                                 topo.l3_partition.ways_per_group.end()}));
    }
  }
  machine.set("quantum_cycles", obs::Json(config.machine.quantum_cycles));
  machine.set("quantum_jitter", obs::Json(config.machine.quantum_jitter));
  machine.set("migration_prob", obs::Json(config.machine.migration_prob));

  obs::Json out = obs::Json::object();
  out.set("seed", obs::Json(config.seed));
  out.set("allocator", obs::Json(config.allocator));
  out.set("allocator_period_cycles", obs::Json(config.allocator_period_cycles));
  out.set("emulation_cycles", obs::Json(config.emulation_cycles));
  out.set("measure_max_cycles", obs::Json(config.measure_max_cycles));
  out.set("virtualized", obs::Json(config.virtualized));
  out.set("length_scale", obs::Json(config.scale.length_scale));
  out.set("machine", std::move(machine));
  return out;
}

obs::Json mapping_run_to_json(const MappingRun& run) {
  obs::Json groups = obs::Json::array();
  for (const auto g : run.allocation.group_of) {
    groups.push_back(obs::Json(static_cast<std::uint64_t>(g)));
  }
  obs::Json out = obs::Json::object();
  out.set("key", obs::Json(run.allocation.key()));
  out.set("group_of", std::move(groups));
  out.set("names", string_array(run.names));
  out.set("user_cycles", u64_array(run.user_cycles));
  out.set("wall_cycles", obs::Json(run.wall_cycles));
  out.set("completed", obs::Json(run.completed));
  if (!run.levels.empty()) {
    // Schema v2 only: absent on degenerate (v1) machines by construction.
    obs::Json levels = obs::Json::array();
    for (const auto& level : run.levels) {
      obs::Json entry = obs::Json::object();
      entry.set("level", obs::Json(level.level));
      entry.set("accesses", obs::Json(level.stats.accesses));
      entry.set("hits", obs::Json(level.stats.hits));
      entry.set("misses", obs::Json(level.stats.misses));
      entry.set("evictions", obs::Json(level.stats.evictions));
      levels.push_back(std::move(entry));
    }
    out.set("levels", std::move(levels));
  }
  return out;
}

obs::Json mix_outcome_to_json(const MixOutcome& outcome) {
  obs::Json mappings = obs::Json::array();
  for (const auto& run : outcome.mappings) mappings.push_back(mapping_run_to_json(run));

  obs::Json votes = obs::Json::object();
  for (const auto& [key, count] : outcome.votes) {
    votes.set(key, obs::Json(static_cast<std::int64_t>(count)));
  }

  obs::Json improvements = obs::Json::array();
  for (std::size_t i = 0; i < outcome.mix.size(); ++i) {
    obs::Json entry = obs::Json::object();
    entry.set("name", obs::Json(outcome.mix[i]));
    entry.set("worst_user_cycles", obs::Json(outcome.worst_user_cycles(i)));
    entry.set("best_user_cycles", obs::Json(outcome.best_user_cycles(i)));
    entry.set("improvement_vs_worst", obs::Json(outcome.improvement_vs_worst(i)));
    entry.set("oracle_improvement", obs::Json(outcome.oracle_improvement(i)));
    improvements.push_back(std::move(entry));
  }

  obs::Json out = obs::Json::object();
  out.set("mix", string_array(outcome.mix));
  out.set("chosen", obs::Json(static_cast<std::uint64_t>(outcome.chosen)));
  out.set("votes", std::move(votes));
  out.set("mappings", std::move(mappings));
  out.set("improvements", std::move(improvements));
  return out;
}

obs::Json metrics_to_json() {
  obs::Json arr = obs::Json::array();
  for (const auto& sample : obs::MetricRegistry::global().snapshot()) {
    obs::Json entry = obs::Json::object();
    entry.set("name", obs::Json(sample.name));
    entry.set("kind", obs::Json(obs::to_string(sample.kind)));
    switch (sample.kind) {
      case obs::MetricKind::Counter:
        entry.set("count", obs::Json(sample.count));
        break;
      case obs::MetricKind::Gauge:
        entry.set("value", obs::Json(sample.value));
        break;
      case obs::MetricKind::Histogram:
        entry.set("count", obs::Json(sample.count));
        entry.set("sum", obs::Json(sample.sum));
        entry.set("min", obs::Json(sample.min));
        entry.set("max", obs::Json(sample.max));
        entry.set("mean", obs::Json(sample.value));
        break;
    }
    arr.push_back(std::move(entry));
  }
  return arr;
}

obs::Json timings_to_json(const obs::PhaseTimings& timings) {
  obs::Json arr = obs::Json::array();
  for (const auto& [phase, ms] : timings.items()) {
    obs::Json entry = obs::Json::object();
    entry.set("phase", obs::Json(phase));
    entry.set("ms", obs::Json(ms));
    arr.push_back(std::move(entry));
  }
  return arr;
}

obs::Json build_mix_report(const PipelineConfig& config, const MixOutcome& outcome,
                           const obs::PhaseTimings& timings) {
  obs::Json report = report_envelope("mix", config);
  report.set("outcome", mix_outcome_to_json(outcome));
  close_envelope(report, timings);
  return report;
}

obs::Json build_sweep_report(const PipelineConfig& config, const SweepResult& sweep,
                             const obs::PhaseTimings& timings) {
  obs::Json report = report_envelope("sweep", config);

  obs::Json mixes = obs::Json::array();
  for (const auto& mix : sweep.mixes) mixes.push_back(string_array(mix));
  report.set("mixes", std::move(mixes));

  obs::Json outcomes = obs::Json::array();
  for (const auto& outcome : sweep.outcomes) outcomes.push_back(mix_outcome_to_json(outcome));
  report.set("outcomes", std::move(outcomes));

  obs::Json summary = obs::Json::array();
  for (const auto& agg : sweep.summary) {
    obs::Json entry = obs::Json::object();
    entry.set("name", obs::Json(agg.name));
    entry.set("mixes", obs::Json(static_cast<std::int64_t>(agg.mixes)));
    entry.set("max_improvement", obs::Json(agg.max_improvement));
    entry.set("avg_improvement", obs::Json(agg.avg_improvement()));
    entry.set("max_oracle", obs::Json(agg.max_oracle));
    entry.set("avg_oracle", obs::Json(agg.avg_oracle()));
    summary.push_back(std::move(entry));
  }
  report.set("summary", std::move(summary));

  close_envelope(report, timings);
  return report;
}

namespace {

obs::Json online_run_to_json(const OnlineRun& run) {
  obs::Json out = obs::Json::object();
  out.set("names", string_array(run.names));
  out.set("user_cycles", u64_array(run.user_cycles));
  out.set("wall_cycles", obs::Json(run.wall_cycles));
  out.set("repinnings", obs::Json(static_cast<std::uint64_t>(run.repinnings)));
  out.set("final_mapping_key", obs::Json(run.final_mapping_key));
  out.set("completed", obs::Json(run.completed));
  return out;
}

}  // namespace

obs::Json build_online_report(const OnlineConfig& config, const OnlineRun& online,
                              const OnlineRun* baseline, const obs::PhaseTimings& timings) {
  obs::Json report = report_envelope("online", config.pipeline);
  report.set("confirm_windows", obs::Json(static_cast<std::uint64_t>(config.confirm_windows)));
  report.set("online", online_run_to_json(online));
  if (baseline) report.set("baseline", online_run_to_json(*baseline));
  close_envelope(report, timings);
  return report;
}

obs::Json build_trace_replay_report(const cachesim::HierarchyConfig& machine,
                                    const std::string& trace_path,
                                    const workload::SymtStats& stats,
                                    const workload::ReplayResult& result, std::size_t chunk,
                                    std::size_t workers, const obs::PhaseTimings& timings) {
  obs::Json report = obs::Json::object();
  report.set("schema", obs::Json(kReportSchema));
  const bool degenerate = machine.topology().degenerate();
  report.set("schema_version",
             obs::Json(degenerate ? kLegacyReportSchemaVersion : kReportSchemaVersion));
  report.set("kind", obs::Json("trace_replay"));

  obs::Json machine_json = obs::Json::object();
  machine_json.set("cores", obs::Json(static_cast<std::uint64_t>(machine.num_cores)));
  machine_json.set("l1_bytes", obs::Json(static_cast<std::uint64_t>(machine.l1.size_bytes)));
  machine_json.set("l2_bytes", obs::Json(static_cast<std::uint64_t>(machine.l2.size_bytes)));
  machine_json.set("line_bytes", obs::Json(static_cast<std::uint64_t>(machine.l1.line_bytes)));
  machine_json.set("shared_l2", obs::Json(machine.shared_l2));
  if (!degenerate) {
    machine_json.set("topology", obs::Json(machine.topology().describe()));
  }
  obs::Json config = obs::Json::object();
  config.set("seed", obs::Json(machine.seed));
  config.set("allocator", obs::Json("none"));
  config.set("machine", std::move(machine_json));
  report.set("config", std::move(config));

  obs::Json trace = obs::Json::object();
  trace.set("path", obs::Json(trace_path));
  trace.set("threads", obs::Json(stats.threads));
  trace.set("records", obs::Json(stats.records));
  trace.set("mem_refs", obs::Json(stats.mem_refs));
  trace.set("writes", obs::Json(stats.writes));
  trace.set("write_ratio", obs::Json(stats.write_ratio()));
  trace.set("sync_events", obs::Json(stats.sync_events));
  trace.set("footprint_lines", obs::Json(stats.footprint_lines));
  report.set("trace", std::move(trace));

  obs::Json totals = obs::Json::object();
  totals.set("accesses", obs::Json(result.totals.accesses));
  totals.set("cycles", obs::Json(result.totals.cycles));
  totals.set("l1_hits", obs::Json(result.totals.l1_hits));
  totals.set("l2_hits", obs::Json(result.totals.l2_hits));
  totals.set("l3_hits", obs::Json(result.totals.l3_hits));
  totals.set("tlb_hits", obs::Json(result.totals.tlb_hits));
  totals.set("stream_prefetched", obs::Json(result.totals.stream_prefetched));

  obs::Json threads = obs::Json::array();
  for (const auto& t : result.threads) {
    obs::Json entry = obs::Json::object();
    entry.set("mem_refs", obs::Json(t.mem_refs));
    entry.set("barriers", obs::Json(t.barriers));
    entry.set("lock_acquires", obs::Json(t.lock_acquires));
    entry.set("lock_releases", obs::Json(t.lock_releases));
    entry.set("signals", obs::Json(t.signals));
    entry.set("waits", obs::Json(t.waits));
    entry.set("blocked_visits", obs::Json(t.blocked_visits));
    threads.push_back(std::move(entry));
  }

  obs::Json replay = obs::Json::object();
  replay.set("chunk", obs::Json(static_cast<std::uint64_t>(chunk)));
  replay.set("workers", obs::Json(static_cast<std::uint64_t>(workers)));
  replay.set("rounds", obs::Json(result.rounds));
  replay.set("sync_events", obs::Json(result.sync_events));
  replay.set("totals", std::move(totals));
  replay.set("threads", std::move(threads));
  report.set("replay", std::move(replay));

  close_envelope(report, timings);
  return report;
}

namespace {

/// Validation helpers accumulating problems instead of throwing: the CLI
/// wants ALL problems, not the first.
void require_member(const obs::Json& obj, std::string_view key, std::string_view type,
                    std::vector<std::string>& problems) {
  const obs::Json* member = obj.find(key);
  if (!member) {
    problems.push_back("missing member: " + std::string(key));
    return;
  }
  const bool ok = (type == "object" && member->is_object()) ||
                  (type == "array" && member->is_array()) ||
                  (type == "string" && member->is_string()) ||
                  (type == "number" && member->is_number()) ||
                  (type == "bool" && member->is_bool());
  if (!ok) {
    problems.push_back(std::string(key) + ": expected " + std::string(type));
  }
}

void validate_mapping(const obs::Json& mapping, const std::string& where,
                      std::vector<std::string>& problems) {
  if (!mapping.is_object()) {
    problems.push_back(where + ": mapping is not an object");
    return;
  }
  for (const auto* key : {"key", "group_of", "names", "user_cycles"}) {
    if (!mapping.find(key)) problems.push_back(where + ": missing " + key);
  }
  const obs::Json* names = mapping.find("names");
  const obs::Json* cycles = mapping.find("user_cycles");
  if (names && cycles && names->is_array() && cycles->is_array() &&
      names->size() != cycles->size()) {
    problems.push_back(where + ": names and user_cycles lengths differ");
  }
  // "levels" is optional (schema v2 non-degenerate machines only), but when
  // present each entry must carry the full counter set.
  if (const obs::Json* levels = mapping.find("levels")) {
    if (!levels->is_array()) {
      problems.push_back(where + ": levels is not an array");
      return;
    }
    for (std::size_t i = 0; i < levels->size(); ++i) {
      const obs::Json& entry = levels->as_array()[i];
      const std::string entry_where = where + ".levels." + std::to_string(i);
      if (!entry.is_object()) {
        problems.push_back(entry_where + ": not an object");
        continue;
      }
      require_member(entry, "level", "string", problems);
      for (const auto* key : {"accesses", "hits", "misses", "evictions"}) {
        require_member(entry, key, "number", problems);
      }
    }
  }
}

void validate_outcome(const obs::Json& outcome, const std::string& where,
                      std::vector<std::string>& problems) {
  if (!outcome.is_object()) {
    problems.push_back(where + ": outcome is not an object");
    return;
  }
  for (const auto* key : {"mix", "chosen", "votes", "mappings", "improvements"}) {
    if (!outcome.find(key)) problems.push_back(where + ": missing " + key);
  }
  const obs::Json* mappings = outcome.find("mappings");
  const obs::Json* chosen = outcome.find("chosen");
  if (mappings && mappings->is_array()) {
    if (chosen && chosen->is_number() && chosen->as_u64() >= mappings->size()) {
      problems.push_back(where + ": chosen index out of range");
    }
    for (std::size_t i = 0; i < mappings->size(); ++i) {
      validate_mapping(mappings->as_array()[i], where + ".mappings." + std::to_string(i),
                       problems);
    }
  }
}

}  // namespace

std::vector<std::string> validate_report(const obs::Json& report) {
  std::vector<std::string> problems;
  if (!report.is_object()) {
    problems.push_back("report is not a JSON object");
    return problems;
  }

  require_member(report, "schema", "string", problems);
  require_member(report, "schema_version", "number", problems);
  require_member(report, "kind", "string", problems);
  require_member(report, "config", "object", problems);
  require_member(report, "metrics", "array", problems);
  require_member(report, "timings", "array", problems);

  const obs::Json* schema = report.find("schema");
  if (schema && schema->is_string() && schema->as_string() != kReportSchema) {
    problems.push_back("schema: expected \"" + std::string(kReportSchema) + "\", got \"" +
                       schema->as_string() + "\"");
  }
  const obs::Json* version = report.find("schema_version");
  if (version && version->is_number() && version->as_u64() != kReportSchemaVersion &&
      version->as_u64() != kLegacyReportSchemaVersion) {
    problems.push_back("schema_version: expected " + std::to_string(kLegacyReportSchemaVersion) +
                       " or " + std::to_string(kReportSchemaVersion) + ", got " +
                       std::to_string(version->as_u64()));
  }

  const obs::Json* config = report.find("config");
  if (config && config->is_object()) {
    require_member(*config, "seed", "number", problems);
    require_member(*config, "allocator", "string", problems);
    require_member(*config, "machine", "object", problems);
  }

  const obs::Json* kind = report.find("kind");
  const std::string kind_name = kind && kind->is_string() ? kind->as_string() : "";
  if (kind_name == "mix") {
    require_member(report, "outcome", "object", problems);
    if (const obs::Json* outcome = report.find("outcome")) {
      validate_outcome(*outcome, "outcome", problems);
    }
  } else if (kind_name == "sweep") {
    require_member(report, "mixes", "array", problems);
    require_member(report, "outcomes", "array", problems);
    require_member(report, "summary", "array", problems);
    const obs::Json* mixes = report.find("mixes");
    const obs::Json* outcomes = report.find("outcomes");
    if (mixes && outcomes && mixes->is_array() && outcomes->is_array()) {
      if (mixes->size() != outcomes->size()) {
        problems.push_back("mixes and outcomes lengths differ");
      }
      for (std::size_t i = 0; i < outcomes->size(); ++i) {
        validate_outcome(outcomes->as_array()[i], "outcomes." + std::to_string(i), problems);
      }
    }
  } else if (kind_name == "online") {
    require_member(report, "online", "object", problems);
  } else if (kind_name == "trace_replay") {
    require_member(report, "trace", "object", problems);
    require_member(report, "replay", "object", problems);
    const obs::Json* trace = report.find("trace");
    if (trace && trace->is_object()) {
      require_member(*trace, "path", "string", problems);
      for (const auto* key : {"threads", "records", "mem_refs", "sync_events"}) {
        require_member(*trace, key, "number", problems);
      }
    }
    const obs::Json* replay = report.find("replay");
    if (replay && replay->is_object()) {
      require_member(*replay, "rounds", "number", problems);
      require_member(*replay, "totals", "object", problems);
      require_member(*replay, "threads", "array", problems);
      if (const obs::Json* totals = replay->find("totals")) {
        if (totals->is_object()) {
          require_member(*totals, "accesses", "number", problems);
          require_member(*totals, "cycles", "number", problems);
        }
      }
      const obs::Json* rthreads = replay->find("threads");
      const obs::Json* tthreads = trace && trace->is_object() ? trace->find("threads") : nullptr;
      if (rthreads && rthreads->is_array() && tthreads && tthreads->is_number() &&
          rthreads->size() != tthreads->as_u64()) {
        problems.push_back("replay.threads length disagrees with trace.threads");
      }
    }
  } else if (!kind_name.empty()) {
    problems.push_back("kind: unknown report kind \"" + kind_name + "\"");
  }

  return problems;
}

void write_report_file(const obs::Json& report, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_report_file: cannot open " + path);
  out << report.dump(2) << '\n';
  if (!out) throw std::runtime_error("write_report_file: write failed: " + path);
}

}  // namespace symbiosis::core
