#include "core/symbiotic_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/profile.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "sched/policy.hpp"
#include "util/log.hpp"
#include "workload/parsec_model.hpp"

namespace symbiosis::core {

SymbioticScheduler::SymbioticScheduler(PipelineConfig config) : config_(std::move(config)) {
  if (config_.machine.hierarchy.num_cores < 2) {
    throw std::invalid_argument("SymbioticScheduler: need at least 2 cores");
  }
}

std::vector<machine::TaskId> add_mix_tasks(machine::Machine& m,
                                           const std::vector<std::string>& mix,
                                           const workload::ScaleConfig& scale,
                                           std::uint64_t seed) {
  std::vector<machine::TaskId> ids;
  util::Rng rng(seed);
  for (std::size_t i = 0; i < mix.size(); ++i) {
    auto workload = workload::make_spec_workload(mix[i], machine::address_space_base(i),
                                                 rng.split(i + 1), scale);
    ids.push_back(m.add_task(std::move(workload)));
  }
  return ids;
}

sched::Allocation SymbioticScheduler::run_phase1(machine::Machine& m,
                                                 const std::string& allocator_name) {
  votes_.clear();
  vote_allocations_.clear();

  auto allocator = sched::make_allocator(allocator_name, config_.seed);
  const std::size_t cores = config_.machine.hierarchy.num_cores;
  const auto ids = profiled_task_ids(m);

  m.set_periodic_hook(config_.allocator_period_cycles, [&](machine::Machine& mm) {
    auto profiles = collect_profiles(mm);
    // Every task must have been context-switched out at least once this
    // window, or its signature is stale noise; skip the vote if not.
    const bool ready = std::all_of(profiles.begin(), profiles.end(), [&](const auto& p) {
      return mm.task(ids[p.task_index]).signature().samples() > 0;
    });
    if (!ready) return;
    const sched::Allocation alloc = allocator->allocate(profiles, cores);
    const std::string key = alloc.key();
    obs::counter("core.phase1.votes").add(1);
    ++votes_[key];
    vote_allocations_.emplace(key, alloc.canonical());
    // §4.1: during emulation the allocator only VOTES — tasks keep running
    // under default OS scheduling (with load-balancer migration), so the
    // signatures sample each process against varied co-runners instead of
    // freezing the initial pairing. The majority pick is applied in
    // phase 2 on the "real" machine.
    clear_signature_windows(mm);
  });

  // Fixed emulation window; finished benchmarks restart and keep feeding
  // signatures (§4.1 fast-forwards then emulates a fixed instruction count).
  SYM_RECORD((obs::PhaseEvent{m.now(), "phase1.emulate"}));
  m.run_for(config_.emulation_cycles);
  SYM_RECORD((obs::PhaseEvent{m.now(), "phase1.vote"}));

  if (votes_.empty()) {
    SYMBIOSIS_LOG_WARN("phase 1 cast no votes (emulation too short?); using default mapping");
    sched::DefaultAllocator fallback;
    return fallback.allocate(collect_profiles(m), cores);
  }
  const auto winner = std::max_element(
      votes_.begin(), votes_.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  return vote_allocations_.at(winner->first);
}

sched::Allocation SymbioticScheduler::choose_allocation(const std::vector<std::string>& mix) {
  machine::Machine m(config_.machine);
  (void)add_mix_tasks(m, mix, config_.scale, config_.seed);
  return run_phase1(m, config_.allocator);
}

sched::Allocation SymbioticScheduler::choose_allocation_mt(const std::vector<std::string>& mix) {
  machine::Machine m(config_.machine);
  util::Rng rng(config_.seed);
  for (std::size_t i = 0; i < mix.size(); ++i) {
    const auto spec = workload::make_parsec_benchmark(mix[i], config_.scale);
    auto threads = workload::make_parsec_threads(spec, machine::address_space_base(i),
                                                 rng.split(i + 1));
    for (auto& thread : threads) m.add_thread(std::move(thread), /*pid=*/i);
  }
  return run_phase1(m, "multithread");
}

namespace {

/// Attach per-level cache counters (schema v2). Degenerate two-level
/// machines skip this so their v1 report stays byte-identical to the
/// pre-graph implementation.
void collect_level_stats(const machine::Machine& m, MappingRun& run) {
  if (m.config().hierarchy.topology().degenerate()) return;
  const cachesim::Hierarchy& h = m.hierarchy();
  run.levels.push_back({"l1", h.level_stats("l1")});
  run.levels.push_back({"l2", h.level_stats("l2")});
  if (h.has_l3()) run.levels.push_back({"l3", h.level_stats("l3")});
}

MappingRun finish_run(machine::Machine& m, const std::vector<machine::TaskId>& ids,
                      const sched::Allocation& allocation, bool completed) {
  MappingRun run;
  run.allocation = allocation;
  run.completed = completed;
  run.wall_cycles = m.now();
  for (const auto id : ids) {
    const machine::Task& task = m.task(id);
    run.names.push_back(task.name());
    run.user_cycles.push_back(task.first_completion_user_cycles);
  }
  collect_level_stats(m, run);
  return run;
}

}  // namespace

MappingRun measure_mapping(const PipelineConfig& config, const std::vector<std::string>& mix,
                           const sched::Allocation& allocation) {
  if (allocation.group_of.size() != mix.size()) {
    throw std::invalid_argument("measure_mapping: allocation size != mix size");
  }
  machine::Machine m(config.machine);
  const auto ids = add_mix_tasks(m, mix, config.scale, config.seed);
  apply_allocation(m, ids, allocation);
  const bool completed = m.run_to_all_complete(config.measure_max_cycles);
  return finish_run(m, ids, allocation, completed);
}

MappingRun measure_mapping_vm(const PipelineConfig& config, const std::vector<std::string>& mix,
                              const sched::Allocation& allocation) {
  if (allocation.group_of.size() != mix.size()) {
    throw std::invalid_argument("measure_mapping_vm: allocation size != mix size");
  }
  vm::VmConfig vc = config.vm;
  vc.machine = config.machine;
  vm::Hypervisor hv(vc);

  util::Rng rng(config.seed);
  std::vector<vm::DomainId> domains;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    auto workload = workload::make_spec_workload(mix[i], machine::address_space_base(i),
                                                 rng.split(i + 1), config.scale);
    domains.push_back(hv.create_domain(std::move(workload)));
  }
  for (std::size_t i = 0; i < domains.size(); ++i) {
    hv.set_domain_affinity(domains[i], allocation.group_of[i]);
  }
  const bool completed = hv.run_to_all_complete(config.measure_max_cycles);

  MappingRun run;
  run.allocation = allocation;
  run.completed = completed;
  run.wall_cycles = hv.machine().now();
  for (const auto dom : domains) {
    run.names.push_back(hv.domain_name(dom));
    run.user_cycles.push_back(hv.domain_user_cycles(dom));
  }
  collect_level_stats(hv.machine(), run);
  return run;
}

MappingRun measure_mapping_mt(const PipelineConfig& config, const std::vector<std::string>& mix,
                              const sched::Allocation& allocation) {
  machine::Machine m(config.machine);
  util::Rng rng(config.seed);
  std::vector<std::vector<machine::TaskId>> process_threads;
  for (std::size_t i = 0; i < mix.size(); ++i) {
    const auto spec = workload::make_parsec_benchmark(mix[i], config.scale);
    auto threads = workload::make_parsec_threads(spec, machine::address_space_base(i),
                                                 rng.split(i + 1));
    std::vector<machine::TaskId> ids;
    for (auto& thread : threads) ids.push_back(m.add_thread(std::move(thread), /*pid=*/i));
    process_threads.push_back(std::move(ids));
  }

  const auto flat_ids = profiled_task_ids(m);
  if (allocation.group_of.size() != flat_ids.size()) {
    throw std::invalid_argument("measure_mapping_mt: allocation size != thread count");
  }
  apply_allocation(m, flat_ids, allocation);
  const bool completed = m.run_to_all_complete(config.measure_max_cycles);

  MappingRun run;
  run.allocation = allocation;
  run.completed = completed;
  run.wall_cycles = m.now();
  for (std::size_t i = 0; i < mix.size(); ++i) {
    std::uint64_t user = 0;
    for (const auto id : process_threads[i]) user += m.task(id).first_completion_user_cycles;
    run.names.push_back(mix[i]);
    run.user_cycles.push_back(user);
  }
  collect_level_stats(m, run);
  return run;
}

}  // namespace symbiosis::core
