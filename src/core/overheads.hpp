// overheads.hpp — the §5.4 implementation-overhead model.
//
// Hardware cost of the signature unit: per tracked cache line the L2 gains
// one Core Filter bit and one Last Filter bit PER CORE plus an L-bit shared
// counter, i.e. (2N + L) bits. The paper normalizes against per-line
// storage of (64 + 18) bits — a 64-bit granule plus an 18-bit tag — giving
// 7/82 ≈ 8.5% for a dual-core with 3-bit counters, "inordinately large",
// and 25% set-sampling brings it to ≈ 2.13%. We reproduce that arithmetic
// verbatim AND provide a from-first-principles variant normalized against
// a full 64-BYTE line (512 data bits + tag), which is what a modern cache
// would report. The software-side costs (three 32-bit numbers per process,
// a ~hundreds-of-instructions graph solve every 100 ms, 1 KB RBV transfer
// per switch) are summarized by software_cost_summary().
#pragma once

#include <cstdint>
#include <string>

namespace symbiosis::core {

struct OverheadModel {
  std::size_t num_cores = 2;
  unsigned counter_bits = 3;   ///< L
  double sample_ratio = 1.0;   ///< fraction of cache sets tracked (§5.4: 0.25)
  unsigned tag_bits = 18;

  /// Signature bits per TRACKED line: CF + LF per core + shared counter.
  [[nodiscard]] double bits_per_tracked_line() const noexcept {
    return 2.0 * static_cast<double>(num_cores) + counter_bits;
  }

  /// The paper's §5.4 arithmetic: overhead / (64 + 18) bits per line,
  /// scaled by the sampling ratio. 8.5% unsampled, 2.13% at 25% sampling
  /// for a dual-core.
  [[nodiscard]] double relative_overhead_paper() const noexcept {
    return sample_ratio * bits_per_tracked_line() / (64.0 + tag_bits);
  }

  /// First-principles variant: normalize against a real 64-byte line
  /// (512 data bits + tag).
  [[nodiscard]] double relative_overhead_64byte_line() const noexcept {
    return sample_ratio * bits_per_tracked_line() / (512.0 + tag_bits);
  }

  /// Absolute signature storage for an L2 with @p cache_lines lines, bytes.
  [[nodiscard]] double storage_bytes(std::size_t cache_lines) const noexcept {
    return sample_ratio * static_cast<double>(cache_lines) * bits_per_tracked_line() / 8.0;
  }
};

/// Human-readable summary of the §5.4 software overheads (context size,
/// allocator cost, RBV transfer traffic).
[[nodiscard]] std::string software_cost_summary(std::size_t num_cores,
                                                std::size_t filter_entries,
                                                std::uint64_t allocator_period_cycles);

}  // namespace symbiosis::core
