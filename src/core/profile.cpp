#include "core/profile.hpp"

#include <stdexcept>

namespace symbiosis::core {

sched::TaskProfile profile_of(const machine::Task& task) {
  sched::TaskProfile p;
  p.pid = task.pid();
  p.name = task.name();
  const auto& signature = task.signature();
  p.occupancy_weight = signature.mean_occupancy();
  p.last_core = signature.last_core();
  p.symbiosis_per_core.resize(signature.num_cores());
  for (std::size_t c = 0; c < signature.num_cores(); ++c) {
    p.symbiosis_per_core[c] = signature.mean_symbiosis(c);
  }
  const auto& counters = task.counters();
  p.l2_miss_rate = counters.l2_miss_rate();
  p.l2_misses_per_kilo_instr =
      counters.instructions
          ? 1000.0 * static_cast<double>(counters.l2_misses) /
                static_cast<double>(counters.instructions)
          : 0.0;
  return p;
}

std::vector<sched::TaskProfile> collect_profiles(const machine::Machine& m) {
  std::vector<sched::TaskProfile> profiles;
  for (machine::TaskId id = 0; id < m.task_count(); ++id) {
    const machine::Task& task = m.task(id);
    if (task.background) continue;
    sched::TaskProfile p = profile_of(task);
    p.task_index = profiles.size();
    profiles.push_back(std::move(p));
  }
  return profiles;
}

std::vector<machine::TaskId> profiled_task_ids(const machine::Machine& m) {
  std::vector<machine::TaskId> ids;
  for (machine::TaskId id = 0; id < m.task_count(); ++id) {
    if (!m.task(id).background) ids.push_back(id);
  }
  return ids;
}

void apply_allocation(machine::Machine& m, const std::vector<machine::TaskId>& ids,
                      const sched::Allocation& allocation) {
  if (ids.size() != allocation.group_of.size()) {
    throw std::invalid_argument("apply_allocation: allocation/task count mismatch");
  }
  if (allocation.groups > m.config().hierarchy.num_cores) {
    throw std::invalid_argument("apply_allocation: more groups than cores");
  }
  for (std::size_t i = 0; i < ids.size(); ++i) {
    m.set_affinity(ids[i], allocation.group_of[i]);
  }
}

void clear_signature_windows(machine::Machine& m) {
  for (machine::TaskId id = 0; id < m.task_count(); ++id) {
    m.task(id).signature().clear_window();
  }
}

}  // namespace symbiosis::core
