// experiment.hpp — the paper's measurement harness (§4.2, Table 1, Figs
// 10–13): run EVERY possible mapping of a mix, find which one phase 1
// chose, and report per-benchmark improvements of the chosen mapping over
// the worst mapping.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/symbiotic_scheduler.hpp"
#include "util/threadpool.hpp"

namespace symbiosis::core {

/// Full outcome of one mix: all mappings measured + the phase-1 choice.
struct MixOutcome {
  std::vector<std::string> mix;
  std::vector<MappingRun> mappings;  ///< every enumerated balanced mapping
  std::size_t chosen = 0;            ///< index into mappings of the phase-1 pick
  std::map<std::string, int> votes;  ///< the phase-1 vote table

  /// Worst (max) user time of entity @p i across all mappings.
  [[nodiscard]] std::uint64_t worst_user_cycles(std::size_t i) const;
  /// Best (min) user time of entity @p i across all mappings.
  [[nodiscard]] std::uint64_t best_user_cycles(std::size_t i) const;
  /// Improvement of the CHOSEN mapping over the worst for entity @p i, as
  /// the paper reports it: (worst - chosen) / worst.
  [[nodiscard]] double improvement_vs_worst(std::size_t i) const;
  /// Headroom: improvement of the best possible mapping over the worst.
  [[nodiscard]] double oracle_improvement(std::size_t i) const;

  /// Field-wise equality: the determinism suite asserts serial and
  /// thread-pool sweeps produce BIT-IDENTICAL outcomes for one seed.
  [[nodiscard]] bool operator==(const MixOutcome&) const = default;
};

/// Run the full experiment for one single-threaded mix. When
/// config.virtualized is set, phase 2 measures inside VMs (phase 1 stays
/// process-based, as in the paper — Simics could not run Xen).
[[nodiscard]] MixOutcome run_mix_experiment(const PipelineConfig& config,
                                            const std::vector<std::string>& mix);

/// Multi-threaded variant: thread-level mappings cannot be enumerated
/// exhaustively (C(16,8) for four 4-thread apps), so the reference set is
/// {default, chosen, @p sampled_mappings random balanced mappings} and
/// improvements are relative to the worst of that set. This substitution
/// is recorded in DESIGN.md.
[[nodiscard]] MixOutcome run_mix_experiment_mt(const PipelineConfig& config,
                                               const std::vector<std::string>& mix,
                                               std::size_t sampled_mappings = 6);

/// Deterministic sample of distinct mixes of @p mix_size from @p pool such
/// that every pool entry appears in at least @p per_benchmark mixes.
[[nodiscard]] std::vector<std::vector<std::string>> sample_mixes(
    const std::vector<std::string>& pool, std::size_t mix_size, std::size_t per_benchmark,
    std::uint64_t seed);

/// Per-benchmark aggregate across many mix outcomes (a Fig 10/11/12 bar).
struct BenchmarkImprovement {
  std::string name;
  double max_improvement = 0.0;
  double sum_improvement = 0.0;
  double max_oracle = 0.0;   ///< best-mapping headroom (diagnostic)
  double sum_oracle = 0.0;
  int mixes = 0;

  [[nodiscard]] double avg_improvement() const noexcept {
    return mixes ? sum_improvement / mixes : 0.0;
  }
  [[nodiscard]] double avg_oracle() const noexcept { return mixes ? sum_oracle / mixes : 0.0; }

  [[nodiscard]] bool operator==(const BenchmarkImprovement&) const = default;
};

/// Fold outcomes into per-benchmark max/avg improvements, ordered by @p pool.
[[nodiscard]] std::vector<BenchmarkImprovement> summarize_improvements(
    const std::vector<std::string>& pool, const std::vector<MixOutcome>& outcomes);

/// Everything one sweep produced: the sampled mixes, the raw per-mix
/// outcomes (in mix order, independent of execution interleaving), and the
/// per-benchmark summary. Report export and the determinism suite need the
/// raw outcomes; sweep_pool() keeps returning just the summary.
struct SweepResult {
  std::vector<std::vector<std::string>> mixes;
  std::vector<MixOutcome> outcomes;
  std::vector<BenchmarkImprovement> summary;
};

/// Full-fidelity sweep driver: sample mixes, run experiments (in parallel
/// when @p pool_threads is non-null), summarize. Outcomes are stored at the
/// index of their mix, so the result is identical for any worker count.
[[nodiscard]] SweepResult run_sweep(const PipelineConfig& config,
                                    const std::vector<std::string>& pool, std::size_t mix_size,
                                    std::size_t per_benchmark, bool multithreaded = false,
                                    util::ThreadPool* pool_threads = nullptr);

/// One (mix, allocator, seed-replicate) cell of a sweep grid.
struct SweepCell {
  std::size_t mix_index = 0;   ///< into SweepGridResult::mixes
  std::string allocator;       ///< sched::make_allocator name
  std::size_t replicate = 0;   ///< 0 = the configured seed, >0 = derived
  std::uint64_t seed = 0;      ///< pipeline seed this cell ran with

  [[nodiscard]] bool operator==(const SweepCell&) const = default;
};

/// Everything a grid sweep produced; outcomes[i] is cells[i]'s result.
struct SweepGridResult {
  std::vector<std::vector<std::string>> mixes;
  std::vector<SweepCell> cells;
  std::vector<MixOutcome> outcomes;

  [[nodiscard]] bool operator==(const SweepGridResult&) const = default;
};

/// Sweep the full (mix × allocator × seed-replicate) grid: every cell is an
/// independent experiment, sharded across @p pool_threads when non-null.
/// Results land at their cell index and replicate r > 0 derives its
/// pipeline seed from a per-cell substream of config.seed (util::Rng
/// .split(cell), the sanctioned per-shard pattern), so the result is
/// BIT-IDENTICAL for any worker count — the determinism suite pins this at
/// 1/2/8 workers. Replicate 0 keeps config.seed itself, so a grid over
/// {config.allocator} with one replicate reproduces run_sweep exactly.
[[nodiscard]] SweepGridResult run_sweep_grid(const PipelineConfig& config,
                                             const std::vector<std::string>& pool,
                                             std::size_t mix_size, std::size_t per_benchmark,
                                             const std::vector<std::string>& algorithms,
                                             std::size_t seed_replicates = 1,
                                             bool multithreaded = false,
                                             util::ThreadPool* pool_threads = nullptr);

/// Convenience driver for Figs 10–12: run_sweep, keep only the summary.
[[nodiscard]] std::vector<BenchmarkImprovement> sweep_pool(
    const PipelineConfig& config, const std::vector<std::string>& pool, std::size_t mix_size,
    std::size_t per_benchmark, bool multithreaded = false,
    util::ThreadPool* pool_threads = nullptr);

}  // namespace symbiosis::core
