// symbiotic_scheduler.hpp — the public two-phase pipeline (§4, Fig 9).
//
// Phase 1 ("gathering footprint"): run the mix on the signature-equipped
// machine; every allocator period the user-level monitor reads the
// per-task signatures, computes an allocation, applies it via affinity
// bits, and casts a vote. The majority allocation wins.
//
// Phase 2 ("real machine execution"): run the mix — natively or inside
// VMs on the hypervisor — pinned to a given allocation, to completion,
// and report per-benchmark user times.
//
// This header is the library's primary entry point; see examples/ for
// usage and core/experiment.hpp for the all-mappings measurement harness.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "machine/machine.hpp"
#include "sched/allocation.hpp"
#include "vm/hypervisor.hpp"
#include "workload/benchmark_model.hpp"

namespace symbiosis::core {

/// End-to-end pipeline configuration.
struct PipelineConfig {
  machine::MachineConfig machine = machine::core2duo_config();
  workload::ScaleConfig scale{};  ///< keep scale.l2_bytes == machine L2 size
  std::string allocator = "weighted-graph";
  /// Allocator invocation period in cycles (the paper's "every 100 ms").
  /// With the 3M-cycle quantum each task accumulates ~3-4 signature samples
  /// per window on a loaded dual-core — enough for the window means to
  /// cover both timeshared and concurrent pairings.
  std::uint64_t allocator_period_cycles = 20'000'000;
  /// Phase-1 simulated-cycle budget (also ends early once every benchmark
  /// completed one run, mirroring the paper's bounded emulation window).
  std::uint64_t emulation_cycles = 140'000'000;
  /// Safety cap for phase-2 measurement runs (0 = uncapped).
  std::uint64_t measure_max_cycles = 0;
  /// Phase 2 runs inside VMs on the hypervisor when set (§5.1.2).
  bool virtualized = false;
  vm::VmConfig vm{};
  std::uint64_t seed = 42;

  /// Derive scale.l2_bytes from the machine's L2 (call after edits).
  void sync_scale() noexcept { scale.l2_bytes = machine.hierarchy.l2.size_bytes; }
};

/// Counters of one cache level over one measurement run (schema v2).
struct NamedLevelStats {
  std::string level;  ///< "l1", "l2" or "l3"
  cachesim::LevelStats stats;

  [[nodiscard]] bool operator==(const NamedLevelStats&) const = default;
};

/// One phase-2 measurement of one mapping.
struct MappingRun {
  sched::Allocation allocation;
  std::vector<std::string> names;        ///< per measured entity (task/VM/process)
  std::vector<std::uint64_t> user_cycles;  ///< first-completion user time
  std::uint64_t wall_cycles = 0;         ///< simulated time until all completed
  bool completed = false;
  /// Per-level cache counters ("l1", "l2", then "l3" when present) — only
  /// populated on non-degenerate topologies, where the run report is
  /// stamped schema v2; degenerate machines keep the v1 document
  /// byte-identical.
  std::vector<NamedLevelStats> levels;

  /// Field-wise equality (the determinism suite compares whole runs).
  [[nodiscard]] bool operator==(const MappingRun&) const = default;
};

/// The two-phase symbiotic scheduling pipeline.
class SymbioticScheduler {
 public:
  explicit SymbioticScheduler(PipelineConfig config);

  /// Phase 1 for a single-threaded mix (names from spec2006_pool()).
  /// Returns the majority allocation of tasks onto cores.
  [[nodiscard]] sched::Allocation choose_allocation(const std::vector<std::string>& mix);

  /// Phase 1 for a multi-threaded (PARSEC) mix; the allocation is over ALL
  /// threads, in process-major order, computed by the §3.3.4 two-phase
  /// algorithm regardless of config.allocator.
  [[nodiscard]] sched::Allocation choose_allocation_mt(const std::vector<std::string>& mix);

  /// Vote table of the last choose_allocation* call: canonical key → votes.
  [[nodiscard]] const std::map<std::string, int>& vote_table() const noexcept { return votes_; }

  [[nodiscard]] const PipelineConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] sched::Allocation run_phase1(machine::Machine& m, const std::string& allocator);

  PipelineConfig config_;
  std::map<std::string, int> votes_;
  std::map<std::string, sched::Allocation> vote_allocations_;
};

/// Phase 2, native: run @p mix pinned per @p allocation to completion.
[[nodiscard]] MappingRun measure_mapping(const PipelineConfig& config,
                                         const std::vector<std::string>& mix,
                                         const sched::Allocation& allocation);

/// Phase 2, virtualized: each benchmark in its own VM, vcpus pinned per
/// @p allocation.
[[nodiscard]] MappingRun measure_mapping_vm(const PipelineConfig& config,
                                            const std::vector<std::string>& mix,
                                            const sched::Allocation& allocation);

/// Phase 2, multi-threaded: @p allocation is over threads (process-major);
/// user_cycles aggregates to the per-PROCESS user time the paper reports.
[[nodiscard]] MappingRun measure_mapping_mt(const PipelineConfig& config,
                                            const std::vector<std::string>& mix,
                                            const sched::Allocation& allocation);

/// Build the machine + workloads for a single-threaded mix (shared by the
/// pipeline and the Fig 2/3 benches). Task i runs mix[i].
[[nodiscard]] std::vector<machine::TaskId> add_mix_tasks(machine::Machine& m,
                                                         const std::vector<std::string>& mix,
                                                         const workload::ScaleConfig& scale,
                                                         std::uint64_t seed);

}  // namespace symbiosis::core
