// simd.hpp — runtime CPU-feature detection and SIMD backend selection.
//
// The signature kernels (sig/kernels.hpp) ship one implementation per
// instruction set; one is picked at process start from what the CPU
// supports, overridable with SYMBIOSIS_SIMD=scalar|avx2|neon for
// differential testing and the CI backend matrix. The environment read
// lives HERE because util is the sanctioned nondeterministic boundary
// (symdet bans getenv in the deterministic modules) — and the knob never
// changes results, only speed: every backend computes bit-identical
// integer answers, which the differential suite pins down.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

namespace symbiosis::util {

/// Instruction-set families the kernel layer has implementations for.
enum class SimdBackend { Scalar, Avx2, Neon };

/// Lower-case name as used by SYMBIOSIS_SIMD and bench labels.
[[nodiscard]] std::string_view simd_backend_name(SimdBackend backend) noexcept;

/// Parse a SYMBIOSIS_SIMD value ("scalar" | "avx2" | "neon"); nullopt for
/// anything else (the caller warns and falls back to auto-detection).
[[nodiscard]] std::optional<SimdBackend> parse_simd_backend(std::string_view text) noexcept;

/// Backends compiled into this binary AND supported by this CPU, best
/// first. Scalar is always present and always last.
[[nodiscard]] const std::vector<SimdBackend>& available_simd_backends();

/// The backend all kernel dispatch goes through: the SYMBIOSIS_SIMD
/// override when set and available (unknown or unsupported values log a
/// warning and fall back to auto-detection), else the best available.
/// Decided once on first call and fixed for the process lifetime.
[[nodiscard]] SimdBackend active_simd_backend();

}  // namespace symbiosis::util
