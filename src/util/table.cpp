#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace symbiosis::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void TextTable::add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::pct(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, ratio * 100.0);
  return buf;
}

std::string TextTable::str() const {
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  if (cols == 0) return {};

  std::vector<std::size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << cell << std::string(widths[c] - cell.size(), ' ');
      if (c + 1 < cols) os << "  ";
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < cols; ++c) total += widths[c] + (c + 1 < cols ? 2 : 0);
    os << std::string(total, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void TextTable::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace symbiosis::util
