#include "util/simd.hpp"

#include <cstdlib>
#include <string>

#include "util/log.hpp"

namespace symbiosis::util {

std::string_view simd_backend_name(SimdBackend backend) noexcept {
  switch (backend) {
    case SimdBackend::Avx2:
      return "avx2";
    case SimdBackend::Neon:
      return "neon";
    case SimdBackend::Scalar:
      break;
  }
  return "scalar";
}

std::optional<SimdBackend> parse_simd_backend(std::string_view text) noexcept {
  if (text == "scalar") return SimdBackend::Scalar;
  if (text == "avx2") return SimdBackend::Avx2;
  if (text == "neon") return SimdBackend::Neon;
  return std::nullopt;
}

namespace {

std::vector<SimdBackend> detect_backends() {
  std::vector<SimdBackend> backends;
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx2")) backends.push_back(SimdBackend::Avx2);
#endif
#if defined(__aarch64__)
  backends.push_back(SimdBackend::Neon);  // baseline on AArch64
#endif
  backends.push_back(SimdBackend::Scalar);
  return backends;
}

SimdBackend choose_backend() {
  const std::vector<SimdBackend>& available = available_simd_backends();
  const char* env = std::getenv("SYMBIOSIS_SIMD");
  if (env != nullptr && *env != '\0') {
    const std::optional<SimdBackend> requested = parse_simd_backend(env);
    if (!requested) {
      SYMBIOSIS_LOG_WARN("SYMBIOSIS_SIMD=%s not recognised (scalar|avx2|neon); auto-detecting",
                         env);
    } else {
      for (const SimdBackend backend : available) {
        if (backend == *requested) return backend;
      }
      SYMBIOSIS_LOG_WARN("SYMBIOSIS_SIMD=%s unavailable on this CPU/build; using %s", env,
                         std::string(simd_backend_name(available.front())).c_str());
    }
  }
  return available.front();
}

}  // namespace

const std::vector<SimdBackend>& available_simd_backends() {
  static const std::vector<SimdBackend> kBackends = detect_backends();
  return kBackends;
}

SimdBackend active_simd_backend() {
  static const SimdBackend kActive = choose_backend();
  return kActive;
}

}  // namespace symbiosis::util
