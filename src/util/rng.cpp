#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace symbiosis::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  has_cached_normal_ = false;
}

Rng Rng::split(std::uint64_t stream_id) const noexcept {
  // Mix the full state with the stream id through SplitMix64 so children of
  // different ids (and of different parents) diverge immediately.
  std::uint64_t acc = stream_id ^ 0xa02bdbf7bb3c0a7ull;
  for (const auto word : s_) {
    std::uint64_t t = acc ^ word;
    acc = splitmix64(t);
  }
  return Rng{acc};
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  SYM_DCHECK(bound > 0, "util.rng") << "next_below(0) is undefined";
  // Lemire's nearly-divisionless bounded sampling with rejection.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) noexcept {
  SYM_DCHECK_LE(lo, hi, "util.rng");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) noexcept { return next_double() < p; }

double Rng::next_normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::next_exponential(double lambda) noexcept {
  SYM_DCHECK(lambda > 0.0, "util.rng") << "rate must be positive";
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return -std::log(u) / lambda;
}

ZipfSampler::ZipfSampler(std::size_t n, double skew) {
  SYM_CHECK(n > 0, "util.rng") << "ZipfSampler over an empty universe";
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.next_double();
  // Binary search the first cdf entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace symbiosis::util
