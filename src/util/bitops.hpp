// bitops.hpp — small bit-manipulation helpers shared across the library.
//
// The signature hardware (src/sig) is essentially a pile of bit-vectors, so
// popcount / power-of-two / bit-reversal helpers live here in one place.
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

namespace symbiosis::util {

/// Number of set bits in a 64-bit word.
[[nodiscard]] constexpr int popcount64(std::uint64_t x) noexcept {
  return std::popcount(x);
}

/// True when @p x is a power of two (and non-zero).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)) for x > 0.
[[nodiscard]] constexpr unsigned floor_log2(std::uint64_t x) noexcept {
  return 63u - static_cast<unsigned>(std::countl_zero(x | 1ull));
}

/// Smallest power of two >= x (x must be <= 2^63).
[[nodiscard]] constexpr std::uint64_t round_up_pow2(std::uint64_t x) noexcept {
  if (x <= 1) return 1;
  return std::uint64_t{1} << (64u - static_cast<unsigned>(std::countl_zero(x - 1)));
}

/// Reverse the low @p width bits of @p x (the rest are discarded).
/// Used by the "XOR inverse reverse" Bloom-filter hash of the paper (§5.3).
[[nodiscard]] constexpr std::uint64_t reverse_bits(std::uint64_t x, unsigned width) noexcept {
  std::uint64_t r = 0;
  for (unsigned i = 0; i < width; ++i) {
    r = (r << 1) | ((x >> i) & 1u);
  }
  return r;
}

/// Extract bits [lo, lo+width) of @p x as an unsigned value.
[[nodiscard]] constexpr std::uint64_t bits(std::uint64_t x, unsigned lo, unsigned width) noexcept {
  if (width >= 64) return x >> lo;
  return (x >> lo) & ((std::uint64_t{1} << width) - 1);
}

/// Mask with the low @p width bits set.
[[nodiscard]] constexpr std::uint64_t low_mask(unsigned width) noexcept {
  return width >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
}

}  // namespace symbiosis::util
