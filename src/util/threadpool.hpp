// threadpool.hpp — fixed-size worker pool for embarrassingly parallel sweeps.
//
// The figure benches evaluate many independent (mix, mapping) simulations;
// ThreadPool::parallel_for distributes them across hardware threads. On a
// single-core host this degrades gracefully to serial execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace symbiosis::util {

/// Fixed worker pool; tasks are std::function<void()>. Destruction joins all
/// workers after draining the queue.
class ThreadPool {
 public:
  /// @param threads 0 means std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future resolves when it completes (or rethrows).
  /// Submitting to a pool whose destructor has begun is a hard error: the
  /// workers may already have drained and exited, so the task could silently
  /// never run and its future never resolve.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    {
      const MutexLock lock(mutex_);
      SYM_CHECK(!stopping_, "util.threadpool") << "submit() on a stopping ThreadPool";
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [begin, end) across the pool and wait for all.
  /// Exceptions from tasks are rethrown (the first one encountered).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Sharded variant: the range is cut into contiguous shards of up to
  /// @p grain indices and one pool task runs each shard serially, amortising
  /// queue/future overhead when per-index work is small. Indices within a
  /// shard run in ascending order; results must not depend on cross-index
  /// ordering (the determinism suite enforces this for sweeps). grain == 1
  /// is exactly parallel_for.
  void parallel_for_sharded(std::size_t begin, std::size_t end,
                            const std::function<void(std::size_t)>& fn, std::size_t grain);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;  // written only in the constructor
  Mutex mutex_;
  std::queue<std::function<void()>> queue_ SYM_GUARDED_BY(mutex_);
  // condition_variable_any, not condition_variable: waits take the annotated
  // MutexLock, which std::condition_variable's unique_lock<std::mutex>-only
  // interface cannot.
  std::condition_variable_any cv_;
  bool stopping_ SYM_GUARDED_BY(mutex_) = false;
};

}  // namespace symbiosis::util
