#include "util/threadpool.hpp"

#include <algorithm>

namespace symbiosis::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      // The predicate runs with mutex_ held (condition_variable_any wait
      // protocol), but the analysis cannot see that — assert it.
      cv_.wait(lock, [this] {
        mutex_.assert_held();
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_sharded(begin, end, fn, 1);
}

void ThreadPool::parallel_for_sharded(std::size_t begin, std::size_t end,
                                      const std::function<void(std::size_t)>& fn,
                                      std::size_t grain) {
  if (begin >= end) return;
  SYM_CHECK(grain > 0, "util.threadpool") << "parallel_for_sharded: zero grain";
  std::vector<std::future<void>> futures;
  futures.reserve((end - begin + grain - 1) / grain);
  for (std::size_t lo = begin; lo < end; lo += grain) {
    const std::size_t hi = std::min(end, lo + grain);
    futures.push_back(submit([&fn, lo, hi] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace symbiosis::util
