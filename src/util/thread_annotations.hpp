// thread_annotations.hpp — clang Thread Safety Analysis attribute macros.
//
// SYM_GUARDED_BY / SYM_REQUIRES / SYM_ACQUIRE / SYM_EXCLUDES and friends wrap
// clang's thread-safety attributes (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html)
// so that "which mutex protects this member" is machine-checked at compile
// time instead of living in comments. The macros expand to nothing on GCC and
// other compilers; the `thread-safety` CMake preset builds with clang and
// `-Wthread-safety -Wthread-safety-beta -Werror`, which is how CI enforces
// them (the `analyze` job).
//
// The annotated capability type these macros are designed around is
// util::Mutex (util/mutex.hpp) — libstdc++'s std::mutex carries no capability
// attribute, so the analysis cannot see through it. Annotate like so:
//
//   class Sharded {
//     util::Mutex mutex_;
//     std::vector<int> items_ SYM_GUARDED_BY(mutex_);
//     void rebalance() SYM_REQUIRES(mutex_);
//   };
//
// TSan (the `tsan` preset) remains the dynamic complement: the analysis here
// is compile-time, schedule-independent, and catches gaps TSan only finds
// when a test happens to race.
#pragma once

#if defined(__clang__) && !defined(SYMBIOSIS_NO_THREAD_ANNOTATIONS)
#define SYM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SYM_THREAD_ANNOTATION_(x)  // no-op on GCC / MSVC
#endif

/// Marks a class as a lockable capability ("mutex" is the capability kind
/// shown in diagnostics).
#define SYM_CAPABILITY(x) SYM_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (util::MutexLock).
#define SYM_SCOPED_CAPABILITY SYM_THREAD_ANNOTATION_(scoped_lockable)

/// Data member may only be read/written while holding the given mutex.
#define SYM_GUARDED_BY(x) SYM_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member: the *pointee* is protected by the given mutex.
#define SYM_PT_GUARDED_BY(x) SYM_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the caller to already hold the mutex(es).
#define SYM_REQUIRES(...) SYM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define SYM_REQUIRES_SHARED(...) SYM_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the mutex(es) and holds them on return.
#define SYM_ACQUIRE(...) SYM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define SYM_ACQUIRE_SHARED(...) SYM_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the mutex(es) the caller holds.
#define SYM_RELEASE(...) SYM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define SYM_RELEASE_SHARED(...) SYM_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// Function acquires the mutex iff it returns the given value.
#define SYM_TRY_ACQUIRE(...) SYM_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called while holding the mutex(es) (deadlock guard
/// for self-locking public entry points).
#define SYM_EXCLUDES(...) SYM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime-asserted "the caller holds this" escape hatch for control flow the
/// analysis cannot follow (condition-variable predicates, callbacks).
#define SYM_ASSERT_CAPABILITY(x) SYM_THREAD_ANNOTATION_(assert_capability(x))

/// Function returns a reference to the mutex guarding its return value.
#define SYM_RETURN_CAPABILITY(x) SYM_THREAD_ANNOTATION_(lock_returned(x))

/// Last resort: disable the analysis for one function (document why at the
/// use site).
#define SYM_NO_THREAD_SAFETY_ANALYSIS SYM_THREAD_ANNOTATION_(no_thread_safety_analysis)
