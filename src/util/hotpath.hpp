// hotpath.hpp — hot-path purity annotations for the symhot analyze gate.
//
// SYM_HOT marks a function as a hot-path ROOT: scripts/analyze/hotpath.py
// proves, on the relwithdebinfo object files, that no call path starting at
// a root reaches an allocation, a lock, a throw, or I/O emission, and that
// every indirect call on such a path carries an explicit line-comment
// waiver of the form `symhot: indirect(reason)`. The macro works by placing the
// symbol in a dedicated ELF section (.text.symhot) so the analyzer can
// discover the annotated set straight from the objects — no source parsing
// of attribute spellings. Crucially the section attribute does NOT inhibit
// inlining: callers still inline the body, and the standalone copy emitted
// into the section is what gets analyzed, so the proof covers the code that
// actually runs. Every root must also be registered (by demangled-name
// regex) in scripts/analyze/hotpath_roots.toml; the gate checks the two
// directions like symdet's waiver registry.
//
// SYM_COLD marks a sanctioned cold SINK on an otherwise-hot path: a
// noinline out-of-line boundary (flight-recorder emission, error
// diagnosis) that the analyzer deliberately does not traverse into. Sinks
// live in .text.symhot_cold and must be registered as [[sink]] entries
// with a reason. Keep sink bodies trivial to reason about — everything
// behind one is exempt from the purity proof.
//
// To mark a new hot root:
//   1. put SYM_HOT in front of the function definition (the .cpp one for
//      out-of-line members);
//   2. add a [[root]] entry to scripts/analyze/hotpath_roots.toml whose
//      `symbol` regex matches the demangled name;
//   3. run scripts/analyze/hotpath.py and fix (or waive, with a reason)
//      what it finds.
#pragma once

#if defined(__ELF__) && (defined(__GNUC__) || defined(__clang__))
#define SYM_HOT __attribute__((hot, section(".text.symhot")))
#define SYM_COLD __attribute__((cold, noinline, section(".text.symhot_cold")))
#elif defined(__GNUC__) || defined(__clang__)
// Non-ELF GNU-style toolchains: no named-section discovery, but keep the
// inlining semantics identical so behaviour does not fork per platform.
#define SYM_HOT __attribute__((hot))
#define SYM_COLD __attribute__((cold, noinline))
#else
// Other toolchains: advisory only; the analyzer has no objects to read.
#define SYM_HOT
#define SYM_COLD
#endif
