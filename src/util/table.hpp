// table.hpp — aligned ASCII table rendering for bench/experiment output.
//
// Every paper table/figure bench prints its rows through this so the output
// is diffable and resembles the paper's presentation.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace symbiosis::util {

/// Column-aligned text table. Columns are sized to their widest cell.
class TextTable {
 public:
  TextTable() = default;
  explicit TextTable(std::vector<std::string> header);

  /// Replace the header row.
  void set_header(std::vector<std::string> header);

  /// Append a row of already-formatted cells.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with @p precision digits after the point.
  static std::string fmt(double v, int precision = 2);
  /// Convenience: format a ratio as a percentage string ("12.3%").
  static std::string pct(double ratio, int precision = 1);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Render with a separator line under the header.
  [[nodiscard]] std::string str() const;

  /// Render to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace symbiosis::util
