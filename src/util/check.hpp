// check.hpp — repo-wide invariant checking.
//
// SYM_CHECK and friends are the only sanctioned way to assert invariants in
// this codebase (scripts/lint.py rejects raw assert()). Unlike assert they
// carry streamed context, tick a per-category violation counter, and route
// through a configurable handler so the same check site can abort (default),
// throw (death/throw tests), or log-and-count (long soak runs).
//
//   SYM_CHECK(cond)                    always-on, category "check"
//   SYM_CHECK(cond, "sig.cbf")        always-on, named category
//   SYM_CHECK_EQ/LT/LE(a, b [, cat])  binary forms; print both operands
//   SYM_CHECK_BOUNDS(i, n [, cat])    i < n, category default "bounds"
//   SYM_DCHECK*(...)                   same family, compiled out in NDEBUG
//                                      builds unless SYMBIOSIS_DCHECK_ENABLED
//                                      is forced on (the sanitizer presets do)
//
// All forms accept streamed context after the macro:
//
//   SYM_CHECK_LT(way, ways_, "cachesim.bounds") << "set=" << set;
//
// Policy (see README "Correctness tooling"): construction-time and
// algorithm-postcondition invariants are SYM_CHECK (always on, cold paths);
// per-access hot-loop invariants are SYM_DCHECK so RelWithDebInfo keeps its
// benchmarked speed while Debug and sanitizer builds verify every access.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace symbiosis::util {

/// What a failed check does after recording the violation.
enum class CheckMode {
  Abort,        ///< print to stderr and std::abort() (default; death tests)
  Throw,        ///< throw CheckError (unit tests of guarded paths)
  LogAndCount,  ///< log at Error level and continue (soak runs)
};

/// Thrown by failed checks in CheckMode::Throw.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[nodiscard]] CheckMode check_mode() noexcept;
/// Swap the global handler mode; returns the previous mode. Thread-safe.
CheckMode set_check_mode(CheckMode mode) noexcept;

/// RAII mode switch for tests: restores the previous mode on scope exit.
class ScopedCheckMode {
 public:
  explicit ScopedCheckMode(CheckMode mode) : previous_(set_check_mode(mode)) {}
  ~ScopedCheckMode() { set_check_mode(previous_); }
  ScopedCheckMode(const ScopedCheckMode&) = delete;
  ScopedCheckMode& operator=(const ScopedCheckMode&) = delete;

 private:
  CheckMode previous_;
};

// --- violation-counter registry -------------------------------------------
// Every failed check increments its category's counter BEFORE the handler
// runs, so even aborting/throwing failures are visible to telemetry.

/// Violations recorded against @p category since the last reset.
[[nodiscard]] std::uint64_t check_violation_count(std::string_view category);
/// Total violations across all categories since the last reset.
[[nodiscard]] std::uint64_t check_violation_total() noexcept;
/// (category, count) pairs, sorted by category name.
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> check_violation_snapshot();
/// Zero all counters (tests / between soak phases).
void reset_check_violations();

namespace check_detail {

/// Builds the failure message; its destructor records the violation and
/// dispatches on the current CheckMode at the end of the full statement, so
/// streamed context (`<< "x=" << x`) lands in the message.
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* expr, const char* category);
  ~CheckFailure() noexcept(false);
  CheckFailure(const CheckFailure&) = delete;
  CheckFailure& operator=(const CheckFailure&) = delete;

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
  const char* file_;
  int line_;
  const char* expr_;
  const char* category_;
};

constexpr const char* category_or(const char* fallback) noexcept { return fallback; }
constexpr const char* category_or(const char* /*fallback*/, const char* category) noexcept {
  return category;
}

/// Streams a value if it has operator<<, else a placeholder — keeps the
/// binary macros usable on types without a printer.
template <typename T>
void stream_value(std::ostream& os, const T& value) {
  if constexpr (requires(std::ostream& o, const T& v) { o << v; }) {
    os << value;
  } else {
    os << "<unprintable>";
  }
}

/// Evaluates a binary check once per operand; on failure returns the
/// "(lhs vs rhs)" rendering, on success an empty string (falsy via .empty()).
template <typename A, typename B, typename Pred>
[[nodiscard]] std::string check_op(const A& a, const B& b, Pred pred) {
  if (pred(a, b)) [[likely]] {
    return {};
  }
  std::ostringstream os;
  os << "(";
  stream_value(os, a);
  os << " vs ";
  stream_value(os, b);
  os << ")";
  std::string rendered = os.str();
  if (rendered.empty()) rendered = "(?)";  // never collapse a failure to success
  return rendered;
}

}  // namespace check_detail
}  // namespace symbiosis::util

// The `switch (0) case 0: default:` wrapper makes these macros single,
// dangling-else-safe statements while still accepting a trailing stream.

#define SYM_CHECK_IMPL_(cond, category_expr)                                       \
  switch (0)                                                                       \
  case 0:                                                                          \
  default:                                                                         \
    if (cond) {                                                                    \
    } else /* NOLINT(readability-misleading-indentation) */                        \
      ::symbiosis::util::check_detail::CheckFailure(__FILE__, __LINE__, #cond,     \
                                                    (category_expr))

#define SYM_CHECK_OP_IMPL_(a, b, op, category_expr)                                \
  switch (0)                                                                       \
  case 0:                                                                          \
  default:                                                                         \
    if (const std::string sym_chk_vals_ = ::symbiosis::util::check_detail::        \
            check_op((a), (b),                                                     \
                     [](const auto& sym_chk_a_, const auto& sym_chk_b_) {          \
                       return sym_chk_a_ op sym_chk_b_;                            \
                     });                                                           \
        sym_chk_vals_.empty()) {                                                   \
    } else                                                                         \
      ::symbiosis::util::check_detail::CheckFailure(__FILE__, __LINE__,            \
                                                    #a " " #op " " #b,             \
                                                    (category_expr))               \
          << sym_chk_vals_ << " "

// Always-on checks. Optional trailing argument names the category.
#define SYM_CHECK(cond, ...) \
  SYM_CHECK_IMPL_(cond, ::symbiosis::util::check_detail::category_or("check" __VA_OPT__(,) __VA_ARGS__))
#define SYM_CHECK_EQ(a, b, ...) \
  SYM_CHECK_OP_IMPL_(a, b, ==, ::symbiosis::util::check_detail::category_or("check" __VA_OPT__(,) __VA_ARGS__))
#define SYM_CHECK_LT(a, b, ...) \
  SYM_CHECK_OP_IMPL_(a, b, <, ::symbiosis::util::check_detail::category_or("check" __VA_OPT__(,) __VA_ARGS__))
#define SYM_CHECK_LE(a, b, ...) \
  SYM_CHECK_OP_IMPL_(a, b, <=, ::symbiosis::util::check_detail::category_or("check" __VA_OPT__(,) __VA_ARGS__))
#define SYM_CHECK_BOUNDS(i, n, ...) \
  SYM_CHECK_OP_IMPL_(i, n, <, ::symbiosis::util::check_detail::category_or("bounds" __VA_OPT__(,) __VA_ARGS__))

// Debug checks: compiled in when NDEBUG is off, or forced by the build
// system (sanitizer presets pass -DSYMBIOSIS_DCHECK_ENABLED=1).
#ifndef SYMBIOSIS_DCHECK_ENABLED
#ifdef NDEBUG
#define SYMBIOSIS_DCHECK_ENABLED 0
#else
#define SYMBIOSIS_DCHECK_ENABLED 1
#endif
#endif

#if SYMBIOSIS_DCHECK_ENABLED
#define SYM_DCHECK(cond, ...) SYM_CHECK(cond __VA_OPT__(,) __VA_ARGS__)
#define SYM_DCHECK_EQ(a, b, ...) SYM_CHECK_EQ(a, b __VA_OPT__(,) __VA_ARGS__)
#define SYM_DCHECK_LT(a, b, ...) SYM_CHECK_LT(a, b __VA_OPT__(,) __VA_ARGS__)
#define SYM_DCHECK_LE(a, b, ...) SYM_CHECK_LE(a, b __VA_OPT__(,) __VA_ARGS__)
#define SYM_DCHECK_BOUNDS(i, n, ...) SYM_CHECK_BOUNDS(i, n __VA_OPT__(,) __VA_ARGS__)
#else
// Disabled: operands are odr-used but never evaluated, streams are dead code.
#define SYM_DCHECK(cond, ...) SYM_CHECK_IMPL_(true || (cond), "dcheck")
#define SYM_DCHECK_EQ(a, b, ...) SYM_CHECK_IMPL_(true || ((a) == (b)), "dcheck")
#define SYM_DCHECK_LT(a, b, ...) SYM_CHECK_IMPL_(true || ((a) < (b)), "dcheck")
#define SYM_DCHECK_LE(a, b, ...) SYM_CHECK_IMPL_(true || ((a) <= (b)), "dcheck")
#define SYM_DCHECK_BOUNDS(i, n, ...) SYM_CHECK_IMPL_(true || ((i) < (n)), "dcheck")
#endif
