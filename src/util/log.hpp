// log.hpp — tiny leveled logger.
//
// Experiments log progress at Info; inner simulator loops log nothing unless
// Debug/Trace is enabled, so logging never perturbs timing-sensitive benches.
#pragma once

#include <cstdio>
#include <string>

namespace symbiosis::util {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global minimum level; messages below it are dropped. Default: Info.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Parse "trace"/"debug"/"info"/"warn"/"error"/"off" (case-insensitive);
/// unknown -> Info.
[[nodiscard]] LogLevel parse_log_level(const std::string& name) noexcept;

/// Apply the SYMBIOSIS_LOG environment variable (e.g. SYMBIOSIS_LOG=debug)
/// to the global level. Unset/empty leaves the level untouched; unknown
/// values fall back to Info (parse_log_level's documented behaviour).
/// Returns the level in effect afterwards. Called by ArgParser::parse and
/// the bench/example mains, so any tool honours the variable.
LogLevel init_log_from_env() noexcept;

/// printf-style logging; appends a newline.
void log_message(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

/// Redirect log output to @p stream (nullptr restores stderr). For tests
/// that assert on level filtering. Thread-safe: the stream pointer and each
/// emitted line share one mutex, so a concurrent log_message either fully
/// precedes or fully follows the switch (and log lines never interleave).
void set_log_stream(std::FILE* stream) noexcept;

#define SYMBIOSIS_LOG_TRACE(...) ::symbiosis::util::log_message(::symbiosis::util::LogLevel::Trace, __VA_ARGS__)
#define SYMBIOSIS_LOG_DEBUG(...) ::symbiosis::util::log_message(::symbiosis::util::LogLevel::Debug, __VA_ARGS__)
#define SYMBIOSIS_LOG_INFO(...) ::symbiosis::util::log_message(::symbiosis::util::LogLevel::Info, __VA_ARGS__)
#define SYMBIOSIS_LOG_WARN(...) ::symbiosis::util::log_message(::symbiosis::util::LogLevel::Warn, __VA_ARGS__)
#define SYMBIOSIS_LOG_ERROR(...) ::symbiosis::util::log_message(::symbiosis::util::LogLevel::Error, __VA_ARGS__)

}  // namespace symbiosis::util
