// determinism.hpp — source annotations consumed by the symdet static
// analyzer (scripts/analyze/determinism.py, DESIGN.md §12).
//
// symdet flags traversals of unordered containers in the deterministic
// modules whenever the loop body writes to anything that escapes: iteration
// order is hash/salt/layout-dependent, so any order-sensitive accumulation
// (floating-point sums, first-wins maps, report lines) silently breaks
// bit-reproducibility. When the accumulation is genuinely commutative —
// integer sums, counts, min/max over totally ordered keys, set unions —
// annotate the traversal instead of rewriting it:
//
//   SYM_ORDER_INSENSITIVE("integer page count; + is commutative");
//   for (const auto page : task.touched_pages) total += cost_of(page);
//
// The macro must sit on the traversal statement or on the code line directly
// above it. It expands to a static_assert so the justification is forced to
// be a non-empty string literal and the annotation can never change codegen.
//
// For nondeterminism that cannot be expressed as an order-insensitive
// traversal, the escape hatch is the inline waiver comment
// `// symdet: nondet(<reason>)`, which must also be registered in
// scripts/analyze/determinism_waivers.toml.
#pragma once

#define SYM_ORDER_INSENSITIVE(reason) \
  static_assert(sizeof(reason "") > 1, \
                "SYM_ORDER_INSENSITIVE requires a non-empty string-literal reason")
