// stats.hpp — streaming statistics used by experiments and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace symbiosis::util {

/// Welford running mean/variance accumulator. O(1) space, numerically stable.
class RunningStat {
 public:
  void add(double x) noexcept;
  void merge(const RunningStat& other) noexcept;
  void reset() noexcept { *this = RunningStat{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples clamp to the
/// first/last bin. Used for footprint and latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  /// Approximate quantile (0 <= q <= 1) by linear scan of bins.
  [[nodiscard]] double quantile(double q) const noexcept;
  /// Lower edge of bin @p i.
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  /// Render as a compact ASCII bar chart (one line per bin).
  [[nodiscard]] std::string ascii(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Pearson correlation coefficient of two equally sized series.
/// Returns 0 when either series has zero variance.
[[nodiscard]] double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (Pearson over ranks, average ranks for ties).
[[nodiscard]] double spearman(std::span<const double> x, std::span<const double> y);

/// Arithmetic mean of a series (0 for empty).
[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;

/// Geometric mean of a positive series (0 for empty).
[[nodiscard]] double geomean_of(std::span<const double> xs) noexcept;

/// Exact quantile of a copied, sorted series (q in [0,1], linear interp).
[[nodiscard]] double quantile_of(std::span<const double> xs, double q);

}  // namespace symbiosis::util
