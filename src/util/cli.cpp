#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/log.hpp"

namespace symbiosis::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

std::string& ArgParser::add_string(std::string name, std::string help, std::string default_value) {
  auto opt = std::make_unique<Option>();
  opt->name = std::move(name);
  opt->help = std::move(help);
  opt->kind = Kind::String;
  opt->default_text = default_value;
  opt->s = std::make_unique<std::string>(std::move(default_value));
  auto& ref = *opt->s;
  options_.push_back(std::move(opt));
  return ref;
}

std::int64_t& ArgParser::add_i64(std::string name, std::string help, std::int64_t default_value) {
  auto opt = std::make_unique<Option>();
  opt->name = std::move(name);
  opt->help = std::move(help);
  opt->kind = Kind::I64;
  opt->default_text = std::to_string(default_value);
  opt->i = std::make_unique<std::int64_t>(default_value);
  auto& ref = *opt->i;
  options_.push_back(std::move(opt));
  return ref;
}

std::uint64_t& ArgParser::add_u64(std::string name, std::string help, std::uint64_t default_value) {
  auto opt = std::make_unique<Option>();
  opt->name = std::move(name);
  opt->help = std::move(help);
  opt->kind = Kind::U64;
  opt->default_text = std::to_string(default_value);
  opt->u = std::make_unique<std::uint64_t>(default_value);
  auto& ref = *opt->u;
  options_.push_back(std::move(opt));
  return ref;
}

double& ArgParser::add_double(std::string name, std::string help, double default_value) {
  auto opt = std::make_unique<Option>();
  opt->name = std::move(name);
  opt->help = std::move(help);
  opt->kind = Kind::Double;
  opt->default_text = std::to_string(default_value);
  opt->d = std::make_unique<double>(default_value);
  auto& ref = *opt->d;
  options_.push_back(std::move(opt));
  return ref;
}

bool& ArgParser::add_flag(std::string name, std::string help) {
  auto opt = std::make_unique<Option>();
  opt->name = std::move(name);
  opt->help = std::move(help);
  opt->kind = Kind::Flag;
  opt->default_text = "false";
  opt->b = std::make_unique<bool>(false);
  auto& ref = *opt->b;
  options_.push_back(std::move(opt));
  return ref;
}

ArgParser::Option* ArgParser::find(const std::string& name) {
  for (auto& opt : options_) {
    if (opt->name == name) return opt.get();
  }
  return nullptr;
}

bool ArgParser::assign(Option& opt, const std::string& value) {
  errno = 0;
  char* end = nullptr;
  switch (opt.kind) {
    case Kind::String:
      *opt.s = value;
      return true;
    case Kind::I64:
      *opt.i = std::strtoll(value.c_str(), &end, 0);
      break;
    case Kind::U64:
      *opt.u = std::strtoull(value.c_str(), &end, 0);
      break;
    case Kind::Double:
      *opt.d = std::strtod(value.c_str(), &end);
      break;
    case Kind::Flag:
      *opt.b = (value == "true" || value == "1" || value == "yes");
      return true;
  }
  if (end == value.c_str() || (end && *end != '\0') || errno == ERANGE) {
    std::fprintf(stderr, "%s: bad value '%s' for --%s\n", program_.c_str(), value.c_str(),
                 opt.name.c_str());
    return false;
  }
  return true;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  // Every CLI honours SYMBIOSIS_LOG=trace|debug|info|warn|error|off.
  init_log_from_env();
  for (int idx = 1; idx < argc; ++idx) {
    std::string arg = argv[idx];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    Option* opt = find(arg);
    if (!opt) {
      std::fprintf(stderr, "%s: unknown option --%s\n\n%s", program_.c_str(), arg.c_str(),
                   usage().c_str());
      return false;
    }
    if (opt->kind == Kind::Flag && !has_value) {
      *opt->b = true;
      continue;
    }
    if (!has_value) {
      if (idx + 1 >= argc) {
        std::fprintf(stderr, "%s: --%s expects a value\n", program_.c_str(), arg.c_str());
        return false;
      }
      value = argv[++idx];
    }
    if (!assign(*opt, value)) return false;
  }
  return true;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& opt : options_) {
    os << "  --" << opt->name;
    if (opt->kind != Kind::Flag) os << " <value>";
    os << "\n      " << opt->help << " (default: " << opt->default_text << ")\n";
  }
  os << "  --help\n      Show this message\n";
  return os.str();
}

}  // namespace symbiosis::util
