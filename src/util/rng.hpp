// rng.hpp — deterministic pseudo-random number generation.
//
// All stochastic behaviour in the simulator (workload address streams, random
// replacement, randomised rounding in the MIN-CUT solver, mix sampling) flows
// through this generator so that every experiment is reproducible from a
// single seed. The engine is xoshiro256** seeded via SplitMix64; it is far
// faster than std::mt19937_64 and has no measurable bias for our use.
#pragma once

#include <cstdint>
#include <vector>

namespace symbiosis::util {

/// SplitMix64 step; used for seeding and for cheap stateless mixing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedc0ffee15600dull) noexcept { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed (SplitMix64 expansion).
  void reseed(std::uint64_t seed) noexcept;

  /// Derive an independent child generator; stream @p stream_id selects the
  /// substream. Children of distinct ids are statistically independent.
  [[nodiscard]] Rng split(std::uint64_t stream_id) const noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t next_range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Bernoulli trial with success probability @p p.
  [[nodiscard]] bool next_bool(double p) noexcept;

  /// Standard normal variate (Box–Muller, cached second value).
  [[nodiscard]] double next_normal() noexcept;

  /// Exponential variate with rate @p lambda.
  [[nodiscard]] double next_exponential(double lambda) noexcept;

  /// Fisher–Yates shuffle of a vector in place.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Precomputed Zipf(s, n) sampler over {0, …, n-1}. Values near 0 are the
/// hottest. Used by workload models with skewed reuse (e.g. omnetpp, gcc).
class ZipfSampler {
 public:
  /// @param n     support size (> 0)
  /// @param skew  Zipf exponent s (0 = uniform; 1 ≈ classic Zipf)
  ZipfSampler(std::size_t n, double skew);

  /// Draw one index in [0, n).
  [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;

  [[nodiscard]] std::size_t support() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative distribution, cdf_.back() == 1.0
};

}  // namespace symbiosis::util
