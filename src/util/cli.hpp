// cli.hpp — small declarative command-line parser for examples and benches.
//
// Usage:
//   ArgParser args("quickstart", "Run the symbiotic scheduling quickstart");
//   auto& seed  = args.add_u64("seed", "RNG seed", 42);
//   auto& algo  = args.add_string("algo", "weight|graph|weighted", "weighted");
//   auto& quiet = args.add_flag("quiet", "suppress progress logging");
//   if (!args.parse(argc, argv)) return 1;   // prints help / error itself
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace symbiosis::util {

/// Declarative --key=value / --key value / --flag parser.
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Register options; the returned reference stays valid for the parser's
  /// lifetime and holds the parsed (or default) value after parse().
  std::string& add_string(std::string name, std::string help, std::string default_value);
  std::int64_t& add_i64(std::string name, std::string help, std::int64_t default_value);
  std::uint64_t& add_u64(std::string name, std::string help, std::uint64_t default_value);
  double& add_double(std::string name, std::string help, double default_value);
  bool& add_flag(std::string name, std::string help);

  /// Parse argv. On "--help" prints usage and returns false; on a malformed
  /// or unknown argument prints an error plus usage and returns false.
  [[nodiscard]] bool parse(int argc, const char* const* argv);

  /// Positional arguments left over after option parsing.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept { return positional_; }

  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { String, I64, U64, Double, Flag };
  struct Option {
    std::string name;
    std::string help;
    Kind kind;
    std::string default_text;
    // Owned storage; one of these is active depending on kind.
    std::unique_ptr<std::string> s;
    std::unique_ptr<std::int64_t> i;
    std::unique_ptr<std::uint64_t> u;
    std::unique_ptr<double> d;
    std::unique_ptr<bool> b;
  };

  Option* find(const std::string& name);
  [[nodiscard]] bool assign(Option& opt, const std::string& value);

  std::string program_;
  std::string description_;
  std::vector<std::unique_ptr<Option>> options_;
  std::vector<std::string> positional_;
};

}  // namespace symbiosis::util
