// mutex.hpp — annotated mutex capability for clang Thread Safety Analysis.
//
// libstdc++'s std::mutex / std::scoped_lock carry no thread-safety
// attributes, so `-Wthread-safety` cannot track them. util::Mutex wraps
// std::mutex as a SYM_CAPABILITY and util::MutexLock replaces
// std::scoped_lock as the SYM_SCOPED_CAPABILITY guard; together they let
// SYM_GUARDED_BY members be machine-checked (see util/thread_annotations.hpp
// and DESIGN.md §11). Zero runtime cost over the std types they wrap.
//
// Repo rule (scripts/lint.py `raw-mutex`): every mutex member in src/ must
// guard at least one SYM_GUARDED_BY field, or carry an explicit
// `// symlint: unguarded` waiver.
#pragma once

#include <mutex>

#include "util/thread_annotations.hpp"

namespace symbiosis::util {

/// std::mutex as a clang TSA capability. Same semantics, same cost.
class SYM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SYM_ACQUIRE() { m_.lock(); }
  void unlock() SYM_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() SYM_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// Annotation-only assertion that the calling thread holds this mutex.
  /// Needed inside condition-variable wait predicates: the predicate runs
  /// under the wait lock, but the analysis cannot see through
  /// std::condition_variable_any::wait to know that.
  void assert_held() const SYM_ASSERT_CAPABILITY(this) {}

 private:
  std::mutex m_;  // symlint: unguarded — this IS the annotated capability
};

/// RAII lock for util::Mutex (drop-in for std::scoped_lock on one mutex).
/// Also BasicLockable, so std::condition_variable_any can release and
/// reacquire the mutex during a wait:
///
///   MutexLock lock(mutex_);
///   cv_.wait(lock, [this] { mutex_.assert_held(); return ready_; });
///
/// lock()/unlock() exist for that protocol only; every manual unlock() must
/// be balanced by a lock() before scope exit (the destructor unlocks).
class SYM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SYM_ACQUIRE(mutex) : mutex_(mutex) { mutex_.lock(); }
  ~MutexLock() SYM_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() SYM_ACQUIRE() { mutex_.lock(); }
  void unlock() SYM_RELEASE() { mutex_.unlock(); }

 private:
  Mutex& mutex_;
};

}  // namespace symbiosis::util
