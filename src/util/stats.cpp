#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.hpp"

namespace symbiosis::util {

void RunningStat::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  SYM_CHECK(hi > lo, "util.stats") << "Histogram range is empty";
  SYM_CHECK(bins > 0, "util.stats") << "Histogram needs at least one bin";
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) return bin_lo(i);
  }
  return hi_;
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  std::ostringstream os;
  const std::size_t peak = counts_.empty() ? 0 : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar = peak ? counts_[i] * width / peak : 0;
    os << "[" << bin_lo(i) << ", " << bin_lo(i + 1 == counts_.size() ? i : i + 1) << ") ";
    os << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

double pearson(std::span<const double> x, std::span<const double> y) {
  SYM_CHECK_EQ(x.size(), y.size(), "util.stats") << "pearson needs paired samples";
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = mean_of(x);
  const double my = mean_of(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
std::vector<double> ranks_of(std::span<const double> xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}
}  // namespace

double spearman(std::span<const double> x, std::span<const double> y) {
  SYM_CHECK_EQ(x.size(), y.size(), "util.stats") << "spearman needs paired samples";
  if (x.size() < 2) return 0.0;
  const auto rx = ranks_of(x);
  const auto ry = ranks_of(y);
  return pearson(rx, ry);
}

double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double geomean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double x : xs) {
    if (x <= 0.0) return 0.0;
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double quantile_of(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace symbiosis::util
