#include "util/check.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "util/log.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace symbiosis::util {

namespace {

std::atomic<CheckMode> g_check_mode{CheckMode::Abort};

/// Category counters behind a mutex (violations are exceptional, so the lock
/// is uncontended in healthy runs); the total is a lock-free atomic so
/// check_violation_total() stays noexcept.
struct Registry {
  Mutex mutex;
  std::map<std::string, std::uint64_t, std::less<>> counts SYM_GUARDED_BY(mutex);
  std::atomic<std::uint64_t> total{0};
};

Registry& registry() {
  static Registry instance;
  return instance;
}

void record_violation(const char* category) {
  Registry& reg = registry();
  {
    const MutexLock lock(reg.mutex);
    auto it = reg.counts.find(std::string_view{category});
    if (it == reg.counts.end()) {
      reg.counts.emplace(category, 1);
    } else {
      ++it->second;
    }
  }
  reg.total.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

CheckMode check_mode() noexcept { return g_check_mode.load(std::memory_order_relaxed); }

CheckMode set_check_mode(CheckMode mode) noexcept {
  return g_check_mode.exchange(mode, std::memory_order_relaxed);
}

std::uint64_t check_violation_count(std::string_view category) {
  Registry& reg = registry();
  const MutexLock lock(reg.mutex);
  const auto it = reg.counts.find(category);
  return it == reg.counts.end() ? 0 : it->second;
}

std::uint64_t check_violation_total() noexcept {
  return registry().total.load(std::memory_order_relaxed);
}

std::vector<std::pair<std::string, std::uint64_t>> check_violation_snapshot() {
  Registry& reg = registry();
  const MutexLock lock(reg.mutex);
  return {reg.counts.begin(), reg.counts.end()};
}

void reset_check_violations() {
  Registry& reg = registry();
  const MutexLock lock(reg.mutex);
  reg.counts.clear();
  reg.total.store(0, std::memory_order_relaxed);
}

namespace check_detail {

CheckFailure::CheckFailure(const char* file, int line, const char* expr, const char* category)
    : file_(file), line_(line), expr_(expr), category_(category) {}

CheckFailure::~CheckFailure() noexcept(false) {
  std::string message = "SYM_CHECK failed: ";
  message += expr_;
  const std::string context = stream_.str();
  if (!context.empty()) {
    message += " ";
    message += context;
  }
  message += " [";
  message += category_;
  message += "] at ";
  message += file_;
  message += ":";
  message += std::to_string(line_);

  record_violation(category_);

  switch (check_mode()) {
    case CheckMode::Abort:
      std::fprintf(stderr, "%s\n", message.c_str());
      std::fflush(stderr);
      std::abort();
    case CheckMode::Throw:
      throw CheckError(message);
    case CheckMode::LogAndCount:
      SYMBIOSIS_LOG_ERROR("%s", message.c_str());
      break;
  }
}

}  // namespace check_detail
}  // namespace symbiosis::util
