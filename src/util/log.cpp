#include "util/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdarg>
#include <cstdlib>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace symbiosis::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
// The stream pointer and the emitted bytes share one mutex: holding it for
// the whole prefix+body+newline sequence keeps concurrent log lines from
// interleaving mid-line (the level check stays lock-free, so disabled
// messages never touch the mutex).
Mutex g_stream_mutex;
std::FILE* g_stream SYM_GUARDED_BY(g_stream_mutex) = nullptr;  // nullptr = stderr

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

LogLevel parse_log_level(const std::string& name) noexcept {
  std::string lower = name;
  for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "trace") return LogLevel::Trace;
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off") return LogLevel::Off;
  return LogLevel::Info;
}

LogLevel init_log_from_env() noexcept {
  const char* value = std::getenv("SYMBIOSIS_LOG");
  if (value && *value) set_log_level(parse_log_level(value));
  return log_level();
}

void set_log_stream(std::FILE* stream) noexcept {
  const MutexLock lock(g_stream_mutex);
  g_stream = stream;
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  va_list args;
  va_start(args, fmt);
  {
    const MutexLock lock(g_stream_mutex);
    std::FILE* out = g_stream ? g_stream : stderr;
    std::fprintf(out, "[%s] ", level_name(level));
    std::vfprintf(out, fmt, args);
    std::fputc('\n', out);
  }
  va_end(args);
}

}  // namespace symbiosis::util
