#include "util/log.hpp"

#include <atomic>
#include <cstdarg>

namespace symbiosis::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(static_cast<int>(level)); }

LogLevel log_level() noexcept { return static_cast<LogLevel>(g_level.load()); }

LogLevel parse_log_level(const std::string& name) noexcept {
  if (name == "trace") return LogLevel::Trace;
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  return LogLevel::Info;
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "[%s] ", level_name(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace symbiosis::util
