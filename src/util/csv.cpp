#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

namespace symbiosis::util {

CsvWriter::CsvWriter(const std::string& path) : path_(path), out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quoting =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return cell;
  std::string out = "\"";
  for (const char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::row_numeric(const std::vector<double>& cells, int precision) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  char buf[64];
  for (const double v : cells) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    text.emplace_back(buf);
  }
  row(text);
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

}  // namespace symbiosis::util
