// csv.hpp — minimal CSV emission for experiment results.
//
// Benches optionally dump their raw series next to the printed table so the
// paper's figures can be re-plotted externally.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace symbiosis::util {

/// Streaming CSV writer with RFC-4180-style quoting.
class CsvWriter {
 public:
  /// Opens @p path for writing; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Write one row; cells containing commas/quotes/newlines are quoted.
  void row(const std::vector<std::string>& cells);

  /// Convenience for numeric rows.
  void row_numeric(const std::vector<double>& cells, int precision = 6);

  /// Flush and close early (also done by the destructor).
  void close();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  static std::string escape(const std::string& cell);
  std::string path_;
  std::ofstream out_;
};

}  // namespace symbiosis::util
