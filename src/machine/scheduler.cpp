#include "machine/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace symbiosis::machine {

Scheduler::Scheduler(std::size_t num_cores, std::uint64_t seed, double migration_prob,
                     std::size_t cores_per_cluster)
    : queues_(num_cores),
      migration_prob_(migration_prob),
      cores_per_cluster_(cores_per_cluster == 0 ? num_cores : cores_per_cluster),
      rng_(seed) {
  if (num_cores == 0) throw std::invalid_argument("Scheduler: num_cores must be > 0");
  if (num_cores % cores_per_cluster_ != 0) {
    throw std::invalid_argument("Scheduler: cluster size must divide the core count");
  }
}

void Scheduler::ensure_tracked(TaskId task) {
  if (task >= assignment_.size()) {
    assignment_.resize(task + 1, Task::kAnyCore);
    affinity_.resize(task + 1, Task::kAnyCore);
  }
}

std::size_t Scheduler::least_loaded_core() {
  std::size_t best = 0;
  std::size_t best_depth = queues_[0].size();
  std::size_t ties = 1;
  for (std::size_t c = 1; c < queues_.size(); ++c) {
    const std::size_t depth = queues_[c].size();
    if (depth < best_depth) {
      best = c;
      best_depth = depth;
      ties = 1;
    } else if (depth == best_depth) {
      // Reservoir-style random tie-break keeps migration unbiased.
      if (rng_.next_below(++ties) == 0) best = c;
    }
  }
  return best;
}

std::size_t Scheduler::least_loaded_core_near(std::size_t core) {
  const std::size_t base = (core / cores_per_cluster_) * cores_per_cluster_;
  std::size_t best = base;
  std::size_t best_depth = queues_[base].size();
  std::size_t ties = 1;
  for (std::size_t c = base + 1; c < base + cores_per_cluster_; ++c) {
    const std::size_t depth = queues_[c].size();
    if (depth < best_depth) {
      best = c;
      best_depth = depth;
      ties = 1;
    } else if (depth == best_depth) {
      if (rng_.next_below(++ties) == 0) best = c;
    }
  }
  return best;
}

void Scheduler::admit(TaskId task, std::size_t affinity) {
  ensure_tracked(task);
  affinity_[task] = affinity;
  std::size_t core = affinity;
  if (core == Task::kAnyCore) {
    core = next_default_core_;
    next_default_core_ = (next_default_core_ + 1) % queues_.size();
  }
  if (core >= queues_.size()) throw std::out_of_range("Scheduler::admit: bad core");
  assignment_[task] = core;
  queues_[core].push_back(task);
  SYM_DCHECK(affinity == Task::kAnyCore || assignment_[task] == affinity, "machine.affinity")
      << "pinned task admitted to a different core";
}

void Scheduler::set_affinity(TaskId task, std::size_t core) {
  ensure_tracked(task);
  if (core != Task::kAnyCore && core >= queues_.size()) {
    throw std::out_of_range("Scheduler::set_affinity: bad core");
  }
  affinity_[task] = core;
  if (core == Task::kAnyCore) return;  // unpinned: next yield migrates freely
  if (core == assignment_[task]) return;

  // If the task is sitting in a queue, migrate it now; if it is currently
  // running, yield() will route it to the new queue at the quantum boundary.
  auto& old_queue = queues_[assignment_[task]];
  const auto it = std::find(old_queue.begin(), old_queue.end(), task);
  assignment_[task] = core;
  if (it != old_queue.end()) {
    old_queue.erase(it);
    queues_[core].push_back(task);
  }
}

bool Scheduler::pick_next(std::size_t core, TaskId& out) {
  auto& queue = queues_.at(core);
  if (queue.empty()) return false;
  out = queue.front();
  queue.pop_front();
  SYM_DCHECK_LT(out, assignment_.size(), "machine.affinity");
  SYM_DCHECK_EQ(assignment_[out], core, "machine.affinity")
      << "task dequeued from a core it is not assigned to";
  SYM_DCHECK(affinity_[out] == Task::kAnyCore || affinity_[out] == core, "machine.affinity")
      << "pinned task surfaced on the wrong core's queue";
  return true;
}

void Scheduler::yield(std::size_t core, TaskId task) {
  ensure_tracked(task);
  std::size_t target = affinity_[task];
  if (target == Task::kAnyCore) {
    // OS load balancing: unpinned tasks occasionally drift to the emptiest
    // queue; otherwise they stay put (cache-affinity-style stickiness).
    // Clustered machines balance within the cluster only (see class doc);
    // the single-cluster case takes the exact pre-cluster code path.
    if (rng_.next_bool(migration_prob_)) {
      target = clustered() ? least_loaded_core_near(assignment_[task]) : least_loaded_core();
    } else {
      target = assignment_[task];
    }
    if (target != assignment_[task]) {
      static obs::Counter& migrations = obs::counter("machine.sched.migrations");
      migrations.add(1);
    }
  }
  (void)core;
  SYM_DCHECK_BOUNDS(target, queues_.size(), "machine.affinity")
      << "yield routed task " << task << " to a nonexistent core";
  assignment_[task] = target;
  queues_.at(target).push_back(task);
}

void Scheduler::remove(TaskId task) {
  if (task >= assignment_.size()) return;
  for (auto& queue : queues_) {
    const auto it = std::find(queue.begin(), queue.end(), task);
    if (it != queue.end()) {
      queue.erase(it);
      break;
    }
  }
}

std::size_t Scheduler::core_of(TaskId task) const {
  if (task >= assignment_.size()) return Task::kAnyCore;
  return assignment_[task];
}

bool Scheduler::empty() const noexcept {
  return std::all_of(queues_.begin(), queues_.end(),
                     [](const auto& queue) { return queue.empty(); });
}

}  // namespace symbiosis::machine
