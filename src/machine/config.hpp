// config.hpp — simulated machine configurations.
//
// Presets mirror the paper's three testbeds (§2.3, §4), scaled to keep a
// full run-to-completion simulation in the milliseconds-to-seconds range
// (see DESIGN.md §5): cache capacities are divided by 4, associativities
// and line sizes kept, and cycle-denominated OS parameters chosen so the
// quantum : allocator-period : benchmark-length ratios match the paper's
// (tens of context switches per allocator invocation, several allocator
// invocations per run).
#pragma once

#include <cstdint>

#include "cachesim/hierarchy.hpp"

namespace symbiosis::machine {

struct MachineConfig {
  cachesim::HierarchyConfig hierarchy{};
  /// OS timeslice in core cycles. Must dwarf a full L2 refill
  /// (lines × memory latency) or every quantum starts cold and schedule
  /// sensitivity vanishes — the real machine's 10–100 ms quanta are 10–100×
  /// the ~20 M-cycle refill of a 4 MB L2, and the presets keep that ratio.
  std::uint64_t quantum_cycles = 3'000'000;
  /// Per-dispatch quantum jitter as a fraction of quantum_cycles. Equal
  /// quanta on every core would phase-LOCK the cross-core pairings for a
  /// whole run (a task would face the same concurrent partner forever,
  /// decided by initial alignment); real timer/interrupt noise rotates
  /// pairings, and this jitter models that.
  double quantum_jitter = 0.2;
  /// Direct cost charged to the incoming task at each context switch.
  std::uint64_t context_switch_cycles = 2'000;
  /// Cost of a first-touch (minor) page fault, when page tracking is on.
  std::uint64_t page_fault_cycles = 3'000;
  /// Track first-touch pages per task (the Fig 2 page-fault counter).
  bool track_pages = false;
  /// Steps executed per core before re-evaluating the global interleave.
  std::uint32_t batch_steps = 64;
  /// Cache lines the context-switch path itself touches (hypervisor/Dom0
  /// pollution under virtualization; ~0 for a native OS). The lines come
  /// from a reserved address region no workload can alias.
  std::uint32_t switch_pollution_lines = 0;
  /// Probability that an UNPINNED task migrates to the least-loaded queue
  /// at a quantum boundary (Linux's balancer moves tasks occasionally, not
  /// every slice). Core populations must stay quasi-stable within one
  /// allocator window or the per-core symbiosis means lose their pairwise
  /// information — see scheduler.hpp.
  double migration_prob = 0.15;
  std::uint64_t seed = 1;
};

/// Intel Core 2 Duo-like: 2 cores, shared L2 (paper: 4MB/16-way; scaled
/// 16× to 256KB/16-way with the L1 scaled along) — the primary machine.
[[nodiscard]] inline MachineConfig core2duo_config() {
  MachineConfig m;
  m.hierarchy.num_cores = 2;
  m.hierarchy.l1 = {8 * 1024, 8, 64};
  m.hierarchy.l2 = {256 * 1024, 16, 64};
  m.hierarchy.shared_l2 = true;
  return m;
}

/// P4 Xeon SMP-like: 2 processors with PRIVATE L2s (paper: 2MB/8-way;
/// scaled to 128KB/8-way) — the Fig 3(a) contrast machine.
[[nodiscard]] inline MachineConfig p4smp_config() {
  MachineConfig m;
  m.hierarchy.num_cores = 2;
  m.hierarchy.l1 = {8 * 1024, 8, 64};
  m.hierarchy.l2 = {128 * 1024, 8, 64};
  m.hierarchy.shared_l2 = false;
  m.hierarchy.signature.enabled = false;  // no shared cache to monitor
  return m;
}

/// Quad-core sharing one L2 (the §3.1 illustration machine; used by the
/// hierarchical MIN-CUT tests and scaling studies).
[[nodiscard]] inline MachineConfig quadcore_config() {
  MachineConfig m;
  m.hierarchy.num_cores = 4;
  m.hierarchy.l1 = {8 * 1024, 8, 64};
  m.hierarchy.l2 = {512 * 1024, 16, 64};
  m.hierarchy.shared_l2 = true;
  return m;
}

/// 32-core clustered CMP: 4 clusters of 8 cores, each cluster sharing one
/// 512KB/16-way L2 (with its own signature unit), all clusters below one
/// 2MB/16-way SRRIP L3 — the ROADMAP's many-core scheduling substrate,
/// where allocation decides WHICH cluster a process contends in.
[[nodiscard]] inline MachineConfig clustered32_config() {
  MachineConfig m;
  m.hierarchy.num_cores = 32;
  m.hierarchy.l1 = {8 * 1024, 8, 64};
  m.hierarchy.l2 = {512 * 1024, 16, 64};
  m.hierarchy.shared_l2 = true;
  m.hierarchy.l2_clusters = 4;
  m.hierarchy.l3 = cachesim::CacheGeometry{2 * 1024 * 1024, 16, 64};
  return m;
}

/// 64-core clustered CMP: 8 clusters of 8, 4MB/32-way SRRIP L3 — the
/// topology-matrix stress configuration.
[[nodiscard]] inline MachineConfig manycore64_config() {
  MachineConfig m;
  m.hierarchy.num_cores = 64;
  m.hierarchy.l1 = {8 * 1024, 8, 64};
  m.hierarchy.l2 = {512 * 1024, 16, 64};
  m.hierarchy.shared_l2 = true;
  m.hierarchy.l2_clusters = 8;
  m.hierarchy.l3 = cachesim::CacheGeometry{4 * 1024 * 1024, 32, 64};
  return m;
}

}  // namespace symbiosis::machine
