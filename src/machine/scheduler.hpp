// scheduler.hpp — per-core run queues with affinity (distributed-queue OS).
//
// Mirrors what §5.3 assumes of Linux: the OS keeps one run queue per core
// and round-robins within it; our allocation layer only ever SETS AFFINITY
// BITS (it never replaces the scheduler), exactly like the paper's
// user-level monitoring process. Affinity changes migrate a task to the
// target core's queue at its next quantum boundary.
#pragma once

#include <deque>
#include <vector>

#include "machine/task.hpp"
#include "util/rng.hpp"

namespace symbiosis::machine {

/// Distributed run queues; the Machine drives one core at a time.
///
/// Unpinned (kAnyCore) tasks OCCASIONALLY migrate at quantum boundaries to
/// the least-loaded queue (random tie-break) — a stand-in for Linux's SMP
/// load balancer. This matters for phase 1 of the pipeline: signature
/// gathering must sample a process against varied co-runners across
/// allocator windows (the paper's emulation runs under default OS
/// scheduling while the allocator only VOTES, §4.1), yet core populations
/// must stay quasi-stable WITHIN a window — per-quantum reshuffling would
/// average the per-core symbiosis over all partners and reduce the
/// §3.3.2 interference graph to an uninformative additive form. Pinned
/// tasks always return to their affinity queue.
class Scheduler {
 public:
  /// @p cores_per_cluster groups cores into LLC-sharing clusters (the
  /// machine's L2 topology); 0 means one cluster spanning every core. On
  /// clustered machines the load balancer is CLUSTER-AFFINE: an unpinned
  /// task only drifts within its current cluster, like Linux's sched
  /// domains preferring intra-LLC balancing — a cross-cluster move would
  /// forfeit the task's whole shared-cache footprint. Cross-cluster
  /// placement stays the allocation layer's job (set_affinity). With one
  /// cluster this degenerates to the original global balancer, drawing the
  /// same RNG sequence.
  explicit Scheduler(std::size_t num_cores, std::uint64_t seed = 1,
                     double migration_prob = 0.15, std::size_t cores_per_cluster = 0);

  [[nodiscard]] std::size_t num_cores() const noexcept { return queues_.size(); }

  /// Admit a task. kAnyCore tasks are placed round-robin (the OS-default
  /// schedule the paper's Fig 14 calls the "default schedule").
  void admit(TaskId task, std::size_t affinity);

  /// Called by the allocation layer; takes effect at the task's next
  /// quantum boundary (the task keeps running its current slice).
  void set_affinity(TaskId task, std::size_t core);

  /// Pick the next task to run on @p core (round-robin pop); returns false
  /// when the core's queue is empty. The task becomes "running".
  [[nodiscard]] bool pick_next(std::size_t core, TaskId& out);

  /// Return the running task of @p core to the back of the right queue
  /// (honouring any pending affinity migration).
  void yield(std::size_t core, TaskId task);

  /// Remove a task entirely (not used for restarts — only for teardown).
  void remove(TaskId task);

  /// Tasks queued on (not running on) @p core.
  [[nodiscard]] std::size_t queue_depth(std::size_t core) const { return queues_.at(core).size(); }

  /// The queue a task will run on next (its effective core assignment).
  [[nodiscard]] std::size_t core_of(TaskId task) const;

  /// True when no queue holds any task (everything torn down).
  [[nodiscard]] bool empty() const noexcept;

 private:
  std::vector<std::deque<TaskId>> queues_;
  std::vector<std::size_t> assignment_;  // task -> current queue
  std::vector<std::size_t> affinity_;    // task -> pinned core or kAnyCore
  std::size_t next_default_core_ = 0;
  double migration_prob_;
  std::size_t cores_per_cluster_;
  util::Rng rng_;

  [[nodiscard]] bool clustered() const noexcept { return cores_per_cluster_ < queues_.size(); }
  void ensure_tracked(TaskId task);
  [[nodiscard]] std::size_t least_loaded_core();
  /// Least-loaded queue among the cores sharing @p core's cluster L2.
  [[nodiscard]] std::size_t least_loaded_core_near(std::size_t core);
};

}  // namespace symbiosis::machine
