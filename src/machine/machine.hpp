// machine.hpp — the event-interleaved multi-core machine simulation.
//
// This substrate plays the role of both of the paper's phases: with the
// allocation hook installed it is the Simics emulation machine gathering
// Bloom-filter signatures; run with pinned affinities it is the "real"
// Core 2 Duo measuring user runtimes. Cores advance one at a time — always
// the core with the smallest local clock — in small step batches, so
// accesses from different cores interleave in (simulated-)time order and
// genuinely contend for the shared L2.
//
// Context-switch protocol (§3.1):
//   switch OUT of task T on core c:
//     RBV  = CF[c] ∧ ¬LF[c]
//     T.signature.record({c, popcount(RBV), popcount(RBV ⊕ CF[k]) ∀k})
//   switch IN of task U on core c:
//     LF[c] = CF[c]; TLB flush; charge context_switch_cycles.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "cachesim/hierarchy.hpp"
#include "machine/config.hpp"
#include "machine/scheduler.hpp"
#include "machine/task.hpp"
#include "workload/trace_source.hpp"

namespace symbiosis::machine {

/// Machine-wide statistics.
struct MachineStats {
  std::uint64_t context_switches = 0;
  std::uint64_t steps = 0;
  std::uint64_t hook_invocations = 0;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  // --- workload setup ---

  /// Add a single-threaded task (gets its own fresh pid).
  TaskId add_task(std::unique_ptr<workload::TaskStream> stream,
                  std::size_t affinity = Task::kAnyCore);

  /// Add one thread of a multi-threaded process (@p pid groups threads).
  TaskId add_thread(std::unique_ptr<workload::TaskStream> stream, std::size_t pid,
                    std::size_t affinity = Task::kAnyCore);

  /// Admit a whole process described by @p source (synthetic generator or
  /// .symt trace): one task per source thread, all sharing a fresh pid.
  /// Returns the TaskIds in source-thread order.
  std::vector<TaskId> add_process(const workload::TraceSource& source,
                                  std::size_t affinity = Task::kAnyCore);

  [[nodiscard]] std::size_t task_count() const noexcept { return tasks_.size(); }
  [[nodiscard]] Task& task(TaskId id) { return *tasks_.at(id); }
  [[nodiscard]] const Task& task(TaskId id) const { return *tasks_.at(id); }

  /// Re-pin a task (takes effect at its next quantum boundary), exactly like
  /// the paper's user-level monitor calling sched_setaffinity.
  void set_affinity(TaskId id, std::size_t core);

  // --- execution ---

  /// Install a hook called every @p period_cycles of simulated time; this is
  /// where the resource-allocation algorithms run (paper: every 100 ms).
  void set_periodic_hook(std::uint64_t period_cycles, std::function<void(Machine&)> hook);

  /// Run until every task has completed at least one full run (the paper's
  /// "until the longest benchmark completes"), or until @p max_cycles of
  /// simulated time (0 = no cap). Returns true if all completed.
  bool run_to_all_complete(std::uint64_t max_cycles = 0);

  /// Run for (at least) @p cycles of simulated time.
  void run_for(std::uint64_t cycles);

  /// Advance the machine by up to @p batches scheduler batches (each batch
  /// is up to config.batch_steps accesses on the lowest-clock busy core) and
  /// publish metric deltas once at the end — the batched-replay entry point
  /// for drivers that interleave simulation with their own bookkeeping.
  /// Returns the number of batches actually executed (fewer when the
  /// machine drains). Driving the machine with run_batch() is bit-identical
  /// to run_for()/run_to_all_complete() over the same span.
  std::uint64_t run_batch(std::uint64_t batches);

  // --- inspection ---

  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }
  [[nodiscard]] cachesim::Hierarchy& hierarchy() noexcept { return hierarchy_; }
  [[nodiscard]] const cachesim::Hierarchy& hierarchy() const noexcept { return hierarchy_; }
  [[nodiscard]] Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] const MachineStats& stats() const noexcept { return stats_; }

  /// Current simulated time: the smallest clock among cores that have work
  /// (nothing system-wide has happened past this point yet).
  [[nodiscard]] std::uint64_t now() const noexcept;

  /// Task currently on @p core, or nullptr.
  [[nodiscard]] const Task* running_on(std::size_t core) const;

  /// Publish machine + hierarchy counter deltas into the global
  /// obs::MetricRegistry. Called automatically at hook firings and when a
  /// run_* entry point returns; safe to call manually at any quiescent point.
  void publish_metrics();

 private:
  static constexpr TaskId kNoTask = std::numeric_limits<TaskId>::max();

  /// Advance the chosen core by up to one batch; returns false if the whole
  /// machine is out of runnable work.
  bool advance_one();

  void switch_out(std::size_t core);
  bool switch_in(std::size_t core);
  void execute_batch(std::size_t core);
  void record_signature(std::size_t core, Task& task);
  void fire_due_hooks();

  MachineConfig config_;
  cachesim::Hierarchy hierarchy_;
  Scheduler scheduler_;
  /// Hoisted hierarchy_.has_l3() so the per-step counter path stays a
  /// register test.
  bool has_l3_ = false;
  std::vector<std::unique_ptr<Task>> tasks_;
  std::size_t next_pid_ = 0;

  /// Scratch for record_signature's batched per-cluster symbiosis pass
  /// (avoids an allocation per context switch).
  std::vector<std::size_t> symbiosis_scratch_;

  // per-core execution state
  std::vector<std::uint64_t> clock_;
  std::vector<TaskId> current_;
  std::vector<std::uint64_t> quantum_left_;

  std::uint64_t hook_period_ = 0;
  std::uint64_t next_hook_ = 0;
  std::function<void(Machine&)> hook_;
  util::Rng jitter_rng_;  // seeded from config.seed in the mem-init list

  MachineStats stats_;
  /// Totals as of the last publish_metrics() (delta baseline).
  MachineStats published_;
};

/// Address-space base for process @p pid: 1 TiB apart so distinct processes
/// can never alias (threads of one process share the pid and the base).
[[nodiscard]] constexpr cachesim::Addr address_space_base(std::size_t pid) noexcept {
  return static_cast<cachesim::Addr>(pid + 1) << 40;
}

}  // namespace symbiosis::machine
