// task.hpp — the schedulable entity (process or thread control block).
//
// §3.2: the OS keeps, per application, the (2+N)-entry signature structure
// plus scheduling state. A Task wraps one TaskStream (a single-threaded
// benchmark or one thread of a multi-threaded one), its affinity, its
// accumulated accounting, and its ProcessSignature.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_set>

#include "sig/signature.hpp"
#include "workload/benchmark_model.hpp"

namespace symbiosis::machine {

using TaskId = std::size_t;

/// Event-counter block (the §2.2 "performance counters" a conventional OS
/// would consult — kept per task so the Fig 2 experiment can compare them
/// against the Bloom-filter occupancy weight).
struct TaskCounters {
  std::uint64_t instructions = 0;
  std::uint64_t memory_refs = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_accesses = 0;
  std::uint64_t l2_misses = 0;
  /// L3 traffic; stays zero on topologies without an L3.
  std::uint64_t l3_accesses = 0;
  std::uint64_t l3_misses = 0;
  std::uint64_t tlb_misses = 0;
  std::uint64_t page_faults = 0;
  std::uint64_t context_switches = 0;

  [[nodiscard]] double l2_miss_rate() const noexcept {
    return l2_accesses ? static_cast<double>(l2_misses) / static_cast<double>(l2_accesses) : 0.0;
  }
  [[nodiscard]] double l3_miss_rate() const noexcept {
    return l3_accesses ? static_cast<double>(l3_misses) / static_cast<double>(l3_accesses) : 0.0;
  }
};

/// A schedulable task.
class Task {
 public:
  static constexpr std::size_t kAnyCore = std::numeric_limits<std::size_t>::max();

  Task(TaskId id, std::size_t pid, std::unique_ptr<workload::TaskStream> stream,
       std::size_t num_cores)
      : id_(id), pid_(pid), stream_(std::move(stream)), signature_(num_cores) {}

  [[nodiscard]] TaskId id() const noexcept { return id_; }
  /// Process id: threads of one process share a pid (multi-threaded
  /// allocation groups by it); single-threaded tasks have unique pids.
  [[nodiscard]] std::size_t pid() const noexcept { return pid_; }
  [[nodiscard]] const std::string& name() const noexcept { return stream_->name(); }

  [[nodiscard]] workload::TaskStream& stream() noexcept { return *stream_; }
  [[nodiscard]] const workload::TaskStream& stream() const noexcept { return *stream_; }

  /// Affinity: a specific core, or kAnyCore for OS-default placement.
  [[nodiscard]] std::size_t affinity() const noexcept { return affinity_; }
  void set_affinity(std::size_t core) noexcept { affinity_ = core; }

  [[nodiscard]] sig::ProcessSignature& signature() noexcept { return signature_; }
  [[nodiscard]] const sig::ProcessSignature& signature() const noexcept { return signature_; }

  [[nodiscard]] TaskCounters& counters() noexcept { return counters_; }
  [[nodiscard]] const TaskCounters& counters() const noexcept { return counters_; }

  // --- run accounting (maintained by the Machine) ---

  /// CPU cycles consumed in the CURRENT run (the Linux "user time" analogue).
  std::uint64_t run_user_cycles = 0;
  /// Cumulative CPU cycles across all runs.
  std::uint64_t total_user_cycles = 0;
  /// Completed runs (the paper restarts finished benchmarks).
  std::uint64_t completed_runs = 0;
  /// User cycles of the FIRST completed run — the paper's reported metric.
  std::uint64_t first_completion_user_cycles = 0;
  /// Simulated wall-clock time of the first completion.
  std::uint64_t first_completion_wall_cycles = 0;

  /// First-touch page tracking (drives the page-fault counter).
  std::unordered_set<std::uint64_t> touched_pages;

  /// Background tasks (e.g. a Dom0 housekeeping loop) never "complete";
  /// run_to_all_complete ignores them.
  bool background = false;

 private:
  TaskId id_;
  std::size_t pid_;
  std::unique_ptr<workload::TaskStream> stream_;
  std::size_t affinity_ = kAnyCore;
  sig::ProcessSignature signature_;
  TaskCounters counters_;
};

}  // namespace symbiosis::machine
