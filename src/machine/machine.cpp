#include "machine/machine.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "util/check.hpp"

namespace symbiosis::machine {

Machine::Machine(const MachineConfig& config)
    : config_(config),
      hierarchy_(config.hierarchy),
      scheduler_(config.hierarchy.num_cores, config.seed ^ 0x5c4ed41e5ull,
                 config.migration_prob, config.hierarchy.topology().cores_per_cluster()),
      clock_(config.hierarchy.num_cores, 0),
      current_(config.hierarchy.num_cores, kNoTask),
      quantum_left_(config.hierarchy.num_cores, 0),
      jitter_rng_(config.seed ^ 0x9d15ea5e5ull) {
  has_l3_ = hierarchy_.has_l3();
  if (config.quantum_cycles == 0) throw std::invalid_argument("Machine: zero quantum");
  if (config.batch_steps == 0) throw std::invalid_argument("Machine: zero batch_steps");
  // Sized once here instead of lazily in record_signature(): the cluster
  // width is fixed at construction, and the symhot gate keeps growth out
  // of the per-switch signature path.
  if (const sig::FilterUnit* filter = hierarchy_.filter()) {
    symbiosis_scratch_.resize(filter->num_cores());
  }
}

TaskId Machine::add_task(std::unique_ptr<workload::TaskStream> stream, std::size_t affinity) {
  return add_thread(std::move(stream), next_pid_++, affinity);
}

TaskId Machine::add_thread(std::unique_ptr<workload::TaskStream> stream, std::size_t pid,
                           std::size_t affinity) {
  next_pid_ = std::max(next_pid_, pid + 1);
  const TaskId id = tasks_.size();
  tasks_.push_back(
      std::make_unique<Task>(id, pid, std::move(stream), config_.hierarchy.num_cores));
  tasks_.back()->set_affinity(affinity);
  scheduler_.admit(id, affinity);
  return id;
}

std::vector<TaskId> Machine::add_process(const workload::TraceSource& source,
                                         std::size_t affinity) {
  const std::size_t pid = next_pid_++;
  std::vector<TaskId> ids;
  ids.reserve(source.num_threads());
  for (std::size_t t = 0; t < source.num_threads(); ++t) {
    ids.push_back(add_thread(source.make_stream(t), pid, affinity));
  }
  return ids;
}

void Machine::set_affinity(TaskId id, std::size_t core) {
  task(id).set_affinity(core);
  scheduler_.set_affinity(id, core);
}

void Machine::set_periodic_hook(std::uint64_t period_cycles, std::function<void(Machine&)> hook) {
  if (period_cycles == 0) throw std::invalid_argument("Machine: zero hook period");
  hook_period_ = period_cycles;
  next_hook_ = now() + period_cycles;
  hook_ = std::move(hook);
}

std::uint64_t Machine::now() const noexcept {
  std::uint64_t lowest = 0;
  bool any = false;
  for (std::size_t c = 0; c < clock_.size(); ++c) {
    const bool busy = current_[c] != kNoTask || scheduler_.queue_depth(c) > 0;
    if (!busy) continue;
    if (!any || clock_[c] < lowest) lowest = clock_[c];
    any = true;
  }
  if (!any) {
    // Fully idle: report the furthest clock (all work has drained).
    for (const auto t : clock_) lowest = std::max(lowest, t);
  }
  return lowest;
}

const Task* Machine::running_on(std::size_t core) const {
  const TaskId id = current_.at(core);
  return id == kNoTask ? nullptr : tasks_[id].get();
}

void Machine::record_signature(std::size_t core, Task& task) {
  SYM_DCHECK_BOUNDS(core, config_.hierarchy.num_cores, "machine.affinity");
  sig::FilterUnit* filter = hierarchy_.filter_for_core(core);
  if (!filter) return;
  // Signature hardware lives per cluster with cluster-local core slots; on
  // the degenerate single-cluster machine local == global.
  const std::size_t cluster = hierarchy_.cluster_of(core);
  const std::size_t local = hierarchy_.local_core(core);
  const sig::BitVector rbv = filter->compute_rbv(local);
  static obs::Histogram& popcount_hist = obs::histogram("sig.rbv.popcount");
  popcount_hist.observe(rbv.popcount());
  sig::SignatureSample sample;
  sample.core = core;
  sample.occupancy_weight = rbv.popcount();
  sample.symbiosis.resize(config_.hierarchy.num_cores);
  // Own cluster in one batched kernel pass: the self core compares against
  // the LF snapshot (co-residents' footprint), other same-cluster cores
  // against their live CFs (§3.1 / filter_unit.hpp).
  SYM_DCHECK_EQ(symbiosis_scratch_.size(), filter->num_cores(), "machine.affinity")
      << "symbiosis scratch sized at construction";
  filter->symbiosis_all(rbv, local, symbiosis_scratch_.data());
  for (std::size_t c = 0; c < config_.hierarchy.num_cores; ++c) {
    if (hierarchy_.cluster_of(c) == cluster) {
      sample.symbiosis[c] = symbiosis_scratch_[hierarchy_.local_core(c)];
    } else {
      // Other cluster: that core's footprint lives in a different L2, so
      // the footprints are disjoint by construction (filter_unit.hpp); the
      // RBV weight was already computed for the sample.
      const sig::FilterUnit* other = hierarchy_.filter_for_core(c);
      sample.symbiosis[c] = sig::disjoint_symbiosis_from_weights(
          sample.occupancy_weight, other->core_filter_weight(hierarchy_.local_core(c)));
    }
  }
  task.signature().record(sample);
}

void Machine::switch_out(std::size_t core) {
  const TaskId id = current_[core];
  if (id == kNoTask) return;
  Task& t = *tasks_[id];
  record_signature(core, t);
  scheduler_.yield(core, id);
  current_[core] = kNoTask;
}

bool Machine::switch_in(std::size_t core) {
  TaskId id = kNoTask;
  if (!scheduler_.pick_next(core, id)) return false;
  SYM_DCHECK_LT(id, tasks_.size(), "machine.affinity") << "scheduler produced unknown task";
  SYM_DCHECK(tasks_[id]->affinity() == Task::kAnyCore || tasks_[id]->affinity() == core,
             "machine.affinity")
      << "task " << id << " switched in on core " << core << " despite a pin";
  current_[core] = id;
  quantum_left_[core] = config_.quantum_cycles;
  if (config_.quantum_jitter > 0.0) {
    const double jitter = (jitter_rng_.next_double() * 2.0 - 1.0) * config_.quantum_jitter;
    quantum_left_[core] = static_cast<std::uint64_t>(
        static_cast<double>(config_.quantum_cycles) * (1.0 + jitter));
  }

  // An idle core re-joining the action must not run "in the past".
  clock_[core] = std::max(clock_[core], now());
  clock_[core] += config_.context_switch_cycles;

  // Hypervisor/Dom0 pollution: the switch path drags its own lines through
  // the shared cache (charged to the core, not to any task's user time).
  // Runs BEFORE the LF snapshot so it is not billed to the incoming task's
  // RBV — the snapshot is taken "just before the new application accesses
  // the cache" (§3.1).
  if (config_.switch_pollution_lines > 0) {
    const auto line = static_cast<cachesim::Addr>(config_.hierarchy.l1.line_bytes);
    const cachesim::Addr base = cachesim::Addr{1} << 60;
    for (std::uint32_t i = 0; i < config_.switch_pollution_lines; ++i) {
      clock_[core] += hierarchy_.access(core, base + i * line, false).cycles;
    }
  }

  hierarchy_.on_context_switch_in(core);  // TLB flush + LF snapshot

  ++tasks_[id]->counters().context_switches;
  ++stats_.context_switches;
  SYM_RECORD((obs::ContextSwitchEvent{clock_[core], static_cast<std::uint32_t>(core),
                                      static_cast<std::uint64_t>(id),
                                      static_cast<std::uint64_t>(tasks_[id]->pid())}));
  return true;
}

void Machine::execute_batch(std::size_t core) {
  Task& t = *tasks_[current_[core]];
  workload::TaskStream& stream = t.stream();
  auto& counters = t.counters();

  for (std::uint32_t i = 0; i < config_.batch_steps && quantum_left_[core] > 0; ++i) {
    const workload::Step step = stream.next();
    std::uint64_t cycles = step.compute_instr;  // 1-cycle compute CPI

    if (config_.track_pages) {
      const std::uint64_t page = step.addr >> 12;
      if (t.touched_pages.insert(page).second) {
        ++counters.page_faults;
        cycles += config_.page_fault_cycles;
      }
    }

    const cachesim::MemAccessResult mem = hierarchy_.access(core, step.addr, step.is_write);
    cycles += mem.cycles;

    counters.instructions += step.compute_instr + 1;
    ++counters.memory_refs;
    if (!mem.tlb_hit) ++counters.tlb_misses;
    if (!mem.l1_hit) {
      ++counters.l1_misses;
      ++counters.l2_accesses;
      if (!mem.l2_hit) {
        ++counters.l2_misses;
        if (has_l3_) {
          ++counters.l3_accesses;
          if (!mem.l3_hit) ++counters.l3_misses;
        }
      }
    }

    clock_[core] += cycles;
    t.run_user_cycles += cycles;
    t.total_user_cycles += cycles;
    quantum_left_[core] -= std::min(quantum_left_[core], cycles);
    ++stats_.steps;

    if (stream.complete()) {
      if (t.completed_runs == 0) {
        t.first_completion_user_cycles = t.run_user_cycles;
        t.first_completion_wall_cycles = clock_[core];
      }
      ++t.completed_runs;
      t.run_user_cycles = 0;
      stream.restart();  // the paper restarts finished benchmarks
    }
  }

  if (quantum_left_[core] == 0) switch_out(core);
}

bool Machine::advance_one() {
  // Pick the busy core with the smallest clock.
  std::size_t core = clock_.size();
  std::uint64_t lowest = 0;
  for (std::size_t c = 0; c < clock_.size(); ++c) {
    const bool busy = current_[c] != kNoTask || scheduler_.queue_depth(c) > 0;
    if (!busy) continue;
    if (core == clock_.size() || clock_[c] < lowest) {
      core = c;
      lowest = clock_[c];
    }
  }
  if (core == clock_.size()) return false;  // machine fully idle

  if (current_[core] == kNoTask && !switch_in(core)) return false;
  execute_batch(core);
  fire_due_hooks();
  return true;
}

void Machine::fire_due_hooks() {
  if (!hook_) return;
  while (now() >= next_hook_) {
    ++stats_.hook_invocations;
    publish_metrics();
    hook_(*this);
    next_hook_ += hook_period_;
  }
}

void Machine::publish_metrics() {
  static obs::Counter& switches = obs::counter("machine.context_switch");
  static obs::Counter& steps = obs::counter("machine.steps");
  static obs::Counter& hooks = obs::counter("machine.hook_invocations");
  switches.add(stats_.context_switches - published_.context_switches);
  steps.add(stats_.steps - published_.steps);
  hooks.add(stats_.hook_invocations - published_.hook_invocations);
  published_ = stats_;
  hierarchy_.publish_metrics();
}

bool Machine::run_to_all_complete(std::uint64_t max_cycles) {
  const std::uint64_t deadline = max_cycles ? now() + max_cycles : 0;
  auto all_done = [&] {
    return std::all_of(tasks_.begin(), tasks_.end(), [](const auto& t) {
      return t->background || t->completed_runs >= 1;
    });
  };
  bool completed = true;
  while (!all_done()) {
    if ((deadline && now() >= deadline) || !advance_one()) {
      completed = false;
      break;
    }
  }
  publish_metrics();
  return completed;
}

void Machine::run_for(std::uint64_t cycles) {
  const std::uint64_t deadline = now() + cycles;
  while (now() < deadline) {
    if (!advance_one()) break;
  }
  publish_metrics();
}

std::uint64_t Machine::run_batch(std::uint64_t batches) {
  std::uint64_t executed = 0;
  while (executed < batches && advance_one()) ++executed;
  publish_metrics();
  return executed;
}

}  // namespace symbiosis::machine
