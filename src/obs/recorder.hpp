// recorder.hpp — the simulation flight recorder.
//
// A bounded ring buffer of typed simulation events: context switches, L2
// evictions, allocator decisions (with the full interference-graph edge
// weights), VM exits and phase markers. The recorder answers "WHY did the
// weighted-graph allocator choose this mapping" — the DESIGN §4 pipelines
// discard everything but final improvements; the ring keeps the last N
// decisions inspectable and dumpable as JSONL.
//
// Cost model (DESIGN.md §9): instrument sites use the SYM_RECORD macro,
// which evaluates its event expression ONLY when the recorder is enabled
// (one relaxed atomic load + branch otherwise), and compiles to nothing at
// all when the build sets SYMBIOSIS_RECORDER_COMPILED=0 (cmake
// -DSYMBIOSIS_RECORDER=OFF). The recorder is DISABLED at runtime by
// default; tests and trace tooling flip it on via ScopedRecorder.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace symbiosis::obs {

/// A task was switched in on a core (in VM mode this is a world switch).
struct ContextSwitchEvent {
  std::uint64_t time = 0;  ///< simulated cycle of the switch
  std::uint32_t core = 0;
  std::uint64_t task = 0;
  std::uint64_t pid = 0;
};

/// A valid line was displaced from the (shared) L2. The hierarchy has no
/// clock, so eviction events carry no simulated time; the recorder's
/// sequence number orders them against neighbouring events.
struct L2EvictionEvent {
  std::uint64_t victim_line = 0;
  std::uint32_t set = 0;
  std::uint32_t way = 0;
  std::uint32_t requestor = 0;  ///< core whose fill displaced the victim
};

/// One allocator invocation: the graph it saw and the mapping it produced.
struct AllocatorDecisionEvent {
  std::uint64_t time = 0;  ///< simulated cycle of the allocator hook
  std::string allocator;
  std::string chosen_key;   ///< canonical Allocation::key()
  std::uint64_t tasks = 0;
  double cut_weight = 0.0;    ///< inter-group weight of the chosen mapping
  double intra_weight = 0.0;  ///< weight kept inside groups
  /// Upper triangle of the interference graph, row-major: (0,1), (0,2), ...,
  /// (1,2), ... — empty for policies that build no graph.
  std::vector<double> edge_weights;
};

/// A guest domain's benchmark reached completion (the §4.2 measured event).
struct VmExitEvent {
  std::uint64_t time = 0;
  std::uint64_t domain = 0;
  std::string name;
  std::string reason;  ///< "completed" | "cycle-cap"
  std::uint64_t user_cycles = 0;
};

/// Experiment-level marker (phase boundaries of the two-phase pipeline).
struct PhaseEvent {
  std::uint64_t time = 0;
  std::string phase;
};

using Event =
    std::variant<ContextSwitchEvent, L2EvictionEvent, AllocatorDecisionEvent, VmExitEvent,
                 PhaseEvent>;

/// Stable lowercase type tag ("context_switch", "l2_eviction", ...).
[[nodiscard]] const char* event_type_name(const Event& event) noexcept;

/// A ring slot: the event plus its global sequence number (total order of
/// record() calls, monotone even across ring wrap-around).
struct RecordedEvent {
  std::uint64_t seq = 0;
  Event event;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  static FlightRecorder& global();

  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }

  /// Resize the ring (drops currently buffered events). Capacity >= 1.
  void set_capacity(std::size_t capacity);

  /// Append an event (oldest is overwritten when full). Callers normally go
  /// through SYM_RECORD, which skips the call when disabled.
  void record(Event event);

  /// Buffered events, oldest first (ascending seq).
  [[nodiscard]] std::vector<RecordedEvent> snapshot() const;

  [[nodiscard]] std::uint64_t recorded_total() const noexcept;  ///< ever record()ed
  [[nodiscard]] std::uint64_t dropped_total() const noexcept;   ///< overwritten

  /// Drop buffered events and zero the counters (enabled flag unchanged).
  void clear();

  /// One compact JSON object per buffered event, oldest first.
  void write_jsonl(std::ostream& os) const;

 private:
  std::atomic<bool> enabled_{false};
  mutable util::Mutex mutex_;
  // capacity-bounded, ring_[seq % capacity]
  std::vector<RecordedEvent> ring_ SYM_GUARDED_BY(mutex_);
  std::size_t capacity_ SYM_GUARDED_BY(mutex_) = kDefaultCapacity;
  std::uint64_t next_seq_ SYM_GUARDED_BY(mutex_) = 0;
};

/// RAII enable/disable of the global recorder (tests and trace tooling).
class ScopedRecorder {
 public:
  explicit ScopedRecorder(bool on = true) : previous_(FlightRecorder::global().enabled()) {
    FlightRecorder::global().set_enabled(on);
  }
  ~ScopedRecorder() { FlightRecorder::global().set_enabled(previous_); }
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  bool previous_;
};

}  // namespace symbiosis::obs

// Compile-time gate: cmake -DSYMBIOSIS_RECORDER=OFF defines
// SYMBIOSIS_RECORDER_COMPILED=0 and every SYM_RECORD site vanishes,
// arguments unevaluated.
#ifndef SYMBIOSIS_RECORDER_COMPILED
#define SYMBIOSIS_RECORDER_COMPILED 1
#endif

#if SYMBIOSIS_RECORDER_COMPILED
#define SYM_RECORD(event_expr)                                      \
  do {                                                              \
    if (::symbiosis::obs::FlightRecorder::global().enabled()) {     \
      ::symbiosis::obs::FlightRecorder::global().record(event_expr); \
    }                                                               \
  } while (0)
#else
#define SYM_RECORD(event_expr) \
  do {                         \
  } while (0)
#endif
