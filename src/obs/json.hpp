// json.hpp — a minimal JSON document model for run reports and JSONL events.
//
// Deliberately small: insertion-ordered objects (reports stay readable and
// diffs stable), exact 64-bit integers (simulated cycle counts round-trip
// bit-exactly instead of passing through double), and a strict recursive-
// descent parser for the inspect/diff/validate tooling. Not a general JSON
// library — no comments, no NaN/Inf, UTF-8 passed through untouched.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace symbiosis::obs {

/// Thrown by Json::parse on malformed input and by as_*() on type mismatch.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class Json {
 public:
  using Array = std::vector<Json>;
  using Members = std::vector<std::pair<std::string, Json>>;

  Json() = default;  // null
  Json(std::nullptr_t) {}
  Json(bool v) : value_(v) {}
  Json(std::uint64_t v) : value_(v) {}
  Json(std::int64_t v) : value_(v) {}
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}
  Json(double v) : value_(v) {}
  Json(std::string v) : value_(std::move(v)) {}
  Json(std::string_view v) : value_(std::string(v)) {}
  Json(const char* v) : value_(std::string(v)) {}

  [[nodiscard]] static Json object() { return Json(Members{}); }
  [[nodiscard]] static Json array() { return Json(Array{}); }

  [[nodiscard]] bool is_null() const noexcept { return holds<std::nullptr_t>(); }
  [[nodiscard]] bool is_bool() const noexcept { return holds<bool>(); }
  [[nodiscard]] bool is_number() const noexcept {
    return holds<std::uint64_t>() || holds<std::int64_t>() || holds<double>();
  }
  [[nodiscard]] bool is_string() const noexcept { return holds<std::string>(); }
  [[nodiscard]] bool is_array() const noexcept { return holds<Array>(); }
  [[nodiscard]] bool is_object() const noexcept { return holds<Members>(); }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::uint64_t as_u64() const;   ///< must be a non-negative integer
  [[nodiscard]] std::int64_t as_i64() const;
  [[nodiscard]] double as_double() const;       ///< any number
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Members& as_object() const;

  /// Object: set (or overwrite) @p key. Returns *this for chaining.
  Json& set(std::string key, Json value);
  /// Object: member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  /// Object: find() that throws JsonError with @p key in the message.
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Array: append.
  void push_back(Json value);

  /// Array or object element count; 0 otherwise.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Structural equality. Numbers compare by exact stored value after
  /// integer widening (u64 7 == i64 7), never by double rounding across
  /// integer/double kinds.
  [[nodiscard]] bool operator==(const Json& other) const;

  /// Serialize. indent == 0 -> compact single line; otherwise pretty-printed
  /// with @p indent spaces per level. Doubles use round-trip precision.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Strict parse of a complete JSON document (throws JsonError).
  [[nodiscard]] static Json parse(std::string_view text);

  /// Escape @p s as a JSON string literal (with surrounding quotes).
  [[nodiscard]] static std::string escape(std::string_view s);

 private:
  template <typename T>
  [[nodiscard]] bool holds() const noexcept {
    return std::holds_alternative<T>(value_);
  }
  explicit Json(Array v) : value_(std::move(v)) {}
  explicit Json(Members v) : value_(std::move(v)) {}

  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::uint64_t, std::int64_t, double, std::string, Array,
               Members>
      value_{nullptr};
};

/// Walk @p root to the dot-separated @p path ("config.machine.cores");
/// array elements are addressed by numeric segments. nullptr when absent.
[[nodiscard]] const Json* json_at_path(const Json& root, std::string_view path);

/// Recursively diff @p a vs @p b; returns dot-path descriptions of every
/// difference ("summary.0.name: \"mcf\" vs \"lbm\""). @p ignore_prefixes
/// suppresses subtrees (volatile fields such as wall-clock timings).
[[nodiscard]] std::vector<std::string> json_diff(
    const Json& a, const Json& b, const std::vector<std::string>& ignore_prefixes = {});

}  // namespace symbiosis::obs
