#include "obs/metrics.hpp"

#include <bit>

#include "util/check.hpp"

namespace symbiosis::obs {

void Histogram::observe(std::uint64_t v) noexcept {
  buckets_[static_cast<std::size_t>(std::bit_width(v))].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~std::uint64_t{0} ? 0 : m;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::string_view to_string(MetricKind kind) noexcept {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

bool valid_metric_name(std::string_view name) noexcept {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool prev_dot = false;
  for (const char ch : name) {
    if (ch == '.') {
      if (prev_dot) return false;
      prev_dot = true;
      continue;
    }
    prev_dot = false;
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') || ch == '_';
    if (!ok) return false;
  }
  return true;
}

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry registry;
  return registry;
}

MetricRegistry::Entry& MetricRegistry::find_or_create(std::string_view name, MetricKind kind) {
  SYM_CHECK(valid_metric_name(name), "obs.metrics")
      << "malformed metric name '" << name << "' (want dot-scoped [a-z0-9_] segments)";
  const util::MutexLock lock(mutex_);
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    SYM_CHECK(it->second.kind == kind, "obs.metrics")
        << "metric '" << name << "' registered as " << to_string(it->second.kind)
        << " but requested as " << to_string(kind);
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case MetricKind::Counter: entry.counter = std::make_unique<Counter>(); break;
    case MetricKind::Gauge: entry.gauge = std::make_unique<Gauge>(); break;
    case MetricKind::Histogram: entry.histogram = std::make_unique<Histogram>(); break;
  }
  return entries_.emplace(std::string(name), std::move(entry)).first->second;
}

Counter& MetricRegistry::counter(std::string_view name) {
  return *find_or_create(name, MetricKind::Counter).counter;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  return *find_or_create(name, MetricKind::Gauge).gauge;
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  return *find_or_create(name, MetricKind::Histogram).histogram;
}

std::vector<MetricSample> MetricRegistry::snapshot() const {
  const util::MutexLock lock(mutex_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::Counter: sample.count = entry.counter->value(); break;
      case MetricKind::Gauge: sample.value = entry.gauge->value(); break;
      case MetricKind::Histogram:
        sample.count = entry.histogram->count();
        sample.value = entry.histogram->mean();
        sample.sum = entry.histogram->sum();
        sample.min = entry.histogram->min();
        sample.max = entry.histogram->max();
        break;
    }
    out.push_back(std::move(sample));
  }
  return out;  // std::map iteration is already name-sorted
}

void MetricRegistry::reset_values() {
  const util::MutexLock lock(mutex_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case MetricKind::Counter: entry.counter->reset(); break;
      case MetricKind::Gauge: entry.gauge->reset(); break;
      case MetricKind::Histogram: entry.histogram->reset(); break;
    }
  }
}

std::size_t MetricRegistry::size() const {
  const util::MutexLock lock(mutex_);
  return entries_.size();
}

}  // namespace symbiosis::obs
