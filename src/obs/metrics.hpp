// metrics.hpp — the process-wide metrics registry.
//
// Named counters, gauges and log2-bucketed histograms with dot-scoped names
// mirroring the check.hpp category scheme ("cachesim.l2.miss",
// "sched.mincut.kl_passes", "sig.rbv.popcount", ...). Updates are relaxed
// atomics so instrumented code stays wait-free; registration (name lookup)
// takes a mutex, so hot paths cache the returned reference:
//
//   static obs::Counter& misses = obs::counter("cachesim.l2.miss");
//   misses.add();
//
// References returned by the registry stay valid for the process lifetime
// (metrics are never unregistered; reset_values() zeroes values only).
//
// Policy (DESIGN.md §9): per-event updates belong on cold paths (context
// switches, allocator invocations, solver calls). Per-access hot loops keep
// their existing local stats blocks (cachesim::CacheStats, TaskCounters)
// and PUBLISH deltas to the registry at cold boundaries instead — see
// machine::Machine::publish_metrics().
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace symbiosis::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written point-in-time value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed distribution of non-negative integer observations.
/// Bucket b holds observations v with std::bit_width(v) == b, i.e. bucket 0
/// is exactly v == 0 and bucket b >= 1 covers [2^(b-1), 2^b).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width(uint64) in [0, 64]

  void observe(std::uint64_t v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const auto n = count();
    return n ? static_cast<double>(sum()) / static_cast<double>(n) : 0.0;
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t b) const {
    return buckets_.at(b).load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

enum class MetricKind { Counter, Gauge, Histogram };

[[nodiscard]] std::string_view to_string(MetricKind kind) noexcept;

/// One metric's state at snapshot time.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  std::uint64_t count = 0;  ///< counter value, or histogram observation count
  double value = 0.0;       ///< gauge value, or histogram mean
  std::uint64_t sum = 0;    ///< histogram only
  std::uint64_t min = 0;    ///< histogram only
  std::uint64_t max = 0;    ///< histogram only
};

/// Names are dot-scoped lowercase: segments of [a-z0-9_]+ joined by '.'.
[[nodiscard]] bool valid_metric_name(std::string_view name) noexcept;

/// The registry. Thread-safe; one global instance via global().
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  static MetricRegistry& global();

  /// Find-or-create. SYM_CHECKs that @p name is well formed and was not
  /// previously registered under a different kind. The reference stays
  /// valid forever.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// All metrics, sorted by name.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Zero every metric's value; registrations (and handed-out references)
  /// survive. Intended for tests and between experiment repetitions.
  void reset_values();

  [[nodiscard]] std::size_t size() const;

 private:
  /// One registered metric; exactly one pointer is engaged, per kind.
  struct Entry {
    MetricKind kind = MetricKind::Counter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(std::string_view name, MetricKind kind) SYM_EXCLUDES(mutex_);

  mutable util::Mutex mutex_;
  // Node-based map + unique_ptr values is what makes the "references stay
  // valid forever" contract hold; the mutex guards only the name index.
  std::map<std::string, Entry, std::less<>> entries_ SYM_GUARDED_BY(mutex_);
};

// --- convenience accessors on the global registry ---
inline Counter& counter(std::string_view name) { return MetricRegistry::global().counter(name); }
inline Gauge& gauge(std::string_view name) { return MetricRegistry::global().gauge(name); }
inline Histogram& histogram(std::string_view name) {
  return MetricRegistry::global().histogram(name);
}

}  // namespace symbiosis::obs
