#include "obs/json.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace symbiosis::obs {

namespace {

[[noreturn]] void type_error(const char* want, const Json& got) {
  throw JsonError(std::string("json: expected ") + want + ", got " + got.dump());
}

}  // namespace

bool Json::as_bool() const {
  if (const auto* v = std::get_if<bool>(&value_)) return *v;
  type_error("bool", *this);
}

std::uint64_t Json::as_u64() const {
  if (const auto* u = std::get_if<std::uint64_t>(&value_)) return *u;
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    if (*i >= 0) return static_cast<std::uint64_t>(*i);
  }
  type_error("non-negative integer", *this);
}

std::int64_t Json::as_i64() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  if (const auto* u = std::get_if<std::uint64_t>(&value_)) {
    if (*u <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
      return static_cast<std::int64_t>(*u);
    }
  }
  type_error("integer", *this);
}

double Json::as_double() const {
  if (const auto* d = std::get_if<double>(&value_)) return *d;
  if (const auto* u = std::get_if<std::uint64_t>(&value_)) return static_cast<double>(*u);
  if (const auto* i = std::get_if<std::int64_t>(&value_)) return static_cast<double>(*i);
  type_error("number", *this);
}

const std::string& Json::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value_)) return *s;
  type_error("string", *this);
}

const Json::Array& Json::as_array() const {
  if (const auto* a = std::get_if<Array>(&value_)) return *a;
  type_error("array", *this);
}

const Json::Members& Json::as_object() const {
  if (const auto* o = std::get_if<Members>(&value_)) return *o;
  type_error("object", *this);
}

Json& Json::set(std::string key, Json value) {
  if (!is_object()) value_ = Members{};
  auto& members = std::get<Members>(value_);
  for (auto& [k, v] : members) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::find(std::string_view key) const noexcept {
  const auto* members = std::get_if<Members>(&value_);
  if (!members) return nullptr;
  for (const auto& [k, v] : *members) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* found = find(key);
  if (!found) throw JsonError("json: missing member '" + std::string(key) + "'");
  return *found;
}

void Json::push_back(Json value) {
  if (!is_array()) value_ = Array{};
  std::get<Array>(value_).push_back(std::move(value));
}

std::size_t Json::size() const noexcept {
  if (const auto* a = std::get_if<Array>(&value_)) return a->size();
  if (const auto* o = std::get_if<Members>(&value_)) return o->size();
  return 0;
}

bool Json::operator==(const Json& other) const {
  // Integer kinds compare across signedness; everything else needs the same
  // alternative. A double never equals an integer kind (parse both sides of
  // a comparison from text so kinds agree).
  const auto* u_a = std::get_if<std::uint64_t>(&value_);
  const auto* i_a = std::get_if<std::int64_t>(&value_);
  const auto* u_b = std::get_if<std::uint64_t>(&other.value_);
  const auto* i_b = std::get_if<std::int64_t>(&other.value_);
  if ((u_a || i_a) && (u_b || i_b)) {
    if (i_a && *i_a < 0) return i_b && *i_a == *i_b;
    if (i_b && *i_b < 0) return false;
    const std::uint64_t a = u_a ? *u_a : static_cast<std::uint64_t>(*i_a);
    const std::uint64_t b = u_b ? *u_b : static_cast<std::uint64_t>(*i_b);
    return a == b;
  }
  return value_ == other.value_;
}

std::string Json::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* u = std::get_if<std::uint64_t>(&value_)) {
    out += std::to_string(*u);
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    out += std::to_string(*i);
  } else if (const auto* d = std::get_if<double>(&value_)) {
    if (!std::isfinite(*d)) throw JsonError("json: non-finite double");
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", *d);
    // An integer-looking token would reparse as the integer kind and break
    // the dump/parse round trip (kinds compare distinct). Keep it a double.
    if (!std::strpbrk(buf, ".eE")) std::strcat(buf, ".0");
    out += buf;
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    out += escape(*s);
  } else if (const auto* arr = std::get_if<Array>(&value_)) {
    out.push_back('[');
    for (std::size_t k = 0; k < arr->size(); ++k) {
      if (k) out.push_back(',');
      newline(depth + 1);
      (*arr)[k].dump_to(out, indent, depth + 1);
    }
    if (!arr->empty()) newline(depth);
    out.push_back(']');
  } else {
    const auto& members = std::get<Members>(value_);
    out.push_back('{');
    for (std::size_t k = 0; k < members.size(); ++k) {
      if (k) out.push_back(',');
      newline(depth + 1);
      out += escape(members[k].first);
      out += indent > 0 ? ": " : ":";
      members[k].second.dump_to(out, indent, depth + 1);
    }
    if (!members.empty()) newline(depth);
    out.push_back('}');
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// --- parser ---------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("json parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char ch = text_[pos_];
      if (ch != ' ' && ch != '\t' && ch != '\n' && ch != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) fail(std::string("expected '") + ch + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char ch = peek();
    switch (ch) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      if (obj.find(key)) fail("duplicate key '" + key + "'");
      obj.set(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return out;
      if (ch != '\\') {
        out.push_back(ch);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char hex = text_[pos_++];
            code <<= 4;
            if (hex >= '0' && hex <= '9') code |= static_cast<unsigned>(hex - '0');
            else if (hex >= 'a' && hex <= 'f') code |= static_cast<unsigned>(hex - 'a' + 10);
            else if (hex >= 'A' && hex <= 'F') code |= static_cast<unsigned>(hex - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Reports only ever emit \u00xx control escapes; reject the rest
          // rather than silently mangling UTF-16 surrogates.
          if (code > 0xFF) fail("unsupported \\u escape above \\u00ff");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && peek() >= '0' && peek() <= '9') ++pos_;
    bool is_double = false;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") fail("bad number");
    errno = 0;
    char* end = nullptr;
    if (!is_double) {
      if (token.front() == '-') {
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          return Json(static_cast<std::int64_t>(v));
        }
      } else {
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (errno == 0 && end == token.c_str() + token.size()) {
          return Json(static_cast<std::uint64_t>(v));
        }
      }
      // fall through: integer overflow -> double
    }
    errno = 0;
    const double v = std::strtod(token.c_str(), &end);
    if (errno != 0 || end != token.c_str() + token.size() || !std::isfinite(v)) {
      fail("bad number '" + token + "'");
    }
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

const Json* json_at_path(const Json& root, std::string_view path) {
  const Json* node = &root;
  while (!path.empty()) {
    const std::size_t dot = path.find('.');
    const std::string_view segment = path.substr(0, dot);
    path = dot == std::string_view::npos ? std::string_view{} : path.substr(dot + 1);
    if (node->is_array()) {
      std::size_t index = 0;
      for (const char ch : segment) {
        if (ch < '0' || ch > '9') return nullptr;
        index = index * 10 + static_cast<std::size_t>(ch - '0');
      }
      if (segment.empty() || index >= node->size()) return nullptr;
      node = &node->as_array()[index];
    } else {
      node = node->find(segment);
      if (!node) return nullptr;
    }
  }
  return node;
}

namespace {

bool ignored(const std::string& path, const std::vector<std::string>& prefixes) {
  for (const auto& prefix : prefixes) {
    if (path == prefix) return true;
    if (path.size() > prefix.size() && path.compare(0, prefix.size(), prefix) == 0 &&
        path[prefix.size()] == '.') {
      return true;
    }
  }
  return false;
}

void diff_into(const Json& a, const Json& b, const std::string& path,
               const std::vector<std::string>& prefixes, std::vector<std::string>& out) {
  if (ignored(path, prefixes)) return;
  if (a.is_object() && b.is_object()) {
    for (const auto& [key, value] : a.as_object()) {
      const std::string child = path.empty() ? key : path + "." + key;
      const Json* other = b.find(key);
      if (!other) {
        if (!ignored(child, prefixes)) out.push_back(child + ": only in first");
        continue;
      }
      diff_into(value, *other, child, prefixes, out);
    }
    for (const auto& [key, value] : b.as_object()) {
      const std::string child = path.empty() ? key : path + "." + key;
      if (!a.find(key) && !ignored(child, prefixes)) out.push_back(child + ": only in second");
    }
    return;
  }
  if (a.is_array() && b.is_array()) {
    const std::size_t common = std::min(a.size(), b.size());
    for (std::size_t i = 0; i < common; ++i) {
      diff_into(a.as_array()[i], b.as_array()[i],
                path.empty() ? std::to_string(i) : path + "." + std::to_string(i), prefixes, out);
    }
    if (a.size() != b.size()) {
      out.push_back(path + ": array length " + std::to_string(a.size()) + " vs " +
                    std::to_string(b.size()));
    }
    return;
  }
  if (!(a == b)) out.push_back(path + ": " + a.dump() + " vs " + b.dump());
}

}  // namespace

std::vector<std::string> json_diff(const Json& a, const Json& b,
                                   const std::vector<std::string>& ignore_prefixes) {
  std::vector<std::string> out;
  diff_into(a, b, "", ignore_prefixes, out);
  return out;
}

}  // namespace symbiosis::obs
