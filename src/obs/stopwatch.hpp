// stopwatch.hpp — wall-clock phase timing for run reports.
//
// PhaseTimings collects named wall-clock durations ("sample_mixes",
// "measure_mappings", "summarize") that the run-report exporter emits under
// the report's "timings" section. Timings are VOLATILE by policy: they are
// excluded from golden-report comparison and from trace_tools diff by
// default (they depend on the host, not the simulation).
#pragma once

#include <chrono>
#include <string>
#include <utility>
#include <vector>

namespace symbiosis::obs {

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double elapsed_ms() const {
    const auto delta = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::milli>(delta).count();
  }

  void restart() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Ordered (phase name, wall milliseconds) pairs.
class PhaseTimings {
 public:
  void add(std::string phase, double ms) { phases_.emplace_back(std::move(phase), ms); }

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& items() const noexcept {
    return phases_;
  }

  /// RAII phase: records elapsed time into the parent on destruction.
  class Scoped {
   public:
    Scoped(PhaseTimings& parent, std::string phase)
        : parent_(parent), phase_(std::move(phase)) {}
    ~Scoped() { parent_.add(std::move(phase_), watch_.elapsed_ms()); }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;

   private:
    PhaseTimings& parent_;
    std::string phase_;
    Stopwatch watch_;
  };

 private:
  std::vector<std::pair<std::string, double>> phases_;
};

}  // namespace symbiosis::obs
