#include "obs/recorder.hpp"

#include <ostream>

#include "obs/json.hpp"
#include "util/check.hpp"

namespace symbiosis::obs {

const char* event_type_name(const Event& event) noexcept {
  struct Visitor {
    const char* operator()(const ContextSwitchEvent&) const noexcept { return "context_switch"; }
    const char* operator()(const L2EvictionEvent&) const noexcept { return "l2_eviction"; }
    const char* operator()(const AllocatorDecisionEvent&) const noexcept {
      return "allocator_decision";
    }
    const char* operator()(const VmExitEvent&) const noexcept { return "vm_exit"; }
    const char* operator()(const PhaseEvent&) const noexcept { return "phase"; }
  };
  return std::visit(Visitor{}, event);
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::set_capacity(std::size_t capacity) {
  SYM_CHECK(capacity >= 1, "obs.recorder") << "ring capacity must be >= 1";
  const util::MutexLock lock(mutex_);
  capacity_ = capacity;
  ring_.clear();
  ring_.shrink_to_fit();
}

void FlightRecorder::record(Event event) {
  const util::MutexLock lock(mutex_);
  RecordedEvent slot{next_seq_++, std::move(event)};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(slot));
  } else {
    ring_[static_cast<std::size_t>(slot.seq % capacity_)] = std::move(slot);
  }
}

std::vector<RecordedEvent> FlightRecorder::snapshot() const {
  const util::MutexLock lock(mutex_);
  std::vector<RecordedEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;  // not yet wrapped: already oldest-first
  } else {
    const std::size_t head = static_cast<std::size_t>(next_seq_ % capacity_);
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(head + i) % capacity_]);
    }
  }
  return out;
}

std::uint64_t FlightRecorder::recorded_total() const noexcept {
  const util::MutexLock lock(mutex_);
  return next_seq_;
}

std::uint64_t FlightRecorder::dropped_total() const noexcept {
  const util::MutexLock lock(mutex_);
  return next_seq_ - ring_.size();
}

void FlightRecorder::clear() {
  const util::MutexLock lock(mutex_);
  ring_.clear();
  next_seq_ = 0;
}

namespace {

Json event_to_json(const RecordedEvent& recorded) {
  Json line = Json::object();
  line.set("seq", recorded.seq);
  line.set("type", event_type_name(recorded.event));
  struct Visitor {
    Json& line;
    void operator()(const ContextSwitchEvent& e) const {
      line.set("time", e.time).set("core", std::uint64_t{e.core}).set("task", e.task).set(
          "pid", e.pid);
    }
    void operator()(const L2EvictionEvent& e) const {
      line.set("victim_line", e.victim_line)
          .set("set", std::uint64_t{e.set})
          .set("way", std::uint64_t{e.way})
          .set("requestor", std::uint64_t{e.requestor});
    }
    void operator()(const AllocatorDecisionEvent& e) const {
      line.set("time", e.time)
          .set("allocator", e.allocator)
          .set("chosen_key", e.chosen_key)
          .set("tasks", e.tasks)
          .set("cut_weight", e.cut_weight)
          .set("intra_weight", e.intra_weight);
      Json weights = Json::array();
      for (const double w : e.edge_weights) weights.push_back(w);
      line.set("edge_weights", std::move(weights));
    }
    void operator()(const VmExitEvent& e) const {
      line.set("time", e.time)
          .set("domain", e.domain)
          .set("name", e.name)
          .set("reason", e.reason)
          .set("user_cycles", e.user_cycles);
    }
    void operator()(const PhaseEvent& e) const { line.set("time", e.time).set("phase", e.phase); }
  };
  std::visit(Visitor{line}, recorded.event);
  return line;
}

}  // namespace

void FlightRecorder::write_jsonl(std::ostream& os) const {
  for (const auto& recorded : snapshot()) {
    os << event_to_json(recorded).dump() << '\n';
  }
}

}  // namespace symbiosis::obs
