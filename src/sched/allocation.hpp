// allocation.hpp — process→core-group assignments and their enumeration.
//
// An Allocation maps each task to a group; tasks in the same group get the
// same affinity bits, i.e. the OS runs them on the same core (§3.2). Group
// labels are interchangeable (running {A,B} on core 0 and {C,D} on core 1
// is the same schedule as the converse), so comparisons and vote counting
// go through a canonical relabelling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace symbiosis::sched {

/// Task→group assignment. groups == number of cores being filled.
struct Allocation {
  std::vector<std::size_t> group_of;  ///< indexed by task position
  std::size_t groups = 0;

  [[nodiscard]] std::size_t size() const noexcept { return group_of.size(); }

  /// Members of @p group, in task order.
  [[nodiscard]] std::vector<std::size_t> members(std::size_t group) const;

  /// Canonical form: groups renumbered by first appearance. Two allocations
  /// describing the same schedule canonicalize identically.
  [[nodiscard]] Allocation canonical() const;

  /// Compact printable key, e.g. "0,0,1,1" (canonicalized) — used for
  /// majority voting across allocator invocations (§4.1).
  [[nodiscard]] std::string key() const;

  /// Human-readable, e.g. "{A,D | B,C}" given task names.
  [[nodiscard]] std::string describe(const std::vector<std::string>& names) const;

  [[nodiscard]] bool operator==(const Allocation& other) const noexcept;
};

/// All distinct ways to split @p tasks tasks into @p groups balanced groups
/// (sizes differ by at most one; e.g. 4 tasks / 2 groups → 3 mappings, the
/// paper's Table 1 enumeration). Throws if tasks < groups.
[[nodiscard]] std::vector<Allocation> enumerate_balanced_allocations(std::size_t tasks,
                                                                     std::size_t groups);

/// Group sizes for a balanced split (larger groups first).
[[nodiscard]] std::vector<std::size_t> balanced_group_sizes(std::size_t tasks,
                                                            std::size_t groups);

}  // namespace symbiosis::sched
