// interference_graph.hpp — §3.3.2/§3.3.3, the interference-graph algorithms.
//
// Graph construction (§3.3.2): the directed edge Pi→Pj carries Pi's
// interference with the core Pj last ran on (a process is assumed to
// interfere equally with every process of a given core). The directed
// graph is consolidated into an undirected one by summing the two
// directions; a balanced MIN-CUT then minimizes inter-group interference,
// i.e. maximizes the interference KEPT INSIDE each core's time-sliced
// group.
//
// The weighted variant (§3.3.3) multiplies each directed contribution by
// the source's occupancy weight — edge(P1,P2) = W1·I12 + W2·I21 — so a
// tiny-footprint process (whose symbiosis is low merely because its RBV is
// nearly empty) no longer masquerades as a heavy interferer.
#pragma once

#include "sched/mincut.hpp"
#include "sched/policy.hpp"

namespace symbiosis::sched {

/// Build the consolidated undirected interference graph.
/// @param weighted apply the §3.3.3 occupancy weighting
[[nodiscard]] SymMatrix build_interference_graph(const std::vector<TaskProfile>& profiles,
                                                 bool weighted);

/// §3.3.2: plain interference graph + balanced MIN-CUT.
class InterferenceGraphAllocator final : public Allocator {
 public:
  explicit InterferenceGraphAllocator(MinCutMethod method = MinCutMethod::Auto,
                                      std::uint64_t seed = 1)
      : method_(method), seed_(seed) {}

  [[nodiscard]] std::string name() const override { return "graph"; }
  [[nodiscard]] Allocation allocate(const std::vector<TaskProfile>& profiles,
                                    std::size_t groups) override;

 private:
  MinCutMethod method_;
  std::uint64_t seed_;
};

/// §3.3.3: occupancy-weighted interference graph + balanced MIN-CUT.
/// The paper's best algorithm.
class WeightedGraphAllocator final : public Allocator {
 public:
  explicit WeightedGraphAllocator(MinCutMethod method = MinCutMethod::Auto,
                                  std::uint64_t seed = 1)
      : method_(method), seed_(seed) {}

  [[nodiscard]] std::string name() const override { return "weighted-graph"; }
  [[nodiscard]] Allocation allocate(const std::vector<TaskProfile>& profiles,
                                    std::size_t groups) override;

 private:
  MinCutMethod method_;
  std::uint64_t seed_;
};

}  // namespace symbiosis::sched
