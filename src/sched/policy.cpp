#include "sched/policy.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "sched/interference_graph.hpp"
#include "sched/multithread.hpp"
#include "sched/weight_sort.hpp"
#include "util/rng.hpp"

namespace symbiosis::sched {

Allocation DefaultAllocator::allocate(const std::vector<TaskProfile>& profiles,
                                      std::size_t groups) {
  if (groups == 0) throw std::invalid_argument("DefaultAllocator: groups must be > 0");
  Allocation alloc;
  alloc.groups = groups;
  alloc.group_of.resize(profiles.size());
  for (std::size_t i = 0; i < profiles.size(); ++i) alloc.group_of[i] = i % groups;
  return alloc;
}

Allocation RandomAllocator::allocate(const std::vector<TaskProfile>& profiles,
                                     std::size_t groups) {
  if (groups == 0) throw std::invalid_argument("RandomAllocator: groups must be > 0");
  const std::size_t n = profiles.size();
  const auto sizes = balanced_group_sizes(std::max(n, groups), groups);

  std::vector<std::size_t> slots;
  slots.reserve(n);
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t k = 0; k < sizes[g] && slots.size() < n; ++k) slots.push_back(g);
  }
  util::Rng rng(seed_);
  rng.shuffle(slots);

  Allocation alloc;
  alloc.groups = groups;
  alloc.group_of = std::move(slots);
  return alloc;
}

Allocation MissRateAllocator::allocate(const std::vector<TaskProfile>& profiles,
                                       std::size_t groups) {
  if (groups == 0) throw std::invalid_argument("MissRateAllocator: groups must be > 0");
  const std::size_t n = profiles.size();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return profiles[a].l2_misses_per_kilo_instr > profiles[b].l2_misses_per_kilo_instr;
  });

  const std::size_t group_size = (n + groups - 1) / groups;
  Allocation alloc;
  alloc.groups = groups;
  alloc.group_of.assign(n, 0);
  for (std::size_t rank = 0; rank < n; ++rank) {
    alloc.group_of[order[rank]] = std::min(rank / group_size, groups - 1);
  }
  return alloc;
}

std::unique_ptr<Allocator> make_allocator(const std::string& name, std::uint64_t seed) {
  if (name == "default") return std::make_unique<DefaultAllocator>();
  if (name == "random") return std::make_unique<RandomAllocator>(seed);
  if (name == "miss-rate") return std::make_unique<MissRateAllocator>();
  if (name == "weight-sort") return std::make_unique<WeightSortAllocator>();
  if (name == "graph") {
    return std::make_unique<InterferenceGraphAllocator>(MinCutMethod::Auto, seed);
  }
  if (name == "weighted-graph") {
    return std::make_unique<WeightedGraphAllocator>(MinCutMethod::Auto, seed);
  }
  if (name == "multithread") {
    return std::make_unique<MultiThreadAllocator>(MinCutMethod::Auto, seed);
  }
  throw std::invalid_argument("unknown allocator: " + name);
}

}  // namespace symbiosis::sched
