#include "sched/mincut.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/hotpath.hpp"

namespace symbiosis::sched {

std::string to_string(MinCutMethod method) {
  switch (method) {
    case MinCutMethod::Exhaustive: return "exhaustive";
    case MinCutMethod::Greedy: return "greedy";
    case MinCutMethod::KernighanLin: return "kernighan-lin";
    case MinCutMethod::Spectral: return "spectral";
    case MinCutMethod::Auto: return "auto";
  }
  return "?";
}

MinCutMethod parse_mincut_method(const std::string& name) {
  if (name == "exhaustive") return MinCutMethod::Exhaustive;
  if (name == "greedy") return MinCutMethod::Greedy;
  if (name == "kernighan-lin") return MinCutMethod::KernighanLin;
  if (name == "spectral") return MinCutMethod::Spectral;
  if (name == "auto") return MinCutMethod::Auto;
  throw std::invalid_argument("unknown mincut method: " + name);
}

SYM_HOT double cut_weight(const SymMatrix& w, const Allocation& alloc) {
  double total = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    for (std::size_t j = i + 1; j < w.size(); ++j) {
      if (alloc.group_of[i] != alloc.group_of[j]) total += w.at(i, j);
    }
  }
  return total;
}

SYM_HOT double intra_weight(const SymMatrix& w, const Allocation& alloc) {
  double total = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    for (std::size_t j = i + 1; j < w.size(); ++j) {
      if (alloc.group_of[i] == alloc.group_of[j]) total += w.at(i, j);
    }
  }
  return total;
}

namespace {

/// Exhaustive optimal balanced 2..k-way cut via full enumeration.
Allocation solve_exhaustive(const SymMatrix& w, std::size_t groups) {
  const auto candidates = enumerate_balanced_allocations(w.size(), groups);
  const Allocation* best = nullptr;
  double best_cut = std::numeric_limits<double>::infinity();
  for (const auto& alloc : candidates) {
    const double cut = cut_weight(w, alloc);
    if (cut < best_cut) {
      best_cut = cut;
      best = &alloc;
    }
  }
  SYM_CHECK(best != nullptr, "sched.mincut") << "no candidate allocation enumerated";
  return *best;
}

/// Greedy constructive: repeatedly place the node with the largest
/// attraction (edge weight into a group) into the fullest-attracting group
/// with spare capacity. Attraction INSIDE a group is what we maximize.
Allocation solve_greedy(const SymMatrix& w, std::size_t groups) {
  const std::size_t n = w.size();
  auto capacity = balanced_group_sizes(n, groups);
  Allocation alloc;
  alloc.groups = groups;
  alloc.group_of.assign(n, static_cast<std::size_t>(-1));

  // Seed each group with one endpoint of the heaviest remaining edges so
  // hostile pairs start together rather than apart.
  std::vector<bool> placed(n, false);
  std::size_t placed_count = 0;

  // Seed group 0 with the heaviest edge's endpoints (they interfere most,
  // so they belong on the same core).
  double best_w = -1.0;
  std::size_t bi = 0, bj = (n > 1) ? 1 : 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (w.at(i, j) > best_w) {
        best_w = w.at(i, j);
        bi = i;
        bj = j;
      }
    }
  }
  alloc.group_of[bi] = 0;
  placed[bi] = true;
  ++placed_count;
  if (n > 1 && capacity[0] >= 2) {
    alloc.group_of[bj] = 0;
    placed[bj] = true;
    ++placed_count;
  }

  while (placed_count < n) {
    // Pick the unplaced node and target group with maximum gain.
    double best_gain = -std::numeric_limits<double>::infinity();
    std::size_t best_node = 0, best_group = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (placed[i]) continue;
      for (std::size_t g = 0; g < groups; ++g) {
        std::size_t used = 0;
        double gain = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
          if (alloc.group_of[j] == g) {
            ++used;
            gain += w.at(i, j);
          }
        }
        if (used >= capacity[g]) continue;
        // Prefer attaching to emptier groups on ties so seeds spread out.
        gain -= 1e-9 * static_cast<double>(used);
        if (gain > best_gain) {
          best_gain = gain;
          best_node = i;
          best_group = g;
        }
      }
    }
    alloc.group_of[best_node] = best_group;
    placed[best_node] = true;
    ++placed_count;
  }
  return alloc;
}

/// Kernighan–Lin style refinement: keep applying the single best
/// cross-group pair swap while it reduces the cut.
void kl_refine(const SymMatrix& w, Allocation& alloc) {
  const std::size_t n = w.size();
  bool improved = true;
  std::size_t rounds = 0;
  while (improved && rounds < 4 * n) {
    improved = false;
    ++rounds;
    double best_delta = -1e-12;
    std::size_t best_i = 0, best_j = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (alloc.group_of[i] == alloc.group_of[j]) continue;
        // Gain in intra-group weight if i and j swap groups: i's old group
        // trades its w(i,·) terms for w(j,·) and vice versa.
        double delta = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
          if (k == i || k == j) continue;
          const bool k_with_i = alloc.group_of[k] == alloc.group_of[i];
          const bool k_with_j = alloc.group_of[k] == alloc.group_of[j];
          if (k_with_i) delta += w.at(j, k) - w.at(i, k);
          if (k_with_j) delta += w.at(i, k) - w.at(j, k);
        }
        // delta > 0 means the swap moves weight INTO groups (cut shrinks).
        if (delta > best_delta + 1e-12) {
          best_delta = delta;
          best_i = i;
          best_j = j;
          improved = true;
        }
      }
    }
    if (improved) std::swap(alloc.group_of[best_i], alloc.group_of[best_j]);
  }
  static obs::Counter& kl_passes = obs::counter("sched.mincut.kl_passes");
  kl_passes.add(rounds);
}

/// Fiedler-style spectral bisection: power-iterate M = (c·I − L) with the
/// all-ones direction deflated; the dominant remaining eigenvector is the
/// Laplacian's second-smallest (the Fiedler vector). A balanced split at
/// the median minimizes cut in the relaxation; KL polishes the rounding.
Allocation solve_spectral_2way(const SymMatrix& w, std::uint64_t seed) {
  const std::size_t n = w.size();
  std::vector<double> degree(n, 0.0);
  double max_degree = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) degree[i] += w.at(i, j);
    }
    max_degree = std::max(max_degree, degree[i]);
  }
  const double shift = max_degree + 1.0;

  util::Rng rng(seed);
  std::vector<double> v(n), next(n);
  for (auto& x : v) x = rng.next_double() - 0.5;

  auto deflate_and_normalize = [&](std::vector<double>& x) {
    const double mean = std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(n);
    for (auto& e : x) e -= mean;  // project out the all-ones eigenvector
    double norm = 0.0;
    for (const auto e : x) norm += e * e;
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      // Degenerate (e.g. all weights equal): fall back to an arbitrary
      // alternating direction.
      for (std::size_t i = 0; i < n; ++i) x[i] = (i % 2) ? 1.0 : -1.0;
      norm = std::sqrt(static_cast<double>(n));
    }
    for (auto& e : x) e /= norm;
  };

  deflate_and_normalize(v);
  for (int iter = 0; iter < 200; ++iter) {
    // next = (shift*I - L) v = shift*v - D*v + W*v
    for (std::size_t i = 0; i < n; ++i) {
      double acc = (shift - degree[i]) * v[i];
      for (std::size_t j = 0; j < n; ++j) {
        if (i != j) acc += w.at(i, j) * v[j];
      }
      next[i] = acc;
    }
    deflate_and_normalize(next);
    v.swap(next);
  }

  // Balanced median split over the Fiedler coordinates.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });

  Allocation alloc;
  alloc.groups = 2;
  alloc.group_of.assign(n, 0);
  const auto sizes = balanced_group_sizes(n, 2);
  for (std::size_t r = sizes[0]; r < n; ++r) alloc.group_of[order[r]] = 1;
  kl_refine(w, alloc);
  return alloc;
}

Allocation solve_2way(const SymMatrix& w, MinCutMethod method, std::uint64_t seed) {
  switch (method) {
    case MinCutMethod::Exhaustive:
      return solve_exhaustive(w, 2);
    case MinCutMethod::Greedy:
      return solve_greedy(w, 2);
    case MinCutMethod::KernighanLin: {
      Allocation alloc = solve_greedy(w, 2);
      kl_refine(w, alloc);
      return alloc;
    }
    case MinCutMethod::Spectral:
      return solve_spectral_2way(w, seed);
    case MinCutMethod::Auto:
      if (w.size() <= 16) return solve_exhaustive(w, 2);
      return solve_spectral_2way(w, seed);
  }
  throw std::invalid_argument("solve_2way: bad method");
}

/// Restrict @p w to @p nodes.
SymMatrix submatrix(const SymMatrix& w, const std::vector<std::size_t>& nodes) {
  SymMatrix sub(nodes.size());
  for (std::size_t a = 0; a < nodes.size(); ++a) {
    for (std::size_t b = a + 1; b < nodes.size(); ++b) {
      sub.set(a, b, w.at(nodes[a], nodes[b]));
    }
  }
  return sub;
}

/// Hierarchical k-way: bisect, then recurse on each side (§3.3.2).
void hierarchical(const SymMatrix& w, const std::vector<std::size_t>& nodes, std::size_t groups,
                  MinCutMethod method, std::uint64_t seed, std::size_t group_base,
                  Allocation& out) {
  if (groups == 1) {
    for (const auto node : nodes) out.group_of[node] = group_base;
    return;
  }
  const SymMatrix sub = submatrix(w, nodes);
  const std::size_t left_groups = groups / 2;
  const std::size_t right_groups = groups - left_groups;

  Allocation split;
  if (left_groups == right_groups) {
    split = solve_2way(sub, method, seed);
  } else {
    // Unequal halves (odd group counts): split node counts proportionally
    // by solving a capacity-respecting greedy + KL pass.
    split = solve_greedy(sub, 2);
    kl_refine(sub, split);
  }

  std::vector<std::size_t> left, right;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    (split.group_of[i] == 0 ? left : right).push_back(nodes[i]);
  }
  hierarchical(w, left, left_groups, method, seed * 2 + 1, group_base, out);
  hierarchical(w, right, right_groups, method, seed * 2 + 2, group_base + left_groups, out);
}

}  // namespace

namespace {

/// Partition-balance postcondition (category "sched.partition"): every task
/// is labelled with an in-range group and no group is empty. When
/// @p exact_balance is set (2-way and exhaustive paths guarantee it), group
/// sizes must additionally match balanced_group_sizes up to permutation; the
/// hierarchical path with odd group counts may drift by more than one task,
/// so it only gets the weak form.
Allocation checked(Allocation alloc, std::size_t tasks, std::size_t groups, bool exact_balance) {
  SYM_CHECK_EQ(alloc.group_of.size(), tasks, "sched.partition");
  SYM_CHECK_EQ(alloc.groups, groups, "sched.partition");
  std::vector<std::size_t> sizes(groups, 0);
  for (const auto g : alloc.group_of) {
    SYM_CHECK_BOUNDS(g, groups, "sched.partition") << "task labelled with out-of-range group";
    ++sizes[g];
  }
  for (std::size_t g = 0; g < groups; ++g) {
    SYM_CHECK(sizes[g] > 0, "sched.partition") << "group " << g << " left empty";
  }
  if (exact_balance) {
    auto want = balanced_group_sizes(tasks, groups);
    std::sort(sizes.begin(), sizes.end());
    std::sort(want.begin(), want.end());
    SYM_CHECK(sizes == want, "sched.partition") << "group sizes not balanced";
  }
  return alloc;
}

}  // namespace

Allocation balanced_min_cut(const SymMatrix& w, std::size_t groups, MinCutMethod method,
                            std::uint64_t seed) {
  if (groups == 0) throw std::invalid_argument("balanced_min_cut: groups must be > 0");
  if (w.size() < groups) throw std::invalid_argument("balanced_min_cut: fewer nodes than groups");
  static obs::Counter& solves = obs::counter("sched.mincut.solves");
  solves.add(1);

  Allocation out;
  out.groups = groups;
  out.group_of.assign(w.size(), 0);
  if (groups == 1) return out;

  if (groups == 2) return checked(solve_2way(w, method, seed), w.size(), groups, true);

  // Exhaustive k-way stays exact when small enough.
  if (method == MinCutMethod::Exhaustive ||
      (method == MinCutMethod::Auto && w.size() <= 12 && groups <= 4)) {
    return checked(solve_exhaustive(w, groups), w.size(), groups, true);
  }

  std::vector<std::size_t> nodes(w.size());
  std::iota(nodes.begin(), nodes.end(), std::size_t{0});
  hierarchical(w, nodes, groups, method, seed, 0, out);
  return checked(std::move(out), w.size(), groups, false);
}

}  // namespace symbiosis::sched
