#include "sched/multithread.hpp"

#include <map>
#include <stdexcept>

#include "sched/weight_sort.hpp"

namespace symbiosis::sched {

std::vector<std::size_t> MultiThreadAllocator::phase1_groups(
    const std::vector<TaskProfile>& profiles, std::size_t groups) {
  std::vector<std::size_t> result(profiles.size(), 0);

  std::map<std::size_t, std::vector<std::size_t>> by_pid;
  for (std::size_t i = 0; i < profiles.size(); ++i) by_pid[profiles[i].pid].push_back(i);

  WeightSortAllocator weight_sort;
  for (const auto& [pid, members] : by_pid) {
    if (members.size() <= 1) continue;  // single-threaded: nothing to split
    std::vector<TaskProfile> subset;
    subset.reserve(members.size());
    for (const auto idx : members) subset.push_back(profiles[idx]);
    const std::size_t sub_groups = std::min(groups, members.size());
    const Allocation intra = weight_sort.allocate(subset, sub_groups);
    for (std::size_t k = 0; k < members.size(); ++k) {
      result[members[k]] = intra.group_of[k];
    }
  }
  return result;
}

Allocation MultiThreadAllocator::allocate(const std::vector<TaskProfile>& profiles,
                                          std::size_t groups) {
  if (profiles.size() < groups) {
    throw std::invalid_argument("MultiThreadAllocator: fewer threads than groups");
  }

  // Phase 1: intra-process thread grouping by occupancy weight (§3.3.1).
  const std::vector<std::size_t> phase1 = phase1_groups(profiles, groups);

  // Phase 2: weighted interference graph over all threads (§3.3.3) with
  // intra-process edges pinned by the phase-1 verdict.
  SymMatrix w = build_interference_graph(profiles, /*weighted=*/true);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    for (std::size_t j = i + 1; j < profiles.size(); ++j) {
      if (profiles[i].pid != profiles[j].pid) continue;
      w.set(i, j, phase1[i] == phase1[j] ? kPinnedWeight : 0.0);
    }
  }
  return balanced_min_cut(w, groups, method_, seed_);
}

}  // namespace symbiosis::sched
