// multithread.hpp — §3.3.4, two-phase allocation for multi-threaded apps.
//
// Threads of one process share data, so their raw mutual "interference" is
// high for the WRONG reason. Phase 1 therefore partitions each process's
// threads by occupancy-weight sorting (ignoring symbiosis); phase 2 runs
// the weighted interference-graph algorithm over ALL threads with the
// intra-process edges pinned — a very large weight for thread pairs that
// phase 1 co-located (MIN-CUT must keep them together) and zero for pairs
// it separated.
#pragma once

#include "sched/interference_graph.hpp"
#include "sched/policy.hpp"

namespace symbiosis::sched {

class MultiThreadAllocator final : public Allocator {
 public:
  /// Edge weight pinning phase-1 co-located thread pairs together; must
  /// dwarf any realizable weighted interference (occupancy ≤ filter
  /// entries, interference ≤ 1).
  static constexpr double kPinnedWeight = 1e12;

  explicit MultiThreadAllocator(MinCutMethod method = MinCutMethod::Auto, std::uint64_t seed = 1)
      : method_(method), seed_(seed) {}

  [[nodiscard]] std::string name() const override { return "multithread"; }
  [[nodiscard]] Allocation allocate(const std::vector<TaskProfile>& profiles,
                                    std::size_t groups) override;

  /// Exposed for tests: the phase-1 intra-process grouping (thread profile
  /// index → phase-1 group within its process).
  [[nodiscard]] static std::vector<std::size_t> phase1_groups(
      const std::vector<TaskProfile>& profiles, std::size_t groups);

 private:
  MinCutMethod method_;
  std::uint64_t seed_;
};

}  // namespace symbiosis::sched
