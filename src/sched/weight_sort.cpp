#include "sched/weight_sort.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace symbiosis::sched {

Allocation WeightSortAllocator::allocate(const std::vector<TaskProfile>& profiles,
                                         std::size_t groups) {
  if (groups == 0) throw std::invalid_argument("WeightSortAllocator: groups must be > 0");
  const std::size_t n = profiles.size();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return profiles[a].occupancy_weight > profiles[b].occupancy_weight;
  });

  // Group size ⌈P/N⌉ (§3.3.1); the final group may be smaller.
  const std::size_t group_size = (n + groups - 1) / groups;
  Allocation alloc;
  alloc.groups = groups;
  alloc.group_of.assign(n, 0);
  for (std::size_t rank = 0; rank < n; ++rank) {
    alloc.group_of[order[rank]] = std::min(rank / group_size, groups - 1);
  }
  return alloc;
}

}  // namespace symbiosis::sched
