#include "sched/interference_graph.hpp"

#include <stdexcept>

namespace symbiosis::sched {

SymMatrix build_interference_graph(const std::vector<TaskProfile>& profiles, bool weighted) {
  const std::size_t n = profiles.size();
  SymMatrix w(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      // Directed contribution Pi→Pj: Pi's interference with Pj's core.
      double contribution = profiles[i].interference_with(profiles[j].last_core);
      if (weighted) contribution *= profiles[i].occupancy_weight;  // §3.3.3
      w.add(i, j, contribution);  // consolidation: both directions sum here
    }
  }
  return w;
}

Allocation InterferenceGraphAllocator::allocate(const std::vector<TaskProfile>& profiles,
                                                std::size_t groups) {
  if (profiles.size() < groups) {
    throw std::invalid_argument("InterferenceGraphAllocator: fewer tasks than groups");
  }
  const SymMatrix w = build_interference_graph(profiles, /*weighted=*/false);
  return balanced_min_cut(w, groups, method_, seed_);
}

Allocation WeightedGraphAllocator::allocate(const std::vector<TaskProfile>& profiles,
                                            std::size_t groups) {
  if (profiles.size() < groups) {
    throw std::invalid_argument("WeightedGraphAllocator: fewer tasks than groups");
  }
  const SymMatrix w = build_interference_graph(profiles, /*weighted=*/true);
  return balanced_min_cut(w, groups, method_, seed_);
}

}  // namespace symbiosis::sched
