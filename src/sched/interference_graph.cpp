#include "sched/interference_graph.hpp"

#include <stdexcept>

#include "obs/recorder.hpp"

namespace symbiosis::sched {

namespace {

/// Flight-recorder payload for one graph-based allocator decision: the
/// upper triangle of @p w plus the cut/intra split of the chosen mapping.
/// Only built when the recorder is enabled (SYM_RECORD skips the call).
[[maybe_unused]] obs::AllocatorDecisionEvent decision_event(const std::string& allocator,
                                                            const SymMatrix& w,
                                                            const Allocation& alloc) {
  obs::AllocatorDecisionEvent ev;
  ev.allocator = allocator;
  ev.chosen_key = alloc.key();
  ev.tasks = w.size();
  ev.cut_weight = cut_weight(w, alloc);
  ev.intra_weight = intra_weight(w, alloc);
  ev.edge_weights.reserve(w.size() * (w.size() - 1) / 2);
  for (std::size_t i = 0; i < w.size(); ++i) {
    for (std::size_t j = i + 1; j < w.size(); ++j) ev.edge_weights.push_back(w.at(i, j));
  }
  return ev;
}

}  // namespace

SymMatrix build_interference_graph(const std::vector<TaskProfile>& profiles, bool weighted) {
  const std::size_t n = profiles.size();
  SymMatrix w(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      // Directed contribution Pi→Pj: Pi's interference with Pj's core.
      double contribution = profiles[i].interference_with(profiles[j].last_core);
      if (weighted) contribution *= profiles[i].occupancy_weight;  // §3.3.3
      w.add(i, j, contribution);  // consolidation: both directions sum here
    }
  }
  return w;
}

Allocation InterferenceGraphAllocator::allocate(const std::vector<TaskProfile>& profiles,
                                                std::size_t groups) {
  if (profiles.size() < groups) {
    throw std::invalid_argument("InterferenceGraphAllocator: fewer tasks than groups");
  }
  const SymMatrix w = build_interference_graph(profiles, /*weighted=*/false);
  Allocation alloc = balanced_min_cut(w, groups, method_, seed_);
  SYM_RECORD(decision_event(name(), w, alloc));
  return alloc;
}

Allocation WeightedGraphAllocator::allocate(const std::vector<TaskProfile>& profiles,
                                            std::size_t groups) {
  if (profiles.size() < groups) {
    throw std::invalid_argument("WeightedGraphAllocator: fewer tasks than groups");
  }
  const SymMatrix w = build_interference_graph(profiles, /*weighted=*/true);
  Allocation alloc = balanced_min_cut(w, groups, method_, seed_);
  SYM_RECORD(decision_event(name(), w, alloc));
  return alloc;
}

}  // namespace symbiosis::sched
