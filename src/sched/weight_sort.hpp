// weight_sort.hpp — §3.3.1, the Weight Sorting Algorithm.
//
// Sort processes by RBV occupancy weight and group them in sorted order:
// the ⌈P/N⌉ heaviest processes share one core, the next chunk the next
// core, and so on. Heavy-footprint processes end up time-sliced on the
// same core instead of simultaneously thrashing the shared L2.
#pragma once

#include "sched/policy.hpp"

namespace symbiosis::sched {

class WeightSortAllocator final : public Allocator {
 public:
  [[nodiscard]] std::string name() const override { return "weight-sort"; }
  [[nodiscard]] Allocation allocate(const std::vector<TaskProfile>& profiles,
                                    std::size_t groups) override;
};

}  // namespace symbiosis::sched
