// mincut.hpp — balanced MIN-CUT solvers over interference graphs.
//
// §3.3.2: the interference-graph algorithms need a balanced partition that
// MINIMIZES inter-group edge weight (equivalently maximizes intra-group
// interference, so mutually hostile processes share a core and time-slice
// instead of thrashing each other). The paper used an SDP solver; its
// graphs have tens of nodes, so we provide:
//   * Exhaustive  — provably optimal for small n (the paper-scale regime);
//   * Greedy      — heaviest-edge constructive seeding;
//   * KernighanLin— classic pairwise-swap refinement of a greedy seed;
//   * Spectral    — Fiedler-vector embedding (power iteration with
//                   deflation) + balanced median split + KL polish, the
//                   moral equivalent of SDP relaxation + rounding;
//   * Auto        — Exhaustive when feasible, else Spectral.
// For more than two groups the solvers recurse hierarchically, exactly as
// §3.3.2 prescribes for quad-core machines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/allocation.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace symbiosis::sched {

/// Dense symmetric non-negative weight matrix (zero diagonal).
class SymMatrix {
 public:
  SymMatrix() = default;
  explicit SymMatrix(std::size_t n) : n_(n), w_(n * n, 0.0) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  /// Unchecked in release builds: at() sits inside the allocators'
  /// per-candidate O(n^2) evaluation loops (cut_weight/intra_weight are
  /// SYM_HOT roots), where vector::at's throw path would put an exception
  /// edge on every decision. Debug builds keep the bounds check.
  [[nodiscard]] double at(std::size_t i, std::size_t j) const noexcept {
    SYM_DCHECK_BOUNDS(i, n_, "sched.mincut");
    SYM_DCHECK_BOUNDS(j, n_, "sched.mincut");
    return w_[i * n_ + j];
  }
  void set(std::size_t i, std::size_t j, double v) {
    w_.at(i * n_ + j) = v;
    w_.at(j * n_ + i) = v;
  }
  void add(std::size_t i, std::size_t j, double v) {
    if (i == j) return;
    w_.at(i * n_ + j) += v;
    w_.at(j * n_ + i) += v;
  }

 private:
  std::size_t n_ = 0;
  std::vector<double> w_;
};

enum class MinCutMethod { Exhaustive, Greedy, KernighanLin, Spectral, Auto };

[[nodiscard]] std::string to_string(MinCutMethod method);
[[nodiscard]] MinCutMethod parse_mincut_method(const std::string& name);

/// Sum of weights crossing group boundaries (the objective to minimize).
[[nodiscard]] double cut_weight(const SymMatrix& w, const Allocation& alloc);

/// Sum of weights inside groups (the dual objective to maximize).
[[nodiscard]] double intra_weight(const SymMatrix& w, const Allocation& alloc);

/// Partition n = w.size() nodes into @p groups balanced groups minimizing
/// the cut. @p seed feeds the spectral tie-break randomization only —
/// results are deterministic for a fixed seed.
[[nodiscard]] Allocation balanced_min_cut(const SymMatrix& w, std::size_t groups,
                                          MinCutMethod method = MinCutMethod::Auto,
                                          std::uint64_t seed = 1);

}  // namespace symbiosis::sched
