// policy.hpp — the resource-allocation policy interface and baselines.
//
// §3.2: allocation decisions are made in a user-level monitoring process
// that periodically reads the per-process signature structures from the OS
// and writes back affinity assignments. Policies therefore consume only a
// TaskProfile snapshot — never the machine itself.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/allocation.hpp"

namespace symbiosis::sched {

/// Per-task snapshot handed to a policy (one allocator invocation's view).
struct TaskProfile {
  std::size_t task_index = 0;  ///< position in the profile vector
  std::size_t pid = 0;         ///< threads of one process share a pid
  std::string name;

  // Bloom-filter signature aggregates (window means; §3.1 metrics):
  double occupancy_weight = 0.0;           ///< mean popcount(RBV)
  std::vector<double> symbiosis_per_core;  ///< mean popcount(RBV ⊕ CF[c])
  std::size_t last_core = 0;

  // Conventional event counters (for the miss-rate baseline of §6 / [40]):
  double l2_miss_rate = 0.0;
  double l2_misses_per_kilo_instr = 0.0;

  /// Interference metric with @p core: 1 / symbiosis, clamped (§3.3.2).
  [[nodiscard]] double interference_with(std::size_t core) const {
    const double sym = core < symbiosis_per_core.size() ? symbiosis_per_core[core] : 0.0;
    return sym < 1.0 ? 1.0 : 1.0 / sym;
  }
};

/// A resource-allocation policy: profiles in, process→group mapping out.
class Allocator {
 public:
  virtual ~Allocator() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// @param groups number of cores to fill (= groups in the result)
  [[nodiscard]] virtual Allocation allocate(const std::vector<TaskProfile>& profiles,
                                            std::size_t groups) = 0;
};

// --- baselines (not from the paper's §3.3; used as comparison anchors) ---

/// OS-default placement: tasks spread round-robin in arrival order (what
/// the paper's Fig 14 calls the "default schedule").
class DefaultAllocator final : public Allocator {
 public:
  [[nodiscard]] std::string name() const override { return "default"; }
  [[nodiscard]] Allocation allocate(const std::vector<TaskProfile>& profiles,
                                    std::size_t groups) override;
};

/// Uniform random balanced placement (deterministic for a fixed seed).
class RandomAllocator final : public Allocator {
 public:
  explicit RandomAllocator(std::uint64_t seed = 1) : seed_(seed) {}
  [[nodiscard]] std::string name() const override { return "random"; }
  [[nodiscard]] Allocation allocate(const std::vector<TaskProfile>& profiles,
                                    std::size_t groups) override;

 private:
  std::uint64_t seed_;
};

/// Related-work baseline ([40] and §2.2's critique): sort by L2 miss rate
/// and group the heaviest missers together. Uses exactly the weight-sorting
/// structure but with miss rate instead of the footprint signature —
/// isolating the value of the Bloom-filter occupancy weight.
class MissRateAllocator final : public Allocator {
 public:
  [[nodiscard]] std::string name() const override { return "miss-rate"; }
  [[nodiscard]] Allocation allocate(const std::vector<TaskProfile>& profiles,
                                    std::size_t groups) override;
};

/// Registry: "default" | "random" | "miss-rate" | "weight-sort" | "graph" |
/// "weighted-graph" | "multithread"; throws std::invalid_argument on
/// unknown names.
[[nodiscard]] std::unique_ptr<Allocator> make_allocator(const std::string& name,
                                                        std::uint64_t seed = 1);

}  // namespace symbiosis::sched
