#include "sched/allocation.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace symbiosis::sched {

std::vector<std::size_t> Allocation::members(std::size_t group) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < group_of.size(); ++i) {
    if (group_of[i] == group) out.push_back(i);
  }
  return out;
}

Allocation Allocation::canonical() const {
  Allocation out;
  out.groups = groups;
  out.group_of.resize(group_of.size());
  std::vector<std::size_t> relabel(groups, static_cast<std::size_t>(-1));
  std::size_t next = 0;
  for (std::size_t i = 0; i < group_of.size(); ++i) {
    auto& label = relabel.at(group_of[i]);
    if (label == static_cast<std::size_t>(-1)) label = next++;
    out.group_of[i] = label;
  }
  return out;
}

std::string Allocation::key() const {
  const Allocation canon = canonical();
  std::string out;
  for (std::size_t i = 0; i < canon.group_of.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(canon.group_of[i]);
  }
  return out;
}

std::string Allocation::describe(const std::vector<std::string>& names) const {
  std::string out = "{";
  for (std::size_t g = 0; g < groups; ++g) {
    if (g) out += " | ";
    bool first = true;
    for (std::size_t i = 0; i < group_of.size(); ++i) {
      if (group_of[i] != g) continue;
      if (!first) out += ",";
      out += i < names.size() ? names[i] : std::to_string(i);
      first = false;
    }
  }
  out += "}";
  return out;
}

bool Allocation::operator==(const Allocation& other) const noexcept {
  if (group_of.size() != other.group_of.size() || groups != other.groups) return false;
  return canonical().group_of == other.canonical().group_of;
}

std::vector<std::size_t> balanced_group_sizes(std::size_t tasks, std::size_t groups) {
  if (groups == 0 || tasks < groups) {
    throw std::invalid_argument("balanced_group_sizes: need tasks >= groups >= 1");
  }
  std::vector<std::size_t> sizes(groups, tasks / groups);
  for (std::size_t i = 0; i < tasks % groups; ++i) ++sizes[i];
  return sizes;
}

namespace {

void enumerate_rec(std::size_t task, std::vector<std::size_t>& assignment,
                   std::vector<std::size_t>& remaining, std::vector<Allocation>& out) {
  const std::size_t tasks = assignment.size();
  const std::size_t groups = remaining.size();
  if (task == tasks) {
    Allocation alloc;
    alloc.group_of = assignment;
    alloc.groups = groups;
    out.push_back(alloc.canonical());
    return;
  }
  for (std::size_t g = 0; g < groups; ++g) {
    if (remaining[g] == 0) continue;
    assignment[task] = g;
    --remaining[g];
    enumerate_rec(task + 1, assignment, remaining, out);
    ++remaining[g];
  }
}

}  // namespace

std::vector<Allocation> enumerate_balanced_allocations(std::size_t tasks, std::size_t groups) {
  auto sizes = balanced_group_sizes(tasks, groups);
  // Multinomial guard: this enumeration is meant for the paper's small
  // mixes (e.g. 4 tasks / 2 cores → 3 mappings), not for bulk search.
  double combos = 1.0;
  std::size_t left = tasks;
  for (const auto s : sizes) {
    for (std::size_t i = 0; i < s; ++i) combos *= static_cast<double>(left--) /
                                                  static_cast<double>(i + 1);
  }
  if (combos > 2e6) {
    throw std::invalid_argument("enumerate_balanced_allocations: too many mappings");
  }
  std::vector<std::size_t> assignment(tasks, 0);
  std::vector<Allocation> out;
  enumerate_rec(0, assignment, sizes, out);
  // Group labels are interchangeable; identical schedules canonicalize
  // equal — dedupe them.
  std::sort(out.begin(), out.end(),
            [](const Allocation& a, const Allocation& b) { return a.group_of < b.group_of; });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Allocation& a, const Allocation& b) {
                          return a.group_of == b.group_of;
                        }),
            out.end());
  // Postcondition: every surviving mapping respects the balanced sizes (the
  // recursion's remaining[] bookkeeping guarantees it; this guards refactors).
  for (const auto& alloc : out) {
    std::vector<std::size_t> got(groups, 0);
    for (const auto g : alloc.group_of) ++got[g];
    std::sort(got.begin(), got.end());
    std::vector<std::size_t> want = sizes;
    std::sort(want.begin(), want.end());
    SYM_DCHECK(got == want, "sched.partition") << "enumerated mapping is unbalanced";
  }
  return out;
}

}  // namespace symbiosis::sched
