// trace_source.hpp — one interface for "where do a process's steps come
// from": synthetic generators or .symt trace files.
//
// The Machine consumes TaskStreams; a TraceSource is the factory that
// describes one PROCESS (possibly multi-threaded) and mints one TaskStream
// per thread. Machine::add_process() walks any source, so drivers switch a
// run between synthetic generation and trace replay by swapping the source,
// nothing else:
//
//   SyntheticSource mcf(make_spec_benchmark("mcf"), base, seed);   // 1 thread
//   SymtSource trace(std::make_shared<SymtTrace>(SymtTrace::open(p)), "app");
//   machine.add_process(mcf);      // identical call shape
//   machine.add_process(trace);    // one task per trace thread, shared pid
//
// SymtSource streams yield Step{gap, addr, is_write} from the thread's
// records. Synchronization records are NOT enforceable on this path (a
// TaskStream cannot block the machine's scheduler), so they are skipped and
// counted; sync-faithful replay is workload/replayer.hpp's job. Converted
// single-threaded synthetic traces carry no sync records, which is what
// makes generator→convert→machine replay bit-identical to direct
// generation.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/benchmark_model.hpp"
#include "workload/symt.hpp"

namespace symbiosis::workload {

/// A (possibly multi-threaded) process workload a Machine can admit.
class TraceSource {
 public:
  virtual ~TraceSource() = default;
  [[nodiscard]] virtual const std::string& name() const = 0;
  [[nodiscard]] virtual std::size_t num_threads() const = 0;
  /// Mint the TaskStream for @p thread (fresh state each call).
  [[nodiscard]] virtual std::unique_ptr<TaskStream> make_stream(std::size_t thread) const = 0;
};

/// Synthetic generator as a single-threaded source: every make_stream(0)
/// yields an identically seeded Workload, so repeated runs reproduce.
class SyntheticSource final : public TraceSource {
 public:
  SyntheticSource(BenchmarkSpec spec, Addr base, std::uint64_t seed)
      : spec_(std::move(spec)), base_(base), seed_(seed) {}

  [[nodiscard]] const std::string& name() const override { return spec_.name; }
  [[nodiscard]] std::size_t num_threads() const override { return 1; }
  [[nodiscard]] std::unique_ptr<TaskStream> make_stream(std::size_t thread) const override;

  [[nodiscard]] const BenchmarkSpec& spec() const noexcept { return spec_; }

 private:
  BenchmarkSpec spec_;
  Addr base_;
  std::uint64_t seed_;
};

/// TaskStream over one thread of a shared SymtTrace. Sync records are
/// skipped (counted in skipped_syncs()); see the header comment.
class SymtTaskStream final : public TaskStream {
 public:
  SymtTaskStream(std::shared_ptr<const SymtTrace> trace, std::size_t thread, std::string name);

  [[nodiscard]] Step next() override;
  [[nodiscard]] bool complete() const override { return issued_ >= total_refs_; }
  void restart() override;
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::uint64_t refs_issued() const override { return issued_; }
  [[nodiscard]] std::uint64_t total_refs() const override { return total_refs_; }

  [[nodiscard]] std::uint64_t skipped_syncs() const noexcept { return skipped_syncs_; }

 private:
  std::shared_ptr<const SymtTrace> trace_;
  std::size_t thread_;
  std::string name_;
  SymtCursor cursor_;
  std::uint64_t total_refs_ = 0;  ///< memory records only
  std::uint64_t issued_ = 0;
  std::uint64_t skipped_syncs_ = 0;
  Step last_{};
};

/// A .symt file as a process: one TaskStream per trace thread.
class SymtSource final : public TraceSource {
 public:
  /// @param trace shared so minted streams outlive the source safely.
  SymtSource(std::shared_ptr<const SymtTrace> trace, std::string name);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::size_t num_threads() const override { return trace_->num_threads(); }
  [[nodiscard]] std::unique_ptr<TaskStream> make_stream(std::size_t thread) const override;

  [[nodiscard]] const SymtTrace& trace() const noexcept { return *trace_; }

 private:
  std::shared_ptr<const SymtTrace> trace_;
  std::string name_;
};

// --- converters ------------------------------------------------------------

/// Record @p refs steps of @p stream into writer thread @p thread,
/// preserving compute gaps. Returns the number of steps recorded.
std::uint64_t record_stream(SymtWriter& writer, std::size_t thread, TaskStream& stream,
                            std::uint64_t refs);

/// Convert a mix of pool benchmarks to a multi-threaded .symt image: thread
/// i carries @p refs_per_thread references of benchmark names[i] generated
/// at machine-style disjoint base addresses with per-thread split seeds.
[[nodiscard]] std::vector<std::uint8_t> symt_from_benchmarks(
    const std::vector<std::string>& names, std::uint64_t refs_per_thread, std::uint64_t seed,
    const ScaleConfig& scale = {});

/// Direct-generation twin of replaying symt_from_benchmarks(...) with
/// TraceReplayer{chunk}: applies the same streams to @p hierarchy in the
/// same round-robin chunk interleaving WITHOUT going through the codec.
/// The trace-conformance suite and `trace_tools convert --verify` pin
/// generator→.symt→replay bit-identical to this.
cachesim::BatchSummary replay_generated(const std::vector<std::string>& names,
                                        std::uint64_t refs_per_thread, std::uint64_t seed,
                                        cachesim::Hierarchy& hierarchy, std::size_t chunk,
                                        const ScaleConfig& scale = {});

}  // namespace symbiosis::workload
