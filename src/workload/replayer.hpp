// replayer.hpp — multi-threaded, synchronization-aware .symt trace replay.
//
// Maps every trace thread onto a simulated core (thread t → core t mod
// num_cores) and drives the decoded reference stream straight through
// Hierarchy::access_batch in chunks. Inter-thread ordering is enforced
// deterministically, SynchroTrace-style: replay proceeds in rounds of
// round-robin thread visits, and a visit either applies the thread's next
// decoded chunk of memory references or retires exactly one sync event:
//
//   barrier b   — generation-counted over ALL trace threads: a thread's nth
//                 barrier retires only once every thread has arrived at its
//                 nth barrier (all arrivals must carry the same id);
//   lock/unlock — a global mutex per lock id; acquisition order is the
//                 round-robin arrival order, unlocking a lock the thread
//                 does not hold is a trace error;
//   signal e    — increments this thread's signal counter for event e;
//   wait e,p    — retires once thread p has signaled e more times than this
//                 thread has already consumed (one wait eats one signal).
//
// Because visits happen in a fixed order and each visit's effect depends
// only on per-thread cursor state plus this sync state, the replay is
// bit-identical regardless of how decoding is scheduled: the optional
// ThreadPool parallelizes chunk DECODING only, application stays serial and
// ordered. A round in which no thread makes progress while work remains is
// a deadlocked (malformed) trace and raises a diagnostic naming every
// blocked thread — never a hang.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cachesim/hierarchy.hpp"
#include "util/threadpool.hpp"
#include "workload/symt.hpp"

namespace symbiosis::workload {

struct ReplayOptions {
  /// Memory references decoded and applied per thread visit. Chunk size is
  /// NOT semantically neutral for multi-threaded traces (it is the
  /// interleaving granularity, like the machine's batch_steps), so equal
  /// chunk sizes — not just equal traces — are what the determinism and
  /// differential suites compare.
  std::size_t chunk = 4096;
  /// When set, chunk decoding fans out across the pool; replay application
  /// order is unchanged (bit-identical to pool == nullptr).
  util::ThreadPool* pool = nullptr;
};

/// Per-thread replay accounting.
struct ThreadReplayStats {
  std::uint64_t mem_refs = 0;
  std::uint64_t barriers = 0;
  std::uint64_t lock_acquires = 0;
  std::uint64_t lock_releases = 0;
  std::uint64_t signals = 0;
  std::uint64_t waits = 0;
  /// Visits spent blocked on a sync event (contention measure).
  std::uint64_t blocked_visits = 0;

  [[nodiscard]] bool operator==(const ThreadReplayStats&) const noexcept = default;
};

struct ReplayResult {
  cachesim::BatchSummary totals;
  std::vector<ThreadReplayStats> threads;
  std::uint64_t rounds = 0;
  std::uint64_t sync_events = 0;

  [[nodiscard]] bool operator==(const ReplayResult&) const noexcept = default;
};

/// One replay of @p trace into @p hierarchy. The hierarchy is NOT reset
/// first (callers compose warm-up phases); construct a fresh Hierarchy for
/// from-scratch replays. Throws std::runtime_error on malformed traces
/// (decode errors, unlock-without-hold, recursive lock, barrier id
/// mismatch, deadlock).
class TraceReplayer {
 public:
  TraceReplayer(const SymtTrace& trace, cachesim::Hierarchy& hierarchy,
                ReplayOptions options = {});

  /// Replay the whole trace; callable once per replayer instance.
  ReplayResult run();

 private:
  struct ThreadState {
    SymtCursor cursor;
    std::vector<cachesim::MemRef> buffer;
    std::size_t buffered = 0;
    bool has_sync = false;
    SymtRecord sync{};
    bool arrived = false;  ///< at the current barrier generation

    explicit ThreadState(SymtCursor c) : cursor(c) {}
    [[nodiscard]] bool exhausted() const noexcept {
      return buffered == 0 && !has_sync && cursor.done();
    }
  };

  void decode_one(ThreadState& ts);
  void decode_phase();
  /// Apply thread @p t's pending work; returns true if it made progress.
  bool visit(std::size_t t);
  /// The hot half of visit(): drive @p ts's decoded chunk through
  /// Hierarchy::access_batch and fold the summary into the result. A
  /// SYM_HOT root; the sync/control plane (retire_sync, with its std::map
  /// bookkeeping and trace-error throws) deliberately stays outside it.
  bool apply_chunk(std::size_t t, ThreadState& ts);
  bool retire_sync(std::size_t t);
  [[noreturn]] void report_deadlock() const;

  const SymtTrace& trace_;
  cachesim::Hierarchy& hierarchy_;
  ReplayOptions options_;
  std::vector<ThreadState> threads_;
  ReplayResult result_;
  bool ran_ = false;

  // --- sync state (std::map: deterministic, and tiny next to the streams) --
  std::map<std::uint64_t, std::size_t> lock_owner_;
  /// (event id, signaling thread) → signals issued.
  std::map<std::pair<std::uint64_t, std::size_t>, std::uint64_t> signal_count_;
  /// (event id, partner, waiting thread) → signals consumed.
  std::map<std::tuple<std::uint64_t, std::size_t, std::size_t>, std::uint64_t> wait_consumed_;
  std::size_t barrier_arrivals_ = 0;
  std::uint64_t barrier_generation_ = 0;
  std::uint64_t barrier_id_ = 0;  ///< id of the in-progress generation
};

/// Convenience: replay @p trace into a fresh default-reset @p hierarchy.
ReplayResult replay_trace(const SymtTrace& trace, cachesim::Hierarchy& hierarchy,
                          ReplayOptions options = {});

}  // namespace symbiosis::workload
