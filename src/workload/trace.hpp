// trace.hpp — capture and replay of reference streams.
//
// The emulation phase can record the exact Step stream a workload produced
// and replay it later (deterministic A/B comparisons across signature
// configurations, and a path for plugging in externally captured traces).
// Binary format: "SYMT" magic, u32 version, u64 record count, then packed
// {u64 addr, u32 compute_instr, u8 is_write} records, little-endian.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/benchmark_model.hpp"

namespace symbiosis::workload {

/// Write a trace file; throws std::runtime_error on I/O failure.
class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void append(const Step& step);
  /// Finalize the header (record count) and close. Idempotent.
  void close();

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

 private:
  std::string path_;
  FILE* file_ = nullptr;
  std::uint64_t count_ = 0;
};

/// Load a whole trace into memory; throws std::runtime_error on bad files.
[[nodiscard]] std::vector<Step> read_trace(const std::string& path);

/// A TaskStream replaying a recorded step sequence. The stream reports
/// complete() after one pass; restart() rewinds (the machine layer uses
/// that for the paper's run-until-longest-finishes semantics).
class TraceStream final : public TaskStream {
 public:
  TraceStream(std::string name, std::vector<Step> steps);

  [[nodiscard]] Step next() override;
  [[nodiscard]] bool complete() const override { return pos_ >= steps_.size(); }
  void restart() override { pos_ = 0; }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::uint64_t refs_issued() const override { return pos_; }
  [[nodiscard]] std::uint64_t total_refs() const override { return steps_.size(); }

 private:
  std::string name_;
  std::vector<Step> steps_;
  std::size_t pos_ = 0;
};

}  // namespace symbiosis::workload
