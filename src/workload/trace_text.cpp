#include "workload/trace_text.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace symbiosis::workload {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("line " + std::to_string(line_no) + ": " + what);
}

std::uint64_t parse_u64(const std::string& token, std::size_t line_no, const char* what) {
  if (token.empty()) fail(line_no, std::string("missing ") + what);
  std::size_t consumed = 0;
  std::uint64_t value = 0;
  try {
    const int base = token.size() > 2 && token[0] == '0' && (token[1] == 'x' || token[1] == 'X')
                         ? 16
                         : 10;
    value = std::stoull(token, &consumed, base);
  } catch (const std::exception&) {
    fail(line_no, std::string("bad ") + what + " '" + token + "'");
  }
  if (consumed != token.size()) {
    fail(line_no, std::string("bad ") + what + " '" + token + "'");
  }
  return value;
}

}  // namespace

TextTrace parse_text_trace(std::istream& in) {
  TextTrace text;
  std::string line;
  std::size_t line_no = 0;
  std::size_t max_tid = 0;
  std::vector<bool> seen;

  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);

    std::istringstream fields(line);
    std::string tid_token, op;
    if (!(fields >> tid_token)) continue;  // blank / comment-only line
    if (!(fields >> op)) fail(line_no, "missing operation after thread id");

    const std::uint64_t tid64 = parse_u64(tid_token, line_no, "thread id");
    if (tid64 >= kSymtMaxThreads) fail(line_no, "thread id " + tid_token + " out of range");
    const auto tid = static_cast<std::size_t>(tid64);
    if (tid >= text.per_thread.size()) {
      text.per_thread.resize(tid + 1);
      seen.resize(tid + 1, false);
    }
    seen[tid] = true;
    if (tid > max_tid) max_tid = tid;

    SymtRecord rec;
    std::string a, b, extra;
    if (op == "R" || op == "W") {
      if (!(fields >> a)) fail(line_no, "missing address");
      rec.op = op == "W" ? SymtOp::Write : SymtOp::Read;
      rec.addr = parse_u64(a, line_no, "address");
      if (fields >> b) {
        const std::uint64_t gap = parse_u64(b, line_no, "gap");
        if (gap > UINT32_MAX) fail(line_no, "gap '" + b + "' exceeds 32 bits");
        rec.gap = static_cast<std::uint32_t>(gap);
      }
    } else if (op == "barrier") {
      if (!(fields >> a)) fail(line_no, "missing barrier id");
      rec.op = SymtOp::Barrier;
      rec.arg = parse_u64(a, line_no, "barrier id");
    } else if (op == "lock" || op == "unlock") {
      if (!(fields >> a)) fail(line_no, "missing lock id");
      rec.op = op == "lock" ? SymtOp::LockAcquire : SymtOp::LockRelease;
      rec.arg = parse_u64(a, line_no, "lock id");
    } else if (op == "signal") {
      if (!(fields >> a)) fail(line_no, "missing event id");
      rec.op = SymtOp::Signal;
      rec.arg = parse_u64(a, line_no, "event id");
    } else if (op == "wait") {
      if (!(fields >> a)) fail(line_no, "missing event id");
      if (!(fields >> b)) fail(line_no, "missing partner thread id");
      rec.op = SymtOp::Wait;
      rec.arg = parse_u64(a, line_no, "event id");
      const std::uint64_t partner = parse_u64(b, line_no, "partner thread id");
      if (partner >= kSymtMaxThreads) fail(line_no, "partner thread '" + b + "' out of range");
      rec.partner = static_cast<std::uint32_t>(partner);
    } else {
      fail(line_no, "unknown operation '" + op + "'");
    }
    if (fields >> extra) fail(line_no, "trailing token '" + extra + "'");
    text.per_thread[tid].push_back(rec);
  }

  if (text.per_thread.empty()) {
    throw std::runtime_error("text trace contains no records");
  }
  for (std::size_t t = 0; t < seen.size(); ++t) {
    if (!seen[t]) {
      throw std::runtime_error("thread ids are not dense: thread " + std::to_string(t) +
                               " never appears but thread " + std::to_string(max_tid) + " does");
    }
  }
  // Wait partners checked after the thread count is known.
  for (std::size_t t = 0; t < text.per_thread.size(); ++t) {
    for (const SymtRecord& rec : text.per_thread[t]) {
      if (rec.op == SymtOp::Wait && rec.partner >= text.per_thread.size()) {
        throw std::runtime_error("thread " + std::to_string(t) + " waits on thread " +
                                 std::to_string(rec.partner) + " but only " +
                                 std::to_string(text.per_thread.size()) + " threads exist");
      }
    }
  }
  return text;
}

TextTrace parse_text_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open text trace '" + path + "'");
  try {
    return parse_text_trace(in);
  } catch (const std::runtime_error& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

std::vector<std::uint8_t> symt_from_text(const TextTrace& text) {
  SymtWriter writer(text.threads());
  for (std::size_t t = 0; t < text.per_thread.size(); ++t) {
    for (const SymtRecord& rec : text.per_thread[t]) writer.append(t, rec);
  }
  return writer.finish();
}

}  // namespace symbiosis::workload
