#include "workload/replayer.hpp"

#include <stdexcept>

#include "util/check.hpp"
#include "util/hotpath.hpp"

namespace symbiosis::workload {

TraceReplayer::TraceReplayer(const SymtTrace& trace, cachesim::Hierarchy& hierarchy,
                             ReplayOptions options)
    : trace_(trace), hierarchy_(hierarchy), options_(options) {
  if (options_.chunk == 0) throw std::invalid_argument("TraceReplayer: zero chunk");
  threads_.reserve(trace.num_threads());
  for (std::size_t t = 0; t < trace.num_threads(); ++t) {
    threads_.emplace_back(SymtCursor(trace, t));
    threads_.back().buffer.resize(options_.chunk);
  }
  result_.threads.resize(trace.num_threads());
}

void TraceReplayer::decode_one(ThreadState& ts) {
  if (ts.buffered > 0 || ts.has_sync || ts.cursor.done()) return;
  ts.buffered = ts.cursor.decode_mem_run(ts.buffer.data(), nullptr, options_.chunk);
  if (ts.buffered == 0 && !ts.cursor.done()) {
    // The next record is a sync event (or corruption — next() diagnoses it).
    if (ts.cursor.next(ts.sync)) {
      SYM_DCHECK(!ts.sync.is_mem(), "workload.replay")
          << "decode_mem_run stopped on a memory record";
      ts.has_sync = true;
    }
  }
}

void TraceReplayer::decode_phase() {
  if (options_.pool != nullptr && threads_.size() > 1) {
    // Decoding is per-thread-deterministic (cursor state only), so fanning
    // it out cannot change what gets applied — only when it was decoded.
    options_.pool->parallel_for(0, threads_.size(),
                                [this](std::size_t t) { decode_one(threads_[t]); });
    return;
  }
  for (auto& ts : threads_) decode_one(ts);
}

bool TraceReplayer::retire_sync(std::size_t t) {
  ThreadState& ts = threads_[t];
  ThreadReplayStats& stats = result_.threads[t];
  const SymtRecord& sync = ts.sync;
  auto trace_error = [&](const std::string& what) {
    throw std::runtime_error("replay: thread " + std::to_string(t) + ": " + what);
  };

  switch (sync.op) {
    case SymtOp::Barrier: {
      if (!ts.arrived) {
        if (barrier_arrivals_ == 0) {
          barrier_id_ = sync.arg;
        } else if (sync.arg != barrier_id_) {
          trace_error("barrier id " + std::to_string(sync.arg) + " arrives at generation " +
                      std::to_string(barrier_generation_) + " carrying id " +
                      std::to_string(barrier_id_));
        }
        ts.arrived = true;
        ++barrier_arrivals_;
        ++stats.barriers;
        ++result_.sync_events;
      }
      if (barrier_arrivals_ < threads_.size()) {
        ++stats.blocked_visits;
        return false;
      }
      // Last arrival: the generation retires for everyone at once.
      for (auto& other : threads_) {
        if (other.arrived) {
          other.arrived = false;
          other.has_sync = false;
        }
      }
      barrier_arrivals_ = 0;
      ++barrier_generation_;
      return true;
    }
    case SymtOp::LockAcquire: {
      const auto it = lock_owner_.find(sync.arg);
      if (it != lock_owner_.end()) {
        if (it->second == t) trace_error("recursive acquire of lock " + std::to_string(sync.arg));
        ++stats.blocked_visits;
        return false;
      }
      lock_owner_.emplace(sync.arg, t);
      ++stats.lock_acquires;
      ++result_.sync_events;
      ts.has_sync = false;
      return true;
    }
    case SymtOp::LockRelease: {
      const auto it = lock_owner_.find(sync.arg);
      if (it == lock_owner_.end() || it->second != t) {
        trace_error("release of lock " + std::to_string(sync.arg) + " it does not hold");
      }
      lock_owner_.erase(it);
      ++stats.lock_releases;
      ++result_.sync_events;
      ts.has_sync = false;
      return true;
    }
    case SymtOp::Signal: {
      ++signal_count_[{sync.arg, t}];
      ++stats.signals;
      ++result_.sync_events;
      ts.has_sync = false;
      return true;
    }
    case SymtOp::Wait: {
      const std::size_t partner = sync.partner;
      if (partner >= threads_.size()) {
        trace_error("wait on nonexistent thread " + std::to_string(partner));
      }
      const auto sig = signal_count_.find({sync.arg, partner});
      std::uint64_t available = sig == signal_count_.end() ? 0 : sig->second;
      std::uint64_t& consumed = wait_consumed_[{sync.arg, partner, t}];
      if (available <= consumed) {
        ++stats.blocked_visits;
        return false;
      }
      ++consumed;
      ++stats.waits;
      ++result_.sync_events;
      ts.has_sync = false;
      return true;
    }
    default:
      trace_error("memory record reached the sync path");
  }
  return false;
}

SYM_HOT bool TraceReplayer::apply_chunk(std::size_t t, ThreadState& ts) {
  const std::size_t core = t % hierarchy_.num_cores();
  const cachesim::BatchSummary summary =
      hierarchy_.access_batch(core, ts.buffer.data(), ts.buffered);
  result_.totals += summary;
  result_.threads[t].mem_refs += summary.accesses;
  ts.buffered = 0;
  return true;
}

bool TraceReplayer::visit(std::size_t t) {
  ThreadState& ts = threads_[t];
  if (ts.buffered > 0) return apply_chunk(t, ts);
  if (ts.has_sync) return retire_sync(t);
  return false;  // exhausted
}

void TraceReplayer::report_deadlock() const {
  std::string detail;
  for (std::size_t t = 0; t < threads_.size(); ++t) {
    const ThreadState& ts = threads_[t];
    if (ts.exhausted()) continue;
    if (!detail.empty()) detail += "; ";
    detail += "thread " + std::to_string(t);
    if (ts.has_sync) {
      detail += " blocked on " + to_string(ts.sync.op) + " " + std::to_string(ts.sync.arg);
      if (ts.sync.op == SymtOp::Wait) {
        detail += " from thread " + std::to_string(ts.sync.partner);
      }
      if (ts.sync.op == SymtOp::Barrier) {
        detail += " (" + std::to_string(barrier_arrivals_) + "/" +
                  std::to_string(threads_.size()) + " arrived)";
      }
    }
  }
  throw std::runtime_error("replay: deadlock — no thread can make progress: " + detail);
}

ReplayResult TraceReplayer::run() {
  if (ran_) throw std::logic_error("TraceReplayer::run() called twice");
  ran_ = true;

  for (;;) {
    bool all_done = true;
    for (const auto& ts : threads_) all_done &= ts.exhausted();
    if (all_done) break;

    decode_phase();
    ++result_.rounds;
    bool progress = false;
    for (std::size_t t = 0; t < threads_.size(); ++t) progress |= visit(t);
    if (!progress) report_deadlock();
  }
  return result_;
}

ReplayResult replay_trace(const SymtTrace& trace, cachesim::Hierarchy& hierarchy,
                          ReplayOptions options) {
  return TraceReplayer(trace, hierarchy, options).run();
}

}  // namespace symbiosis::workload
