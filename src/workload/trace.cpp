#include "workload/trace.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace symbiosis::workload {

namespace {
constexpr char kMagic[4] = {'S', 'Y', 'M', 'T'};
constexpr std::uint32_t kVersion = 1;

struct PackedRecord {
  std::uint64_t addr;
  std::uint32_t compute_instr;
  std::uint8_t is_write;
} __attribute__((packed));
}  // namespace

TraceWriter::TraceWriter(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (!file_) throw std::runtime_error("TraceWriter: cannot open " + path);
  std::uint64_t zero = 0;
  if (std::fwrite(kMagic, 1, 4, file_) != 4 ||
      std::fwrite(&kVersion, sizeof kVersion, 1, file_) != 1 ||
      std::fwrite(&zero, sizeof zero, 1, file_) != 1) {
    std::fclose(file_);
    file_ = nullptr;
    throw std::runtime_error("TraceWriter: header write failed for " + path);
  }
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::append(const Step& step) {
  if (!file_) throw std::runtime_error("TraceWriter: appending after close");
  const PackedRecord rec{step.addr, step.compute_instr, step.is_write ? std::uint8_t{1}
                                                                      : std::uint8_t{0}};
  if (std::fwrite(&rec, sizeof rec, 1, file_) != 1) {
    throw std::runtime_error("TraceWriter: write failed for " + path_);
  }
  ++count_;
}

void TraceWriter::close() {
  if (!file_) return;
  // Patch the record count into the header.
  std::fseek(file_, 8, SEEK_SET);
  std::fwrite(&count_, sizeof count_, 1, file_);
  std::fclose(file_);
  file_ = nullptr;
}

std::vector<Step> read_trace(const std::string& path) {
  FILE* file = std::fopen(path.c_str(), "rb");
  if (!file) throw std::runtime_error("read_trace: cannot open " + path);

  char magic[4];
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  if (std::fread(magic, 1, 4, file) != 4 || std::memcmp(magic, kMagic, 4) != 0) {
    std::fclose(file);
    throw std::runtime_error("read_trace: bad header in " + path);
  }
  if (std::fread(&version, sizeof version, 1, file) != 1 || version != kVersion) {
    std::fclose(file);
    // Version 2 is the multi-threaded varint format (workload/symt.hpp).
    throw std::runtime_error("read_trace: unsupported version " + std::to_string(version) +
                             " in " + path + " (this reader handles version " +
                             std::to_string(kVersion) + " only)");
  }
  if (std::fread(&count, sizeof count, 1, file) != 1) {
    std::fclose(file);
    throw std::runtime_error("read_trace: bad header in " + path);
  }

  std::vector<Step> steps;
  steps.reserve(count);
  PackedRecord rec;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (std::fread(&rec, sizeof rec, 1, file) != 1) {
      std::fclose(file);
      throw std::runtime_error("read_trace: truncated trace " + path);
    }
    steps.push_back(Step{rec.compute_instr, rec.addr, rec.is_write != 0});
  }
  std::fclose(file);
  return steps;
}

TraceStream::TraceStream(std::string name, std::vector<Step> steps)
    : name_(std::move(name)), steps_(std::move(steps)) {
  if (steps_.empty()) throw std::invalid_argument("TraceStream: empty trace");
}

Step TraceStream::next() {
  if (pos_ >= steps_.size()) return steps_.back();
  return steps_[pos_++];
}

}  // namespace symbiosis::workload
