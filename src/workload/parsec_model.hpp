// parsec_model.hpp — multi-threaded PARSEC-like workload models.
//
// §3.3.4 / §5.1.3: the paper runs 4-thread PARSEC programs. The property
// the scheduler cares about is that threads of ONE process share data
// (their mutual "interference" is really sharing), while threads of
// different processes genuinely contend. Each model therefore gives every
// thread a shared region (one per process) and a private region, mixed by
// a share probability, plus the usual compute gap / write ratio.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/benchmark_model.hpp"

namespace symbiosis::workload {

/// Declarative multi-threaded benchmark description.
struct MtBenchmarkSpec {
  std::string name;
  std::size_t threads = 4;
  PatternSpec shared_pattern;   ///< one region shared by all threads
  PatternSpec private_pattern;  ///< per-thread region
  double share_prob = 0.5;      ///< P(a reference targets the shared region)
  double compute_gap = 12.0;
  double write_ratio = 0.3;
  std::uint64_t refs_per_thread = 300'000;

  /// Total address-space bytes of the process (shared + all privates).
  [[nodiscard]] std::uint64_t footprint_bytes() const noexcept {
    return shared_pattern.region_bytes + threads * private_pattern.region_bytes;
  }
};

/// One thread of a multi-threaded benchmark (a schedulable TaskStream).
class ParsecThreadStream final : public TaskStream {
 public:
  /// @param process_base line-aligned base of the whole process's space;
  ///                     the shared region sits at the base, thread @p tid's
  ///                     private region after it.
  ParsecThreadStream(const MtBenchmarkSpec& spec, Addr process_base, std::size_t tid,
                     util::Rng rng);

  [[nodiscard]] Step next() override;
  [[nodiscard]] bool complete() const override { return refs_issued_ >= spec_.refs_per_thread; }
  void restart() override;
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::uint64_t refs_issued() const override { return refs_issued_; }
  [[nodiscard]] std::uint64_t total_refs() const override { return spec_.refs_per_thread; }

  [[nodiscard]] std::size_t tid() const noexcept { return tid_; }
  [[nodiscard]] const MtBenchmarkSpec& spec() const noexcept { return spec_; }

 private:
  MtBenchmarkSpec spec_;
  std::string name_;
  std::size_t tid_;
  util::Rng rng_;
  std::unique_ptr<AccessPattern> shared_;
  std::unique_ptr<AccessPattern> private_;
  std::uint64_t refs_issued_ = 0;
};

/// The 8-program PARSEC stand-in pool, in a fixed order.
[[nodiscard]] const std::vector<std::string>& parsec_pool();

/// Build the scaled spec for a pool program; throws on unknown names.
[[nodiscard]] MtBenchmarkSpec make_parsec_benchmark(const std::string& name,
                                                    const ScaleConfig& scale = {});

/// Instantiate all threads of a PARSEC model at @p process_base.
[[nodiscard]] std::vector<std::unique_ptr<ParsecThreadStream>> make_parsec_threads(
    const MtBenchmarkSpec& spec, Addr process_base, util::Rng rng);

}  // namespace symbiosis::workload
