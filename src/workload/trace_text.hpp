// trace_text.hpp — the simple line-oriented text trace format and its
// converter to .symt (trace_tools convert --text).
//
// One record per line, fields whitespace-separated, '#' starts a comment,
// blank lines ignored. Thread ids must be dense (0..T-1, any order of
// appearance). Addresses accept 0x-hex or decimal.
//
//   <tid> R <addr> [gap]        read, optional compute gap
//   <tid> W <addr> [gap]        write
//   <tid> barrier <id>
//   <tid> lock <id>
//   <tid> unlock <id>
//   <tid> signal <event>
//   <tid> wait <event> <partner-tid>
//
// Parse errors carry the 1-based line number and offending text.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "workload/symt.hpp"

namespace symbiosis::workload {

/// Records of one text trace, grouped per thread in stream order.
struct TextTrace {
  /// per_thread[t] = thread t's records, in file order.
  std::vector<std::vector<SymtRecord>> per_thread;

  [[nodiscard]] std::size_t threads() const noexcept { return per_thread.size(); }
};

/// Parse the text format; throws std::runtime_error("line N: ...") on any
/// malformed line, non-dense thread ids, or out-of-range wait partners.
[[nodiscard]] TextTrace parse_text_trace(std::istream& in);

/// Convenience: parse a file by path.
[[nodiscard]] TextTrace parse_text_trace_file(const std::string& path);

/// Encode a parsed text trace as a .symt v2 image.
[[nodiscard]] std::vector<std::uint8_t> symt_from_text(const TextTrace& text);

}  // namespace symbiosis::workload
