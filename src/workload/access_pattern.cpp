#include "workload/access_pattern.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/check.hpp"

namespace symbiosis::workload {

std::string to_string(PatternKind kind) {
  switch (kind) {
    case PatternKind::Sequential: return "sequential";
    case PatternKind::Strided: return "strided";
    case PatternKind::Random: return "random";
    case PatternKind::Zipf: return "zipf";
    case PatternKind::PointerChase: return "pointer-chase";
    case PatternKind::Stream: return "stream";
    case PatternKind::StackDistance: return "stack-distance";
  }
  return "?";
}

PatternKind parse_pattern(const std::string& name) {
  if (name == "sequential") return PatternKind::Sequential;
  if (name == "strided") return PatternKind::Strided;
  if (name == "random") return PatternKind::Random;
  if (name == "zipf") return PatternKind::Zipf;
  if (name == "pointer-chase") return PatternKind::PointerChase;
  if (name == "stream") return PatternKind::Stream;
  if (name == "stack-distance") return PatternKind::StackDistance;
  throw std::invalid_argument("unknown pattern: " + name);
}

namespace {

/// Common plumbing: region in lines, base address, spec storage.
class PatternBase : public AccessPattern {
 public:
  PatternBase(const PatternSpec& spec, Addr base) : spec_(spec), base_(base) {
    if (spec.region_bytes < spec.line_bytes) {
      throw std::invalid_argument("pattern region smaller than one line");
    }
    if (spec.line_bytes == 0 || (spec.line_bytes & (spec.line_bytes - 1)) != 0) {
      throw std::invalid_argument("pattern line size must be a power of two");
    }
    lines_ = spec.region_bytes / spec.line_bytes;
  }

  [[nodiscard]] const PatternSpec& spec() const override { return spec_; }

 protected:
  [[nodiscard]] Addr addr_of_line(std::uint64_t line_index) const noexcept {
    return base_ + line_index * spec_.line_bytes;
  }

  PatternSpec spec_;
  Addr base_;
  std::uint64_t lines_ = 0;
};

class SequentialPattern final : public PatternBase {
 public:
  using PatternBase::PatternBase;
  Addr next(util::Rng&) override {
    const Addr a = addr_of_line(pos_);
    pos_ = (pos_ + 1) % lines_;
    return a;
  }
  void reset() override { pos_ = 0; }

 private:
  std::uint64_t pos_ = 0;
};

class StridedPattern final : public PatternBase {
 public:
  StridedPattern(const PatternSpec& spec, Addr base) : PatternBase(spec, base) {
    stride_lines_ = std::max<std::uint64_t>(1, spec.stride_bytes / spec.line_bytes);
  }
  Addr next(util::Rng&) override {
    const Addr a = addr_of_line(pos_);
    pos_ += stride_lines_;
    if (pos_ >= lines_) pos_ %= lines_;  // wrap, revisiting the same line set
    return a;
  }
  void reset() override { pos_ = 0; }

 private:
  std::uint64_t stride_lines_ = 1;
  std::uint64_t pos_ = 0;
};

class RandomPattern final : public PatternBase {
 public:
  using PatternBase::PatternBase;
  Addr next(util::Rng& rng) override { return addr_of_line(rng.next_below(lines_)); }
  void reset() override {}
};

class ZipfPattern final : public PatternBase {
 public:
  ZipfPattern(const PatternSpec& spec, Addr base, util::Rng& rng)
      : PatternBase(spec, base), sampler_(lines_, spec.zipf_skew) {
    // Scatter popularity ranks over the region so the hot lines are not
    // physically contiguous (they would otherwise map to few cache sets).
    perm_.resize(lines_);
    std::iota(perm_.begin(), perm_.end(), std::uint64_t{0});
    rng.shuffle(perm_);
  }
  Addr next(util::Rng& rng) override { return addr_of_line(perm_[sampler_.sample(rng)]); }
  void reset() override {}

 private:
  util::ZipfSampler sampler_;
  std::vector<std::uint64_t> perm_;
};

/// Dependent walk of one random Hamiltonian cycle over the region's lines.
/// Every line is visited once per lap (full footprint) but in an order that
/// defeats spatial prefetch-like locality — the mcf access class.
class PointerChasePattern final : public PatternBase {
 public:
  PointerChasePattern(const PatternSpec& spec, Addr base, util::Rng& rng)
      : PatternBase(spec, base) {
    // Sattolo's algorithm: a uniform random single-cycle permutation.
    next_.resize(lines_);
    std::vector<std::uint64_t> order(lines_);
    std::iota(order.begin(), order.end(), std::uint64_t{0});
    rng.shuffle(order);
    for (std::uint64_t i = 0; i + 1 < lines_; ++i) next_[order[i]] = order[i + 1];
    if (lines_ > 0) next_[order[lines_ - 1]] = order[0];
    pos_ = order.empty() ? 0 : order[0];
    start_ = pos_;
  }
  Addr next(util::Rng&) override {
    const Addr a = addr_of_line(pos_);
    pos_ = next_[pos_];
    return a;
  }
  void reset() override { pos_ = start_; }

 private:
  std::vector<std::uint64_t> next_;
  std::uint64_t pos_ = 0;
  std::uint64_t start_ = 0;
};

/// Sequential scan of a region so large relative to the cache that lines
/// are evicted before reuse: a pure bandwidth stream.
class StreamPattern final : public PatternBase {
 public:
  using PatternBase::PatternBase;
  Addr next(util::Rng&) override {
    const Addr a = addr_of_line(pos_);
    pos_ = (pos_ + 1) % lines_;
    return a;
  }
  void reset() override { pos_ = 0; }

 private:
  std::uint64_t pos_ = 0;
};

/// Temporal-locality generator: with probability `locality` reuse a recent
/// line (LRU-stack depth drawn geometrically), otherwise touch the next new
/// line. Gives a smooth knob between cache-friendly and cache-hostile.
class StackDistancePattern final : public PatternBase {
 public:
  StackDistancePattern(const PatternSpec& spec, Addr base) : PatternBase(spec, base) {
    stack_.reserve(std::min<std::uint64_t>(lines_, 4096));
  }

  Addr next(util::Rng& rng) override {
    if (!stack_.empty() && rng.next_bool(spec_.locality)) {
      // Geometric depth: depth k with P ~ (1-p)^k; mean controlled by the
      // stack fraction we want hot. Use p = 8/stack size for a hot head.
      const double p = std::min(1.0, 8.0 / static_cast<double>(stack_.size()));
      auto depth = static_cast<std::size_t>(rng.next_exponential(p));
      depth = std::min(depth, stack_.size() - 1);
      const std::uint64_t line = stack_[stack_.size() - 1 - depth];
      touch(line);
      return addr_of_line(line);
    }
    const std::uint64_t line = frontier_;
    frontier_ = (frontier_ + 1) % lines_;
    touch(line);
    return addr_of_line(line);
  }

  void reset() override {
    stack_.clear();
    frontier_ = 0;
  }

 private:
  void touch(std::uint64_t line) {
    // Move-to-top LRU stack, bounded at 512 entries. Searching from the hot
    // end keeps the expected cost tiny (reuses are geometric in depth).
    const auto rit = std::find(stack_.rbegin(), stack_.rend(), line);
    if (rit != stack_.rend()) stack_.erase(std::next(rit).base());
    stack_.push_back(line);
    if (stack_.size() > 512) stack_.erase(stack_.begin());
  }

  std::vector<std::uint64_t> stack_;
  std::uint64_t frontier_ = 0;
};

}  // namespace

std::unique_ptr<AccessPattern> make_pattern(const PatternSpec& spec, Addr base, util::Rng& rng) {
  SYM_CHECK_EQ(base % spec.line_bytes, Addr{0}, "workload.pattern")
      << "pattern base must be line-aligned";
  switch (spec.kind) {
    case PatternKind::Sequential: return std::make_unique<SequentialPattern>(spec, base);
    case PatternKind::Strided: return std::make_unique<StridedPattern>(spec, base);
    case PatternKind::Random: return std::make_unique<RandomPattern>(spec, base);
    case PatternKind::Zipf: return std::make_unique<ZipfPattern>(spec, base, rng);
    case PatternKind::PointerChase: return std::make_unique<PointerChasePattern>(spec, base, rng);
    case PatternKind::Stream: return std::make_unique<StreamPattern>(spec, base);
    case PatternKind::StackDistance: return std::make_unique<StackDistancePattern>(spec, base);
  }
  throw std::invalid_argument("make_pattern: bad kind");
}

}  // namespace symbiosis::workload
