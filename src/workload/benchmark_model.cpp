#include "workload/benchmark_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace symbiosis::workload {

std::uint64_t BenchmarkSpec::footprint_bytes() const noexcept {
  std::uint64_t max_region = 0;
  for (const auto& phase : phases) max_region = std::max(max_region, phase.pattern.region_bytes);
  return max_region;
}

Workload::Workload(BenchmarkSpec spec, Addr base, util::Rng rng)
    : spec_(std::move(spec)), rng_(rng) {
  if (spec_.phases.empty()) throw std::invalid_argument("Workload: no phases");
  patterns_.reserve(spec_.phases.size());
  for (const auto& phase : spec_.phases) {
    patterns_.push_back(make_pattern(phase.pattern, base, rng_));
  }
}

Step Workload::next() {
  const PhaseSpec& phase = spec_.phases[phase_];
  Step step;
  // Exponentially distributed compute gap around the phase mean, clamped so
  // one pathological draw cannot stall a core for a whole quantum.
  if (phase.compute_gap > 0.0) {
    const double gap = rng_.next_exponential(1.0 / phase.compute_gap);
    step.compute_instr =
        static_cast<std::uint32_t>(std::min(gap, phase.compute_gap * 8.0));
  }
  step.addr = patterns_[phase_]->next(rng_);
  step.is_write = rng_.next_bool(phase.write_ratio);

  ++refs_issued_;
  if (++refs_in_phase_ >= phase.refs) {
    refs_in_phase_ = 0;
    phase_ = (phase_ + 1) % spec_.phases.size();
  }
  return step;
}

void Workload::restart() {
  refs_issued_ = 0;
  refs_in_phase_ = 0;
  phase_ = 0;
  for (auto& pattern : patterns_) pattern->reset();
}

const std::vector<std::string>& spec2006_pool() {
  static const std::vector<std::string> pool = {
      "perlbench", "bzip2",      "gcc",     "mcf",    "gobmk",  "hmmer",
      "sjeng",     "libquantum", "h264ref", "omnetpp", "astar", "povray",
  };
  return pool;
}

namespace {

/// Round a byte count down to a whole number of lines (>= 1 line).
std::uint64_t lines_bytes(double bytes, std::uint64_t line) {
  const auto n = static_cast<std::uint64_t>(bytes / static_cast<double>(line));
  return std::max<std::uint64_t>(1, n) * line;
}

PatternSpec pat(PatternKind kind, double region_bytes, const ScaleConfig& s) {
  PatternSpec p;
  p.kind = kind;
  p.region_bytes = lines_bytes(region_bytes, s.line_bytes);
  p.line_bytes = s.line_bytes;
  return p;
}

std::uint64_t refs(double n, const ScaleConfig& s) {
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(n * s.length_scale));
}

}  // namespace

BenchmarkSpec make_spec_benchmark(const std::string& name, const ScaleConfig& s) {
  const auto l2 = static_cast<double>(s.l2_bytes);
  BenchmarkSpec b;
  b.name = name;

  if (name == "povray") {
    // Ray tracer: compute-bound, tiny hot data (§5.1.1: "does not depend
    // much on the L2").
    PatternSpec p = pat(PatternKind::Zipf, 0.06 * l2, s);
    p.zipf_skew = 1.1;
    b.phases.push_back({p, 40.0, 0.15, refs(60'000, s)});
    b.total_refs = refs(700'000, s);
  } else if (name == "gobmk") {
    // Go engine: branchy compute with a modest board/state working set.
    PatternSpec p = pat(PatternKind::Zipf, 0.18 * l2, s);
    p.zipf_skew = 0.9;
    b.phases.push_back({p, 22.0, 0.25, refs(60'000, s)});
    b.total_refs = refs(1'000'000, s);
  } else if (name == "sjeng") {
    // Chess search: hash-table probes with decent temporal locality.
    PatternSpec p = pat(PatternKind::StackDistance, 0.3 * l2, s);
    p.locality = 0.85;
    b.phases.push_back({p, 18.0, 0.3, refs(70'000, s)});
    b.total_refs = refs(1'000'000, s);
  } else if (name == "perlbench") {
    // Interpreter: skewed hot bytecode/data structures.
    PatternSpec p = pat(PatternKind::Zipf, 0.4 * l2, s);
    p.zipf_skew = 0.9;
    b.phases.push_back({p, 14.0, 0.3, refs(80'000, s)});
    b.total_refs = refs(1'100'000, s);
  } else if (name == "h264ref") {
    // Video encoder: frame-strided scans plus a hot context.
    PatternSpec scan = pat(PatternKind::Strided, 0.4 * l2, s);
    scan.stride_bytes = 2 * s.line_bytes;
    PatternSpec ctx = pat(PatternKind::Zipf, 0.12 * l2, s);
    ctx.zipf_skew = 1.0;
    b.phases.push_back({scan, 12.0, 0.35, refs(50'000, s)});
    b.phases.push_back({ctx, 16.0, 0.25, refs(40'000, s)});
    b.total_refs = refs(1'200'000, s);
  } else if (name == "gcc") {
    // Compiler: phase churn between a hot IR set and sweeping passes.
    PatternSpec hot = pat(PatternKind::Zipf, 0.25 * l2, s);
    hot.zipf_skew = 0.8;
    PatternSpec sweep = pat(PatternKind::Random, 0.8 * l2, s);
    b.phases.push_back({hot, 12.0, 0.35, refs(60'000, s)});
    b.phases.push_back({sweep, 10.0, 0.35, refs(30'000, s)});
    b.total_refs = refs(850'000, s);
  } else if (name == "bzip2") {
    // Block compressor: sequential block scans plus sort tables.
    PatternSpec seq = pat(PatternKind::Sequential, 0.6 * l2, s);
    PatternSpec tables = pat(PatternKind::Zipf, 0.3 * l2, s);
    tables.zipf_skew = 0.7;
    b.phases.push_back({seq, 9.0, 0.4, refs(50'000, s)});
    b.phases.push_back({tables, 11.0, 0.35, refs(50'000, s)});
    b.total_refs = refs(1'200'000, s);
  } else if (name == "astar") {
    // Path search: dependent graph walk over a medium region, interleaved
    // with heap scans and map reads so only part of its time is exposed to
    // chase thrashing (keeps its degradation in the paper's band).
    PatternSpec p = pat(PatternKind::PointerChase, 0.45 * l2, s);
    PatternSpec heap = pat(PatternKind::Zipf, 0.25 * l2, s);
    heap.zipf_skew = 0.8;
    PatternSpec scan = pat(PatternKind::Stream, 1.2 * l2, s);
    b.phases.push_back({p, 12.0, 0.25, refs(25'000, s)});
    b.phases.push_back({heap, 14.0, 0.3, refs(55'000, s)});
    b.phases.push_back({scan, 10.0, 0.25, refs(20'000, s)});
    b.total_refs = refs(1'000'000, s);
  } else if (name == "hmmer") {
    // Profile HMM search: §5.1.1 calls it bandwidth-bound — "low locality
    // yet high memory traffic"; schedule-insensitive because its streaming
    // misses are its own. The database scan comes in bursts between probes
    // of the hot profile matrices, so its shared-cache OCCUPANCY stays
    // moderate (in the paper's data libquantum, not hmmer, is the
    // destructive occupant).
    PatternSpec scan = pat(PatternKind::Stream, 8.0 * l2, s);
    PatternSpec profile = pat(PatternKind::Zipf, 0.08 * l2, s);
    profile.zipf_skew = 0.9;
    b.phases.push_back({scan, 5.0, 0.2, refs(12'000, s)});
    b.phases.push_back({profile, 6.0, 0.25, refs(88'000, s)});
    b.total_refs = refs(900'000, s);
  } else if (name == "libquantum") {
    // Quantum register simulation: streams a huge array — the footprint
    // aggressor of Fig 3(b) — with a shorter reuse phase that makes its own
    // runtime mildly schedule-sensitive (Table 1 shows it gaining 11%).
    PatternSpec stream = pat(PatternKind::Stream, 4.0 * l2, s);
    PatternSpec reuse = pat(PatternKind::Strided, 0.45 * l2, s);
    reuse.stride_bytes = s.line_bytes;
    b.phases.push_back({stream, 3.0, 0.5, refs(60'000, s)});
    b.phases.push_back({reuse, 4.0, 0.4, refs(40'000, s)});
    b.total_refs = refs(750'000, s);
  } else if (name == "omnetpp") {
    // Discrete-event simulator: large skewed heap — sensitive victim
    // (49% max improvement in Fig 10).
    PatternSpec p = pat(PatternKind::Zipf, 1.2 * l2, s);
    p.zipf_skew = 0.9;
    b.phases.push_back({p, 7.0, 0.35, refs(90'000, s)});
    b.total_refs = refs(900'000, s);
  } else if (name == "mcf") {
    // Network simplex: pointer-chase that just fits the L2 when running
    // alone and thrashes when sharing — the most sensitive program
    // (54% max improvement in Fig 10).
    PatternSpec chase = pat(PatternKind::PointerChase, 0.6 * l2, s);
    PatternSpec hot = pat(PatternKind::Zipf, 0.3 * l2, s);
    hot.zipf_skew = 1.0;
    PatternSpec cold = pat(PatternKind::Stream, 2.0 * l2, s);
    b.phases.push_back({chase, 4.0, 0.3, refs(35'000, s)});
    b.phases.push_back({hot, 6.0, 0.3, refs(45'000, s)});
    b.phases.push_back({cold, 4.0, 0.3, refs(20'000, s)});
    b.total_refs = refs(1'100'000, s);
  } else {
    throw std::invalid_argument("unknown SPEC2006 model: " + name);
  }
  return b;
}

std::unique_ptr<Workload> make_spec_workload(const std::string& name, Addr base, util::Rng rng,
                                             const ScaleConfig& scale) {
  return std::make_unique<Workload>(make_spec_benchmark(name, scale), base, rng);
}

}  // namespace symbiosis::workload
