#include "workload/parsec_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace symbiosis::workload {

ParsecThreadStream::ParsecThreadStream(const MtBenchmarkSpec& spec, Addr process_base,
                                       std::size_t tid, util::Rng rng)
    : spec_(spec), name_(spec.name + ".t" + std::to_string(tid)), tid_(tid), rng_(rng) {
  if (tid >= spec.threads) throw std::invalid_argument("ParsecThreadStream: tid out of range");
  const Addr private_base =
      process_base + spec.shared_pattern.region_bytes + tid * spec.private_pattern.region_bytes;
  shared_ = make_pattern(spec.shared_pattern, process_base, rng_);
  private_ = make_pattern(spec.private_pattern, private_base, rng_);
}

Step ParsecThreadStream::next() {
  Step step;
  if (spec_.compute_gap > 0.0) {
    const double gap = rng_.next_exponential(1.0 / spec_.compute_gap);
    step.compute_instr = static_cast<std::uint32_t>(std::min(gap, spec_.compute_gap * 8.0));
  }
  const bool use_shared = rng_.next_bool(spec_.share_prob);
  step.addr = use_shared ? shared_->next(rng_) : private_->next(rng_);
  step.is_write = rng_.next_bool(spec_.write_ratio);
  ++refs_issued_;
  return step;
}

void ParsecThreadStream::restart() {
  refs_issued_ = 0;
  shared_->reset();
  private_->reset();
}

const std::vector<std::string>& parsec_pool() {
  static const std::vector<std::string> pool = {
      "blackscholes", "bodytrack",    "canneal",  "dedup",
      "ferret",       "fluidanimate", "streamcluster", "swaptions",
  };
  return pool;
}

namespace {

PatternSpec pat(PatternKind kind, double region_bytes, const ScaleConfig& s) {
  PatternSpec p;
  p.kind = kind;
  const auto lines = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(region_bytes / static_cast<double>(s.line_bytes)));
  p.region_bytes = lines * s.line_bytes;
  p.line_bytes = s.line_bytes;
  return p;
}

std::uint64_t refs(double n, const ScaleConfig& s) {
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(n * s.length_scale));
}

}  // namespace

MtBenchmarkSpec make_parsec_benchmark(const std::string& name, const ScaleConfig& s) {
  const auto l2 = static_cast<double>(s.l2_bytes);
  MtBenchmarkSpec b;
  b.name = name;
  b.threads = 4;

  if (name == "blackscholes") {
    // Option pricing: embarrassingly parallel, tiny per-thread data.
    b.shared_pattern = pat(PatternKind::Zipf, 0.02 * l2, s);
    b.private_pattern = pat(PatternKind::Sequential, 0.05 * l2, s);
    b.share_prob = 0.1;
    b.compute_gap = 30.0;
    b.write_ratio = 0.2;
    b.refs_per_thread = refs(200'000, s);
  } else if (name == "bodytrack") {
    // Computer vision: moderate shared model state.
    b.shared_pattern = pat(PatternKind::Zipf, 0.3 * l2, s);
    b.shared_pattern.zipf_skew = 0.8;
    b.private_pattern = pat(PatternKind::Random, 0.1 * l2, s);
    b.share_prob = 0.45;
    b.compute_gap = 15.0;
    b.write_ratio = 0.3;
    b.refs_per_thread = refs(240'000, s);
  } else if (name == "canneal") {
    // Simulated annealing over a big netlist: the shared region dwarfs any
    // cache (hundreds of MB in the real program), so canneal misses
    // regardless of scheduling — high traffic, low schedule sensitivity.
    b.shared_pattern = pat(PatternKind::Random, 3.0 * l2, s);
    b.private_pattern = pat(PatternKind::Zipf, 0.05 * l2, s);
    b.share_prob = 0.8;
    b.compute_gap = 8.0;
    b.write_ratio = 0.35;
    b.refs_per_thread = refs(260'000, s);
  } else if (name == "dedup") {
    // Pipeline compression: streams input privately, small shared hash.
    b.shared_pattern = pat(PatternKind::Zipf, 0.1 * l2, s);
    b.private_pattern = pat(PatternKind::Stream, 2.0 * l2, s);
    b.share_prob = 0.25;
    b.compute_gap = 8.0;
    b.write_ratio = 0.4;
    b.refs_per_thread = refs(260'000, s);
  } else if (name == "ferret") {
    // Content-based search pipeline: the most cache-sensitive PARSEC model
    // (Fig 12: 10.1% max improvement) — its shared tables just fit the L2.
    b.shared_pattern = pat(PatternKind::Zipf, 0.5 * l2, s);
    b.shared_pattern.zipf_skew = 0.9;
    b.private_pattern = pat(PatternKind::Random, 0.1 * l2, s);
    b.share_prob = 0.55;
    b.compute_gap = 14.0;
    b.write_ratio = 0.25;
    b.refs_per_thread = refs(250'000, s);
  } else if (name == "fluidanimate") {
    // Fluid dynamics: strided grid sweeps with halo sharing.
    b.shared_pattern = pat(PatternKind::Strided, 0.5 * l2, s);
    b.shared_pattern.stride_bytes = 2 * s.line_bytes;
    b.private_pattern = pat(PatternKind::Sequential, 0.15 * l2, s);
    b.share_prob = 0.5;
    b.compute_gap = 14.0;
    b.write_ratio = 0.35;
    b.refs_per_thread = refs(240'000, s);
  } else if (name == "streamcluster") {
    // Online clustering: streams points, hot shared centers.
    b.shared_pattern = pat(PatternKind::Zipf, 0.08 * l2, s);
    b.shared_pattern.zipf_skew = 1.0;
    b.private_pattern = pat(PatternKind::Stream, 1.5 * l2, s);
    b.share_prob = 0.3;
    b.compute_gap = 7.0;
    b.write_ratio = 0.2;
    b.refs_per_thread = refs(260'000, s);
  } else if (name == "swaptions") {
    // Monte-Carlo pricing: compute-bound, tiny state.
    b.shared_pattern = pat(PatternKind::Zipf, 0.03 * l2, s);
    b.private_pattern = pat(PatternKind::Zipf, 0.04 * l2, s);
    b.share_prob = 0.15;
    b.compute_gap = 35.0;
    b.write_ratio = 0.2;
    b.refs_per_thread = refs(200'000, s);
  } else {
    throw std::invalid_argument("unknown PARSEC model: " + name);
  }
  return b;
}

std::vector<std::unique_ptr<ParsecThreadStream>> make_parsec_threads(const MtBenchmarkSpec& spec,
                                                                     Addr process_base,
                                                                     util::Rng rng) {
  std::vector<std::unique_ptr<ParsecThreadStream>> threads;
  threads.reserve(spec.threads);
  for (std::size_t t = 0; t < spec.threads; ++t) {
    threads.push_back(
        std::make_unique<ParsecThreadStream>(spec, process_base, t, rng.split(t + 1)));
  }
  return threads;
}

}  // namespace symbiosis::workload
