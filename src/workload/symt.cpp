#include "workload/symt.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "util/check.hpp"

namespace symbiosis::workload {

namespace {

constexpr char kMagic[4] = {'S', 'Y', 'M', 'T'};
constexpr std::uint8_t kOpMask = 0x07;
constexpr std::uint8_t kGapFlag = 0x08;
constexpr std::uint8_t kReservedMask = 0xf0;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
[[nodiscard]] std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::string to_string(SymtOp op) {
  switch (op) {
    case SymtOp::Read: return "read";
    case SymtOp::Write: return "write";
    case SymtOp::Barrier: return "barrier";
    case SymtOp::LockAcquire: return "lock";
    case SymtOp::LockRelease: return "unlock";
    case SymtOp::Signal: return "signal";
    case SymtOp::Wait: return "wait";
  }
  return "?";
}

// --- varint primitives -----------------------------------------------------

void symt_put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint64_t symt_get_varint(const std::uint8_t*& p, const std::uint8_t* end) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (;;) {
    if (p == end) throw std::runtime_error("symt: payload ends mid-varint");
    const std::uint8_t byte = *p++;
    if (shift == 63 && byte > 1) throw std::runtime_error("symt: varint overflows 64 bits");
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift > 63) throw std::runtime_error("symt: varint overflows 64 bits");
  }
}

// --- writer ----------------------------------------------------------------

SymtWriter::SymtWriter(std::size_t threads) : streams_(threads) {
  if (threads == 0) throw std::invalid_argument("SymtWriter: need at least one thread");
  if (threads > kSymtMaxThreads) throw std::invalid_argument("SymtWriter: too many threads");
}

void SymtWriter::append_mem(std::size_t thread, cachesim::Addr addr, bool is_write,
                            std::uint32_t gap) {
  Stream& s = streams_.at(thread);
  const auto delta = static_cast<std::int64_t>(addr - s.prev_addr);
  std::uint8_t tag = static_cast<std::uint8_t>(is_write ? SymtOp::Write : SymtOp::Read);
  if (gap != 0) tag |= kGapFlag;
  s.bytes.push_back(tag);
  symt_put_varint(s.bytes, symt_zigzag(delta));
  if (gap != 0) symt_put_varint(s.bytes, gap);
  s.prev_addr = addr;
  ++s.records;
}

void SymtWriter::append_barrier(std::size_t thread, std::uint64_t barrier_id) {
  Stream& s = streams_.at(thread);
  s.bytes.push_back(static_cast<std::uint8_t>(SymtOp::Barrier));
  symt_put_varint(s.bytes, barrier_id);
  ++s.records;
}

void SymtWriter::append_lock(std::size_t thread, std::uint64_t lock_id) {
  Stream& s = streams_.at(thread);
  s.bytes.push_back(static_cast<std::uint8_t>(SymtOp::LockAcquire));
  symt_put_varint(s.bytes, lock_id);
  ++s.records;
}

void SymtWriter::append_unlock(std::size_t thread, std::uint64_t lock_id) {
  Stream& s = streams_.at(thread);
  s.bytes.push_back(static_cast<std::uint8_t>(SymtOp::LockRelease));
  symt_put_varint(s.bytes, lock_id);
  ++s.records;
}

void SymtWriter::append_signal(std::size_t thread, std::uint64_t event_id) {
  Stream& s = streams_.at(thread);
  s.bytes.push_back(static_cast<std::uint8_t>(SymtOp::Signal));
  symt_put_varint(s.bytes, event_id);
  ++s.records;
}

void SymtWriter::append_wait(std::size_t thread, std::uint64_t event_id, std::size_t partner) {
  if (partner >= streams_.size()) {
    throw std::invalid_argument("SymtWriter: wait partner thread out of range");
  }
  Stream& s = streams_.at(thread);
  s.bytes.push_back(static_cast<std::uint8_t>(SymtOp::Wait));
  symt_put_varint(s.bytes, event_id);
  symt_put_varint(s.bytes, partner);
  ++s.records;
}

void SymtWriter::append(std::size_t thread, const SymtRecord& record) {
  switch (record.op) {
    case SymtOp::Read:
    case SymtOp::Write:
      append_mem(thread, record.addr, record.op == SymtOp::Write, record.gap);
      return;
    case SymtOp::Barrier: append_barrier(thread, record.arg); return;
    case SymtOp::LockAcquire: append_lock(thread, record.arg); return;
    case SymtOp::LockRelease: append_unlock(thread, record.arg); return;
    case SymtOp::Signal: append_signal(thread, record.arg); return;
    case SymtOp::Wait: append_wait(thread, record.arg, record.partner); return;
  }
  throw std::invalid_argument("SymtWriter: unknown record opcode");
}

std::uint64_t SymtWriter::total_records() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : streams_) total += s.records;
  return total;
}

std::vector<std::uint8_t> SymtWriter::finish() const {
  std::vector<std::uint8_t> out;
  std::size_t payload = 0;
  for (const auto& s : streams_) payload += s.bytes.size();
  out.reserve(kSymtHeaderBytes + kSymtThreadEntryBytes * streams_.size() + payload);

  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  put_u32(out, kSymtVersion);
  put_u32(out, static_cast<std::uint32_t>(streams_.size()));
  put_u32(out, 0);  // flags
  put_u64(out, total_records());

  std::uint64_t offset = kSymtHeaderBytes + kSymtThreadEntryBytes * streams_.size();
  for (const auto& s : streams_) {
    put_u64(out, offset);
    put_u64(out, s.bytes.size());
    put_u64(out, s.records);
    offset += s.bytes.size();
  }
  for (const auto& s : streams_) out.insert(out.end(), s.bytes.begin(), s.bytes.end());
  return out;
}

void SymtWriter::write_file(const std::string& path) const {
  const std::vector<std::uint8_t> image = finish();
  FILE* file = std::fopen(path.c_str(), "wb");
  if (!file) throw std::runtime_error("SymtWriter: cannot open " + path);
  const std::size_t written = std::fwrite(image.data(), 1, image.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != image.size() || !closed) {
    throw std::runtime_error("SymtWriter: write failed for " + path);
  }
}

// --- reader ----------------------------------------------------------------

/// Backing storage of a mapped/loaded trace: exactly one of map_ / heap_.
struct SymtTrace::Image {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  void* map = nullptr;  // munmap target when the file was mmap'd
  std::vector<std::uint8_t> heap;

  Image() = default;
  Image(const Image&) = delete;
  Image& operator=(const Image&) = delete;
  ~Image() {
    if (map != nullptr && size > 0) ::munmap(map, size);
  }
};

SymtTrace::SymtTrace(std::shared_ptr<Image> image, std::string path)
    : image_(std::move(image)), data_(image_->data), size_(image_->size),
      path_(std::move(path)) {
  auto fail = [this](const std::string& what) {
    throw std::runtime_error("symt: " + what + " in " + path_);
  };
  if (size_ < kSymtHeaderBytes) fail("truncated header");
  if (std::memcmp(data_, kMagic, 4) != 0) fail("bad magic (not a SYMT trace)");
  const std::uint32_t version = get_u32(data_ + 4);
  if (version != kSymtVersion) {
    fail("unsupported version " + std::to_string(version) + " (expected " +
         std::to_string(kSymtVersion) + "; version 1 is the legacy trace.hpp format)");
  }
  const std::uint32_t threads = get_u32(data_ + 8);
  if (threads == 0) fail("zero threads");
  if (threads > kSymtMaxThreads) fail("implausible thread count " + std::to_string(threads));
  const std::uint32_t flags = get_u32(data_ + 12);
  if (flags != 0) fail("unknown header flags");
  total_records_ = get_u64(data_ + 16);

  const std::uint64_t table_end =
      kSymtHeaderBytes + static_cast<std::uint64_t>(kSymtThreadEntryBytes) * threads;
  if (table_end > size_) fail("thread table overruns the file");

  table_.reserve(threads);
  std::uint64_t expected_offset = table_end;
  std::uint64_t record_sum = 0;
  for (std::uint32_t t = 0; t < threads; ++t) {
    const std::uint8_t* entry = data_ + kSymtHeaderBytes + kSymtThreadEntryBytes * t;
    SymtThreadInfo info;
    info.offset = get_u64(entry);
    info.bytes = get_u64(entry + 8);
    info.records = get_u64(entry + 16);
    // Payloads must tile [table_end, size) in order: this rules out
    // overlaps, gaps, and out-of-bounds in one comparison each.
    if (info.offset != expected_offset) {
      fail("thread " + std::to_string(t) + " payload offset is not contiguous");
    }
    if (info.offset + info.bytes < info.offset || info.offset + info.bytes > size_) {
      fail("thread " + std::to_string(t) + " payload overruns the file");
    }
    if (info.records > info.bytes) {
      // Every record is at least one byte, so this header lies.
      fail("thread " + std::to_string(t) + " claims more records than payload bytes");
    }
    expected_offset = info.offset + info.bytes;
    record_sum += info.records;
    table_.push_back(info);
  }
  if (expected_offset != size_) fail("trailing bytes after the last payload");
  if (record_sum != total_records_) fail("header record count disagrees with thread table");
}

SymtTrace SymtTrace::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw std::runtime_error("symt: cannot open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw std::runtime_error("symt: cannot stat " + path);
  }
  auto image = std::make_shared<Image>();
  image->size = static_cast<std::size_t>(st.st_size);
  if (image->size > 0) {
    void* map = ::mmap(nullptr, image->size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      image->map = map;
      image->data = static_cast<const std::uint8_t*>(map);
    } else {
      // Not mappable (e.g. some special filesystems): fall back to a read.
      image->heap.resize(image->size);
      std::size_t got = 0;
      while (got < image->size) {
        const ::ssize_t n = ::read(fd, image->heap.data() + got, image->size - got);
        if (n <= 0) {
          ::close(fd);
          throw std::runtime_error("symt: read failed for " + path);
        }
        got += static_cast<std::size_t>(n);
      }
      image->data = image->heap.data();
    }
  }
  ::close(fd);
  return SymtTrace(std::move(image), path);
}

SymtTrace SymtTrace::from_buffer(std::vector<std::uint8_t> buffer) {
  auto image = std::make_shared<Image>();
  image->heap = std::move(buffer);
  image->data = image->heap.data();
  image->size = image->heap.size();
  return SymtTrace(std::move(image), "<memory>");
}

std::uint64_t SymtTrace::payload_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& info : table_) total += info.bytes;
  return total;
}

// --- cursor ----------------------------------------------------------------

void SymtCursor::fail(const std::string& what) const {
  throw std::runtime_error("symt: thread " + std::to_string(thread_) + ": " + what);
}

bool SymtCursor::next(SymtRecord& out) {
  if (remaining_ == 0) {
    if (pos_ != end_) fail("trailing bytes after the last record");
    return false;
  }
  if (pos_ == end_) fail("payload ends before the declared record count");
  const std::uint8_t tag = *pos_++;
  if ((tag & kReservedMask) != 0) fail("reserved tag bits set (corrupt record)");
  const auto raw_op = static_cast<std::uint8_t>(tag & kOpMask);
  if (raw_op > static_cast<std::uint8_t>(SymtOp::Wait)) fail("unknown opcode");
  const auto op = static_cast<SymtOp>(raw_op);
  const bool has_gap = (tag & kGapFlag) != 0;
  if (has_gap && op != SymtOp::Read && op != SymtOp::Write) {
    fail("gap flag on a non-memory record");
  }

  out = SymtRecord{};
  out.op = op;
  switch (op) {
    case SymtOp::Read:
    case SymtOp::Write: {
      const std::int64_t delta = symt_unzigzag(symt_get_varint(pos_, end_));
      prev_addr_ += static_cast<cachesim::Addr>(delta);
      out.addr = prev_addr_;
      if (has_gap) {
        const std::uint64_t gap = symt_get_varint(pos_, end_);
        if (gap == 0) fail("explicit zero gap (non-canonical encoding)");
        if (gap > ~std::uint32_t{0}) fail("compute gap overflows 32 bits");
        out.gap = static_cast<std::uint32_t>(gap);
      }
      break;
    }
    case SymtOp::Barrier:
    case SymtOp::LockAcquire:
    case SymtOp::LockRelease:
    case SymtOp::Signal:
      out.arg = symt_get_varint(pos_, end_);
      break;
    case SymtOp::Wait: {
      out.arg = symt_get_varint(pos_, end_);
      const std::uint64_t partner = symt_get_varint(pos_, end_);
      if (partner > kSymtMaxThreads) fail("wait partner thread id is implausible");
      out.partner = static_cast<std::uint32_t>(partner);
      break;
    }
  }
  --remaining_;
  return true;
}

std::size_t SymtCursor::decode_mem_run(cachesim::MemRef* refs, std::uint32_t* gaps,
                                       std::size_t max) {
  std::size_t n = 0;
  const std::uint8_t* p = pos_;
  cachesim::Addr addr = prev_addr_;
  std::uint64_t remaining = remaining_;
  while (n < max && remaining > 0) {
    if (p == end_) fail("payload ends before the declared record count");
    const std::uint8_t tag = *p;
    if ((tag & kOpMask) > static_cast<std::uint8_t>(SymtOp::Write) ||
        (tag & kReservedMask) != 0) {
      break;  // sync record (or corruption): hand back to next()
    }
    ++p;
    const std::int64_t delta = symt_unzigzag(symt_get_varint(p, end_));
    addr += static_cast<cachesim::Addr>(delta);
    refs[n].addr = addr;
    refs[n].is_write = (tag & kOpMask) == static_cast<std::uint8_t>(SymtOp::Write);
    std::uint32_t gap = 0;
    if ((tag & kGapFlag) != 0) {
      const std::uint64_t g = symt_get_varint(p, end_);
      if (g == 0) fail("explicit zero gap (non-canonical encoding)");
      if (g > ~std::uint32_t{0}) fail("compute gap overflows 32 bits");
      gap = static_cast<std::uint32_t>(g);
    }
    if (gaps) gaps[n] = gap;
    ++n;
    --remaining;
  }
  pos_ = p;
  prev_addr_ = addr;
  remaining_ = remaining;
  return n;
}

// --- stats -----------------------------------------------------------------

SymtStats collect_stats(const SymtTrace& trace) {
  SymtStats stats;
  stats.threads = trace.num_threads();
  std::unordered_set<std::uint64_t> lines;
  bool any_mem = false;
  for (std::size_t t = 0; t < trace.num_threads(); ++t) {
    SymtCursor cursor(trace, t);
    SymtRecord rec;
    while (cursor.next(rec)) {
      ++stats.records;
      if (rec.is_mem()) {
        ++stats.mem_refs;
        if (rec.op == SymtOp::Write) ++stats.writes;
        lines.insert(rec.addr >> 6);
        if (!any_mem || rec.addr < stats.min_addr) stats.min_addr = rec.addr;
        if (!any_mem || rec.addr > stats.max_addr) stats.max_addr = rec.addr;
        any_mem = true;
        continue;
      }
      ++stats.sync_events;
      switch (rec.op) {
        case SymtOp::Barrier: ++stats.barriers; break;
        case SymtOp::LockAcquire:
        case SymtOp::LockRelease: ++stats.locks; break;
        case SymtOp::Signal: ++stats.signals; break;
        case SymtOp::Wait:
          ++stats.waits;
          if (rec.partner >= trace.num_threads()) {
            throw std::runtime_error("symt: thread " + std::to_string(t) +
                                     " waits on nonexistent thread " +
                                     std::to_string(rec.partner));
          }
          break;
        default: break;
      }
    }
  }
  stats.footprint_lines = lines.size();
  return stats;
}

}  // namespace symbiosis::workload
