// benchmark_model.hpp — synthetic models of the paper's benchmark pool.
//
// A benchmark is a cycled sequence of phases; each phase pairs an address
// pattern with a compute gap (mean non-memory instructions per reference)
// and a write ratio. The 12 SPEC CPU2006 stand-ins are parameterised by
// their published cache-behaviour classes, scaled to the simulated L2:
//
//   mcf         pointer-chase ~0.8×L2 + hot Zipf — the most cache-SENSITIVE
//   omnetpp     large Zipf ~1.5×L2 — sensitive victim
//   libquantum  stream ≫L2 + a reuse phase — footprint AGGRESSOR
//   hmmer       stream ≫L2, high traffic, no locality — insensitive (§5.1.1)
//   povray      tiny hot set, compute-bound — insensitive (§5.1.1)
//   perlbench/gobmk/sjeng/gcc/bzip2/astar/h264ref — mixed middle classes
//
// The class structure — not absolute runtimes — is what the paper's
// scheduling results depend on (see DESIGN.md substitution table).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workload/access_pattern.hpp"

namespace symbiosis::workload {

/// One simulated instruction step: @p compute_instr back-to-back non-memory
/// instructions followed by one memory reference.
struct Step {
  std::uint32_t compute_instr = 0;
  Addr addr = 0;
  bool is_write = false;
};

/// Uniform interface the machine scheduler runs: anything that yields Steps.
class TaskStream {
 public:
  virtual ~TaskStream() = default;
  [[nodiscard]] virtual Step next() = 0;
  /// True once total_refs references have been issued ("run to completion").
  [[nodiscard]] virtual bool complete() const = 0;
  /// Restart from scratch (the paper restarts finished benchmarks until the
  /// longest of the mix completes).
  virtual void restart() = 0;
  [[nodiscard]] virtual const std::string& name() const = 0;
  [[nodiscard]] virtual std::uint64_t refs_issued() const = 0;
  [[nodiscard]] virtual std::uint64_t total_refs() const = 0;
};

/// One phase of a benchmark.
struct PhaseSpec {
  PatternSpec pattern;
  double compute_gap = 10.0;   ///< mean non-memory instructions per reference
  double write_ratio = 0.3;
  std::uint64_t refs = 50'000; ///< references spent in this phase per visit
};

/// Declarative benchmark description (value type).
struct BenchmarkSpec {
  std::string name;
  std::vector<PhaseSpec> phases;       ///< cycled until total_refs
  std::uint64_t total_refs = 1'000'000;

  /// Address-space bytes the benchmark touches (max phase region).
  [[nodiscard]] std::uint64_t footprint_bytes() const noexcept;
};

/// Live single-threaded benchmark instance.
class Workload final : public TaskStream {
 public:
  /// @param base line-aligned base address (the process's address space)
  Workload(BenchmarkSpec spec, Addr base, util::Rng rng);

  [[nodiscard]] Step next() override;
  [[nodiscard]] bool complete() const override { return refs_issued_ >= spec_.total_refs; }
  void restart() override;
  [[nodiscard]] const std::string& name() const override { return spec_.name; }
  [[nodiscard]] std::uint64_t refs_issued() const override { return refs_issued_; }
  [[nodiscard]] std::uint64_t total_refs() const override { return spec_.total_refs; }

  [[nodiscard]] const BenchmarkSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t current_phase() const noexcept { return phase_; }

 private:
  BenchmarkSpec spec_;
  util::Rng rng_;
  std::vector<std::unique_ptr<AccessPattern>> patterns_;  // one per phase
  std::size_t phase_ = 0;
  std::uint64_t refs_in_phase_ = 0;
  std::uint64_t refs_issued_ = 0;
};

/// Workload-scaling knobs shared by all profiles.
struct ScaleConfig {
  /// Reference L2 capacity; profile regions are fractions/multiples of it.
  /// Keep equal to the simulated machine's L2 size.
  std::uint64_t l2_bytes = 256 * 1024;
  /// Multiplier on every profile's reference counts (1.0 = default length).
  double length_scale = 1.0;
  std::uint64_t line_bytes = 64;
};

/// The paper's 12-program SPEC CPU2006 stand-in pool, in a fixed order.
[[nodiscard]] const std::vector<std::string>& spec2006_pool();

/// Build the scaled spec for a pool program; throws std::invalid_argument
/// for unknown names.
[[nodiscard]] BenchmarkSpec make_spec_benchmark(const std::string& name,
                                                const ScaleConfig& scale = {});

/// Convenience: instantiate a pool program at @p base.
[[nodiscard]] std::unique_ptr<Workload> make_spec_workload(const std::string& name, Addr base,
                                                           util::Rng rng,
                                                           const ScaleConfig& scale = {});

}  // namespace symbiosis::workload
