// symt.hpp — the .symt v2 binary multi-threaded trace format (DESIGN.md §14).
//
// A .symt file carries per-thread reference streams compact enough to replay
// billions of references: addresses are delta-encoded against the previous
// address of the SAME thread and varint-packed (LEB128, zigzag for signed
// deltas), so a sequential scan costs ~2 bytes per reference. Interleaved
// with the memory records each thread may carry synchronization events
// (barrier / lock / unlock / signal / wait-on-partner) that the replayer
// (workload/replayer.hpp) turns into happens-before edges between threads.
//
// File layout (little-endian):
//   header   "SYMT" magic, u32 version = 2, u32 thread_count, u32 flags(=0),
//            u64 total_records
//   table    thread_count × {u64 payload_offset, u64 payload_bytes,
//                            u64 record_count}
//   payloads one contiguous byte stream per thread, non-overlapping,
//            in table order
//
// Record encoding (sequential per-thread decode):
//   tag byte: bits 0..2 opcode (Read, Write, Barrier, LockAcquire,
//             LockRelease, Signal, Wait), bit 3 has_gap (memory ops only),
//             bits 4..7 must be zero — any other tag is a decode error.
//   Read/Write:  varint zigzag(addr - prev_addr)  [varint compute gap]
//   Barrier:     varint barrier_id
//   LockAcquire/LockRelease: varint lock_id
//   Signal:      varint event_id
//   Wait:        varint event_id, varint partner_thread
//
// Version 1 ("SYMT", version 1) is the legacy fixed-width single-stream
// format of workload/trace.hpp; readers of either version reject the other
// with a diagnostic, never undefined behaviour. Every decode is bounds-
// checked: truncated headers, overrunning thread tables, mid-record EOF and
// varint overflow all throw std::runtime_error naming the problem.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cachesim/hierarchy.hpp"

namespace symbiosis::workload {

inline constexpr std::uint32_t kSymtVersion = 2;
inline constexpr std::size_t kSymtHeaderBytes = 24;
inline constexpr std::size_t kSymtThreadEntryBytes = 24;
/// Hard cap on thread_count: a corrupt header must not drive a multi-GiB
/// thread-table allocation before the bounds check can reject it.
inline constexpr std::uint32_t kSymtMaxThreads = 1u << 20;

/// Record opcodes (tag bits 0..2).
enum class SymtOp : std::uint8_t {
  Read = 0,
  Write = 1,
  Barrier = 2,
  LockAcquire = 3,
  LockRelease = 4,
  Signal = 5,
  Wait = 6,
};

[[nodiscard]] std::string to_string(SymtOp op);

/// One decoded record. For memory ops @p addr is the absolute byte address
/// (the cursor resolves deltas); for sync ops @p arg is the barrier/lock/
/// event id and @p partner the waited-on thread (Wait only).
struct SymtRecord {
  SymtOp op = SymtOp::Read;
  cachesim::Addr addr = 0;
  std::uint32_t gap = 0;  ///< compute instructions before the access
  std::uint64_t arg = 0;
  std::uint32_t partner = 0;

  [[nodiscard]] bool is_mem() const noexcept {
    return op == SymtOp::Read || op == SymtOp::Write;
  }
  [[nodiscard]] bool operator==(const SymtRecord&) const noexcept = default;
};

// --- varint primitives (exposed for the conformance/property tests) --------

/// Append @p value as LEB128 (7 bits per byte, high bit = continuation).
void symt_put_varint(std::vector<std::uint8_t>& out, std::uint64_t value);

/// Decode one varint from [p, end). Advances @p p past the varint. Throws
/// std::runtime_error on overflow (more than 10 bytes / 64 significant bits)
/// or when the buffer ends mid-varint.
[[nodiscard]] std::uint64_t symt_get_varint(const std::uint8_t*& p, const std::uint8_t* end);

[[nodiscard]] constexpr std::uint64_t symt_zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t symt_unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

// --- writer ----------------------------------------------------------------

/// Builds a .symt v2 image in memory, one stream per thread, and writes it
/// out in one shot (finish() / write_file()). Appends are canonical: the
/// golden-fixture suite pins decode→re-encode byte stability on them.
class SymtWriter {
 public:
  /// @param threads number of trace threads (≥ 1).
  explicit SymtWriter(std::size_t threads);

  /// Append one memory reference for @p thread; the address delta against
  /// the thread's previous reference is what lands in the file. A gap of 0
  /// costs nothing (has_gap stays clear).
  void append_mem(std::size_t thread, cachesim::Addr addr, bool is_write, std::uint32_t gap = 0);
  void append_barrier(std::size_t thread, std::uint64_t barrier_id);
  void append_lock(std::size_t thread, std::uint64_t lock_id);
  void append_unlock(std::size_t thread, std::uint64_t lock_id);
  void append_signal(std::size_t thread, std::uint64_t event_id);
  /// Wait until @p partner has issued one more Signal of @p event_id than
  /// this thread has consumed so far.
  void append_wait(std::size_t thread, std::uint64_t event_id, std::size_t partner);

  /// Append an already-decoded record (converter path).
  void append(std::size_t thread, const SymtRecord& record);

  [[nodiscard]] std::size_t threads() const noexcept { return streams_.size(); }
  [[nodiscard]] std::uint64_t records(std::size_t thread) const {
    return streams_.at(thread).records;
  }
  [[nodiscard]] std::uint64_t total_records() const noexcept;

  /// Assemble header + thread table + payloads into one image.
  [[nodiscard]] std::vector<std::uint8_t> finish() const;

  /// finish() straight to a file; throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  struct Stream {
    std::vector<std::uint8_t> bytes;
    cachesim::Addr prev_addr = 0;
    std::uint64_t records = 0;
  };
  std::vector<Stream> streams_;
};

// --- reader ----------------------------------------------------------------

/// Per-thread payload location parsed out of the thread table.
struct SymtThreadInfo {
  std::uint64_t offset = 0;  ///< payload byte offset from file start
  std::uint64_t bytes = 0;
  std::uint64_t records = 0;
};

/// A validated, decodable .symt v2 image. open() maps the file read-only
/// (mmap, falling back to a plain read); from_buffer() adopts an in-memory
/// image (tests, benches, converters). All header/table validation happens
/// eagerly in the constructor; payload decoding is streamed by SymtCursor.
class SymtTrace {
 public:
  /// Map (or read) @p path. Throws std::runtime_error with a diagnostic on
  /// any structural problem: short/garbled header, unsupported version,
  /// thread table or payload overrunning the file, overlapping payloads.
  [[nodiscard]] static SymtTrace open(const std::string& path);

  /// Adopt an in-memory image (same validation as open()).
  [[nodiscard]] static SymtTrace from_buffer(std::vector<std::uint8_t> image);

  SymtTrace(SymtTrace&&) noexcept = default;
  SymtTrace& operator=(SymtTrace&&) noexcept = default;
  SymtTrace(const SymtTrace&) = delete;
  SymtTrace& operator=(const SymtTrace&) = delete;
  ~SymtTrace() = default;

  [[nodiscard]] std::size_t num_threads() const noexcept { return table_.size(); }
  [[nodiscard]] const SymtThreadInfo& thread(std::size_t t) const { return table_.at(t); }
  [[nodiscard]] std::uint64_t total_records() const noexcept { return total_records_; }
  [[nodiscard]] std::uint64_t payload_bytes() const noexcept;
  [[nodiscard]] std::size_t file_bytes() const noexcept { return size_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  [[nodiscard]] const std::uint8_t* payload_begin(std::size_t t) const {
    return data_ + table_.at(t).offset;
  }
  [[nodiscard]] const std::uint8_t* payload_end(std::size_t t) const {
    return data_ + table_.at(t).offset + table_.at(t).bytes;
  }

 private:
  /// Owns the bytes behind data_: either an mmap'd region or a heap buffer.
  struct Image;
  SymtTrace(std::shared_ptr<Image> image, std::string path);

  std::shared_ptr<Image> image_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::string path_;
  std::vector<SymtThreadInfo> table_;
  std::uint64_t total_records_ = 0;
};

/// Streaming decoder over one thread's payload. Holds the delta-decode state
/// (previous address); every read is bounds-checked against the payload end
/// and throws std::runtime_error on mid-record EOF, bad tags or varint
/// overflow — a corrupt payload can never read out of bounds.
class SymtCursor {
 public:
  SymtCursor(const SymtTrace& trace, std::size_t thread)
      : pos_(trace.payload_begin(thread)),
        end_(trace.payload_end(thread)),
        remaining_(trace.thread(thread).records),
        thread_(thread) {}

  /// Decode the next record into @p out. Returns false at end of stream
  /// (record count exhausted; trailing payload bytes are a decode error).
  bool next(SymtRecord& out);

  /// Fast path: decode up to @p max CONSECUTIVE memory records into
  /// @p refs (and, when non-null, their compute gaps into @p gaps). Stops
  /// early at a sync record WITHOUT consuming it — the next call to next()
  /// or decode_mem_run() sees it. Returns the number decoded.
  std::size_t decode_mem_run(cachesim::MemRef* refs, std::uint32_t* gaps, std::size_t max);

  [[nodiscard]] bool done() const noexcept { return remaining_ == 0; }
  [[nodiscard]] std::uint64_t remaining() const noexcept { return remaining_; }
  [[nodiscard]] std::size_t thread() const noexcept { return thread_; }

 private:
  [[noreturn]] void fail(const std::string& what) const;

  const std::uint8_t* pos_;
  const std::uint8_t* end_;
  std::uint64_t remaining_;
  cachesim::Addr prev_addr_ = 0;
  std::size_t thread_;
};

// --- whole-trace helpers ---------------------------------------------------

/// Aggregate statistics of a trace (the `trace_tools validate --stats`
/// summary and the run-report "trace" stanza).
struct SymtStats {
  std::uint64_t threads = 0;
  std::uint64_t records = 0;
  std::uint64_t mem_refs = 0;
  std::uint64_t writes = 0;
  std::uint64_t sync_events = 0;
  std::uint64_t barriers = 0;
  std::uint64_t locks = 0;
  std::uint64_t signals = 0;
  std::uint64_t waits = 0;
  /// Footprint: distinct 64-byte lines touched across all threads.
  std::uint64_t footprint_lines = 0;
  cachesim::Addr min_addr = 0;
  cachesim::Addr max_addr = 0;

  [[nodiscard]] double write_ratio() const noexcept {
    return mem_refs ? static_cast<double>(writes) / static_cast<double>(mem_refs) : 0.0;
  }
};

/// Fully decode @p trace and gather stats; throws on any malformed record.
/// Also the cheap "structurally sound end to end" check behind
/// `trace_tools validate`. Wait partners out of range are rejected here.
[[nodiscard]] SymtStats collect_stats(const SymtTrace& trace);

}  // namespace symbiosis::workload
