#include "workload/trace_source.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace symbiosis::workload {

std::unique_ptr<TaskStream> SyntheticSource::make_stream(std::size_t thread) const {
  if (thread != 0) throw std::out_of_range("SyntheticSource: single-threaded source");
  return std::make_unique<Workload>(spec_, base_, util::Rng{seed_});
}

namespace {

/// Memory records of one trace thread (SymtTaskStream's total_refs).
std::uint64_t count_mem_refs(const SymtTrace& trace, std::size_t thread) {
  SymtCursor cursor(trace, thread);
  SymtRecord rec;
  std::uint64_t refs = 0;
  while (cursor.next(rec)) refs += rec.is_mem() ? 1 : 0;
  return refs;
}

}  // namespace

SymtTaskStream::SymtTaskStream(std::shared_ptr<const SymtTrace> trace, std::size_t thread,
                               std::string name)
    : trace_(std::move(trace)),
      thread_(thread),
      name_(std::move(name)),
      cursor_(*trace_, thread),
      total_refs_(count_mem_refs(*trace_, thread)) {
  if (total_refs_ == 0) {
    throw std::invalid_argument("SymtTaskStream: thread " + std::to_string(thread) +
                                " has no memory references");
  }
}

Step SymtTaskStream::next() {
  SymtRecord rec;
  while (issued_ < total_refs_ && cursor_.next(rec)) {
    if (!rec.is_mem()) {
      ++skipped_syncs_;
      continue;
    }
    ++issued_;
    last_ = Step{rec.gap, rec.addr, rec.op == SymtOp::Write};
    return last_;
  }
  return last_;  // past the end: repeat, like TraceStream
}

void SymtTaskStream::restart() {
  cursor_ = SymtCursor(*trace_, thread_);
  issued_ = 0;
  skipped_syncs_ = 0;
}

SymtSource::SymtSource(std::shared_ptr<const SymtTrace> trace, std::string name)
    : trace_(std::move(trace)), name_(std::move(name)) {
  if (!trace_) throw std::invalid_argument("SymtSource: null trace");
}

std::unique_ptr<TaskStream> SymtSource::make_stream(std::size_t thread) const {
  if (thread >= trace_->num_threads()) throw std::out_of_range("SymtSource: bad thread");
  return std::make_unique<SymtTaskStream>(trace_, thread,
                                          name_ + ".t" + std::to_string(thread));
}

std::uint64_t record_stream(SymtWriter& writer, std::size_t thread, TaskStream& stream,
                            std::uint64_t refs) {
  std::uint64_t recorded = 0;
  for (; recorded < refs && !stream.complete(); ++recorded) {
    const Step step = stream.next();
    writer.append_mem(thread, step.addr, step.is_write, step.compute_instr);
  }
  return recorded;
}

std::vector<std::uint8_t> symt_from_benchmarks(const std::vector<std::string>& names,
                                               std::uint64_t refs_per_thread,
                                               std::uint64_t seed, const ScaleConfig& scale) {
  if (names.empty()) throw std::invalid_argument("symt_from_benchmarks: empty mix");
  SymtWriter writer(names.size());
  const util::Rng root(seed);
  for (std::size_t i = 0; i < names.size(); ++i) {
    // Disjoint 1 TiB address spaces, the machine::address_space_base layout.
    const Addr base = static_cast<Addr>(i + 1) << 40;
    auto workload = make_spec_workload(names[i], base, root.split(i), scale);
    record_stream(writer, i, *workload, refs_per_thread);
  }
  return writer.finish();
}

cachesim::BatchSummary replay_generated(const std::vector<std::string>& names,
                                        std::uint64_t refs_per_thread, std::uint64_t seed,
                                        cachesim::Hierarchy& hierarchy, std::size_t chunk,
                                        const ScaleConfig& scale) {
  if (names.empty()) throw std::invalid_argument("replay_generated: empty mix");
  if (chunk == 0) throw std::invalid_argument("replay_generated: zero chunk");
  const util::Rng root(seed);
  std::vector<std::unique_ptr<Workload>> workloads;
  std::vector<std::uint64_t> remaining(names.size(), refs_per_thread);
  workloads.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    const Addr base = static_cast<Addr>(i + 1) << 40;
    workloads.push_back(make_spec_workload(names[i], base, root.split(i), scale));
  }

  cachesim::BatchSummary totals;
  std::vector<cachesim::MemRef> buffer(chunk);
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t i = 0; i < names.size(); ++i) {
      std::size_t n = 0;
      while (n < chunk && remaining[i] > 0 && !workloads[i]->complete()) {
        const Step step = workloads[i]->next();
        buffer[n++] = {step.addr, step.is_write};
        --remaining[i];
      }
      if (n == 0) continue;
      totals += hierarchy.access_batch(i % hierarchy.num_cores(), buffer.data(), n);
      any = true;
    }
  }
  return totals;
}

}  // namespace symbiosis::workload
