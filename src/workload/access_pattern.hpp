// access_pattern.hpp — composable synthetic memory-reference generators.
//
// We do not have SPEC CPU2006 / PARSEC binaries or traces, so workloads are
// synthesised from a small algebra of address patterns whose cache behaviour
// classes match the programs the paper uses: strided scans, uniform random,
// Zipf-skewed hot sets, dependent pointer chases, pure streams, and a
// stack-distance-driven generator for tunable temporal locality. A pattern
// produces LINE-granular addresses inside [base, base + region); the
// benchmark layer adds compute gaps and write ratios (benchmark_model.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cachesim/addr.hpp"
#include "util/rng.hpp"

namespace symbiosis::workload {

using cachesim::Addr;

enum class PatternKind {
  Sequential,    ///< byte-sequential scan, wraps at region end
  Strided,       ///< fixed stride scan, wraps (Fig 1's conjured patterns)
  Random,        ///< uniform random line within the region
  Zipf,          ///< Zipf-skewed line popularity (hot working set)
  PointerChase,  ///< dependent walk of a random Hamiltonian cycle (mcf-like)
  Stream,        ///< sequential with negligible reuse (libquantum/hmmer-like)
  StackDistance, ///< reuse distances drawn from a geometric distribution
};

[[nodiscard]] std::string to_string(PatternKind kind);
[[nodiscard]] PatternKind parse_pattern(const std::string& name);

/// Declarative description of one pattern (value type, cheap to copy).
struct PatternSpec {
  PatternKind kind = PatternKind::Random;
  std::uint64_t region_bytes = 64 * 1024;
  std::uint64_t stride_bytes = 64;   ///< Strided only
  double zipf_skew = 0.9;            ///< Zipf only
  double locality = 0.9;             ///< StackDistance: P(reuse) per access
  std::uint64_t line_bytes = 64;
};

/// A live pattern instance bound to a base address and an RNG stream.
class AccessPattern {
 public:
  virtual ~AccessPattern() = default;
  /// Next byte address (line-aligned).
  [[nodiscard]] virtual Addr next(util::Rng& rng) = 0;
  /// Restart from the initial state.
  virtual void reset() = 0;
  [[nodiscard]] virtual const PatternSpec& spec() const = 0;
};

/// Instantiate a pattern at @p base (line-aligned). @p rng seeds any
/// internal randomized construction (e.g. the pointer-chase permutation).
[[nodiscard]] std::unique_ptr<AccessPattern> make_pattern(const PatternSpec& spec, Addr base,
                                                          util::Rng& rng);

}  // namespace symbiosis::workload
