// tlb.hpp — small fully-associative TLB model.
//
// Exists for the §2.2 motivation experiment: TLB misses are one of the
// event-based performance counters the paper shows do NOT track cache
// footprint. Flushed on context switch (no ASIDs, like the era's x86).
#pragma once

#include <cstdint>
#include <vector>

namespace symbiosis::cachesim {

/// Fully-associative, true-LRU TLB over virtual page numbers.
///
/// Storage is structure-of-arrays: the hit check is a tight scan over a
/// dense page-number array (the translation CAM) with validity encoded as a
/// sentinel page plus an invalid-prefix counter, and recency is an intrusive
/// doubly-linked list over the slots so the LRU victim is O(1) instead of a
/// stamp scan. Because the reference semantics ("first slot with the
/// minimum stamp") assigns a distinct stamp on every touch, the minimum is
/// always unique and equals the list tail — the victim choice is
/// bit-identical to the classic scan. This sits on the per-access hot path
/// of every Hierarchy walk.
class Tlb {
 public:
  /// @param entries    TLB capacity
  /// @param page_bytes page size (power of two), default 4 KiB
  explicit Tlb(std::size_t entries = 64, std::size_t page_bytes = 4096);

  /// Translate the page containing @p addr; returns true on a TLB hit.
  bool access(std::uint64_t addr) noexcept;

  /// Context-switch flush.
  void flush() noexcept;

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  void reset_stats() noexcept { hits_ = misses_ = 0; }

  [[nodiscard]] std::size_t capacity() const noexcept { return pages_.size(); }
  [[nodiscard]] std::size_t page_bytes() const noexcept { return page_bytes_; }

 private:
  /// Sentinel marking an empty slot. Real pages collide with it only when
  /// page_bytes == 1 and addr == ~0; access() handles that case explicitly.
  static constexpr std::uint64_t kNoPage = ~std::uint64_t{0};
  /// Null link for the recency list.
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  void detach(std::uint32_t i) noexcept;
  void push_front(std::uint32_t i) noexcept;
  void touch(std::uint32_t i) noexcept;

  std::size_t page_bytes_;
  unsigned page_bits_;
  std::vector<std::uint64_t> pages_;  ///< kNoPage in the invalid prefix
  std::vector<std::uint32_t> prev_;   ///< recency list toward MRU
  std::vector<std::uint32_t> next_;   ///< recency list toward LRU
  std::uint32_t head_ = kNil;         ///< MRU valid slot
  std::uint32_t tail_ = kNil;         ///< LRU valid slot — the full-TLB victim
  /// Invalid slots are exactly [0, invalid_count_): fills consume the prefix
  /// from the top down, which reproduces the classic scan's victim choice
  /// (the last invalid slot in iteration order).
  std::size_t invalid_count_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace symbiosis::cachesim
