// tlb.hpp — small fully-associative TLB model.
//
// Exists for the §2.2 motivation experiment: TLB misses are one of the
// event-based performance counters the paper shows do NOT track cache
// footprint. Flushed on context switch (no ASIDs, like the era's x86).
#pragma once

#include <cstdint>
#include <vector>

namespace symbiosis::cachesim {

/// Fully-associative, true-LRU TLB over virtual page numbers.
class Tlb {
 public:
  /// @param entries    TLB capacity
  /// @param page_bytes page size (power of two), default 4 KiB
  explicit Tlb(std::size_t entries = 64, std::size_t page_bytes = 4096);

  /// Translate the page containing @p addr; returns true on a TLB hit.
  bool access(std::uint64_t addr) noexcept;

  /// Context-switch flush.
  void flush() noexcept;

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  void reset_stats() noexcept { hits_ = misses_ = 0; }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t page_bytes() const noexcept { return page_bytes_; }

 private:
  struct Slot {
    std::uint64_t page = 0;
    std::uint64_t stamp = 0;
    bool valid = false;
  };

  std::size_t page_bytes_;
  unsigned page_bits_;
  std::vector<Slot> slots_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace symbiosis::cachesim
