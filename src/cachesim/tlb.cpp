#include "cachesim/tlb.hpp"

#include <limits>
#include <stdexcept>

#include "util/bitops.hpp"

namespace symbiosis::cachesim {

Tlb::Tlb(std::size_t entries, std::size_t page_bytes)
    : page_bytes_(page_bytes),
      page_bits_(util::floor_log2(page_bytes)),
      slots_(entries) {
  if (entries == 0) throw std::invalid_argument("Tlb: entries must be > 0");
  if (!util::is_pow2(page_bytes)) throw std::invalid_argument("Tlb: page size must be pow2");
}

bool Tlb::access(std::uint64_t addr) noexcept {
  const std::uint64_t page = addr >> page_bits_;
  ++clock_;
  Slot* lru = &slots_[0];
  for (auto& slot : slots_) {
    if (slot.valid && slot.page == page) {
      slot.stamp = clock_;
      ++hits_;
      return true;
    }
    if (!slot.valid) {
      lru = &slot;
    } else if (lru->valid && slot.stamp < lru->stamp) {
      lru = &slot;
    }
  }
  ++misses_;
  lru->page = page;
  lru->stamp = clock_;
  lru->valid = true;
  return false;
}

void Tlb::flush() noexcept {
  for (auto& slot : slots_) slot.valid = false;
}

}  // namespace symbiosis::cachesim
