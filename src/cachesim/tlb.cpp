#include "cachesim/tlb.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/bitops.hpp"
#include "util/hotpath.hpp"

namespace symbiosis::cachesim {

Tlb::Tlb(std::size_t entries, std::size_t page_bytes)
    : page_bytes_(page_bytes),
      page_bits_(util::floor_log2(page_bytes)),
      pages_(entries, kNoPage),
      prev_(entries, kNil),
      next_(entries, kNil),
      invalid_count_(entries) {
  if (entries == 0) throw std::invalid_argument("Tlb: entries must be > 0");
  if (entries >= kNil) throw std::invalid_argument("Tlb: entries too large");
  if (!util::is_pow2(page_bytes)) throw std::invalid_argument("Tlb: page size must be pow2");
}

void Tlb::detach(std::uint32_t i) noexcept {
  if (prev_[i] != kNil) {
    next_[prev_[i]] = next_[i];
  } else {
    head_ = next_[i];
  }
  if (next_[i] != kNil) {
    prev_[next_[i]] = prev_[i];
  } else {
    tail_ = prev_[i];
  }
}

void Tlb::push_front(std::uint32_t i) noexcept {
  prev_[i] = kNil;
  next_[i] = head_;
  if (head_ != kNil) {
    prev_[head_] = i;
  } else {
    tail_ = i;
  }
  head_ = i;
}

void Tlb::touch(std::uint32_t i) noexcept {
  if (i == head_) return;
  detach(i);
  push_front(i);
}

SYM_HOT bool Tlb::access(std::uint64_t addr) noexcept {
  const std::uint64_t page = addr >> page_bits_;
  const std::size_t n = pages_.size();

  // Invalid slots hold kNoPage, so one compare per slot decides the hit. If
  // the page collides with the sentinel (page_bytes == 1 and addr == ~0),
  // restrict the scan to the valid suffix.
  std::size_t i = (page != kNoPage) ? 0 : invalid_count_;
  for (; i < n; ++i) {
    if (pages_[i] == page) break;
  }
  if (i < n) [[likely]] {
    ++hits_;
    touch(static_cast<std::uint32_t>(i));
    return true;
  }

  ++misses_;
  std::uint32_t victim;
  if (invalid_count_ > 0) {
    victim = static_cast<std::uint32_t>(--invalid_count_);  // top of the prefix
    push_front(victim);
  } else {
    victim = tail_;  // unique LRU == the classic scan's first-min-stamp slot
    touch(victim);
  }
  pages_[victim] = page;
  return false;
}

void Tlb::flush() noexcept {
  std::fill(pages_.begin(), pages_.end(), kNoPage);
  invalid_count_ = pages_.size();
  head_ = tail_ = kNil;
}

}  // namespace symbiosis::cachesim
