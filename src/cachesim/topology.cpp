#include "cachesim/topology.hpp"

#include <sstream>

#include "util/check.hpp"

namespace symbiosis::cachesim {

std::size_t CachePartition::total_ways() const noexcept {
  std::size_t sum = 0;
  for (const std::size_t w : ways_per_group) sum += w;
  return sum;
}

namespace {

/// One shared level's partition against that level's associativity.
void validate_partition(const CachePartition& partition, std::size_t groups, std::size_t ways,
                        const char* level) {
  if (!partition.enabled()) return;
  SYM_CHECK_EQ(partition.groups(), groups, "cachesim.partition")
      << level << " partition must name exactly one way count per sharer group";
  for (const std::size_t w : partition.ways_per_group) {
    SYM_CHECK(w >= 1, "cachesim.partition")
        << level << " partition group with zero ways could never fill a line";
  }
  SYM_CHECK_LE(partition.total_ways(), ways, "cachesim.partition")
      << level << " partition claims more ways than the cache has";
}

}  // namespace

void HierarchyTopology::validate() const {
  SYM_CHECK(num_cores > 0, "cachesim.topology") << "topology needs at least one core";
  SYM_CHECK(l2_clusters > 0, "cachesim.topology") << "topology needs at least one L2 cluster";
  SYM_CHECK(l2_shared || l2_clusters == 1, "cachesim.topology")
      << "private-L2 topologies fix clusters = cores; leave l2_clusters at 1";
  SYM_CHECK_LE(clusters(), num_cores, "cachesim.topology")
      << "more L2 clusters than cores (an L2 with no sharers is dead hardware)";
  SYM_CHECK_EQ(clusters() * cores_per_cluster(), num_cores, "cachesim.topology")
      << "cluster count must divide the core count evenly (" << num_cores << " cores / "
      << clusters() << " clusters)";
  SYM_CHECK_EQ(l1.line_bytes, l2.line_bytes, "cachesim.topology")
      << "L1 and L2 must share a line size";
  if (l3) {
    SYM_CHECK_EQ(l3->line_bytes, l2.line_bytes, "cachesim.topology")
        << "L3 must share the L1/L2 line size";
  }
  SYM_CHECK(l3.has_value() || !l3_partition.enabled(), "cachesim.topology")
      << "an L3 way partition needs an L3";
  validate_partition(l2_partition, cores_per_cluster(), l2.ways, "L2");
  if (l3) validate_partition(l3_partition, clusters(), l3->ways, "L3");
}

std::string HierarchyTopology::describe() const {
  std::ostringstream out;
  out << num_cores << " cores / ";
  if (!l2_shared) {
    out << "private " << (l2.size_bytes / 1024) << "KiB L2s";
  } else {
    out << clusters() << "x" << (l2.size_bytes / 1024) << "KiB "
        << (clusters() == 1 ? "shared L2" : "cluster L2");
  }
  if (l2_partition.enabled()) out << " (way-partitioned)";
  if (l3) {
    out << " / " << (l3->size_bytes / (1024 * 1024)) << "MiB shared L3";
    if (l3_partition.enabled()) out << " (way-partitioned)";
  }
  return out.str();
}

}  // namespace symbiosis::cachesim
