// cache.hpp — a single set-associative cache level.
//
// Models tags only (no data), in the style of Simics' g-cache: enough to
// decide hits, choose victims, and notify listeners of fills/evictions so
// the signature hardware (sig::FilterUnit) can shadow the cache's state.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cachesim/addr.hpp"
#include "cachesim/replacement.hpp"
#include "cachesim/topology.hpp"

namespace symbiosis::cachesim {

/// Outcome of one cache access.
struct AccessResult {
  bool hit = false;
  std::size_t set = 0;
  std::size_t way = 0;          ///< way hit or filled
  bool evicted = false;         ///< a valid line was displaced by the fill
  LineAddr victim_line = 0;     ///< line address of the displaced line
  bool victim_dirty = false;
};

/// Aggregate counters for one cache, overall and per requestor.
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] double miss_rate() const noexcept {
    return accesses ? static_cast<double>(misses) / static_cast<double>(accesses) : 0.0;
  }
  void reset() noexcept { *this = CacheStats{}; }
};

/// Tag-array set-associative cache with pluggable replacement.
class Cache {
 public:
  /// @param requestors number of distinct requestor ids (cores) for stats
  Cache(CacheGeometry geometry, ReplacementKind replacement, std::size_t requestors = 1,
        std::uint64_t seed = 1);

  /// Access one line. On a miss the line is filled immediately (allocate on
  /// read AND write) and any displaced victim is reported in the result.
  AccessResult access(LineAddr line, bool is_write, std::size_t requestor = 0);

  /// Tag lookup without perturbing replacement state or stats.
  [[nodiscard]] bool probe(LineAddr line) const noexcept;

  /// Invalidate a line if present; returns true if it was found.
  /// Does not count as an eviction (used for inclusion enforcement).
  bool invalidate(LineAddr line) noexcept;

  /// Invalidate and report WHERE the line sat, so callers mirroring this
  /// cache's contents (the signature FilterUnit during L3 back-invalidation)
  /// can retire the same (set, way). Outputs are untouched on a miss.
  bool invalidate(LineAddr line, std::size_t& set_out, std::size_t& way_out) noexcept;

  /// Apply a CAT-style way partition (cachesim/topology.hpp): requestor r
  /// belongs to group @p group_of_requestor[r] and may FILL only within its
  /// group's contiguous way range; lookups still search the whole set, so
  /// no cached line is lost. Validated with SYM_CHECK ("cachesim.partition"):
  /// one group per requestor-group, every group at least one way, the sum
  /// within the associativity, and a partition-capable replacement policy.
  void set_partition(const CachePartition& partition,
                     const std::vector<std::size_t>& group_of_requestor);
  [[nodiscard]] bool partitioned() const noexcept { return partitioned_; }

  /// Occupied lines (valid entries) — true footprint ground truth for the
  /// Fig 2/5 experiment, counted per requestor when @p requestor != npos.
  [[nodiscard]] std::size_t occupancy(std::size_t requestor = kAnyRequestor) const noexcept;

  void reset() noexcept;

  [[nodiscard]] const CacheGeometry& geometry() const noexcept { return geom_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return total_; }
  [[nodiscard]] const CacheStats& stats_for(std::size_t requestor) const {
    return per_requestor_.at(requestor);
  }
  void reset_stats() noexcept;

  static constexpr std::size_t kAnyRequestor = static_cast<std::size_t>(-1);

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::size_t owner = 0;  ///< requestor that last filled the line
  };

  /// Fill/victim way range of one requestor ([0, ways) when unpartitioned).
  struct WayRange {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  [[nodiscard]] Line& line_at(std::size_t set, std::size_t way) noexcept {
    return lines_[set * ways_ + way];
  }
  [[nodiscard]] const Line& line_at(std::size_t set, std::size_t way) const noexcept {
    return lines_[set * ways_ + way];
  }

  CacheGeometry geom_;
  // Geometry decode cached at construction: CacheGeometry recomputes
  // sets()/set_bits() with integer divisions on every call, which dominates
  // the tag-lookup hot path. These never change after construction.
  std::size_t ways_;
  std::size_t sets_;
  std::uint64_t set_mask_;   ///< sets_ - 1 (sets is a power of two)
  unsigned set_bits_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::vector<Line> lines_;
  CacheStats total_;
  std::vector<CacheStats> per_requestor_;
  /// Per-requestor fill range, pre-resolved so the access hot path is one
  /// indexed load with no partition branch. Defaults to the full set.
  std::vector<WayRange> fill_range_;
  bool partitioned_ = false;
};

}  // namespace symbiosis::cachesim
