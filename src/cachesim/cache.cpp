#include "cachesim/cache.hpp"

#include "util/check.hpp"

namespace symbiosis::cachesim {

Cache::Cache(CacheGeometry geometry, ReplacementKind replacement, std::size_t requestors,
             std::uint64_t seed)
    : geom_(geometry),
      ways_(geometry.ways),
      sets_(geometry.sets()),
      set_mask_(geometry.sets() - 1),
      set_bits_(geometry.set_bits()),
      policy_(make_replacement(replacement, geometry.sets(), geometry.ways, seed)),
      lines_(geometry.lines()),
      per_requestor_(requestors) {
  geom_.validate();
}

AccessResult Cache::access(LineAddr line, bool is_write, std::size_t requestor) {
  SYM_DCHECK_BOUNDS(requestor, per_requestor_.size(), "cachesim.bounds");
  AccessResult result;
  const auto set = static_cast<std::size_t>(line & set_mask_);
  const std::uint64_t tag = line >> set_bits_;
  SYM_DCHECK_BOUNDS(set, sets_, "cachesim.bounds") << "set index from line decode";
  result.set = set;

  ++total_.accesses;
  ++per_requestor_[requestor].accesses;

  // Hit path.
  Line* const set_lines = &lines_[set * ways_];
  for (std::size_t w = 0; w < ways_; ++w) {
    Line& entry = set_lines[w];
    if (entry.valid && entry.tag == tag) {
      result.hit = true;
      result.way = w;
      entry.dirty = entry.dirty || is_write;
      policy_->on_touch(set, w);
      ++total_.hits;
      ++per_requestor_[requestor].hits;
      return result;
    }
  }

  // Miss: fill into an invalid way if any, else evict the policy's victim.
  ++total_.misses;
  ++per_requestor_[requestor].misses;

  std::size_t way = ways_;  // sentinel
  for (std::size_t w = 0; w < ways_; ++w) {
    if (!set_lines[w].valid) {
      way = w;
      break;
    }
  }
  if (way == ways_) {
    way = policy_->victim(set);
    SYM_DCHECK_LT(way, ways_, "cachesim.replacement")
        << "replacement policy chose an out-of-range victim way";
    Line& victim = set_lines[way];
    SYM_DCHECK(victim.valid, "cachesim.replacement")
        << "victim way " << way << " of full set " << set << " is invalid";
    SYM_DCHECK_BOUNDS(victim.owner, per_requestor_.size(), "cachesim.bounds");
    result.evicted = true;
    result.victim_line = (victim.tag << set_bits_) | set;
    result.victim_dirty = victim.dirty;
    ++total_.evictions;
    ++per_requestor_[victim.owner].evictions;
    if (victim.dirty) {
      ++total_.writebacks;
      ++per_requestor_[victim.owner].writebacks;
    }
  }

  Line& entry = line_at(set, way);
  entry.tag = tag;
  entry.valid = true;
  entry.dirty = is_write;
  entry.owner = requestor;
  policy_->on_fill(set, way);
  result.way = way;
  return result;
}

bool Cache::probe(LineAddr line) const noexcept {
  const auto set = static_cast<std::size_t>(line & set_mask_);
  const std::uint64_t tag = line >> set_bits_;
  for (std::size_t w = 0; w < ways_; ++w) {
    const Line& entry = line_at(set, w);
    if (entry.valid && entry.tag == tag) return true;
  }
  return false;
}

bool Cache::invalidate(LineAddr line) noexcept {
  const auto set = static_cast<std::size_t>(line & set_mask_);
  const std::uint64_t tag = line >> set_bits_;
  for (std::size_t w = 0; w < ways_; ++w) {
    Line& entry = line_at(set, w);
    if (entry.valid && entry.tag == tag) {
      entry.valid = false;
      entry.dirty = false;
      return true;
    }
  }
  return false;
}

std::size_t Cache::occupancy(std::size_t requestor) const noexcept {
  std::size_t count = 0;
  for (const Line& entry : lines_) {
    if (entry.valid && (requestor == kAnyRequestor || entry.owner == requestor)) ++count;
  }
  return count;
}

void Cache::reset() noexcept {
  for (auto& entry : lines_) entry = Line{};
  policy_->reset();
  reset_stats();
}

void Cache::reset_stats() noexcept {
  total_.reset();
  for (auto& s : per_requestor_) s.reset();
}

}  // namespace symbiosis::cachesim
