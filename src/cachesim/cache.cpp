#include "cachesim/cache.hpp"

#include "util/check.hpp"
#include "util/hotpath.hpp"

namespace symbiosis::cachesim {

Cache::Cache(CacheGeometry geometry, ReplacementKind replacement, std::size_t requestors,
             std::uint64_t seed)
    : geom_(geometry),
      ways_(geometry.ways),
      sets_(geometry.sets()),
      set_mask_(geometry.sets() - 1),
      set_bits_(geometry.set_bits()),
      policy_(make_replacement(replacement, geometry.sets(), geometry.ways, seed)),
      lines_(geometry.lines()),
      per_requestor_(requestors),
      fill_range_(requestors, WayRange{0, geometry.ways}) {
  geom_.validate();
}

void Cache::set_partition(const CachePartition& partition,
                          const std::vector<std::size_t>& group_of_requestor) {
  SYM_CHECK(partition.enabled(), "cachesim.partition")
      << "set_partition with an empty partition (use the default full range)";
  SYM_CHECK(policy_->supports_partitioning(), "cachesim.partition")
      << "replacement policy cannot confine victims to a way range";
  SYM_CHECK_EQ(group_of_requestor.size(), per_requestor_.size(), "cachesim.partition")
      << "need one group id per requestor";
  for (const std::size_t w : partition.ways_per_group) {
    SYM_CHECK(w >= 1, "cachesim.partition") << "a zero-way group could never fill a line";
  }
  SYM_CHECK_LE(partition.total_ways(), ways_, "cachesim.partition")
      << "partition claims " << partition.total_ways() << " ways of " << ways_;

  // Contiguous CAT-style ranges: group g owns [prefix(g), prefix(g) + ways).
  std::vector<WayRange> group_range(partition.groups());
  std::size_t next = 0;
  for (std::size_t g = 0; g < partition.groups(); ++g) {
    group_range[g] = WayRange{next, next + partition.ways_per_group[g]};
    next += partition.ways_per_group[g];
  }
  for (std::size_t r = 0; r < group_of_requestor.size(); ++r) {
    SYM_CHECK_BOUNDS(group_of_requestor[r], group_range.size(), "cachesim.partition")
        << "requestor " << r << " mapped to a group the partition does not define";
    fill_range_[r] = group_range[group_of_requestor[r]];
  }
  partitioned_ = true;
}

SYM_HOT AccessResult Cache::access(LineAddr line, bool is_write, std::size_t requestor) {
  SYM_DCHECK_BOUNDS(requestor, per_requestor_.size(), "cachesim.bounds");
  AccessResult result;
  const auto set = static_cast<std::size_t>(line & set_mask_);
  const std::uint64_t tag = line >> set_bits_;
  SYM_DCHECK_BOUNDS(set, sets_, "cachesim.bounds") << "set index from line decode";
  result.set = set;

  ++total_.accesses;
  ++per_requestor_[requestor].accesses;

  // Hit path.
  Line* const set_lines = &lines_[set * ways_];
  for (std::size_t w = 0; w < ways_; ++w) {
    Line& entry = set_lines[w];
    if (entry.valid && entry.tag == tag) {
      result.hit = true;
      result.way = w;
      entry.dirty = entry.dirty || is_write;
      // symhot: indirect(replacement-policy virtual dispatch; every override is a SYM_HOT root)
      policy_->on_touch(set, w);
      ++total_.hits;
      ++per_requestor_[requestor].hits;
      return result;
    }
  }

  // Miss: fill into an invalid way of the requestor's range if any, else
  // evict the policy's victim from that range. Unpartitioned caches have
  // every range pre-resolved to [0, ways), making this path identical to
  // the pre-partition scan.
  ++total_.misses;
  ++per_requestor_[requestor].misses;

  const WayRange range = fill_range_[requestor];
  std::size_t way = ways_;  // sentinel
  for (std::size_t w = range.begin; w < range.end; ++w) {
    if (!set_lines[w].valid) {
      way = w;
      break;
    }
  }
  if (way == ways_) {
    // symhot: indirect(replacement-policy virtual dispatch; every override is a SYM_HOT root)
    way = policy_->victim_in(set, range.begin, range.end);
    SYM_DCHECK(way >= range.begin && way < range.end, "cachesim.replacement")
        << "replacement policy chose a victim outside the requestor's way range";
    Line& victim = set_lines[way];
    SYM_DCHECK(victim.valid, "cachesim.replacement")
        << "victim way " << way << " of full set " << set << " is invalid";
    SYM_DCHECK_BOUNDS(victim.owner, per_requestor_.size(), "cachesim.bounds");
    result.evicted = true;
    result.victim_line = (victim.tag << set_bits_) | set;
    result.victim_dirty = victim.dirty;
    ++total_.evictions;
    ++per_requestor_[victim.owner].evictions;
    if (victim.dirty) {
      ++total_.writebacks;
      ++per_requestor_[victim.owner].writebacks;
    }
  }

  Line& entry = line_at(set, way);
  entry.tag = tag;
  entry.valid = true;
  entry.dirty = is_write;
  entry.owner = requestor;
  // symhot: indirect(replacement-policy virtual dispatch; every override is a SYM_HOT root)
  policy_->on_fill(set, way);
  result.way = way;
  return result;
}

bool Cache::probe(LineAddr line) const noexcept {
  const auto set = static_cast<std::size_t>(line & set_mask_);
  const std::uint64_t tag = line >> set_bits_;
  for (std::size_t w = 0; w < ways_; ++w) {
    const Line& entry = line_at(set, w);
    if (entry.valid && entry.tag == tag) return true;
  }
  return false;
}

bool Cache::invalidate(LineAddr line) noexcept {
  std::size_t set = 0;
  std::size_t way = 0;
  return invalidate(line, set, way);
}

bool Cache::invalidate(LineAddr line, std::size_t& set_out, std::size_t& way_out) noexcept {
  const auto set = static_cast<std::size_t>(line & set_mask_);
  const std::uint64_t tag = line >> set_bits_;
  for (std::size_t w = 0; w < ways_; ++w) {
    Line& entry = line_at(set, w);
    if (entry.valid && entry.tag == tag) {
      entry.valid = false;
      entry.dirty = false;
      set_out = set;
      way_out = w;
      return true;
    }
  }
  return false;
}

std::size_t Cache::occupancy(std::size_t requestor) const noexcept {
  std::size_t count = 0;
  for (const Line& entry : lines_) {
    if (entry.valid && (requestor == kAnyRequestor || entry.owner == requestor)) ++count;
  }
  return count;
}

void Cache::reset() noexcept {
  for (auto& entry : lines_) entry = Line{};
  policy_->reset();
  reset_stats();
}

void Cache::reset_stats() noexcept {
  total_.reset();
  for (auto& s : per_requestor_) s.reset();
}

}  // namespace symbiosis::cachesim
