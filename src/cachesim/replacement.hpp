// replacement.hpp — victim-selection policies for set-associative caches.
//
// The paper's L2 is modelled after the Core 2 Duo's (effectively LRU-like);
// the other policies exist for tests and sensitivity studies, and because
// the signature hardware must be replacement-agnostic (§6 stresses that the
// scheme does not modify the cache's normal operation).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace symbiosis::cachesim {

enum class ReplacementKind { Lru, Fifo, Random, TreePlru, Srrip };

[[nodiscard]] std::string to_string(ReplacementKind kind);
[[nodiscard]] ReplacementKind parse_replacement(const std::string& name);

/// Per-set replacement state machine. One instance serves the whole cache;
/// set/way coordinates are passed in.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Called on every hit or fill touch of (set, way).
  virtual void on_touch(std::size_t set, std::size_t way) noexcept = 0;
  /// Called when (set, way) receives a brand-new line.
  virtual void on_fill(std::size_t set, std::size_t way) noexcept = 0;
  /// Choose the victim way within @p set (all ways valid).
  [[nodiscard]] virtual std::size_t victim(std::size_t set) noexcept = 0;
  /// Choose the victim within ways [@p begin, @p end) of @p set — the
  /// way-partitioned variant (cachesim/topology.hpp). Contract:
  /// victim_in(set, 0, ways) is BIT-IDENTICAL to victim(set) for every
  /// policy, including any RNG draws, so an unpartitioned cache can route
  /// all victim selection through this entry point without drift.
  [[nodiscard]] virtual std::size_t victim_in(std::size_t set, std::size_t begin,
                                              std::size_t end) noexcept = 0;
  /// False for policies whose state cannot be confined to a way range
  /// (tree-PLRU); Cache::set_partition rejects those.
  [[nodiscard]] virtual bool supports_partitioning() const noexcept { return true; }
  /// Drop all state.
  virtual void reset() noexcept = 0;
};

/// Factory. @p seed only matters for Random.
[[nodiscard]] std::unique_ptr<ReplacementPolicy> make_replacement(ReplacementKind kind,
                                                                  std::size_t sets,
                                                                  std::size_t ways,
                                                                  std::uint64_t seed = 1);

}  // namespace symbiosis::cachesim
