// replacement.hpp — victim-selection policies for set-associative caches.
//
// The paper's L2 is modelled after the Core 2 Duo's (effectively LRU-like);
// the other policies exist for tests and sensitivity studies, and because
// the signature hardware must be replacement-agnostic (§6 stresses that the
// scheme does not modify the cache's normal operation).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace symbiosis::cachesim {

enum class ReplacementKind { Lru, Fifo, Random, TreePlru };

[[nodiscard]] std::string to_string(ReplacementKind kind);
[[nodiscard]] ReplacementKind parse_replacement(const std::string& name);

/// Per-set replacement state machine. One instance serves the whole cache;
/// set/way coordinates are passed in.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Called on every hit or fill touch of (set, way).
  virtual void on_touch(std::size_t set, std::size_t way) noexcept = 0;
  /// Called when (set, way) receives a brand-new line.
  virtual void on_fill(std::size_t set, std::size_t way) noexcept = 0;
  /// Choose the victim way within @p set (all ways valid).
  [[nodiscard]] virtual std::size_t victim(std::size_t set) noexcept = 0;
  /// Drop all state.
  virtual void reset() noexcept = 0;
};

/// Factory. @p seed only matters for Random.
[[nodiscard]] std::unique_ptr<ReplacementPolicy> make_replacement(ReplacementKind kind,
                                                                  std::size_t sets,
                                                                  std::size_t ways,
                                                                  std::uint64_t seed = 1);

}  // namespace symbiosis::cachesim
