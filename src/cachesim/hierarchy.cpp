#include "cachesim/hierarchy.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "util/check.hpp"
#include "util/hotpath.hpp"

namespace symbiosis::cachesim {

Hierarchy::Hierarchy(HierarchyConfig config) : config_(std::move(config)) {
  if (config_.num_cores == 0) throw std::invalid_argument("Hierarchy: num_cores must be > 0");
  config_.l1.validate();
  config_.l2.validate();
  if (config_.l3) config_.l3->validate();
  if (config_.l1.line_bytes != config_.l2.line_bytes) {
    throw std::invalid_argument("Hierarchy: L1 and L2 must share a line size");
  }
  topo_ = config_.topology();
  topo_.validate();  // SYM_CHECK: divisibility, partitions, L3 line size
  clusters_ = topo_.clusters();
  cores_per_cluster_ = topo_.cores_per_cluster();

  l1_.reserve(config_.num_cores);
  tlb_.reserve(config_.num_cores);
  for (std::size_t c = 0; c < config_.num_cores; ++c) {
    l1_.push_back(std::make_unique<Cache>(config_.l1, config_.l1_replacement, 1,
                                          config_.seed + 101 * c));
    tlb_.push_back(std::make_unique<Tlb>(config_.tlb_entries));
  }

  stream_.resize(config_.num_cores);
  l2_.reserve(clusters_);
  for (std::size_t i = 0; i < clusters_; ++i) {
    l2_.push_back(std::make_unique<Cache>(config_.l2, config_.l2_replacement,
                                          config_.num_cores, config_.seed + 977 * i));
  }
  if (topo_.l2_partition.enabled()) {
    // Requestors are GLOBAL core ids; partition groups are cluster-local
    // cores, and cluster cl's core c sits at local slot c % cores_per_cluster.
    std::vector<std::size_t> group_of(config_.num_cores);
    for (std::size_t c = 0; c < config_.num_cores; ++c) group_of[c] = c % cores_per_cluster_;
    for (auto& l2 : l2_) l2->set_partition(topo_.l2_partition, group_of);
  }

  if (topo_.l3) {
    l3_ = std::make_unique<Cache>(*topo_.l3, config_.l3_replacement, clusters_,
                                  config_.seed + 50021);
    if (topo_.l3_partition.enabled()) {
      std::vector<std::size_t> group_of(clusters_);
      for (std::size_t i = 0; i < clusters_; ++i) group_of[i] = i;
      l3_->set_partition(topo_.l3_partition, group_of);
    }
  }

  if (config_.signature.enabled && config_.shared_l2) {
    sig::FilterUnitConfig fc;
    fc.num_cores = cores_per_cluster_;  // slots are cluster-local
    fc.cache_sets = config_.l2.sets();
    fc.cache_ways = config_.l2.ways;
    fc.counter_bits = config_.signature.counter_bits;
    fc.hash_functions = config_.signature.hash_functions;
    fc.hash = config_.signature.hash;
    fc.sample_shift = config_.signature.sample_shift;
    filters_.reserve(clusters_);
    for (std::size_t i = 0; i < clusters_; ++i) {
      filters_.push_back(std::make_unique<sig::FilterUnit>(fc));
    }
  }
}

SYM_COLD void Hierarchy::record_l2_eviction(LineAddr victim_line, std::size_t set,
                                            std::size_t way, std::size_t core) {
  SYM_RECORD((obs::L2EvictionEvent{victim_line, static_cast<std::uint32_t>(set),
                                   static_cast<std::uint32_t>(way),
                                   static_cast<std::uint32_t>(core)}));
}

SYM_HOT MemAccessResult Hierarchy::access_one(std::size_t core, std::size_t cluster, Addr addr,
                                              bool is_write, Cache& l1, Cache& l2, Tlb& tlb,
                                              sig::FilterUnit* filter, StreamState& ss) {
  MemAccessResult result;
  const LineAddr line = config_.l1.line_of(addr);

  result.tlb_hit = tlb.access(addr);
  if (!result.tlb_hit) result.cycles += config_.latency.tlb_miss;

  // Stream detection (stride prefetcher model): two consecutive accesses
  // with the same short line stride mark the core as streaming; its
  // last-level misses then cost latency.stream_miss instead of full memory
  // latency.
  const auto stride = static_cast<std::int64_t>(line) - static_cast<std::int64_t>(ss.last_line);
  const bool streaming =
      ss.valid && stride == ss.last_stride && stride != 0 && stride >= -8 && stride <= 8;
  ss.last_stride = stride;
  ss.last_line = line;
  ss.valid = true;

  const AccessResult l1r = l1.access(line, is_write, 0);
  result.cycles += config_.latency.l1_hit;
  if (l1r.hit) {
    result.l1_hit = true;
    return result;
  }
  // L1 victims are silently dropped: writeback traffic does not perturb L2
  // replacement state in this model (inclusion already guarantees presence).

  const AccessResult l2r = l2.access(line, is_write, core);
  result.cycles += config_.latency.l2_hit;
  if (l2r.hit) {
    result.l2_hit = true;
    return result;
  }

  // L2 fill bookkeeping runs BEFORE the L3 lookup so the signature filter
  // records the fill before any L3-eviction back-invalidation could retire
  // the very line just filled.
  if (l2r.evicted) {
    record_l2_eviction(l2r.victim_line, l2r.set, l2r.way, core);
    // Enforce L1 ⊆ L2 inclusion within the cluster: the displaced line may
    // not linger in any L1 above this L2 (degenerate shared = all L1s;
    // private = the core's own, since clusters are single cores).
    const std::size_t base = cluster * cores_per_cluster_;
    for (std::size_t c = base; c < base + cores_per_cluster_; ++c) {
      l1_[c]->invalidate(l2r.victim_line);
    }
    if (filter) {
      filter->on_evict(l2r.victim_line, l2r.set, l2r.way);
    }
  }
  if (filter) {
    filter->on_fill(line, core - cluster * cores_per_cluster_, l2r.set, l2r.way);
  }

  if (l3_) {
    const AccessResult l3r = l3_->access(line, is_write, cluster);
    result.cycles += config_.latency.l3_hit;
    if (l3r.hit) {
      result.l3_hit = true;
      return result;
    }
    if (l3r.evicted) {
      // Inclusive L3: back-invalidate the displaced line from every L2 (and
      // its shadowing filter) and every L1.
      for (std::size_t cl = 0; cl < l2_.size(); ++cl) {
        std::size_t vset = 0;
        std::size_t vway = 0;
        if (l2_[cl]->invalidate(l3r.victim_line, vset, vway) && !filters_.empty()) {
          filters_[cl]->on_evict(l3r.victim_line, vset, vway);
        }
      }
      for (auto& other : l1_) other->invalidate(l3r.victim_line);
    }
  }

  if (streaming) {
    result.stream_prefetched = true;
    result.cycles += config_.latency.stream_miss;
  } else {
    result.cycles += config_.latency.memory;
  }
  return result;
}

SYM_HOT MemAccessResult Hierarchy::access(std::size_t core, Addr addr, bool is_write) {
  SYM_DCHECK_BOUNDS(core, config_.num_cores, "cachesim.bounds");
  const std::size_t cluster = cluster_of(core);
  return access_one(core, cluster, addr, is_write, *l1_[core], *l2_[cluster], *tlb_[core],
                    filters_.empty() ? nullptr : filters_[cluster].get(), stream_[core]);
}

SYM_HOT BatchSummary Hierarchy::access_batch(std::size_t core, const MemRef* refs, std::size_t n,
                                             MemAccessResult* results) {
  SYM_DCHECK_BOUNDS(core, config_.num_cores, "cachesim.bounds");
  // Hoist every core-indexed and config-dependent lookup out of the replay
  // loop; the loop body itself is the canonical access_one().
  const std::size_t cluster = cluster_of(core);
  Cache& l1 = *l1_[core];
  Cache& l2 = *l2_[cluster];
  Tlb& tlb = *tlb_[core];
  sig::FilterUnit* const filter = filters_.empty() ? nullptr : filters_[cluster].get();
  StreamState& ss = stream_[core];

  BatchSummary summary;
  summary.accesses = n;
  for (std::size_t i = 0; i < n; ++i) {
    const MemAccessResult r =
        access_one(core, cluster, refs[i].addr, refs[i].is_write, l1, l2, tlb, filter, ss);
    summary.cycles += r.cycles;
    summary.l1_hits += r.l1_hit;
    summary.l2_hits += r.l2_hit;
    summary.l3_hits += r.l3_hit;
    summary.tlb_hits += r.tlb_hit;
    summary.stream_prefetched += r.stream_prefetched;
    if (results) results[i] = r;
  }
  return summary;
}

void Hierarchy::on_context_switch_in(std::size_t core) {
  flush_tlb(core);
  if (sig::FilterUnit* filter = filter_for_core(core)) filter->snapshot(local_core(core));
}

void Hierarchy::flush_tlb(std::size_t core) { tlb_.at(core)->flush(); }

std::size_t Hierarchy::l2_footprint(std::size_t core) const {
  const Cache& l2 = *l2_[cluster_of(core)];
  return l2.occupancy(config_.shared_l2 ? core : Cache::kAnyRequestor);
}

LevelStats Hierarchy::level_stats(std::string_view level) const {
  LevelStats out;
  auto add = [&out](const Cache& cache) {
    out.accesses += cache.stats().accesses;
    out.hits += cache.stats().hits;
    out.misses += cache.stats().misses;
    out.evictions += cache.stats().evictions;
  };
  if (level == "l1") {
    for (const auto& l1 : l1_) add(*l1);
  } else if (level == "l2") {
    for (const auto& l2 : l2_) add(*l2);
  } else if (level == "l3") {
    if (l3_) add(*l3_);
  } else {
    SYM_CHECK(false, "cachesim.topology") << "unknown cache level \"" << level << "\"";
  }
  return out;
}

void Hierarchy::publish_metrics() {
  PublishedStats now;
  for (const auto& l1 : l1_) {
    now.l1_hits += l1->stats().hits;
    now.l1_misses += l1->stats().misses;
  }
  for (const auto& l2 : l2_) {
    now.l2_hits += l2->stats().hits;
    now.l2_misses += l2->stats().misses;
    now.l2_evictions += l2->stats().evictions;
  }
  for (const auto& tlb : tlb_) now.tlb_misses += tlb->misses();

  static obs::Counter& l1_hit = obs::counter("cachesim.l1.hit");
  static obs::Counter& l1_miss = obs::counter("cachesim.l1.miss");
  static obs::Counter& l2_hit = obs::counter("cachesim.l2.hit");
  static obs::Counter& l2_miss = obs::counter("cachesim.l2.miss");
  static obs::Counter& l2_eviction = obs::counter("cachesim.l2.eviction");
  static obs::Counter& tlb_miss = obs::counter("cachesim.tlb.miss");
  l1_hit.add(now.l1_hits - published_.l1_hits);
  l1_miss.add(now.l1_misses - published_.l1_misses);
  l2_hit.add(now.l2_hits - published_.l2_hits);
  l2_miss.add(now.l2_misses - published_.l2_misses);
  l2_eviction.add(now.l2_evictions - published_.l2_evictions);
  tlb_miss.add(now.tlb_misses - published_.tlb_misses);

  if (l3_) {
    // Registered lazily so degenerate topologies never grow l3 metrics.
    now.l3_hits = l3_->stats().hits;
    now.l3_misses = l3_->stats().misses;
    now.l3_evictions = l3_->stats().evictions;
    static obs::Counter& l3_hit = obs::counter("cachesim.l3.hit");
    static obs::Counter& l3_miss = obs::counter("cachesim.l3.miss");
    static obs::Counter& l3_eviction = obs::counter("cachesim.l3.eviction");
    l3_hit.add(now.l3_hits - published_.l3_hits);
    l3_miss.add(now.l3_misses - published_.l3_misses);
    l3_eviction.add(now.l3_evictions - published_.l3_evictions);
  }
  published_ = now;
}

void Hierarchy::reset_stats() noexcept {
  // Counters and the publish baseline move together: the baseline tracks
  // the per-cache totals, so zeroing one without the other would make the
  // next publish_metrics() delta wrap around (unsigned now - published).
  // Every level participates — an L3 left out here would leak its counters
  // across sweep cells exactly the way the L1/L2 wraparound regression
  // test guards against.
  for (auto& l1 : l1_) l1->reset_stats();
  for (auto& l2 : l2_) l2->reset_stats();
  if (l3_) l3_->reset_stats();
  for (auto& tlb : tlb_) tlb->reset_stats();
  published_ = PublishedStats{};
}

void Hierarchy::reset() {
  for (auto& l1 : l1_) l1->reset();
  for (auto& l2 : l2_) l2->reset();
  if (l3_) l3_->reset();
  for (auto& tlb : tlb_) tlb->flush();
  for (auto& filter : filters_) filter->reset();
  for (auto& ss : stream_) ss = StreamState{};
  reset_stats();
}

}  // namespace symbiosis::cachesim
