#include "cachesim/hierarchy.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "util/check.hpp"

namespace symbiosis::cachesim {

Hierarchy::Hierarchy(HierarchyConfig config) : config_(config) {
  if (config_.num_cores == 0) throw std::invalid_argument("Hierarchy: num_cores must be > 0");
  config_.l1.validate();
  config_.l2.validate();
  if (config_.l1.line_bytes != config_.l2.line_bytes) {
    throw std::invalid_argument("Hierarchy: L1 and L2 must share a line size");
  }

  l1_.reserve(config_.num_cores);
  tlb_.reserve(config_.num_cores);
  for (std::size_t c = 0; c < config_.num_cores; ++c) {
    l1_.push_back(std::make_unique<Cache>(config_.l1, config_.l1_replacement, 1,
                                          config_.seed + 101 * c));
    tlb_.push_back(std::make_unique<Tlb>(config_.tlb_entries));
  }

  stream_.resize(config_.num_cores);
  const std::size_t l2_count = config_.shared_l2 ? 1 : config_.num_cores;
  l2_.reserve(l2_count);
  for (std::size_t i = 0; i < l2_count; ++i) {
    l2_.push_back(std::make_unique<Cache>(config_.l2, config_.l2_replacement,
                                          config_.num_cores, config_.seed + 977 * i));
  }

  if (config_.signature.enabled && config_.shared_l2) {
    sig::FilterUnitConfig fc;
    fc.num_cores = config_.num_cores;
    fc.cache_sets = config_.l2.sets();
    fc.cache_ways = config_.l2.ways;
    fc.counter_bits = config_.signature.counter_bits;
    fc.hash_functions = config_.signature.hash_functions;
    fc.hash = config_.signature.hash;
    fc.sample_shift = config_.signature.sample_shift;
    filter_.emplace(fc);
  }
}

MemAccessResult Hierarchy::access_one(std::size_t core, Addr addr, bool is_write, Cache& l1,
                                      Cache& l2, Tlb& tlb, sig::FilterUnit* filter,
                                      StreamState& ss) {
  MemAccessResult result;
  const LineAddr line = config_.l1.line_of(addr);

  result.tlb_hit = tlb.access(addr);
  if (!result.tlb_hit) result.cycles += config_.latency.tlb_miss;

  // Stream detection (stride prefetcher model): two consecutive accesses
  // with the same short line stride mark the core as streaming; its L2
  // misses then cost latency.stream_miss instead of full memory latency.
  const auto stride = static_cast<std::int64_t>(line) - static_cast<std::int64_t>(ss.last_line);
  const bool streaming =
      ss.valid && stride == ss.last_stride && stride != 0 && stride >= -8 && stride <= 8;
  ss.last_stride = stride;
  ss.last_line = line;
  ss.valid = true;

  const AccessResult l1r = l1.access(line, is_write, 0);
  result.cycles += config_.latency.l1_hit;
  if (l1r.hit) {
    result.l1_hit = true;
    return result;
  }
  // L1 victims are silently dropped: writeback traffic does not perturb L2
  // replacement state in this model (inclusion already guarantees presence).

  const AccessResult l2r = l2.access(line, is_write, core);
  result.cycles += config_.latency.l2_hit;
  if (l2r.hit) {
    result.l2_hit = true;
    return result;
  }
  if (streaming) {
    result.stream_prefetched = true;
    result.cycles += config_.latency.stream_miss;
  } else {
    result.cycles += config_.latency.memory;
  }

  if (l2r.evicted) {
    SYM_RECORD((obs::L2EvictionEvent{l2r.victim_line, static_cast<std::uint32_t>(l2r.set),
                                     static_cast<std::uint32_t>(l2r.way),
                                     static_cast<std::uint32_t>(core)}));
    // Enforce L1 ⊆ L2 inclusion: the displaced line may not linger in any L1.
    if (config_.shared_l2) {
      for (auto& other : l1_) other->invalidate(l2r.victim_line);
    } else {
      l1.invalidate(l2r.victim_line);
    }
    if (filter) {
      filter->on_evict(l2r.victim_line, l2r.set, l2r.way);
    }
  }
  if (filter) {
    filter->on_fill(line, core, l2r.set, l2r.way);
  }
  return result;
}

MemAccessResult Hierarchy::access(std::size_t core, Addr addr, bool is_write) {
  SYM_DCHECK_BOUNDS(core, config_.num_cores, "cachesim.bounds");
  Cache& l2 = config_.shared_l2 ? *l2_.front() : *l2_[core];
  return access_one(core, addr, is_write, *l1_[core], l2, *tlb_[core],
                    filter_ ? &*filter_ : nullptr, stream_[core]);
}

BatchSummary Hierarchy::access_batch(std::size_t core, const MemRef* refs, std::size_t n,
                                     MemAccessResult* results) {
  SYM_DCHECK_BOUNDS(core, config_.num_cores, "cachesim.bounds");
  // Hoist every core-indexed and config-dependent lookup out of the replay
  // loop; the loop body itself is the canonical access_one().
  Cache& l1 = *l1_[core];
  Cache& l2 = config_.shared_l2 ? *l2_.front() : *l2_[core];
  Tlb& tlb = *tlb_[core];
  sig::FilterUnit* const filter = filter_ ? &*filter_ : nullptr;
  StreamState& ss = stream_[core];

  BatchSummary summary;
  summary.accesses = n;
  for (std::size_t i = 0; i < n; ++i) {
    const MemAccessResult r = access_one(core, refs[i].addr, refs[i].is_write, l1, l2, tlb,
                                         filter, ss);
    summary.cycles += r.cycles;
    summary.l1_hits += r.l1_hit;
    summary.l2_hits += r.l2_hit;
    summary.tlb_hits += r.tlb_hit;
    summary.stream_prefetched += r.stream_prefetched;
    if (results) results[i] = r;
  }
  return summary;
}

void Hierarchy::on_context_switch_in(std::size_t core) {
  flush_tlb(core);
  if (filter_) filter_->snapshot(core);
}

void Hierarchy::flush_tlb(std::size_t core) { tlb_.at(core)->flush(); }

std::size_t Hierarchy::l2_footprint(std::size_t core) const {
  const Cache& l2 = config_.shared_l2 ? *l2_.front() : *l2_[core];
  return l2.occupancy(config_.shared_l2 ? core : Cache::kAnyRequestor);
}

void Hierarchy::publish_metrics() {
  PublishedStats now;
  for (const auto& l1 : l1_) {
    now.l1_hits += l1->stats().hits;
    now.l1_misses += l1->stats().misses;
  }
  for (const auto& l2 : l2_) {
    now.l2_hits += l2->stats().hits;
    now.l2_misses += l2->stats().misses;
    now.l2_evictions += l2->stats().evictions;
  }
  for (const auto& tlb : tlb_) now.tlb_misses += tlb->misses();

  static obs::Counter& l1_hit = obs::counter("cachesim.l1.hit");
  static obs::Counter& l1_miss = obs::counter("cachesim.l1.miss");
  static obs::Counter& l2_hit = obs::counter("cachesim.l2.hit");
  static obs::Counter& l2_miss = obs::counter("cachesim.l2.miss");
  static obs::Counter& l2_eviction = obs::counter("cachesim.l2.eviction");
  static obs::Counter& tlb_miss = obs::counter("cachesim.tlb.miss");
  l1_hit.add(now.l1_hits - published_.l1_hits);
  l1_miss.add(now.l1_misses - published_.l1_misses);
  l2_hit.add(now.l2_hits - published_.l2_hits);
  l2_miss.add(now.l2_misses - published_.l2_misses);
  l2_eviction.add(now.l2_evictions - published_.l2_evictions);
  tlb_miss.add(now.tlb_misses - published_.tlb_misses);
  published_ = now;
}

void Hierarchy::reset_stats() noexcept {
  // Counters and the publish baseline move together: the baseline tracks
  // the per-cache totals, so zeroing one without the other would make the
  // next publish_metrics() delta wrap around (unsigned now - published).
  for (auto& l1 : l1_) l1->reset_stats();
  for (auto& l2 : l2_) l2->reset_stats();
  for (auto& tlb : tlb_) tlb->reset_stats();
  published_ = PublishedStats{};
}

void Hierarchy::reset() {
  for (auto& l1 : l1_) l1->reset();
  for (auto& l2 : l2_) l2->reset();
  for (auto& tlb : tlb_) tlb->flush();
  if (filter_) filter_->reset();
  for (auto& ss : stream_) ss = StreamState{};
  reset_stats();
}

}  // namespace symbiosis::cachesim
